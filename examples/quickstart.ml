(* Quickstart: the whole pipeline on a hand-built workload.

   We simulate a tiny system — one app scenario whose slow executions are
   caused by lock contention over a filter driver — then run both analysis
   steps and print what they find.

   Run with: dune exec examples/quickstart.exe *)

module P = Dpsim.Program
module Engine = Dpsim.Engine
module Time = Dputil.Time

let sig_ = Dptrace.Signature.of_string

(* One trace stream: an "OpenDocument" instance that contends a driver
   lock with a background indexer. [contended] controls whether the
   indexer runs concurrently (slow class) or not (fast class). *)
let make_stream ~id ~contended =
  let engine = Engine.create ~stream_id:id () in
  let filter_lock = Engine.new_lock engine ~name:"FilterTable" in
  let disk = Engine.new_device engine ~name:"Disk" ~signature:(sig_ "DiskService") in
  (* The background indexer holds the filter-driver lock across a long
     disk read. *)
  let indexer_start = if contended then Time.ms 1 else Time.sec 10 in
  let (_ : int) =
    Engine.spawn engine ~start_at:indexer_start ~name:"Indexer"
      ~base_stack:[ sig_ "Indexer!ScanDocuments" ]
      [
        P.call (sig_ "flt.sys!FilterLookup")
          [
            P.locked filter_lock
              [ P.compute (Time.ms 2); P.hw disk (Time.ms 120) ];
          ];
      ]
  in
  (* The scenario instance: opens a document through the same filter. *)
  let (_ : int) =
    Engine.spawn engine ~scenario:"OpenDocument" ~start_at:(Time.ms 5)
      ~name:"App.Open"
      ~base_stack:[ sig_ "App!OpenDocument" ]
      [
        P.compute (Time.ms 8);
        P.call (sig_ "flt.sys!FilterLookup")
          [ P.locked filter_lock [ P.compute (Time.ms 3) ] ];
        P.compute (Time.ms 12);
      ]
  in
  Engine.run engine

let () =
  (* A small corpus: 6 contended (slow) and 6 uncontended (fast) runs. *)
  let streams =
    List.init 12 (fun id -> make_stream ~id ~contended:(id mod 2 = 0))
  in
  let specs =
    [ Dptrace.Scenario.spec ~name:"OpenDocument" ~tfast:(Time.ms 50)
        ~tslow:(Time.ms 100) ]
  in
  let corpus = Dptrace.Corpus.create ~streams ~specs in
  Format.printf "%a@.@." Dptrace.Corpus.pp_summary corpus;

  (* Step 1 — impact analysis over all driver components. *)
  let components = Dpcore.Component.drivers in
  let impact = Dpcore.Pipeline.run_impact components corpus in
  Dputil.Table.print (Dpcore.Report.impact_summary impact);
  print_newline ();

  (* Step 2 — causality analysis for the scenario. *)
  let r = Dpcore.Pipeline.run_scenario components corpus "OpenDocument" in
  let f, m, s = Dpcore.Classify.counts r.Dpcore.Pipeline.classification in
  Format.printf "OpenDocument classes: fast=%d middle=%d slow=%d@." f m s;
  Format.printf "%s@.@." (Dpcore.Report.awg_summary r.Dpcore.Pipeline.slow_awg);
  print_endline "Contrast patterns (ranked):";
  print_string
    (Dpcore.Report.top_patterns r.Dpcore.Pipeline.mining.Dpcore.Mining.patterns
       ~n:5);

  (* The discovered pattern should blame the filter lookup whose lock was
     held across the indexer's disk read. *)
  match r.Dpcore.Pipeline.mining.Dpcore.Mining.patterns with
  | [] -> failwith "quickstart: expected at least one contrast pattern"
  | top :: _ ->
    let names =
      List.map Dptrace.Signature.name
        (Dpcore.Tuple.all_signatures top.Dpcore.Mining.tuple)
    in
    assert (List.mem "flt.sys!FilterLookup" names);
    print_endline "\nOK: mining blamed flt.sys!FilterLookup, as injected."
