(* The network-driver case of Section 5.2.4 (RQ3, second observation).

   Menus that display items from remote servers inherit network-driver
   delays; the paper observes network drivers in 7 of MenuDisplay's top-10
   patterns and recommends asynchronous fetching / prefetched caches.

   This example (1) mines MenuDisplay episodes and checks that network
   drivers dominate the top patterns, and (2) quantifies the paper's
   recommended mitigation by re-running the same workload with the menu
   contents prefetched by a background thread.

   Run with: dune exec examples/menu_display_network.exe *)

module P = Dpsim.Program
module T = Dpworkload.Taxonomy
module Engine = Dpsim.Engine
module Time = Dputil.Time
module Prng = Dputil.Prng

let sig_ = Dptrace.Signature.of_string

let spec = (Dpworkload.Scenarios.menu_display).Dpworkload.Scenarios.spec

(* Synchronous variant: the menu thread fetches remote items itself.
   Prefetched variant: a background thread fetched them earlier; the menu
   thread only reads the cache. *)
let make_stream prng ~id ~prefetch =
  let engine = Engine.create ~stream_id:id () in
  let env = Dpworkload.Env.create engine in
  let n = Prng.int_in prng 2 4 in
  for i = 0 to n - 1 do
    let iprng = Prng.split prng in
    let ctx = { Dpworkload.Motifs.env; prng = iprng } in
    let fetch =
      Dpworkload.Motifs.net_fetch_shared ctx
        ~dur:(Dpworkload.Motifs.service_ms ctx ~median:140.0)
    in
    if prefetch then begin
      (* Background prefetcher, not part of any scenario instance. *)
      let (_ : int) =
        Engine.spawn engine ~start_at:0 ~name:(Printf.sprintf "Prefetch.%d" i)
          ~base_stack:[ sig_ "App!PrefetchMenu" ]
          fetch
      in
      (* The menu itself opens later and reads the cache. *)
      let (_ : int) =
        Engine.spawn engine ~scenario:spec.Dptrace.Scenario.name
          ~start_at:(Time.ms (400 + Prng.int iprng 50))
          ~name:(Printf.sprintf "App.Menu.%d" i)
          ~base_stack:[ sig_ "App!MenuDisplay" ]
          (P.compute (Dpworkload.Motifs.ms_in ctx 8.0 20.0)
           :: Dpworkload.Motifs.cache_lookup ctx)
      in
      ()
    end
    else begin
      let (_ : int) =
        Engine.spawn engine ~scenario:spec.Dptrace.Scenario.name
          ~start_at:(Prng.int iprng (Time.ms 40))
          ~name:(Printf.sprintf "App.Menu.%d" i)
          ~base_stack:[ sig_ "App!MenuDisplay" ]
          (P.seq
             [
               [ P.compute (Dpworkload.Motifs.ms_in ctx 5.0 15.0) ];
               Dpworkload.Motifs.dns_resolve ctx;
               fetch;
               [ P.compute (Dpworkload.Motifs.ms_in ctx 5.0 15.0) ];
             ])
      in
      ()
    end
  done;
  Engine.run engine

let durations corpus =
  Dptrace.Corpus.all_instances corpus
  |> List.map (fun (_, i) -> Dputil.Time.to_ms_float (Dptrace.Scenario.duration i))
  |> Array.of_list

let () =
  let prng = Prng.of_int 2014 in
  let sync_streams = List.init 40 (fun id -> make_stream prng ~id ~prefetch:false) in
  let sync_corpus = Dptrace.Corpus.create ~streams:sync_streams ~specs:[ spec ] in

  (* Mine the synchronous variant. *)
  let r =
    Dpcore.Pipeline.run_scenario Dpcore.Component.drivers sync_corpus
      spec.Dptrace.Scenario.name
  in
  print_endline "Top contrast patterns (synchronous menus):";
  print_string
    (Dpcore.Report.top_patterns r.Dpcore.Pipeline.mining.Dpcore.Mining.patterns
       ~n:5);
  let counts =
    Dpcore.Evaluation.driver_type_counts
      r.Dpcore.Pipeline.mining.Dpcore.Mining.patterns ~top_n:10
      ~type_of:T.type_name_of_signature
  in
  Format.printf "driver types in top-10 patterns: %s@."
    (String.concat ", "
       (List.map (fun (ty, n) -> Printf.sprintf "%s x%d" ty n) counts));
  (match counts with
  | (top_type, _) :: _ when top_type = "Network" ->
    print_endline "OK: network drivers dominate, as in Table 4 (7/10)."
  | _ -> failwith "expected Network to dominate MenuDisplay patterns");

  (* Quantify the paper's mitigation. *)
  let prefetch_streams =
    List.init 40 (fun id -> make_stream prng ~id:(100 + id) ~prefetch:true)
  in
  let prefetch_corpus =
    Dptrace.Corpus.create ~streams:prefetch_streams ~specs:[ spec ]
  in
  let sync_d = durations sync_corpus and pre_d = durations prefetch_corpus in
  Format.printf
    "@.Mitigation (prefetched cache, as the paper recommends):@.  \
     synchronous: %a@.  prefetched:  %a@."
    Dputil.Stats.pp_summary
    (Dputil.Stats.summarize sync_d)
    Dputil.Stats.pp_summary
    (Dputil.Stats.summarize pre_d);
  let speedup =
    Dputil.Stats.ratio (Dputil.Stats.mean sync_d) (Dputil.Stats.mean pre_d)
  in
  Format.printf "  mean speedup: %.1fx@." speedup;
  assert (speedup > 2.0)
