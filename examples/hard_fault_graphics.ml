(* The hard-fault case of Section 5.2.4 (RQ3, third observation).

   A UI thread executing graphics.sys waits for GPU resources held by a
   graphics worker; the worker takes a hard page fault while initialising
   an internal structure, and the page read runs through se.sys on a
   storage-encrypted machine, costing seconds. The degradation spreads to
   the UI thread and the application stops responding.

   The mined pattern puts graphics.sys together with fs.sys/se.sys — the
   "should never interact" combination that flags a hard fault.

   Run with: dune exec examples/hard_fault_graphics.exe *)

module P = Dpsim.Program
module T = Dpworkload.Taxonomy
module Engine = Dpsim.Engine
module Time = Dputil.Time

let sig_ = Dptrace.Signature.of_string

let spec =
  Dptrace.Scenario.spec ~name:"AppNonResponsive" ~tfast:(Time.ms 1000)
    ~tslow:(Time.ms 2000)

(* [fault_ms]: duration of the page read; 4700 reproduces the paper's
   4.7 s case. [contended] selects the slow (faulting) variant. *)
let make_stream ~id ~fault_ms ~contended =
  let engine = Engine.create ~stream_id:id () in
  let env = Dpworkload.Env.create engine in
  if contended then begin
    (* T_S,W0 — graphics worker holding the GPU resource; it hard-faults
       in graphics.sys!InitStruct and a system worker (T_S,W1) performs
       the page read through se.sys. *)
    let (_ : int) =
      Engine.spawn engine ~start_at:0 ~name:"Sys.GfxWorker"
        ~base_stack:[ P.kernel_worker ]
        [
          P.call T.gfx_worker_routine
            [
              P.locked env.Dpworkload.Env.gpu_res
                [
                  P.compute ~frame:T.gfx_render (Time.ms 4);
                  P.call T.gfx_init_struct
                    [
                      P.request
                        ~wait_frames:[ Dpworkload.Motifs.kernel_hard_fault ]
                        env.Dpworkload.Env.sys_worker
                        [
                          P.call T.se_read_decrypt
                            [
                              P.hw env.Dpworkload.Env.disk (Time.ms fault_ms);
                              P.compute ~frame:T.se_decrypt (Time.ms 25);
                            ];
                        ];
                    ];
                ];
            ];
        ]
    in
    ()
  end;
  (* T_U,UI — the initiating thread: tries to acquire GPU resources. *)
  let (_ : int) =
    Engine.spawn engine ~scenario:spec.Dptrace.Scenario.name
      ~start_at:(Time.ms 2) ~name:"App.UI"
      ~base_stack:[ sig_ "App!MessagePump" ]
      [
        P.compute (Time.ms 10);
        P.call T.gfx_acquire_gpu
          [ P.locked env.Dpworkload.Env.gpu_res [ P.compute ~frame:T.gfx_render (Time.ms 8) ] ];
        P.compute (Time.ms 15);
      ]
  in
  Engine.run engine

let () =
  (* The single 4.7 s case, narrated. *)
  let stream = make_stream ~id:0 ~fault_ms:4700 ~contended:true in
  let instance = List.hd stream.Dptrace.Stream.instances in
  Format.printf "AppNonResponsive instance took %a (T_slow = %a)@."
    Time.pp
    (Dptrace.Scenario.duration instance)
    Time.pp spec.Dptrace.Scenario.tslow;
  let wg = Dpwaitgraph.Wait_graph.build stream instance in
  Format.printf "%a@.@." Dpwaitgraph.Wait_graph.pp wg;

  (* A corpus of replicas (fault durations jittered deterministically)
     plus fault-free fast runs; mine the contrast. *)
  let streams =
    List.init 30 (fun id ->
        if id mod 2 = 0 then
          make_stream ~id ~fault_ms:(3800 + (137 * (id mod 7))) ~contended:true
        else make_stream ~id ~fault_ms:0 ~contended:false)
  in
  let corpus = Dptrace.Corpus.create ~streams ~specs:[ spec ] in
  let r =
    Dpcore.Pipeline.run_scenario Dpcore.Component.drivers corpus
      spec.Dptrace.Scenario.name
  in
  print_endline "Top contrast patterns:";
  print_string
    (Dpcore.Report.top_patterns r.Dpcore.Pipeline.mining.Dpcore.Mining.patterns
       ~n:3);
  match r.Dpcore.Pipeline.mining.Dpcore.Mining.patterns with
  | [] -> failwith "no contrast pattern discovered"
  | top :: _ ->
    let names =
      List.map Dptrace.Signature.name
        (Dpcore.Tuple.all_signatures top.Dpcore.Mining.tuple)
    in
    let mentions_graphics =
      List.exists (fun n -> String.length n >= 8 && String.sub n 0 8 = "graphics") names
    in
    let mentions_se = List.exists (fun n -> String.length n >= 6 && String.sub n 0 6 = "se.sys") names in
    if not (mentions_graphics && mentions_se) then
      failwith "expected graphics.sys together with se.sys in the top pattern";
    print_endline
      "\nOK: graphics.sys appears with se.sys in one pattern — the\n\
       'drivers that should not interact' signature of a hard fault."
