(* The full Section 5 study at a reduced scale.

   Generates a seeded corpus, runs the impact analysis over all device
   drivers, then the causality analysis on each of the eight named
   scenarios, and prints every table of the paper's evaluation.

   Run with: dune exec examples/corpus_study.exe -- [scale] *)

let () =
  let scale =
    if Array.length Sys.argv > 1 then float_of_string Sys.argv.(1) else 0.3
  in
  let corpus =
    Dpworkload.Corpus_gen.generate (Dpworkload.Corpus_gen.scaled scale)
  in
  Format.printf "%a@.@." Dptrace.Corpus.pp_summary corpus;

  let components = Dpcore.Component.drivers in
  Dputil.Table.print
    (Dpcore.Report.impact_summary (Dpcore.Pipeline.run_impact components corpus));
  print_newline ();

  let named =
    List.map
      (fun (tpl : Dpworkload.Scenarios.template) ->
        let name = tpl.Dpworkload.Scenarios.spec.Dptrace.Scenario.name in
        (name, Dpcore.Pipeline.run_scenario components corpus name))
      Dpworkload.Scenarios.named
  in
  Dputil.Table.print
    (Dpcore.Report.scenario_classes
       (List.map (fun (n, r) -> (n, r.Dpcore.Pipeline.classification)) named));
  print_newline ();
  Dputil.Table.print (Dpcore.Report.coverages named);
  print_newline ();
  Dputil.Table.print (Dpcore.Report.ranking named);
  print_newline ();
  Dputil.Table.print
    (Dpcore.Report.driver_types named
       ~type_names:
         (List.map Dpworkload.Taxonomy.type_name Dpworkload.Taxonomy.all_types)
       ~type_of:Dpworkload.Taxonomy.type_name_of_signature);

  (* One detailed drill-down, analyst-style. *)
  let name, r = List.nth named 4 (* BrowserTabCreate *) in
  Format.printf "@.Drill-down: %s@.%s@." name
    (Dpcore.Report.awg_summary r.Dpcore.Pipeline.slow_awg);
  print_string
    (Dpcore.Report.top_patterns r.Dpcore.Pipeline.mining.Dpcore.Mining.patterns
       ~n:3)
