(* The paper's motivating example (Section 2.2, Figures 1 and 2).

   Reconstructs the six-thread BrowserTabCreate case — two lock-contention
   regions (fv.sys File Table, fs.sys MDUs) bridged by hierarchical
   dependencies down to se.sys and the disk — prints the restructured
   thread snapshot, the victim's Wait Graph, the slow-class Aggregated
   Wait Graph, and the mined contrast pattern, which should match the
   paper's:

     wait   {fv.sys!QueryFileTable, fs.sys!AcquireMDU}
     unwait {fv.sys!QueryFileTable, fs.sys!AcquireMDU}
     running {se.sys!ReadDecrypt, DiskService}

   Run with: dune exec examples/browser_tab_create.exe *)

module MC = Dpworkload.Motivating_case

let () =
  let case = MC.build () in
  print_string (MC.describe case);
  print_newline ();

  print_endline "Thread timeline of the delay window (cf. Figure 1):";
  print_string (Dptrace.Timeline.render_instance case.MC.stream case.MC.browser_instance);
  print_newline ();

  print_endline "Victim Wait Graph (restructured thread snapshot):";
  let wg = Dpwaitgraph.Wait_graph.build case.MC.stream case.MC.browser_instance in
  Format.printf "%a@.@." Dpwaitgraph.Wait_graph.pp wg;

  (* Aggregate many jittered replicas and mine the contrast. *)
  let corpus = MC.corpus () in
  let r =
    Dpcore.Pipeline.run_scenario Dpcore.Component.drivers corpus
      "BrowserTabCreate"
  in
  print_endline "Aggregated Wait Graph of the slow class (cf. Figure 2):";
  print_string (Dpcore.Awg.render r.Dpcore.Pipeline.slow_awg);
  print_newline ();

  print_endline "Top contrast patterns (ranked by P.C / P.N):";
  print_string
    (Dpcore.Report.top_patterns r.Dpcore.Pipeline.mining.Dpcore.Mining.patterns
       ~n:3);

  (* Check the paper's pattern was rediscovered. *)
  (match r.Dpcore.Pipeline.mining.Dpcore.Mining.patterns with
  | [] -> failwith "no contrast pattern discovered"
  | top :: _ ->
    let names =
      List.map Dptrace.Signature.name
        (Dpcore.Tuple.all_signatures top.Dpcore.Mining.tuple)
    in
    List.iter
      (fun expected ->
        if not (List.mem expected names) then
          failwith (expected ^ " missing from the top pattern"))
      MC.expected_pattern_signatures);
  print_endline "\nOK: the paper's Signature Set Tuple was rediscovered.";

  (* What the baselines would have said. *)
  print_endline "\n--- Baseline comparison (Section 6) ---";
  let cg = Dpbaseline.Callgraph.profile corpus in
  Format.printf
    "gprof-style profiler: total CPU is %a across the corpus — versus %a \
     of UI-perceived delay per slow instance; the waits that constitute \
     the delay are invisible to it.@."
    Dputil.Time.pp
    (Dpbaseline.Callgraph.total_cpu cg)
    Dputil.Time.pp
    (Dptrace.Scenario.duration case.MC.browser_instance);
  let lp = Dpbaseline.Lock_profiler.analyze corpus in
  print_endline
    "single-lock contention analysis: four seemingly independent sites,";
  List.iter
    (fun site -> Format.printf "  %a@." Dpbaseline.Lock_profiler.pp_site site)
    (Dpbaseline.Lock_profiler.top lp ~n:4);
  print_endline
    "  Each site is real, but nothing links the UI's fv.sys wait to the\n\
    \  disk service four hops below — the cross-lock propagation chain\n\
    \  (the actual diagnosis) is invisible to per-lock analysis.";
  print_newline ()
