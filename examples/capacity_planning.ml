(* A what-if study the framework enables beyond the paper: how much of a
   scenario's latency is driver propagation versus CPU pressure?

   The paper's corpus regime treats CPU as plentiful (driver CPU is
   ≈1.6%), which our engine mirrors by default. But an analyst receiving
   slow traces from low-core machines needs to separate the two causes
   before blaming drivers. This study runs the same seeded workload at
   several core counts and shows that:

   - scenario latency degrades as cores shrink (the run-queue model),
   - yet the driver-attributed metrics (IA_run, the mined patterns)
     barely move — the propagation diagnosis is robust to CPU pressure,
   - and the run-queue waits surface separately (kernel!CpuQueue frames),
     so nothing misattributes CPU starvation to drivers.

   Run with: dune exec examples/capacity_planning.exe *)

let scenario = "AppAccessControl"

let study cores =
  let cfg =
    { Dpworkload.Corpus_gen.default_config with scale = 0.25; cores }
  in
  let corpus = Dpworkload.Corpus_gen.generate cfg in
  let durations =
    Dptrace.Corpus.instances_of corpus scenario
    |> List.map (fun (_, i) ->
           Dputil.Time.to_ms_float (Dptrace.Scenario.duration i))
    |> Array.of_list
  in
  let impact = Dpcore.Pipeline.run_impact Dpcore.Component.drivers corpus in
  let r = Dpcore.Pipeline.run_scenario Dpcore.Component.drivers corpus scenario in
  (durations, impact, r)

let () =
  let t =
    Dputil.Table.create
      ~title:(scenario ^ " under CPU pressure (same workload, fewer cores)")
      [
        ("cores", Dputil.Table.Left);
        ("p50 (ms)", Dputil.Table.Right);
        ("p90 (ms)", Dputil.Table.Right);
        ("slow-class size", Dputil.Table.Right);
        ("IA_run (drivers)", Dputil.Table.Right);
        ("#patterns", Dputil.Table.Right);
      ]
  in
  let results =
    List.map (fun cores -> (cores, study cores)) [ None; Some 4; Some 2 ]
  in
  List.iter
    (fun (cores, (durations, impact, r)) ->
      let _, _, slow = Dpcore.Classify.counts r.Dpcore.Pipeline.classification in
      Dputil.Table.add_row t
        [
          (match cores with None -> "unbounded" | Some n -> string_of_int n);
          Printf.sprintf "%.0f" (Dputil.Stats.percentile durations 50.0);
          Printf.sprintf "%.0f" (Dputil.Stats.percentile durations 90.0);
          string_of_int slow;
          Dpcore.Report.pct (Dpcore.Impact.ia_run impact);
          string_of_int
            (List.length r.Dpcore.Pipeline.mining.Dpcore.Mining.patterns);
        ])
    results;
  Dputil.Table.print t;

  (* The diagnosis itself must be stable: the top pattern's signatures at
     2 cores should be drawn from the same drivers as at unbounded CPU. *)
  let top_modules (_, _, r) =
    match r.Dpcore.Pipeline.mining.Dpcore.Mining.patterns with
    | top :: _ ->
      Dpcore.Tuple.all_signatures top.Dpcore.Mining.tuple
      |> List.filter_map (fun s ->
             let m = Dptrace.Signature.module_part s in
             if Dpcore.Component.matches_signature Dpcore.Component.drivers s
             then Some m
             else None)
      |> List.sort_uniq compare
    | [] -> []
  in
  let unbounded = top_modules (List.assoc None results) in
  let squeezed = top_modules (List.assoc (Some 2) results) in
  Printf.printf "\ntop-pattern driver modules, unbounded CPU: %s\n"
    (String.concat ", " unbounded);
  Printf.printf "top-pattern driver modules, 2 cores:       %s\n"
    (String.concat ", " squeezed);
  let overlap = List.filter (fun m -> List.mem m squeezed) unbounded in
  assert (overlap <> []);
  print_endline
    "OK: the causality diagnosis is stable under CPU pressure; the extra\n\
     latency shows up as kernel!CpuQueue waits, not as driver patterns."
