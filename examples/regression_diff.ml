(* Pattern differencing across corpora: the "clue for similar cases" use
   the paper closes with.

   We analyse BrowserTabCreate on two fleets: one with the usual
   background pressure (antivirus scans, config refreshes, background
   service work contending the same kernel objects) and one where the
   administrator disabled the background tasks. Dpcore.Diff matches the
   mined Signature Set Tuples across the runs and reports what appeared,
   regressed, improved or disappeared — the report a perf analyst reads
   after shipping a fix.

   Run with: dune exec examples/regression_diff.exe *)

let scenario = "BrowserTabCreate"

let analyse corpus =
  Dpcore.Pipeline.run_scenario Dpcore.Component.drivers corpus scenario

let () =
  let base = { Dpworkload.Corpus_gen.default_config with scale = 0.4 } in
  let before = Dpworkload.Corpus_gen.generate base in
  let after =
    Dpworkload.Corpus_gen.generate { base with cross_traffic = false }
  in
  let rb = analyse before and ra = analyse after in
  let pat (r : Dpcore.Pipeline.scenario_result) =
    r.Dpcore.Pipeline.mining.Dpcore.Mining.patterns
  in
  Printf.printf "before: %d patterns; after: %d patterns\n"
    (List.length (pat rb))
    (List.length (pat ra));
  let entries =
    Dpcore.Diff.compare_patterns ~before:(pat rb) ~after:(pat ra) ()
  in
  print_endline (Dpcore.Diff.summary entries);
  print_newline ();
  print_endline "changes (regressions first):";
  List.iter
    (fun e ->
      match e.Dpcore.Diff.change with
      | Dpcore.Diff.Stable -> ()
      | _ -> Format.printf "  %a@." Dpcore.Diff.pp_entry e)
    (List.filteri (fun i _ -> i < 20) entries);

  (* The fix must register: some av.sys-involving patterns disappear or
     improve, and nothing involving av.sys should newly appear. *)
  let mentions_av e =
    List.exists
      (fun s -> Dptrace.Signature.module_part s = "av.sys")
      (Dpcore.Tuple.all_signatures e.Dpcore.Diff.tuple)
  in
  let fixed_av = List.filter mentions_av (Dpcore.Diff.fixed entries) in
  Printf.printf "\nav.sys patterns fixed or improved: %d\n" (List.length fixed_av);
  assert (fixed_av <> []);
  print_endline "OK: disabling background scans registered as fixes in the diff."
