(* driveperf — trace-based performance comprehension for device drivers.

   Subcommands:
     generate    synthesise a corpus (text .dpt or binary .dpb)
     impact      impact analysis (with per-module / per-scenario breakdowns)
     causality   causality analysis for one scenario
     report      regenerate the paper's tables from a corpus
     case        print the Figure 1 motivating case
     validate    structural checks over a corpus file
     stats       descriptive corpus statistics
     dot         Graphviz export of a scenario's Aggregated Wait Graph
     witness     trace a mined pattern back to concrete instances
     explain     provenance drill-down: pattern/component -> raw events
     timeline    ASCII thread timeline of a stream
     anonymize   scrub names structure-preservingly
     import-etw  convert an xperf-style dump
     convert     re-encode a corpus (upgrade v1 files to framed v2)
     diff        compare mined patterns across two corpora
     baseline    run the Section 6 baseline analyses
     analyze     one-shot full analyst report
     monitor     watch a corpus directory, alert on drift, export metrics
     faults      describe / replay a deterministic fault-injection plan

   Corpus files are auto-detected by content (text v1 / binary v1 /
   framed v2); extensions select the *output* format: .dpb binary v1,
   .dpf framed v2, anything else text. *)

open Cmdliner

let is_binary_path path = Filename.check_suffix path ".dpb"
let is_framed_path path = Filename.check_suffix path ".dpf"

(* Format detection and decoding are shared with the monitor via
   {!Dptrace.Corpus_dir} (content-sniffed; extension fallback). *)

type corpus_format = Dptrace.Corpus_dir.format = Text | Binary | Framed

let format_name = Dptrace.Corpus_dir.format_name
let sniff_format = Dptrace.Corpus_dir.sniff_format

let format_of_out path =
  if is_binary_path path then Binary
  else if is_framed_path path then Framed
  else Text

let file_size path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  in_channel_length ic

(* Input volume by detected format, for `driveperf stats` and the
   metrics dump. *)
let record_input_bytes bytes fmt =
  if Dpobs.metrics_on () then
    let name =
      match fmt with
      | Text -> "corpus.bytes.text_v1"
      | Binary -> "corpus.bytes.binary_v1"
      | Framed -> "corpus.bytes.framed_v2"
    in
    Dpobs.Metrics.add (Dpobs.Metrics.counter name) bytes

let load_corpus ?pool ~mode path =
  match Dptrace.Corpus_dir.load ?pool ~mode path with
  | Error msg ->
    Dpobs.Log.error "%s" msg;
    exit 1
  | Ok { Dptrace.Corpus_dir.l_corpus; l_format; l_bytes; l_report } ->
    record_input_bytes l_bytes l_format;
    (match l_report with
    | Some report when report.Dptrace.Codec_v2.dropped <> [] ->
      let n_dropped = List.length report.Dptrace.Codec_v2.dropped in
      if Dpobs.metrics_on () then
        Dpobs.Metrics.add
          (Dpobs.Metrics.counter "codec.frames_dropped")
          n_dropped;
      (* Per-frame {frame; offset; reason} details are debug-level;
         the warn summary points at the knob that reveals them. *)
      List.iter
        (fun d ->
          Dpobs.Log.debug "%s: %a" path Dptrace.Codec_v2.pp_diagnostic d)
        report.Dptrace.Codec_v2.dropped;
      Dpobs.Log.warn
        "%s: recovered %d stream(s) from %d frame(s), %d problem(s) \
         (--log-level debug for per-frame details)"
        path report.Dptrace.Codec_v2.streams report.Dptrace.Codec_v2.frames
        n_dropped
    | _ -> ());
    l_corpus

let save_corpus ?pool path corpus =
  match format_of_out path with
  | Binary -> Dptrace.Codec_binary.save path corpus
  | Framed -> Dptrace.Codec_v2.save ?pool path corpus
  | Text -> Dptrace.Codec.save path corpus

let read_corpus ?pool ~mode = function
  | Some path -> load_corpus ?pool ~mode path
  | None ->
    Dpworkload.Corpus_gen.generate Dpworkload.Corpus_gen.default_config

(* --- common options --- *)

let corpus_arg =
  let doc = "Corpus file (dptrace format). Generated on the fly if absent." in
  Arg.(value & opt (some string) None & info [ "corpus"; "c" ] ~docv:"FILE" ~doc)

let seed_arg =
  let doc = "PRNG seed for corpus generation." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let scale_arg =
  let doc = "Corpus scale: 1.0 targets one tenth of the paper's volumes." in
  Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"S" ~doc)

let components_arg =
  let doc = "Component wildcard patterns over module names." in
  Arg.(value & opt (list string) [ "*.sys" ] & info [ "components" ] ~docv:"PATS" ~doc)

let components_of pats =
  match pats with
  | [ "*.sys" ] -> Dpcore.Component.drivers
  | pats -> Dpcore.Component.of_patterns pats

let domains_arg =
  let doc =
    "Analysis (and framed-v2 ingestion) parallelism: the number of \
     domains (cores) the work fans out over. 0 selects the default — the \
     DRIVEPERF_DOMAINS environment variable when set, otherwise the \
     recommended domain count of the machine. Results are identical for \
     every value."
  in
  Arg.(value & opt int 0 & info [ "j"; "domains" ] ~docv:"N" ~doc)

let mode_arg =
  let strict =
    ( `Strict,
      Arg.info [ "strict" ]
        ~doc:
          "Fail on any corpus corruption (default). A framed v2 load \
           aborts on the first bad frame; v1 formats always behave this \
           way." )
  in
  let recover =
    ( `Recover,
      Arg.info [ "recover" ]
        ~doc:
          "Recovery mode for framed v2 corpora: skip corrupt frames, \
           load the surviving streams, and print per-frame diagnostics \
           on stderr." )
  in
  Arg.(value & vflag `Strict [ strict; recover ])

(* --- deterministic fault injection (--fault-plan / DRIVEPERF_FAULTS) --- *)

let fault_arg =
  let doc =
    "Deterministic fault injection: arm the plan $(docv) (SEED:SPEC, \
     where SPEC is a preset — io-flaky, torn-writes, slow-disk — or \
     comma-separated site=kind@prob[!attempts] clauses) around this \
     command. Injected faults are retried with bounded backoff; streams \
     whose retry budget exhausts are quarantined and reported, not \
     fatal. The DRIVEPERF_FAULTS environment variable sets the same \
     knob; this flag wins. See $(b,driveperf faults) for the site and \
     kind vocabulary."
  in
  Arg.(
    value & opt (some string) None & info [ "fault-plan" ] ~docv:"PLAN" ~doc)

(* Arm the requested plan around a command body, disarm after. Without a
   plan the fault layer stays a single disarmed atomic load per guard. *)
let with_faults plan f =
  let spec =
    match plan with Some _ -> plan | None -> Sys.getenv_opt "DRIVEPERF_FAULTS"
  in
  match spec with
  | None -> f ()
  | Some spec -> (
    match Dpfault.parse spec with
    | Error msg ->
      Dpobs.Log.error "--fault-plan: %s" msg;
      exit 2
    | Ok plan ->
      Dpfault.install plan;
      Fun.protect ~finally:Dpfault.clear f)

(* Probe every stream at the [corpus.read] site; quarantined streams are
   dropped from the analysed corpus and accounted in the coverage block. *)
let screen_corpus corpus = Dpcore.Pipeline.screen corpus

let print_coverage (cov : Dpcore.Pipeline.coverage) =
  if cov.Dpcore.Pipeline.cov_quarantined <> [] then begin
    Dputil.Table.print (Dpcore.Report.stream_coverage cov);
    print_newline ()
  end

(* Run [f pool] with a pool of [j] domains (0 = auto), shut down after. *)
let with_cli_pool j f =
  let domains = if j <= 0 then Dppar.Pool.default_domains () else j in
  Dppar.Pool.with_pool ~domains f

(* --- incremental snapshot cache (--cache DIR) --- *)

let cache_arg =
  let doc =
    "Incremental re-analysis: cache per-stream analysis results under \
     $(docv) and reuse them on later runs over overlapping corpora — \
     only new or changed streams are re-analysed. Entries are keyed by \
     stream content and analysis configuration; results are bit-identical \
     to a run without the cache."
  in
  Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"DIR" ~doc)

(* Open the cache for this configuration, ensure entries for the corpus
   (analysing misses in parallel), hand [Some snapshot] to the body and
   write the cache back after. Without --cache, the body gets [None]. *)
let with_snapshot ~cache ~components ?(k = Dpcore.Mining.default_k) pool
    corpus f =
  match cache with
  | None -> f None
  | Some dir ->
    let fingerprint =
      Dpcore.Snapshot.fingerprint ~components
        ~specs:corpus.Dptrace.Corpus.specs ~k ()
    in
    let snap = Dpcore.Snapshot.create ~dir ~fingerprint () in
    Dpcore.Snapshot.ensure ~pool snap components corpus;
    let r = f (Some snap) in
    Dpcore.Snapshot.save snap;
    let s = Dpcore.Snapshot.stats snap in
    Dpobs.Log.info
      "cache %s: %d hit(s), %d miss(es), %d stale, %d loaded, %d dropped, \
       mining %d hit(s) / %d miss(es)"
      dir s.Dpcore.Snapshot.s_hits s.Dpcore.Snapshot.s_misses
      s.Dpcore.Snapshot.s_stale s.Dpcore.Snapshot.s_loaded
      s.Dpcore.Snapshot.s_dropped s.Dpcore.Snapshot.s_mining_hits
      s.Dpcore.Snapshot.s_mining_misses;
    r

(* --- self-telemetry options (lib/obs) --- *)

type obs_opts = {
  trace_out : string option;
  metrics_out : string option;
  log_level : Dpobs.Log.level option;
  progress : bool;
}

let obs_opts_term =
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Record timed spans of the analysis engine's own execution \
             and write them as Chrome trace-event JSON: one track per \
             domain, one span per pipeline stage. Open the file in \
             Perfetto (ui.perfetto.dev) or chrome://tracing.")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write the engine's telemetry registry (counters, gauges, \
             histograms: pool utilisation, codec bytes/frames, index \
             cache hits) as JSON.")
  in
  let log_level =
    let level =
      Arg.enum
        [
          ("error", Dpobs.Log.Error);
          ("warn", Dpobs.Log.Warn);
          ("info", Dpobs.Log.Info);
          ("debug", Dpobs.Log.Debug);
        ]
    in
    Arg.(
      value
      & opt (some level) None
      & info [ "log-level" ] ~docv:"LEVEL"
          ~doc:
            "Diagnostic verbosity: error, warn (default), info or debug. \
             The DRIVEPERF_LOG environment variable sets the same knob; \
             this flag wins.")
  in
  let progress =
    Arg.(
      value & flag
      & info [ "progress" ]
          ~doc:
            "Draw a live progress line (items/sec, ETA) on stderr for \
             long runs, driven by the engine's own counters. \
             Automatically disabled when stderr is not a terminal.")
  in
  let combine trace_out metrics_out log_level progress =
    { trace_out; metrics_out; log_level; progress }
  in
  Term.(const combine $ trace_out $ metrics_out $ log_level $ progress)

(* Apply the observability options around a command body: arm the
   requested recorders before any work (including corpus loading) and
   flush the exports after. [metrics] forces the registry on for commands
   that print from it regardless of --metrics-out. *)
let with_obs ?(metrics = false) o f =
  Dpobs.Log.init_from_env ();
  (match o.log_level with Some l -> Dpobs.Log.set_level l | None -> ());
  if o.trace_out <> None then Dpobs.enable ~metrics:false ();
  if metrics || o.metrics_out <> None || o.trace_out <> None || o.progress then
    Dpobs.enable ~spans:false ~metrics:true ();
  let code = f () in
  (match o.trace_out with
  | Some path ->
    Dpobs.Export.write_chrome_trace path;
    Dpobs.Log.info "wrote engine trace %s (open in Perfetto)" path
  | None -> ());
  (match o.metrics_out with
  | Some path ->
    Dpobs.Export.write_metrics path;
    Dpobs.Log.info "wrote engine metrics %s" path
  | None -> ());
  code

(* Progress over a named engine counter; a no-op without --progress or a
   tty, and transparent to the wrapped computation either way. *)
let with_progress o ~label ~total counter_name f =
  if not o.progress then f ()
  else
    match
      Dpobs.Progress.start ~label ~total (Dpobs.Metrics.counter counter_name)
    with
    | None -> f ()
    | Some p -> Fun.protect ~finally:(fun () -> Dpobs.Progress.finish p) f

(* --- generate --- *)

let generate seed scale no_cross cores out =
  let config =
    {
      Dpworkload.Corpus_gen.default_config with
      seed;
      scale;
      cross_traffic = not no_cross;
      cores = (if cores <= 0 then None else Some cores);
    }
  in
  let corpus = Dpworkload.Corpus_gen.generate config in
  save_corpus out corpus;
  Format.printf "%a@.wrote %s (%s format)@." Dptrace.Corpus.pp_summary corpus
    out
    (format_name (format_of_out out));
  0

let generate_cmd =
  let out =
    Arg.(
      value
      & opt string "corpus.dpt"
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output path.")
  in
  let no_cross =
    Arg.(
      value & flag
      & info [ "no-cross-traffic" ]
          ~doc:
            "Disable background cross-traffic (AntiVirus/ConfigManager \
             contention): a calm corpus, useful as a monitor baseline \
             against which a default (contended) corpus registers as a \
             regression.")
  in
  let cores =
    Arg.(
      value & opt int 0
      & info [ "cores" ] ~docv:"N"
          ~doc:
            "Engage the engine's N-core run-queue model (CPU pressure). 0 \
             (default) models unbounded capacity, the regime the paper's \
             numbers live in. Low values synthesise a CPU-starved fleet — \
             an injectable regression for monitor tests.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Synthesise a trace corpus")
    Term.(const generate $ seed_arg $ scale_arg $ no_cross $ cores $ out)

(* --- impact --- *)

let impact corpus pats breakdown per_scenario cache j mode faults obs =
  with_obs obs @@ fun () ->
  with_faults faults @@ fun () ->
  let components = components_of pats in
  with_cli_pool j @@ fun pool ->
  let corpus = read_corpus ~pool ~mode corpus in
  let corpus, cov = screen_corpus corpus in
  print_coverage cov;
  with_snapshot ~cache ~components pool corpus @@ fun snap ->
  let r =
    match snap with
    | Some snap -> Dpcore.Pipeline.run_impact_snap snap corpus
    | None -> Dpcore.Pipeline.run_impact ~pool components corpus
  in
  Dputil.Table.print (Dpcore.Report.impact_summary r);
  if breakdown then begin
    let modules =
      match snap with
      | Some snap -> Dpcore.Pipeline.modules_snap snap corpus
      | None ->
        let graphs =
          Dpcore.Pipeline.build_graphs ~pool corpus
            (Dptrace.Corpus.all_instances corpus)
        in
        Dpcore.Impact.by_module components graphs
    in
    print_newline ();
    Dputil.Table.print (Dpcore.Report.module_breakdown modules)
  end;
  if per_scenario then begin
    print_newline ();
    let scenario_count =
      List.length (Dptrace.Corpus.scenario_names corpus)
    in
    let impacts =
      with_progress obs ~label:"scenarios" ~total:scenario_count
        "pipeline.scenarios_done" (fun () ->
          match snap with
          | Some snap -> Dpcore.Pipeline.impact_per_scenario_snap snap corpus
          | None -> Dpcore.Pipeline.impact_per_scenario ~pool components corpus)
    in
    Dputil.Table.print (Dpcore.Report.scenario_impacts impacts)
  end;
  0

let impact_cmd =
  let breakdown =
    Arg.(
      value & flag
      & info [ "by-module" ]
          ~doc:"Also print the per-driver-module attribution table.")
  in
  let per_scenario =
    Arg.(
      value & flag
      & info [ "per-scenario" ] ~doc:"Also print the per-scenario IA table.")
  in
  Cmd.v
    (Cmd.info "impact" ~doc:"Impact analysis (Section 3)")
    Term.(
      const impact $ corpus_arg $ components_arg $ breakdown $ per_scenario
      $ cache_arg $ domains_arg $ mode_arg $ fault_arg $ obs_opts_term)

(* --- causality --- *)

let causality corpus pats scenario k top j mode faults obs =
  with_obs obs @@ fun () ->
  with_faults faults @@ fun () ->
  let components = components_of pats in
  with_cli_pool j @@ fun pool ->
  let corpus = read_corpus ~pool ~mode corpus in
  let corpus, cov = screen_corpus corpus in
  print_coverage cov;
  let r = Dpcore.Pipeline.run_scenario ~pool ~k components corpus scenario in
  let f, m, s = Dpcore.Classify.counts r.Dpcore.Pipeline.classification in
  Format.printf "scenario %s: %d instances (fast %d / middle %d / slow %d)@."
    scenario (f + m + s) f m s;
  let durations =
    Dptrace.Corpus.instances_of corpus scenario
    |> List.map (fun (_, i) ->
           Dputil.Time.to_ms_float (Dptrace.Scenario.duration i))
    |> Array.of_list
  in
  let spec = r.Dpcore.Pipeline.classification.Dpcore.Classify.spec in
  print_string
    (Dputil.Histogram.render_with_markers
       ~markers:
         [
           ("T_fast", Dputil.Time.to_ms_float spec.Dptrace.Scenario.tfast);
           ("T_slow", Dputil.Time.to_ms_float spec.Dptrace.Scenario.tslow);
         ]
       (Dputil.Histogram.create ~buckets:14 durations));
  Format.printf "%s@." (Dpcore.Report.awg_summary r.Dpcore.Pipeline.slow_awg);
  let mining = r.Dpcore.Pipeline.mining in
  Format.printf
    "meta-patterns: %d fast-class, %d slow-class; %d contrasts; %d contrast \
     patterns@."
    mining.Dpcore.Mining.fast_meta_count mining.Dpcore.Mining.slow_meta_count
    (List.length mining.Dpcore.Mining.contrast_metas)
    (List.length mining.Dpcore.Mining.patterns);
  Format.printf "ITC=%s TTC=%s@."
    (Dpcore.Report.pct r.Dpcore.Pipeline.coverages.Dpcore.Evaluation.itc)
    (Dpcore.Report.pct r.Dpcore.Pipeline.coverages.Dpcore.Evaluation.ttc);
  print_string (Dpcore.Report.top_patterns mining.Dpcore.Mining.patterns ~n:top);
  0

let causality_cmd =
  let scenario =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SCENARIO" ~doc:"Scenario name, e.g. BrowserTabCreate.")
  in
  let k =
    Arg.(
      value & opt int Dpcore.Mining.default_k
      & info [ "k" ] ~docv:"K" ~doc:"Maximum path-segment length.")
  in
  let top =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N" ~doc:"Patterns to print.")
  in
  Cmd.v
    (Cmd.info "causality" ~doc:"Causality analysis (Section 4)")
    Term.(
      const causality $ corpus_arg $ components_arg $ scenario $ k $ top
      $ domains_arg $ mode_arg $ fault_arg $ obs_opts_term)

(* --- report --- *)

let report corpus json cache j mode faults obs =
  with_obs obs @@ fun () ->
  with_faults faults @@ fun () ->
  let components = Dpcore.Component.drivers in
  if json then Dpcore.Provenance.enable ();
  with_cli_pool j @@ fun pool ->
  let corpus = read_corpus ~pool ~mode corpus in
  let corpus, cov = screen_corpus corpus in
  if not json then print_coverage cov;
  with_snapshot ~cache ~components pool corpus @@ fun snap ->
  let impact, impact_prov =
    match snap with
    | Some snap -> Dpcore.Pipeline.run_impact_prov_snap snap corpus
    | None -> Dpcore.Pipeline.run_impact_prov ~pool components corpus
  in
  if not json then Dputil.Table.print (Dpcore.Report.impact_summary impact);
  let scenario_names =
    List.map
      (fun (tpl : Dpworkload.Scenarios.template) ->
        tpl.Dpworkload.Scenarios.spec.Dptrace.Scenario.name)
      Dpworkload.Scenarios.named
  in
  let named =
    with_progress obs ~label:"scenarios" ~total:(List.length scenario_names)
      "pipeline.scenarios_done" (fun () ->
        match snap with
        | Some snap ->
          Dpcore.Pipeline.run_all_snap ~pool ~scenarios:scenario_names snap
            corpus
        | None ->
          Dpcore.Pipeline.run_all ~pool ~scenarios:scenario_names components
            corpus)
  in
  if json then begin
    let modules =
      match snap with
      | Some snap -> Dpcore.Pipeline.modules_snap snap corpus
      | None ->
        let graphs =
          Dpcore.Pipeline.build_graphs ~pool corpus
            (Dptrace.Corpus.all_instances corpus)
        in
        Dpcore.Impact.by_module components graphs
    in
    print_string
      (Dputil.Jsonw.to_string
         (Dpcore.Report.Json.document ~coverage:cov ~impact ~impact_prov
            ~modules ~scenarios:named ()))
  end
  else begin
    let classes =
      List.map (fun (n, r) -> (n, r.Dpcore.Pipeline.classification)) named
    in
    print_newline ();
    Dputil.Table.print (Dpcore.Report.scenario_classes classes);
    print_newline ();
    Dputil.Table.print (Dpcore.Report.coverages named);
    print_newline ();
    Dputil.Table.print (Dpcore.Report.ranking named);
    print_newline ();
    Dputil.Table.print
      (Dpcore.Report.driver_types named
         ~type_names:
           (List.map Dpworkload.Taxonomy.type_name Dpworkload.Taxonomy.all_types)
         ~type_of:Dpworkload.Taxonomy.type_name_of_signature)
  end;
  0

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Emit the same results as one structured JSON document on \
           stdout instead of text tables. Enables provenance recording, \
           so every impact figure, module row and mined pattern carries \
           the trace events and scenario instances behind it.")

let report_cmd =
  Cmd.v
    (Cmd.info "report" ~doc:"Regenerate the paper's tables")
    Term.(
      const report $ corpus_arg $ json_arg $ cache_arg $ domains_arg
      $ mode_arg $ fault_arg $ obs_opts_term)

(* --- case --- *)

let case () =
  let case = Dpworkload.Motivating_case.build () in
  print_string (Dpworkload.Motivating_case.describe case);
  print_newline ();
  print_string
    (Dptrace.Timeline.render_instance case.Dpworkload.Motivating_case.stream
       case.Dpworkload.Motivating_case.browser_instance);
  print_newline ();
  let wg =
    Dpwaitgraph.Wait_graph.build case.Dpworkload.Motivating_case.stream
      case.Dpworkload.Motivating_case.browser_instance
  in
  Format.printf "%a@." Dpwaitgraph.Wait_graph.pp wg;
  let corpus = Dpworkload.Motivating_case.corpus () in
  let r =
    Dpcore.Pipeline.run_scenario Dpcore.Component.drivers corpus
      "BrowserTabCreate"
  in
  print_endline "Aggregated Wait Graph of the slow class (Figure 2):";
  print_string (Dpcore.Awg.render r.Dpcore.Pipeline.slow_awg);
  print_endline "Top contrast patterns:";
  print_string
    (Dpcore.Report.top_patterns r.Dpcore.Pipeline.mining.Dpcore.Mining.patterns ~n:3);
  0

let case_cmd =
  Cmd.v
    (Cmd.info "case" ~doc:"Print the Figure 1 motivating case")
    Term.(const case $ const ())

(* --- validate --- *)

let validate corpus mode =
  let corpus = read_corpus ~mode corpus in
  match Dptrace.Validate.check_corpus corpus with
  | [] ->
    Format.printf "%a@.OK: no violations@." Dptrace.Corpus.pp_summary corpus;
    0
  | violations ->
    List.iter
      (fun (sid, v) ->
        Format.printf "stream %d: %a@." sid Dptrace.Validate.pp_violation v)
      violations;
    1

let validate_cmd =
  Cmd.v
    (Cmd.info "validate" ~doc:"Structural checks over a corpus")
    Term.(const validate $ corpus_arg $ mode_arg)

(* --- dot --- *)

let dot corpus scenario out mode =
  let corpus = read_corpus ~mode corpus in
  let r = Dpcore.Pipeline.run_scenario Dpcore.Component.drivers corpus scenario in
  let text = Dpcore.Awg.to_dot r.Dpcore.Pipeline.slow_awg in
  (match out with
  | Some path ->
    let oc = open_out path in
    output_string oc text;
    close_out oc;
    Printf.printf "wrote %s (render with: dot -Tsvg %s)\n" path path
  | None -> print_string text);
  0

let dot_cmd =
  let scenario =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SCENARIO" ~doc:"Scenario whose slow-class AWG to render.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output path (stdout if absent).")
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Render a scenario's Aggregated Wait Graph as Graphviz")
    Term.(const dot $ corpus_arg $ scenario $ out $ mode_arg)

(* --- anonymize --- *)

let anonymize corpus out mapping_out keep_scenarios mode =
  let corpus = read_corpus ~mode corpus in
  let anonymised, mapping = Dptrace.Anonymize.corpus ~keep_scenarios corpus in
  save_corpus out anonymised;
  (match mapping_out with
  | Some path ->
    let oc = open_out path in
    List.iter (fun (a, b) -> Printf.fprintf oc "%s -> %s\n" a b) mapping;
    close_out oc;
    Printf.printf "wrote %s and mapping %s (%d renames)\n" out path
      (List.length mapping)
  | None -> Printf.printf "wrote %s (%d renames)\n" out (List.length mapping));
  0

let anonymize_cmd =
  let out =
    Arg.(
      value
      & opt string "anonymized.dpt"
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output corpus path.")
  in
  let mapping =
    Arg.(
      value
      & opt (some string) None
      & info [ "mapping" ] ~docv:"FILE" ~doc:"Where to write the rename table.")
  in
  let keep =
    Arg.(value & flag & info [ "keep-scenarios" ] ~doc:"Preserve scenario names.")
  in
  Cmd.v
    (Cmd.info "anonymize" ~doc:"Scrub driver/function/thread names from a corpus")
    Term.(const anonymize $ corpus_arg $ out $ mapping $ keep $ mode_arg)

(* --- import-etw --- *)

let import_etw input out specs =
  let stream = Dptrace.Etw.load input in
  let specs =
    List.map
      (fun spec_text ->
        match String.split_on_char ':' spec_text with
        | [ name; tfast; tslow ] ->
          Dptrace.Scenario.spec ~name
            ~tfast:(Dputil.Time.ms (int_of_string tfast))
            ~tslow:(Dputil.Time.ms (int_of_string tslow))
        | _ -> failwith ("bad --spec (want NAME:TFAST_MS:TSLOW_MS): " ^ spec_text))
      specs
  in
  let corpus = Dptrace.Corpus.create ~streams:[ stream ] ~specs in
  (match Dptrace.Validate.check_corpus corpus with
  | [] -> ()
  | violations ->
    List.iter
      (fun (sid, v) ->
        Dpobs.Log.warn "stream %d: %a" sid Dptrace.Validate.pp_violation v)
      violations);
  save_corpus out corpus;
  Format.printf "%a@.wrote %s@." Dptrace.Corpus.pp_summary corpus out;
  0

let import_etw_cmd =
  let input =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"DUMP" ~doc:"xperf-style dump file (see Dptrace.Etw).")
  in
  let out =
    Arg.(
      value
      & opt string "imported.dpt"
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output corpus path.")
  in
  let specs =
    Arg.(
      value & opt_all string []
      & info [ "spec" ] ~docv:"NAME:TFAST_MS:TSLOW_MS"
          ~doc:"Scenario thresholds (repeatable).")
  in
  Cmd.v
    (Cmd.info "import-etw" ~doc:"Convert an xperf-style dump to a corpus")
    Term.(const import_etw $ input $ out $ specs)

(* --- convert --- *)

let convert input out j mode faults obs =
  with_obs obs @@ fun () ->
  with_faults faults @@ fun () ->
  with_cli_pool j @@ fun pool ->
  let in_format = sniff_format input in
  let corpus = load_corpus ~pool ~mode input in
  with_progress obs ~label:"streams"
    ~total:(List.length corpus.Dptrace.Corpus.streams)
    "codec_v2.streams_written" (fun () -> save_corpus ~pool out corpus);
  Format.printf "%a@.%s (%s, %d bytes) -> %s (%s, %d bytes)@."
    Dptrace.Corpus.pp_summary corpus input (format_name in_format)
    (file_size input) out
    (format_name (format_of_out out))
    (file_size out);
  0

let convert_cmd =
  let input =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"IN" ~doc:"Input corpus (any format, auto-detected).")
  in
  let out =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"OUT"
          ~doc:
            "Output path; the extension selects the format (.dpf framed \
             v2, .dpb binary v1, anything else text v1).")
  in
  Cmd.v
    (Cmd.info "convert"
       ~doc:"Re-encode a corpus (e.g. upgrade a v1 file to framed v2)")
    Term.(
      const convert $ input $ out $ domains_arg $ mode_arg $ fault_arg
      $ obs_opts_term)

(* --- diff --- *)

let diff before after scenario threshold min_support json mode =
  let before_c = load_corpus ~mode before
  and after_c = load_corpus ~mode after in
  let run c = Dpcore.Pipeline.run_scenario Dpcore.Component.drivers c scenario in
  let rb = run before_c and ra = run after_c in
  let entries =
    Dpcore.Diff.compare_patterns ~threshold ~min_support
      ~before:rb.Dpcore.Pipeline.mining.Dpcore.Mining.patterns
      ~after:ra.Dpcore.Pipeline.mining.Dpcore.Mining.patterns ()
  in
  if json then
    print_string
      (Dputil.Jsonw.to_string
         (Dpcore.Diff.json_document ~scenario ~threshold ~min_support entries))
  else begin
    Printf.printf "%s\n" (Dpcore.Diff.summary entries);
    List.iter
      (fun e ->
        match e.Dpcore.Diff.change with
        | Dpcore.Diff.Stable -> ()
        | _ -> Format.printf "%a@." Dpcore.Diff.pp_entry e)
      entries
  end;
  0

let min_support_arg =
  let doc =
    "Instance-count floor for a pattern verdict: appeared/regressed \
     (and disappeared) entries covering fewer instances classify as \
     stable, so one-off patterns cannot raise noise."
  in
  Arg.(value & opt int 1 & info [ "min-support" ] ~docv:"N" ~doc)

let diff_cmd =
  let before =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"BEFORE" ~doc:"Old corpus.")
  in
  let after =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"AFTER" ~doc:"New corpus.")
  in
  let scenario =
    Arg.(required & pos 2 (some string) None & info [] ~docv:"SCENARIO" ~doc:"Scenario.")
  in
  let threshold =
    Arg.(
      value & opt float 1.5
      & info [ "threshold" ] ~docv:"R" ~doc:"Avg-cost regression factor.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the diff as JSON (the schema the monitor's alert log \
             embeds) instead of text.")
  in
  Cmd.v
    (Cmd.info "diff" ~doc:"Compare mined patterns across two corpora")
    Term.(
      const diff $ before $ after $ scenario $ threshold $ min_support_arg
      $ json $ mode_arg)

(* --- baseline --- *)

let baseline corpus mode =
  let corpus = read_corpus ~mode corpus in
  let cg = Dpbaseline.Callgraph.profile corpus in
  Format.printf "call-graph profile: total CPU %a, driver share %s@."
    Dputil.Time.pp
    (Dpbaseline.Callgraph.total_cpu cg)
    (Dpcore.Report.pct
       (Dpbaseline.Callgraph.fraction_matching cg (fun s ->
            Dpcore.Component.matches_signature Dpcore.Component.drivers s)));
  List.iter
    (fun row -> Format.printf "  %a@." Dpbaseline.Callgraph.pp_row row)
    (Dpbaseline.Callgraph.top cg ~n:8);
  let lp = Dpbaseline.Lock_profiler.analyze corpus in
  Format.printf "@.lock contention sites (total blocked %a):@." Dputil.Time.pp
    (Dpbaseline.Lock_profiler.total_wait lp);
  List.iter
    (fun site -> Format.printf "  %a@." Dpbaseline.Lock_profiler.pp_site site)
    (Dpbaseline.Lock_profiler.top lp ~n:8);
  Format.printf "@.StackMine-style costly stack patterns:@.";
  List.iter
    (fun p -> Format.printf "  %a@." Dpbaseline.Stackmine.pp_pattern p)
    (Dpbaseline.Stackmine.top (Dpbaseline.Stackmine.mine corpus) ~n:8);
  0

let baseline_cmd =
  Cmd.v
    (Cmd.info "baseline" ~doc:"Run the Section 6 baseline analyses")
    Term.(const baseline $ corpus_arg $ mode_arg)

(* --- witness --- *)

let witness corpus scenario rank limit mode =
  let corpus = read_corpus ~mode corpus in
  let r = Dpcore.Pipeline.run_scenario Dpcore.Component.drivers corpus scenario in
  let patterns = r.Dpcore.Pipeline.mining.Dpcore.Mining.patterns in
  match List.nth_opt patterns (rank - 1) with
  | None ->
    Printf.eprintf "only %d patterns mined for %s\n" (List.length patterns) scenario;
    1
  | Some pattern ->
    Format.printf "pattern #%d:@.%a@.@." rank Dpcore.Mining.pp_pattern pattern;
    let ws =
      Dpcore.Explorer.witnesses ~limit Dpcore.Component.drivers corpus ~scenario
        ~pattern ()
    in
    if ws = [] then print_endline "no witness instance found";
    List.iter (fun w -> print_string (Dpcore.Explorer.render w)) ws;
    (match ws with
    | w :: _ ->
      print_newline ();
      print_string
        (Dptrace.Timeline.render_instance w.Dpcore.Explorer.stream
           w.Dpcore.Explorer.instance)
    | [] -> ());
    0

let witness_cmd =
  let scenario =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SCENARIO" ~doc:"Scenario name.")
  in
  let rank =
    Arg.(
      value & opt int 1
      & info [ "rank" ] ~docv:"N" ~doc:"Which ranked pattern to trace back (1-based).")
  in
  let limit =
    Arg.(value & opt int 3 & info [ "limit" ] ~docv:"N" ~doc:"Witnesses to print.")
  in
  Cmd.v
    (Cmd.info "witness"
       ~doc:"Trace a mined pattern back to concrete scenario instances")
    Term.(const witness $ corpus_arg $ scenario $ rank $ limit $ mode_arg)

(* --- explain: provenance-tracked drill-down --- *)

let explain_component ~pool ~timeline components corpus name =
  let _impact, prov = Dpcore.Pipeline.run_impact_prov ~pool components corpus in
  match List.assoc_opt name prov.Dpcore.Provenance.by_module with
  | None ->
    Printf.eprintf "no provenance recorded for module %s (known: %s)\n" name
      (String.concat ", " (List.map fst prov.Dpcore.Provenance.by_module));
    1
  | Some topk ->
    let records = Dpcore.Provenance.Topk.to_list topk in
    Format.printf
      "module %s: %d costliest distinct wait events behind its \
       D_wait/D_waitdist@."
      name (List.length records);
    List.iteri
      (fun i wr ->
        Format.printf "@.#%d  %a@." (i + 1) Dpcore.Provenance.pp_wait_record wr;
        match Dpcore.Explorer.resolve_ref corpus wr.Dpcore.Provenance.wr_ref with
        | Some (st, inst) ->
          print_string
            (Dpcore.Explorer.render_event_window st
               ~event_id:wr.Dpcore.Provenance.wr_event);
          if timeline then
            print_string (Dptrace.Timeline.render_instance st inst)
        | None -> ())
      records;
    0

let explain_pattern ~pool ~timeline components corpus scenario rank limit =
  let r = Dpcore.Pipeline.run_scenario ~pool components corpus scenario in
  let patterns = r.Dpcore.Pipeline.mining.Dpcore.Mining.patterns in
  match List.nth_opt patterns (rank - 1) with
  | None ->
    Printf.eprintf "only %d patterns mined for %s\n" (List.length patterns)
      scenario;
    1
  | Some pattern ->
    Format.printf "scenario %s, contrast pattern #%d of %d:@.%a@." scenario
      rank (List.length patterns) Dpcore.Mining.pp_pattern pattern;
    (* 1. The aggregated propagation paths this tuple came from. *)
    let paths =
      List.filter
        (fun path ->
          Dpcore.Tuple.equal (Dpcore.Tuple.of_segment path)
            pattern.Dpcore.Mining.tuple)
        (Dpcore.Awg.full_paths r.Dpcore.Pipeline.slow_awg)
    in
    Format.printf "@.aggregated propagation path(s) in the slow-class AWG:@.";
    List.iteri
      (fun i path ->
        Format.printf "path #%d:@." (i + 1);
        List.iteri
          (fun depth (node : Dpcore.Awg.node) ->
            Format.printf "%s%a  C=%a N=%d max=%a@."
              (String.make (2 * (depth + 1)) ' ')
              Dpcore.Awg.status_pp node.Dpcore.Awg.status Dputil.Time.pp
              node.Dpcore.Awg.cost node.Dpcore.Awg.count Dputil.Time.pp
              node.Dpcore.Awg.max_cost)
          path)
      paths;
    (* 2. The scenario instances the aggregation recorded as support. *)
    let entries = Dpcore.Provenance.Wset.entries pattern.Dpcore.Mining.witnesses in
    Format.printf "@.slow-class witness instances (provenance, cost-ranked):@.";
    List.iter
      (fun (iref, cost, count) ->
        Format.printf "  %a  contributed=%a over %d event(s)@."
          Dpcore.Provenance.pp_ref iref Dputil.Time.pp cost count)
      entries;
    let fast = Dpcore.Provenance.Wset.entries pattern.Dpcore.Mining.fast_witnesses in
    if fast <> [] then
      Format.printf
        "fast-class counterparts: %d instance(s), costliest %a@."
        (List.length fast)
        Dputil.Time.pp
        (match fast with (_, c, _) :: _ -> c | [] -> 0);
    (* 3. Concrete matched chains with raw event windows. *)
    let ws =
      Dpcore.Explorer.witnesses ~limit components corpus ~scenario ~pattern ()
    in
    if ws = [] then print_endline "\nno concrete witness chain found"
    else
      List.iter
        (fun w ->
          print_newline ();
          print_string (Dpcore.Explorer.render w);
          print_string (Dpcore.Explorer.render_chain_events w);
          if timeline then
            print_string
              (Dptrace.Timeline.render_instance w.Dpcore.Explorer.stream
                 w.Dpcore.Explorer.instance))
        ws;
    0

let explain corpus scenario rank component limit timeline j mode obs =
  with_obs obs @@ fun () ->
  Dpcore.Provenance.enable ();
  let components = Dpcore.Component.drivers in
  with_cli_pool j @@ fun pool ->
  let corpus = read_corpus ~pool ~mode corpus in
  match (component, scenario) with
  | Some name, _ -> explain_component ~pool ~timeline components corpus name
  | None, Some scenario ->
    explain_pattern ~pool ~timeline components corpus scenario rank limit
  | None, None ->
    prerr_endline
      "explain: give a SCENARIO (pattern drill-down) or --component MODULE";
    1

let explain_cmd =
  let scenario =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"SCENARIO"
          ~doc:"Scenario whose ranked contrast pattern to explain.")
  in
  let rank =
    Arg.(
      value & opt int 1
      & info [ "rank"; "pattern" ] ~docv:"N"
          ~doc:"Which ranked pattern to drill into (1-based, default 1).")
  in
  let component =
    Arg.(
      value
      & opt (some string) None
      & info [ "component"; "module" ] ~docv:"MODULE"
          ~doc:
            "Explain a component module (e.g. storahci.sys) instead: the \
             top-K costliest distinct wait events behind its impact \
             figures, each with its raw trace window.")
  in
  let limit =
    Arg.(
      value & opt int 2
      & info [ "limit" ] ~docv:"N" ~doc:"Concrete witness chains to print.")
  in
  let timeline =
    Arg.(
      value & flag
      & info [ "timeline" ]
          ~doc:
            "Also draw each witness instance's window as the Figure 1 \
             ASCII thread timeline.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Drill an analysis result down to the raw trace events behind it \
          (pattern -> AWG path -> witness instances -> event windows)")
    Term.(
      const explain $ corpus_arg $ scenario $ rank $ component $ limit
      $ timeline $ domains_arg $ mode_arg $ obs_opts_term)

(* --- stats --- *)

let stats corpus mode faults obs =
  (* Counters first, via the telemetry registry ([Corpus_stats.publish]):
     the same numbers any instrumented run exports with --metrics-out. *)
  with_obs ~metrics:true obs @@ fun () ->
  with_faults faults @@ fun () ->
  let corpus = read_corpus ~mode corpus in
  let s = Dptrace.Corpus_stats.compute corpus in
  Dptrace.Corpus_stats.publish s;
  print_string (Dpobs.Metrics.render ~prefix:"corpus." ());
  print_newline ();
  print_string (Dptrace.Corpus_stats.render s);
  0

let stats_cmd =
  Cmd.v
    (Cmd.info "stats" ~doc:"Descriptive statistics of a corpus")
    Term.(const stats $ corpus_arg $ mode_arg $ fault_arg $ obs_opts_term)

(* --- export-trace / flame: visual observability --- *)

let write_text path text =
  let oc = open_out_bin path in
  output_string oc text;
  close_out oc

let export_trace corpus scenario slow fast rank out pats j mode obs =
  with_obs obs @@ fun () ->
  let components = components_of pats in
  with_cli_pool j @@ fun pool ->
  let corpus = read_corpus ~pool ~mode corpus in
  let exemplars =
    match rank with
    | None -> (
      match Dpcore.Classify.classify corpus scenario with
      | exception Not_found ->
        Printf.eprintf "no spec for scenario %s in the corpus\n" scenario;
        []
      | c -> Dpviz.Trace_export.exemplars_of_classes ~slow ~fast c)
    | Some rank -> (
      (* Provenance-resolved exemplars: the instances that realise the
         ranked contrast pattern, their matched chains as markers. *)
      Dpcore.Provenance.enable ();
      let r = Dpcore.Pipeline.run_scenario ~pool components corpus scenario in
      let patterns = r.Dpcore.Pipeline.mining.Dpcore.Mining.patterns in
      match List.nth_opt patterns (rank - 1) with
      | None ->
        Printf.eprintf "only %d patterns mined for %s\n"
          (List.length patterns) scenario;
        []
      | Some pattern ->
        Dpviz.Trace_export.exemplars_of_witnesses
          (Dpcore.Explorer.witnesses ~limit:slow components corpus ~scenario
             ~pattern ()))
  in
  if exemplars = [] then begin
    Printf.eprintf "nothing to export for scenario %s\n" scenario;
    1
  end
  else begin
    write_text out (Dpviz.Trace_export.export ~components exemplars);
    Printf.printf
      "wrote %s (%d exemplar instance(s); open in https://ui.perfetto.dev \
       or chrome://tracing)\n"
      out (List.length exemplars);
    0
  end

let export_trace_cmd =
  let scenario =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SCENARIO" ~doc:"Scenario whose instances to export.")
  in
  let slow =
    Arg.(
      value & opt int 3
      & info [ "slow" ] ~docv:"N"
          ~doc:
            "Slowest instances to export (with $(b,--rank): witness \
             instances of the pattern).")
  in
  let fast =
    Arg.(
      value & opt int 3
      & info [ "fast" ] ~docv:"N" ~doc:"Fastest instances to export.")
  in
  let rank =
    Arg.(
      value
      & opt (some int) None
      & info [ "rank"; "pattern" ] ~docv:"N"
          ~doc:
            "Export the witness instances of the N-th ranked contrast \
             pattern instead of the duration exemplars, with the matched \
             chain flagged by markers.")
  in
  let out =
    Arg.(
      value & opt string "trace.json"
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Output file (Chrome trace-event JSON).")
  in
  Cmd.v
    (Cmd.info "export-trace"
       ~doc:
         "Export scenario instances as a Perfetto-loadable trace (one \
          track per thread, wait-graph edges as flow arrows, \
          concurrent-waiters counter, instance and pattern markers)")
    Term.(
      const export_trace $ corpus_arg $ scenario $ slow $ fast $ rank $ out
      $ components_arg $ domains_arg $ mode_arg $ obs_opts_term)

let flame corpus scenario out_dir slow fast top pats j mode obs =
  with_obs obs @@ fun () ->
  let components = components_of pats in
  with_cli_pool j @@ fun _pool ->
  let corpus = read_corpus ~mode corpus in
  match Dpcore.Classify.classify corpus scenario with
  | exception Not_found ->
    Printf.eprintf "no spec for scenario %s in the corpus\n" scenario;
    1
  | c ->
    let b = Dpviz.Bundle.write ~components ~slow ~fast ~dir:out_dir c in
    List.iter (Printf.printf "wrote %s\n") b.Dpviz.Bundle.files;
    let nf, _, ns = Dpcore.Classify.counts c in
    Printf.printf
      "\nslow-vs-fast differential (%d slow vs %d fast instance(s)), \
       per-instance AWG cost growth:\n"
      ns nf;
    if b.Dpviz.Bundle.diff = [] then
      print_endline "  (no positive slow-minus-fast path)"
    else
      List.iteri
        (fun i (path, delta) ->
          if i < top then
            Printf.printf "  #%d  +%dus  %s\n" (i + 1) delta
              (String.concat ";" path))
        b.Dpviz.Bundle.diff;
    0

let flame_cmd =
  let scenario =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SCENARIO" ~doc:"Scenario to profile.")
  in
  let out_dir =
    Arg.(
      value & opt string "views"
      & info [ "out-dir"; "o" ] ~docv:"DIR"
          ~doc:"Directory for the emitted artifacts (created if missing).")
  in
  let slow =
    Arg.(
      value & opt int 3
      & info [ "slow" ] ~docv:"N"
          ~doc:"Slow exemplars in the bundled Perfetto trace.")
  in
  let fast =
    Arg.(
      value & opt int 3
      & info [ "fast" ] ~docv:"N"
          ~doc:"Fast exemplars in the bundled Perfetto trace.")
  in
  let top =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N"
          ~doc:"Differential paths to print (the files keep all).")
  in
  Cmd.v
    (Cmd.info "flame"
       ~doc:
         "Emit folded-stacks and speedscope flame views per contrast \
          class, plus the slow-vs-fast differential that attributes \
          IA_wait growth to its signature paths")
    Term.(
      const flame $ corpus_arg $ scenario $ out_dir $ slow $ fast $ top
      $ components_arg $ domains_arg $ mode_arg $ obs_opts_term)

(* --- timeline --- *)

let timeline corpus stream_id instance_index width mode =
  let corpus = read_corpus ~mode corpus in
  match
    List.find_opt
      (fun (st : Dptrace.Stream.t) -> st.Dptrace.Stream.id = stream_id)
      corpus.Dptrace.Corpus.streams
  with
  | None ->
    Printf.eprintf "no stream with id %d\n" stream_id;
    1
  | Some st -> (
    match instance_index with
    | None ->
      print_string (Dptrace.Timeline.render ~width st);
      0
    | Some i -> (
      match List.nth_opt st.Dptrace.Stream.instances i with
      | Some inst ->
        Format.printf "%a@." Dptrace.Scenario.pp_instance inst;
        print_string (Dptrace.Timeline.render_instance ~width st inst);
        0
      | None ->
        Printf.eprintf "stream %d has %d instances\n" stream_id
          (List.length st.Dptrace.Stream.instances);
        1))

let timeline_cmd =
  let stream_id =
    Arg.(
      required
      & pos 0 (some int) None
      & info [] ~docv:"STREAM" ~doc:"Stream id.")
  in
  let instance_index =
    Arg.(
      value
      & opt (some int) None
      & info [ "instance" ] ~docv:"I" ~doc:"Zoom to the I-th instance (0-based).")
  in
  let width =
    Arg.(value & opt int 72 & info [ "width" ] ~docv:"COLS" ~doc:"Timeline columns.")
  in
  Cmd.v
    (Cmd.info "timeline" ~doc:"ASCII thread timeline of a trace stream")
    Term.(
      const timeline $ corpus_arg $ stream_id $ instance_index $ width
      $ mode_arg)

(* --- analyze: the one-shot full report --- *)

let analyze corpus_path out json top_patterns_n cache j mode faults obs =
  with_obs obs @@ fun () ->
  with_faults faults @@ fun () ->
  let components = Dpcore.Component.drivers in
  if json then begin
    Dpcore.Provenance.enable ();
    with_cli_pool j @@ fun pool ->
    let corpus = read_corpus ~pool ~mode corpus_path in
    let corpus, cov = screen_corpus corpus in
    with_snapshot ~cache ~components pool corpus @@ fun snap ->
    let impact, impact_prov =
      match snap with
      | Some snap -> Dpcore.Pipeline.run_impact_prov_snap snap corpus
      | None -> Dpcore.Pipeline.run_impact_prov ~pool components corpus
    in
    let modules =
      match snap with
      | Some snap -> Dpcore.Pipeline.modules_snap snap corpus
      | None ->
        let graphs =
          Dpcore.Pipeline.build_graphs ~pool corpus
            (Dptrace.Corpus.all_instances corpus)
        in
        Dpcore.Impact.by_module components graphs
    in
    let named =
      with_progress obs ~label:"scenarios"
        ~total:(List.length (Dptrace.Corpus.scenario_names corpus))
        "pipeline.scenarios_done" (fun () ->
          match snap with
          | Some snap -> Dpcore.Pipeline.run_all_snap ~pool snap corpus
          | None -> Dpcore.Pipeline.run_all ~pool components corpus)
    in
    let doc =
      Dpcore.Report.Json.document ~coverage:cov ~impact ~impact_prov ~modules
        ~scenarios:named ()
    in
    (match out with
    | Some path ->
      let oc = open_out path in
      Dputil.Jsonw.output oc doc;
      close_out oc;
      Printf.printf "wrote %s\n" path
    | None -> Dputil.Jsonw.output stdout doc);
    0
  end
  else begin
  with_cli_pool j @@ fun pool ->
  let corpus = read_corpus ~pool ~mode corpus_path in
  let corpus, cov = screen_corpus corpus in
  with_snapshot ~cache ~components pool corpus @@ fun snap ->
  let buf = Buffer.create 65536 in
  let line fmt = Format.kasprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let block text =
    Buffer.add_string buf "```\n";
    Buffer.add_string buf text;
    if text <> "" && text.[String.length text - 1] <> '\n' then
      Buffer.add_char buf '\n';
    Buffer.add_string buf "```\n\n"
  in
  line "# driveperf analysis report";
  line "";
  line "Corpus: %s"
    (match corpus_path with Some p -> p | None -> "(generated, default config)");
  line "";
  line "## Corpus";
  line "";
  block (Dptrace.Corpus_stats.render (Dptrace.Corpus_stats.compute corpus));
  if cov.Dpcore.Pipeline.cov_quarantined <> [] then begin
    line "### Coverage";
    line "";
    block (Dputil.Table.render (Dpcore.Report.stream_coverage cov))
  end;
  line "## Impact analysis (device drivers)";
  line "";
  block
    (Dputil.Table.render
       (Dpcore.Report.impact_summary
          (match snap with
          | Some snap -> Dpcore.Pipeline.run_impact_snap snap corpus
          | None -> Dpcore.Pipeline.run_impact ~pool components corpus)));
  let modules =
    match snap with
    | Some snap -> Dpcore.Pipeline.modules_snap snap corpus
    | None ->
      let graphs =
        Dpcore.Pipeline.build_graphs ~pool corpus
          (Dptrace.Corpus.all_instances corpus)
      in
      Dpcore.Impact.by_module components graphs
  in
  block (Dputil.Table.render (Dpcore.Report.module_breakdown modules));
  block
    (Dputil.Table.render
       (Dpcore.Report.scenario_impacts
          (match snap with
          | Some snap -> Dpcore.Pipeline.impact_per_scenario_snap snap corpus
          | None ->
            Dpcore.Pipeline.impact_per_scenario ~pool components corpus)));
  line "### Robustness";
  line "";
  block
    (Format.asprintf "%a" Dpcore.Robustness.pp
       (Dpcore.Robustness.bootstrap ~pool components corpus));
  line "## Causality analysis";
  (* Analyse every scenario with a spec and both classes non-empty. *)
  let scenario_results =
    with_progress obs ~label:"scenarios"
      ~total:(List.length (Dptrace.Corpus.scenario_names corpus))
      "pipeline.scenarios_done" (fun () ->
        match snap with
        | Some snap -> Dpcore.Pipeline.run_all_snap ~pool snap corpus
        | None -> Dpcore.Pipeline.run_all ~pool components corpus)
  in
  List.iter
    (fun (name, (r : Dpcore.Pipeline.scenario_result)) ->
        let f, m, sl = Dpcore.Classify.counts r.Dpcore.Pipeline.classification in
        if f > 0 && sl > 0 then begin
          line "";
          line "### %s" name;
          line "";
          line "- instances: %d (fast %d / middle %d / slow %d)" (f + m + sl) f m sl;
          line "- %s" (Dpcore.Report.awg_summary r.Dpcore.Pipeline.slow_awg);
          line "- ITC %s, TTC %s"
            (Dpcore.Report.pct r.Dpcore.Pipeline.coverages.Dpcore.Evaluation.itc)
            (Dpcore.Report.pct r.Dpcore.Pipeline.coverages.Dpcore.Evaluation.ttc);
          line "";
          let patterns = r.Dpcore.Pipeline.mining.Dpcore.Mining.patterns in
          block (Dpcore.Report.top_patterns patterns ~n:top_patterns_n);
          match patterns with
          | top :: _ -> (
            match
              Dpcore.Explorer.witnesses ~limit:1 components corpus ~scenario:name
                ~pattern:top ()
            with
            | w :: _ ->
              line "Top-pattern witness:";
              line "";
              block
                (Dpcore.Explorer.render w
                ^ "\n"
                ^ Dptrace.Timeline.render_instance w.Dpcore.Explorer.stream
                    w.Dpcore.Explorer.instance)
            | [] -> ())
          | [] -> ()
        end)
    scenario_results;
  line "## What conventional tools would report";
  line "";
  let cg = Dpbaseline.Callgraph.profile corpus in
  line "- CPU profiling: drivers are %s of total CPU (%s) — the wait-side \
        impact above is invisible to it."
    (Dpcore.Report.pct
       (Dpbaseline.Callgraph.fraction_matching cg (fun s ->
            Dpcore.Component.matches_signature components s)))
    (Dputil.Time.to_string (Dpbaseline.Callgraph.total_cpu cg));
  let lp = Dpbaseline.Lock_profiler.analyze corpus in
  line "- Lock contention: %d isolated sites totalling %s of blocked time, \
        with no links between them."
    (List.length (Dpbaseline.Lock_profiler.sites lp))
    (Dputil.Time.to_string (Dpbaseline.Lock_profiler.total_wait lp));
  (match out with
  | Some path ->
    let oc = open_out path in
    Buffer.output_buffer oc buf;
    close_out oc;
    Printf.printf "wrote %s\n" path
  | None -> Buffer.output_buffer stdout buf);
  0
  end

let analyze_cmd =
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Write the report here (stdout if absent).")
  in
  let top =
    Arg.(
      value & opt int 5
      & info [ "top" ] ~docv:"N" ~doc:"Patterns listed per scenario.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Produce the full analyst report (impact + causality + witnesses)")
    Term.(
      const analyze $ corpus_arg $ out $ json_arg $ top $ cache_arg
      $ domains_arg $ mode_arg $ fault_arg $ obs_opts_term)

(* --- cache: snapshot-cache directory maintenance --- *)

let cache_action action dir keep =
  let render fi =
    Printf.printf "%-40s  fp %s  %d entries  %d corrupt  %d bytes\n"
      (Filename.basename fi.Dpcore.Snapshot.fi_path)
      fi.Dpcore.Snapshot.fi_fingerprint fi.Dpcore.Snapshot.fi_entries
      fi.Dpcore.Snapshot.fi_corrupt fi.Dpcore.Snapshot.fi_bytes
  in
  match action with
  | `Stats ->
    let infos = List.map Dpcore.Snapshot.inspect (Dpcore.Snapshot.list_files dir) in
    List.iter render infos;
    let files = List.length infos in
    let entries =
      List.fold_left (fun a fi -> a + fi.Dpcore.Snapshot.fi_entries) 0 infos
    in
    let bytes =
      List.fold_left (fun a fi -> a + fi.Dpcore.Snapshot.fi_bytes) 0 infos
    in
    Printf.printf "%d file(s), %d entr%s, %d bytes\n" files entries
      (if entries = 1 then "y" else "ies")
      bytes;
    0
  | `Verify ->
    let infos = List.map Dpcore.Snapshot.inspect (Dpcore.Snapshot.list_files dir) in
    List.iter render infos;
    let corrupt =
      List.fold_left (fun a fi -> a + fi.Dpcore.Snapshot.fi_corrupt) 0 infos
    in
    if corrupt = 0 then begin
      Printf.printf "ok: every entry passes its checksum\n";
      0
    end
    else begin
      Printf.printf "%d corrupt entr%s (they will reload as cache misses)\n"
        corrupt
        (if corrupt = 1 then "y" else "ies");
      1
    end
  | `Gc ->
    let removed, reclaimed = Dpcore.Snapshot.gc ~keep dir in
    Printf.printf "removed %d file(s), reclaimed %d bytes (kept %d newest)\n"
      removed reclaimed keep;
    0

let cache_cmd =
  let action =
    let actions =
      [ ("stats", `Stats); ("verify", `Verify); ("gc", `Gc) ]
    in
    Arg.(
      required
      & pos 0 (some (enum actions)) None
      & info [] ~docv:"ACTION"
          ~doc:
            "$(b,stats) lists cache files with entry counts and sizes; \
             $(b,verify) checks every entry's checksum (exit 1 on \
             damage); $(b,gc) deletes all but the newest files.")
  in
  let dir =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"DIR" ~doc:"Cache directory (as passed to --cache).")
  in
  let keep =
    Arg.(
      value & opt int 4
      & info [ "keep" ] ~docv:"N"
          ~doc:"Cache files (configurations) to keep on $(b,gc).")
  in
  Cmd.v
    (Cmd.info "cache" ~doc:"Inspect and maintain --cache directories")
    Term.(const cache_action $ action $ dir $ keep)

(* --- monitor --- *)

let monitor dir replay listen interval max_ticks window top_patterns
    replicates seed min_support threshold lag_ms cache alert_log metrics_out
    view_dir pats j mode faults =
  with_faults faults @@ fun () ->
  let components = components_of pats in
  let rules =
    [
      Dpmon.Rules.Ia_drift { metric = `Wait };
      Dpmon.Rules.Pattern_appeared { min_support };
      Dpmon.Rules.Pattern_regressed { min_support; threshold };
      Dpmon.Rules.Ingest_lag { max_ms = lag_ms };
      Dpmon.Rules.Parse_failure;
    ]
  in
  let config =
    {
      Dpmon.Monitor.components;
      rules;
      window;
      k = Dpcore.Mining.default_k;
      top_patterns;
      replicates;
      seed;
      mode;
      cache_dir = cache;
      alert_log;
      metrics_out;
      view_dir;
    }
  in
  match replay with
  | Some manifest -> (
    match Dpmon.Monitor.replay config ~manifest with
    | s ->
      Printf.printf
        "replay: %d tick(s) over %d file(s): %d alert(s), %d parse \
         failure(s)\n"
        s.Dpmon.Monitor.r_ticks s.Dpmon.Monitor.r_files
        s.Dpmon.Monitor.r_alerts s.Dpmon.Monitor.r_parse_failures;
      0
    | exception Failure msg ->
      Dpobs.Log.error "%s" msg;
      1)
  | None -> (
    match
      with_cli_pool j @@ fun pool ->
      Dpmon.Monitor.watch ~pool ?listen ~interval_s:interval ?max_ticks
        config ~dir
    with
    | () -> 0
    | exception Failure msg ->
      Dpobs.Log.error "%s" msg;
      1)

let monitor_cmd =
  let dir =
    Arg.(
      value & opt string "."
      & info [ "dir"; "d" ] ~docv:"DIR"
          ~doc:
            "Corpus directory to tail: every new or changed .dpt/.dpb/.dpf \
             file is ingested on the next tick.")
  in
  let replay =
    Arg.(
      value
      & opt (some file) None
      & info [ "replay" ] ~docv:"MANIFEST"
          ~doc:
            "Deterministic replay: apply the manifest's clock/add/tick \
             directives under a virtual clock instead of watching \
             $(b,--dir). The same manifest always produces byte-identical \
             alert logs and metric expositions.")
  in
  let listen =
    Arg.(
      value
      & opt (some string) None
      & info [ "listen" ] ~docv:"ADDR"
          ~doc:
            "Serve the OpenMetrics exposition on http://ADDR/metrics \
             between ticks (PORT or HOST:PORT; port 0 picks one).")
  in
  let interval =
    Arg.(
      value & opt float 2.0
      & info [ "interval" ] ~docv:"SECONDS"
          ~doc:"Seconds between directory scans in watch mode.")
  in
  let max_ticks =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-ticks" ] ~docv:"N"
          ~doc:"Stop watch mode after N ticks (default: run until killed).")
  in
  let window =
    Arg.(
      value & opt int 8
      & info [ "window" ] ~docv:"N"
          ~doc:
            "Rolling window: the N most recently arrived corpus files \
             form the analysed corpus and the baseline.")
  in
  let top_patterns =
    Arg.(
      value & opt int 10
      & info [ "top-patterns" ] ~docv:"N"
          ~doc:
            "Baseline depth: diff only the N top-ranked mined patterns \
             per scenario (0 = all).")
  in
  let replicates =
    Arg.(
      value & opt int 200
      & info [ "replicates" ] ~docv:"N"
          ~doc:"Bootstrap replicates for the drift confidence interval.")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "bootstrap-seed" ] ~docv:"SEED"
          ~doc:"Bootstrap resampling seed.")
  in
  let min_support =
    let doc =
      "Pattern support floor for the appeared/regressed alert rules."
    in
    Arg.(
      value
      & opt int Dpmon.Rules.default_min_support
      & info [ "min-support" ] ~docv:"N" ~doc)
  in
  let threshold =
    Arg.(
      value & opt float 1.5
      & info [ "threshold" ] ~docv:"R"
          ~doc:"Avg-cost growth factor for the regression alert rule.")
  in
  let lag_ms =
    Arg.(
      value & opt int 60_000
      & info [ "lag-limit" ] ~docv:"MS"
          ~doc:"Ingest-lag alert threshold, milliseconds.")
  in
  let alert_log =
    Arg.(
      value
      & opt (some string) None
      & info [ "alert-log" ] ~docv:"FILE"
          ~doc:
            "Append alerts as JSON Lines (deterministic field order; \
             pattern alerts embed the $(b,diff --json) entry schema).")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Rewrite FILE after every tick with the full OpenMetrics \
             text exposition (same body $(b,--listen) serves).")
  in
  let view_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "view-dir" ] ~docv:"DIR"
          ~doc:
            "Export a view bundle (Perfetto trace of slow/fast \
             exemplars + differential flame views) per alerted scenario \
             under DIR/tick-N-SCENARIO/; alerts then carry the bundle \
             path in their $(b,view) field.")
  in
  Cmd.v
    (Cmd.info "monitor"
       ~doc:"Continuously watch a corpus directory and alert on drift")
    Term.(
      const monitor $ dir $ replay $ listen $ interval $ max_ticks $ window
      $ top_patterns $ replicates $ seed $ min_support $ threshold $ lag_ms
      $ cache_arg $ alert_log $ metrics_out $ view_dir $ components_arg
      $ domains_arg $ mode_arg $ fault_arg)

(* --- faults: describe / replay an injection plan --- *)

let faults_run plan site calls =
  match Dpfault.parse plan with
  | Error msg ->
    Dpobs.Log.error "faults: %s" msg;
    2
  | Ok plan ->
    print_string (Dpfault.describe plan);
    let replay_site s =
      Printf.printf "\nreplay %s (seed %d):\n" (Dpfault.site_name s)
        plan.Dpfault.p_seed;
      for i = 0 to calls - 1 do
        Printf.printf "  call %4d: %s\n" i
          (match Dpfault.draw plan s i with
          | None -> "ok"
          | Some k -> Dpfault.kind_name k)
      done
    in
    if calls > 0 then begin
      match site with
      | Some name -> (
        match Dpfault.site_of_name name with
        | Some s -> replay_site s
        | None ->
          Dpobs.Log.error "faults: unknown site %S" name;
          exit 2)
      | None ->
        (* No site singled out: replay every site the plan rules over. *)
        List.iter (fun (s, _) -> replay_site s) plan.Dpfault.p_rules
    end;
    0

let faults_cmd =
  let plan =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"PLAN"
          ~doc:
            "SEED:SPEC — a preset (io-flaky, torn-writes, slow-disk) or \
             comma-separated site=kind@prob[!attempts] clauses.")
  in
  let site =
    Arg.(
      value
      & opt (some string) None
      & info [ "site" ] ~docv:"SITE"
          ~doc:
            "Restrict $(b,--calls) replay to this site (e.g. \
             corpus.read); default replays every ruled site.")
  in
  let calls =
    Arg.(
      value & opt int 0
      & info [ "calls" ] ~docv:"N"
          ~doc:
            "Also print the deterministic outcome of the first N calls \
             per replayed site — the exact schedule any run under this \
             plan experiences.")
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:"Describe or replay a deterministic fault-injection plan")
    Term.(const faults_run $ plan $ site $ calls)

let main_cmd =
  let doc = "trace-based performance comprehension for device drivers" in
  let info = Cmd.info "driveperf" ~version:"1.0.0" ~doc in
  Cmd.group info
    [
      generate_cmd;
      impact_cmd;
      causality_cmd;
      report_cmd;
      case_cmd;
      validate_cmd;
      dot_cmd;
      anonymize_cmd;
      import_etw_cmd;
      convert_cmd;
      diff_cmd;
      baseline_cmd;
      stats_cmd;
      witness_cmd;
      explain_cmd;
      analyze_cmd;
      timeline_cmd;
      export_trace_cmd;
      flame_cmd;
      cache_cmd;
      monitor_cmd;
      faults_cmd;
    ]

(* Arm DRIVEPERF_LOG before command dispatch so the level also applies to
   commands without observability flags (e.g. validate). *)
let () =
  Dpobs.Log.init_from_env ();
  exit (Cmd.eval' main_cmd)
