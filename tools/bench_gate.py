#!/usr/bin/env python3
"""Gate a fresh bench JSON against its committed baseline.

Usage: bench_gate.py BASELINE.json CURRENT.json

Exits nonzero when a gated quantity regresses by more than 25% over the
baseline. Only machine-portable quantities are gated — ratios of two
timings taken on the same machine (overhead percentages, parallel
speedups) and correctness booleans — never raw seconds or ns/call,
which shift with the runner's hardware. Each relative bound carries a
small absolute floor so a near-zero baseline does not turn measurement
noise into a failure.
"""

import json
import sys

REL_TOL = 0.25

failures = []


def check(name, ok, detail):
    status = "ok" if ok else "FAIL"
    print(f"  [{status}] {name}: {detail}")
    if not ok:
        failures.append(name)


def bounded_above(name, base, cur, floor):
    """cur may exceed base by 25% plus an absolute floor. A negative
    baseline (measurement noise showing a speedup) clamps to zero so the
    limit never demands the noise reproduce."""
    limit = max(base, 0.0) * (1.0 + REL_TOL) + floor
    check(name, cur <= limit, f"current {cur:.4f} vs baseline {base:.4f} (limit {limit:.4f})")


def gate_parallel(base, cur):
    check("identical_results", cur.get("identical_results") is True,
          f"current {cur.get('identical_results')}")
    base_rows = {r["domains"]: r for r in base.get("results", [])}
    cur_rows = {r["domains"]: r for r in cur.get("results", [])}
    # Compare speedups only where both machines actually had the cores:
    # entries above either run's recommended domain count oversubscribe
    # and say nothing about the code.
    cores = min(base.get("recommended_domains", 1), cur.get("recommended_domains", 1))
    for domains in sorted(set(base_rows) & set(cur_rows)):
        if domains > cores:
            continue
        b, c = base_rows[domains]["speedup"], cur_rows[domains]["speedup"]
        if b <= 1.1:  # baseline shows no parallel win to protect
            continue
        limit = b * (1.0 - REL_TOL)
        check(f"speedup@{domains}", c >= limit,
              f"current {c:.2f}x vs baseline {b:.2f}x (limit {limit:.2f}x)")


def gate_obs(base, cur):
    bounded_above("disabled_overhead_pct",
                  base["disabled_overhead_pct"], cur["disabled_overhead_pct"], 0.05)
    bounded_above("enabled_overhead_pct",
                  base["enabled_overhead_pct"], cur["enabled_overhead_pct"], 5.0)


def gate_prov(base, cur):
    check("results_identical", cur.get("results_identical") is True,
          f"current {cur.get('results_identical')}")
    bounded_above("disabled_overhead_pct",
                  base["disabled_overhead_pct"], cur["disabled_overhead_pct"], 0.05)
    bounded_above("enabled_overhead_pct",
                  base["enabled_overhead_pct"], cur["enabled_overhead_pct"], 10.0)


def gate_mining(base, cur):
    check("identical_results", cur.get("identical_results") is True,
          f"current {cur.get('identical_results')}")
    check("identical_results_prov", cur.get("identical_results_prov") is True,
          f"current {cur.get('identical_results_prov')}")
    # The engine must beat the retained reference by 3x outright — a
    # same-machine ratio, portable across runners — and must not give
    # back more than 25% of the baseline's margin.
    check("speedup_mining>=3", cur.get("speedup_mining", 0.0) >= 3.0,
          f"current {cur.get('speedup_mining', 0.0):.2f}x (hard floor 3.00x)")
    for key, floor in (("speedup_enum", 0.3), ("speedup_select", 0.3),
                       ("speedup_mining", 0.3)):
        b, c = base[key], cur[key]
        limit = b * (1.0 - REL_TOL) - floor
        check(key, c >= limit,
              f"current {c:.2f}x vs baseline {b:.2f}x (limit {limit:.2f}x)")


def gate_snapshot(base, cur):
    check("identical_results", cur.get("identical_results") is True,
          f"current {cur.get('identical_results')}")
    # Re-analysing a corpus grown by one stream must beat a cold run by
    # 5x outright — a same-machine ratio, portable across runners — and
    # neither cached path may give back more than 25% of the baseline's
    # margin.
    check("speedup_delta>=5", cur.get("speedup_delta", 0.0) >= 5.0,
          f"current {cur.get('speedup_delta', 0.0):.2f}x (hard floor 5.00x)")
    for key, floor in (("speedup_delta", 0.5), ("speedup_warm", 0.5)):
        b, c = base[key], cur[key]
        limit = b * (1.0 - REL_TOL) - floor
        check(key, c >= limit,
              f"current {c:.2f}x vs baseline {b:.2f}x (limit {limit:.2f}x)")


def gate_monitor(base, cur):
    check("identical_results", cur.get("identical_results") is True,
          f"current {cur.get('identical_results')}")
    # The warm tick must actually reuse the snapshot (hits are a count,
    # portable across runners) and must beat a cold full tick by 1.5x
    # outright; the speedup may not give back more than 25% of the
    # baseline's margin.
    check("snapshot_hits>0", cur.get("snapshot_hits", 0) > 0,
          f"current {cur.get('snapshot_hits', 0)}")
    check("snapshot_mining_hits>0", cur.get("snapshot_mining_hits", 0) > 0,
          f"current {cur.get('snapshot_mining_hits', 0)}")
    check("speedup_tick>=1.5", cur.get("speedup_tick", 0.0) >= 1.5,
          f"current {cur.get('speedup_tick', 0.0):.2f}x (hard floor 1.50x)")
    b, c = base["speedup_tick"], cur["speedup_tick"]
    limit = b * (1.0 - REL_TOL) - 0.3
    check("speedup_tick", c >= limit,
          f"current {c:.2f}x vs baseline {b:.2f}x (limit {limit:.2f}x)")


def gate_viz(base, cur):
    check("identical_results", cur.get("identical_results") is True,
          f"current {cur.get('identical_results')}")
    check("flow_pairing_ok", cur.get("flow_pairing_ok") is True,
          f"current {cur.get('flow_pairing_ok')}")
    # Emission counts are deterministic functions of the bench corpus,
    # portable across runners; zero means a writer silently dropped work.
    check("slices_emitted>0", cur.get("slices_emitted", 0) > 0,
          f"current {cur.get('slices_emitted', 0)}")
    check("flows_emitted>0", cur.get("flows_emitted", 0) > 0,
          f"current {cur.get('flows_emitted', 0)}")
    check("flame_paths>0", cur.get("flame_paths", 0) > 0,
          f"current {cur.get('flame_paths', 0)}")
    check("diff_paths>0", cur.get("diff_paths", 0) > 0,
          f"current {cur.get('diff_paths', 0)}")
    # Artifact density is a byte count per slice — machine-portable; a
    # blow-up means the writer started emitting redundant JSON.
    bounded_above("bytes_per_slice",
                  base["bytes_per_slice"], cur["bytes_per_slice"], 50.0)


def gate_fault(base, cur):
    check("identical_results", cur.get("identical_results") is True,
          f"current {cur.get('identical_results')}")
    check("replay_identical", cur.get("replay_identical") is True,
          f"current {cur.get('replay_identical')}")
    bounded_above("disabled_overhead_pct",
                  base["disabled_overhead_pct"], cur["disabled_overhead_pct"], 0.05)
    # Hard ceiling regardless of baseline: disarmed guards must stay
    # invisible in any workload.
    check("disabled_overhead_pct<2", cur.get("disabled_overhead_pct", 100.0) < 2.0,
          f"current {cur.get('disabled_overhead_pct', 100.0):.4f}% (hard ceiling 2%)")


GATES = {
    "parallel-scaling": gate_parallel,
    "obs-overhead": gate_obs,
    "provenance-overhead": gate_prov,
    "mining-throughput": gate_mining,
    "snapshot-cache": gate_snapshot,
    "monitor-tick": gate_monitor,
    "viz-export": gate_viz,
    "fault-inject": gate_fault,
}


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    with open(sys.argv[1]) as f:
        base = json.load(f)
    with open(sys.argv[2]) as f:
        cur = json.load(f)
    kind = base.get("bench")
    if kind != cur.get("bench"):
        sys.exit(f"bench kind mismatch: baseline {kind!r} vs current {cur.get('bench')!r}")
    gate = GATES.get(kind)
    if gate is None:
        sys.exit(f"no gate defined for bench kind {kind!r}")
    print(f"{kind}: {sys.argv[2]} vs baseline {sys.argv[1]}")
    gate(base, cur)
    if failures:
        sys.exit(f"bench regression: {', '.join(failures)}")
    print("  all gated quantities within 25% of baseline")


if __name__ == "__main__":
    main()
