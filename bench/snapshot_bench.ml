(* Snapshot-cache benchmark: times the full report workload (headline
   impact + per-module rows + every scenario's causality analysis)
   from scratch, warm from a populated cache, and after appending one
   stream to a cached corpus — the incremental re-analysis case the
   cache exists for. Also verifies the cached run's results are
   bit-identical to the from-scratch ones (rendered through the same
   JSON document report --json emits). Writes BENCH_snapshot.json.

   The committed gate enforces speedup_delta >= 5 (re-analysing a
   corpus grown by one stream must be at least 5x faster than cold)
   and identical_results = true. *)

module Corpus = Dptrace.Corpus
module Pipeline = Dpcore.Pipeline
module Snapshot = Dpcore.Snapshot

let env_int name default =
  match Sys.getenv_opt name with Some v -> int_of_string v | None -> default

let reps = max 1 (env_int "BENCH_REPS" 3)

let time_best f =
  ignore (f ());
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (f ()));
    best := Float.min !best (Unix.gettimeofday () -. t0)
  done;
  !best

let cache_dir = "_snapbench_cache"

let clear_cache () =
  if Sys.file_exists cache_dir then
    Array.iter
      (fun f -> Sys.remove (Filename.concat cache_dir f))
      (Sys.readdir cache_dir)

let fresh_workload pool corpus =
  let drivers = Dpcore.Component.drivers in
  let impact, impact_prov = Pipeline.run_impact_prov ~pool drivers corpus in
  let graphs =
    Pipeline.build_graphs ~pool corpus (Corpus.all_instances corpus)
  in
  let modules = Dpcore.Impact.by_module drivers graphs in
  let named = Pipeline.run_all ~pool drivers corpus in
  (impact, impact_prov, modules, named)

(* Open + ensure + merge: everything a --cache run does except the final
   save, so warm/delta timings include the cache load itself. *)
let cached_workload pool corpus =
  let drivers = Dpcore.Component.drivers in
  let fp =
    Snapshot.fingerprint ~components:drivers ~specs:corpus.Corpus.specs
      ~k:Dpcore.Mining.default_k ()
  in
  let snap = Snapshot.create ~dir:cache_dir ~fingerprint:fp () in
  Snapshot.ensure ~pool snap drivers corpus;
  let impact, impact_prov = Pipeline.run_impact_prov_snap snap corpus in
  let modules = Pipeline.modules_snap snap corpus in
  let named = Pipeline.run_all_snap ~pool snap corpus in
  (snap, (impact, impact_prov, modules, named))

let doc_string (impact, impact_prov, modules, named) =
  Dputil.Jsonw.to_string
    (Dpcore.Report.Json.document ~impact ~impact_prov ~modules
       ~scenarios:named ())

let run ~scale ~seed (corpus : Corpus.t) =
  let domains = max 2 (Dppar.Pool.default_domains ()) in
  Dppar.Pool.with_pool ~domains @@ fun pool ->
  if not (Sys.file_exists cache_dir) then Sys.mkdir cache_dir 0o755;
  clear_cache ();
  let streams = corpus.Corpus.streams in
  let n = List.length streams in
  let prefix =
    Corpus.create
      ~streams:(List.filteri (fun i _ -> i < n - 1) streams)
      ~specs:corpus.Corpus.specs
  in

  (* Pre-resolve the shared indexes so cold vs warm compares analysis
     work, not memo priming that both paths share. *)
  List.iter (fun st -> ignore (Dptrace.Stream.shared_index st)) streams;

  (* Cold: the full corpus from scratch, no cache involved. *)
  let t_cold = time_best (fun () -> fresh_workload pool corpus) in
  let fresh = fresh_workload pool corpus in

  (* Populate the cache from the n-1-stream prefix (the "previous
     tracing session"), then save. *)
  let snap, _ = cached_workload pool prefix in
  Snapshot.save snap;

  (* Delta: re-analyse the grown corpus — one stream misses. *)
  let t_delta = time_best (fun () -> snd (cached_workload pool corpus)) in
  let snap, cached = cached_workload pool corpus in
  let identical = doc_string fresh = doc_string cached in
  Snapshot.save snap;

  (* Warm: every stream hits. *)
  let t_warm = time_best (fun () -> snd (cached_workload pool corpus)) in

  let speedup_warm = t_cold /. t_warm in
  let speedup_delta = t_cold /. t_delta in
  Printf.printf
    "snapshot cache (%d streams, %d domains, best of %d):\n\
    \  cold  %.3fs\n\
    \  +1 stream delta %.3fs (%.1fx)\n\
    \  warm  %.3fs (%.1fx)\n\
    \  cached results identical: %s\n"
    n domains reps t_cold t_delta speedup_delta t_warm speedup_warm
    (if identical then "yes" else "NO - CACHE CHANGED RESULTS");

  let oc = open_out "BENCH_snapshot.json" in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"snapshot-cache\",\n\
    \  \"corpus_scale\": %g,\n\
    \  \"seed\": %d,\n\
    \  \"domains\": %d,\n\
    \  \"reps\": %d,\n\
    \  \"streams\": %d,\n\
    \  \"seconds_cold\": %.3f,\n\
    \  \"seconds_delta\": %.3f,\n\
    \  \"seconds_warm\": %.3f,\n\
    \  \"speedup_delta\": %.2f,\n\
    \  \"speedup_warm\": %.2f,\n\
    \  \"identical_results\": %b\n\
     }\n"
    scale seed domains reps n t_cold t_delta t_warm speedup_delta
    speedup_warm identical;
  close_out oc;
  print_endline "wrote BENCH_snapshot.json";
  if not identical then exit 1
