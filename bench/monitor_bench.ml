(* Monitor benchmark: the cost of one ingest tick, cold versus warm.

   A fleet of calm corpus files plus one CPU-starved delta is replayed
   through the monitor twice to prove byte-determinism of the alert log
   and the exposition, then the tick path is timed: a cold monitor
   ingesting the whole fleet and analysing from scratch, against a warm
   monitor re-ticking after a single-file delta with the snapshot cache
   populated. The incremental tick must win, and its snapshot stats must
   show actual reuse. Writes BENCH_monitor.json.

   The committed gate enforces identical_results = true,
   snapshot_hits > 0 and speedup_tick >= 2. *)

module Monitor = Dpmon.Monitor
module Corpus_gen = Dpworkload.Corpus_gen
module Codec_v2 = Dptrace.Codec_v2
module Snapshot = Dpcore.Snapshot

let env_int name default =
  match Sys.getenv_opt name with Some v -> int_of_string v | None -> default

let reps = max 1 (env_int "BENCH_REPS" 3)

let time_best f =
  ignore (f ());
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (f ()));
    best := Float.min !best (Unix.gettimeofday () -. t0)
  done;
  !best

let work_dir = "_monbench"

let clear_dir () =
  if Sys.file_exists work_dir then
    Array.iter
      (fun f -> Sys.remove (Filename.concat work_dir f))
      (Sys.readdir work_dir)
  else Sys.mkdir work_dir 0o755

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let n_calm = 5

let run ~scale ~seed =
  clear_dir ();
  let p name = Filename.concat work_dir name in
  let gen ?cores ~cross s path =
    let corpus =
      Corpus_gen.generate
        {
          Corpus_gen.default_config with
          seed = s;
          scale;
          cross_traffic = cross;
          cores;
        }
    in
    Codec_v2.save path corpus;
    corpus
  in
  let calm =
    List.init n_calm (fun i ->
        let path = p (Printf.sprintf "calm%d.dpf" i) in
        (path, gen ~cross:false (seed + i) path))
  in
  let delta_path = p "delta.dpf" in
  let delta = gen ~cores:1 ~cross:true (seed + 9) delta_path in
  let streams =
    List.fold_left
      (fun n (_, c) -> n + Dptrace.Corpus.stream_count c)
      (Dptrace.Corpus.stream_count delta)
      calm
  in

  let config ~tag =
    {
      Monitor.default_config with
      replicates = 40;
      alert_log = Some (p (tag ^ ".jsonl"));
      metrics_out = Some (p (tag ^ ".om"));
    }
  in

  (* Determinism: the same manifest replayed twice must produce the same
     bytes, alert for alert and sample for sample. *)
  let manifest = p "replay.manifest" in
  let oc = open_out manifest in
  output_string oc "clock 1000\n";
  List.iter
    (fun (path, _) ->
      Printf.fprintf oc "add %s\n" (Filename.basename path))
    calm;
  output_string oc "tick\nclock +5000\nadd delta.dpf\ntick\nclock +1000\ntick\n";
  close_out oc;
  let s1 = Monitor.replay (config ~tag:"replay1") ~manifest in
  let s2 = Monitor.replay (config ~tag:"replay2") ~manifest in
  let identical =
    read_file (p "replay1.jsonl") = read_file (p "replay2.jsonl")
    && read_file (p "replay1.om") = read_file (p "replay2.om")
    && s1 = s2
  in

  (* Cold: a fresh monitor swallows the whole fleet in one tick. *)
  let cold_tick () =
    let t = Monitor.create (config ~tag:"cold") in
    Fun.protect ~finally:(fun () -> Monitor.close t) @@ fun () ->
    Monitor.set_clock t 0;
    List.iter
      (fun (path, _) -> ignore (Monitor.ingest t ~mtime_ms:0 path : (_, _) result))
      calm;
    ignore (Monitor.ingest t ~mtime_ms:0 delta_path : (_, _) result);
    ignore (Monitor.tick t : Dpmon.Rules.alert list)
  in
  let t_cold = time_best cold_tick in

  (* Warm: the standing monitor re-ticks a one-file delta against its
     populated in-memory snapshot — the steady-state watch cost. *)
  let t = Monitor.create (config ~tag:"warm") in
  let t_warm, stats =
    Fun.protect ~finally:(fun () -> Monitor.close t) @@ fun () ->
    Monitor.set_clock t 0;
    List.iter
      (fun (path, _) -> ignore (Monitor.ingest t ~mtime_ms:0 path : (_, _) result))
      calm;
    ignore (Monitor.tick t : Dpmon.Rules.alert list);
    let warm_tick () =
      ignore (Monitor.ingest t ~mtime_ms:0 delta_path : (_, _) result);
      ignore (Monitor.tick t : Dpmon.Rules.alert list)
    in
    let t_warm = time_best warm_tick in
    (t_warm, Monitor.snapshot_stats t)
  in
  let hits, mining_hits =
    match stats with
    | Some s -> (s.Snapshot.s_hits, s.Snapshot.s_mining_hits)
    | None -> (0, 0)
  in
  let speedup = t_cold /. t_warm in

  Printf.printf
    "monitor (%d files, %d streams, best of %d):\n\
    \  cold full tick %.3fs\n\
    \  warm delta tick %.3fs (%.1fx)\n\
    \  snapshot hits %d (mining %d)\n\
    \  replay alerts %d over %d ticks\n\
    \  deterministic replay: %s\n"
    (n_calm + 1) streams reps t_cold t_warm speedup hits mining_hits
    s1.Monitor.r_alerts s1.Monitor.r_ticks
    (if identical then "yes" else "NO - REPLAY DIVERGED");

  let oc = open_out "BENCH_monitor.json" in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"monitor-tick\",\n\
    \  \"corpus_scale\": %g,\n\
    \  \"seed\": %d,\n\
    \  \"reps\": %d,\n\
    \  \"files\": %d,\n\
    \  \"streams\": %d,\n\
    \  \"ticks\": %d,\n\
    \  \"alerts\": %d,\n\
    \  \"seconds_cold_full\": %.3f,\n\
    \  \"seconds_warm_tick\": %.3f,\n\
    \  \"speedup_tick\": %.2f,\n\
    \  \"snapshot_hits\": %d,\n\
    \  \"snapshot_mining_hits\": %d,\n\
    \  \"identical_results\": %b\n\
     }\n"
    scale seed reps (n_calm + 1) streams s1.Monitor.r_ticks
    s1.Monitor.r_alerts t_cold t_warm speedup hits mining_hits identical;
  close_out oc;
  print_endline "wrote BENCH_monitor.json";
  if not identical then exit 1
