(* The paper's published numbers (ASPLOS'14, Tables 1-4 and Section 5.1),
   used as reference columns next to our measurements. *)

(* Section 5.1 headline impact metrics, in percent (ratio is absolute). *)
let ia_wait = 36.4
let ia_run = 1.6
let ia_opt = 26.0
let propagation_ratio = 3.5

let scenarios =
  [
    "AppAccessControl";
    "AppNonResponsive";
    "BrowserFrameCreate";
    "BrowserTabClose";
    "BrowserTabCreate";
    "BrowserTabSwitch";
    "MenuDisplay";
    "WebPageNavigation";
  ]

(* Table 1: #instances, fast-class size, slow-class size. *)
let table1 =
  [
    ("AppAccessControl", (1547, 598, 772));
    ("AppNonResponsive", (631, 164, 392));
    ("BrowserFrameCreate", (1304, 437, 707));
    ("BrowserTabClose", (989, 134, 678));
    ("BrowserTabCreate", (2491, 597, 1601));
    ("BrowserTabSwitch", (2182, 1122, 914));
    ("MenuDisplay", (743, 171, 499));
    ("WebPageNavigation", (7725, 4203, 1175));
  ]

(* Table 2: driver cost %, ITC %, TTC %. *)
let table2 =
  [
    ("AppAccessControl", (66.4, 18.9, 35.5));
    ("AppNonResponsive", (64.6, 41.0, 48.7));
    ("BrowserFrameCreate", (76.5, 24.1, 35.4));
    ("BrowserTabClose", (21.9, 27.1, 38.0));
    ("BrowserTabCreate", (51.3, 23.1, 35.3));
    ("BrowserTabSwitch", (41.0, 7.8, 17.5));
    ("MenuDisplay", (77.0, 39.2, 49.2));
    ("WebPageNavigation", (34.7, 18.4, 28.5));
  ]

(* Table 3: #patterns, coverage of top 10/20/30 %. *)
let table3 =
  [
    ("AppAccessControl", (4875, 55.3, 91.1, 98.3));
    ("AppNonResponsive", (1158, 29.6, 39.2, 95.1));
    ("BrowserFrameCreate", (1933, 51.6, 92.0, 96.8));
    ("BrowserTabClose", (1075, 55.1, 90.0, 93.5));
    ("BrowserTabCreate", (5045, 49.0, 87.5, 97.0));
    ("BrowserTabSwitch", (1514, 42.3, 64.9, 98.0));
    ("MenuDisplay", (1855, 64.5, 86.5, 91.9));
    ("WebPageNavigation", (5122, 35.6, 89.3, 96.5));
  ]

(* Table 4: patterns (of the top 10) containing each driver type, in
   Taxonomy.all_types column order. *)
let table4 =
  [
    ("AppAccessControl", [ 9; 9; 0; 0; 0; 0; 0; 1; 0; 0 ]);
    ("AppNonResponsive", [ 6; 2; 1; 2; 1; 1; 0; 0; 0; 1 ]);
    ("BrowserFrameCreate", [ 7; 4; 2; 0; 1; 0; 0; 0; 0; 0 ]);
    ("BrowserTabClose", [ 5; 6; 0; 2; 0; 0; 2; 0; 0; 0 ]);
    ("BrowserTabCreate", [ 5; 6; 3; 2; 0; 1; 0; 0; 1; 0 ]);
    ("BrowserTabSwitch", [ 6; 5; 3; 1; 0; 0; 0; 0; 0; 0 ]);
    ("MenuDisplay", [ 2; 3; 7; 0; 2; 0; 0; 0; 0; 0 ]);
    ("WebPageNavigation", [ 7; 3; 3; 1; 1; 0; 0; 0; 0; 0 ]);
  ]

(* Section 5.2.2: share of BrowserTabSwitch driver cost removed as
   non-optimisable direct hardware service. *)
let tab_switch_non_optimizable = 66.6
