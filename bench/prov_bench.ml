(* Provenance overhead benchmark: the full analysis workload (scenario
   fan-out + pooled impact analysis) timed with provenance recording
   disabled and enabled, plus a bound on what the compiled-in guards
   cost a disabled run. Writes BENCH_prov.json.

   Two properties are enforced, mirroring DESIGN.md's zero-cost claim:

   - A disabled run must be unobservable: every provenance site guards
     on one atomic load, so the upper bound on the disabled-mode cost —
     measured per-guard cost times the number of guarded events the
     workload processes — must stay under 2% of the workload wall-clock.
   - Recording must not change the numbers: the impact result computed
     with provenance enabled must equal the plain result bit for bit
     (the witness data rides alongside; it never feeds back).

   Knobs (environment):
     BENCH_SCALE        corpus scale (default 1.0)
     BENCH_SEED         corpus seed (default 42)
     BENCH_REPS         timed repetitions per configuration, best-of
                        (default 3)
     DRIVEPERF_DOMAINS  pool size (default: recommended, floored at 2) *)

let env_float name default =
  match Sys.getenv_opt name with Some v -> float_of_string v | None -> default

let env_int name default =
  match Sys.getenv_opt name with Some v -> int_of_string v | None -> default

let scale = env_float "BENCH_SCALE" 1.0
let seed = env_int "BENCH_SEED" 42
let reps = max 1 (env_int "BENCH_REPS" 3)

(* Best-of-[reps] wall time; the first (untimed) run warms any caches. *)
let time_best f =
  ignore (f ());
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (f ()));
    best := Float.min !best (Unix.gettimeofday () -. t0)
  done;
  !best

let ns_per_call ~iters f =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    ignore (Sys.opaque_identity (f ()))
  done;
  (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters

let () =
  let config = { (Dpworkload.Corpus_gen.scaled scale) with seed } in
  let corpus = Dpworkload.Corpus_gen.generate config in
  Format.printf "%a@." Dptrace.Corpus.pp_summary corpus;
  let domains = max 2 (Dppar.Pool.default_domains ()) in
  let scenarios =
    List.map
      (fun (tpl : Dpworkload.Scenarios.template) ->
        tpl.Dpworkload.Scenarios.spec.Dptrace.Scenario.name)
      Dpworkload.Scenarios.named
  in
  List.iter
    (fun st -> ignore (Dptrace.Stream.shared_index st))
    corpus.Dptrace.Corpus.streams;
  Dppar.Pool.with_pool ~domains @@ fun pool ->
  let drivers = Dpcore.Component.drivers in
  (* The exact code path driveperf ships: run_all records witnesses into
     the AWGs and patterns when the switch is on, and run_impact_prov
     short-circuits to the plain analysis when it is off. *)
  let workload () =
    ( Dpcore.Pipeline.run_all ~pool ~scenarios drivers corpus,
      Dpcore.Pipeline.run_impact_prov ~pool drivers corpus )
  in

  (* --- macro: disabled vs enabled --- *)
  Dpcore.Provenance.disable ();
  let t_disabled = time_best workload in
  let _, (impact_disabled, _) = workload () in
  Dpcore.Provenance.enable ();
  let t_enabled = time_best workload in
  let _, (impact_enabled, prov) = workload () in
  Dpcore.Provenance.disable ();
  let enabled_overhead_pct = 100.0 *. ((t_enabled /. t_disabled) -. 1.0) in

  (* Recording must be a pure side channel. *)
  let results_identical = impact_disabled = impact_enabled in

  (* --- disabled-mode bound ---
     A disabled site is one call to Provenance.enabled (atomic load +
     branch). Sites fire per BFS-visited wait/run event in the impact
     analysis, per converted graph in the AWG build and per meta/pattern
     selection in mining; the counted events dominate, so 4x the impact
     analysis's counted events is a comfortable over-estimate. *)
  let guard_ns =
    ns_per_call ~iters:50_000_000 (fun () -> Dpcore.Provenance.enabled ())
  in
  let guarded_events =
    4
    * (impact_disabled.Dpcore.Impact.counted_waits
      + impact_disabled.Dpcore.Impact.counted_runs)
  in
  let disabled_site_ns = float_of_int guarded_events *. guard_ns in
  let disabled_overhead_pct =
    100.0 *. disabled_site_ns /. (t_disabled *. 1e9)
  in

  let witnesses_recorded =
    List.fold_left
      (fun acc (_, k) -> acc + List.length (Dpcore.Provenance.Topk.to_list k))
      (List.length (Dpcore.Provenance.Topk.to_list prov.Dpcore.Provenance.top_waits)
      + List.length (Dpcore.Provenance.Topk.to_list prov.Dpcore.Provenance.top_runs))
      prov.Dpcore.Provenance.by_module
  in

  Printf.printf
    "workload (%d domains, best of %d): disabled %.3fs, enabled %.3fs \
     (+%.2f%%)\n\
     guard: %.2f ns/call; ~%d guarded events in the disabled run\n\
     disabled-mode overhead bound: %.4f%% of workload wall-clock\n\
     impact result identical with recording on: %s\n\
     wait/run records retained (top-K reservoirs): %d\n"
    domains reps t_disabled t_enabled enabled_overhead_pct guard_ns
    guarded_events disabled_overhead_pct
    (if results_identical then "yes" else "NO - PROVENANCE CHANGED RESULTS")
    witnesses_recorded;

  let oc = open_out "BENCH_prov.json" in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"provenance-overhead\",\n\
    \  \"corpus_scale\": %g,\n\
    \  \"seed\": %d,\n\
    \  \"domains\": %d,\n\
    \  \"reps\": %d,\n\
    \  \"seconds_disabled\": %.3f,\n\
    \  \"seconds_enabled\": %.3f,\n\
    \  \"enabled_overhead_pct\": %.2f,\n\
    \  \"guard_ns\": %.3f,\n\
    \  \"guarded_events\": %d,\n\
    \  \"disabled_overhead_pct\": %.4f,\n\
    \  \"results_identical\": %b,\n\
    \  \"witness_records\": %d\n\
     }\n"
    scale seed domains reps t_disabled t_enabled enabled_overhead_pct guard_ns
    guarded_events disabled_overhead_pct results_identical witnesses_recorded;
  close_out oc;
  print_endline "wrote BENCH_prov.json";
  if disabled_overhead_pct >= 2.0 then begin
    print_endline "FAIL: disabled-mode overhead bound reaches 2%";
    exit 1
  end;
  if not results_identical then begin
    print_endline "FAIL: provenance recording changed the impact result";
    exit 1
  end
