(* Telemetry overhead benchmark: the parallel-scaling workload (scenario
   fan-out + impact analysis over a pooled corpus) timed with the obs
   layer disabled and enabled, plus microbenchmarks of the individual
   instrumentation primitives and the per-stage wall-clock breakdown the
   span recorder produces. Writes BENCH_obs.json.

   "Disabled overhead" — the cost of shipping the instrumentation at all
   — cannot be measured by differencing two runs of the same binary (the
   sites are compiled in either way), so it is bounded from above: the
   measured per-call cost of a disabled site times the number of sites
   the workload actually executes, as a fraction of the workload's
   wall-clock. The bench fails if that bound reaches 2%.

   Knobs (environment):
     BENCH_SCALE        corpus scale (default 1.0)
     BENCH_SEED         corpus seed (default 42)
     BENCH_REPS         timed repetitions per configuration, best-of
                        (default 3)
     DRIVEPERF_DOMAINS  pool size (default: recommended, floored at 2 so
                        the pool instrumentation is exercised) *)

let env_float name default =
  match Sys.getenv_opt name with Some v -> float_of_string v | None -> default

let env_int name default =
  match Sys.getenv_opt name with Some v -> int_of_string v | None -> default

let scale = env_float "BENCH_SCALE" 1.0
let seed = env_int "BENCH_SEED" 42
let reps = max 1 (env_int "BENCH_REPS" 3)

(* Best-of-[reps] wall time; the first (untimed) run warms any caches. *)
let time_best f =
  ignore (f ());
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (f ()));
    best := Float.min !best (Unix.gettimeofday () -. t0)
  done;
  !best

(* ns per call of [f], loop overhead included (it is the same for every
   configuration compared, and itself part of a real call site). *)
let ns_per_call ~iters f =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    ignore (Sys.opaque_identity (f ()))
  done;
  (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters

let () =
  let config = { (Dpworkload.Corpus_gen.scaled scale) with seed } in
  let corpus = Dpworkload.Corpus_gen.generate config in
  Format.printf "%a@." Dptrace.Corpus.pp_summary corpus;
  let domains = max 2 (Dppar.Pool.default_domains ()) in
  let scenarios =
    List.map
      (fun (tpl : Dpworkload.Scenarios.template) ->
        tpl.Dpworkload.Scenarios.spec.Dptrace.Scenario.name)
      Dpworkload.Scenarios.named
  in
  (* Pre-warm the memoised stream indexes so no configuration is favoured
     by a warmer cache (as in the parallel-scaling bench). *)
  List.iter
    (fun st -> ignore (Dptrace.Stream.shared_index st))
    corpus.Dptrace.Corpus.streams;
  Dppar.Pool.with_pool ~domains @@ fun pool ->
  let workload () =
    ( Dpcore.Pipeline.run_all ~pool ~scenarios Dpcore.Component.drivers corpus,
      Dpcore.Pipeline.run_impact ~pool Dpcore.Component.drivers corpus )
  in

  (* --- macro: the parallel-scaling workload, disabled vs enabled --- *)
  Dpobs.disable ();
  let t_disabled = time_best workload in
  Dpobs.enable ();
  let t_enabled =
    time_best (fun () ->
        Dpobs.Span.clear ();
        workload ())
  in
  let enabled_overhead_pct = 100.0 *. ((t_enabled /. t_disabled) -. 1.0) in

  (* One clean enabled run for the per-stage breakdown and the count of
     instrumentation sites the workload executes. *)
  Dpobs.Span.clear ();
  ignore (Sys.opaque_identity (workload ()));
  let stages = Dpobs.Span.durations () in
  let span_calls = List.fold_left (fun acc (_, n, _) -> acc + n) 0 stages in
  let metric_updates =
    (* Each pool task performs one busy-time add and one task incr; the
       remaining counters in this workload (scenario progress, index
       hits) are bounded by the same order of magnitude. *)
    Dpobs.Metrics.counter_value (Dpobs.Metrics.counter "pool.tasks") * 2
    + Dpobs.Metrics.counter_value
        (Dpobs.Metrics.counter "pipeline.scenarios_done")
  in

  (* --- micro: per-call cost of one instrumentation site --- *)
  Dpobs.disable ();
  let span_ns_disabled =
    ns_per_call ~iters:20_000_000 (fun () ->
        Dpobs.Span.with_span "bench.noop" (fun () -> ()))
  in
  let counter_ns_disabled =
    let c = Dpobs.Metrics.counter "bench.noop" in
    ns_per_call ~iters:20_000_000 (fun () -> Dpobs.Metrics.incr c)
  in
  Dpobs.enable ();
  let span_ns_enabled =
    let n = ref 0 in
    ns_per_call ~iters:1_000_000 (fun () ->
        incr n;
        if !n land 0xffff = 0 then Dpobs.Span.clear ();
        Dpobs.Span.with_span "bench.noop" (fun () -> ()))
  in
  let counter_ns_enabled =
    let c = Dpobs.Metrics.counter "bench.noop" in
    ns_per_call ~iters:20_000_000 (fun () -> Dpobs.Metrics.incr c)
  in
  Dpobs.disable ();

  (* Upper bound on what the disabled sites cost the real workload. *)
  let disabled_site_ns =
    (float_of_int span_calls *. span_ns_disabled)
    +. (float_of_int metric_updates *. counter_ns_disabled)
  in
  let disabled_overhead_pct = 100.0 *. disabled_site_ns /. (t_disabled *. 1e9) in

  Printf.printf
    "workload (%d domains, best of %d): disabled %.3fs, enabled %.3fs \
     (+%.2f%%)\n\
     span site: disabled %.1f ns/call, enabled %.1f ns/call\n\
     counter site: disabled %.1f ns/call, enabled %.1f ns/call\n\
     sites executed by workload: %d spans, ~%d metric updates\n\
     disabled-mode overhead bound: %.4f%% of workload wall-clock\n"
    domains reps t_disabled t_enabled enabled_overhead_pct span_ns_disabled
    span_ns_enabled counter_ns_disabled counter_ns_enabled span_calls
    metric_updates disabled_overhead_pct;
  Printf.printf "per-stage breakdown (enabled run):\n";
  List.iter
    (fun (name, count, total_ns) ->
      Printf.printf "  %-28s %6d call(s) %10.1f ms\n" name count
        (Int64.to_float total_ns /. 1e6))
    stages;

  let oc = open_out "BENCH_obs.json" in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"obs-overhead\",\n\
    \  \"corpus_scale\": %g,\n\
    \  \"seed\": %d,\n\
    \  \"domains\": %d,\n\
    \  \"reps\": %d,\n\
    \  \"seconds_disabled\": %.3f,\n\
    \  \"seconds_enabled\": %.3f,\n\
    \  \"enabled_overhead_pct\": %.2f,\n\
    \  \"span_ns_disabled\": %.2f,\n\
    \  \"span_ns_enabled\": %.2f,\n\
    \  \"counter_ns_disabled\": %.2f,\n\
    \  \"counter_ns_enabled\": %.2f,\n\
    \  \"workload_span_calls\": %d,\n\
    \  \"workload_metric_updates\": %d,\n\
    \  \"disabled_overhead_pct\": %.4f,\n\
    \  \"stages\": [\n%s\n  ]\n}\n"
    scale seed domains reps t_disabled t_enabled enabled_overhead_pct
    span_ns_disabled span_ns_enabled counter_ns_disabled counter_ns_enabled
    span_calls metric_updates disabled_overhead_pct
    (String.concat ",\n"
       (List.map
          (fun (name, count, total_ns) ->
            Printf.sprintf
              "    { \"stage\": %S, \"calls\": %d, \"total_ms\": %.1f }" name
              count
              (Int64.to_float total_ns /. 1e6))
          stages));
  close_out oc;
  print_endline "wrote BENCH_obs.json";
  if disabled_overhead_pct >= 2.0 then begin
    print_endline "FAIL: disabled-mode overhead bound reaches 2%";
    exit 1
  end
