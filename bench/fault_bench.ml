(* Fault-layer overhead benchmark: proves shipping the injection guards
   costs nothing when disarmed and changes nothing when armed below the
   quarantine threshold. Writes BENCH_fault.json.

   Disabled overhead is bounded the same way BENCH_obs bounds its
   instrumentation: the measured per-call cost of a disarmed guard times
   the number of guard calls the workload actually executes (counted by
   arming a probability-zero plan, which draws every call but never
   fires), as a fraction of the workload's wall-clock. The gate fails if
   that bound reaches 2%.

   Correctness ride-alongs, both machine-portable booleans:
     identical_results  the io-flaky preset at default retry budgets
                        quarantines nothing and the analysis document is
                        byte-identical to a fault-free run
     replay_identical   a quarantining plan, reinstalled, quarantines the
                        same streams and yields the same document twice

   Knobs (environment): BENCH_SCALE, BENCH_SEED, BENCH_REPS as in the
   other benches. *)

let env_float name default =
  match Sys.getenv_opt name with Some v -> float_of_string v | None -> default

let env_int name default =
  match Sys.getenv_opt name with Some v -> int_of_string v | None -> default

let scale = env_float "BENCH_SCALE" 0.4
let seed = env_int "BENCH_SEED" 42
let reps = max 1 (env_int "BENCH_REPS" 3)

let time_best f =
  ignore (f ());
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (f ()));
    best := Float.min !best (Unix.gettimeofday () -. t0)
  done;
  !best

let ns_per_call ~iters f =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    ignore (Sys.opaque_identity (f ()))
  done;
  (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters

let components = Dpcore.Component.drivers

let doc_of corpus =
  let impact, impact_prov = Dpcore.Pipeline.run_impact_prov components corpus in
  let graphs =
    Dpcore.Pipeline.build_graphs corpus (Dptrace.Corpus.all_instances corpus)
  in
  let modules = Dpcore.Impact.by_module components graphs in
  let named = Dpcore.Pipeline.run_all components corpus in
  Dputil.Jsonw.to_string
    (Dpcore.Report.Json.document ~impact ~impact_prov ~modules
       ~scenarios:named ())

let install spec =
  match Dpfault.parse spec with
  | Ok plan -> Dpfault.install plan
  | Error msg -> failwith ("fault_bench: " ^ msg)

let () =
  let config = { (Dpworkload.Corpus_gen.scaled scale) with seed } in
  let corpus = Dpworkload.Corpus_gen.generate config in
  Format.printf "%a@." Dptrace.Corpus.pp_summary corpus;
  List.iter
    (fun st -> ignore (Dptrace.Stream.shared_index st))
    corpus.Dptrace.Corpus.streams;

  (* --- macro: screening + full analysis, guards disarmed --- *)
  Dpfault.clear ();
  let workload () =
    let screened, _cov = Dpcore.Pipeline.screen corpus in
    ( Dpcore.Pipeline.run_all components screened,
      Dpcore.Pipeline.run_impact components screened )
  in
  let workload_s = time_best workload in

  (* --- micro: one disarmed guard --- *)
  let disabled_ns =
    ns_per_call ~iters:20_000_000 (fun () ->
        Dpfault.guard Dpfault.Corpus_read)
  in

  (* Guard calls the workload executes: arm a probability-zero plan — it
     draws at every guarded call without ever firing — and read the
     per-site call counters back. *)
  install "1:corpus.read=eintr@0.0,pool.task=eintr@0.0";
  ignore (Sys.opaque_identity (workload ()));
  let guard_calls =
    List.fold_left
      (fun acc site -> acc + Dpfault.call_count site)
      0 Dpfault.all_sites
  in
  Dpfault.clear ();
  let disabled_overhead_pct =
    100.0 *. (float_of_int guard_calls *. disabled_ns) /. (workload_s *. 1e9)
  in

  (* --- correctness: transparent below the quarantine threshold --- *)
  let plain = doc_of corpus in
  install (Printf.sprintf "%d:io-flaky" seed);
  let screened, cov = Dpcore.Pipeline.screen corpus in
  let identical_results =
    cov.Dpcore.Pipeline.cov_quarantined = [] && doc_of screened = plain
  in
  Dpfault.clear ();

  (* --- correctness: quarantine replays bit-identically --- *)
  let spec = Printf.sprintf "%d:corpus.read=fail@0.6!1" seed in
  let quarantined_run () =
    install spec;
    let screened, cov = Dpcore.Pipeline.screen corpus in
    let doc = doc_of screened in
    Dpfault.clear ();
    (cov, doc)
  in
  let cov1, doc1 = quarantined_run () in
  let cov2, doc2 = quarantined_run () in
  let replay_identical =
    cov1 = cov2 && doc1 = doc2
    && cov1.Dpcore.Pipeline.cov_quarantined <> []
  in

  Printf.printf
    "workload (best of %d): %.3fs\n\
     disarmed guard: %.2f ns/call, %d guard call(s) in the workload\n\
     disabled-mode overhead bound: %.4f%% of workload wall-clock\n\
     io-flaky transparent: %b   quarantine replay identical: %b\n"
    reps workload_s disabled_ns guard_calls disabled_overhead_pct
    identical_results replay_identical;

  let oc = open_out "BENCH_fault.json" in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"fault-inject\",\n\
    \  \"corpus_scale\": %g,\n\
    \  \"seed\": %d,\n\
    \  \"reps\": %d,\n\
    \  \"workload_s\": %.3f,\n\
    \  \"disabled_ns_per_call\": %.2f,\n\
    \  \"guard_calls\": %d,\n\
    \  \"disabled_overhead_pct\": %.4f,\n\
    \  \"identical_results\": %b,\n\
    \  \"replay_identical\": %b\n\
     }\n"
    scale seed reps workload_s disabled_ns guard_calls disabled_overhead_pct
    identical_results replay_identical;
  close_out oc;
  print_endline "wrote BENCH_fault.json"
