(* The full benchmark harness: regenerates every table and figure of the
   paper's evaluation (experiments E1-E10 of DESIGN.md), runs the two
   ablations (A1, A2), and times the analysis kernels with Bechamel.

   Knobs (environment):
     BENCH_SCALE        corpus scale (default 1.0 ≈ one tenth of paper volume)
     BENCH_SEED         corpus seed (default 42)
     BENCH_QUOTA        seconds per Bechamel micro-benchmark (default 0.5)
     BENCH_ONLY         comma-separated section names to run (e1..e10, rq2,
                        a1..a3, r1, parallel, mining, snapshot, monitor,
                        viz, micro);
                        unset runs everything
     DRIVEPERF_DOMAINS  default analysis parallelism (default: recommended
                        domain count); the scaling suite sweeps 1/2/4/this *)

module Table = Dputil.Table
module Impact = Dpcore.Impact
module Pipeline = Dpcore.Pipeline
module Mining = Dpcore.Mining
module Evaluation = Dpcore.Evaluation
module Taxonomy = Dpworkload.Taxonomy

let drivers = Dpcore.Component.drivers

let env_float name default =
  match Sys.getenv_opt name with Some v -> float_of_string v | None -> default

let env_int name default =
  match Sys.getenv_opt name with Some v -> int_of_string v | None -> default

let section title =
  Printf.printf "\n=== %s ===\n\n%!" title

let pct = Dpcore.Report.pct
let pctf f = Printf.sprintf "%.1f%%" f

let timed label f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  Printf.printf "[%s: %.2fs]\n%!" label (Unix.gettimeofday () -. t0);
  r

(* --- corpus and per-scenario results, shared by the experiments --- *)

let scale = env_float "BENCH_SCALE" 1.0
let seed = env_int "BENCH_SEED" 42

let corpus =
  timed "generate corpus" (fun () ->
      Dpworkload.Corpus_gen.generate
        { Dpworkload.Corpus_gen.default_config with scale; seed })

let bench_pool = Dppar.Pool.create ()

(* Lazy so sections that build their own pipelines (mining, parallel)
   can run under BENCH_ONLY without paying for the full fan-out. *)
let named_results =
  lazy
    (timed
       (Printf.sprintf "causality analysis x8 (%d domains)"
          (Dppar.Pool.size bench_pool))
       (fun () ->
         Pipeline.run_all ~pool:bench_pool ~scenarios:Paper.scenarios drivers
           corpus))

let result name = List.assoc name (Lazy.force named_results)

(* --- E1: Section 5.1 headline impact metrics --- *)

let e1 () =
  section "E1 - Impact analysis of device drivers (Section 5.1)";
  Format.printf "%a@." Dptrace.Corpus.pp_summary corpus;
  let r =
    timed "impact analysis" (fun () ->
        Pipeline.run_impact ~pool:bench_pool drivers corpus)
  in
  let t =
    Table.create ~title:"Headline metrics, paper vs measured"
      [ ("Metric", Table.Left); ("Paper", Table.Right); ("Measured", Table.Right) ]
  in
  Table.add_row t [ "IA_wait"; pctf Paper.ia_wait; pct (Impact.ia_wait r) ];
  Table.add_row t [ "IA_run"; pctf Paper.ia_run; pct (Impact.ia_run r) ];
  Table.add_row t [ "IA_opt"; pctf Paper.ia_opt; pct (Impact.ia_opt r) ];
  Table.add_row t
    [
      "D_wait / D_waitdist";
      Printf.sprintf "%.1f" Paper.propagation_ratio;
      Printf.sprintf "%.2f" (Impact.propagation_ratio r);
    ];
  Table.print t;
  (* Analyst drill-down: which driver carries the impact. *)
  let graphs =
    Pipeline.build_graphs corpus (Dptrace.Corpus.all_instances corpus)
  in
  print_newline ();
  Table.print
    (Dpcore.Report.module_breakdown ~top:8 (Impact.by_module drivers graphs))

(* --- E2: Table 1 --- *)

let e2 () =
  section "E2 - Table 1: selected scenarios and contrast classes";
  let t =
    Table.create
      [
        ("Scenario", Table.Left);
        ("#Inst (paper)", Table.Right);
        ("#Inst", Table.Right);
        ("fast (paper)", Table.Right);
        ("fast", Table.Right);
        ("slow (paper)", Table.Right);
        ("slow", Table.Right);
      ]
  in
  List.iter
    (fun (name, (p_total, p_fast, p_slow)) ->
      let c = (result name).Pipeline.classification in
      let f, m, s = Dpcore.Classify.counts c in
      Table.add_row t
        [
          name;
          string_of_int p_total;
          string_of_int (f + m + s);
          string_of_int p_fast;
          string_of_int f;
          string_of_int p_slow;
          string_of_int s;
        ])
    Paper.table1;
  Table.print t;
  Printf.printf
    "(measured volumes target one tenth of the paper's, scaled by %.2f)\n" scale

(* --- E3: Table 2 --- *)

let e3 () =
  section "E3 - Table 2: driver cost, ITC and TTC per scenario";
  let t =
    Table.create
      [
        ("Scenario", Table.Left);
        ("DrvCost (paper)", Table.Right);
        ("DrvCost", Table.Right);
        ("ITC (paper)", Table.Right);
        ("ITC", Table.Right);
        ("TTC (paper)", Table.Right);
        ("TTC", Table.Right);
      ]
  in
  List.iter
    (fun (name, (p_dc, p_itc, p_ttc)) ->
      let r = result name in
      Table.add_row t
        [
          name;
          pctf p_dc;
          pct (Pipeline.driver_cost_fraction r);
          pctf p_itc;
          pct r.Pipeline.coverages.Evaluation.itc;
          pctf p_ttc;
          pct r.Pipeline.coverages.Evaluation.ttc;
        ])
    Paper.table2;
  Table.print t

(* --- E4: Table 3 --- *)

let e4 () =
  section "E4 - Table 3: execution-time coverage by ranking";
  let t =
    Table.create
      [
        ("Scenario", Table.Left);
        ("#Pat (paper)", Table.Right);
        ("#Pat", Table.Right);
        ("10% (paper)", Table.Right);
        ("10%", Table.Right);
        ("20% (paper)", Table.Right);
        ("20%", Table.Right);
        ("30% (paper)", Table.Right);
        ("30%", Table.Right);
      ]
  in
  List.iter
    (fun (name, (p_n, p10, p20, p30)) ->
      let ps = (result name).Pipeline.mining.Mining.patterns in
      let cov f = pct (Evaluation.ranking_coverage ps ~top_fraction:f) in
      Table.add_row t
        [
          name;
          string_of_int p_n;
          string_of_int (List.length ps);
          pctf p10;
          cov 0.10;
          pctf p20;
          cov 0.20;
          pctf p30;
          cov 0.30;
        ])
    Paper.table3;
  Table.print t

(* --- RQ2: inspection effort --- *)

let rq2 () =
  section "RQ2 - Inspection effort under the ranking (Section 5.2.3)";
  List.iter
    (fun name ->
      let r = result name in
      let m = Dpcore.Inspect.model r.Pipeline.mining.Mining.patterns in
      Format.printf "%s:@.%a@." name Dpcore.Inspect.pp m)
    [ "BrowserTabCreate"; "WebPageNavigation" ];
  print_endline
    "paper (via StackMine calibration): ~400 patterns inspectable in 8 h for
     ~60% coverage, with over 90% inspection effort saved."

(* --- E5: Table 4 --- *)

let e5 () =
  section "E5 - Table 4: driver types in top-10 patterns (measured | paper)";
  let type_names = List.map Taxonomy.type_name Taxonomy.all_types in
  let t =
    Table.create
      (("Scenario", Table.Left) :: List.map (fun n -> (n, Table.Right)) type_names)
  in
  List.iter
    (fun (name, paper_row) ->
      let counts =
        Evaluation.driver_type_counts (result name).Pipeline.mining.Mining.patterns
          ~top_n:10 ~type_of:Taxonomy.type_name_of_signature
      in
      let cells =
        List.map2
          (fun ty p ->
            let m = Option.value ~default:0 (List.assoc_opt ty counts) in
            Printf.sprintf "%s|%s"
              (if m = 0 then "-" else string_of_int m)
              (if p = 0 then "-" else string_of_int p))
          type_names paper_row
      in
      Table.add_row t (name :: cells))
    Paper.table4;
  Table.print t

(* --- E6: Figure 1, the motivating case --- *)

let e6 () =
  section "E6 - Figure 1: the motivating BrowserTabCreate case";
  let case = Dpworkload.Motivating_case.build () in
  print_string (Dpworkload.Motivating_case.describe case);
  let d =
    Dptrace.Scenario.duration case.Dpworkload.Motivating_case.browser_instance
  in
  Printf.printf "check: instance exceeds 800 ms as in the paper: %s\n"
    (if d > Dputil.Time.ms 800 then "yes" else "NO");
  let mc_corpus = Dpworkload.Motivating_case.corpus () in
  let r = Pipeline.run_scenario drivers mc_corpus "BrowserTabCreate" in
  (match r.Pipeline.mining.Mining.patterns with
  | top :: _ ->
    let names =
      List.map Dptrace.Signature.name (Dpcore.Tuple.all_signatures top.Mining.tuple)
    in
    Printf.printf "top mined pattern rediscovers the paper's tuple: %s\n"
      (if
         List.for_all
           (fun s -> List.mem s names)
           Dpworkload.Motivating_case.expected_pattern_signatures
       then "yes"
       else "NO");
    Format.printf "%a@." Mining.pp_pattern top
  | [] -> print_endline "NO PATTERN MINED")

(* --- E7: Figure 2, the Aggregated Wait Graph --- *)

let e7 () =
  section "E7 - Figure 2: Aggregated Wait Graph of the motivating corpus";
  let mc_corpus = Dpworkload.Motivating_case.corpus () in
  let r = Pipeline.run_scenario drivers mc_corpus "BrowserTabCreate" in
  print_string (Dpcore.Awg.render r.Pipeline.slow_awg);
  Printf.printf "%s\n" (Dpcore.Report.awg_summary r.Pipeline.slow_awg)

(* --- E8: the Section 5.2.4 hard-fault case --- *)

let e8 () =
  section "E8 - Hard fault in graphics.sys (Section 5.2.4)";
  let anr = result "AppNonResponsive" in
  let counts =
    Evaluation.driver_type_counts anr.Pipeline.mining.Mining.patterns ~top_n:10
      ~type_of:Taxonomy.type_name_of_signature
  in
  Printf.printf "AppNonResponsive top-10 pattern driver types: %s\n"
    (String.concat ", "
       (List.map (fun (ty, n) -> Printf.sprintf "%s x%d" ty n) counts));
  let graphics_with_storage =
    List.find_opt
      (fun (p : Mining.pattern) ->
        let types =
          Dpcore.Tuple.all_signatures p.Mining.tuple
          |> List.filter_map Taxonomy.type_of_signature
        in
        List.mem Taxonomy.Graphics types
        && (List.mem Taxonomy.Storage_encryption types
           || List.mem Taxonomy.File_system types))
      anr.Pipeline.mining.Mining.patterns
  in
  match graphics_with_storage with
  | Some p ->
    print_endline
      "found a pattern joining graphics.sys with storage drivers - the\n\
       hard-fault signature the paper describes:";
    Format.printf "%a@." Mining.pp_pattern p
  | None -> print_endline "NO graphics+storage pattern found"

(* --- E9: non-optimisable portions --- *)

let e9 () =
  section "E9 - Non-optimisable (direct hardware) portions per scenario";
  let t =
    Table.create
      [
        ("Scenario", Table.Left);
        ("non-optimisable share of slow-class AWG", Table.Right);
      ]
  in
  List.iter
    (fun (name, r) ->
      Table.add_row t
        [ name; pct (Dpcore.Awg.non_optimizable_fraction r.Pipeline.slow_awg) ])
    (Lazy.force named_results);
  Table.print t;
  Printf.printf "paper: BrowserTabSwitch = %.1f%%; measured above = %s\n"
    Paper.tab_switch_non_optimizable
    (pct (Dpcore.Awg.non_optimizable_fraction (result "BrowserTabSwitch").Pipeline.slow_awg))

(* --- E10: baselines --- *)

let e10 () =
  section "E10 - Baselines (Section 6): what conventional tools see";
  let cg = timed "call-graph profiling" (fun () -> Dpbaseline.Callgraph.profile corpus) in
  let driver_cpu =
    Dpbaseline.Callgraph.fraction_matching cg (fun s ->
        Dpcore.Component.matches_signature drivers s)
  in
  Printf.printf
    "gprof-style profiler: drivers are %s of total CPU (matches IA_run; the\n\
     ~40%% wait-side impact is invisible to CPU profiling).\n"
    (pct driver_cpu);
  print_endline "top CPU rows:";
  List.iter
    (fun row -> Format.printf "  %a@." Dpbaseline.Callgraph.pp_row row)
    (Dpbaseline.Callgraph.top cg ~n:5);
  let lp = timed "lock-contention analysis" (fun () -> Dpbaseline.Lock_profiler.analyze corpus) in
  print_endline
    "single-lock contention analysis: per-site totals (no cross-lock chains):";
  List.iter
    (fun site -> Format.printf "  %a@." Dpbaseline.Lock_profiler.pp_site site)
    (Dpbaseline.Lock_profiler.top lp ~n:6);
  print_endline
    "each site is reported in isolation; the propagation chains the causality\n\
     analysis surfaces (e.g. fv.sys wait <- fs.sys <- se.sys <- disk) have no\n\
     counterpart here.";
  let sm =
    timed "StackMine-style mining" (fun () -> Dpbaseline.Stackmine.mine corpus)
  in
  Printf.printf
    "\nStackMine-style costly stack patterns (%d mined; within-thread only,\n\
     no unwait/running side, no cross-thread chain):\n"
    (List.length sm);
  List.iter
    (fun p -> Format.printf "  %a@." Dpbaseline.Stackmine.pp_pattern p)
    (Dpbaseline.Stackmine.top sm ~n:5)

(* --- A1: segment-length ablation --- *)

let a1 () =
  section "A1 - Ablation: segment-length bound k (BrowserTabCreate)";
  let t =
    Table.create
      [
        ("k", Table.Right);
        ("contrast metas", Table.Right);
        ("patterns", Table.Right);
        ("TTC", Table.Right);
        ("time", Table.Right);
      ]
  in
  List.iter
    (fun k ->
      let t0 = Unix.gettimeofday () in
      let r = Pipeline.run_scenario ~k drivers corpus "BrowserTabCreate" in
      let dt = Unix.gettimeofday () -. t0 in
      Table.add_row t
        [
          string_of_int k;
          string_of_int (List.length r.Pipeline.mining.Mining.contrast_metas);
          string_of_int (List.length r.Pipeline.mining.Mining.patterns);
          pct r.Pipeline.coverages.Evaluation.ttc;
          Printf.sprintf "%.2fs" dt;
        ])
    [ 1; 2; 3; 5; 7 ];
  Table.print t

(* --- A2: AWG-reduction ablation --- *)

let a2 () =
  section "A2 - Ablation: non-optimisable reduction on/off (BrowserTabSwitch)";
  let t =
    Table.create
      [
        ("reduction", Table.Left);
        ("AWG nodes", Table.Right);
        ("AWG cost", Table.Right);
        ("patterns", Table.Right);
      ]
  in
  List.iter
    (fun reduce ->
      let r = Pipeline.run_scenario ~reduce drivers corpus "BrowserTabSwitch" in
      Table.add_row t
        [
          (if reduce then "on (paper)" else "off");
          string_of_int (Dpcore.Awg.node_count r.Pipeline.slow_awg);
          Dputil.Time.to_string (Dpcore.Awg.total_cost r.Pipeline.slow_awg);
          string_of_int (List.length r.Pipeline.mining.Mining.patterns);
        ])
    [ true; false ];
  Table.print t;
  print_endline
    "without the reduction, prunable hardware-only structures re-enter the\n\
     AWG and dilute mining with non-actionable patterns."

(* --- R1: bootstrap confidence intervals --- *)

let r1 () =
  section "R1 - Bootstrap confidence intervals for the headline metrics";
  let r =
    timed "bootstrap (200 replicates)" (fun () ->
        Dpcore.Robustness.bootstrap ~pool:bench_pool drivers corpus)
  in
  Format.printf "%a@." Dpcore.Robustness.pp r;
  Printf.printf
    "paper point estimates: IA_wait 36.4%%, IA_run 1.6%%, IA_opt 26.0%%, ratio 3.5\n"

(* --- A3: CPU-pressure ablation --- *)

let a3 () =
  section "A3 - Ablation: CPU cores (run-queue model) on AppAccessControl";
  let t =
    Table.create
      [
        ("cores", Table.Left);
        ("mean instance", Table.Right);
        ("p90 instance", Table.Right);
        ("IA_wait (drivers)", Table.Right);
        ("IA_run (drivers)", Table.Right);
      ]
  in
  List.iter
    (fun cores ->
      let cfg =
        {
          Dpworkload.Corpus_gen.default_config with
          scale = 0.2;
          cores;
        }
      in
      let c = Dpworkload.Corpus_gen.generate cfg in
      let durations =
        Dptrace.Corpus.all_instances c
        |> List.map (fun (_, i) ->
               Dputil.Time.to_ms_float (Dptrace.Scenario.duration i))
        |> Array.of_list
      in
      let r = Pipeline.run_impact drivers c in
      Table.add_row t
        [
          (match cores with None -> "unbounded" | Some n -> string_of_int n);
          Printf.sprintf "%.0fms" (Dputil.Stats.mean durations);
          Printf.sprintf "%.0fms" (Dputil.Stats.percentile durations 90.0);
          pct (Impact.ia_wait r);
          pct (Impact.ia_run r);
        ])
    [ None; Some 8; Some 4; Some 2 ];
  Table.print t;
  print_endline
    "CPU pressure stretches instance durations (run-queue waits carry app\n\
     frames) while the driver-attributed metrics stay in regime - the\n\
     unbounded-CPU default is a sound approximation for this study.";
  print_newline ()

(* --- Parallel scaling: the same analysis at 1, 2, 4 and the recommended
   number of domains. Stream indexes are pre-warmed (they are memoised
   corpus-wide), so every timed run measures pure analysis work and no run
   is favoured by a warmer cache than another. --- *)

let parallel_scaling () =
  section "Parallel scaling (dppar domain pool)";
  let recommended = Dppar.Pool.default_domains () in
  let counts = List.sort_uniq compare [ 1; 2; 4; recommended ] in
  List.iter
    (fun st -> ignore (Dptrace.Stream.shared_index st))
    corpus.Dptrace.Corpus.streams;
  let workload pool =
    ( Pipeline.run_all ~pool ~scenarios:Paper.scenarios drivers corpus,
      Pipeline.run_impact ~pool drivers corpus )
  in
  let runs =
    List.map
      (fun domains ->
        let t0 = Unix.gettimeofday () in
        let r =
          Dppar.Pool.with_pool ~domains (fun pool ->
              timed (Printf.sprintf "full analysis, %d domain(s)" domains)
                (fun () -> workload pool))
        in
        (domains, Unix.gettimeofday () -. t0, r))
      counts
  in
  let base_seconds, (base_all, base_impact) =
    match runs with
    | (_, t, r) :: _ -> (t, r)
    | [] -> assert false
  in
  let identical =
    List.for_all
      (fun (_, _, (all, impact)) ->
        impact = base_impact
        && List.for_all2
             (fun (na, (ra : Pipeline.scenario_result)) (nb, rb) ->
               na = nb
               && ra.Pipeline.slow_impact = rb.Pipeline.slow_impact
               && ra.Pipeline.coverages = rb.Pipeline.coverages
               && Dpcore.Report.top_patterns ra.Pipeline.mining.Mining.patterns
                    ~n:max_int
                  = Dpcore.Report.top_patterns rb.Pipeline.mining.Mining.patterns
                      ~n:max_int)
             all base_all)
      runs
  in
  let t =
    Table.create ~title:"Scenario fan-out + impact analysis, by domain count"
      [ ("domains", Table.Right); ("time", Table.Right); ("speedup", Table.Right) ]
  in
  List.iter
    (fun (domains, seconds, _) ->
      Table.add_row t
        [
          string_of_int domains;
          Printf.sprintf "%.2fs" seconds;
          Printf.sprintf "%.2fx" (base_seconds /. seconds);
        ])
    runs;
  Table.print t;
  Printf.printf
    "results identical across domain counts: %s (hardware reports %d core(s))\n"
    (if identical then "yes" else "NO - DETERMINISM VIOLATION")
    recommended;
  let oc = open_out "BENCH_parallel.json" in
  Printf.fprintf oc
    "{\n  \"bench\": \"parallel-scaling\",\n  \"corpus_scale\": %g,\n  \
     \"seed\": %d,\n  \"recommended_domains\": %d,\n  \"identical_results\": \
     %b,\n  \"results\": [\n%s\n  ]\n}\n"
    scale seed recommended identical
    (String.concat ",\n"
       (List.map
          (fun (domains, seconds, _) ->
            Printf.sprintf
              "    { \"domains\": %d, \"seconds\": %.3f, \"speedup\": %.3f }"
              domains seconds
              (base_seconds /. seconds))
          runs));
  close_out oc;
  print_endline "wrote BENCH_parallel.json"

(* --- Bechamel micro-benchmarks of the analysis kernels --- *)

let micro () =
  section "Micro-benchmarks (Bechamel, monotonic clock)";
  let open Bechamel in
  let small = Dpworkload.Corpus_gen.generate (Dpworkload.Corpus_gen.scaled 0.05) in
  let entries = Dptrace.Corpus.all_instances small in
  let graphs = Pipeline.build_graphs small entries in
  let slow_awg = Dpcore.Awg.build drivers graphs in
  let spec =
    Dptrace.Scenario.spec ~name:"bench" ~tfast:(Dputil.Time.ms 100)
      ~tslow:(Dputil.Time.ms 300)
  in
  let tests =
    Test.make_grouped ~name:"driveperf"
      [
        Test.make ~name:"wait-graph-build(corpus=5%)"
          (Staged.stage (fun () -> Pipeline.build_graphs small entries));
        Test.make ~name:"impact-analysis"
          (Staged.stage (fun () -> Impact.analyze_graphs drivers graphs));
        Test.make ~name:"awg-build"
          (Staged.stage (fun () -> Dpcore.Awg.build drivers graphs));
        Test.make ~name:"meta-enumeration(k=5)"
          (Staged.stage (fun () -> Mining.enumerate_metas slow_awg ~k:5));
        Test.make ~name:"contrast-mining"
          (Staged.stage (fun () ->
               Mining.mine ~fast:slow_awg ~slow:slow_awg ~spec ()));
        Test.make ~name:"codec-text-roundtrip"
          (Staged.stage (fun () ->
               Dptrace.Codec.corpus_of_string (Dptrace.Codec.corpus_to_string small)));
        Test.make ~name:"codec-binary-roundtrip"
          (Staged.stage (fun () ->
               Dptrace.Codec_binary.decode (Dptrace.Codec_binary.encode small)));
      ]
  in
  let quota = env_float "BENCH_QUOTA" 0.5 in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:(Some 10) ()
  in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let results =
    Analyze.all
      (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  let t =
    Table.create
      [ ("kernel", Table.Left); ("time per run", Table.Right) ]
  in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some (e :: _) -> Printf.sprintf "%.3f ms" (e /. 1e6)
        | _ -> "n/a"
      in
      Table.add_row t [ name; est ])
    (List.sort compare rows);
  Table.print t;
  let text_size = String.length (Dptrace.Codec.corpus_to_string small) in
  let bin_size = String.length (Dptrace.Codec_binary.encode small) in
  Printf.printf "serialised size (5%% corpus): text %dKB, binary %dKB (%.1fx)\n"
    (text_size / 1024) (bin_size / 1024)
    (float_of_int text_size /. float_of_int (max 1 bin_size))

(* BENCH_ONLY=parallel,micro runs just those sections (CI uses this to
   regenerate the committed baselines without the full evaluation). *)
let selected =
  match Sys.getenv_opt "BENCH_ONLY" with
  | None | Some "" -> None
  | Some s -> Some (List.map String.trim (String.split_on_char ',' s))

let want name =
  match selected with None -> true | Some names -> List.mem name names

let () =
  Printf.printf
    "driveperf bench - reproduction of 'Comprehending Performance from\n\
     Real-World Execution Traces: A Device-Driver Case' (ASPLOS'14)\n\
     corpus scale %.2f, seed %d\n"
    scale seed;
  let sections =
    [
      ("e1", e1);
      ("e2", e2);
      ("e3", e3);
      ("e4", e4);
      ("rq2", rq2);
      ("e5", e5);
      ("e6", e6);
      ("e7", e7);
      ("e8", e8);
      ("e9", e9);
      ("e10", e10);
      ("a1", a1);
      ("a2", a2);
      ("a3", a3);
      ("r1", r1);
      ("parallel", parallel_scaling);
      ( "mining",
        fun () ->
          section "Mining engine vs reference (contrast-mining throughput)";
          Mining_bench.run ~scale ~seed corpus );
      ( "snapshot",
        fun () ->
          section "Snapshot cache (cold / warm / +1-stream delta)";
          Snapshot_bench.run ~scale ~seed corpus );
      ( "monitor",
        fun () ->
          section "Monitor tick (cold full / warm delta, replay determinism)";
          Monitor_bench.run ~scale ~seed );
      ( "viz",
        fun () ->
          section "Visual export (trace-event artifacts + flame views)";
          Viz_bench.run ~scale ~seed corpus );
      ("micro", micro);
    ]
  in
  List.iter (fun (name, run) -> if want name then run ()) sections;
  Dppar.Pool.shutdown bench_pool;
  print_endline "\nbench complete."
