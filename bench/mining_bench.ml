(* Contrast-mining engine benchmark: the optimised miner (incremental
   segment enumeration over frozen child arrays, hash-consed tuples,
   inverted pattern index, optional per-root parallelism) measured
   against the retained naive reference on a real scenario's AWGs.
   Writes BENCH_mining.json.

   Two properties are enforced:

   - the engine must return results structurally identical to the
     reference — sequential and pooled, with provenance off and on
     (witness unions are truncating and order-sensitive, so this checks
     the merge order too);
   - the combined enumeration + selection speedup must be >= 3x.

   Knobs: BENCH_SCALE / BENCH_SEED (via the shared corpus), BENCH_REPS
   (timed repetitions per configuration, best-of; default 3),
   DRIVEPERF_DOMAINS (pool size for the pooled run, floored at 2). *)

module Mining = Dpcore.Mining
module Pipeline = Dpcore.Pipeline

let env_int name default =
  match Sys.getenv_opt name with Some v -> int_of_string v | None -> default

let reps = max 1 (env_int "BENCH_REPS" 3)

(* Best-of-[reps] per-call wall time. The first (untimed) run warms any
   caches and calibrates an inner iteration count that puts each timed
   sample above ~20ms: single calls sit in the low milliseconds here,
   where scheduler noise would otherwise dominate best-of-2 ratios. *)
let time_best f =
  let t0 = Unix.gettimeofday () in
  ignore (Sys.opaque_identity (f ()));
  let t1 = Unix.gettimeofday () -. t0 in
  let iters = max 1 (int_of_float (ceil (0.02 /. Float.max 1e-9 t1))) in
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      ignore (Sys.opaque_identity (f ()))
    done;
    best := Float.min !best ((Unix.gettimeofday () -. t0) /. float_of_int iters)
  done;
  !best

(* The mining workload: AWGs aggregated over the {e whole} corpus —
   every scenario instance, split into a fast and a slow class at the
   median duration — so the table sizes and path counts scale with
   BENCH_SCALE instead of with one scenario's share of it. *)
let build_awgs drivers corpus =
  let entries = Dptrace.Corpus.all_instances corpus in
  let by_duration =
    List.sort
      (fun (_, a) (_, b) ->
        compare (Dptrace.Scenario.duration a) (Dptrace.Scenario.duration b))
      entries
  in
  let n = List.length by_duration in
  let fast_entries = List.filteri (fun i _ -> i < n / 2) by_duration in
  let slow_entries = List.filteri (fun i _ -> i >= n / 2) by_duration in
  ( Dpcore.Awg.build drivers (Pipeline.build_graphs corpus fast_entries),
    Dpcore.Awg.build drivers (Pipeline.build_graphs corpus slow_entries) )

let run ~scale ~seed corpus =
  let drivers = Dpcore.Component.drivers in
  let k = Mining.default_k in
  let domains = max 2 (Dppar.Pool.default_domains ()) in
  Dpcore.Provenance.disable ();
  let fast, slow = build_awgs drivers corpus in
  let spec =
    Dptrace.Scenario.spec ~name:"mining-bench" ~tfast:(Dputil.Time.ms 20)
      ~tslow:(Dputil.Time.ms 60)
  in

  let count_segments awg =
    let n = ref 0 in
    Dpcore.Awg.iter_segments awg ~k ~f:(fun _ -> incr n);
    !n
  in
  let segments = count_segments fast + count_segments slow in

  (* --- stage 1: meta-pattern enumeration (the raw tables, i.e. the
     exact body of the [mining.enumerate_tuples] span — no diagnostic
     sort) --- *)
  let t_enum_ref =
    time_best (fun () ->
        ( Mining.Reference.table_length (Mining.Reference.meta_table fast ~k),
          Mining.Reference.table_length (Mining.Reference.meta_table slow ~k) ))
  in
  let t_enum_eng =
    time_best (fun () ->
        ( Mining.Tuple_table.length (Mining.meta_table fast ~k),
          Mining.Tuple_table.length (Mining.meta_table slow ~k) ))
  in
  let t_enum_pooled =
    Dppar.Pool.with_pool ~domains (fun pool ->
        time_best (fun () ->
            ( Mining.Tuple_table.length (Mining.meta_table ~pool fast ~k),
              Mining.Tuple_table.length (Mining.meta_table ~pool slow ~k) )))
  in

  (* --- stage 3: pattern selection --- *)
  let reference = Mining.Reference.mine ~k ~fast ~slow ~spec () in
  let contrast_metas = reference.Mining.contrast_metas in
  let t_sel_ref =
    time_best (fun () -> Mining.Reference.select_patterns ~slow ~contrast_metas)
  in
  let t_sel_eng =
    time_best (fun () -> Mining.select_patterns ~slow ~contrast_metas)
  in

  (* --- correctness: engine == reference, all modes --- *)
  let engine = Mining.mine ~k ~fast ~slow ~spec () in
  let pooled =
    Dppar.Pool.with_pool ~domains (fun pool ->
        Mining.mine ~pool ~k ~fast ~slow ~spec ())
  in
  let identical_results = engine = reference && pooled = reference in
  Dpcore.Provenance.enable ();
  let fast_p, slow_p = build_awgs drivers corpus in
  let reference_p = Mining.Reference.mine ~k ~fast:fast_p ~slow:slow_p ~spec () in
  let engine_p = Mining.mine ~k ~fast:fast_p ~slow:slow_p ~spec () in
  let pooled_p =
    Dppar.Pool.with_pool ~domains (fun pool ->
        Mining.mine ~pool ~k ~fast:fast_p ~slow:slow_p ~spec ())
  in
  Dpcore.Provenance.disable ();
  let identical_results_prov =
    engine_p = reference_p && pooled_p = reference_p
  in

  let distinct_tuples = engine.Mining.fast_meta_count + engine.Mining.slow_meta_count in
  let speedup_enum = t_enum_ref /. t_enum_eng in
  let speedup_select = t_sel_ref /. t_sel_eng in
  let speedup_mining =
    (t_enum_ref +. t_sel_ref) /. (t_enum_eng +. t_sel_eng)
  in
  let segs_per_sec t = float_of_int segments /. t in

  let workload = "whole-corpus-median-split" in
  Printf.printf
    "workload %s, k=%d: %d segments, %d distinct tuples, %d contrast metas\n\
     enumerate_tuples: reference %.4fs, engine %.4fs (%.2fx), pooled(%d) %.4fs\n\
     pattern_selection: reference %.4fs, engine %.4fs (%.2fx)\n\
     combined speedup: %.2fx; engine throughput %.0f segments/s \
     (reference %.0f)\n\
     identical results: %b (provenance on: %b)\n"
    workload k segments distinct_tuples
    (List.length contrast_metas)
    t_enum_ref t_enum_eng speedup_enum domains t_enum_pooled t_sel_ref
    t_sel_eng speedup_select speedup_mining
    (segs_per_sec t_enum_eng)
    (segs_per_sec t_enum_ref)
    identical_results identical_results_prov;

  let oc = open_out "BENCH_mining.json" in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"mining-throughput\",\n\
    \  \"corpus_scale\": %g,\n\
    \  \"seed\": %d,\n\
    \  \"workload\": \"%s\",\n\
    \  \"k\": %d,\n\
    \  \"domains\": %d,\n\
    \  \"segments\": %d,\n\
    \  \"distinct_tuples\": %d,\n\
    \  \"contrast_metas\": %d,\n\
    \  \"seconds_enum_reference\": %.6f,\n\
    \  \"seconds_enum_engine\": %.6f,\n\
    \  \"seconds_enum_engine_pooled\": %.6f,\n\
    \  \"seconds_select_reference\": %.6f,\n\
    \  \"seconds_select_engine\": %.6f,\n\
    \  \"segments_per_sec_reference\": %.1f,\n\
    \  \"segments_per_sec_engine\": %.1f,\n\
    \  \"speedup_enum\": %.3f,\n\
    \  \"speedup_select\": %.3f,\n\
    \  \"speedup_mining\": %.3f,\n\
    \  \"identical_results\": %b,\n\
    \  \"identical_results_prov\": %b\n\
     }\n"
    scale seed workload k domains segments distinct_tuples
    (List.length contrast_metas)
    t_enum_ref t_enum_eng t_enum_pooled t_sel_ref t_sel_eng
    (segs_per_sec t_enum_ref)
    (segs_per_sec t_enum_eng)
    speedup_enum speedup_select speedup_mining identical_results
    identical_results_prov;
  close_out oc;
  print_endline "wrote BENCH_mining.json";

  if not (identical_results && identical_results_prov) then begin
    print_endline "FAIL: engine result differs from the reference miner";
    exit 1
  end;
  (* The 3x floor is a throughput claim; below a few thousand segments
     the measurement is dominated by fixed per-call costs (table sizing,
     interner warm-up) and says nothing about it. CI enforces the floor
     at the committed baseline's scale via tools/bench_gate.py. *)
  if speedup_mining < 3.0 then
    if segments >= 3000 then begin
      Printf.printf "FAIL: combined mining speedup %.2fx < 3x\n" speedup_mining;
      exit 1
    end
    else
      Printf.printf
        "note: %.2fx < 3x, not enforced below 3000 segments (got %d)\n"
        speedup_mining segments
