(* Visual-export benchmark: throughput and determinism of the dpviz
   artifact writers over the shared bench corpus.

   Every classified scenario's slow/fast exemplars are rendered into one
   Chrome trace-event artifact (timed), re-rendered to prove
   byte-determinism, and checked for the s/f flow-pairing invariant by
   counting phases in the emitted JSON; the flame pipeline (running +
   AWG folded stacks, slow-vs-fast differential) runs over the same
   classes. Writes BENCH_viz.json.

   The committed gate enforces identical_results = true,
   flow_pairing_ok = true, nonzero slice/flow/path counts and a bounded
   bytes-per-slice artifact density. *)

module Corpus = Dptrace.Corpus
module Scenario = Dptrace.Scenario
module Classify = Dpcore.Classify
module Awg = Dpcore.Awg
module Wait_graph = Dpwaitgraph.Wait_graph
module Trace_export = Dpviz.Trace_export
module Flame = Dpviz.Flame

let env_int name default =
  match Sys.getenv_opt name with Some v -> int_of_string v | None -> default

let reps = max 1 (env_int "BENCH_REPS" 3)

let time_best f =
  ignore (f ());
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (f ()));
    best := Float.min !best (Unix.gettimeofday () -. t0)
  done;
  !best

let count_substr needle hay =
  let n = String.length needle and l = String.length hay in
  let rec go i acc =
    if i + n > l then acc
    else if String.sub hay i n = needle then go (i + n) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let run ~scale ~seed corpus =
  Dpobs.enable ~spans:false ~metrics:true ();
  let drivers = Dpcore.Component.drivers in
  let classified =
    List.filter_map
      (fun name ->
        match Classify.classify corpus name with
        | exception Not_found -> None
        | c -> if Classify.total c > 0 then Some c else None)
      (Corpus.scenario_names corpus)
  in
  let exemplars =
    List.concat_map Trace_export.exemplars_of_classes classified
  in
  let export () = Trace_export.export exemplars in
  let v name = Dpobs.Metrics.counter_value (Dpobs.Metrics.counter name) in
  let s0 = v "viz.slices_emitted" and f0 = v "viz.flows_emitted" in
  let artifact = export () in
  let slices = v "viz.slices_emitted" - s0
  and flows = v "viz.flows_emitted" - f0 in
  let identical_export = String.equal artifact (export ()) in
  let starts = count_substr "\"ph\":\"s\"" artifact
  and finishes = count_substr "\"ph\":\"f\"" artifact in
  let flow_pairing_ok =
    starts = finishes && starts = flows && flows > 0 in
  let t_export = time_best export in
  let bytes = String.length artifact in
  let mb_s = float_of_int bytes /. 1048576.0 /. t_export in
  let bytes_per_slice = float_of_int bytes /. float_of_int (max 1 slices) in

  (* Flame pipeline over the same classes: running + AWG folded views
     and the slow-vs-fast differential of the scenario with the largest
     slow class. *)
  let awg_of pairs =
    Awg.build drivers
      (List.map
         (fun ((st : Dptrace.Stream.t), i) ->
           Wait_graph.build ~index:(Dptrace.Stream.shared_index st) st i)
         pairs)
  in
  let flame_paths = ref 0 in
  let flame_all () =
    flame_paths := 0;
    List.iter
      (fun (c : Classify.t) ->
        flame_paths :=
          !flame_paths
          + List.length (Flame.folded_running c.Classify.slow)
          + List.length (Flame.folded_awg (awg_of c.Classify.slow)))
      classified
  in
  let t_flame = time_best flame_all in
  let richest =
    List.fold_left
      (fun best (c : Classify.t) ->
        match best with
        | Some (b : Classify.t)
          when List.length b.Classify.slow >= List.length c.Classify.slow ->
          best
        | _ -> Some c)
      None classified
  in
  let diff_paths =
    match richest with
    | None -> 0
    | Some c ->
      List.length
        (Flame.diff
           ~slow:
             (Flame.normalize
                (Flame.folded_awg (awg_of c.Classify.slow))
                ~instances:(List.length c.Classify.slow))
           ~fast:
             (Flame.normalize
                (Flame.folded_awg (awg_of c.Classify.fast))
                ~instances:(List.length c.Classify.fast)))
  in

  Printf.printf
    "viz (%d scenarios, %d exemplars, best of %d):\n\
    \  trace export %.3fs (%.1f MB/s, %d bytes, %.0f bytes/slice)\n\
    \  %d slices, %d flow pairs (s=%d f=%d): %s\n\
    \  flame views %.3fs (%d folded paths, %d differential paths)\n\
    \  deterministic re-export: %s\n"
    (List.length classified) (List.length exemplars) reps t_export mb_s
    bytes bytes_per_slice slices flows starts finishes
    (if flow_pairing_ok then "paired" else "NO - FLOWS UNPAIRED")
    t_flame !flame_paths diff_paths
    (if identical_export then "yes" else "NO - EXPORT DIVERGED");

  let oc = open_out "BENCH_viz.json" in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"viz-export\",\n\
    \  \"corpus_scale\": %g,\n\
    \  \"seed\": %d,\n\
    \  \"reps\": %d,\n\
    \  \"scenarios\": %d,\n\
    \  \"exemplars\": %d,\n\
    \  \"seconds_export\": %.3f,\n\
    \  \"export_mb_s\": %.1f,\n\
    \  \"artifact_bytes\": %d,\n\
    \  \"bytes_per_slice\": %.1f,\n\
    \  \"slices_emitted\": %d,\n\
    \  \"flows_emitted\": %d,\n\
    \  \"seconds_flame\": %.3f,\n\
    \  \"flame_paths\": %d,\n\
    \  \"diff_paths\": %d,\n\
    \  \"flow_pairing_ok\": %b,\n\
    \  \"identical_results\": %b\n\
     }\n"
    scale seed reps (List.length classified) (List.length exemplars)
    t_export mb_s bytes bytes_per_slice slices flows t_flame !flame_paths
    diff_paths flow_pairing_ok identical_export;
  close_out oc;
  print_endline "wrote BENCH_viz.json";
  if not (identical_export && flow_pairing_ok) then exit 1
