(* Codec benchmark: encode/decode throughput and sizes of the three
   corpus formats (text v1, binary v1, framed v2), v2 sequential vs
   pooled ingestion, plus the cross-format identity and recovery checks.
   Writes BENCH_codec.json next to the working directory.

   Knobs (environment):
     BENCH_SCALE        corpus scale (default 1.0)
     BENCH_SEED         corpus seed (default 42)
     BENCH_REPS         timed repetitions per operation, best-of (default 3)
     DRIVEPERF_DOMAINS  pooled-decode domain count (default: recommended) *)

let env_float name default =
  match Sys.getenv_opt name with Some v -> float_of_string v | None -> default

let env_int name default =
  match Sys.getenv_opt name with Some v -> int_of_string v | None -> default

let scale = env_float "BENCH_SCALE" 1.0
let seed = env_int "BENCH_SEED" 42
let reps = max 1 (env_int "BENCH_REPS" 3)

(* Best-of-[reps] wall time; the first (untimed) run warms any caches. *)
let time_best f =
  ignore (f ());
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (f ()));
    best := Float.min !best (Unix.gettimeofday () -. t0)
  done;
  !best

let mb_s bytes seconds = float_of_int bytes /. 1e6 /. seconds

type row = {
  label : string;
  bytes : int;  (* encoded size of this format *)
  encode_mb_s : float;
  decode_mb_s : float;
}

let row label ~encode ~decode =
  let encoded = encode () in
  let bytes = String.length encoded in
  let enc_t = time_best encode in
  let dec_t = time_best (fun () -> decode encoded) in
  Printf.printf "%-24s %9d bytes   encode %8.1f MB/s   decode %8.1f MB/s\n%!"
    label bytes (mb_s bytes enc_t) (mb_s bytes dec_t);
  { label; bytes; encode_mb_s = mb_s bytes enc_t; decode_mb_s = mb_s bytes dec_t }

let () =
  let config = { (Dpworkload.Corpus_gen.scaled scale) with seed } in
  let corpus = Dpworkload.Corpus_gen.generate config in
  Format.printf "%a@." Dptrace.Corpus.pp_summary corpus;
  let canonical = Dptrace.Codec.corpus_to_string corpus in
  let domains = Dppar.Pool.default_domains () in
  Dppar.Pool.with_pool ~domains @@ fun pool ->
  let text =
    row "text v1"
      ~encode:(fun () -> Dptrace.Codec.corpus_to_string corpus)
      ~decode:(fun s -> ignore (Dptrace.Codec.corpus_of_string s))
  in
  let binary =
    row "binary v1"
      ~encode:(fun () -> Dptrace.Codec_binary.encode corpus)
      ~decode:(fun s -> ignore (Dptrace.Codec_binary.decode s))
  in
  let v2_one =
    row "framed v2 (1 domain)"
      ~encode:(fun () -> Dptrace.Codec_v2.encode corpus)
      ~decode:(fun s -> ignore (Dptrace.Codec_v2.decode s))
  in
  let v2_pooled =
    row
      (Printf.sprintf "framed v2 (%d domains)" domains)
      ~encode:(fun () -> Dptrace.Codec_v2.encode ~pool corpus)
      ~decode:(fun s -> ignore (Dptrace.Codec_v2.decode ~pool s))
  in
  let rows = [ text; binary; v2_one; v2_pooled ] in
  (* Identity: every format round-trips to the same canonical text, the
     pooled v2 paths are byte-identical to the sequential ones, and a v1
     binary corpus upgraded to v2 decodes back bit-identically. *)
  let text_of c = Dptrace.Codec.corpus_to_string c in
  let v2_seq = Dptrace.Codec_v2.encode corpus in
  let v2_par = Dptrace.Codec_v2.encode ~pool corpus in
  let identical =
    text_of (Dptrace.Codec.corpus_of_string canonical) = canonical
    && text_of (Dptrace.Codec_binary.decode (Dptrace.Codec_binary.encode corpus))
       = canonical
    && v2_seq = v2_par
    && text_of (fst (Dptrace.Codec_v2.decode v2_seq)) = canonical
    && text_of (fst (Dptrace.Codec_v2.decode ~pool v2_seq)) = canonical
    && text_of
         (fst
            (Dptrace.Codec_v2.decode
               (Dptrace.Codec_v2.encode
                  (Dptrace.Codec_binary.decode
                     (Dptrace.Codec_binary.encode corpus)))))
       = canonical
  in
  (* Recovery sanity: flip one payload byte; strict must refuse, recovery
     must report the damage and keep the rest. *)
  let corrupted = Bytes.of_string v2_seq in
  Bytes.set corrupted
    (Bytes.length corrupted / 2)
    (Char.chr (Char.code (Bytes.get corrupted (Bytes.length corrupted / 2)) lxor 0xff));
  let corrupted = Bytes.to_string corrupted in
  let strict_refuses =
    match Dptrace.Codec_v2.decode corrupted with
    | _ -> false
    | exception Dptrace.Codec_binary.Corrupt _ -> true
  in
  let recovered, report = Dptrace.Codec_v2.decode ~mode:`Recover corrupted in
  let recovery_ok =
    strict_refuses
    && report.Dptrace.Codec_v2.dropped <> []
    && List.length recovered.Dptrace.Corpus.streams
       < List.length corpus.Dptrace.Corpus.streams
  in
  Printf.printf
    "identical results across formats and domain counts: %s\n\
     recovery drops only the damaged frame: %s\n%!"
    (if identical then "yes" else "NO - CODEC MISMATCH")
    (if recovery_ok then "yes" else "NO - RECOVERY BROKEN");
  let oc = open_out "BENCH_codec.json" in
  Printf.fprintf oc
    "{\n  \"bench\": \"codec\",\n  \"corpus_scale\": %g,\n  \"seed\": %d,\n  \
     \"domains\": %d,\n  \"identical_results\": %b,\n  \"recovery_ok\": %b,\n  \
     \"formats\": [\n%s\n  ]\n}\n"
    scale seed domains identical recovery_ok
    (String.concat ",\n"
       (List.map
          (fun r ->
            Printf.sprintf
              "    { \"format\": %S, \"bytes\": %d, \"encode_mb_s\": %.1f, \
               \"decode_mb_s\": %.1f }"
              r.label r.bytes r.encode_mb_s r.decode_mb_s)
          rows));
  close_out oc;
  print_endline "wrote BENCH_codec.json";
  if not (identical && recovery_ok) then exit 1
