(** The discrete-event kernel simulator.

    An engine owns a clock, a calendar of pending actions, and the traced
    entities (threads, locks, devices, services). Running it to completion
    interprets every spawned thread's {!Program.step} list under real FIFO
    lock semantics and device queueing, and produces a {!Dptrace.Stream.t}
    in the paper's event schema.

    Scheduling model: by default CPU capacity is unbounded (no run-queue
    contention) — the phenomena under study flow through locks and
    hardware, and the paper measures driver CPU at only ~1.6 %. Passing
    [~cores:n] instead models [n] cores with a non-preemptive FIFO run
    queue: a compute span waits for a free core, the queueing delay is
    recorded as a wait event whose topmost frame is ["kernel!CpuQueue"]
    (unwaited by the thread that released the core), so CPU pressure shows
    up in scenario durations without polluting driver-wait metrics.
    Running events are emitted one per compute span with their cost
    floor-quantised to the sampling period (default 1 ms), mirroring ETW's
    sampling granularity: compute bursts shorter than the period leave no
    running event, exactly like a sampling profiler that never fires
    inside them.

    Determinism: engines contain no randomness; identical inputs produce
    identical streams. Simultaneous actions run in scheduling order. *)

type t

exception Deadlock of string
(** Raised by {!run} when the calendar drains while threads are still
    blocked; the message lists the stuck threads and held locks. *)

val create :
  ?sample_period:Dputil.Time.t ->
  ?quantize_running:bool ->
  ?cores:int ->
  stream_id:int ->
  unit ->
  t
(** [sample_period] defaults to 1 ms; [quantize_running] defaults to
    [true]; [cores] defaults to unbounded CPU capacity (see the scheduling
    model above). @raise Invalid_argument if [cores < 1]. *)

val cpu_queue_frame : Dptrace.Signature.t
(** ["kernel!CpuQueue"] — the wait frame of run-queue delays under
    [~cores]. *)

val new_lock : t -> name:string -> Program.lock

val new_device : t -> name:string -> signature:Dptrace.Signature.t -> Program.device
(** Creates the device and its pseudo-thread (which records hardware-service
    events and unwaits requesters). The device serves FIFO: a request's
    completion time is [max now free_at + dur]. *)

val new_service :
  t -> name:string -> worker_stack:Dptrace.Signature.t list -> Program.service
(** A service spawns one fresh worker thread per {!Program.Request}. *)

val spawn :
  t ->
  ?scenario:string ->
  ?start_at:Dputil.Time.t ->
  name:string ->
  base_stack:Dptrace.Signature.t list ->
  Program.step list ->
  int
(** Register a thread; returns its tid. When [scenario] is given the thread
    is an initiating thread and its lifetime [\[start_at, completion\]]
    becomes a scenario instance of that name. [base_stack] is topmost
    first (e.g. [\["Browser!TabCreate"\]]). *)

val run : t -> Dptrace.Stream.t
(** Run the simulation to completion and build the stream. Can be called
    once per engine.
    @raise Deadlock if blocked threads remain when the calendar drains. *)
