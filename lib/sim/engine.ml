module Time = Dputil.Time
module Signature = Dptrace.Signature
module Callstack = Dptrace.Callstack
module Event = Dptrace.Event

exception Deadlock of string

(* Minimal binary min-heap of timed actions; ties resolve in insertion
   order so simulation runs are fully deterministic. *)
module Calendar = struct
  type entry = { time : int; seq : int; run : unit -> unit }

  type t = { mutable arr : entry array; mutable size : int; mutable next_seq : int }

  let dummy = { time = 0; seq = 0; run = ignore }

  let create () = { arr = Array.make 256 dummy; size = 0; next_seq = 0 }

  let earlier a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

  let push t ~time run =
    if t.size = Array.length t.arr then begin
      let fresh = Array.make (2 * t.size) dummy in
      Array.blit t.arr 0 fresh 0 t.size;
      t.arr <- fresh
    end;
    let entry = { time; seq = t.next_seq; run } in
    t.next_seq <- t.next_seq + 1;
    let i = ref t.size in
    t.size <- t.size + 1;
    t.arr.(!i) <- entry;
    (* Sift up. *)
    while !i > 0 && earlier t.arr.(!i) t.arr.((!i - 1) / 2) do
      let parent = (!i - 1) / 2 in
      let tmp = t.arr.(parent) in
      t.arr.(parent) <- t.arr.(!i);
      t.arr.(!i) <- tmp;
      i := parent
    done

  let pop t =
    if t.size = 0 then None
    else begin
      let top = t.arr.(0) in
      t.size <- t.size - 1;
      t.arr.(0) <- t.arr.(t.size);
      t.arr.(t.size) <- dummy;
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && earlier t.arr.(l) t.arr.(!smallest) then smallest := l;
        if r < t.size && earlier t.arr.(r) t.arr.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = t.arr.(!smallest) in
          t.arr.(!smallest) <- t.arr.(!i);
          t.arr.(!i) <- tmp;
          i := !smallest
        end
      done;
      Some top
    end
end

type cont_item =
  | Steps of Program.step list
  | Pop_frame
  | Unlock of Program.lock
  | Reply of thread

and thread = {
  tid : int;
  tname : string;
  scenario : string option;
  start_at : Time.t;
  mutable stack : Signature.t list; (* topmost first *)
  mutable cont : cont_item list;
  mutable blocked : bool;
  mutable wait_start : Time.t;
  mutable wait_stack : Callstack.t;
  mutable finished : Time.t option;
}

and cpu_request = {
  cpu_thread : thread;
  cpu_frame : Signature.t option;
  cpu_dur : Time.t;
}

type lock_state = {
  lock : Program.lock;
  mutable holder : int option;
  waiters : thread Queue.t;
}

type device_state = { mutable free_at : Time.t }

let cpu_queue_frame = Signature.of_string "kernel!CpuQueue"

type t = {
  stream_id : int;
  sample_period : Time.t;
  quantize : bool;
  cores : int option;
  mutable cores_busy : int;
  cpu_queue : cpu_request Queue.t;
  calendar : Calendar.t;
  mutable now : Time.t;
  mutable next_tid : int;
  mutable next_uid : int;
  mutable events : Event.t list;
  mutable threads : thread list; (* reversed spawn order *)
  mutable device_threads : (int * string) list;
  locks : (int, lock_state) Hashtbl.t;
  devices : (int, device_state) Hashtbl.t;
  service_spawns : (int, int) Hashtbl.t;
  mutable ran : bool;
}

let create ?(sample_period = Time.ms 1) ?(quantize_running = true) ?cores
    ~stream_id () =
  (match cores with
  | Some n when n < 1 -> invalid_arg "Engine.create: cores must be >= 1"
  | Some _ | None -> ());
  {
    stream_id;
    sample_period;
    quantize = quantize_running;
    cores;
    cores_busy = 0;
    cpu_queue = Queue.create ();
    calendar = Calendar.create ();
    now = 0;
    next_tid = 1;
    next_uid = 0;
    events = [];
    threads = [];
    device_threads = [];
    locks = Hashtbl.create 16;
    devices = Hashtbl.create 8;
    service_spawns = Hashtbl.create 8;
    ran = false;
  }

let fresh_tid t =
  let tid = t.next_tid in
  t.next_tid <- tid + 1;
  tid

let fresh_uid t =
  let uid = t.next_uid in
  t.next_uid <- uid + 1;
  uid

let new_lock t ~name =
  let lock = { Program.lock_uid = fresh_uid t; lock_name = name } in
  Hashtbl.replace t.locks lock.Program.lock_uid
    { lock; holder = None; waiters = Queue.create () };
  lock

let new_device t ~name ~signature =
  let device_tid = fresh_tid t in
  t.device_threads <- (device_tid, name) :: t.device_threads;
  let device =
    {
      Program.device_uid = fresh_uid t;
      device_tid;
      device_name = name;
      device_sig = signature;
    }
  in
  Hashtbl.replace t.devices device.Program.device_uid { free_at = 0 };
  device

let new_service t ~name ~worker_stack =
  let service =
    { Program.service_uid = fresh_uid t; service_name = name; worker_stack }
  in
  Hashtbl.replace t.service_spawns service.Program.service_uid 0;
  service

let emit t ~kind ~stack ~ts ~cost ~tid ~wtid =
  t.events <- { Event.id = 0; kind; stack; ts; cost; tid; wtid } :: t.events

let schedule t ~time run =
  assert (time >= t.now);
  Calendar.push t.calendar ~time run

let block th frames now =
  th.blocked <- true;
  th.wait_start <- now;
  th.wait_stack <- Callstack.of_list (frames @ th.stack)

(* Finalize the wait event of [sleeper] and record the unwait from the
   waker, then resume the sleeper. Resumption goes through the calendar so
   that a release cascade at one instant stays breadth-first and bounded. *)
let wake t ~waker_tid ~waker_stack sleeper exec =
  assert sleeper.blocked;
  emit t ~kind:Event.Wait ~stack:sleeper.wait_stack ~ts:sleeper.wait_start
    ~cost:(t.now - sleeper.wait_start) ~tid:sleeper.tid ~wtid:(-1);
  emit t ~kind:Event.Unwait
    ~stack:(Callstack.of_list waker_stack)
    ~ts:t.now ~cost:0 ~tid:waker_tid ~wtid:sleeper.tid;
  sleeper.blocked <- false;
  schedule t ~time:t.now (fun () -> exec sleeper)

let emit_running t th frame dur =
  let stack =
    match frame with Some f -> f :: th.stack | None -> th.stack
  in
  let cost = if t.quantize then dur / t.sample_period * t.sample_period else dur in
  if cost > 0 then
    emit t ~kind:Event.Running ~stack:(Callstack.of_list stack) ~ts:t.now ~cost
      ~tid:th.tid ~wtid:(-1)

let lock_state t (lock : Program.lock) =
  match Hashtbl.find_opt t.locks lock.Program.lock_uid with
  | Some ls -> ls
  | None -> invalid_arg ("Engine: foreign lock " ^ lock.Program.lock_name)

let device_state t (device : Program.device) =
  match Hashtbl.find_opt t.devices device.Program.device_uid with
  | Some ds -> ds
  | None -> invalid_arg ("Engine: foreign device " ^ device.Program.device_name)

let make_thread t ?scenario ~name ~base_stack ~start_at cont =
  let th =
    {
      tid = fresh_tid t;
      tname = name;
      scenario;
      start_at;
      stack = base_stack;
      cont;
      blocked = false;
      wait_start = 0;
      wait_stack = Callstack.of_list [];
      finished = None;
    }
  in
  t.threads <- th :: t.threads;
  th

let rec exec t th =
  assert (not th.blocked);
  match th.cont with
  | [] -> th.finished <- Some t.now
  | Pop_frame :: rest ->
    (match th.stack with
    | _ :: deeper -> th.stack <- deeper
    | [] -> assert false);
    th.cont <- rest;
    exec t th
  | Unlock lock :: rest ->
    th.cont <- rest;
    do_unlock t th lock;
    exec t th
  | Reply requester :: rest ->
    th.cont <- rest;
    wake t ~waker_tid:th.tid ~waker_stack:th.stack requester (exec t);
    exec t th
  | Steps [] :: rest ->
    th.cont <- rest;
    exec t th
  | Steps (step :: more) :: rest ->
    th.cont <- Steps more :: rest;
    exec_step t th step

and do_unlock t th (lock : Program.lock) =
  let ls = lock_state t lock in
  (match ls.holder with
  | Some holder when holder = th.tid -> ()
  | _ -> invalid_arg ("Engine: release of a lock not held: " ^ lock.Program.lock_name));
  if Queue.is_empty ls.waiters then ls.holder <- None
  else begin
    let next = Queue.pop ls.waiters in
    ls.holder <- Some next.tid;
    wake t ~waker_tid:th.tid ~waker_stack:th.stack next (exec t)
  end

and start_compute t th frame dur =
  emit_running t th frame dur;
  schedule t
    ~time:(t.now + dur)
    (fun () ->
      release_core t ~by:th;
      exec t th)

and release_core t ~by =
  match t.cores with
  | None -> ()
  | Some _ ->
    t.cores_busy <- t.cores_busy - 1;
    if not (Queue.is_empty t.cpu_queue) then begin
      let req = Queue.pop t.cpu_queue in
      t.cores_busy <- t.cores_busy + 1;
      (* The core hand-off (a context switch): finalize the queued
         thread's CpuQueue wait, unwaited by the thread releasing the
         core. *)
      emit t ~kind:Event.Wait ~stack:req.cpu_thread.wait_stack
        ~ts:req.cpu_thread.wait_start
        ~cost:(t.now - req.cpu_thread.wait_start)
        ~tid:req.cpu_thread.tid ~wtid:(-1);
      emit t ~kind:Event.Unwait
        ~stack:(Callstack.of_list by.stack)
        ~ts:t.now ~cost:0 ~tid:by.tid ~wtid:req.cpu_thread.tid;
      req.cpu_thread.blocked <- false;
      start_compute t req.cpu_thread req.cpu_frame req.cpu_dur
    end

and exec_step t th (step : Program.step) =
  match step with
  | Program.Compute { frame; dur } -> (
    match t.cores with
    | None -> start_compute t th frame dur
    | Some n ->
      if t.cores_busy < n then begin
        t.cores_busy <- t.cores_busy + 1;
        start_compute t th frame dur
      end
      else begin
        block th [ cpu_queue_frame ] t.now;
        Queue.add { cpu_thread = th; cpu_frame = frame; cpu_dur = dur } t.cpu_queue
      end)
  | Program.Call { frame; body } ->
    th.stack <- frame :: th.stack;
    th.cont <- Steps body :: Pop_frame :: th.cont;
    exec t th
  | Program.Locked { lock; acquire_frames; body } ->
    let ls = lock_state t lock in
    th.cont <- Steps body :: Unlock lock :: th.cont;
    (match ls.holder with
    | None ->
      ls.holder <- Some th.tid;
      exec t th
    | Some holder ->
      if holder = th.tid then
        invalid_arg ("Engine: re-entrant acquisition of " ^ lock.Program.lock_name);
      block th acquire_frames t.now;
      Queue.add th ls.waiters)
  | Program.Hw_request { device; dur; wait_frames } ->
    let ds = device_state t device in
    let service_start = max t.now ds.free_at in
    let completion = service_start + dur in
    ds.free_at <- completion;
    block th wait_frames t.now;
    schedule t ~time:completion (fun () ->
        emit t ~kind:Event.Hw_service
          ~stack:(Callstack.of_list [ device.Program.device_sig ])
          ~ts:service_start ~cost:dur ~tid:device.Program.device_tid ~wtid:(-1);
        wake t ~waker_tid:device.Program.device_tid
          ~waker_stack:[ device.Program.device_sig ]
          th (exec t))
  | Program.Request { service; body; wait_frames } ->
    let n = Hashtbl.find t.service_spawns service.Program.service_uid in
    Hashtbl.replace t.service_spawns service.Program.service_uid (n + 1);
    let worker =
      make_thread t
        ~name:(Printf.sprintf "%s#%d" service.Program.service_name n)
        ~base_stack:service.Program.worker_stack ~start_at:t.now
        [ Steps body; Reply th ]
    in
    block th wait_frames t.now;
    schedule t ~time:t.now (fun () -> exec t worker)
  | Program.Idle dur -> schedule t ~time:(t.now + dur) (fun () -> exec t th)

let spawn t ?scenario ?(start_at = 0) ~name ~base_stack steps =
  let th = make_thread t ?scenario ~name ~base_stack ~start_at [ Steps steps ] in
  schedule t ~time:start_at (fun () -> exec t th);
  th.tid

let deadlock_report t =
  let stuck =
    List.filter (fun th -> th.finished = None) (List.rev t.threads)
  in
  let describe th =
    Printf.sprintf "%s (tid %d)%s" th.tname th.tid
      (if th.blocked then " blocked" else "")
  in
  let held =
    Hashtbl.fold
      (fun _ ls acc ->
        match ls.holder with
        | Some tid ->
          Printf.sprintf "%s held by tid %d (%d waiting)" ls.lock.Program.lock_name
            tid (Queue.length ls.waiters)
          :: acc
        | None -> acc)
      t.locks []
  in
  Printf.sprintf "stuck threads: %s; locks: %s"
    (String.concat ", " (List.map describe stuck))
    (String.concat ", " held)

let run t =
  if t.ran then invalid_arg "Engine.run: already ran";
  t.ran <- true;
  let rec drain () =
    match Calendar.pop t.calendar with
    | None -> ()
    | Some entry ->
      assert (entry.Calendar.time >= t.now);
      t.now <- entry.Calendar.time;
      entry.Calendar.run ();
      drain ()
  in
  drain ();
  if List.exists (fun th -> th.finished = None) t.threads then
    raise (Deadlock (deadlock_report t));
  let instances =
    List.filter_map
      (fun th ->
        match (th.scenario, th.finished) with
        | Some scenario, Some t1 ->
          Some { Dptrace.Scenario.scenario; tid = th.tid; t0 = th.start_at; t1 }
        | _ -> None)
      (List.rev t.threads)
  in
  let threads =
    List.rev_append t.device_threads
      (List.rev_map (fun th -> (th.tid, th.tname)) t.threads)
  in
  Dptrace.Stream.create ~id:t.stream_id ~events:(List.rev t.events) ~instances
    ~threads
