type lock = { lock_uid : int; lock_name : string }

type device = {
  device_uid : int;
  device_tid : int;
  device_name : string;
  device_sig : Dptrace.Signature.t;
}

type service = {
  service_uid : int;
  service_name : string;
  worker_stack : Dptrace.Signature.t list;
}

type step =
  | Compute of { frame : Dptrace.Signature.t option; dur : Dputil.Time.t }
  | Call of { frame : Dptrace.Signature.t; body : step list }
  | Locked of {
      lock : lock;
      acquire_frames : Dptrace.Signature.t list;
      body : step list;
    }
  | Hw_request of {
      device : device;
      dur : Dputil.Time.t;
      wait_frames : Dptrace.Signature.t list;
    }
  | Request of {
      service : service;
      body : step list;
      wait_frames : Dptrace.Signature.t list;
    }
  | Idle of Dputil.Time.t

let kernel_acquire_lock = Dptrace.Signature.of_string "kernel!AcquireLock"
let kernel_wait_for_object = Dptrace.Signature.of_string "kernel!WaitForObject"
let kernel_worker = Dptrace.Signature.of_string "kernel!Worker"

let compute ?frame dur = Compute { frame; dur }
let call frame body = Call { frame; body }

let locked ?(acquire_frames = [ kernel_acquire_lock ]) lock body =
  Locked { lock; acquire_frames; body }

let hw ?(wait_frames = [ kernel_wait_for_object ]) device dur =
  Hw_request { device; dur; wait_frames }

let request ?(wait_frames = [ kernel_wait_for_object ]) service body =
  Request { service; body; wait_frames }

let idle dur = Idle dur

let seq blocks = List.concat blocks

let rec total_compute steps =
  List.fold_left
    (fun acc step ->
      acc
      +
      match step with
      | Compute { dur; _ } -> dur
      | Call { body; _ } | Locked { body; _ } -> total_compute body
      | Request { body; _ } -> total_compute body
      | Hw_request _ | Idle _ -> 0)
    0 steps

let rec mentions_lock lock steps =
  List.exists
    (fun step ->
      match step with
      | Locked { lock = l; body; _ } ->
        l.lock_uid = lock.lock_uid || mentions_lock lock body
      | Call { body; _ } | Request { body; _ } -> mentions_lock lock body
      | Compute _ | Hw_request _ | Idle _ -> false)
    steps
