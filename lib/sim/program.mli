(** Thread behaviour programs for the kernel simulator.

    A simulated thread interprets a [step list]. Steps model exactly the
    interaction kinds the paper identifies as sources of cost propagation:

    - {b call dependency}: [Call] pushes a stack frame around a body — used
      both for in-driver routines and for cross-driver calls on the driver
      stack ([IoCallDriver]-style);
    - {b lock contention}: [Locked] runs its body holding a FIFO kernel
      lock; contending threads block with a wait event and are unwaited by
      the releasing holder;
    - {b hardware service}: [Hw_request] blocks on a FIFO device and is
      unwaited by the device's pseudo-thread, which records the
      hardware-service event;
    - {b system-service call}: [Request] hands a body to a fresh worker
      thread of a service (e.g. the kernel worker pool) and blocks until
      the worker completes and unwaits the requester.

    Handles ([lock], [device], [service]) are created by {!Engine} and are
    only valid in the engine that created them. *)

type lock = { lock_uid : int; lock_name : string }

type device = {
  device_uid : int;
  device_tid : int;  (** Pseudo-thread recording hardware-service events. *)
  device_name : string;
  device_sig : Dptrace.Signature.t;  (** Dummy signature, e.g. "DiskService". *)
}

type service = {
  service_uid : int;
  service_name : string;
  worker_stack : Dptrace.Signature.t list;
      (** Base stack of spawned workers, topmost first
          (e.g. [\["kernel!Worker"\]]). *)
}

type step =
  | Compute of { frame : Dptrace.Signature.t option; dur : Dputil.Time.t }
      (** Run on CPU for [dur]; the optional frame is pushed for the span. *)
  | Call of { frame : Dptrace.Signature.t; body : step list }
  | Locked of {
      lock : lock;
      acquire_frames : Dptrace.Signature.t list;
          (** Extra topmost frames on the wait stack while blocked. *)
      body : step list;
    }
  | Hw_request of {
      device : device;
      dur : Dputil.Time.t;  (** Pure service time; queueing adds on top. *)
      wait_frames : Dptrace.Signature.t list;
    }
  | Request of {
      service : service;
      body : step list;
      wait_frames : Dptrace.Signature.t list;
    }
  | Idle of Dputil.Time.t
      (** Untraced inactivity (user think time, unrelated work). *)

(** {1 Well-known kernel frames} *)

val kernel_acquire_lock : Dptrace.Signature.t
(** ["kernel!AcquireLock"] — default acquire frame. *)

val kernel_wait_for_object : Dptrace.Signature.t
(** ["kernel!WaitForObject"] — default blocking frame. *)

val kernel_worker : Dptrace.Signature.t
(** ["kernel!Worker"] — conventional worker-pool base frame. *)

(** {1 Builders} *)

val compute : ?frame:Dptrace.Signature.t -> Dputil.Time.t -> step
val call : Dptrace.Signature.t -> step list -> step

val locked : ?acquire_frames:Dptrace.Signature.t list -> lock -> step list -> step
(** Default [acquire_frames] is [\[kernel_acquire_lock\]]. *)

val hw : ?wait_frames:Dptrace.Signature.t list -> device -> Dputil.Time.t -> step
(** Default [wait_frames] is [\[kernel_wait_for_object\]]. *)

val request : ?wait_frames:Dptrace.Signature.t list -> service -> step list -> step
(** Default [wait_frames] is [\[kernel_wait_for_object\]]. *)

val idle : Dputil.Time.t -> step

val seq : step list list -> step list
(** Concatenate step blocks. *)

val total_compute : step list -> Dputil.Time.t
(** Σ of all [Compute] durations, including nested bodies — the CPU demand
    of the program if it never blocks. *)

val mentions_lock : lock -> step list -> bool
(** Whether the program (recursively) takes the given lock; used by tests
    and by deadlock diagnostics. *)
