module Event = Dptrace.Event
module Signature = Dptrace.Signature

type row = {
  signature : Signature.t;
  exclusive : Dputil.Time.t;
  inclusive : Dputil.Time.t;
  samples : int;
}

type cell = {
  mutable excl : Dputil.Time.t;
  mutable incl : Dputil.Time.t;
  mutable n : int;
}

type t = { cells : (Signature.t, cell) Hashtbl.t; mutable total : Dputil.Time.t }

let cell t s =
  match Hashtbl.find_opt t.cells s with
  | Some c -> c
  | None ->
    let c = { excl = 0; incl = 0; n = 0 } in
    Hashtbl.replace t.cells s c;
    c

let profile (corpus : Dptrace.Corpus.t) =
  let t = { cells = Hashtbl.create 256; total = 0 } in
  List.iter
    (fun (st : Dptrace.Stream.t) ->
      Array.iter
        (fun (e : Event.t) ->
          if Event.is_running e then begin
            t.total <- t.total + e.cost;
            let frames = Dptrace.Callstack.frames e.stack in
            (match Dptrace.Callstack.top e.stack with
            | Some topmost ->
              let c = cell t topmost in
              c.excl <- c.excl + e.cost;
              c.n <- c.n + 1
            | None -> ());
            (* Inclusive: each distinct frame on the stack once. *)
            let seen = Hashtbl.create 8 in
            Array.iter
              (fun f ->
                if not (Hashtbl.mem seen f) then begin
                  Hashtbl.replace seen f ();
                  let c = cell t f in
                  c.incl <- c.incl + e.cost
                end)
              frames
          end)
        st.Dptrace.Stream.events)
    corpus.Dptrace.Corpus.streams;
  t

let total_cpu t = t.total

let rows t =
  Hashtbl.fold
    (fun signature c acc ->
      { signature; exclusive = c.excl; inclusive = c.incl; samples = c.n } :: acc)
    t.cells []
  |> List.sort (fun a b ->
         match compare b.inclusive a.inclusive with
         | 0 -> Signature.compare a.signature b.signature
         | c -> c)

let top t ~n = List.filteri (fun i _ -> i < n) (rows t)

let fraction_matching t pred =
  let matched =
    Hashtbl.fold
      (fun s c acc -> if pred s then acc + c.excl else acc)
      t.cells 0
  in
  Dputil.Stats.ratio (float_of_int matched) (float_of_int t.total)

let pp_row fmt r =
  Format.fprintf fmt "%-40s excl=%a incl=%a n=%d"
    (Signature.name r.signature)
    Dputil.Time.pp r.exclusive Dputil.Time.pp r.inclusive r.samples
