module Event = Dptrace.Event
module Signature = Dptrace.Signature

type site = {
  signature : Signature.t;
  total_wait : Dputil.Time.t;
  waiters : int;
  max_wait : Dputil.Time.t;
  holders : (Signature.t * int) list;
}

type cell = {
  mutable wait : Dputil.Time.t;
  mutable n : int;
  mutable max_w : Dputil.Time.t;
  holder_counts : (Signature.t, int) Hashtbl.t;
}

type t = { cells : (Signature.t, cell) Hashtbl.t; mutable total : Dputil.Time.t }

(* The blocking site: the first frame below the synchronisation frames
   (kernel!* / app-queue wrappers are where the thread sleeps, not where
   the programmer takes the lock). *)
let blocking_site (e : Event.t) =
  let frames = Dptrace.Callstack.frames e.stack in
  let is_wrapper f =
    let m = Signature.module_part f in
    m = "kernel" || m = "AvSvc" || m = "App"
  in
  let rec go i =
    if i >= Array.length frames then Dptrace.Callstack.top e.stack
    else if is_wrapper frames.(i) then go (i + 1)
    else Some frames.(i)
  in
  go 0

let analyze (corpus : Dptrace.Corpus.t) =
  let t = { cells = Hashtbl.create 128; total = 0 } in
  List.iter
    (fun (st : Dptrace.Stream.t) ->
      let idx = Dptrace.Stream.index st in
      Array.iter
        (fun (e : Event.t) ->
          if Event.is_wait e then
            match blocking_site e with
            | None -> ()
            | Some site_sig ->
              t.total <- t.total + e.cost;
              let c =
                match Hashtbl.find_opt t.cells site_sig with
                | Some c -> c
                | None ->
                  let c =
                    { wait = 0; n = 0; max_w = 0; holder_counts = Hashtbl.create 8 }
                  in
                  Hashtbl.replace t.cells site_sig c;
                  c
              in
              c.wait <- c.wait + e.cost;
              c.n <- c.n + 1;
              if e.cost > c.max_w then c.max_w <- e.cost;
              (match Dptrace.Stream.find_waker idx e with
              | Some u ->
                (match Dptrace.Callstack.top u.Event.stack with
                | Some h ->
                  Hashtbl.replace c.holder_counts h
                    (1 + Option.value ~default:0 (Hashtbl.find_opt c.holder_counts h))
                | None -> ())
              | None -> ()))
        st.Dptrace.Stream.events)
    corpus.Dptrace.Corpus.streams;
  t

let site_of signature (c : cell) =
  let holders =
    Hashtbl.fold (fun s n acc -> (s, n) :: acc) c.holder_counts []
    |> List.sort (fun (sa, na) (sb, nb) ->
           match compare nb na with 0 -> Signature.compare sa sb | x -> x)
  in
  { signature; total_wait = c.wait; waiters = c.n; max_wait = c.max_w; holders }

let sites t =
  Hashtbl.fold (fun s c acc -> site_of s c :: acc) t.cells []
  |> List.sort (fun a b ->
         match compare b.total_wait a.total_wait with
         | 0 -> Signature.compare a.signature b.signature
         | c -> c)

let top t ~n = List.filteri (fun i _ -> i < n) (sites t)

let total_wait t = t.total

let attribution t s =
  match Hashtbl.find_opt t.cells s with Some c -> c.wait | None -> 0

let pp_site fmt s =
  Format.fprintf fmt "%-36s waited=%a n=%d max=%a holders=[%s]"
    (Signature.name s.signature)
    Dputil.Time.pp s.total_wait s.waiters Dputil.Time.pp s.max_wait
    (String.concat "; "
       (List.map
          (fun (h, n) -> Printf.sprintf "%s x%d" (Signature.name h) n)
          (List.filteri (fun i _ -> i < 3) s.holders)))
