(** Call-graph CPU profiling (gprof-style) — the first baseline of
    Section 6.

    Builds inclusive/exclusive CPU time per signature from running events
    only. This is what a conventional profiler sees: it attributes cost to
    whoever burns CPU and is structurally blind to waiting — on the
    device-driver corpus it reports drivers at the [IA_run] level (≈2 %)
    and cannot surface the ≈40 % wait-side impact, which is the paper's
    first limitation of existing techniques. *)

type row = {
  signature : Dptrace.Signature.t;
  exclusive : Dputil.Time.t;  (** CPU with this frame topmost. *)
  inclusive : Dputil.Time.t;  (** CPU with this frame anywhere on stack. *)
  samples : int;
}

type t

val profile : Dptrace.Corpus.t -> t
(** Aggregate running events across the whole corpus. *)

val total_cpu : t -> Dputil.Time.t

val rows : t -> row list
(** Sorted by inclusive time, descending. *)

val top : t -> n:int -> row list

val fraction_matching : t -> (Dptrace.Signature.t -> bool) -> float
(** Share of total CPU whose topmost frame satisfies the predicate — e.g.
    the driver share of CPU, the only driver number this baseline can
    produce. *)

val pp_row : Format.formatter -> row -> unit
