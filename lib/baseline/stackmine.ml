module Event = Dptrace.Event
module Signature = Dptrace.Signature

type pattern = {
  frames : Signature.t list;
  cost : Dputil.Time.t;
  count : int;
}

type cell = { mutable cost : Dputil.Time.t; mutable count : int }

let mine ?(min_cost = Dputil.Time.ms 1) ?(max_depth = 6) (corpus : Dptrace.Corpus.t) =
  let table : (int list, cell) Hashtbl.t = Hashtbl.create 1024 in
  let bump key cost =
    let c =
      match Hashtbl.find_opt table key with
      | Some c -> c
      | None ->
        let c = { cost = 0; count = 0 } in
        Hashtbl.replace table key c;
        c
    in
    c.cost <- c.cost + cost;
    c.count <- c.count + 1
  in
  List.iter
    (fun (st : Dptrace.Stream.t) ->
      Array.iter
        (fun (e : Event.t) ->
          if Event.is_wait e then begin
            let frames = Dptrace.Callstack.frames e.stack in
            let depth = min max_depth (Array.length frames) in
            let prefix = ref [] in
            for i = depth - 1 downto 0 do
              prefix := Signature.to_int frames.(i) :: !prefix
            done;
            (* [!prefix] is frames.(0..depth-1); walk prefixes from the
               longest down so each length is registered once. *)
            let rec bump_prefixes = function
              | [] -> ()
              | key ->
                bump key e.cost;
                bump_prefixes
                  (List.filteri (fun i _ -> i < List.length key - 1) key)
            in
            bump_prefixes !prefix
          end)
        st.Dptrace.Stream.events)
    corpus.Dptrace.Corpus.streams;
  (* Closedness: drop a prefix if some one-frame extension has identical
     support — the extension is strictly more informative. *)
  let closed key (c : cell) =
    not
      (Hashtbl.fold
         (fun other (oc : cell) dominated ->
           dominated
           || List.length other = List.length key + 1
              && List.filteri (fun i _ -> i < List.length key) other = key
              && oc.count = c.count && oc.cost = c.cost)
         table false)
  in
  Hashtbl.fold
    (fun key c acc ->
      if c.cost >= min_cost && closed key c then
        {
          frames = List.map Signature.of_int_unsafe key;
          cost = c.cost;
          count = c.count;
        }
        :: acc
      else acc)
    table []
  |> List.sort (fun (a : pattern) (b : pattern) ->
         match compare b.cost a.cost with
         | 0 ->
           compare
             (List.map Signature.to_int a.frames)
             (List.map Signature.to_int b.frames)
         | c -> c)

let top patterns ~n = List.filteri (fun i _ -> i < n) patterns

let pp_pattern fmt p =
  Format.fprintf fmt "[%s] cost=%a n=%d"
    (String.concat " <- " (List.map Signature.name p.frames))
    Dputil.Time.pp p.cost p.count
