(** Single-lock contention analysis (Tallent et al.-style) — the second
    baseline of Section 6.

    Groups wait events by their blocking site: the topmost non-kernel
    frame under the acquire frame, i.e. the function that tried to take
    the lock. Per site it reports total blocked time, waiter count and
    the unwaiting (holder-side) signatures.

    This isolates each contention point in isolation, which is exactly
    its limitation: on the Figure 1 case it reports the File Table region
    (fv.sys) and the MDU region (fs.sys) as two unrelated entries, and
    attributes {e nothing} to the disk service and se.sys decryption that
    actually caused the delay — multi-lock propagation chains are
    invisible (the paper's second limitation of existing techniques). *)

type site = {
  signature : Dptrace.Signature.t;  (** Where threads blocked. *)
  total_wait : Dputil.Time.t;
  waiters : int;
  max_wait : Dputil.Time.t;
  holders : (Dptrace.Signature.t * int) list;
      (** Unwait-side signatures with occurrence counts, descending. *)
}

type t

val analyze : Dptrace.Corpus.t -> t
(** Pair every wait with its unwait and aggregate per blocking site. *)

val sites : t -> site list
(** Sorted by total blocked time, descending. *)

val top : t -> n:int -> site list

val total_wait : t -> Dputil.Time.t

val attribution : t -> Dptrace.Signature.t -> Dputil.Time.t
(** Blocked time attributed to the given site signature (0 if absent) —
    used by the bench to show that deep-chain culprits receive no
    attribution. *)

val pp_site : Format.formatter -> site -> unit
