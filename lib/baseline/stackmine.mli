(** StackMine-style costly-pattern mining (Han et al., ICSE'12) — the
    paper's own earlier system, discussed in Section 6 as the
    within-thread complement to the contrast mining built here.

    StackMine discovers callstack patterns with high aggregate wait cost.
    This implementation mines stack {e prefixes} (topmost-first fragments)
    of wait events: every prefix of every wait stack accumulates the
    event's cost; non-closed prefixes (those with an extension of
    identical support) are dropped; survivors rank by total cost.

    Its structural limitation — the reason the ASPLOS'14 paper extends
    it — is visible on the Figure 1 corpus: it ranks
    [fv.sys!QueryFileTable] waits highly but carries no unwait/running
    side and no cross-thread link, so the se.sys/disk root cause never
    appears in the pattern that an analyst would inspect. *)

type pattern = {
  frames : Dptrace.Signature.t list;  (** Topmost-first stack fragment. *)
  cost : Dputil.Time.t;  (** Σ cost of wait events carrying the fragment. *)
  count : int;  (** Number of supporting wait events. *)
}

val mine :
  ?min_cost:Dputil.Time.t ->
  ?max_depth:int ->
  Dptrace.Corpus.t ->
  pattern list
(** Mine all streams' wait events. [min_cost] (default 1 ms) filters noise
    patterns; [max_depth] (default 6) bounds fragment length. Result is
    ranked by [cost], descending. *)

val top : pattern list -> n:int -> pattern list

val pp_pattern : Format.formatter -> pattern -> unit
