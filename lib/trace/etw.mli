(** Importer for xperf-style ETW dump files.

    Real ETW sessions don't record the paper's wait events directly; wait
    intervals are {e reconstructed} from context-switch and ready-thread
    events, exactly as this importer does. The accepted format is a
    line-oriented rendition of the relevant `xperf -a dumper` rows:

    {v
    # comment
    SampledProfile, <ts_us>, <tid>, "frame1;frame2;..."
    CSwitch,        <ts_us>, <new_tid>, <old_tid>, <old_state>, "old stack"
    ReadyThread,    <ts_us>, <readying_tid>, <readied_tid>, "readying stack"
    DiskIo,         <start_us>, <dur_us>, "service name"[, <device_tid>]
    Mark,           <ts_us>, <scenario>, <tid>, Start|Stop
    Thread,         <tid>, <name>
    v}

    Semantics:
    - a [CSwitch] whose [old_state] is [Waiting] marks [old_tid] blocked
      from [ts] with the given callstack; the next [ReadyThread] targeting
      it closes the interval, yielding one wait event paired with an
      unwait event from the readying thread;
    - consecutive [SampledProfile] rows of one thread with an identical
      stack coalesce into a single running event ([cost] = samples ×
      sampling period);
    - [DiskIo] rows become hardware-service events on a synthetic device
      pseudo-thread (one per service name);
    - [Mark] Start/Stop pairs delimit scenario instances.

    Timestamps are microseconds; fields are comma-separated; stacks are
    double-quoted, frames topmost-first and [';']-separated. *)

exception Parse_error of { line : int; message : string }

val stream_of_string :
  ?stream_id:int -> ?sample_period:Dputil.Time.t -> string -> Stream.t
(** Parse and convert a dump. [sample_period] (default 1 ms) is the
    profiler's sampling interval used both to coalesce samples and to cost
    them.
    @raise Parse_error on malformed input, including unbalanced [Mark]
    pairs. Waits still open at end of dump are dropped (truncated trace),
    as are [Stop]-less instances. *)

val load : ?stream_id:int -> ?sample_period:Dputil.Time.t -> string -> Stream.t
(** [load path] reads a dump file.
    @raise Parse_error / [Sys_error]. *)

val to_dump : ?sample_period:Dputil.Time.t -> Stream.t -> string
(** The inverse direction: render a stream as an xperf-style dump.
    Running events become per-period [SampledProfile] rows, waits become a
    [CSwitch] (old state [Waiting]) plus the waker's [ReadyThread],
    hardware services become [DiskIo] rows, instances become [Mark]
    pairs. When the stream's running costs are multiples of
    [sample_period] (the simulator's default), importing the dump back
    reproduces a stream with identical impact metrics — the round-trip
    property the test suite checks. *)
