(** Framed, checksummed corpus serialisation (format v2).

    The v1 codecs ({!Codec}, {!Codec_binary}) slurp the whole file into
    one string, so ingestion memory scales with corpus size and a single
    corrupt byte aborts the whole load. At the paper's evaluation shape
    (~19,500 traces / ~505,500 scenario instances) neither is acceptable:
    this format holds each trace stream in its own length-prefixed,
    CRC32-checksummed frame, so corpora are written and read stream by
    stream in constant memory, frames decode in parallel on a
    {!Dppar.Pool}, and a corrupt frame costs exactly the streams it
    contains.

    On-disk layout (all multi-byte integers little-endian; [v]/[str] are
    the LEB128 primitives of {!Codec_binary.Wire}):
    {v
    magic "DPTF" '\002'
    frame*
    frame :=
      marker   4 bytes 0xF7 'D' 'P' 0xF2   (resynchronisation point)
      kind     1 byte  'H' | 'S' | 'E'
      length   u32     payload byte count
      crc32    u32     CRC-32 of kind byte + payload
      payload  length bytes
    'H' (header, first):  v #specs, each: str name, v tfast, v tslow
    'S' (one per stream): v #signatures, each str     (frame-local table)
                          stream body as in Codec_binary v1, indices into
                          the frame-local table
    'E' (trailer, last):  v #stream-frames written
    v}

    Each stream frame carries its own signature table, so every frame
    decodes on its own: corruption in one frame cannot strand the
    signatures — hence the data — of any other.

    {b Recovery.} In [`Strict] mode (the default) any corruption raises
    {!Codec_binary.Corrupt}, including truncation at a clean frame
    boundary (the trailer count catches it). In [`Recover] mode the
    reader records a {!diagnostic} for each bad frame, resynchronises on
    the next frame marker, and keeps loading; surviving streams are
    additionally required to pass {!Validate.check} (a checksum collision
    must not leak invalid data into the analysis). The result is the
    surviving corpus plus a {!report} naming every dropped frame. *)

val magic : string
(** The 5-byte file magic, ["DPTF\002"]; use it to sniff the format. *)

type mode = [ `Strict | `Recover ]

type diagnostic = {
  frame : int;  (** 0-based frame ordinal in the file; the header is 0. *)
  offset : int;  (** Byte offset of the frame (or of the damage). *)
  reason : string;
}

type report = {
  frames : int;  (** Frames successfully framed (checksum verified). *)
  streams : int;  (** Streams delivered to the caller. *)
  dropped : diagnostic list;  (** In file order; empty under [`Strict]. *)
}

val pp_diagnostic : Format.formatter -> diagnostic -> unit

(** {1 Streaming writer} *)

type writer

val writer : out_channel -> specs:Scenario.spec list -> writer
(** Write the magic and the header frame; the channel must be in binary
    mode. Streams follow via {!add_stream}; {!close} seals the file. *)

val add_stream : writer -> Stream.t -> unit
(** Append one stream frame. Constant memory in the corpus: only the one
    stream is materialised. *)

val close : writer -> unit
(** Write the trailer frame ({b required} — without it a strict reader
    treats the file as truncated). Idempotent; does not close the
    channel. *)

(** {1 Streaming reader} *)

val fold_streams :
  ?mode:mode ->
  in_channel ->
  init:'a ->
  f:('a -> Stream.t -> 'a) ->
  'a * Scenario.spec list * report
(** Fold over the stream frames of a channel in file order, one decoded
    stream in memory at a time (constant memory in the corpus size).
    @raise Codec_binary.Corrupt in [`Strict] mode on any corruption. *)

(** {1 Whole-corpus convenience} *)

val write_corpus : ?pool:Dppar.Pool.t -> out_channel -> Corpus.t -> unit
(** Header, one frame per stream, trailer. With a [pool] of size > 1 the
    per-stream frame payloads are encoded in parallel (output order is
    the corpus order either way). *)

val encode : ?pool:Dppar.Pool.t -> Corpus.t -> string
val save : ?pool:Dppar.Pool.t -> string -> Corpus.t -> unit

val decode : ?mode:mode -> ?pool:Dppar.Pool.t -> string -> Corpus.t * report
val load : ?mode:mode -> ?pool:Dppar.Pool.t -> string -> Corpus.t * report
(** With a [pool] of size > 1, frame payloads are checksum-verified in
    file order but decoded in parallel batches; results are in file order
    and bit-identical to the sequential load.
    @raise Codec_binary.Corrupt in [`Strict] mode on any corruption
    @raise Sys_error if the file cannot be opened. *)

(** {1 Stream content identity} *)

val stream_key : Stream.t -> string
(** The stream's content identity: the CRC-32 and byte length of its 'S'
    frame, as ["%08x-%d"] — exactly what the frame envelope stores on
    disk. Streams decoded by {!load}/{!decode}/{!fold_streams} carry the
    key already (captured from the verified frame checksum, via
    {!Stream.key_memo}); for any other stream the payload is re-encoded
    once here and the key memoised. Two streams share a key iff their
    serialised content is identical, which is what makes it safe as a
    cache key for per-stream analysis results ({!Dpcore.Snapshot}). *)
