(** Descriptive statistics of a corpus.

    The first thing an analyst does with a new batch of traces: how much
    data, what is in it, how do the scenarios distribute. Also the place
    where corpus-generation changes show up at a glance. *)

type kind_counts = {
  running : int;
  waits : int;
  unwaits : int;
  hw_services : int;
}

type scenario_stats = {
  scenario : string;
  instances : int;
  durations_ms : Dputil.Stats.summary;  (** Over instance durations. *)
}

type t = {
  streams : int;
  instances : int;
  events : int;
  kinds : kind_counts;
  total_scenario_time : Dputil.Time.t;
  span : Dputil.Time.t;  (** Σ of per-stream recorded spans. *)
  distinct_signatures : int;
  max_stack_depth : int;
  mean_stack_depth : float;
  threads : int;
  per_scenario : scenario_stats list;  (** Sorted by instance count, desc. *)
}

val compute : Corpus.t -> t

val publish : t -> unit
(** Mirror the snapshot into the [Dpobs.Metrics] registry under
    [corpus.*] names (streams, threads, instances, scenarios, event
    counts by kind, scenario/recorded time, signatures, max stack
    depth), so corpus-level counters print through the same path as the
    engine's own telemetry. Requires [Dpobs.metrics_on]; counters
    accumulate across corpora published in one process. *)

val render : t -> string
(** Multi-table plain-text report. *)
