(** ASCII thread-timeline rendering.

    Figure 1 of the paper is "a thread-level snapshot restructured from
    the trace stream to show the period of delay". This module draws that
    snapshot: one row per thread, time flowing right, with each column
    summarising what the thread was doing in that time bucket:

    {v
    #  running          .  waiting
    ~  hardware service |  unwait performed in this bucket
       (blank)          off-CPU with nothing recorded
    v}

    When several event kinds fall into one bucket the most informative
    wins (running > hardware > unwait > waiting). *)

val render :
  ?width:int ->
  ?from_ts:Dputil.Time.t ->
  ?to_ts:Dputil.Time.t ->
  Stream.t ->
  string
(** [render st] draws the whole stream ([from_ts]/[to_ts] clip the window)
    into [width] buckets (default 72). Threads with no events in the
    window are omitted; rows are ordered by first activity. Returns a
    ready-to-print block including the legend and a time axis. *)

val instance_window : Scenario.instance -> Dputil.Time.t * Dputil.Time.t
(** [(from_ts, to_ts)]: the instance's [t0..t1] padded by a 5% margin on
    each side (at least 1 µs, clipped at 0). The window every
    instance-centred view draws — the ASCII render below and the
    Perfetto export in [dpviz]. *)

val render_instance : ?width:int -> Stream.t -> Scenario.instance -> string
(** The instance's window with 5% margins — the Figure 1 view of one
    scenario execution. *)
