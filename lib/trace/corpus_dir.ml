type format = Text | Binary | Framed

let format_name = function
  | Text -> "text v1"
  | Binary -> "binary v1"
  | Framed -> "framed v2"

let is_binary_path path = Filename.check_suffix path ".dpb"
let is_framed_path path = Filename.check_suffix path ".dpf"
let is_text_path path = Filename.check_suffix path ".dpt"

let is_corpus_file path =
  is_binary_path path || is_framed_path path || is_text_path path

(* Reads close with [close_in_noerr]: a raising close must not mask the
   decode exception as [Fun.Finally_raised]. *)
let sniff_format path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let buf = Bytes.create 7 in
  let n = input ic buf 0 7 in
  let prefix = Bytes.sub_string buf 0 n in
  let starts p =
    String.length prefix >= String.length p
    && String.sub prefix 0 (String.length p) = p
  in
  if starts "DPTF" then Framed
  else if starts "DPTB" then Binary
  else if starts "dptrace" then Text
  else if is_framed_path path then Framed
  else if is_binary_path path then Binary
  else Text

type entry = { e_path : string; e_mtime_ms : int; e_size : int }

let scan dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter is_corpus_file
  |> List.sort compare
  |> List.filter_map (fun name ->
         let path = Filename.concat dir name in
         match Unix.stat path with
         | { Unix.st_kind = Unix.S_REG; st_mtime; st_size; _ } ->
           Some
             {
               e_path = path;
               e_mtime_ms = int_of_float (st_mtime *. 1000.0);
               e_size = st_size;
             }
         | _ -> None
         | exception Unix.Unix_error _ -> None)

type loaded = {
  l_corpus : Corpus.t;
  l_format : format;
  l_bytes : int;
  l_report : Codec_v2.report option;
}

let file_size path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  in_channel_length ic

let load ?pool ?(mode = `Strict) path =
  match
    (* The open/sniff is the [corpus.open] fault site: transient
       injected errors (and real EINTR/EAGAIN) retry with backoff; a
       spent budget surfaces through the ordinary [Error _] channel so
       callers degrade exactly as they do for a corrupt file. *)
    let fmt, bytes =
      Dpfault.Retry.run Dpfault.Corpus_open (fun () ->
          Dpfault.guard Dpfault.Corpus_open;
          (sniff_format path, file_size path))
    in
    match fmt with
    | Framed ->
      let corpus, report = Codec_v2.load ~mode ?pool path in
      { l_corpus = corpus; l_format = fmt; l_bytes = bytes;
        l_report = Some report }
    | Binary ->
      { l_corpus = Codec_binary.load path; l_format = fmt; l_bytes = bytes;
        l_report = None }
    | Text ->
      { l_corpus = Codec.load path; l_format = fmt; l_bytes = bytes;
        l_report = None }
  with
  | loaded -> Ok loaded
  | exception Codec_binary.Corrupt m ->
    Error (Printf.sprintf "%s: corrupt corpus: %s" path m)
  | exception Codec.Parse_error { line; message } ->
    Error (Printf.sprintf "%s:%d: %s" path line message)
  | exception Sys_error m -> Error m
  | exception Dpfault.Injected { site; kind } ->
    Error
      (Printf.sprintf "%s: injected %s fault at %s exhausted the retry budget"
         path (Dpfault.kind_name kind) (Dpfault.site_name site))
