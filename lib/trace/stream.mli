(** Trace streams (Section 2.1): the event sequence recorded on one machine
    over one tracing session, plus the scenario instances it contains.

    Events are sorted by timestamp and carry dense ids equal to their index,
    so an event id identifies an event within its stream; the pair
    [(stream id, event id)] identifies it within a corpus — the identity
    used by the distinct-wait deduplication of Section 3.2. *)

type index
(** Per-stream query index; see {!section-indexed} below. *)

type t = private {
  id : int;
  events : Event.t array;  (** Sorted by [ts]; [events.(i).id = i]. *)
  instances : Scenario.instance list;
  threads : (int * string) list;  (** tid → human-readable thread name. *)
  memo_index : index option Atomic.t;
      (** Memoised by {!shared_index}; never read directly. *)
  memo_key : string option Atomic.t;
      (** Memoised content identity (codec-v2 frame checksum); see
          {!key_memo}. *)
}

val create :
  id:int ->
  events:Event.t list ->
  instances:Scenario.instance list ->
  threads:(int * string) list ->
  t
(** Sorts the events by [(ts, tid)] and renumbers their ids to be the array
    indices; the ids supplied by the caller are ignored. *)

val thread_name : t -> int -> string
(** Name of a thread, or ["tid<N>"] if unregistered. *)

val duration : t -> Dputil.Time.t
(** Span from the first event start to the last event end; 0 if empty. *)

val event_count : t -> int

(** {1:indexed Indexed queries}

    An [index] is built once per stream and shared by all per-instance
    analyses of that stream. *)

val index : t -> index
(** Build a fresh index. Pure; prefer {!shared_index} unless the fresh
    build is wanted (e.g. benchmarking the construction itself). *)

val shared_index : t -> index
(** The stream's memoised index: built on first use, then reused by every
    later call on the same stream value — across scenarios, analysis
    passes and domains (the memo is an [Atomic.t] published with a single
    compare-and-set, so concurrent first calls race benignly and all
    observe one index identity). Corpus-scope analyses that used to
    rebuild the index per call share one instead. *)

val key_memo : t -> string option
(** The stream's memoised content-identity key, if one was recorded —
    [Codec_v2] stores the frame checksum here during load so cache-keyed
    re-analysis ({!Snapshot} in dpcore) never re-encodes a stream it just
    decoded. *)

val set_key_memo : t -> string -> unit
(** Record the content-identity key. First writer wins (the key is a pure
    function of the stream content, so racing writers agree). *)

val events_of_thread : index -> int -> Event.t array
(** All events of a thread, timestamp-ordered ([| |] for unknown tids). *)

val thread_events_overlapping :
  index -> tid:int -> from_ts:Dputil.Time.t -> to_ts:Dputil.Time.t -> Event.t list
(** Events of [tid] whose span [\[ts, ts+cost\]] intersects
    [\[from_ts, to_ts\]], in timestamp order. Zero-cost events (unwaits)
    count as intersecting when their instant lies within the window. *)

val find_waker : index -> Event.t -> Event.t option
(** [find_waker idx w] is the unwait event that ended wait [w]: the first
    unwait with [wtid = w.tid] and timestamp in [(w.ts, w.ts + w.cost\]]
    (closed at [w.ts] too when [w.cost = 0] — an unwait at exactly the
    start instant otherwise belongs to the wait that {e ended} there).
    [None] if the trace lost the pairing (truncated stream). *)

val pp_summary : Format.formatter -> t -> unit
