type violation = { event_id : int option; message : string }

let violation ?event_id fmt =
  Format.kasprintf (fun message -> { event_id; message }) fmt

let check (st : Stream.t) =
  let out = ref [] in
  let add v = out := v :: !out in
  let events = st.Stream.events in
  (* Ordering and ids. *)
  Array.iteri
    (fun i (e : Event.t) ->
      if e.id <> i then add (violation ~event_id:e.id "id %d at index %d" e.id i);
      if i > 0 && events.(i - 1).Event.ts > e.ts then
        add (violation ~event_id:e.id "timestamp regression at index %d" i))
    events;
  (* Field sanity. *)
  Array.iter
    (fun (e : Event.t) ->
      if e.cost < 0 then add (violation ~event_id:e.id "negative cost");
      match e.kind with
      | Event.Unwait ->
        if e.cost <> 0 then add (violation ~event_id:e.id "unwait with non-zero cost");
        if e.wtid < 0 then add (violation ~event_id:e.id "unwait without wtid");
        if e.wtid = e.tid then add (violation ~event_id:e.id "unwait targets itself")
      | Event.Running | Event.Wait | Event.Hw_service ->
        if e.wtid <> -1 then
          add (violation ~event_id:e.id "wtid set on non-unwait event"))
    events;
  (* Per-thread sequentiality. *)
  let idx = Stream.index st in
  let tids =
    Array.to_list events |> List.map (fun (e : Event.t) -> e.tid) |> List.sort_uniq compare
  in
  List.iter
    (fun tid ->
      let es = Stream.events_of_thread idx tid in
      for i = 1 to Array.length es - 1 do
        let prev = es.(i - 1) and cur = es.(i) in
        if cur.Event.ts < Event.end_ts prev then
          add
            (violation ~event_id:cur.Event.id
               "thread %d events overlap: #%d ends at %d, #%d starts at %d" tid
               prev.Event.id (Event.end_ts prev) cur.Event.id cur.Event.ts)
      done)
    tids;
  (* Wait/unwait pairing. *)
  Array.iter
    (fun (e : Event.t) ->
      if Event.is_wait e && Stream.find_waker idx e = None then
        add (violation ~event_id:e.id "wait event with no pairing unwait"))
    events;
  (* Instances. An instance may legitimately record no events (its work
     was shorter than the sampling period), but its initiating thread must
     at least be a known thread of the stream. *)
  List.iter
    (fun (i : Scenario.instance) ->
      if i.t1 < i.t0 then
        add (violation "instance %s has t1 < t0" i.scenario);
      if
        (not (List.mem_assoc i.tid st.Stream.threads))
        && Array.length (Stream.events_of_thread idx i.tid) = 0
      then
        add
          (violation "instance %s: initiating thread %d is unknown" i.scenario
             i.tid))
    st.Stream.instances;
  List.rev !out

let check_corpus (c : Corpus.t) =
  List.concat_map
    (fun (st : Stream.t) -> List.map (fun v -> (st.Stream.id, v)) (check st))
    c.streams

let is_valid st = check st = []

let pp_violation fmt v =
  match v.event_id with
  | Some id -> Format.fprintf fmt "[event %d] %s" id v.message
  | None -> Format.pp_print_string fmt v.message
