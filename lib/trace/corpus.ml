type t = { streams : Stream.t list; specs : Scenario.spec list }

let create ~streams ~specs = { streams; specs }

let find_spec t name =
  List.find_opt (fun (s : Scenario.spec) -> s.name = name) t.specs

let all_instances t =
  List.concat_map
    (fun (st : Stream.t) -> List.map (fun i -> (st, i)) st.Stream.instances)
    t.streams

let scenario_names t =
  let names =
    List.map (fun (_, (i : Scenario.instance)) -> i.scenario) (all_instances t)
  in
  List.sort_uniq compare names

let instances_of t name =
  List.filter (fun (_, (i : Scenario.instance)) -> i.scenario = name) (all_instances t)

let instance_count t =
  List.fold_left (fun acc (st : Stream.t) -> acc + List.length st.Stream.instances) 0 t.streams

let stream_count t = List.length t.streams

let event_count t =
  List.fold_left (fun acc st -> acc + Stream.event_count st) 0 t.streams

let total_scenario_time t =
  List.fold_left (fun acc (_, i) -> acc + Scenario.duration i) 0 (all_instances t)

let pp_summary fmt t =
  Format.fprintf fmt
    "corpus: %d streams, %d instances over %d scenarios, %d events, %a scenario time"
    (stream_count t) (instance_count t)
    (List.length (scenario_names t))
    (event_count t) Dputil.Time.pp (total_scenario_time t)
