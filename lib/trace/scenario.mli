(** Scenarios and scenario instances (Section 2.1).

    A {e scenario} is a named user-visible operation (e.g.
    ["BrowserTabCreate"]) with developer-specified performance thresholds:
    [tfast] is the upper bound of normal performance and [tslow] the lower
    bound of degradation (Section 4.2.1). A {e scenario instance} is one
    execution of a scenario within a trace stream, identified by its
    initiating thread and time window. *)

type spec = {
  name : string;
  tfast : Dputil.Time.t;  (** Instances faster than this are "fast". *)
  tslow : Dputil.Time.t;  (** Instances slower than this are "slow". *)
}

type instance = {
  scenario : string;
  tid : int;  (** Initiating thread. *)
  t0 : Dputil.Time.t;
  t1 : Dputil.Time.t;
}

val spec : name:string -> tfast:Dputil.Time.t -> tslow:Dputil.Time.t -> spec
(** @raise Invalid_argument unless [0 < tfast <= tslow]. *)

val duration : instance -> Dputil.Time.t
(** [t1 - t0]. *)

type speed_class = Fast | Middle | Slow

val classify : spec -> instance -> speed_class
(** [Fast] when duration < [tfast], [Slow] when duration > [tslow],
    [Middle] otherwise (Middle instances are excluded from contrast
    mining). *)

val pp_instance : Format.formatter -> instance -> unit
