(** Corpus files on disk: format sniffing, directory scanning, loading.

    The CLI historically kept its own copies of these; the monitor needs
    the same logic as a library (it tails a directory of stream files and
    must survive — and report — a corrupt drop-in rather than [exit 1]),
    so the shared parts live here.

    A "corpus file" is any of the three driveperf encodings: text v1
    ([.dpt]), binary v1 ([.dpb]), framed v2 ([.dpf]). Detection is by
    content magic with the extension as fallback, so a renamed file is
    never mis-parsed. *)

type format = Text | Binary | Framed

val format_name : format -> string
(** ["text v1"] / ["binary v1"] / ["framed v2"]. *)

val sniff_format : string -> format
(** Read the first bytes of [path] and match the magics ("dptrace",
    "DPTB", "DPTF\002"); falls back to the extension, then to text. *)

val is_corpus_file : string -> bool
(** By extension: [.dpt], [.dpb] or [.dpf]. *)

(** {1 Directory scanning} *)

type entry = {
  e_path : string;  (** Full path (dir/name). *)
  e_mtime_ms : int;  (** Last modification, milliseconds since epoch. *)
  e_size : int;  (** Bytes. *)
}

val scan : string -> entry list
(** Corpus files directly under the directory, sorted by file name (no
    recursion). Files that vanish between listing and [stat] are
    skipped. @raise Sys_error when the directory itself is unreadable. *)

(** {1 Loading} *)

type loaded = {
  l_corpus : Corpus.t;
  l_format : format;
  l_bytes : int;  (** File size. *)
  l_report : Codec_v2.report option;  (** Framed v2 loads only. *)
}

val load :
  ?pool:Dppar.Pool.t ->
  ?mode:Codec_v2.mode ->
  string ->
  (loaded, string) result
(** Sniff and decode one corpus file. All decode failures — including
    [`Strict]-mode corruption and text parse errors — come back as
    [Error message] rather than an exception, so a long-running caller
    can count the failure and move on. [mode] defaults to [`Strict]. *)
