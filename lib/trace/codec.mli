(** Versioned text serialisation of corpora.

    The format is line-oriented so that real tracing backends (ETW via
    [xperf], DTrace scripts) can be converted to it with a small exporter:

    {v
    dptrace 1
    spec <name> <tfast_us> <tslow_us>
    stream <id>
    thread <tid> <name>
    event <kind> <tid> <ts_us> <cost_us> <wtid> <frame;frame;...>
    instance <scenario> <tid> <t0_us> <t1_us>
    end
    v}

    [kind] is one of [run]/[wait]/[unwait]/[hw]; frames are topmost-first
    and may not contain [';'] or whitespace. [wtid] is [-1] except on
    unwaits. Thread names may not contain whitespace. *)

exception Parse_error of { line : int; message : string }

val write_corpus : out_channel -> Corpus.t -> unit
(** @raise Invalid_argument if a thread, scenario or spec name, or a
    callstack frame signature, contains whitespace or [';'] — such
    corpora cannot round-trip through the text format (use
    {!Codec_binary} or {!Codec_v2}, or rename). *)

val read_corpus : in_channel -> Corpus.t
(** @raise Parse_error on malformed input. *)

val corpus_to_string : Corpus.t -> string
val corpus_of_string : string -> Corpus.t
(** @raise Parse_error on malformed input. *)

val save : string -> Corpus.t -> unit
(** Write to a file path. *)

val load : string -> Corpus.t
(** Read from a file path.
    @raise Parse_error on malformed input
    @raise Sys_error if the file cannot be opened. *)
