type t = int

let interner = Dputil.Interner.create ~capacity:1024 ()

(* Module parts are derived once per distinct signature and memoised by id;
   the arrays below grow in step with the interner. *)
let module_parts : string array ref = ref (Array.make 1024 "")
let function_parts : string array ref = ref (Array.make 1024 "")

let ensure_capacity id =
  let cap = Array.length !module_parts in
  if id >= cap then begin
    let grow arr =
      let fresh = Array.make (max (2 * cap) (id + 1)) "" in
      Array.blit !arr 0 fresh 0 cap;
      arr := fresh
    in
    grow module_parts;
    grow function_parts
  end

(* Interning mutates the process-wide tables, and parallel corpus
   ingestion (Codec_v2 frame decoding on a domain pool) interns from
   several domains at once; serialise the write path. Reads ([name],
   [module_part], …) stay lock-free: an id is only obtainable through
   [of_string], whose lock release/acquire orders the table stores before
   any reader that learned the id. *)
let intern_mutex = Mutex.create ()

let of_string s =
  Mutex.lock intern_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock intern_mutex) @@ fun () ->
  let before = Dputil.Interner.size interner in
  let id = Dputil.Interner.intern interner s in
  if id >= before then begin
    ensure_capacity id;
    (match String.index_opt s '!' with
    | Some i ->
      !module_parts.(id) <- String.sub s 0 i;
      !function_parts.(id) <- String.sub s (i + 1) (String.length s - i - 1)
    | None ->
      !module_parts.(id) <- s;
      !function_parts.(id) <- "")
  end;
  id

let name id = Dputil.Interner.name interner id
let module_part id = !module_parts.(id)
let function_part id = !function_parts.(id)

let make ~module_name ~function_name = of_string (module_name ^ "!" ^ function_name)
let hw_service s = of_string s

let equal = Int.equal
let compare = Int.compare
let hash = Hashtbl.hash
let to_int id = id
let of_int_unsafe id = id

let matches patterns s = Dputil.Wildcard.matches_any patterns (module_part s)

let pp fmt id = Format.pp_print_string fmt (name id)

let interned_count () = Dputil.Interner.size interner
