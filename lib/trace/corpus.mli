(** A corpus: many trace streams plus the scenario specifications
    (thresholds) needed to classify their instances. *)

type t = { streams : Stream.t list; specs : Scenario.spec list }

val create : streams:Stream.t list -> specs:Scenario.spec list -> t

val find_spec : t -> string -> Scenario.spec option
(** Spec by scenario name. *)

val scenario_names : t -> string list
(** Distinct scenario names present in the instances, sorted. *)

val all_instances : t -> (Stream.t * Scenario.instance) list
(** Every instance with its enclosing stream. *)

val instances_of : t -> string -> (Stream.t * Scenario.instance) list
(** Instances of one scenario. *)

val instance_count : t -> int
val stream_count : t -> int
val event_count : t -> int

val total_scenario_time : t -> Dputil.Time.t
(** Σ instance durations — the paper's [D_scn] denominator. *)

val pp_summary : Format.formatter -> t -> unit
