(* Framed, checksummed corpus format v2. See codec_v2.mli for the
   on-disk layout and the recovery contract. *)

let corrupt fmt = Format.kasprintf (fun m -> raise (Codec_binary.Corrupt m)) fmt

let magic = "DPTF\x02"
let marker = "\xf7DP\xf2"

(* Frames above this are rejected as framing damage rather than read: a
   corrupt length field must not make the reader swallow gigabytes. *)
let max_frame_len = 1 lsl 30

(* Telemetry. Byte/frame/stream counters feed `driveperf stats` and the
   convert progress line; the per-stream encode/decode spans land on the
   recording domain's tid, so a pooled (de)serialisation shows its fan-out
   in the Chrome trace. All behind [Dpobs.metrics_on]/[spans_on]. *)
let bytes_written_c = lazy (Dpobs.Metrics.counter "codec_v2.bytes_written")
let bytes_read_c = lazy (Dpobs.Metrics.counter "codec_v2.bytes_read")
let frames_written_c = lazy (Dpobs.Metrics.counter "codec_v2.frames_written")
let frames_read_c = lazy (Dpobs.Metrics.counter "codec_v2.frames_read")
let frames_dropped_c = lazy (Dpobs.Metrics.counter "codec_v2.frames_dropped")
let streams_written_c = lazy (Dpobs.Metrics.counter "codec_v2.streams_written")
let streams_read_c = lazy (Dpobs.Metrics.counter "codec_v2.streams_read")

type mode = [ `Strict | `Recover ]
type diagnostic = { frame : int; offset : int; reason : string }
type report = { frames : int; streams : int; dropped : diagnostic list }

let pp_diagnostic fmt d =
  Format.fprintf fmt "frame %d at byte %d: %s" d.frame d.offset d.reason

(* --- frame payloads --- *)

let header_payload specs =
  let buf = Buffer.create 256 in
  Codec_binary.Wire.wv buf (List.length specs);
  List.iter (Codec_binary.write_spec buf) specs;
  Buffer.contents buf

let trailer_payload nstreams =
  let buf = Buffer.create 8 in
  Codec_binary.Wire.wv buf nstreams;
  Buffer.contents buf

(* Payload body without telemetry: shared by the writer and by
   [stream_key], which re-encodes cache-less streams for their identity
   and must not count them as written. *)
let stream_payload_raw (st : Stream.t) =
  let buf = Buffer.create 65536 in
  (* Frame-local signature table, first-appearance order: every frame
     decodes on its own, so one corrupt frame cannot strand the table —
     hence the data — of any other. *)
  let sig_index : (Signature.t, int) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let nsigs = ref 0 in
  Array.iter
    (fun (e : Event.t) ->
      Array.iter
        (fun s ->
          if not (Hashtbl.mem sig_index s) then begin
            Hashtbl.replace sig_index s !nsigs;
            order := s :: !order;
            incr nsigs
          end)
        (Callstack.frames e.stack))
    st.Stream.events;
  Codec_binary.Wire.wv buf !nsigs;
  List.iter
    (fun s -> Codec_binary.Wire.wstr buf (Signature.name s))
    (List.rev !order);
  Codec_binary.write_stream buf
    ~sig_index:(fun s -> Hashtbl.find sig_index s)
    st;
  Buffer.contents buf

let stream_payload st =
  Dpobs.Span.with_span "codec_v2.encode_stream" @@ fun () ->
  let payload = stream_payload_raw st in
  if Dpobs.metrics_on () then
    Dpobs.Metrics.incr (Lazy.force streams_written_c);
  payload

let decode_header payload =
  let cur = Codec_binary.Wire.cursor payload in
  let specs = Codec_binary.Wire.rlist cur Codec_binary.read_spec in
  if not (Codec_binary.Wire.at_end cur) then corrupt "header frame: trailing bytes";
  specs

let decode_trailer payload =
  let cur = Codec_binary.Wire.cursor payload in
  let n = Codec_binary.Wire.rv cur in
  if not (Codec_binary.Wire.at_end cur) then corrupt "trailer frame: trailing bytes";
  n

let decode_stream_payload ?key payload =
  Dpobs.Span.with_span "codec_v2.decode_stream" @@ fun () ->
  let cur = Codec_binary.Wire.cursor payload in
  let sigs =
    Array.of_list
      (Codec_binary.Wire.rlist cur (fun c ->
           Signature.of_string (Codec_binary.Wire.rstr c)))
  in
  let sig_of i =
    if i < 0 || i >= Array.length sigs then
      corrupt "signature index %d out of range" i
    else sigs.(i)
  in
  let st = Codec_binary.read_stream cur ~sig_of in
  if not (Codec_binary.Wire.at_end cur) then corrupt "stream frame: trailing bytes";
  if Dpobs.metrics_on () then Dpobs.Metrics.incr (Lazy.force streams_read_c);
  (* The frame checksum was already verified by the reader; memoising it
     as the stream's content identity makes cache-keyed re-analysis free
     of re-encoding for loaded corpora. *)
  (match key with Some k -> Stream.set_key_memo st k | None -> ());
  st

(* --- frame envelope --- *)

let le32 buf v =
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff))

let frame_crc kind payload =
  Dputil.Crc32.string ~crc:(Dputil.Crc32.string (String.make 1 kind)) payload

(* --- stream content identity ---

   A stream's key is the CRC-32 of its would-be 'S' frame plus the
   payload length — exactly what the frame envelope stores on disk, so a
   loaded stream's key (captured during decode, checksum pre-verified)
   and a generated stream's key (re-encoded here) agree whenever the
   content does. The payload is deterministic: the signature table is in
   first-appearance order, a pure function of the event array. *)

let key_of_crc crc ~len = Printf.sprintf "%08x-%d" (crc land 0xffffffff) len

let stream_key (st : Stream.t) =
  match Stream.key_memo st with
  | Some k -> k
  | None ->
    let payload = stream_payload_raw st in
    let k = key_of_crc (frame_crc 'S' payload) ~len:(String.length payload) in
    Stream.set_key_memo st k;
    k

let frame_string kind payload =
  let buf = Buffer.create (13 + String.length payload) in
  Buffer.add_string buf marker;
  Buffer.add_char buf kind;
  le32 buf (String.length payload);
  le32 buf (frame_crc kind payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

(* --- streaming writer --- *)

type writer = { oc : out_channel; mutable written : int; mutable closed : bool }

let writer oc ~specs =
  output_string oc magic;
  output_string oc (frame_string 'H' (header_payload specs));
  { oc; written = 0; closed = false }

let add_stream w st =
  if w.closed then invalid_arg "Codec_v2.add_stream: writer is closed";
  let framed = frame_string 'S' (stream_payload st) in
  if Dpobs.metrics_on () then begin
    Dpobs.Metrics.add (Lazy.force bytes_written_c) (String.length framed);
    Dpobs.Metrics.incr (Lazy.force frames_written_c)
  end;
  output_string w.oc framed;
  w.written <- w.written + 1

let close w =
  if not w.closed then begin
    output_string w.oc (frame_string 'E' (trailer_payload w.written));
    w.closed <- true
  end

let emit ?pool put (c : Corpus.t) =
  Dpobs.Span.with_span "codec_v2.encode" @@ fun () ->
  let put =
    if Dpobs.metrics_on () then (fun s ->
      Dpobs.Metrics.add (Lazy.force bytes_written_c) (String.length s);
      put s)
    else put
  in
  put magic;
  put (frame_string 'H' (header_payload c.Corpus.specs));
  let payloads =
    match pool with
    | Some pool when Dppar.Pool.size pool > 1 ->
      Dppar.Pool.parallel_map ~chunk:1 pool stream_payload c.Corpus.streams
    | _ -> List.map stream_payload c.Corpus.streams
  in
  List.iter (fun p -> put (frame_string 'S' p)) payloads;
  put (frame_string 'E' (trailer_payload (List.length c.Corpus.streams)));
  if Dpobs.metrics_on () then
    Dpobs.Metrics.add (Lazy.force frames_written_c)
      (2 + List.length c.Corpus.streams)

let write_corpus ?pool oc c = emit ?pool (output_string oc) c

let encode ?pool c =
  let buf = Buffer.create 65536 in
  emit ?pool (Buffer.add_string buf) c;
  Buffer.contents buf

let save ?pool path c =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> write_corpus ?pool oc c)

(* --- buffered source: a channel or a string, with bounded lookahead ---

   The reader never materialises more than one frame (plus a refill
   chunk): ingestion memory is bounded by the largest single frame, not
   by the corpus. *)

type src = {
  refill : Bytes.t -> int -> int -> int;
  mutable buf : Bytes.t;
  mutable pos : int;  (* next unread byte in [buf] *)
  mutable lim : int;  (* end of valid data in [buf] *)
  mutable base : int;  (* absolute file offset of [buf.[0]] *)
  mutable eof : bool;
}

let src_of_channel ic =
  {
    refill = input ic;
    buf = Bytes.create 65536;
    pos = 0;
    lim = 0;
    base = 0;
    eof = false;
  }

let src_of_string s =
  {
    refill = (fun _ _ _ -> 0);
    buf = Bytes.of_string s;
    pos = 0;
    lim = String.length s;
    base = 0;
    eof = true;
  }

let available src = src.lim - src.pos
let offset src = src.base + src.pos

let compact src =
  if src.pos > 0 then begin
    let n = available src in
    Bytes.blit src.buf src.pos src.buf 0 n;
    src.base <- src.base + src.pos;
    src.pos <- 0;
    src.lim <- n
  end

(* Make [n] bytes available at the head if the input has them; returns
   the available count, < [n] only at end of input. *)
let fill src n =
  if available src < n then begin
    compact src;
    if n > Bytes.length src.buf then begin
      let fresh = Bytes.create (max n (2 * Bytes.length src.buf)) in
      Bytes.blit src.buf 0 fresh 0 src.lim;
      src.buf <- fresh
    end;
    while (not src.eof) && src.lim < n do
      let k = src.refill src.buf src.lim (Bytes.length src.buf - src.lim) in
      if k = 0 then src.eof <- true else src.lim <- src.lim + k
    done
  end;
  available src

let head_matches_marker src =
  (* caller has filled >= 4 *)
  Bytes.get src.buf src.pos = marker.[0]
  && Bytes.get src.buf (src.pos + 1) = marker.[1]
  && Bytes.get src.buf (src.pos + 2) = marker.[2]
  && Bytes.get src.buf (src.pos + 3) = marker.[3]

(* Advance to the next occurrence of the frame marker (possibly the
   current head); false when the input ends first. *)
let scan_to_marker src =
  let continue = ref true and found = ref false in
  while !continue do
    if fill src 4 < 4 then continue := false
    else begin
      let i = ref src.pos in
      let limit = src.lim - 4 in
      while (not !found) && !i <= limit do
        if
          Bytes.get src.buf !i = marker.[0]
          && Bytes.get src.buf (!i + 1) = marker.[1]
          && Bytes.get src.buf (!i + 2) = marker.[2]
          && Bytes.get src.buf (!i + 3) = marker.[3]
        then found := true
        else incr i
      done;
      if !found then begin
        src.pos <- !i;
        continue := false
      end
      else begin
        (* Keep the last 3 bytes: the marker may straddle the refill. *)
        src.pos <- src.lim - 3;
        if src.eof then continue := false
        else ignore (fill src (available src + 1))
      end
    end
  done;
  !found

let le32_at src i =
  Char.code (Bytes.get src.buf i)
  lor (Char.code (Bytes.get src.buf (i + 1)) lsl 8)
  lor (Char.code (Bytes.get src.buf (i + 2)) lsl 16)
  lor (Char.code (Bytes.get src.buf (i + 3)) lsl 24)

(* --- frame-level reader ---

   Walks the file frame by frame, verifying checksums. [f] sees only
   checksum-verified frames. In [`Recover] mode, framing damage and
   exceptions raised by [f] become diagnostics and the walk
   resynchronises on the next marker; in [`Strict] mode they raise.
   Returns (acc, diagnostics in file order, frames seen, end offset). *)

let fold_raw mode src ~init ~f =
  let diags = ref [] in
  let ndiag = ref 0 in
  let diag ~frame ~offset fmt =
    Format.kasprintf
      (fun reason ->
        incr ndiag;
        diags := { frame; offset; reason } :: !diags)
      fmt
  in
  let magic_ok =
    let have = fill src 5 in
    if have >= 5 && Bytes.sub_string src.buf src.pos 5 = magic then begin
      src.pos <- src.pos + 5;
      true
    end
    else
      match mode with
      | `Strict ->
        if have < 5 then corrupt "not a v2 corpus: shorter than the magic"
        else
          corrupt "not a v2 corpus: bad magic %S"
            (Bytes.sub_string src.buf src.pos 5)
      | `Recover ->
        (* A flipped byte in the magic must not discard an otherwise
           intact file: diagnose and resynchronise on the first frame
           marker (the header frame sits right behind the magic). *)
        diag ~frame:0 ~offset:0 "bad file magic";
        scan_to_marker src
  in
  let idx = ref 0 in
  let acc = ref init in
  let continue = ref magic_ok in
  while !continue do
    if fill src 1 = 0 then continue := false (* clean EOF *)
    else begin
      let off = offset src in
      let have = fill src 13 in
      if have < 13 then begin
        match mode with
        | `Strict -> corrupt "truncated frame header at byte %d" off
        | `Recover ->
          diag ~frame:!idx ~offset:off "truncated frame header (%d bytes)" have;
          src.pos <- src.lim;
          continue := false
      end
      else if not (head_matches_marker src) then begin
        match mode with
        | `Strict -> corrupt "bad frame marker at byte %d" off
        | `Recover ->
          src.pos <- src.pos + 1;
          let resynced = scan_to_marker src in
          diag ~frame:!idx ~offset:off "skipped %d bytes of garbage"
            (offset src - off);
          if not resynced then continue := false
      end
      else begin
        let kind = Bytes.get src.buf (src.pos + 4) in
        let len = le32_at src (src.pos + 5) in
        let stored = le32_at src (src.pos + 9) in
        if not (kind = 'H' || kind = 'S' || kind = 'E') then begin
          match mode with
          | `Strict -> corrupt "unknown frame kind %C at byte %d" kind off
          | `Recover ->
            diag ~frame:!idx ~offset:off "unknown frame kind %C" kind;
            src.pos <- src.pos + 4;
            if not (scan_to_marker src) then continue := false
        end
        else if len > max_frame_len then begin
          match mode with
          | `Strict -> corrupt "implausible frame length %d at byte %d" len off
          | `Recover ->
            diag ~frame:!idx ~offset:off "implausible frame length %d" len;
            src.pos <- src.pos + 4;
            if not (scan_to_marker src) then continue := false
        end
        else begin
          src.pos <- src.pos + 13;
          if fill src len < len then begin
            match mode with
            | `Strict ->
              corrupt "frame %d at byte %d: truncated payload (need %d, have %d)"
                !idx off len (available src)
            | `Recover ->
              diag ~frame:!idx ~offset:off "truncated payload (need %d, have %d)"
                len (available src);
              src.pos <- src.lim;
              continue := false
          end
          else begin
            let crc =
              Dputil.Crc32.bytes_sub
                ~crc:(Dputil.Crc32.string (String.make 1 kind))
                src.buf ~pos:src.pos ~len
            in
            if crc <> stored then begin
              let frame = !idx in
              incr idx;
              match mode with
              | `Strict -> corrupt "frame %d at byte %d: checksum mismatch" frame off
              | `Recover ->
                diag ~frame ~offset:off "checksum mismatch";
                (* Rescan from the payload start: if the length field was
                   the corrupt part, the next real frame may begin inside
                   what it claimed as payload. *)
                if not (scan_to_marker src) then continue := false
            end
            else begin
              let payload = Bytes.sub_string src.buf src.pos len in
              src.pos <- src.pos + len;
              let frame = !idx in
              incr idx;
              match f !acc ~frame ~offset:off ~crc kind payload with
              | v -> acc := v
              | exception Codec_binary.Corrupt m ->
                (match mode with
                | `Strict -> raise (Codec_binary.Corrupt m)
                | `Recover -> diag ~frame ~offset:off "%s" m)
            end
          end
        end
      end
    end
  done;
  if Dpobs.metrics_on () then begin
    Dpobs.Metrics.add (Lazy.force bytes_read_c) (offset src);
    Dpobs.Metrics.add (Lazy.force frames_read_c) !idx;
    Dpobs.Metrics.add (Lazy.force frames_dropped_c) !ndiag
  end;
  (!acc, List.rev !diags, !idx, offset src)

(* Trailer accounting shared by the sequential and pooled loads. *)
let check_trailer mode ~declared ~loaded ~frames ~end_off diags =
  match (mode, declared) with
  | `Strict, None ->
    corrupt "missing end-of-corpus trailer (truncated at a frame boundary?)"
  | `Strict, Some n ->
    if n <> loaded then
      corrupt "trailer declares %d stream frames, loaded %d" n loaded;
    diags
  | `Recover, None ->
    diags
    @ [ { frame = frames; offset = end_off; reason = "missing end-of-corpus trailer" } ]
  | `Recover, Some n when n <> loaded ->
    diags
    @ [
        {
          frame = frames;
          offset = end_off;
          reason =
            Printf.sprintf "trailer declares %d stream frames, %d loaded" n
              loaded;
        };
      ]
  | `Recover, Some _ -> diags

(* A checksum collision must never leak invalid data into the analysis:
   recovered streams additionally have to pass Validate.check. *)
let checked_stream mode st =
  match mode with
  | `Strict -> st
  | `Recover -> (
    match Validate.check st with
    | [] -> st
    | v :: _ ->
      corrupt "decoded stream %d fails validation: %a" st.Stream.id
        (fun fmt v -> Validate.pp_violation fmt v)
        v)

let fold_src mode src ~init ~f =
  let specs = ref [] in
  let declared = ref None in
  let loaded = ref 0 in
  let handle acc ~frame:_ ~offset:_ ~crc kind payload =
    match kind with
    | 'H' ->
      specs := !specs @ decode_header payload;
      acc
    | 'E' ->
      declared := Some (decode_trailer payload);
      acc
    | _ ->
      let key = key_of_crc crc ~len:(String.length payload) in
      let st = checked_stream mode (decode_stream_payload ~key payload) in
      incr loaded;
      f acc st
  in
  let acc, diags, frames, end_off = fold_raw mode src ~init ~f:handle in
  let diags =
    check_trailer mode ~declared:!declared ~loaded:!loaded ~frames ~end_off diags
  in
  (acc, !specs, { frames; streams = !loaded; dropped = diags })

let fold_streams ?(mode = `Strict) ic ~init ~f =
  fold_src mode (src_of_channel ic) ~init ~f

(* Pooled load: frames are checksum-verified in file order (cheap), then
   decoded in parallel batches; batch size bounds the payload bytes held
   at once, and parallel_map keeps file order, so the result is
   bit-identical to the sequential load. *)
let load_pooled mode pool src =
  let batch_size = 4 * Dppar.Pool.size pool in
  let specs = ref [] in
  let declared = ref None in
  let pending = ref [] in
  let streams = ref [] in
  let late = ref [] in
  let flush () =
    match List.rev !pending with
    | [] -> ()
    | items ->
      pending := [];
      let results =
        Dppar.Pool.parallel_map ~chunk:1 pool
          (fun (frame, off, crc, payload) ->
            let key = key_of_crc crc ~len:(String.length payload) in
            match checked_stream mode (decode_stream_payload ~key payload) with
            | st -> Ok st
            | exception Codec_binary.Corrupt m -> (
              match mode with
              | `Strict ->
                raise
                  (Codec_binary.Corrupt
                     (Printf.sprintf "frame %d at byte %d: %s" frame off m))
              | `Recover -> Error { frame; offset = off; reason = m }))
          items
      in
      List.iter
        (function
          | Ok st -> streams := st :: !streams
          | Error d -> late := d :: !late)
        results
  in
  let (), diags, frames, end_off =
    fold_raw mode src ~init:() ~f:(fun () ~frame ~offset ~crc kind payload ->
        match kind with
        | 'H' -> specs := !specs @ decode_header payload
        | 'E' -> declared := Some (decode_trailer payload)
        | _ ->
          pending := (frame, offset, crc, payload) :: !pending;
          if List.length !pending >= batch_size then flush ())
  in
  flush ();
  let streams = List.rev !streams in
  let diags =
    List.sort
      (fun a b -> compare (a.offset, a.frame) (b.offset, b.frame))
      (diags @ List.rev !late)
  in
  let diags =
    check_trailer mode ~declared:!declared ~loaded:(List.length streams) ~frames
      ~end_off diags
  in
  ( Corpus.create ~streams ~specs:!specs,
    { frames; streams = List.length streams; dropped = diags } )

let load_src mode pool src =
  Dpobs.Span.with_span "codec_v2.decode" @@ fun () ->
  match pool with
  | Some pool when Dppar.Pool.size pool > 1 -> load_pooled mode pool src
  | _ ->
    let streams, specs, report =
      fold_src mode src ~init:[] ~f:(fun acc st -> st :: acc)
    in
    (Corpus.create ~streams:(List.rev streams) ~specs, report)

let decode ?(mode = `Strict) ?pool data = load_src mode pool (src_of_string data)

let load ?(mode = `Strict) ?pool path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> load_src mode pool (src_of_channel ic))
