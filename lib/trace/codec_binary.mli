(** Compact binary serialisation of corpora (format v1).

    The text format ({!Codec}) is the interchange format; this one is for
    volume. Signatures are table-encoded once per corpus, events reference
    them by index, and all integers are unsigned LEB128 varints — several
    times smaller and faster to load than the text form. For
    production-scale corpora prefer the framed, checksummed {!Codec_v2},
    which streams and survives partial corruption; this module remains the
    compatibility reader/writer and supplies the wire primitives v2 builds
    on.

    Layout:
    {v
    magic "DPTB", u8 version (=1)
    v #signatures, each: v length + bytes
    v #specs,      each: str name, v tfast, v tslow
    v #streams,    each:
      v id
      v #threads,  each: v tid, str name
      v #events,   each: u8 kind, v tid, v wtid(+1 biased), v ts,
                         v cost, v depth, v sig-index ...
      v #instances, each: str scenario, v tid, v t0, v t1
    v}
    where [v] is a varint and [str] is a varint length followed by
    bytes. *)

exception Corrupt of string
(** Raised on truncated or malformed input. *)

(** Low-level wire primitives: LEB128 varints, length-prefixed strings and
    a read cursor. Decoding rejects any varint that would overflow a
    non-negative 63-bit [int] (bit 62 and beyond), so no crafted encoding
    can smuggle a negative [ts]/[cost]/[tid] past the writer-side
    invariants. *)
module Wire : sig
  val w8 : Buffer.t -> int -> unit
  val wv : Buffer.t -> int -> unit
  (** @raise Corrupt on a negative value. *)

  val wstr : Buffer.t -> string -> unit

  type cursor = { data : string; mutable pos : int }

  val cursor : string -> cursor
  val at_end : cursor -> bool

  val need : cursor -> int -> unit
  (** @raise Corrupt unless [n] more bytes are available. *)

  val r8 : cursor -> int
  val rv : cursor -> int
  (** @raise Corrupt on truncation or overflow; the result is always
      non-negative. *)

  val rstr : cursor -> string
  val rlist : cursor -> (cursor -> 'a) -> 'a list
end

val write_spec : Buffer.t -> Scenario.spec -> unit
val read_spec : Wire.cursor -> Scenario.spec
(** @raise Corrupt unless [0 < tfast <= tslow]. *)

val write_stream : Buffer.t -> sig_index:(Signature.t -> int) -> Stream.t -> unit
(** One stream in the v1 per-stream layout; [sig_index] maps each frame
    signature to its table index (table encoding is the caller's). *)

val read_stream : Wire.cursor -> sig_of:(int -> Signature.t) -> Stream.t
(** Inverse of {!write_stream}. Validation parity with the text reader:
    rejects unknown kinds, implausible stack depths, out-of-range
    signature indices (via [sig_of]), instances with [t1 < t0], and — via
    {!Wire.rv} — any negative [ts]/[cost]/[tid].
    @raise Corrupt on malformed input. *)

val encode : Corpus.t -> string
val decode : string -> Corpus.t
(** @raise Corrupt on malformed input. *)

val save : string -> Corpus.t -> unit
val load : string -> Corpus.t
(** @raise Corrupt / [Sys_error]. *)
