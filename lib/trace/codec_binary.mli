(** Compact binary serialisation of corpora.

    The text format ({!Codec}) is the interchange format; this one is for
    volume. Signatures are table-encoded once per corpus, events reference
    them by index, and all integers are unsigned LEB128 varints — several
    times smaller and faster to load than the text form.

    Layout:
    {v
    magic "DPTB", u8 version (=1)
    v #signatures, each: v length + bytes
    v #specs,      each: str name, v tfast, v tslow
    v #streams,    each:
      v id
      v #threads,  each: v tid, str name
      v #events,   each: u8 kind, v tid, v wtid(+1 biased), v ts,
                         v cost, v depth, v sig-index ...
      v #instances, each: str scenario, v tid, v t0, v t1
    v}
    where [v] is a varint and [str] is a varint length followed by
    bytes. *)

exception Corrupt of string
(** Raised on truncated or malformed input. *)

val encode : Corpus.t -> string
val decode : string -> Corpus.t
(** @raise Corrupt on malformed input. *)

val save : string -> Corpus.t -> unit
val load : string -> Corpus.t
(** @raise Corrupt / [Sys_error]. *)
