exception Corrupt of string

let corrupt fmt = Format.kasprintf (fun m -> raise (Corrupt m)) fmt

let magic = "DPTB"
let version = 1

(* --- wire primitives, shared with the framed v2 codec --- *)

module Wire = struct
  let w8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))

  (* Unsigned LEB128: 7 bits per byte, high bit = continuation. Most fields
     (tids, stack depths, counts, costs in µs) are small; this is where the
     size win over the text format comes from. *)
  let rec wv buf v =
    if v < 0 then corrupt "cannot encode negative varint %d" v;
    if v < 0x80 then w8 buf v
    else begin
      w8 buf (0x80 lor (v land 0x7f));
      wv buf (v lsr 7)
    end

  let wstr buf s =
    let n = String.length s in
    wv buf n;
    Buffer.add_string buf s

  type cursor = { data : string; mutable pos : int }

  let cursor data = { data; pos = 0 }
  let at_end cur = cur.pos = String.length cur.data

  let need cur n =
    if cur.pos + n > String.length cur.data then
      corrupt "truncated input at byte %d (need %d more)" cur.pos n

  let r8 cur =
    need cur 1;
    let v = Char.code cur.data.[cur.pos] in
    cur.pos <- cur.pos + 1;
    v

  let rv cur =
    let rec go shift acc =
      let b = r8 cur in
      (* After eight bytes only bits 56..61 of a 63-bit int remain: a ninth
         byte with bit 6 set would land in the sign bit, and a continuation
         would go past it — either way a crafted file could smuggle a
         negative ts/cost/tid past every writer-side invariant. *)
      if shift = 56 && b land 0xc0 <> 0 then
        corrupt "varint overflow at byte %d" (cur.pos - 1);
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let rstr cur =
    let n = rv cur in
    need cur n;
    let s = String.sub cur.data cur.pos n in
    cur.pos <- cur.pos + n;
    s

  let rlist cur f =
    let n = rv cur in
    if n > String.length cur.data then corrupt "implausible element count %d" n;
    List.init n (fun _ -> f cur)
end

open Wire

let kind_code = function
  | Event.Running -> 0
  | Event.Wait -> 1
  | Event.Unwait -> 2
  | Event.Hw_service -> 3

let kind_of_code = function
  | 0 -> Event.Running
  | 1 -> Event.Wait
  | 2 -> Event.Unwait
  | 3 -> Event.Hw_service
  | c -> corrupt "unknown event kind code %d" c

(* --- specs and streams, shared with the framed v2 codec --- *)

let write_spec buf (s : Scenario.spec) =
  wstr buf s.name;
  wv buf s.tfast;
  wv buf s.tslow

let read_spec cur =
  let name = rstr cur in
  let tfast = rv cur in
  let tslow = rv cur in
  if not (0 < tfast && tfast <= tslow) then
    corrupt "invalid spec thresholds for %s" name;
  Scenario.spec ~name ~tfast ~tslow

let write_stream buf ~sig_index (st : Stream.t) =
  wv buf st.Stream.id;
  wv buf (List.length st.Stream.threads);
  List.iter
    (fun (tid, name) ->
      wv buf tid;
      wstr buf name)
    st.Stream.threads;
  wv buf (Array.length st.Stream.events);
  Array.iter
    (fun (e : Event.t) ->
      w8 buf (kind_code e.kind);
      wv buf e.tid;
      wv buf (e.wtid + 1);
      wv buf e.ts;
      wv buf e.cost;
      let frames = Callstack.frames e.stack in
      wv buf (Array.length frames);
      Array.iter (fun s -> wv buf (sig_index s)) frames)
    st.Stream.events;
  wv buf (List.length st.Stream.instances);
  List.iter
    (fun (i : Scenario.instance) ->
      wstr buf i.scenario;
      wv buf i.tid;
      wv buf i.t0;
      wv buf i.t1)
    st.Stream.instances

let read_stream cur ~sig_of =
  let id = rv cur in
  let threads =
    rlist cur (fun cur ->
        let tid = rv cur in
        let name = rstr cur in
        (tid, name))
  in
  let events =
    rlist cur (fun cur ->
        let kind = kind_of_code (r8 cur) in
        let tid = rv cur in
        let wtid = rv cur - 1 in
        let ts = rv cur in
        let cost = rv cur in
        let depth = rv cur in
        if depth > 0xffff then corrupt "implausible stack depth %d" depth;
        let frames = List.init depth (fun _ -> sig_of (rv cur)) in
        {
          Event.id = 0;
          kind;
          stack = Callstack.of_list frames;
          ts;
          cost;
          tid;
          wtid;
        })
  in
  let instances =
    rlist cur (fun cur ->
        let scenario = rstr cur in
        let tid = rv cur in
        let t0 = rv cur in
        let t1 = rv cur in
        if t1 < t0 then corrupt "instance %s has t1 < t0" scenario;
        { Scenario.scenario; tid; t0; t1 })
  in
  Stream.create ~id ~events ~instances ~threads

(* --- whole-corpus writer --- *)

let encode (c : Corpus.t) =
  (* Signature table: every distinct signature across all callstacks. *)
  let sig_index : (Signature.t, int) Hashtbl.t = Hashtbl.create 256 in
  let sig_list = ref [] in
  let nsigs = ref 0 in
  let index_of s =
    match Hashtbl.find_opt sig_index s with
    | Some i -> i
    | None ->
      let i = !nsigs in
      incr nsigs;
      Hashtbl.replace sig_index s i;
      sig_list := s :: !sig_list;
      i
  in
  List.iter
    (fun (st : Stream.t) ->
      Array.iter
        (fun (e : Event.t) ->
          Array.iter (fun s -> ignore (index_of s)) (Callstack.frames e.stack))
        st.Stream.events)
    c.Corpus.streams;
  let buf = Buffer.create 65536 in
  Buffer.add_string buf magic;
  w8 buf version;
  wv buf !nsigs;
  List.iter (fun s -> wstr buf (Signature.name s)) (List.rev !sig_list);
  wv buf (List.length c.Corpus.specs);
  List.iter (write_spec buf) c.Corpus.specs;
  wv buf (List.length c.Corpus.streams);
  List.iter
    (write_stream buf ~sig_index:(fun s -> Hashtbl.find sig_index s))
    c.Corpus.streams;
  Buffer.contents buf

(* --- whole-corpus reader --- *)

let decode data =
  let cur = cursor data in
  need cur 5;
  if String.sub data 0 4 <> magic then corrupt "bad magic";
  cur.pos <- 4;
  let v = r8 cur in
  if v <> version then corrupt "unsupported version %d" v;
  let sigs =
    Array.of_list (rlist cur (fun cur -> Signature.of_string (rstr cur)))
  in
  let sig_of i =
    if i < 0 || i >= Array.length sigs then corrupt "signature index %d out of range" i
    else sigs.(i)
  in
  let specs = rlist cur read_spec in
  let streams = rlist cur (fun cur -> read_stream cur ~sig_of) in
  if not (at_end cur) then
    corrupt "%d trailing bytes" (String.length data - cur.pos);
  Corpus.create ~streams ~specs

let save path c =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (encode c))

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      decode (really_input_string ic n))
