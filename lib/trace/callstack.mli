(** Callstacks: sequences of signatures, {e topmost frame first}.

    The topmost frame is the innermost function at the moment the event was
    recorded; the last frame is the thread entry point (e.g.
    ["Browser!TabCreate"]). *)

type t

val of_list : Signature.t list -> t
(** Build from topmost-first frames. *)

val of_strings : string list -> t
(** Convenience: intern each frame text, topmost first. *)

val frames : t -> Signature.t array
(** Topmost-first frames. Do not mutate. *)

val top : t -> Signature.t option
(** Topmost frame; [None] for an empty stack. *)

val depth : t -> int

val push : Signature.t -> t -> t
(** [push f s] adds [f] as the new topmost frame. *)

val topmost_matching : Dputil.Wildcard.t list -> t -> Signature.t option
(** The paper's "signature" of an event for chosen components: the topmost
    frame whose module part matches one of the component filters
    (Definition 2's preamble), or [None] when the event is
    component-irrelevant. *)

val contains_matching : Dputil.Wildcard.t list -> t -> bool
(** Whether any frame matches the component filters. *)

val contains : Signature.t -> t -> bool

val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
