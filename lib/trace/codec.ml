exception Parse_error of { line : int; message : string }

let fail line fmt =
  Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

let magic = "dptrace"
let version = 1

(* The format is whitespace-delimited: names with blanks would corrupt it
   silently on the way back in. Fail loudly on the way out instead. *)
let check_token what s =
  if s = "" || String.exists (fun c -> c = ' ' || c = '\t' || c = '\n' || c = ';') s
  then invalid_arg (Printf.sprintf "Codec: %s %S is not encodable" what s)

(* --- Writing --- *)

let buf_event buf (e : Event.t) =
  let frames =
    Callstack.frames e.stack |> Array.to_list
    |> List.map (fun s ->
           let name = Signature.name s in
           (* A signature with a blank would fail to parse on reload; one
              with ';' would silently split into two frames. *)
           check_token "frame signature" name;
           name)
    |> String.concat ";"
  in
  let frames = if frames = "" then "-" else frames in
  Printf.bprintf buf "event %s %d %d %d %d %s\n"
    (Event.kind_to_string e.kind)
    e.tid e.ts e.cost e.wtid frames

let buf_stream buf (st : Stream.t) =
  Printf.bprintf buf "stream %d\n" st.Stream.id;
  List.iter
    (fun (tid, name) ->
      check_token "thread name" name;
      Printf.bprintf buf "thread %d %s\n" tid name)
    st.Stream.threads;
  Array.iter (buf_event buf) st.Stream.events;
  List.iter
    (fun (i : Scenario.instance) ->
      check_token "scenario name" i.scenario;
      Printf.bprintf buf "instance %s %d %d %d\n" i.scenario i.tid i.t0 i.t1)
    st.Stream.instances;
  Buffer.add_string buf "end\n"

let corpus_to_string (c : Corpus.t) =
  let buf = Buffer.create 65536 in
  Printf.bprintf buf "%s %d\n" magic version;
  List.iter
    (fun (s : Scenario.spec) ->
      check_token "spec name" s.name;
      Printf.bprintf buf "spec %s %d %d\n" s.name s.tfast s.tslow)
    c.specs;
  List.iter (buf_stream buf) c.streams;
  Buffer.contents buf

let write_corpus oc c = output_string oc (corpus_to_string c)

(* --- Reading --- *)

type parser_state = {
  mutable line : int;
  mutable specs : Scenario.spec list;
  mutable streams : Stream.t list;
  (* Current stream under construction, if any. *)
  mutable cur_id : int option;
  mutable cur_events : Event.t list;
  mutable cur_instances : Scenario.instance list;
  mutable cur_threads : (int * string) list;
}

let int_field st what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail st.line "invalid %s: %S" what s

let parse_stack _st s =
  if s = "-" then Callstack.of_list []
  else Callstack.of_strings (String.split_on_char ';' s)

let finish_stream st =
  match st.cur_id with
  | None -> ()
  | Some id ->
    let stream =
      Stream.create ~id
        ~events:(List.rev st.cur_events)
        ~instances:(List.rev st.cur_instances)
        ~threads:(List.rev st.cur_threads)
    in
    st.streams <- stream :: st.streams;
    st.cur_id <- None;
    st.cur_events <- [];
    st.cur_instances <- [];
    st.cur_threads <- []

let in_stream st =
  match st.cur_id with
  | Some _ -> ()
  | None -> fail st.line "directive outside of a stream block"

let parse_line st raw =
  let words =
    String.split_on_char ' ' (String.trim raw) |> List.filter (fun w -> w <> "")
  in
  match words with
  | [] -> ()
  | "spec" :: [ name; tfast; tslow ] ->
    let tfast = int_field st "tfast" tfast and tslow = int_field st "tslow" tslow in
    if not (0 < tfast && tfast <= tslow) then
      fail st.line "spec %s: need 0 < tfast <= tslow" name;
    st.specs <- Scenario.spec ~name ~tfast ~tslow :: st.specs
  | "stream" :: [ id ] ->
    if st.cur_id <> None then fail st.line "nested stream block";
    st.cur_id <- Some (int_field st "stream id" id)
  | "thread" :: [ tid; name ] ->
    in_stream st;
    st.cur_threads <- (int_field st "tid" tid, name) :: st.cur_threads
  | "event" :: [ kind; tid; ts; cost; wtid; frames ] ->
    in_stream st;
    let kind =
      match Event.kind_of_string kind with
      | Some k -> k
      | None -> fail st.line "unknown event kind %S" kind
    in
    let e : Event.t =
      {
        id = 0;
        kind;
        stack = parse_stack st frames;
        ts = int_field st "ts" ts;
        cost = int_field st "cost" cost;
        tid = int_field st "tid" tid;
        wtid = int_field st "wtid" wtid;
      }
    in
    if e.cost < 0 then fail st.line "negative cost";
    st.cur_events <- e :: st.cur_events
  | "instance" :: [ scenario; tid; t0; t1 ] ->
    in_stream st;
    let t0 = int_field st "t0" t0 and t1 = int_field st "t1" t1 in
    if t1 < t0 then fail st.line "instance with t1 < t0";
    st.cur_instances <-
      { Scenario.scenario; tid = int_field st "tid" tid; t0; t1 }
      :: st.cur_instances
  | [ "end" ] ->
    in_stream st;
    finish_stream st
  | word :: _ -> fail st.line "unrecognised directive %S" word

let read_lines next_line =
  let st =
    {
      line = 0;
      specs = [];
      streams = [];
      cur_id = None;
      cur_events = [];
      cur_instances = [];
      cur_threads = [];
    }
  in
  (* Header. *)
  (match next_line () with
  | None -> fail 1 "empty input"
  | Some header ->
    st.line <- 1;
    (match String.split_on_char ' ' (String.trim header) with
    | [ m; v ] when m = magic ->
      let v = int_field st "version" v in
      if v <> version then fail st.line "unsupported version %d" v
    | _ -> fail st.line "bad header %S" header));
  let rec loop () =
    match next_line () with
    | None -> ()
    | Some raw ->
      st.line <- st.line + 1;
      parse_line st raw;
      loop ()
  in
  loop ();
  if st.cur_id <> None then fail st.line "unterminated stream block";
  Corpus.create ~streams:(List.rev st.streams) ~specs:(List.rev st.specs)

let read_corpus ic =
  read_lines (fun () -> try Some (input_line ic) with End_of_file -> None)

let corpus_of_string s =
  let lines = ref (String.split_on_char '\n' s) in
  read_lines (fun () ->
      match !lines with
      | [] -> None
      | [ "" ] ->
        lines := [];
        None
      | l :: rest ->
        lines := rest;
        Some l)

(* Binary mode both ways: text-mode channels translate line endings on
   some platforms, breaking byte-exact round-trips (and checksums taken
   over the file). The format itself is plain "\n"-separated text. *)
let save path c =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_corpus oc c)

let load path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> read_corpus ic)
