type index = {
  by_tid : (int, Event.t array) Hashtbl.t;
  unwaits_by_wtid : (int, Event.t array) Hashtbl.t;
}

type t = {
  id : int;
  events : Event.t array;
  instances : Scenario.instance list;
  threads : (int * string) list;
  memo_index : index option Atomic.t;
  memo_key : string option Atomic.t;
}

let create ~id ~events ~instances ~threads =
  (* Order: timestamp, then thread, then zero-cost events (unwaits) before
     cost-bearing ones — a thread that releases a lock and computes at the
     same instant has released first — then emission order for
     determinism. *)
  let tagged = Array.of_list (List.mapi (fun pos e -> (pos, e)) events) in
  Array.sort
    (fun (pa, (a : Event.t)) (pb, (b : Event.t)) ->
      match compare a.ts b.ts with
      | 0 -> (
        match compare a.tid b.tid with
        | 0 -> (
          match compare (min a.cost 1) (min b.cost 1) with
          | 0 -> compare pa pb
          | c -> c)
        | c -> c)
      | c -> c)
    tagged;
  let renumbered =
    Array.mapi (fun i (_, (e : Event.t)) -> { e with Event.id = i }) tagged
  in
  {
    id;
    events = renumbered;
    instances;
    threads;
    memo_index = Atomic.make None;
    memo_key = Atomic.make None;
  }

let thread_name t tid =
  match List.assoc_opt tid t.threads with
  | Some name -> name
  | None -> Printf.sprintf "tid%d" tid

let duration t =
  let n = Array.length t.events in
  if n = 0 then 0
  else begin
    let last_end = Array.fold_left (fun acc e -> max acc (Event.end_ts e)) 0 t.events in
    last_end - t.events.(0).Event.ts
  end

let event_count t = Array.length t.events

let group_by key events =
  let acc : (int, Event.t list) Hashtbl.t = Hashtbl.create 64 in
  (* Iterate in reverse so each bucket list ends up timestamp-ordered. *)
  for i = Array.length events - 1 downto 0 do
    let e = events.(i) in
    match key e with
    | None -> ()
    | Some k ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt acc k) in
      Hashtbl.replace acc k (e :: prev)
  done;
  let out = Hashtbl.create (Hashtbl.length acc) in
  Hashtbl.iter (fun k es -> Hashtbl.replace out k (Array.of_list es)) acc;
  out

let index t =
  {
    by_tid = group_by (fun (e : Event.t) -> Some e.tid) t.events;
    unwaits_by_wtid =
      group_by
        (fun (e : Event.t) -> if Event.is_unwait e then Some e.wtid else None)
        t.events;
  }

(* Cache effectiveness of the memoised index — a racing double build
   counts as two misses, which is exactly the wasted work. *)
let index_hits = lazy (Dpobs.Metrics.counter "stream.index.hit")
let index_misses = lazy (Dpobs.Metrics.counter "stream.index.miss")

(* Publication is a single compare-and-set on an [Atomic.t]: the plain
   mutable field it replaces was read outside the old mutex, which was a
   data race under the domain pool (torn in theory, and flagged by TSan).
   Index construction runs before the CAS: a race on the same stream at
   worst computes the (pure, identical) index twice; the first store wins
   and losers adopt it, so every caller observes one index identity. *)
let shared_index t =
  match Atomic.get t.memo_index with
  | Some idx ->
    if Dpobs.metrics_on () then Dpobs.Metrics.incr (Lazy.force index_hits);
    idx
  | None ->
    if Dpobs.metrics_on () then Dpobs.Metrics.incr (Lazy.force index_misses);
    let idx = index t in
    if Atomic.compare_and_set t.memo_index None (Some idx) then idx
    else
      (* Lost the race: the winner's index is now published. *)
      Option.get (Atomic.get t.memo_index)

let key_memo t = Atomic.get t.memo_key

let set_key_memo t key =
  (* First writer wins; all writers derive the key from the same stream
     content, so losing the race changes nothing. *)
  ignore (Atomic.compare_and_set t.memo_key None (Some key))

let events_of_thread idx tid =
  Option.value ~default:[||] (Hashtbl.find_opt idx.by_tid tid)

(* First index i with arr.(i).ts >= target. *)
let lower_bound (arr : Event.t array) target =
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if arr.(mid).Event.ts < target then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length arr)

let thread_events_overlapping idx ~tid ~from_ts ~to_ts =
  let arr = events_of_thread idx tid in
  (* An event overlaps iff ts <= to_ts and end_ts >= from_ts. Events are
     ts-sorted; a long event may start well before [from_ts], so scan back
     from the first event starting at/after [from_ts] while spans still can
     reach the window. Per-thread events do not overlap each other, so at
     most one predecessor qualifies. *)
  let start = lower_bound arr from_ts in
  let before =
    if start > 0 && Event.end_ts arr.(start - 1) >= from_ts then [ arr.(start - 1) ]
    else []
  in
  let rec collect i acc =
    if i >= Array.length arr || arr.(i).Event.ts > to_ts then List.rev acc
    else collect (i + 1) (arr.(i) :: acc)
  in
  before @ collect start []

let find_waker idx (w : Event.t) =
  let arr = Option.value ~default:[||] (Hashtbl.find_opt idx.unwaits_by_wtid w.tid) in
  (* An unwait at exactly [w.ts] belongs to whatever wait ended there, not
     to a wait beginning there — threads commonly re-block at the very
     instant they are woken (FIFO hand-offs), and matching the stale
     unwait would truncate the propagation chain. Only zero-duration
     waits may pair at their own start instant. *)
  let earliest = if w.cost = 0 then w.ts else w.ts + 1 in
  let start = lower_bound arr earliest in
  if start < Array.length arr && arr.(start).Event.ts <= Event.end_ts w then
    Some arr.(start)
  else None

let pp_summary fmt t =
  Format.fprintf fmt "stream %d: %d events, %d instances, %d threads, span %a"
    t.id (Array.length t.events) (List.length t.instances)
    (List.length t.threads) Dputil.Time.pp (duration t)
