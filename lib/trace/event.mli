(** Tracing events — the four-kind schema of Section 2.1.

    - [Running]: CPU usage sampled at a constant interval (1 ms in ETW);
      [cost] is the sampled running time at that granularity.
    - [Wait]: the thread entered the waiting state at [ts] and stayed
      suspended for [cost] (restored from the paired unwait, Section 3.1).
    - [Unwait]: the running thread signalled thread [wtid] to continue
      (lock release, request completion, …); instantaneous ([cost = 0]).
    - [Hw_service]: a hardware operation with start timestamp and duration,
      recorded on the device's pseudo-thread. *)

type kind = Running | Wait | Unwait | Hw_service

type t = {
  id : int;  (** Dense, unique and timestamp-ordered within a stream. *)
  kind : kind;
  stack : Callstack.t;  (** [e.S] — callstack, topmost frame first. *)
  ts : Dputil.Time.t;  (** [e.T] — start timestamp. *)
  cost : Dputil.Time.t;  (** [e.C] — duration. *)
  tid : int;  (** [e.TID] — thread that triggered the event. *)
  wtid : int;  (** [e.WTID] — thread being unwaited; [-1] unless [Unwait]. *)
}

val end_ts : t -> Dputil.Time.t
(** [ts + cost]. *)

val is_wait : t -> bool
val is_unwait : t -> bool
val is_running : t -> bool
val is_hw_service : t -> bool

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

val pp : Format.formatter -> t -> unit
