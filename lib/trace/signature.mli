(** Function signatures.

    A signature is a ["module!function"] string, e.g.
    ["fv.sys!QueryFileTable"] or ["kernel!AcquireLock"], as recorded on ETW
    callstack frames. Signatures are interned process-wide: a [t] is a dense
    id, cheap to hash, compare and store in sets. Hardware services carry a
    dummy signature with no ['!'] (e.g. ["DiskService"]), per Definition 3. *)

type t
(** An interned signature id. *)

val of_string : string -> t
(** Intern a signature. *)

val name : t -> string
(** Full ["module!function"] text. *)

val module_part : t -> string
(** Text before the first ['!']; the whole name if there is none (hardware
    dummy signatures). For ["fv.sys!QueryFileTable"] this is ["fv.sys"]. *)

val function_part : t -> string
(** Text after the first ['!']; [""] for dummy signatures. *)

val make : module_name:string -> function_name:string -> t
(** [make ~module_name ~function_name] interns
    ["module_name!function_name"]. *)

val hw_service : string -> t
(** Dummy signature for a hardware service, e.g. [hw_service "DiskService"].
    Same as [of_string] but documents intent. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val to_int : t -> int
(** The dense id; stable for the process lifetime. *)

val of_int_unsafe : int -> t
(** Inverse of [to_int]; the caller asserts the id came from [to_int]. *)

val matches : Dputil.Wildcard.t list -> t -> bool
(** [matches patterns s] tests the {e module part} of [s] against the
    component filters, the paper's component-selection rule (e.g. pattern
    ["*.sys"] selects driver frames). *)

val pp : Format.formatter -> t -> unit

val interned_count : unit -> int
(** Number of distinct signatures interned so far (diagnostics). *)
