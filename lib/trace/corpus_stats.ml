type kind_counts = {
  running : int;
  waits : int;
  unwaits : int;
  hw_services : int;
}

type scenario_stats = {
  scenario : string;
  instances : int;
  durations_ms : Dputil.Stats.summary;
}

type t = {
  streams : int;
  instances : int;
  events : int;
  kinds : kind_counts;
  total_scenario_time : Dputil.Time.t;
  span : Dputil.Time.t;
  distinct_signatures : int;
  max_stack_depth : int;
  mean_stack_depth : float;
  threads : int;
  per_scenario : scenario_stats list;
}

let compute (c : Corpus.t) =
  let running = ref 0
  and waits = ref 0
  and unwaits = ref 0
  and hw = ref 0 in
  let span = ref 0 in
  let threads = ref 0 in
  let depth_sum = ref 0 and depth_max = ref 0 and depth_n = ref 0 in
  let sigs : (Signature.t, unit) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (st : Stream.t) ->
      span := !span + Stream.duration st;
      threads := !threads + List.length st.Stream.threads;
      Array.iter
        (fun (e : Event.t) ->
          (match e.kind with
          | Event.Running -> incr running
          | Event.Wait -> incr waits
          | Event.Unwait -> incr unwaits
          | Event.Hw_service -> incr hw);
          let d = Callstack.depth e.stack in
          depth_sum := !depth_sum + d;
          if d > !depth_max then depth_max := d;
          incr depth_n;
          Array.iter
            (fun s -> Hashtbl.replace sigs s ())
            (Callstack.frames e.stack))
        st.Stream.events)
    c.Corpus.streams;
  let per_scenario =
    List.map
      (fun name ->
        let durations =
          Corpus.instances_of c name
          |> List.map (fun (_, i) ->
                 Dputil.Time.to_ms_float (Scenario.duration i))
          |> Array.of_list
        in
        {
          scenario = name;
          instances = Array.length durations;
          durations_ms = Dputil.Stats.summarize durations;
        })
      (Corpus.scenario_names c)
    |> List.sort (fun (a : scenario_stats) (b : scenario_stats) ->
           match compare b.instances a.instances with
           | 0 -> compare a.scenario b.scenario
           | x -> x)
  in
  {
    streams = Corpus.stream_count c;
    instances = Corpus.instance_count c;
    events = Corpus.event_count c;
    kinds =
      { running = !running; waits = !waits; unwaits = !unwaits; hw_services = !hw };
    total_scenario_time = Corpus.total_scenario_time c;
    span = !span;
    distinct_signatures = Hashtbl.length sigs;
    max_stack_depth = !depth_max;
    mean_stack_depth =
      Dputil.Stats.ratio (float_of_int !depth_sum) (float_of_int !depth_n);
    threads = !threads;
    per_scenario;
  }

(* Mirror the snapshot into the metrics registry so `driveperf stats`
   prints corpus-level counters through the same code path as the
   engine's own telemetry. Counters accumulate; publishing twice in one
   process double-counts, which matches counter semantics (two corpora
   loaded = totals over both). *)
let publish t =
  let c name v = Dpobs.Metrics.add (Dpobs.Metrics.counter name) v in
  c "corpus.streams" t.streams;
  c "corpus.threads" t.threads;
  c "corpus.instances" t.instances;
  c "corpus.scenarios" (List.length t.per_scenario);
  c "corpus.events" t.events;
  c "corpus.events.running" t.kinds.running;
  c "corpus.events.wait" t.kinds.waits;
  c "corpus.events.unwait" t.kinds.unwaits;
  c "corpus.events.hw_service" t.kinds.hw_services;
  c "corpus.scenario_time_us" t.total_scenario_time;
  c "corpus.recorded_span_us" t.span;
  c "corpus.signatures" t.distinct_signatures;
  Dpobs.Metrics.set_max
    (Dpobs.Metrics.gauge "corpus.stack_depth.max")
    t.max_stack_depth

let render t =
  let buf = Buffer.create 2048 in
  let overview =
    Dputil.Table.create ~title:"Corpus overview"
      [ ("Quantity", Dputil.Table.Left); ("Value", Dputil.Table.Right) ]
  in
  List.iter
    (fun (k, v) -> Dputil.Table.add_row overview [ k; v ])
    [
      ("streams", string_of_int t.streams);
      ("threads", string_of_int t.threads);
      ("scenario instances", string_of_int t.instances);
      ("events", string_of_int t.events);
      ("  running", string_of_int t.kinds.running);
      ("  wait", string_of_int t.kinds.waits);
      ("  unwait", string_of_int t.kinds.unwaits);
      ("  hardware service", string_of_int t.kinds.hw_services);
      ("scenario time", Dputil.Time.to_string t.total_scenario_time);
      ("recorded span", Dputil.Time.to_string t.span);
      ("distinct signatures", string_of_int t.distinct_signatures);
      ( "stack depth mean / max",
        Printf.sprintf "%.1f / %d" t.mean_stack_depth t.max_stack_depth );
    ];
  Buffer.add_string buf (Dputil.Table.render overview);
  Buffer.add_char buf '\n';
  let scen =
    Dputil.Table.create ~title:"Per-scenario instance durations (ms)"
      [
        ("Scenario", Dputil.Table.Left);
        ("n", Dputil.Table.Right);
        ("mean", Dputil.Table.Right);
        ("p50", Dputil.Table.Right);
        ("p90", Dputil.Table.Right);
        ("max", Dputil.Table.Right);
      ]
  in
  List.iter
    (fun s ->
      Dputil.Table.add_row scen
        [
          s.scenario;
          string_of_int s.instances;
          Printf.sprintf "%.0f" s.durations_ms.Dputil.Stats.mean;
          Printf.sprintf "%.0f" s.durations_ms.Dputil.Stats.p50;
          Printf.sprintf "%.0f" s.durations_ms.Dputil.Stats.p90;
          Printf.sprintf "%.0f" s.durations_ms.Dputil.Stats.max;
        ])
    t.per_scenario;
  Buffer.add_string buf (Dputil.Table.render scen);
  Buffer.contents buf
