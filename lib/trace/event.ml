type kind = Running | Wait | Unwait | Hw_service

type t = {
  id : int;
  kind : kind;
  stack : Callstack.t;
  ts : Dputil.Time.t;
  cost : Dputil.Time.t;
  tid : int;
  wtid : int;
}

let end_ts e = e.ts + e.cost

let is_wait e = e.kind = Wait
let is_unwait e = e.kind = Unwait
let is_running e = e.kind = Running
let is_hw_service e = e.kind = Hw_service

let kind_to_string = function
  | Running -> "run"
  | Wait -> "wait"
  | Unwait -> "unwait"
  | Hw_service -> "hw"

let kind_of_string = function
  | "run" -> Some Running
  | "wait" -> Some Wait
  | "unwait" -> Some Unwait
  | "hw" -> Some Hw_service
  | _ -> None

let pp fmt e =
  Format.fprintf fmt "#%d %s tid=%d ts=%a cost=%a%s %a" e.id
    (kind_to_string e.kind) e.tid Dputil.Time.pp e.ts Dputil.Time.pp e.cost
    (if e.kind = Unwait then Printf.sprintf " wtid=%d" e.wtid else "")
    Callstack.pp e.stack
