type mapping = (string * string) list

type state = {
  modules : (string, string) Hashtbl.t;
  functions : (string * string, string) Hashtbl.t; (* (module, fn) → token *)
  threads : (string, string) Hashtbl.t;
  scenarios : (string, string) Hashtbl.t;
  mutable n_drv : int;
  mutable n_mod : int;
  mutable n_fn : int;
  mutable n_thread : int;
  mutable n_scenario : int;
}

let fresh_state () =
  {
    modules = Hashtbl.create 32;
    functions = Hashtbl.create 128;
    threads = Hashtbl.create 64;
    scenarios = Hashtbl.create 16;
    n_drv = 0;
    n_mod = 0;
    n_fn = 0;
    n_thread = 0;
    n_scenario = 0;
  }

let ends_with ~suffix s =
  let ls = String.length s and lx = String.length suffix in
  ls >= lx && String.sub s (ls - lx) lx = suffix

let anon_module st m =
  if String.lowercase_ascii m = "kernel" then m
  else
    match Hashtbl.find_opt st.modules m with
    | Some t -> t
    | None ->
      let t =
        if ends_with ~suffix:".sys" (String.lowercase_ascii m) then begin
          st.n_drv <- st.n_drv + 1;
          Printf.sprintf "drv%d.sys" st.n_drv
        end
        else begin
          st.n_mod <- st.n_mod + 1;
          Printf.sprintf "mod%d" st.n_mod
        end
      in
      Hashtbl.replace st.modules m t;
      t

let anon_function st m fn =
  if String.lowercase_ascii m = "kernel" then fn
  else
    match Hashtbl.find_opt st.functions (m, fn) with
    | Some t -> t
    | None ->
      st.n_fn <- st.n_fn + 1;
      let t = Printf.sprintf "f%d" st.n_fn in
      Hashtbl.replace st.functions (m, fn) t;
      t

let anon_signature st s =
  let m = Signature.module_part s in
  let fn = Signature.function_part s in
  if fn = "" then
    (* Hardware dummy signatures denote devices, not the traced party. *)
    s
  else Signature.make ~module_name:(anon_module st m) ~function_name:(anon_function st m fn)

let anon_stack st stack =
  Callstack.of_list
    (List.map (anon_signature st) (Array.to_list (Callstack.frames stack)))

let anon_thread st name =
  match Hashtbl.find_opt st.threads name with
  | Some t -> t
  | None ->
    st.n_thread <- st.n_thread + 1;
    let t = Printf.sprintf "thread%d" st.n_thread in
    Hashtbl.replace st.threads name t;
    t

let anon_scenario st ~keep name =
  if keep then name
  else
    match Hashtbl.find_opt st.scenarios name with
    | Some t -> t
    | None ->
      st.n_scenario <- st.n_scenario + 1;
      let t = Printf.sprintf "scenario%d" st.n_scenario in
      Hashtbl.replace st.scenarios name t;
      t

let corpus ?(keep_scenarios = false) (c : Corpus.t) =
  let st = fresh_state () in
  let streams =
    List.map
      (fun (stream : Stream.t) ->
        let events =
          Array.to_list stream.Stream.events
          |> List.map (fun (e : Event.t) ->
                 { e with Event.stack = anon_stack st e.Event.stack })
        in
        let threads =
          List.map (fun (tid, name) -> (tid, anon_thread st name)) stream.Stream.threads
        in
        let instances =
          List.map
            (fun (i : Scenario.instance) ->
              { i with Scenario.scenario = anon_scenario st ~keep:keep_scenarios i.scenario })
            stream.Stream.instances
        in
        Stream.create ~id:stream.Stream.id ~events ~instances ~threads)
      c.Corpus.streams
  in
  let specs =
    List.map
      (fun (s : Scenario.spec) ->
        Scenario.spec
          ~name:(anon_scenario st ~keep:keep_scenarios s.name)
          ~tfast:s.tfast ~tslow:s.tslow)
      c.Corpus.specs
  in
  let mapping =
    List.concat
      [
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.modules [];
        Hashtbl.fold (fun (m, f) v acc -> (m ^ "!" ^ f, v) :: acc) st.functions [];
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.threads [];
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.scenarios [];
      ]
    |> List.sort compare
  in
  (Corpus.create ~streams ~specs, mapping)
