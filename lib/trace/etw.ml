exception Parse_error of { line : int; message : string }

let fail line fmt =
  Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

(* --- tokenizer: comma-separated fields, double quotes protect commas --- *)

let split_fields line_no raw =
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let in_quotes = ref false in
  let flush () =
    fields := String.trim (Buffer.contents buf) :: !fields;
    Buffer.clear buf
  in
  String.iter
    (fun c ->
      match c with
      | '"' -> in_quotes := not !in_quotes
      | ',' when not !in_quotes -> flush ()
      | c -> Buffer.add_char buf c)
    raw;
  if !in_quotes then fail line_no "unterminated quote";
  flush ();
  List.rev !fields

let int_field line_no what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail line_no "invalid %s: %S" what s

let stack_field s =
  if s = "" then Callstack.of_list []
  else Callstack.of_strings (String.split_on_char ';' s)

(* --- conversion state --- *)

type blocked = { since : Dputil.Time.t; bstack : Callstack.t }

type open_instance = { scenario : string; itid : int; t0 : Dputil.Time.t }

type state = {
  mutable line : int;
  mutable events : Event.t list;
  mutable instances : Scenario.instance list;
  mutable threads : (int * string) list;
  blocked : (int, blocked) Hashtbl.t;
  (* Per-thread run coalescing: stack, first sample ts, sample count. *)
  running : (int, Callstack.t * Dputil.Time.t * int) Hashtbl.t;
  open_marks : (string * int, open_instance) Hashtbl.t;
  devices : (string, int) Hashtbl.t;
  mutable next_device_tid : int;
  sample_period : Dputil.Time.t;
}

let emit st ~kind ~stack ~ts ~cost ~tid ~wtid =
  st.events <- { Event.id = 0; kind; stack; ts; cost; tid; wtid } :: st.events

(* [clamp] bounds the run's end: a context switch at time T proves the
   thread stopped running no later than T, even though its last sample
   nominally covers a full period. *)
let flush_running ?clamp st tid =
  match Hashtbl.find_opt st.running tid with
  | None -> ()
  | Some (stack, first_ts, n) ->
    Hashtbl.remove st.running tid;
    let cost =
      let nominal = n * st.sample_period in
      match clamp with Some t -> min nominal (t - first_ts) | None -> nominal
    in
    if cost > 0 then
      emit st ~kind:Event.Running ~stack ~ts:first_ts ~cost ~tid ~wtid:(-1)

let on_sample st ts tid stack =
  match Hashtbl.find_opt st.running tid with
  | Some (prev_stack, first_ts, n)
    when Callstack.equal prev_stack stack
         && ts - (first_ts + (n * st.sample_period)) < st.sample_period ->
    Hashtbl.replace st.running tid (prev_stack, first_ts, n + 1)
  | Some _ ->
    flush_running st tid;
    Hashtbl.replace st.running tid (stack, ts, 1)
  | None -> Hashtbl.replace st.running tid (stack, ts, 1)

let on_cswitch st ts old_tid old_state stack =
  if String.lowercase_ascii old_state = "waiting" then begin
    flush_running ~clamp:ts st old_tid;
    Hashtbl.replace st.blocked old_tid { since = ts; bstack = stack }
  end

let on_ready st ts by target stack =
  emit st ~kind:Event.Unwait ~stack ~ts ~cost:0 ~tid:by ~wtid:target;
  match Hashtbl.find_opt st.blocked target with
  | Some { since; bstack } ->
    Hashtbl.remove st.blocked target;
    emit st ~kind:Event.Wait ~stack:bstack ~ts:since ~cost:(ts - since)
      ~tid:target ~wtid:(-1)
  | None -> ()

let device_tid st name =
  match Hashtbl.find_opt st.devices name with
  | Some tid -> tid
  | None ->
    let tid = st.next_device_tid in
    st.next_device_tid <- tid + 1;
    Hashtbl.replace st.devices name tid;
    st.threads <- (tid, name) :: st.threads;
    tid

let on_diskio st start dur name tid =
  let tid =
    match tid with
    | Some tid ->
      if not (Hashtbl.mem st.devices name) then begin
        Hashtbl.replace st.devices name tid;
        if not (List.mem_assoc tid st.threads) then
          st.threads <- (tid, name) :: st.threads
      end;
      tid
    | None -> device_tid st name
  in
  emit st ~kind:Event.Hw_service
    ~stack:(Callstack.of_list [ Signature.hw_service name ])
    ~ts:start ~cost:dur ~tid ~wtid:(-1)

let on_mark st ts scenario tid edge =
  match String.lowercase_ascii edge with
  | "start" ->
    if Hashtbl.mem st.open_marks (scenario, tid) then
      fail st.line "Mark Start for already-open instance %s/%d" scenario tid;
    Hashtbl.replace st.open_marks (scenario, tid) { scenario; itid = tid; t0 = ts }
  | "stop" -> (
    match Hashtbl.find_opt st.open_marks (scenario, tid) with
    | Some { scenario; itid; t0 } ->
      Hashtbl.remove st.open_marks (scenario, tid);
      if ts < t0 then fail st.line "Mark Stop before Start for %s/%d" scenario tid;
      st.instances <- { Scenario.scenario; tid = itid; t0; t1 = ts } :: st.instances
    | None -> fail st.line "Mark Stop without Start for %s/%d" scenario tid)
  | other -> fail st.line "unknown Mark edge %S" other

let parse_line st raw =
  let raw = String.trim raw in
  if raw = "" || raw.[0] = '#' then ()
  else
    let line = st.line in
    match split_fields line raw with
    | [ "SampledProfile"; ts; tid; stack ] ->
      on_sample st (int_field line "ts" ts) (int_field line "tid" tid)
        (stack_field stack)
    | [ "CSwitch"; ts; _new_tid; old_tid; old_state; stack ] ->
      on_cswitch st (int_field line "ts" ts)
        (int_field line "old_tid" old_tid)
        old_state (stack_field stack)
    | [ "ReadyThread"; ts; by; target; stack ] ->
      on_ready st (int_field line "ts" ts) (int_field line "by" by)
        (int_field line "target" target)
        (stack_field stack)
    | [ "DiskIo"; start; dur; name ] ->
      let dur = int_field line "dur" dur in
      if dur < 0 then fail line "negative DiskIo duration";
      on_diskio st (int_field line "start" start) dur name None
    | [ "DiskIo"; start; dur; name; tid ] ->
      let dur = int_field line "dur" dur in
      if dur < 0 then fail line "negative DiskIo duration";
      on_diskio st (int_field line "start" start) dur name
        (Some (int_field line "tid" tid))
    | [ "Mark"; ts; scenario; tid; edge ] ->
      on_mark st (int_field line "ts" ts) scenario (int_field line "tid" tid) edge
    | [ "Thread"; tid; name ] ->
      st.threads <- (int_field line "tid" tid, name) :: st.threads
    | kind :: _ -> fail line "unrecognised record %S" kind
    | [] -> ()

let stream_of_string ?(stream_id = 0) ?(sample_period = Dputil.Time.ms 1) text =
  let st =
    {
      line = 0;
      events = [];
      instances = [];
      threads = [];
      blocked = Hashtbl.create 32;
      running = Hashtbl.create 32;
      open_marks = Hashtbl.create 8;
      devices = Hashtbl.create 4;
      next_device_tid = 1_000_000;
      sample_period;
    }
  in
  List.iter
    (fun raw ->
      st.line <- st.line + 1;
      parse_line st raw)
    (String.split_on_char '\n' text);
  (* Flush coalesced runs; open waits and open marks are dropped as
     truncation artefacts. *)
  let tids = Hashtbl.fold (fun tid _ acc -> tid :: acc) st.running [] in
  List.iter (flush_running st) tids;
  Stream.create ~id:stream_id ~events:(List.rev st.events)
    ~instances:(List.rev st.instances)
    ~threads:(List.rev st.threads)

(* --- exporter --- *)

let quote_stack stack =
  let frames =
    Callstack.frames stack |> Array.to_list |> List.map Signature.name
  in
  "\"" ^ String.concat ";" frames ^ "\""

let to_dump ?(sample_period = Dputil.Time.ms 1) (st : Stream.t) =
  let buf = Buffer.create 65536 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "# xperf-style dump exported by driveperf";
  List.iter (fun (tid, name) -> line "Thread, %d, %s" tid name) st.Stream.threads;
  let index = Stream.index st in
  Array.iter
    (fun (e : Event.t) ->
      match e.Event.kind with
      | Event.Running ->
        (* One sample per period, same stack. *)
        let samples = max 1 (e.Event.cost / sample_period) in
        for i = 0 to samples - 1 do
          line "SampledProfile, %d, %d, %s"
            (e.Event.ts + (i * sample_period))
            e.Event.tid (quote_stack e.Event.stack)
        done
      | Event.Wait ->
        line "CSwitch, %d, 0, %d, Waiting, %s" e.Event.ts e.Event.tid
          (quote_stack e.Event.stack);
        (match Stream.find_waker index e with
        | Some u ->
          line "ReadyThread, %d, %d, %d, %s" u.Event.ts u.Event.tid e.Event.tid
            (quote_stack u.Event.stack)
        | None -> ())
      | Event.Unwait ->
        (* Emitted alongside the wait it closes; unwaits without a blocked
           target carry no information the importer can use. *)
        ()
      | Event.Hw_service ->
        let name =
          match Callstack.top e.Event.stack with
          | Some s -> Signature.name s
          | None -> "HwService"
        in
        line "DiskIo, %d, %d, %s, %d" e.Event.ts e.Event.cost name e.Event.tid)
    st.Stream.events;
  List.iter
    (fun (i : Scenario.instance) ->
      line "Mark, %d, %s, %d, Start" i.Scenario.t0 i.Scenario.scenario i.Scenario.tid;
      line "Mark, %d, %s, %d, Stop" i.Scenario.t1 i.Scenario.scenario i.Scenario.tid)
    st.Stream.instances;
  Buffer.contents buf

let load ?stream_id ?sample_period path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      stream_of_string ?stream_id ?sample_period text)
