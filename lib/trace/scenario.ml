type spec = { name : string; tfast : Dputil.Time.t; tslow : Dputil.Time.t }

type instance = {
  scenario : string;
  tid : int;
  t0 : Dputil.Time.t;
  t1 : Dputil.Time.t;
}

let spec ~name ~tfast ~tslow =
  if not (0 < tfast && tfast <= tslow) then
    invalid_arg "Scenario.spec: need 0 < tfast <= tslow";
  { name; tfast; tslow }

let duration i = i.t1 - i.t0

type speed_class = Fast | Middle | Slow

let classify spec i =
  let d = duration i in
  if d < spec.tfast then Fast else if d > spec.tslow then Slow else Middle

let pp_instance fmt i =
  Format.fprintf fmt "%s tid=%d [%a, %a] (%a)" i.scenario i.tid Dputil.Time.pp
    i.t0 Dputil.Time.pp i.t1 Dputil.Time.pp (duration i)
