type t = Signature.t array

let of_list frames = Array.of_list frames
let of_strings texts = Array.of_list (List.map Signature.of_string texts)
let frames t = t
let top t = if Array.length t = 0 then None else Some t.(0)
let depth = Array.length

let push f t =
  let n = Array.length t in
  let fresh = Array.make (n + 1) f in
  Array.blit t 0 fresh 1 n;
  fresh

let topmost_matching patterns t =
  let n = Array.length t in
  let rec go i =
    if i = n then None
    else if Signature.matches patterns t.(i) then Some t.(i)
    else go (i + 1)
  in
  go 0

let contains_matching patterns t =
  Array.exists (Signature.matches patterns) t

let contains f t = Array.exists (Signature.equal f) t

let equal a b = Array.length a = Array.length b && Array.for_all2 Signature.equal a b

let hash t = Hashtbl.hash (Array.map Signature.to_int t)

let pp fmt t =
  Format.fprintf fmt "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " <- ")
       Signature.pp)
    (Array.to_list t)
