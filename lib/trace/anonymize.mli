(** Corpus anonymisation.

    The paper anonymises driver, resource and scenario names before
    publication (Section 2.2: "Due to confidentiality, we anonymize the
    names..."). This module performs that scrubbing mechanically so a
    corpus collected on real systems can be shared: every module name,
    function name, thread name and (optionally) scenario name is replaced
    by a consistent opaque token.

    The renaming is {e structure-preserving}: module identity, the
    [".sys"] suffix (so component filters such as ["*.sys"] still select
    the same events), wait/unwait pairings and all timings survive — both
    analyses produce numerically identical results on the anonymised
    corpus, with renamed signatures. The ["kernel"] module and hardware
    dummy service names are left intact: they denote OS/hardware
    infrastructure, not the traced party's software. *)

type mapping = (string * string) list
(** original name → anonymised token (the "key escrow"), sorted. *)

val corpus : ?keep_scenarios:bool -> Corpus.t -> Corpus.t * mapping
(** Anonymise. Tokens are assigned in first-appearance order (streams in
    corpus order, events in stream order), so the same corpus always
    anonymises the same way. [keep_scenarios] (default [false]) preserves
    scenario names (they are often generic enough to publish, as in
    Table 1). *)
