(** Structural validation of trace streams.

    Real traces are messy (truncated sessions, lost events); analysis code
    must tolerate oddities, but the simulator must not produce any. The test
    suite runs every generated stream through [check] and requires a clean
    report; analysis entry points may use it defensively on loaded data. *)

type violation = {
  event_id : int option;  (** Offending event, when applicable. *)
  message : string;
}

val check : Stream.t -> violation list
(** All violations found:
    - events out of timestamp order or with ids not equal to their index;
    - negative costs; non-zero costs on unwaits;
    - [wtid] set on a non-unwait, missing or self-targeting on an unwait;
    - overlapping events on the same thread (a thread is sequential);
    - wait events with no pairing unwait inside their interval;
    - instances with [t1 < t0] or an initiating thread that is neither
      registered nor present in the events. *)

val check_corpus : Corpus.t -> (int * violation) list
(** Violations across all streams, tagged with the stream id. *)

val is_valid : Stream.t -> bool

val pp_violation : Format.formatter -> violation -> unit
