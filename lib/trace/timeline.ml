(* Rendering priority when several event kinds share a bucket. *)
let priority = function
  | ' ' -> 0
  | '.' -> 1
  | '|' -> 2
  | '~' -> 3
  | '#' -> 4
  | _ -> 5

let glyph (e : Event.t) =
  match e.Event.kind with
  | Event.Running -> '#'
  | Event.Wait -> '.'
  | Event.Unwait -> '|'
  | Event.Hw_service -> '~'

let render ?(width = 72) ?from_ts ?to_ts (st : Stream.t) =
  let events = st.Stream.events in
  if Array.length events = 0 then "(empty stream)\n"
  else begin
    let lo =
      match from_ts with Some t -> t | None -> events.(0).Event.ts
    in
    let hi =
      match to_ts with
      | Some t -> t
      | None -> Array.fold_left (fun acc e -> max acc (Event.end_ts e)) lo events
    in
    let hi = max hi (lo + 1) in
    let span = hi - lo in
    let bucket_of ts =
      let b = (ts - lo) * width / span in
      min (width - 1) (max 0 b)
    in
    (* Row per thread, created on first activity so ordering follows the
       narrative of the window. *)
    let rows : (int, Bytes.t) Hashtbl.t = Hashtbl.create 16 in
    let order = ref [] in
    let row tid =
      match Hashtbl.find_opt rows tid with
      | Some r -> r
      | None ->
        let r = Bytes.make width ' ' in
        Hashtbl.replace rows tid r;
        order := tid :: !order;
        r
    in
    Array.iter
      (fun (e : Event.t) ->
        if e.Event.ts <= hi && Event.end_ts e >= lo then begin
          let r = row e.Event.tid in
          let g = glyph e in
          let b0 = bucket_of (max lo e.Event.ts) in
          let b1 = bucket_of (min hi (max e.Event.ts (Event.end_ts e - 1))) in
          for b = b0 to b1 do
            if priority g > priority (Bytes.get r b) then Bytes.set r b g
          done
        end)
      events;
    let buf = Buffer.create 2048 in
    let label_width =
      List.fold_left
        (fun acc tid -> max acc (String.length (Stream.thread_name st tid)))
        6 !order
    in
    Buffer.add_string buf
      (Format.asprintf "timeline %a .. %a (%a per column)\n" Dputil.Time.pp lo
         Dputil.Time.pp hi Dputil.Time.pp
         (max 1 (span / width)));
    List.iter
      (fun tid ->
        Buffer.add_string buf
          (Printf.sprintf "%-*s |%s|\n" label_width
             (Stream.thread_name st tid)
             (Bytes.to_string (Hashtbl.find rows tid))))
      (List.rev !order);
    Buffer.add_string buf
      (Printf.sprintf "%-*s  %s\n" label_width ""
         (String.concat ""
            [ "#=running  .=wait  ~=hw service  |=unwait" ]));
    Buffer.contents buf
  end

let instance_window (i : Scenario.instance) =
  let margin = max 1 ((i.Scenario.t1 - i.Scenario.t0) / 20) in
  (max 0 (i.Scenario.t0 - margin), i.Scenario.t1 + margin)

let render_instance ?width (st : Stream.t) (i : Scenario.instance) =
  let from_ts, to_ts = instance_window i in
  render ?width ~from_ts ~to_ts st
