(** Plain-text table rendering for reports and benches.

    Every table in the paper's evaluation is re-emitted through this module
    so that the bench output reads like the paper's tables. *)

type align = Left | Right

type t

val create : ?title:string -> (string * align) list -> t
(** [create ~title columns] starts a table with the given header cells. *)

val add_row : t -> string list -> unit
(** Append a row; the row must have exactly as many cells as the header.
    @raise Invalid_argument otherwise. *)

val add_separator : t -> unit
(** Append a horizontal rule (used before summary rows). *)

val render : t -> string
(** Render with column widths fitted to content. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)
