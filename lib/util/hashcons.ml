module type KEY = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
end

module Make (K : KEY) = struct
  module H = Hashtbl.Make (K)

  type t = {
    lock : Mutex.t;
    table : K.t H.t;
    mutable by_id : K.t option array;
    mutable next : int;
  }

  let create ?(capacity = 256) () =
    {
      lock = Mutex.create ();
      table = H.create capacity;
      by_id = Array.make (max 1 capacity) None;
      next = 0;
    }

  let grow t =
    let cap = Array.length t.by_id in
    let fresh = Array.make (2 * cap) None in
    Array.blit t.by_id 0 fresh 0 cap;
    t.by_id <- fresh

  let intern t probe ~build =
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
    match H.find_opt t.table probe with
    | Some v -> v
    | None ->
      let id = t.next in
      let v = build id in
      if id = Array.length t.by_id then grow t;
      t.by_id.(id) <- Some v;
      (* Key by the canonical value, not the probe: the probe may alias
         scratch buffers the caller will overwrite. *)
      H.replace t.table v v;
      t.next <- id + 1;
      v

  let get t id =
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
    if id < 0 || id >= t.next then
      invalid_arg (Printf.sprintf "Hashcons.get: unknown id %d" id)
    else
      match t.by_id.(id) with
      | Some v -> v
      | None -> invalid_arg (Printf.sprintf "Hashcons.get: unknown id %d" id)

  let size t =
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () -> t.next
end
