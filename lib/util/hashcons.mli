(** Generic hash-consing: map each distinct value to one canonical
    physical representative carrying a dense non-negative id.

    Where {!Interner} interns strings, this interns arbitrary keys under a
    caller-supplied content equality/hash — the mining engine uses it to
    intern Signature Set Tuples so pattern tables can be keyed by a dense
    int with O(1) equality instead of re-hashing three signature arrays
    per probe.

    Tables are domain-safe: interning from several pool workers at once is
    serialised on an internal mutex (ids are handed out under the lock, so
    a value interned by one domain is visible, with the same id, to every
    other). Ids are dense and stable for the table's lifetime, but their
    numeric order depends on first-sight order — deterministic output must
    never sort by id. *)

module type KEY = sig
  type t

  val equal : t -> t -> bool
  (** Content equality. Must ignore the id slot of [t], if any. *)

  val hash : t -> int
  (** Content hash, consistent with [equal]. *)
end

module Make (K : KEY) : sig
  type t

  val create : ?capacity:int -> unit -> t

  val intern : t -> K.t -> build:(int -> K.t) -> K.t
  (** [intern t probe ~build] returns the canonical value content-equal to
      [probe], calling [build id] exactly once on first sight to construct
      it (the result must be content-equal to [probe]; [probe] itself is
      never retained, so it may alias reusable scratch buffers). *)

  val get : t -> int -> K.t
  (** Canonical value for [id].
      @raise Invalid_argument on an id never produced by [t]. *)

  val size : t -> int
  (** Number of distinct values interned so far. *)
end
