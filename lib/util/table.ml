type align = Left | Right

type row = Cells of string list | Separator

type t = {
  title : string option;
  header : string list;
  aligns : align list;
  mutable rows : row list; (* reversed *)
}

let create ?title columns =
  { title; header = List.map fst columns; aligns = List.map snd columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.header then
    invalid_arg "Table.add_row: cell count mismatch";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.header) in
  let measure = function
    | Separator -> ()
    | Cells cells ->
      List.iteri
        (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c)
        cells
  in
  List.iter measure rows;
  let buf = Buffer.create 1024 in
  let aligns = Array.of_list t.aligns in
  let emit_cells cells =
    Buffer.add_string buf "| ";
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf " | ";
        Buffer.add_string buf (pad aligns.(i) widths.(i) c))
      cells;
    Buffer.add_string buf " |\n"
  in
  let rule () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  (match t.title with
  | Some title ->
    Buffer.add_string buf title;
    Buffer.add_char buf '\n'
  | None -> ());
  rule ();
  emit_cells t.header;
  rule ();
  List.iter (function Separator -> rule () | Cells cells -> emit_cells cells) rows;
  rule ();
  Buffer.contents buf

let print t = print_string (render t)
