type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let str s = Str s
let int i = Int i
let float f = Float f
let time (t : Time.t) = Int t

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else if Float.is_finite f then
    (* Shortest representation that round-trips. *)
    let s = Printf.sprintf "%.17g" f in
    let short = Printf.sprintf "%.12g" f in
    Buffer.add_string buf (if float_of_string short = f then short else s)
  else Buffer.add_string buf "null"

let to_buffer ~minify buf v =
  let nl indent =
    if not minify then begin
      Buffer.add_char buf '\n';
      for _ = 1 to indent do
        Buffer.add_string buf "  "
      done
    end
  in
  let sep () = if minify then Buffer.add_char buf ':' else Buffer.add_string buf ": " in
  let rec go indent = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> number buf f
    | Str s -> escape buf s
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          nl (indent + 1);
          go (indent + 1) item)
        items;
      nl indent;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj members ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          nl (indent + 1);
          escape buf k;
          sep ();
          go (indent + 1) item)
        members;
      nl indent;
      Buffer.add_char buf '}'
  in
  go 0 v

let to_string ?(minify = false) v =
  let buf = Buffer.create 4096 in
  to_buffer ~minify buf v;
  if not minify then Buffer.add_char buf '\n';
  Buffer.contents buf

let output ?minify oc v = output_string oc (to_string ?minify v)
