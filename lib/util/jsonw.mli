(** Minimal JSON construction.

    A tiny value AST plus a deterministic printer — enough for the
    machine-readable twins of the report tables ([driveperf report
    --json], [analyze --json]) without an external dependency. Object
    member order is preserved as given, numbers print via OCaml's
    shortest-roundtrip float formatting (integers stay integral), and
    strings are escaped per RFC 8259, so equal values always serialise
    to equal bytes — diffable output. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val str : string -> t
val int : int -> t
val float : float -> t
(** Non-finite floats serialise as [null] (JSON has no NaN/inf). *)

val time : Time.t -> t
(** Microsecond count as an integer. *)

val to_string : ?minify:bool -> t -> string
(** Serialise. Default is pretty-printed with two-space indentation and
    a trailing newline; [~minify:true] emits one line, no spaces. *)

val output : ?minify:bool -> out_channel -> t -> unit
