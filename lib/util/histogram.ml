type t = {
  lo : float;
  hi : float;
  bins : int array;
}

let create ?(buckets = 20) samples =
  if buckets < 1 then invalid_arg "Histogram.create: buckets must be >= 1";
  if Array.length samples = 0 then { lo = 0.0; hi = 0.0; bins = [||] }
  else begin
    let lo = Array.fold_left Float.min samples.(0) samples in
    let hi = Array.fold_left Float.max samples.(0) samples in
    if lo = hi then { lo; hi; bins = [| Array.length samples |] }
    else begin
      let bins = Array.make buckets 0 in
      let width = (hi -. lo) /. float_of_int buckets in
      Array.iter
        (fun x ->
          let b = int_of_float ((x -. lo) /. width) in
          let b = min (buckets - 1) (max 0 b) in
          bins.(b) <- bins.(b) + 1)
        samples;
      { lo; hi; bins }
    end
  end

let bucket_count t = Array.length t.bins

let counts t = Array.copy t.bins

let bounds t =
  let n = Array.length t.bins in
  if n = 0 then [||]
  else begin
    let width = (t.hi -. t.lo) /. float_of_int n in
    Array.init n (fun i ->
        ( t.lo +. (float_of_int i *. width),
          if i = n - 1 then t.hi else t.lo +. (float_of_int (i + 1) *. width) ))
  end

let default_label = Printf.sprintf "%.0f"

let render_lines ?(width = 50) ?(label = default_label) ~annotate t =
  if Array.length t.bins = 0 then "(no samples)\n"
  else begin
    let peak = Array.fold_left max 1 t.bins in
    let bs = bounds t in
    let buf = Buffer.create 1024 in
    let label_width =
      Array.fold_left
        (fun acc (lo, hi) ->
          max acc (String.length (Printf.sprintf "%s .. %s" (label lo) (label hi))))
        0 bs
    in
    Array.iteri
      (fun i (lo, hi) ->
        let bar = t.bins.(i) * width / peak in
        Buffer.add_string buf
          (Printf.sprintf "%-*s |%-*s %d%s\n" label_width
             (Printf.sprintf "%s .. %s" (label lo) (label hi))
             width
             (String.make bar '#')
             t.bins.(i) (annotate i lo hi)))
      bs;
    Buffer.contents buf
  end

let render ?width ?label t =
  render_lines ?width ?label ~annotate:(fun _ _ _ -> "") t

let render_with_markers ?width ~markers t =
  let n = Array.length t.bins in
  let annotate i lo hi =
    let inside (_, v) =
      (v >= lo && v < hi) || (i = n - 1 && v = hi)
    in
    match List.filter inside markers with
    | [] -> ""
    | hits ->
      "  <- " ^ String.concat ", " (List.map (fun (name, _) -> name) hits)
  in
  render_lines ?width ~annotate t
