type t = {
  lo : float;
  hi : float;
  bins : int array;
}

let create ?(buckets = 20) samples =
  if buckets < 1 then invalid_arg "Histogram.create: buckets must be >= 1";
  (* NaN samples carry no position on the axis: drop them up front (the
     old Float.min/Float.max folds let one NaN poison lo/hi and send
     every bucket index to 0). All-NaN degrades to the empty case. *)
  let samples =
    if Array.exists Float.is_nan samples then begin
      Logf.debug "Histogram.create: dropping %d NaN sample(s)"
        (Array.fold_left
           (fun n x -> if Float.is_nan x then n + 1 else n)
           0 samples);
      Array.of_list
        (List.filter (fun x -> not (Float.is_nan x)) (Array.to_list samples))
    end
    else samples
  in
  if Array.length samples = 0 then { lo = 0.0; hi = 0.0; bins = [||] }
  else begin
    let lo = Array.fold_left Float.min samples.(0) samples in
    let hi = Array.fold_left Float.max samples.(0) samples in
    if lo = hi then { lo; hi; bins = [| Array.length samples |] }
    else if not (Float.is_finite (hi -. lo)) then begin
      (* Infinite range: equal-width bucketing is meaningless (width is
         infinite or NaN and every index computation degenerates), so
         fall back to the single-bucket shape. *)
      Logf.debug
        "Histogram.create: infinite sample range [%g, %g], using one bucket"
        lo hi;
      { lo; hi; bins = [| Array.length samples |] }
    end
    else begin
      let bins = Array.make buckets 0 in
      let width = (hi -. lo) /. float_of_int buckets in
      Array.iter
        (fun x ->
          let b = int_of_float ((x -. lo) /. width) in
          let b = min (buckets - 1) (max 0 b) in
          bins.(b) <- bins.(b) + 1)
        samples;
      { lo; hi; bins }
    end
  end

let bucket_count t = Array.length t.bins

let counts t = Array.copy t.bins

let bounds t =
  let n = Array.length t.bins in
  if n = 0 then [||]
  else begin
    let width = (t.hi -. t.lo) /. float_of_int n in
    (* Pin the outer edges to the exact sample extremes: beyond closing
       the last bin, this keeps the endpoints NaN-free when the range is
       infinite (0.0 *. infinity is NaN). *)
    Array.init n (fun i ->
        ( (if i = 0 then t.lo else t.lo +. (float_of_int i *. width)),
          if i = n - 1 then t.hi else t.lo +. (float_of_int (i + 1) *. width) ))
  end

let default_label = Printf.sprintf "%.0f"

let render_lines ?(width = 50) ?(label = default_label) ~annotate t =
  if Array.length t.bins = 0 then "(no samples)\n"
  else begin
    let peak = Array.fold_left max 1 t.bins in
    let bs = bounds t in
    let buf = Buffer.create 1024 in
    let label_width =
      Array.fold_left
        (fun acc (lo, hi) ->
          max acc (String.length (Printf.sprintf "%s .. %s" (label lo) (label hi))))
        0 bs
    in
    Array.iteri
      (fun i (lo, hi) ->
        let bar = t.bins.(i) * width / peak in
        Buffer.add_string buf
          (Printf.sprintf "%-*s |%-*s %d%s\n" label_width
             (Printf.sprintf "%s .. %s" (label lo) (label hi))
             width
             (String.make bar '#')
             t.bins.(i) (annotate i lo hi)))
      bs;
    Buffer.contents buf
  end

let render ?width ?label t =
  render_lines ?width ?label ~annotate:(fun _ _ _ -> "") t

let render_with_markers ?width ~markers t =
  let n = Array.length t.bins in
  let annotate i lo hi =
    let inside (_, v) =
      (v >= lo && v < hi) || (i = n - 1 && v = hi)
    in
    match List.filter inside markers with
    | [] -> ""
    | hits ->
      "  <- " ^ String.concat ", " (List.map (fun (name, _) -> name) hits)
  in
  render_lines ?width ~annotate t
