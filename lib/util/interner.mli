(** String interning.

    Function signatures appear millions of times across a corpus; interning
    maps each distinct string to a dense non-negative id so that hot paths
    (graph keys, signature sets, pattern hashing) work on ints. An interner
    is an append-only bijection; ids are stable for its lifetime. *)

type t

val create : ?capacity:int -> unit -> t

val intern : t -> string -> int
(** [intern t s] returns the id of [s], allocating a fresh one on first
    sight. *)

val find_opt : t -> string -> int option
(** Lookup without allocating an id. *)

val name : t -> int -> string
(** [name t id] is the string for [id].
    @raise Invalid_argument on an id never produced by [t]. *)

val size : t -> int
(** Number of distinct interned strings. *)

val iter : t -> (int -> string -> unit) -> unit
(** Iterate ids in increasing order. *)
