type t = { source : string; lowered : string }

let compile source = { source; lowered = String.lowercase_ascii source }

let pattern t = t.source

(* Iterative glob match with single-star backtracking: O(|p| * |s|) worst
   case, linear in practice. [si]/[pi] are cursors; on mismatch after a '*'
   we resume at [star_pi + 1] with the star consuming one more character. *)
let match_lowered p s =
  let np = String.length p and ns = String.length s in
  let rec only_stars i = i = np || (p.[i] = '*' && only_stars (i + 1)) in
  let rec go si pi star_pi star_si =
    if si = ns then only_stars pi
    else if pi < np && p.[pi] = '*' then go si (pi + 1) pi si
    else if pi < np && (p.[pi] = '?' || p.[pi] = s.[si]) then
      go (si + 1) (pi + 1) star_pi star_si
    else if star_pi >= 0 then go (star_si + 1) (star_pi + 1) star_pi (star_si + 1)
    else false
  in
  go 0 0 (-1) (-1)

let matches t s = match_lowered t.lowered (String.lowercase_ascii s)

let matches_any ts s =
  let lowered = String.lowercase_ascii s in
  List.exists (fun t -> match_lowered t.lowered lowered) ts
