type t = {
  by_name : (string, int) Hashtbl.t;
  mutable by_id : string array;
  mutable next : int;
}

let create ?(capacity = 256) () =
  { by_name = Hashtbl.create capacity; by_id = Array.make capacity ""; next = 0 }

let grow t =
  let cap = Array.length t.by_id in
  let fresh = Array.make (2 * cap) "" in
  Array.blit t.by_id 0 fresh 0 cap;
  t.by_id <- fresh

let intern t s =
  match Hashtbl.find_opt t.by_name s with
  | Some id -> id
  | None ->
    let id = t.next in
    if id = Array.length t.by_id then grow t;
    t.by_id.(id) <- s;
    Hashtbl.add t.by_name s id;
    t.next <- id + 1;
    id

let find_opt t s = Hashtbl.find_opt t.by_name s

let name t id =
  if id < 0 || id >= t.next then
    invalid_arg (Printf.sprintf "Interner.name: unknown id %d" id)
  else t.by_id.(id)

let size t = t.next

let iter t f =
  for id = 0 to t.next - 1 do
    f id t.by_id.(id)
  done
