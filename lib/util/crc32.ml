(* CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320), the zlib
   convention: chaining [update ~crc] over consecutive chunks equals one
   pass over their concatenation, and the empty string has CRC 0. *)

let table =
  let t = Array.make 256 0 in
  for n = 0 to 255 do
    let c = ref n in
    for _ = 0 to 7 do
      c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
    done;
    t.(n) <- !c
  done;
  t

let feed c byte = table.((c lxor byte) land 0xff) lxor (c lsr 8)

let bytes_sub ?(crc = 0) b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Crc32.bytes_sub";
  let c = ref (crc lxor 0xffffffff) in
  for i = pos to pos + len - 1 do
    c := feed !c (Char.code (Bytes.unsafe_get b i))
  done;
  !c lxor 0xffffffff

let string ?(crc = 0) s =
  let c = ref (crc lxor 0xffffffff) in
  String.iter (fun ch -> c := feed !c (Char.code ch)) s;
  !c lxor 0xffffffff
