(** Descriptive statistics over float samples.

    Used by the evaluation layer for summarising distributions of scenario
    durations, pattern costs and coverage curves. *)

val mean : float array -> float
(** Arithmetic mean; 0 for an empty array. *)

val stddev : float array -> float
(** Population standard deviation; 0 for fewer than two samples. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0,100\]], linear interpolation between
    order statistics. The input need not be sorted. 0 for an empty array. *)

val median : float array -> float

val sum : float array -> float

val minimum : float array -> float
(** 0 for an empty array. *)

val maximum : float array -> float
(** 0 for an empty array. *)

val ratio : float -> float -> float
(** [ratio a b] is [a /. b], or 0 when [b = 0]; total division for report
    code where an empty denominator means "no data", not an error. *)

val pct : float -> float -> float
(** [pct part whole] is [100 *. ratio part whole]. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
}

val summarize : float array -> summary

val pp_summary : Format.formatter -> summary -> unit
