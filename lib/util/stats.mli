(** Descriptive statistics over float samples.

    Used by the evaluation layer for summarising distributions of scenario
    durations, pattern costs and coverage curves.

    {b NaN policy}: every statistic except {!sum} ignores NaN samples — a
    NaN duration is a measurement hole, not data, and [Float.min]/
    [Float.max]/sort folds would otherwise silently poison whole
    summaries. An all-NaN input behaves like an empty one (the documented
    empty-array defaults apply), and {!summarize}'s [count] is the number
    of non-NaN samples. {!sum} stays a plain IEEE fold (NaN in → NaN
    out) so totals still surface upstream poisoning. *)

val mean : float array -> float
(** Arithmetic mean of the non-NaN samples; 0 when none. *)

val stddev : float array -> float
(** Population standard deviation of the non-NaN samples; 0 for fewer
    than two. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0,100\]], linear interpolation between
    order statistics of the non-NaN samples (sorted with [Float.compare]).
    The input need not be sorted. 0 when no non-NaN samples. *)

val median : float array -> float

val sum : float array -> float
(** Plain left-to-right IEEE sum; the one statistic that does {e not}
    filter NaN. *)

val minimum : float array -> float
(** Smallest non-NaN sample; 0 when none. *)

val maximum : float array -> float
(** Largest non-NaN sample; 0 when none. *)

val ratio : float -> float -> float
(** [ratio a b] is [a /. b], or 0 when [b = 0]; total division for report
    code where an empty denominator means "no data", not an error. *)

val pct : float -> float -> float
(** [pct part whole] is [100 *. ratio part whole]. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
}

val summarize : float array -> summary
(** All fields over the non-NaN samples; [count] is their number. *)

val pp_summary : Format.formatter -> summary -> unit
