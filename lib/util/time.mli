(** Integer time in microseconds.

    ETW timestamps have 100 ns resolution; the analysis in the paper works at
    millisecond scale. Microseconds keep every quantity of interest exactly
    representable in an OCaml [int] (2^62 µs is ~146,000 years) and avoid all
    floating-point drift in aggregation. *)

type t = int
(** A timestamp or a duration, in microseconds. *)

val zero : t

val us : int -> t
(** [us n] is [n] microseconds. *)

val ms : int -> t
(** [ms n] is [n] milliseconds. *)

val sec : int -> t
(** [sec n] is [n] seconds. *)

val of_ms_float : float -> t
(** Convert a float number of milliseconds, rounding to nearest µs. *)

val to_ms_float : t -> float
(** Duration expressed as float milliseconds. *)

val to_sec_float : t -> float

val round_to : t -> granularity:t -> t
(** [round_to d ~granularity] rounds [d] up to a positive multiple of
    [granularity]; models sampling-period quantisation. Requires
    [granularity > 0]. A zero or negative duration rounds to one period. *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering with an adaptive unit, e.g. ["803.2ms"]. *)

val to_string : t -> string
