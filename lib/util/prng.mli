(** Deterministic, splittable pseudo-random number generator.

    The whole reproduction is seeded: every stochastic component receives an
    explicit generator, so a corpus is a pure function of one 64-bit seed.
    The core is SplitMix64 (Steele, Lea & Flood, OOPSLA'14), which has a
    cheap, well-distributed [split] making it easy to give independent
    sub-streams to independently generated entities (per trace stream, per
    scenario instance, per thread). *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] makes a fresh generator from a 64-bit seed. *)

val of_int : int -> t
(** [of_int seed] is [create (Int64.of_int seed)]. *)

val split : t -> t
(** [split g] draws from [g] and returns an independent generator; [g]
    advances. Sub-streams obtained by successive splits are independent. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] draws uniformly in [\[0, bound)]. Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] draws uniformly in [\[lo, hi\]] (inclusive).
    Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float g bound] draws uniformly in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance g p] is true with probability [p] (clamped to [\[0,1\]]). *)

val exponential : t -> mean:float -> float
(** Exponentially distributed draw with the given mean. *)

val lognormal : t -> median:float -> sigma:float -> float
(** Log-normal draw: [exp (mu + sigma * z)] with [mu = log median]. Heavy
    right tail; the standard model for service-time outliers. *)

val pareto : t -> scale:float -> alpha:float -> float
(** Pareto draw with minimum [scale] and tail index [alpha]. *)

val choose : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val choose_weighted : t -> (float * 'a) list -> 'a
(** Weighted choice; weights must be non-negative with a positive sum. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
