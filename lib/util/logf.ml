(* The level gate lives here, below every other library, so that dputil
   modules (and anything else) can emit leveled diagnostics without
   depending on the observability layer; Obs.Log installs the real sink
   and drives the level. Formatting only happens past the gate, so a
   disabled debug line costs one int comparison. *)

type level = Error | Warn | Info | Debug

let severity = function Error -> 0 | Warn -> 1 | Info -> 2 | Debug -> 3

let level_name = function
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

(* Default threshold Warn: errors and warnings reach stderr out of the
   box, info/debug are silent until someone opts in. *)
let threshold = Atomic.make (severity Warn)

let set_level l = Atomic.set threshold (severity l)

let level () =
  match Atomic.get threshold with
  | 0 -> Error
  | 1 -> Warn
  | 2 -> Info
  | _ -> Debug

let enabled l = severity l <= Atomic.get threshold

(* One mutex around the sink keeps lines from different domains whole. *)
let sink_mutex = Mutex.create ()

let default_sink l msg =
  Printf.eprintf "driveperf: %s: %s\n%!" (level_name l) msg

let sink = ref default_sink

let set_sink f = sink := f

let emit l msg =
  Mutex.lock sink_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock sink_mutex)
    (fun () -> !sink l msg)

let logf l fmt =
  if enabled l then Format.kasprintf (emit l) fmt
  else Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let error fmt = logf Error fmt
let warn fmt = logf Warn fmt
let info fmt = logf Info fmt
let debug fmt = logf Debug fmt
