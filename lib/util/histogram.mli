(** ASCII histograms for duration distributions.

    Analysts eyeball the fast/middle/slow structure of a scenario before
    trusting thresholds; a terminal histogram is the quickest way. *)

type t

val create : ?buckets:int -> float array -> t
(** Bucket the samples into [buckets] (default 20) equal-width bins
    between the sample min and max. An empty input yields an empty
    histogram; a constant input yields one full bin. NaN samples are
    dropped (all-NaN behaves like empty) and a sample range too wide for
    a finite bucket width (e.g. spanning both infinities) collapses to
    the single-bucket case; both degradations log one debug line. *)

val bucket_count : t -> int

val counts : t -> int array
(** Per-bin sample counts. *)

val bounds : t -> (float * float) array
(** Per-bin [lo, hi) ranges (the last bin is closed). *)

val render : ?width:int -> ?label:(float -> string) -> t -> string
(** Horizontal bars scaled to [width] (default 50) characters, one line
    per bin: [label lo .. label hi | ####### count]. [label] defaults to
    [Printf.sprintf "%.0f"]. *)

val render_with_markers : ?width:int -> markers:(string * float) list -> t -> string
(** Like {!render}, appending named markers (e.g. [("T_fast", 300.)]) to
    the bins containing them — how thresholds sit inside a distribution. *)
