(* NaN policy: every order/moment statistic ignores NaN samples (they
   carry no ordering or magnitude information — a NaN duration is a
   measurement hole, not data). [sum] alone stays a plain IEEE fold, so
   totals still surface upstream poisoning instead of hiding it. *)

let count_non_nan xs =
  Array.fold_left (fun n x -> if Float.is_nan x then n else n + 1) 0 xs

let drop_nan xs =
  if count_non_nan xs = Array.length xs then xs
  else
    Array.of_list
      (List.filter (fun x -> not (Float.is_nan x)) (Array.to_list xs))

let sum xs = Array.fold_left ( +. ) 0.0 xs

let mean xs =
  let xs = drop_nan xs in
  let n = Array.length xs in
  if n = 0 then 0.0 else sum xs /. float_of_int n

let stddev xs =
  let xs = drop_nan xs in
  let n = Array.length xs in
  if n < 2 then 0.0
  else
    let m = mean xs in
    let acc =
      Array.fold_left
        (fun a x ->
          let d = x -. m in
          a +. (d *. d))
        0.0 xs
    in
    sqrt (acc /. float_of_int n)

let percentile xs p =
  let xs = drop_nan xs in
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let sorted = Array.copy xs in
    (* [Float.compare], not polymorphic [compare]: the generic compare
       boxes every element and its NaN ordering is representation-
       dependent — with NaN already filtered the two agree on the order,
       but only [Float.compare] says so by contract. *)
    Array.sort Float.compare sorted;
    let p = Float.max 0.0 (Float.min 100.0 p) in
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then sorted.(lo)
    else
      let frac = rank -. float_of_int lo in
      sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let median xs = percentile xs 50.0

(* Float.min/Float.max propagate NaN from either argument, so a single
   NaN sample used to poison the whole fold; fold over the filtered
   samples instead. *)
let minimum xs =
  let xs = drop_nan xs in
  if Array.length xs = 0 then 0.0 else Array.fold_left Float.min xs.(0) xs

let maximum xs =
  let xs = drop_nan xs in
  if Array.length xs = 0 then 0.0 else Array.fold_left Float.max xs.(0) xs

let ratio a b = if b = 0.0 then 0.0 else a /. b
let pct part whole = 100.0 *. ratio part whole

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
}

let summarize xs =
  let xs = drop_nan xs in
  {
    count = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = minimum xs;
    p50 = percentile xs 50.0;
    p90 = percentile xs 90.0;
    p99 = percentile xs 99.0;
    max = maximum xs;
  }

let pp_summary fmt s =
  Format.fprintf fmt
    "n=%d mean=%.2f sd=%.2f min=%.2f p50=%.2f p90=%.2f p99=%.2f max=%.2f"
    s.count s.mean s.stddev s.min s.p50 s.p90 s.p99 s.max
