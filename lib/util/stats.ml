let sum xs = Array.fold_left ( +. ) 0.0 xs

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else sum xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (acc /. float_of_int n)

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let sorted = Array.copy xs in
    Array.sort compare sorted;
    let p = Float.max 0.0 (Float.min 100.0 p) in
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then sorted.(lo)
    else
      let frac = rank -. float_of_int lo in
      sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let median xs = percentile xs 50.0

let minimum xs = if Array.length xs = 0 then 0.0 else Array.fold_left Float.min xs.(0) xs
let maximum xs = if Array.length xs = 0 then 0.0 else Array.fold_left Float.max xs.(0) xs

let ratio a b = if b = 0.0 then 0.0 else a /. b
let pct part whole = 100.0 *. ratio part whole

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
}

let summarize xs =
  {
    count = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = minimum xs;
    p50 = percentile xs 50.0;
    p90 = percentile xs 90.0;
    p99 = percentile xs 99.0;
    max = maximum xs;
  }

let pp_summary fmt s =
  Format.fprintf fmt
    "n=%d mean=%.2f sd=%.2f min=%.2f p50=%.2f p90=%.2f p99=%.2f max=%.2f"
    s.count s.mean s.stddev s.min s.p50 s.p90 s.p99 s.max
