type t = int

let zero = 0
let us n = n
let ms n = n * 1_000
let sec n = n * 1_000_000
let of_ms_float f = int_of_float (Float.round (f *. 1_000.0))
let to_ms_float t = float_of_int t /. 1_000.0
let to_sec_float t = float_of_int t /. 1_000_000.0

let round_to d ~granularity =
  assert (granularity > 0);
  if d <= 0 then granularity
  else (d + granularity - 1) / granularity * granularity

let pp fmt t =
  let a = abs t in
  if a < 1_000 then Format.fprintf fmt "%dus" t
  else if a < 1_000_000 then Format.fprintf fmt "%.1fms" (to_ms_float t)
  else Format.fprintf fmt "%.2fs" (to_sec_float t)

let to_string t = Format.asprintf "%a" pp t
