(* SplitMix64. Reference: Steele, Lea & Flood, "Fast Splittable
   Pseudorandom Number Generators", OOPSLA'14. The gamma used for [split]
   is the canonical odd constant; mixing uses the murmur-style finalizer. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = seed }

let of_int seed =
  (* Root-generator creations are the reproducibility anchors of a run;
     visible under --log-level debug, silent otherwise. *)
  Logf.debug "prng: root generator seeded with %d" seed;
  create (Int64.of_int seed)

let next_int64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix64 g.state

let split g =
  let seed = next_int64 g in
  create (mix64 seed)

(* Non-negative 62-bit int from the top bits; OCaml ints are 63-bit. *)
let next_int g = Int64.to_int (Int64.shift_right_logical (next_int64 g) 2)

let int g bound =
  assert (bound > 0);
  next_int g mod bound

let int_in g lo hi =
  assert (lo <= hi);
  lo + int g (hi - lo + 1)

let unit_float g =
  (* 53 random bits into [0,1). *)
  let bits = Int64.to_float (Int64.shift_right_logical (next_int64 g) 11) in
  bits /. 9007199254740992.0

let float g bound = unit_float g *. bound

let bool g = Int64.logand (next_int64 g) 1L = 1L

let chance g p =
  if p <= 0.0 then false else if p >= 1.0 then true else unit_float g < p

let exponential g ~mean =
  let u = 1.0 -. unit_float g in
  -.mean *. log u

let gaussian g =
  (* Box–Muller; one value per call keeps the generator stateless apart
     from its counter, which preserves split independence. *)
  let u1 = 1.0 -. unit_float g and u2 = unit_float g in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let lognormal g ~median ~sigma =
  let mu = log median in
  exp (mu +. (sigma *. gaussian g))

let pareto g ~scale ~alpha =
  let u = 1.0 -. unit_float g in
  scale /. (u ** (1.0 /. alpha))

let choose g a =
  assert (Array.length a > 0);
  a.(int g (Array.length a))

let choose_weighted g weighted =
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 weighted in
  assert (total > 0.0);
  let target = float g total in
  let rec pick acc = function
    | [] -> invalid_arg "Prng.choose_weighted: empty"
    | [ (_, x) ] -> x
    | (w, x) :: rest -> if acc +. w > target then x else pick (acc +. w) rest
  in
  pick 0.0 weighted

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
