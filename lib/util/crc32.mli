(** CRC-32 checksums (IEEE 802.3 / zlib polynomial 0xEDB88320).

    Detects all single-byte and burst errors up to 32 bits — the
    corruption classes the framed corpus codec must survive. Values are
    32-bit and returned in a non-negative [int]. [crc] defaults to 0 (the
    CRC of the empty string); passing a previous result chains the
    computation, so
    [string ~crc:(string a) b = string (a ^ b)]. *)

val string : ?crc:int -> string -> int
(** CRC of a whole string, chained onto [crc]. *)

val bytes_sub : ?crc:int -> Bytes.t -> pos:int -> len:int -> int
(** CRC of [len] bytes of [b] starting at [pos], chained onto [crc];
    computed in place, no copy.
    @raise Invalid_argument if the range is out of bounds. *)
