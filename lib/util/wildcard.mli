(** Glob-style wildcard matching for component filters.

    The paper selects components by name patterns such as ["*.sys"] applied
    to function signatures (Section 5.1). Supported metacharacters: ['*']
    matches any (possibly empty) substring and ['?'] matches exactly one
    character. Matching is case-insensitive, as Windows module names are. *)

type t
(** A compiled pattern. *)

val compile : string -> t
(** Compile a pattern; total (never raises). *)

val pattern : t -> string
(** The source text of a compiled pattern. *)

val matches : t -> string -> bool
(** [matches p s] tests [s] against [p]. *)

val matches_any : t list -> string -> bool
(** True if any pattern in the list matches. *)
