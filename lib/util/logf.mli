(** Leveled logging gate, at the bottom of the library stack.

    This is the plumbing only: a severity threshold, a pluggable sink and
    format-string entry points. The user-facing logger ([Obs.Log]) wraps
    this module, installs its sink, and maps [--log-level] /
    [DRIVEPERF_LOG] onto {!set_level}; dputil modules log through here so
    the dependency arrow keeps pointing downwards.

    A call below the threshold does no formatting and no allocation
    beyond what the format string itself forces — debug lines on hot
    paths are one integer comparison when off. *)

type level = Error | Warn | Info | Debug

val set_level : level -> unit
(** Messages strictly less severe than the threshold are dropped.
    Default: {!Warn}. *)

val level : unit -> level

val enabled : level -> bool
(** [enabled l] is true when a message at [l] would be emitted. *)

val set_sink : (level -> string -> unit) -> unit
(** Replace the output routine (default: one line on stderr). The sink is
    called under a mutex, so lines from concurrent domains never
    interleave. *)

val level_name : level -> string

val logf : level -> ('a, Format.formatter, unit, unit) format4 -> 'a

val error : ('a, Format.formatter, unit, unit) format4 -> 'a
val warn : ('a, Format.formatter, unit, unit) format4 -> 'a
val info : ('a, Format.formatter, unit, unit) format4 -> 'a
val debug : ('a, Format.formatter, unit, unit) format4 -> 'a
