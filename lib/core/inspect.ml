type point = {
  inspected : int;
  effort_hours : float;
  coverage : float;
}

type t = {
  (* cumulative.(i) = coverage after inspecting the first i patterns. *)
  cumulative : float array;
  patterns_per_hour : float;
}

let model ?(patterns_per_hour = 50.0) (patterns : Mining.pattern list) =
  if patterns_per_hour <= 0.0 then
    invalid_arg "Inspect.model: patterns_per_hour must be positive";
  let costs = List.map (fun (p : Mining.pattern) -> p.Mining.cost) patterns in
  let total = float_of_int (List.fold_left ( + ) 0 costs) in
  let n = List.length costs in
  let cumulative = Array.make (n + 1) 0.0 in
  List.iteri
    (fun i c ->
      cumulative.(i + 1) <-
        cumulative.(i)
        +. (if total = 0.0 then 0.0 else float_of_int c /. total))
    costs;
  { cumulative; patterns_per_hour }

let point_at t inspected =
  {
    inspected;
    effort_hours = float_of_int inspected /. t.patterns_per_hour;
    coverage = t.cumulative.(inspected);
  }

let curve ?(points = 20) t =
  let n = Array.length t.cumulative - 1 in
  if n = 0 then []
  else begin
    let steps = min points n in
    let depths =
      List.init steps (fun i -> (i + 1) * n / steps) |> List.sort_uniq compare
    in
    List.map (point_at t) depths
  end

let effort_to_reach t ~coverage =
  let n = Array.length t.cumulative - 1 in
  let rec go i =
    if i > n then None
    else if t.cumulative.(i) >= coverage then Some (point_at t i)
    else go (i + 1)
  in
  go 0

let effort_saved t ~coverage =
  let n = Array.length t.cumulative - 1 in
  match effort_to_reach t ~coverage with
  | None -> None
  | Some p ->
    if n = 0 then None
    else begin
      (* Unranked null model: coverage accrues uniformly per pattern. *)
      let unranked = coverage *. float_of_int n in
      if unranked <= 0.0 then None
      else Some (1.0 -. (float_of_int p.inspected /. unranked))
    end

let pp fmt t =
  let n = Array.length t.cumulative - 1 in
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun p ->
      Format.fprintf fmt "top %4d patterns (%5.1f h): %5.1f%% coverage@,"
        p.inspected p.effort_hours (100.0 *. p.coverage))
    (curve ~points:8 t);
  (match (effort_to_reach t ~coverage:0.6, effort_saved t ~coverage:0.6) with
  | Some p, Some saved ->
    Format.fprintf fmt
      "60%% coverage after %d of %d patterns (%.1f h); ~%.0f%% effort saved \
       vs unranked inspection@,"
      p.inspected n p.effort_hours (100.0 *. saved)
  | _ -> Format.fprintf fmt "60%% coverage not reachable with these patterns@,");
  Format.fprintf fmt "@]"
