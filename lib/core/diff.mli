(** Pattern-set differencing across analysis runs.

    The paper closes by noting that a discovered pattern "as a generalized
    representation is a clue for similar cases" — analysts re-run the
    analysis after a fix, or on the next fleet snapshot, and ask what
    changed. This module compares two ranked pattern sets (same scenario,
    two corpora: before/after a driver fix, two OS builds, …) by matching
    Signature Set Tuples. *)

type change =
  | Appeared  (** Present only in the new run. *)
  | Disappeared  (** Present only in the old run — e.g. a fixed problem. *)
  | Regressed of float  (** Avg cost grew by this factor (> threshold). *)
  | Improved of float  (** Avg cost shrank by this factor (> threshold). *)
  | Stable

type entry = {
  tuple : Tuple.t;
  before : Mining.pattern option;
  after : Mining.pattern option;
  change : change;
}

val compare_patterns :
  ?threshold:float ->
  ?min_support:int ->
  before:Mining.pattern list ->
  after:Mining.pattern list ->
  unit ->
  entry list
(** Match by tuple; [threshold] (default 1.5) is the avg-cost ratio beyond
    which a pattern counts as regressed/improved. [min_support] (default
    1, i.e. off) is an instance-count floor on the side carrying the
    claim: an [Appeared]/[Regressed]/[Improved] verdict needs the {e
    after} pattern to cover at least that many instances, a
    [Disappeared] verdict needs it of the {e before} pattern; entries
    below the floor classify as [Stable] so one-off patterns cannot
    raise alarms. The result is sorted: regressions (largest factor
    first), then appearances, disappearances, improvements, and stable
    entries; ties break by {!Tuple.compare}. *)

val regressions : entry list -> entry list
val fixed : entry list -> entry list
(** Disappeared + improved entries. *)

val summary : entry list -> string
(** One line: "+3 appeared, 2 regressed, 5 fixed, 14 stable". *)

val pp_entry : Format.formatter -> entry -> unit

(** {1 Machine-readable twin}

    One schema shared by [driveperf diff --json] and the monitor's alert
    log, written with the deterministic {!Dputil.Jsonw} writer. *)

val change_kind : change -> string
(** ["appeared"] / ["disappeared"] / ["regressed"] / ["improved"] /
    ["stable"]. *)

val json_tuple : Tuple.t -> Dputil.Jsonw.t
(** [{"waits":[names],"unwaits":[..],"runnings":[..]}] — the same shape
    {!Report.Json} uses. *)

val json_entry : entry -> Dputil.Jsonw.t
(** [{"tuple":..,"change":..,"factor":..,"before":..,"after":..}]; the
    factor is [null] except for regressed/improved, each side is [null]
    or [{"cost":us,"count":n,"avg_cost_us":f,"max_single":us}]. *)

val json_summary : entry list -> Dputil.Jsonw.t

val json_document :
  scenario:string ->
  threshold:float ->
  min_support:int ->
  entry list ->
  Dputil.Jsonw.t
(** The full diff document:
    [{"tool":"driveperf","kind":"diff","scenario":..,"threshold":..,
    "min_support":..,"summary":{..},"entries":[..]}]. *)
