(** Pattern-set differencing across analysis runs.

    The paper closes by noting that a discovered pattern "as a generalized
    representation is a clue for similar cases" — analysts re-run the
    analysis after a fix, or on the next fleet snapshot, and ask what
    changed. This module compares two ranked pattern sets (same scenario,
    two corpora: before/after a driver fix, two OS builds, …) by matching
    Signature Set Tuples. *)

type change =
  | Appeared  (** Present only in the new run. *)
  | Disappeared  (** Present only in the old run — e.g. a fixed problem. *)
  | Regressed of float  (** Avg cost grew by this factor (> threshold). *)
  | Improved of float  (** Avg cost shrank by this factor (> threshold). *)
  | Stable

type entry = {
  tuple : Tuple.t;
  before : Mining.pattern option;
  after : Mining.pattern option;
  change : change;
}

val compare_patterns :
  ?threshold:float ->
  before:Mining.pattern list ->
  after:Mining.pattern list ->
  unit ->
  entry list
(** Match by tuple; [threshold] (default 1.5) is the avg-cost ratio beyond
    which a pattern counts as regressed/improved. The result is sorted:
    regressions (largest factor first), then appearances (largest cost),
    then disappearances, improvements, and stable entries. *)

val regressions : entry list -> entry list
val fixed : entry list -> entry list
(** Disappeared + improved entries. *)

val summary : entry list -> string
(** One line: "+3 appeared, 2 regressed, 5 fixed, 14 stable". *)

val pp_entry : Format.formatter -> entry -> unit
