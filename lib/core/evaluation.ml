let high_impact (p : Mining.pattern) ~tslow = p.Mining.max_single > tslow

type coverages = {
  driver_cost : Dputil.Time.t;
  impactful_cost : Dputil.Time.t;
  total_pattern_cost : Dputil.Time.t;
  itc : float;
  ttc : float;
}

let time_coverages patterns ~tslow ~driver_cost =
  let impactful_cost =
    List.fold_left
      (fun acc (p : Mining.pattern) ->
        if high_impact p ~tslow then acc + p.Mining.cost else acc)
      0 patterns
  in
  let total_pattern_cost =
    List.fold_left (fun acc (p : Mining.pattern) -> acc + p.Mining.cost) 0 patterns
  in
  {
    driver_cost;
    impactful_cost;
    total_pattern_cost;
    itc =
      Dputil.Stats.ratio (float_of_int impactful_cost) (float_of_int driver_cost);
    ttc =
      Dputil.Stats.ratio
        (float_of_int total_pattern_cost)
        (float_of_int driver_cost);
  }

let ranking_coverage patterns ~top_fraction =
  let n = List.length patterns in
  if n = 0 then 0.0
  else begin
    let take = int_of_float (ceil (top_fraction *. float_of_int n)) in
    let take = max 0 (min n take) in
    let total, top =
      List.fold_left
        (fun (total, top) ((i : int), (p : Mining.pattern)) ->
          ( total + p.Mining.cost,
            if i < take then top + p.Mining.cost else top ))
        (0, 0)
        (List.mapi (fun i p -> (i, p)) patterns)
    in
    Dputil.Stats.ratio (float_of_int top) (float_of_int total)
  end

let top_patterns patterns ~n = List.filteri (fun i _ -> i < n) patterns

let driver_type_counts patterns ~top_n ~type_of =
  let counts : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (p : Mining.pattern) ->
      let types =
        Tuple.all_signatures p.Mining.tuple
        |> List.filter_map type_of
        |> List.sort_uniq compare
      in
      List.iter
        (fun ty ->
          Hashtbl.replace counts ty
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts ty)))
        types)
    (top_patterns patterns ~n:top_n);
  Hashtbl.fold (fun ty n acc -> (ty, n) :: acc) counts []
  |> List.sort (fun (na, ca) (nb, cb) ->
         match compare cb ca with 0 -> compare na nb | c -> c)
