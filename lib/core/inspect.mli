(** Inspection-effort modelling (RQ2, Section 5.2.3).

    The paper argues efficiency by effort accounting: a performance
    analyst inspects patterns top-down in ranking order at a roughly
    constant cost per pattern (StackMine's calibration: ~400 patterns in
    an 8-hour day), so the ranking's worth is how much execution-time
    coverage each unit of effort buys compared to unranked inspection.

    This module turns a ranked pattern list into that effort/coverage
    curve and the derived headline numbers. *)

type point = {
  inspected : int;  (** Patterns inspected so far. *)
  effort_hours : float;
  coverage : float;  (** Share of pattern-explained time, in [\[0,1\]]. *)
}

type t

val model : ?patterns_per_hour:float -> Mining.pattern list -> t
(** [patterns_per_hour] defaults to 50 (the StackMine calibration). The
    input must already be ranked (as {!Mining.mine} returns it). *)

val curve : ?points:int -> t -> point list
(** The effort/coverage curve sampled at [points] (default 20) evenly
    spaced inspection depths, always including the full depth. *)

val effort_to_reach : t -> coverage:float -> point option
(** First point at which the ranked inspection reaches [coverage];
    [None] if the pattern set never does. *)

val effort_saved : t -> coverage:float -> float option
(** Effort saved versus unranked inspection for the same coverage target:
    under a uniform-coverage null model, reaching fraction [c] of the
    explained time requires inspecting fraction [c] of the patterns; the
    result is [1 - ranked_effort / unranked_effort]. The paper estimates
    "over 90% inspection effort saved". *)

val pp : Format.formatter -> t -> unit
(** The curve plus the 60%-coverage headline, StackMine-style. *)
