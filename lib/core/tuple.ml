module Signature = Dptrace.Signature

type t = {
  id : int;
  hkey : int;
  waits : Signature.t array;
  unwaits : Signature.t array;
  runnings : Signature.t array;
}

(* Content hash over the three sorted, distinct signature arrays. Folding
   every element (rather than Hashtbl.hash's bounded sample) keeps large
   tuples from colliding, and the value is derived from interned signature
   ids only, so it is deterministic within a process. *)
let mix h x = (((h lsl 5) + h) lxor x) land max_int

let hash_arrays waits unwaits runnings =
  let fold h arr =
    Array.fold_left
      (fun h s -> mix h (Signature.to_int s))
      (mix h (Array.length arr))
      arr
  in
  fold (fold (fold 5381 waits) unwaits) runnings

let array_equal a b =
  Array.length a = Array.length b
  &&
  let rec go i = i < 0 || (Signature.equal a.(i) b.(i) && go (i - 1)) in
  go (Array.length a - 1)

(* Every tuple is hash-consed process-wide: [equal] is one int comparison
   and table probes never re-walk the arrays. The interner is shared
   mutable state — mining fans out over pool domains — so construction is
   serialised inside Hashcons; ids depend on first-sight order and must
   never feed a deterministic sort (that is what [compare] is for). *)
module Key = struct
  type nonrec t = t

  let equal a b =
    a.hkey = b.hkey
    && array_equal a.waits b.waits
    && array_equal a.unwaits b.unwaits
    && array_equal a.runnings b.runnings

  let hash t = t.hkey
end

module HC = Dputil.Hashcons.Make (Key)

let interner = HC.create ~capacity:1024 ()

let of_sorted_arrays ~waits ~unwaits ~runnings =
  let hkey = hash_arrays waits unwaits runnings in
  let probe = { id = -1; hkey; waits; unwaits; runnings } in
  HC.intern interner probe ~build:(fun id ->
      (* The probe may alias the caller's scratch buffers; copy once, on
         first sight only. *)
      {
        id;
        hkey;
        waits = Array.copy waits;
        unwaits = Array.copy unwaits;
        runnings = Array.copy runnings;
      })

let interned_count () = HC.size interner

let normalize sigs = Array.of_list (List.sort_uniq Signature.compare sigs)

let make ~waits ~unwaits ~runnings =
  of_sorted_arrays ~waits:(normalize waits) ~unwaits:(normalize unwaits)
    ~runnings:(normalize runnings)

let of_segment nodes =
  let waits = ref [] and unwaits = ref [] and runnings = ref [] in
  List.iter
    (fun (n : Awg.node) ->
      match n.Awg.status with
      | Awg.Waiting { wait_sig; unwait_sig } ->
        waits := wait_sig :: !waits;
        unwaits := unwait_sig :: !unwaits
      | Awg.Running s -> runnings := s :: !runnings
      | Awg.Hw s -> runnings := s :: !runnings)
    nodes;
  make ~waits:!waits ~unwaits:!unwaits ~runnings:!runnings

let id t = t.id

(* Both arrays sorted: subset test by linear merge. *)
let array_subset small big =
  let ns = Array.length small and nb = Array.length big in
  let rec go i j =
    if i = ns then true
    else if j = nb then false
    else
      let c = Signature.compare small.(i) big.(j) in
      if c = 0 then go (i + 1) (j + 1)
      else if c > 0 then go i (j + 1)
      else false
  in
  go 0 0

let subset m p =
  array_subset m.waits p.waits
  && array_subset m.unwaits p.unwaits
  && array_subset m.runnings p.runnings

let is_empty t =
  Array.length t.waits = 0
  && Array.length t.unwaits = 0
  && Array.length t.runnings = 0

let all_signatures t =
  List.sort_uniq Signature.compare
    (Array.to_list t.waits @ Array.to_list t.unwaits @ Array.to_list t.runnings)

let equal a b = a.id = b.id
let hash t = t.hkey

(* Shorter-array-first, then elementwise: the exact total order the
   pre-interning polymorphic compare on int arrays applied, so ranked
   pattern output orders identically. *)
let array_compare a b =
  match compare (Array.length a) (Array.length b) with
  | 0 ->
    let n = Array.length a in
    let rec go i =
      if i = n then 0
      else
        match Signature.compare a.(i) b.(i) with 0 -> go (i + 1) | c -> c
    in
    go 0
  | c -> c

let compare a b =
  if a.id = b.id then 0
  else
    match array_compare a.waits b.waits with
    | 0 -> (
      match array_compare a.unwaits b.unwaits with
      | 0 -> array_compare a.runnings b.runnings
      | c -> c)
    | c -> c

let pp_set fmt arr =
  Format.fprintf fmt "{%s}"
    (String.concat ", " (Array.to_list (Array.map Signature.name arr)))

let pp fmt t =
  Format.fprintf fmt "@[<v>wait: %a@,unwait: %a@,running: %a@]" pp_set t.waits
    pp_set t.unwaits pp_set t.runnings

let to_string t =
  Format.asprintf "wait:%a unwait:%a running:%a" pp_set t.waits pp_set
    t.unwaits pp_set t.runnings
