module Signature = Dptrace.Signature

type t = {
  waits : Signature.t array;
  unwaits : Signature.t array;
  runnings : Signature.t array;
}

let normalize sigs =
  let arr = Array.of_list (List.sort_uniq Signature.compare sigs) in
  arr

let make ~waits ~unwaits ~runnings =
  {
    waits = normalize waits;
    unwaits = normalize unwaits;
    runnings = normalize runnings;
  }

let of_segment nodes =
  let waits = ref [] and unwaits = ref [] and runnings = ref [] in
  List.iter
    (fun (n : Awg.node) ->
      match n.Awg.status with
      | Awg.Waiting { wait_sig; unwait_sig } ->
        waits := wait_sig :: !waits;
        unwaits := unwait_sig :: !unwaits
      | Awg.Running s -> runnings := s :: !runnings
      | Awg.Hw s -> runnings := s :: !runnings)
    nodes;
  make ~waits:!waits ~unwaits:!unwaits ~runnings:!runnings

(* Both arrays sorted: subset test by linear merge. *)
let array_subset small big =
  let ns = Array.length small and nb = Array.length big in
  let rec go i j =
    if i = ns then true
    else if j = nb then false
    else
      let c = Signature.compare small.(i) big.(j) in
      if c = 0 then go (i + 1) (j + 1)
      else if c > 0 then go i (j + 1)
      else false
  in
  go 0 0

let subset m p =
  array_subset m.waits p.waits
  && array_subset m.unwaits p.unwaits
  && array_subset m.runnings p.runnings

let is_empty t =
  Array.length t.waits = 0
  && Array.length t.unwaits = 0
  && Array.length t.runnings = 0

let all_signatures t =
  List.sort_uniq Signature.compare
    (Array.to_list t.waits @ Array.to_list t.unwaits @ Array.to_list t.runnings)

let ints arr = Array.map Signature.to_int arr

let equal a b = ints a.waits = ints b.waits && ints a.unwaits = ints b.unwaits
  && ints a.runnings = ints b.runnings

let compare a b =
  match compare (ints a.waits) (ints b.waits) with
  | 0 -> (
    match compare (ints a.unwaits) (ints b.unwaits) with
    | 0 -> compare (ints a.runnings) (ints b.runnings)
    | c -> c)
  | c -> c

let hash t = Hashtbl.hash (ints t.waits, ints t.unwaits, ints t.runnings)

let pp_set fmt arr =
  Format.fprintf fmt "{%s}"
    (String.concat ", " (Array.to_list (Array.map Signature.name arr)))

let pp fmt t =
  Format.fprintf fmt "@[<v>wait: %a@,unwait: %a@,running: %a@]" pp_set t.waits
    pp_set t.unwaits pp_set t.runnings

let to_string t =
  Format.asprintf "wait:%a unwait:%a running:%a" pp_set t.waits pp_set
    t.unwaits pp_set t.runnings
