(** Component selection.

    Both analyses are scoped to "chosen components" — in the paper's study,
    all device drivers, selected by matching the module part of callstack
    frames against the wildcard ["*.sys"] (Section 5.1). *)

type t

val of_patterns : string list -> t
(** Compile wildcard patterns over module names. *)

val drivers : t
(** The paper's device-driver filter: [of_patterns \["*.sys"\]] plus
    hardware-service dummy signatures (["DiskService"]-style names carry no
    ['!'], but represent the devices that drivers serve, and Definition 3
    keeps them as dummy signatures in the analysis). *)

val patterns : t -> string list

val matches_signature : t -> Dptrace.Signature.t -> bool
(** Does a single signature's module part match? *)

val stack_relevant : t -> Dptrace.Callstack.t -> bool
(** Does any frame of the callstack match? *)

val event_relevant : t -> Dptrace.Event.t -> bool
(** Does any frame of the event's callstack match (or, for
    hardware-service events, is the event kept as a device dummy)? *)

val event_signature : t -> Dptrace.Event.t -> Dptrace.Signature.t option
(** The paper's per-event "signature": the topmost matching frame on the
    callstack, if any; for hardware-service events, the dummy signature. *)

val event_signature_or_top : t -> Dptrace.Event.t -> Dptrace.Signature.t
(** [event_signature], falling back to the topmost frame, then to
    ["<none>"] for an empty stack — total, for graph labelling. *)
