module WG = Dpwaitgraph.Wait_graph
module Event = Dptrace.Event
module Signature = Dptrace.Signature

type witness = {
  stream : Dptrace.Stream.t;
  instance : Dptrace.Scenario.instance;
  matched_cost : Dputil.Time.t;
  chain : Event.t list;
}

let max_paths_per_graph = 4096
let max_depth = 64

(* The Signature Set Tuple of one concrete event chain, mirroring the
   aggregation rules: wait/unwait sigs from wait events and their wakers,
   running sigs from running and hardware-service events; events with no
   component signature contribute nothing. *)
let tuple_of_chain components nodes =
  let waits = ref [] and unwaits = ref [] and runnings = ref [] in
  List.iter
    (fun (n : WG.node) ->
      let e = n.WG.event in
      match e.Event.kind with
      | Event.Wait -> (
        match Component.event_signature components e with
        | Some s ->
          waits := s :: !waits;
          let u =
            match n.WG.waker with
            | Some u -> Component.event_signature_or_top components u
            | None -> Signature.of_string "<lost-unwait>"
          in
          unwaits := u :: !unwaits
        | None -> ())
      | Event.Running | Event.Hw_service -> (
        match Component.event_signature components e with
        | Some s -> runnings := s :: !runnings
        | None -> ())
      | Event.Unwait -> ())
    nodes;
  Tuple.make ~waits:!waits ~unwaits:!unwaits ~runnings:!runnings

let chain_cost (pattern : Mining.pattern) nodes =
  let participating = Tuple.all_signatures pattern.Mining.tuple in
  List.fold_left
    (fun acc (n : WG.node) ->
      let e = n.WG.event in
      let sigs =
        Dptrace.Callstack.frames e.Event.stack |> Array.to_list
      in
      if List.exists (fun s -> List.memq s sigs) participating then
        acc + e.Event.cost
      else acc)
    0 nodes

let best_match components (pattern : Mining.pattern) (g : WG.t) =
  let best = ref None in
  let paths_seen = ref 0 in
  let consider path_rev =
    let path = List.rev path_rev in
    let tuple = tuple_of_chain components path in
    if Tuple.subset pattern.Mining.tuple tuple then begin
      let cost = chain_cost pattern path in
      match !best with
      | Some (c, _) when c >= cost -> ()
      | _ -> best := Some (cost, path)
    end
  in
  let rec dfs depth path_rev (n : WG.node) =
    if depth <= max_depth && !paths_seen < max_paths_per_graph then begin
      let path_rev = n :: path_rev in
      match n.WG.children with
      | [] ->
        incr paths_seen;
        consider path_rev
      | children -> List.iter (dfs (depth + 1) path_rev) children
    end
  in
  List.iter (dfs 0 []) g.WG.roots;
  !best

let witnesses ?(limit = 5) components corpus ~scenario ~pattern () =
  let entries = Dptrace.Corpus.instances_of corpus scenario in
  List.filter_map
    (fun (st, inst) ->
      let g = WG.build ~index:(Dptrace.Stream.shared_index st) st inst in
      match best_match components pattern g with
      | Some (matched_cost, path) when matched_cost > 0 ->
        Some
          {
            stream = st;
            instance = inst;
            matched_cost;
            chain = List.map (fun (n : WG.node) -> n.WG.event) path;
          }
      | _ -> None)
    entries
  |> List.sort (fun a b -> compare b.matched_cost a.matched_cost)
  |> List.filteri (fun i _ -> i < limit)

let render w =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Format.asprintf "witness: %a in stream %d (matched cost %a)\n"
       Dptrace.Scenario.pp_instance w.instance w.stream.Dptrace.Stream.id
       Dputil.Time.pp w.matched_cost);
  List.iteri
    (fun i (e : Event.t) ->
      let top =
        match Dptrace.Callstack.top e.Event.stack with
        | Some s -> Signature.name s
        | None -> "<empty>"
      in
      Buffer.add_string buf
        (Format.asprintf "%s%s %s %a in %s\n"
           (String.make (2 * (i + 1)) ' ')
           (Dptrace.Stream.thread_name w.stream e.Event.tid)
           (Event.kind_to_string e.Event.kind)
           Dputil.Time.pp e.Event.cost top))
    w.chain;
  Buffer.contents buf

let resolve_ref (corpus : Dptrace.Corpus.t) (r : Provenance.instance_ref) =
  match
    List.find_opt
      (fun (st : Dptrace.Stream.t) ->
        st.Dptrace.Stream.id = r.Provenance.stream_id)
      corpus.Dptrace.Corpus.streams
  with
  | None -> None
  | Some st ->
    Option.map
      (fun inst -> (st, inst))
      (List.find_opt
         (fun (i : Dptrace.Scenario.instance) ->
           i.Dptrace.Scenario.scenario = r.Provenance.scenario
           && i.Dptrace.Scenario.tid = r.Provenance.tid
           && i.Dptrace.Scenario.t0 = r.Provenance.t0
           && i.Dptrace.Scenario.t1 = r.Provenance.t1)
         st.Dptrace.Stream.instances)

let render_event_line (st : Dptrace.Stream.t) (e : Event.t) =
  let top =
    match Dptrace.Callstack.top e.Event.stack with
    | Some s -> Signature.name s
    | None -> "<empty>"
  in
  Format.asprintf "[%a, %a] %-8s %-14s C=%a  %s"
    Dputil.Time.pp e.Event.ts Dputil.Time.pp (Event.end_ts e)
    (Event.kind_to_string e.Event.kind)
    (Dptrace.Stream.thread_name st e.Event.tid)
    Dputil.Time.pp e.Event.cost top

let render_chain_events w =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Format.asprintf "raw events of the matched chain (stream %d):\n"
       w.stream.Dptrace.Stream.id);
  List.iter
    (fun e ->
      Buffer.add_string buf "  ";
      Buffer.add_string buf (render_event_line w.stream e);
      Buffer.add_char buf '\n')
    w.chain;
  Buffer.contents buf

let render_event_window ?(context = 3) (st : Dptrace.Stream.t) ~event_id =
  let events = st.Dptrace.Stream.events in
  if event_id < 0 || event_id >= Array.length events then ""
  else begin
    let lo = max 0 (event_id - context) in
    let hi = min (Array.length events - 1) (event_id + context) in
    let buf = Buffer.create 512 in
    for i = lo to hi do
      Buffer.add_string buf (if i = event_id then "  > " else "    ");
      Buffer.add_string buf (render_event_line st events.(i));
      Buffer.add_char buf '\n'
    done;
    Buffer.contents buf
  end
