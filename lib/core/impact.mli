(** Impact analysis (Section 3).

    Measures, for a chosen set of components over a set of scenario
    instances:

    - [d_scn] — total duration of all scenario instances;
    - [d_wait] — total duration of {e top-level} component wait events: a
      breadth-first search over each Wait Graph counts a wait event whose
      callstack contains a component signature and does not descend into
      it, so child events that constitute an already-counted cost are not
      double-counted;
    - [d_run] — total duration of component running events reachable in
      the Wait Graphs (overlaps with [d_wait] by design, see §3.2);
    - [d_waitdist] — [d_wait] with duplicate events (the same wait event
      counted from several scenario instances of the same stream)
      counted once.

    The derived metrics are the paper's outputs: [ia_run = d_run/d_scn],
    [ia_wait = d_wait/d_scn], [ia_opt = (d_wait - d_waitdist)/d_scn], and
    the propagation ratio [d_wait/d_waitdist] (≈3.5 in the paper: one
    second of distinct driver wait causes 3.5 seconds of scenario-level
    waiting). *)

type result = {
  d_scn : Dputil.Time.t;
  d_wait : Dputil.Time.t;
  d_run : Dputil.Time.t;
  d_waitdist : Dputil.Time.t;
  instances : int;
  counted_waits : int;  (** Top-level component wait events counted. *)
  counted_runs : int;
}

val empty : result
(** All-zero: the identity of {!merge}. *)

val analyze_graphs : Component.t -> Dpwaitgraph.Wait_graph.t list -> result
(** Measure over prebuilt Wait Graphs (graphs from the same stream must
    share event identities, which {!Dpwaitgraph.Wait_graph.build}
    guarantees). *)

val analyze : ?pool:Dppar.Pool.t -> Component.t -> Dptrace.Corpus.t -> result
(** Build the Wait Graph of every instance in the corpus and measure.
    Computed as one partial {!result} per stream — each stream's memoised
    {!Dptrace.Stream.shared_index} is built at most once — {!merge}d in
    stream order. [pool] fans the per-stream work across domains; the
    reduction is associative over disjoint streams, so the parallel result
    is bit-identical to the sequential one. *)

val analyze_graphs_prov :
  Component.t -> Dpwaitgraph.Wait_graph.t list -> result * Provenance.impact
(** {!analyze_graphs} that additionally returns the provenance of the
    measured numbers: the top-K costliest distinct wait and running
    events, globally and per module. When {!Provenance.enabled} is false
    this is exactly [(analyze_graphs ..., Provenance.empty_impact)] and
    does no extra work. *)

val analyze_prov :
  ?pool:Dppar.Pool.t ->
  Component.t ->
  Dptrace.Corpus.t ->
  result * Provenance.impact
(** {!analyze} plus provenance; same per-stream reduction, and the
    provenance merge is exact over disjoint streams, so parallel and
    sequential runs agree. *)

val ia_run : result -> float
(** Fraction in [\[0,1\]]. *)

val ia_wait : result -> float
val ia_opt : result -> float

val propagation_ratio : result -> float
(** [d_wait /. d_waitdist]; 0 when no distinct waits. *)

val merge : result -> result -> result
(** Combine results from disjoint instance sets. Sound only when the two
    results were measured over different streams (distinct-wait dedup
    never crosses streams). *)

(** {1 Per-module breakdown}

    The analyst's next question after the headline metrics: {e which}
    component carries the impact. Costs are attributed to the module part
    of the event's topmost matching signature (e.g. ["fs.sys"]). *)

type module_row = {
  module_name : string;
  m_wait : Dputil.Time.t;  (** Top-level wait time attributed here. *)
  m_waitdist : Dputil.Time.t;  (** …deduplicated across instances. *)
  m_run : Dputil.Time.t;
  m_counted_waits : int;
  m_max_wait : Dputil.Time.t;  (** Largest single attributed wait. *)
}

val by_module : Component.t -> Dpwaitgraph.Wait_graph.t list -> module_row list
(** Same counting rules as {!analyze_graphs}, broken down per module;
    sorted by [m_wait] descending. *)

val merge_modules : module_row list -> module_row list -> module_row list
(** Combine breakdowns measured over {e disjoint streams} (sums, max of
    maxes), restoring {!by_module}'s sort; exact for the same reason
    {!merge} is. The snapshot cache merges per-stream breakdowns through
    here. *)

val module_propagation_ratio : module_row -> float
(** [m_wait /. m_waitdist] — how widely this module's waits propagate. *)

val pp : Format.formatter -> result -> unit
