(** Rendering analysis results as the paper's tables.

    Every renderer returns a {!Dputil.Table.t}; callers may add reference
    columns (the paper's numbers) before printing. *)

val pct : float -> string
(** [0.364] → ["36.4%"]. *)

val impact_summary : Impact.result -> Dputil.Table.t
(** §5.1 headline metrics: IA_wait, IA_run, IA_opt, propagation ratio. *)

val module_breakdown : ?top:int -> Impact.module_row list -> Dputil.Table.t
(** Per-driver-module attribution of the impact metrics ([top] rows,
    default 12). *)

val scenario_impacts : (string * Impact.result) list -> Dputil.Table.t
(** Per-scenario IA metrics (from {!Pipeline.impact_per_scenario}). *)

val scenario_classes : (string * Classify.t) list -> Dputil.Table.t
(** Table 1: instances and contrast-class sizes per scenario. *)

val coverages : (string * Pipeline.scenario_result) list -> Dputil.Table.t
(** Table 2: Driver Cost %, ITC, TTC per scenario (plus average row). *)

val stream_coverage : Pipeline.coverage -> Dputil.Table.t
(** Graceful-degradation accounting: which streams the analysis kept and
    which it quarantined (with the injected-fault reason). Only worth
    printing when something was quarantined. *)

val ranking : (string * Pipeline.scenario_result) list -> Dputil.Table.t
(** Table 3: #patterns and execution-time coverage of the top
    10 / 20 / 30 % by rank (plus average row). *)

val driver_types :
  (string * Pipeline.scenario_result) list ->
  type_names:string list ->
  type_of:(Dptrace.Signature.t -> string option) ->
  Dputil.Table.t
(** Table 4: driver types appearing in each scenario's top-10 patterns.
    [type_names] fixes the column order. *)

val top_patterns : Mining.pattern list -> n:int -> string
(** Listing of the top [n] patterns as Signature Set Tuples with their
    metrics — the analyst-facing output of the causality analysis. *)

val awg_summary : Awg.t -> string
(** One-line structural summary plus the reduction statistics. *)

val top_propagation_paths : Awg.t -> n:int -> string
(** Analyst drill-down: the [n] root-to-leaf propagation chains with the
    costliest end nodes, rendered one chain per block with per-hop C/N. *)

(** {1 Machine-readable twins}

    Structured mirrors of the tables above, for [driveperf report --json]
    and [analyze --json]: same numbers, plus the provenance the text
    tables cannot carry. Serialisation is deterministic
    ({!Dputil.Jsonw}), so two runs over the same corpus produce
    byte-identical documents — diffable and scriptable. *)

module Json : sig
  val of_ref : Provenance.instance_ref -> Dputil.Jsonw.t

  val of_wait_record : Provenance.wait_record -> Dputil.Jsonw.t
  (** [{signature; event; ts; te; cost; multiplicity; instance}]. *)

  val of_topk : Provenance.wait_record Provenance.Topk.t -> Dputil.Jsonw.t

  val of_wset : Provenance.Wset.t -> Dputil.Jsonw.t
  (** Witness entries as [{stream; scenario; tid; t0; t1; cost;
      occurrences}], cost-descending. *)

  val of_impact : ?prov:Provenance.impact -> Impact.result -> Dputil.Jsonw.t
  (** Raw durations plus the derived IA metrics; with [prov], a
      ["provenance"] member carrying the top-K wait/run events. *)

  val of_module_rows :
    ?prov:Provenance.impact -> Impact.module_row list -> Dputil.Jsonw.t
  (** One object per module row, each with a ["provenance"] array (the
      module's top-K wait events; empty when provenance was disabled or
      the module has no recorded waits). *)

  val of_tuple : Tuple.t -> Dputil.Jsonw.t

  val of_pattern : rank:int -> Mining.pattern -> Dputil.Jsonw.t
  (** Pattern metrics plus its slow-class [witnesses] and
      [fast_witnesses]. *)

  val of_scenario : string -> Pipeline.scenario_result -> Dputil.Jsonw.t
  (** Classes, impact (+provenance), coverages, ranking coverage, AWG
      summary and the full ranked pattern list. *)

  val document :
    ?coverage:Pipeline.coverage ->
    impact:Impact.result ->
    impact_prov:Provenance.impact ->
    modules:Impact.module_row list ->
    scenarios:(string * Pipeline.scenario_result) list ->
    unit ->
    Dputil.Jsonw.t
  (** The whole-report document emitted by [driveperf report --json].
      When [coverage] records quarantined streams, a ["coverage"] member
      reports [streams_total] / [streams_analyzed] and the per-stream
      quarantine reasons; a run with nothing quarantined emits the
      pre-fault-layer document byte for byte. *)
end
