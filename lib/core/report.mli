(** Rendering analysis results as the paper's tables.

    Every renderer returns a {!Dputil.Table.t}; callers may add reference
    columns (the paper's numbers) before printing. *)

val pct : float -> string
(** [0.364] → ["36.4%"]. *)

val impact_summary : Impact.result -> Dputil.Table.t
(** §5.1 headline metrics: IA_wait, IA_run, IA_opt, propagation ratio. *)

val module_breakdown : ?top:int -> Impact.module_row list -> Dputil.Table.t
(** Per-driver-module attribution of the impact metrics ([top] rows,
    default 12). *)

val scenario_impacts : (string * Impact.result) list -> Dputil.Table.t
(** Per-scenario IA metrics (from {!Pipeline.impact_per_scenario}). *)

val scenario_classes : (string * Classify.t) list -> Dputil.Table.t
(** Table 1: instances and contrast-class sizes per scenario. *)

val coverages : (string * Pipeline.scenario_result) list -> Dputil.Table.t
(** Table 2: Driver Cost %, ITC, TTC per scenario (plus average row). *)

val ranking : (string * Pipeline.scenario_result) list -> Dputil.Table.t
(** Table 3: #patterns and execution-time coverage of the top
    10 / 20 / 30 % by rank (plus average row). *)

val driver_types :
  (string * Pipeline.scenario_result) list ->
  type_names:string list ->
  type_of:(Dptrace.Signature.t -> string option) ->
  Dputil.Table.t
(** Table 4: driver types appearing in each scenario's top-10 patterns.
    [type_names] fixes the column order. *)

val top_patterns : Mining.pattern list -> n:int -> string
(** Listing of the top [n] patterns as Signature Set Tuples with their
    metrics — the analyst-facing output of the causality analysis. *)

val awg_summary : Awg.t -> string
(** One-line structural summary plus the reduction statistics. *)

val top_propagation_paths : Awg.t -> n:int -> string
(** Analyst drill-down: the [n] root-to-leaf propagation chains with the
    costliest end nodes, rendered one chain per block with per-hop C/N. *)
