module Event = Dptrace.Event
module Wait_graph = Dpwaitgraph.Wait_graph

type result = {
  d_scn : Dputil.Time.t;
  d_wait : Dputil.Time.t;
  d_run : Dputil.Time.t;
  d_waitdist : Dputil.Time.t;
  instances : int;
  counted_waits : int;
  counted_runs : int;
}

let empty =
  {
    d_scn = 0;
    d_wait = 0;
    d_run = 0;
    d_waitdist = 0;
    instances = 0;
    counted_waits = 0;
    counted_runs = 0;
  }

let analyze_graphs_into ?collector components graphs =
  (* (stream id, event id) → cost, across all instances: the distinct-wait
     set whose total is d_waitdist. *)
  let distinct : (int * int, Dputil.Time.t) Hashtbl.t = Hashtbl.create 1024 in
  let acc = ref empty in
  let measure_graph (g : Wait_graph.t) =
    let stream_id = g.Wait_graph.stream.Dptrace.Stream.id in
    let d_scn = Dptrace.Scenario.duration g.Wait_graph.instance in
    let iref =
      lazy (Provenance.ref_of g.Wait_graph.stream g.Wait_graph.instance)
    in
    (* Top-level component waits: BFS that counts a matching wait and does
       not descend into it. Per-graph visited set keeps the DAG linear. *)
    let visited : (int, unit) Hashtbl.t = Hashtbl.create 64 in
    let d_wait = ref 0 and counted_waits = ref 0 in
    let rec bfs (n : Wait_graph.node) =
      let e = n.Wait_graph.event in
      if not (Hashtbl.mem visited e.Event.id) then begin
        Hashtbl.replace visited e.Event.id ();
        if Event.is_wait e && Component.stack_relevant components e.Event.stack
        then begin
          d_wait := !d_wait + e.Event.cost;
          incr counted_waits;
          Hashtbl.replace distinct (stream_id, e.Event.id) e.Event.cost;
          match collector with
          | Some c ->
            let signature = Component.event_signature_or_top components e in
            Provenance.Collector.record_wait c
              ~module_name:(Dptrace.Signature.module_part signature)
              ~stream_id ~instance:(Lazy.force iref) ~event:e ~signature
          | None -> ()
        end
        else List.iter bfs n.Wait_graph.children
      end
    in
    List.iter bfs g.Wait_graph.roots;
    (* Component running time over all distinct nodes of the graph. *)
    let d_run = ref 0 and counted_runs = ref 0 in
    Wait_graph.iter_nodes g (fun n ->
        let e = n.Wait_graph.event in
        if Event.is_running e && Component.stack_relevant components e.Event.stack
        then begin
          d_run := !d_run + e.Event.cost;
          incr counted_runs;
          match collector with
          | Some c ->
            let signature = Component.event_signature_or_top components e in
            Provenance.Collector.record_run c ~stream_id
              ~instance:(Lazy.force iref) ~event:e ~signature
          | None -> ()
        end);
    acc :=
      {
        d_scn = !acc.d_scn + d_scn;
        d_wait = !acc.d_wait + !d_wait;
        d_run = !acc.d_run + !d_run;
        d_waitdist = !acc.d_waitdist;
        instances = !acc.instances + 1;
        counted_waits = !acc.counted_waits + !counted_waits;
        counted_runs = !acc.counted_runs + !counted_runs;
      }
  in
  List.iter measure_graph graphs;
  let d_waitdist = Hashtbl.fold (fun _ cost total -> total + cost) distinct 0 in
  { !acc with d_waitdist }

let analyze_graphs components graphs = analyze_graphs_into components graphs

let analyze_graphs_prov components graphs =
  if not (Provenance.enabled ()) then
    (analyze_graphs_into components graphs, Provenance.empty_impact)
  else begin
    let collector = Provenance.Collector.create () in
    let r = analyze_graphs_into ~collector components graphs in
    (r, Provenance.Collector.impact collector)
  end

let merge a b =
  {
    d_scn = a.d_scn + b.d_scn;
    d_wait = a.d_wait + b.d_wait;
    d_run = a.d_run + b.d_run;
    d_waitdist = a.d_waitdist + b.d_waitdist;
    instances = a.instances + b.instances;
    counted_waits = a.counted_waits + b.counted_waits;
    counted_runs = a.counted_runs + b.counted_runs;
  }

let analyze_stream components (st : Dptrace.Stream.t) =
  let index = Dptrace.Stream.shared_index st in
  analyze_graphs components
    (List.map (Wait_graph.build ~index st) st.Dptrace.Stream.instances)

let analyze_stream_prov components (st : Dptrace.Stream.t) =
  let index = Dptrace.Stream.shared_index st in
  analyze_graphs_prov components
    (List.map (Wait_graph.build ~index st) st.Dptrace.Stream.instances)

let analyze ?pool components (corpus : Dptrace.Corpus.t) =
  (* One partial result per stream, merged in stream order. The
     distinct-wait deduplication never crosses streams (keys carry the
     stream id), and every field merges by integer addition, so the
     per-stream reduction is exact — parallel and sequential runs produce
     the same integers, hence the same derived floats. *)
  let streams = corpus.Dptrace.Corpus.streams in
  match pool with
  | Some pool ->
    Dppar.Pool.parallel_map_reduce pool
      ~map:(analyze_stream components)
      ~reduce:merge ~init:empty streams
  | None ->
    List.fold_left
      (fun acc st -> merge acc (analyze_stream components st))
      empty streams

let analyze_prov ?pool components (corpus : Dptrace.Corpus.t) =
  (* Same per-stream reduction as [analyze]. Provenance merges exactly
     too: records are keyed by (stream, event), streams are disjoint
     across the reduction, and reservoirs are association-independent. *)
  if not (Provenance.enabled ()) then
    (analyze ?pool components corpus, Provenance.empty_impact)
  else
    let streams = corpus.Dptrace.Corpus.streams in
    let merge2 (r1, p1) (r2, p2) =
      (merge r1 r2, Provenance.merge_impact p1 p2)
    in
    let init = (empty, Provenance.empty_impact) in
    (match pool with
    | Some pool ->
      Dppar.Pool.parallel_map_reduce pool
        ~map:(analyze_stream_prov components)
        ~reduce:merge2 ~init streams
    | None ->
      List.fold_left
        (fun acc st -> merge2 acc (analyze_stream_prov components st))
        init streams)

let fdiv a b = Dputil.Stats.ratio (float_of_int a) (float_of_int b)

let ia_run r = fdiv r.d_run r.d_scn
let ia_wait r = fdiv r.d_wait r.d_scn
let ia_opt r = fdiv (r.d_wait - r.d_waitdist) r.d_scn
let propagation_ratio r = fdiv r.d_wait r.d_waitdist

type module_row = {
  module_name : string;
  m_wait : Dputil.Time.t;
  m_waitdist : Dputil.Time.t;
  m_run : Dputil.Time.t;
  m_counted_waits : int;
  m_max_wait : Dputil.Time.t;
}

type module_cell = {
  mutable c_wait : Dputil.Time.t;
  mutable c_run : Dputil.Time.t;
  mutable c_counted : int;
  mutable c_max : Dputil.Time.t;
  distinct : (int * int, Dputil.Time.t) Hashtbl.t;
}

let by_module components graphs =
  let cells : (string, module_cell) Hashtbl.t = Hashtbl.create 32 in
  let cell name =
    match Hashtbl.find_opt cells name with
    | Some c -> c
    | None ->
      let c =
        { c_wait = 0; c_run = 0; c_counted = 0; c_max = 0; distinct = Hashtbl.create 64 }
      in
      Hashtbl.replace cells name c;
      c
  in
  let module_of (e : Event.t) =
    Option.map
      (fun s -> Dptrace.Signature.module_part s)
      (Component.event_signature components e)
  in
  List.iter
    (fun (g : Wait_graph.t) ->
      let stream_id = g.Wait_graph.stream.Dptrace.Stream.id in
      let visited : (int, unit) Hashtbl.t = Hashtbl.create 64 in
      let rec bfs (n : Wait_graph.node) =
        let e = n.Wait_graph.event in
        if not (Hashtbl.mem visited e.Event.id) then begin
          Hashtbl.replace visited e.Event.id ();
          if Event.is_wait e && Component.stack_relevant components e.Event.stack
          then begin
            match module_of e with
            | Some name ->
              let c = cell name in
              c.c_wait <- c.c_wait + e.Event.cost;
              c.c_counted <- c.c_counted + 1;
              if e.Event.cost > c.c_max then c.c_max <- e.Event.cost;
              Hashtbl.replace c.distinct (stream_id, e.Event.id) e.Event.cost
            | None -> ()
          end
          else List.iter bfs n.Wait_graph.children
        end
      in
      List.iter bfs g.Wait_graph.roots;
      Wait_graph.iter_nodes g (fun n ->
          let e = n.Wait_graph.event in
          if Event.is_running e then
            match module_of e with
            | Some name ->
              let c = cell name in
              c.c_run <- c.c_run + e.Event.cost
            | None -> ()))
    graphs;
  Hashtbl.fold
    (fun module_name c acc ->
      {
        module_name;
        m_wait = c.c_wait;
        m_waitdist = Hashtbl.fold (fun _ cost t -> t + cost) c.distinct 0;
        m_run = c.c_run;
        m_counted_waits = c.c_counted;
        m_max_wait = c.c_max;
      }
      :: acc)
    cells []
  |> List.sort (fun a b ->
         match compare b.m_wait a.m_wait with
         | 0 -> compare a.module_name b.module_name
         | c -> c)

(* Combine per-module rows measured over disjoint streams: the distinct
   tables behind [m_waitdist] key on (stream, event), so plain sums (and
   max of maxes) are exact, and re-sorting restores [by_module]'s order. *)
let merge_modules a b =
  let tbl : (string, module_row) Hashtbl.t = Hashtbl.create 32 in
  let feed r =
    match Hashtbl.find_opt tbl r.module_name with
    | Some p ->
      Hashtbl.replace tbl r.module_name
        {
          p with
          m_wait = p.m_wait + r.m_wait;
          m_waitdist = p.m_waitdist + r.m_waitdist;
          m_run = p.m_run + r.m_run;
          m_counted_waits = p.m_counted_waits + r.m_counted_waits;
          m_max_wait = max p.m_max_wait r.m_max_wait;
        }
    | None -> Hashtbl.replace tbl r.module_name r
  in
  List.iter feed a;
  List.iter feed b;
  Hashtbl.fold (fun _ r acc -> r :: acc) tbl []
  |> List.sort (fun a b ->
         match compare b.m_wait a.m_wait with
         | 0 -> compare a.module_name b.module_name
         | c -> c)

let module_propagation_ratio r =
  fdiv r.m_wait r.m_waitdist

let pp fmt r =
  Format.fprintf fmt
    "impact: %d instances, D_scn=%a, D_wait=%a (IA_wait=%.1f%%), D_run=%a \
     (IA_run=%.1f%%), D_waitdist=%a (IA_opt=%.1f%%, ratio=%.2f)"
    r.instances Dputil.Time.pp r.d_scn Dputil.Time.pp r.d_wait
    (100.0 *. ia_wait r) Dputil.Time.pp r.d_run
    (100.0 *. ia_run r)
    Dputil.Time.pp r.d_waitdist
    (100.0 *. ia_opt r)
    (propagation_ratio r)
