(** Contrast-class classification (Section 4.2.1).

    Instances of one scenario are split by measured duration against the
    developer-specified thresholds: fast (< [tfast]) and slow (> [tslow]).
    Instances between the thresholds are kept aside — by construction
    [tslow - tfast >> 0], so the two contrast classes stay unambiguous. *)

type t = {
  spec : Dptrace.Scenario.spec;
  fast : (Dptrace.Stream.t * Dptrace.Scenario.instance) list;
  middle : (Dptrace.Stream.t * Dptrace.Scenario.instance) list;
  slow : (Dptrace.Stream.t * Dptrace.Scenario.instance) list;
}

val classify : Dptrace.Corpus.t -> string -> t
(** Classify all instances of the named scenario.
    @raise Not_found if the corpus has no spec for the scenario. *)

val counts : t -> int * int * int
(** (fast, middle, slow) instance counts. *)

val total : t -> int
