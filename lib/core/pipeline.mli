(** End-to-end orchestration: corpus → impact analysis and per-scenario
    causality analysis.

    Wait Graphs are built once per scenario instance (sharing one
    memoised index per stream, corpus-wide — see
    {!Dptrace.Stream.shared_index}) and reused across the classification,
    the per-class impact measurement and the AWG aggregation.

    Every entry point takes an optional [?pool] (a {!Dppar.Pool.t}); when
    given, independent units of work — streams within {!build_graphs} and
    {!run_impact}, scenarios within {!run_all} and
    {!impact_per_scenario} — fan out across its domains. Parallel results
    are {e bit-identical} to sequential ones: work is only split along
    independence boundaries, results are merged in input order (never
    completion order), and reductions run in a fixed association. *)

type scenario_result = {
  classification : Classify.t;
  slow_impact : Impact.result;
      (** Component impact measured over the slow class only. *)
  slow_impact_prov : Provenance.impact;
      (** Provenance of [slow_impact] ({!Provenance.empty_impact} unless
          {!Provenance.enabled} during the run). *)
  fast_awg : Awg.t;
  slow_awg : Awg.t;
  mining : Mining.result;
  coverages : Evaluation.coverages;
}

val build_graphs :
  ?pool:Dppar.Pool.t ->
  Dptrace.Corpus.t ->
  (Dptrace.Stream.t * Dptrace.Scenario.instance) list ->
  Dpwaitgraph.Wait_graph.t list
(** Build Wait Graphs for the given instances, sharing stream indexes.
    With [pool], instances are grouped by stream and the groups build in
    parallel (one index resolution per stream); the returned list is in
    the input entry order either way. *)

val run_scenario :
  ?pool:Dppar.Pool.t ->
  ?k:int ->
  ?reduce:bool ->
  Component.t ->
  Dptrace.Corpus.t ->
  string ->
  scenario_result
(** Classify the scenario's instances, aggregate both contrast classes,
    mine contrast patterns and compute coverages. [k] defaults to
    {!Mining.default_k}; [reduce] (default [true]) controls the AWG
    non-optimisable-portion reduction. [pool] parallelises graph building
    and AWG conversion within the scenario.
    @raise Not_found if the corpus has no spec for the scenario. *)

val run_all :
  ?pool:Dppar.Pool.t ->
  ?k:int ->
  ?reduce:bool ->
  ?scenarios:string list ->
  Component.t ->
  Dptrace.Corpus.t ->
  (string * scenario_result) list
(** {!run_scenario} over [scenarios] (default: every scenario name in the
    corpus), skipping names without a spec. With [pool], scenarios fan
    out across domains — one scenario per work item — and the result list
    follows the order of [scenarios] regardless of completion order. *)

val run_impact :
  ?pool:Dppar.Pool.t -> Component.t -> Dptrace.Corpus.t -> Impact.result
(** Whole-corpus impact analysis (Section 5.1). [pool] fans the
    per-stream measurement out across domains (see {!Impact.analyze}). *)

val run_impact_prov :
  ?pool:Dppar.Pool.t ->
  Component.t ->
  Dptrace.Corpus.t ->
  Impact.result * Provenance.impact
(** {!run_impact} plus the provenance of the measured numbers (see
    {!Impact.analyze_prov}). *)

val impact_per_scenario :
  ?pool:Dppar.Pool.t ->
  Component.t ->
  Dptrace.Corpus.t ->
  (string * Impact.result) list
(** The impact metrics measured separately over each scenario's instances
    (Section 3: "performance analysts can narrow down the investigation
    scope"). Sorted by [d_wait], descending. The per-scenario results sum
    to the whole-corpus [d_scn]/[d_wait]/[d_run], but not [d_waitdist]:
    a wait shared by instances of two scenarios is distinct in each. *)

(** {1 Snapshot-backed (incremental) variants}

    Each mirrors its from-scratch counterpart over a {!Snapshot.t} the
    caller has {!Snapshot.ensure}d for the corpus: per-stream cached
    partials are merged in corpus stream order with the exact merge
    operators the plain paths' own reductions use, then mining, selection
    and coverage run on the merged aggregates as usual. Results are
    {e bit-identical} to the uncached entry points — including provenance
    and [--json] rendering — regardless of which entries were cache hits.

    All raise [Invalid_argument] if the snapshot lacks an entry for some
    stream (i.e. {!Snapshot.ensure} was not run for this corpus). *)

val run_scenario_snap :
  ?pool:Dppar.Pool.t ->
  ?k:int ->
  ?reduce:bool ->
  Snapshot.t ->
  Dptrace.Corpus.t ->
  string ->
  scenario_result
(** Cached {!run_scenario}: classification is recomputed (cheap, and part
    of the result); impact, provenance and both AWGs come from merged
    snapshot partials; mining and coverages are computed on the merge.
    @raise Not_found if the corpus has no spec for the scenario. *)

val run_all_snap :
  ?pool:Dppar.Pool.t ->
  ?k:int ->
  ?reduce:bool ->
  ?scenarios:string list ->
  Snapshot.t ->
  Dptrace.Corpus.t ->
  (string * scenario_result) list
(** Cached {!run_all}. *)

val run_impact_snap : Snapshot.t -> Dptrace.Corpus.t -> Impact.result
(** Cached {!run_impact}. *)

val run_impact_prov_snap :
  Snapshot.t -> Dptrace.Corpus.t -> Impact.result * Provenance.impact
(** Cached {!run_impact_prov}. *)

val modules_snap : Snapshot.t -> Dptrace.Corpus.t -> Impact.module_row list
(** Cached equivalent of {!Impact.by_module} over every instance's graph
    (what [report --json] embeds). *)

val impact_per_scenario_snap :
  Snapshot.t -> Dptrace.Corpus.t -> (string * Impact.result) list
(** Cached {!impact_per_scenario}. *)

val driver_cost_fraction : scenario_result -> float
(** Distinct slow-class driver time ([d_waitdist + d_run]) over slow-class
    scenario time — the "Driver Cost" column of Table 2. The ITC/TTC
    denominator is instead the slow AWG's end-node mass plus the pruned
    non-optimisable mass, so both coverages stay within [\[0,1\]]. *)

(** {1 Fault screening (graceful degradation)}

    When a {!Dpfault} plan is armed, every stream passes a
    [corpus.read] probe (with the plan's retry budget) before analysis;
    streams whose budget exhausts are quarantined rather than aborting
    the run, and the report gains an explicit coverage block. *)

type coverage = {
  cov_total : int;  (** streams in the corpus before screening *)
  cov_analyzed : int;  (** streams that passed and were analysed *)
  cov_quarantined : (int * string) list;
      (** quarantined [(stream id, reason)], in corpus order *)
}

val full_coverage : Dptrace.Corpus.t -> coverage
(** Every stream analysed, nothing quarantined. *)

val screen : Dptrace.Corpus.t -> Dptrace.Corpus.t * coverage
(** Probe each stream's [corpus.read] site under the armed fault plan
    and drop the streams whose retries exhaust. With no plan armed this
    is free (one atomic load) and returns the corpus unchanged; with
    zero quarantines the returned corpus is the input (same streams,
    same order), so downstream output stays byte-identical. *)
