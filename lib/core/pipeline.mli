(** End-to-end orchestration: corpus → impact analysis and per-scenario
    causality analysis.

    Wait Graphs are built once per scenario instance (sharing one stream
    index per stream) and reused across the classification, the per-class
    impact measurement and the AWG aggregation. *)

type scenario_result = {
  classification : Classify.t;
  slow_impact : Impact.result;
      (** Component impact measured over the slow class only. *)
  fast_awg : Awg.t;
  slow_awg : Awg.t;
  mining : Mining.result;
  coverages : Evaluation.coverages;
}

val build_graphs :
  Dptrace.Corpus.t ->
  (Dptrace.Stream.t * Dptrace.Scenario.instance) list ->
  Dpwaitgraph.Wait_graph.t list
(** Build Wait Graphs for the given instances, sharing stream indexes. *)

val run_scenario :
  ?k:int ->
  ?reduce:bool ->
  Component.t ->
  Dptrace.Corpus.t ->
  string ->
  scenario_result
(** Classify the scenario's instances, aggregate both contrast classes,
    mine contrast patterns and compute coverages. [k] defaults to
    {!Mining.default_k}; [reduce] (default [true]) controls the AWG
    non-optimisable-portion reduction.
    @raise Not_found if the corpus has no spec for the scenario. *)

val run_impact : Component.t -> Dptrace.Corpus.t -> Impact.result
(** Whole-corpus impact analysis (Section 5.1). *)

val impact_per_scenario :
  Component.t -> Dptrace.Corpus.t -> (string * Impact.result) list
(** The impact metrics measured separately over each scenario's instances
    (Section 3: "performance analysts can narrow down the investigation
    scope"). Sorted by [d_wait], descending. The per-scenario results sum
    to the whole-corpus [d_scn]/[d_wait]/[d_run], but not [d_waitdist]:
    a wait shared by instances of two scenarios is distinct in each. *)

val driver_cost_fraction : scenario_result -> float
(** Distinct slow-class driver time ([d_waitdist + d_run]) over slow-class
    scenario time — the "Driver Cost" column of Table 2. The ITC/TTC
    denominator is instead the slow AWG's end-node mass plus the pruned
    non-optimisable mass, so both coverages stay within [\[0,1\]]. *)
