module Wait_graph = Dpwaitgraph.Wait_graph

type ci = { point : float; mean : float; lo : float; hi : float }

type t = {
  ia_wait : ci;
  ia_run : ci;
  ia_opt : ci;
  propagation_ratio : ci;
  replicates : int;
}

let per_stream_results ?pool components (corpus : Dptrace.Corpus.t) =
  let measure (st : Dptrace.Stream.t) =
    let index = Dptrace.Stream.shared_index st in
    let graphs =
      List.map (Wait_graph.build ~index st) st.Dptrace.Stream.instances
    in
    Impact.analyze_graphs components graphs
  in
  match pool with
  | Some pool -> Dppar.Pool.parallel_map pool measure corpus.Dptrace.Corpus.streams
  | None -> List.map measure corpus.Dptrace.Corpus.streams

let merge_all = function
  | [] ->
    Impact.analyze_graphs Component.drivers [] (* the empty result *)
  | r :: rest -> List.fold_left Impact.merge r rest

let ci_of point samples =
  {
    point;
    mean = Dputil.Stats.mean samples;
    lo = Dputil.Stats.percentile samples 2.5;
    hi = Dputil.Stats.percentile samples 97.5;
  }

let bootstrap ?pool ?(replicates = 200) ?(seed = 1) components corpus =
  let per_stream = Array.of_list (per_stream_results ?pool components corpus) in
  let n = Array.length per_stream in
  let full = merge_all (Array.to_list per_stream) in
  let prng = Dputil.Prng.of_int seed in
  let samples_wait = Array.make replicates 0.0 in
  let samples_run = Array.make replicates 0.0 in
  let samples_opt = Array.make replicates 0.0 in
  let samples_ratio = Array.make replicates 0.0 in
  for b = 0 to replicates - 1 do
    let resampled =
      if n = 0 then []
      else List.init n (fun _ -> per_stream.(Dputil.Prng.int prng n))
    in
    let r = merge_all resampled in
    samples_wait.(b) <- Impact.ia_wait r;
    samples_run.(b) <- Impact.ia_run r;
    samples_opt.(b) <- Impact.ia_opt r;
    samples_ratio.(b) <- Impact.propagation_ratio r
  done;
  {
    ia_wait = ci_of (Impact.ia_wait full) samples_wait;
    ia_run = ci_of (Impact.ia_run full) samples_run;
    ia_opt = ci_of (Impact.ia_opt full) samples_opt;
    propagation_ratio = ci_of (Impact.propagation_ratio full) samples_ratio;
    replicates;
  }

let contains ci v = ci.lo <= v && v <= ci.hi

let pp_ci_pct fmt ci =
  Format.fprintf fmt "%.1f%% [%.1f%%, %.1f%%]" (100.0 *. ci.point)
    (100.0 *. ci.lo) (100.0 *. ci.hi)

let pp fmt t =
  Format.fprintf fmt
    "@[<v>IA_wait = %a@,IA_run  = %a@,IA_opt  = %a@,ratio   = %.2f [%.2f, \
     %.2f]@,(%d bootstrap replicates over streams)@]"
    pp_ci_pct t.ia_wait pp_ci_pct t.ia_run pp_ci_pct t.ia_opt
    t.propagation_ratio.point t.propagation_ratio.lo t.propagation_ratio.hi
    t.replicates
