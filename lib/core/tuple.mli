(** Signature Set Tuples (Definition 5) — the pattern representation.

    A tuple generalises a path segment of an Aggregated Wait Graph into
    three signature {e sets}: wait signatures (functions that suspend their
    caller), unwait signatures (functions that signal suspended threads),
    and running signatures (time-consuming operations, including
    hardware-service dummy signatures — the paper's example pattern lists
    [DiskService] in its running set). Sets deliberately forget ordering,
    so the two interleavings of "two drivers contend a resource held by a
    third" collapse into one pattern. *)

type t = private {
  waits : Dptrace.Signature.t array;  (** Sorted, distinct. *)
  unwaits : Dptrace.Signature.t array;
  runnings : Dptrace.Signature.t array;
}

val of_segment : Awg.node list -> t
(** Tuple of a path segment: union of the node signatures by role. *)

val make :
  waits:Dptrace.Signature.t list ->
  unwaits:Dptrace.Signature.t list ->
  runnings:Dptrace.Signature.t list ->
  t
(** Direct construction (tests, baselines). *)

val subset : t -> t -> bool
(** [subset m p] — every signature of [m] appears in [p], role-wise; the
    containment test used to match contrast meta-patterns against
    full-path patterns. *)

val is_empty : t -> bool

val all_signatures : t -> Dptrace.Signature.t list
(** Distinct signatures across the three sets. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
