(** Signature Set Tuples (Definition 5) — the pattern representation.

    A tuple generalises a path segment of an Aggregated Wait Graph into
    three signature {e sets}: wait signatures (functions that suspend their
    caller), unwait signatures (functions that signal suspended threads),
    and running signatures (time-consuming operations, including
    hardware-service dummy signatures — the paper's example pattern lists
    [DiskService] in its running set). Sets deliberately forget ordering,
    so the two interleavings of "two drivers contend a resource held by a
    third" collapse into one pattern.

    Tuples are hash-consed process-wide: each distinct tuple has exactly
    one physical representative carrying a dense {!id}, so {!equal} is one
    int comparison, {!hash} is a precomputed content hash, and mining
    tables key on the id. Construction is domain-safe (serialised on the
    interner's mutex); ids follow first-sight order and are therefore not
    deterministic across runs or domain schedules — deterministic ranking
    always goes through {!compare}, which orders by content. *)

type t = private {
  id : int;  (** Dense hash-consing id; unique per distinct tuple. *)
  hkey : int;  (** Precomputed content hash. *)
  waits : Dptrace.Signature.t array;  (** Sorted, distinct. *)
  unwaits : Dptrace.Signature.t array;
  runnings : Dptrace.Signature.t array;
}

val of_segment : Awg.node list -> t
(** Tuple of a path segment: union of the node signatures by role. *)

val make :
  waits:Dptrace.Signature.t list ->
  unwaits:Dptrace.Signature.t list ->
  runnings:Dptrace.Signature.t list ->
  t
(** Direct construction (tests, baselines). *)

val of_sorted_arrays :
  waits:Dptrace.Signature.t array ->
  unwaits:Dptrace.Signature.t array ->
  runnings:Dptrace.Signature.t array ->
  t
(** Intern from already-sorted, distinct arrays — the mining engine's
    zero-normalisation fast path. The arrays are {e not} retained (copied
    on first sight only), so callers may pass reusable scratch buffers.
    The caller must guarantee sortedness and distinctness; violating it
    corrupts the interner's canonical forms. *)

val id : t -> int
(** The dense hash-consing id. Stable for the process lifetime; numeric
    order is first-sight order, never a ranking key. *)

val subset : t -> t -> bool
(** [subset m p] — every signature of [m] appears in [p], role-wise; the
    containment test used to match contrast meta-patterns against
    full-path patterns. *)

val is_empty : t -> bool

val all_signatures : t -> Dptrace.Signature.t list
(** Distinct signatures across the three sets. *)

val equal : t -> t -> bool
(** O(1): id equality. *)

val compare : t -> t -> int
(** Content order (shorter set first, then elementwise by signature id) —
    identical to the pre-hash-consing order, so ranked output is
    unchanged. O(1) on equal tuples. *)

val hash : t -> int
(** O(1): the precomputed content hash. *)

val interned_count : unit -> int
(** Number of distinct tuples interned so far (diagnostics). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
