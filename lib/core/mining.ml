module Signature = Dptrace.Signature

(* Pattern tables key on the dense hash-consing id — and since the ids
   are dense by construction, the table is a plain array indexed by id:
   a probe is one bounds check and one load, with no hashing at all.
   Iteration order is by id (first-sight order), so every consumer
   sorts its output by tuple content before returning it. *)
module Tuple_table = struct
  type 'a t = { mutable vals : 'a option array; mutable count : int }

  let create n : 'a t = { vals = Array.make (max 16 n) None; count = 0 }

  let ensure (t : 'a t) id =
    let cap = Array.length t.vals in
    if id >= cap then begin
      let fresh = Array.make (max (2 * cap) (id + 1)) None in
      Array.blit t.vals 0 fresh 0 cap;
      t.vals <- fresh
    end

  let find_opt (t : 'a t) tuple =
    let id = Tuple.id tuple in
    if id < Array.length t.vals then Array.unsafe_get t.vals id else None

  let replace (t : 'a t) tuple v =
    let id = Tuple.id tuple in
    ensure t id;
    (match t.vals.(id) with None -> t.count <- t.count + 1 | Some _ -> ());
    t.vals.(id) <- Some v

  (* For keys known fresh: skips the occupancy check. *)
  let add_new (t : 'a t) tuple v =
    let id = Tuple.id tuple in
    ensure t id;
    t.vals.(id) <- Some v;
    t.count <- t.count + 1

  let fold f (t : 'a t) init =
    let acc = ref init in
    Array.iter (function Some v -> acc := f v !acc | None -> ()) t.vals;
    !acc

  let length (t : 'a t) = t.count
end

type meta = {
  tuple : Tuple.t;
  cost : Dputil.Time.t;
  count : int;
  m_witnesses : Provenance.Wset.t;
}

type contrast_reason = Slow_only | Cost_ratio of float

type contrast_meta = {
  cm_meta : meta;
  reason : contrast_reason;
  cm_fast_witnesses : Provenance.Wset.t;
}

type pattern = {
  tuple : Tuple.t;
  cost : Dputil.Time.t;
  count : int;
  max_single : Dputil.Time.t;
  witnesses : Provenance.Wset.t;
  fast_witnesses : Provenance.Wset.t;
}

let make_pattern ~tuple ~cost ~count ~max_single =
  {
    tuple;
    cost;
    count;
    max_single;
    witnesses = Provenance.Wset.empty;
    fast_witnesses = Provenance.Wset.empty;
  }

type result = {
  contrast_metas : contrast_meta list;
  patterns : pattern list;
  fast_meta_count : int;
  slow_meta_count : int;
}

let default_k = 5

(* Throughput counters (no-ops unless Dpobs metrics are on). *)
let c_segments = Dpobs.Metrics.counter "mining.segments_enumerated"
let c_tuples = Dpobs.Metrics.counter "mining.tuples_recorded"
let c_index_candidates = Dpobs.Metrics.counter "mining.index_candidates"
let c_index_hits = Dpobs.Metrics.counter "mining.index_hits"

(* Single-pass last element: segments arrive start-to-end and the
   aggregates live on the end node. *)
let rec last_node = function
  | [ (n : Awg.node) ] -> n
  | _ :: rest -> last_node rest
  | [] -> invalid_arg "Mining.last_node: empty segment"

let avg_of (m : meta) =
  Dputil.Stats.ratio (float_of_int m.cost) (float_of_int m.count)

let avg_cost p = Dputil.Stats.ratio (float_of_int p.cost) (float_of_int p.count)

(* {2 Incremental segment enumeration}

   The naive enumerator rebuilds a tuple from scratch for every segment:
   collect the signatures of all nodes on the segment, sort_uniq each
   role, then hash three arrays to probe the meta table — O(len · log)
   work per segment even though consecutive segments differ by one node.
   The engine instead walks segments with per-role {e sorted multiset}
   scratches: extending a segment pushes one node's signatures (binary
   search + blit), retracting pops them, and the tuple-in-progress is
   always available in sorted distinct form for O(distinct) freezing. *)

module Scratch = struct
  (* Sorted multiset of signature ids. Multiplicities matter: a segment
     can traverse the same signature twice, and the set view (the ids
     array prefix) must survive popping one of the two occurrences.
     [hsum] is a commutative content hash of the distinct-id set,
     maintained in O(1) per push/pop so probing the segment memo never
     re-walks the scratch. *)
  type t = {
    mutable ids : int array;
    mutable mult : int array;
    mutable len : int;
    mutable hsum : int;
  }

  (* Multiplicative scramble; summed per distinct id, so insertion order
     cannot matter. Collisions are resolved by full content matching. *)
  let elem_mix id = id * 0x2545F4914F6CDD1D

  let create () = { ids = Array.make 8 0; mult = Array.make 8 0; len = 0; hsum = 0 }

  (* Position of [id], or its insertion point. Linear: a role holds at
     most [k] distinct ids, where branch-predictable scans beat binary
     search. *)
  let locate t id =
    let ids = t.ids and n = t.len in
    let i = ref 0 in
    while !i < n && Array.unsafe_get ids !i < id do
      incr i
    done;
    !i

  let grow t =
    let cap = Array.length t.ids in
    let ids = Array.make (2 * cap) 0 and mult = Array.make (2 * cap) 0 in
    Array.blit t.ids 0 ids 0 t.len;
    Array.blit t.mult 0 mult 0 t.len;
    t.ids <- ids;
    t.mult <- mult

  (* Shifts are hand-rolled: they move at most [k - 1] elements, below
     where [Array.blit]'s call overhead pays for itself. *)
  let push t id =
    let i = locate t id in
    if i < t.len && t.ids.(i) = id then t.mult.(i) <- t.mult.(i) + 1
    else begin
      if t.len = Array.length t.ids then grow t;
      let ids = t.ids and mult = t.mult in
      for j = t.len downto i + 1 do
        Array.unsafe_set ids j (Array.unsafe_get ids (j - 1));
        Array.unsafe_set mult j (Array.unsafe_get mult (j - 1))
      done;
      Array.unsafe_set ids i id;
      Array.unsafe_set mult i 1;
      t.len <- t.len + 1;
      t.hsum <- t.hsum + elem_mix id
    end

  (* [id] must be present (every pop matches a push). *)
  let pop t id =
    let i = locate t id in
    if t.mult.(i) > 1 then t.mult.(i) <- t.mult.(i) - 1
    else begin
      let ids = t.ids and mult = t.mult in
      for j = i to t.len - 2 do
        Array.unsafe_set ids j (Array.unsafe_get ids (j + 1));
        Array.unsafe_set mult j (Array.unsafe_get mult (j + 1))
      done;
      t.len <- t.len - 1;
      t.hsum <- t.hsum - elem_mix id
    end

  (* Manual fill: [Array.init] calls its closure per element and this
     runs three times per frozen tuple. *)
  let to_sigs t =
    let n = t.len in
    let a = Array.make n (Signature.of_int_unsafe 0) in
    for i = 0 to n - 1 do
      Array.unsafe_set a i (Signature.of_int_unsafe (Array.unsafe_get t.ids i))
    done;
    a
end

type scratch3 = { sw : Scratch.t; su : Scratch.t; sr : Scratch.t }

let scratch3 () =
  { sw = Scratch.create (); su = Scratch.create (); sr = Scratch.create () }

let push_node sc (n : Awg.node) =
  match n.Awg.status with
  | Awg.Waiting { wait_sig; unwait_sig } ->
    Scratch.push sc.sw (Signature.to_int wait_sig);
    Scratch.push sc.su (Signature.to_int unwait_sig)
  | Awg.Running s | Awg.Hw s -> Scratch.push sc.sr (Signature.to_int s)

let pop_node sc (n : Awg.node) =
  match n.Awg.status with
  | Awg.Waiting { wait_sig; unwait_sig } ->
    Scratch.pop sc.sw (Signature.to_int wait_sig);
    Scratch.pop sc.su (Signature.to_int unwait_sig)
  | Awg.Running s | Awg.Hw s -> Scratch.pop sc.sr (Signature.to_int s)

(* O(1): the per-role hash sums are maintained by push/pop. Distinct
   role multipliers keep a signature's role from being interchangeable.
   This keys the local memo only (candidates are content-verified), so
   it need not match [Tuple.hash]. *)
let scratch_hash sc =
  (sc.sw.Scratch.hsum + (3 * sc.sw.Scratch.len)
  + (7 * (sc.su.Scratch.hsum + (3 * sc.su.Scratch.len)))
  + (13 * (sc.sr.Scratch.hsum + (3 * sc.sr.Scratch.len))))
  land max_int

(* Open-addressed map from scratch hash to a bucket of entries — the probe at
   the bottom of every enumerated segment, so it avoids [Hashtbl]'s
   generic hashing and boxed key comparisons entirely. Keys are the
   scratch hashes (>= 0 after the [max_int] mask); -1 marks an empty
   slot. Linear probing from a multiplicatively remixed index (the low
   bits of a multiset sum cluster), doubling at 3/4 load. *)
module Cellmap = struct
  type 'a t = {
    mutable keys : int array;
    mutable vals : 'a list array;
    mutable mask : int;  (* capacity - 1; capacity is a power of two *)
    mutable used : int;
  }

  let create cap0 =
    let cap = max 16 cap0 in
    let cap =
      let c = ref 16 in
      while !c < cap do
        c := !c * 2
      done;
      !c
    in
    { keys = Array.make cap (-1); vals = Array.make cap []; mask = cap - 1; used = 0 }

  (* Slot holding [h], or the empty slot where it belongs. *)
  let slot t h =
    let i = ref ((h * 0x9E3779B97F4A7C1) lsr 16 land t.mask) in
    while
      let k = Array.unsafe_get t.keys !i in
      k <> h && k <> -1
    do
      i := (!i + 1) land t.mask
    done;
    !i

  let grow t =
    let okeys = t.keys and ovals = t.vals in
    let cap = 2 * (t.mask + 1) in
    t.keys <- Array.make cap (-1);
    t.vals <- Array.make cap [];
    t.mask <- cap - 1;
    Array.iteri
      (fun i k ->
        if k >= 0 then begin
          let j = slot t k in
          t.keys.(j) <- k;
          t.vals.(j) <- ovals.(i)
        end)
      okeys

  (* Store [v] at slot [i] (from a preceding [slot t h] with no
     intervening writes), claiming the slot if it was empty. *)
  let set_at t i h v =
    t.vals.(i) <- v;
    if t.keys.(i) = -1 then begin
      t.keys.(i) <- h;
      t.used <- t.used + 1;
      if 4 * t.used > 3 * (t.mask + 1) then grow t
    end

  let iter f t =
    Array.iteri (fun i k -> if k >= 0 then f t.vals.(i)) t.keys

  let fold f t acc =
    let acc = ref acc in
    iter (fun v -> acc := f v !acc) t;
    !acc
end

let freeze_scratch sc =
  Tuple.of_sorted_arrays ~waits:(Scratch.to_sigs sc.sw)
    ~unwaits:(Scratch.to_sigs sc.su) ~runnings:(Scratch.to_sigs sc.sr)

let blob_of_scratch sc =
  let wl = sc.sw.Scratch.len
  and ul = sc.su.Scratch.len
  and rl = sc.sr.Scratch.len in
  let b = Array.make (3 + wl + ul + rl) 0 in
  b.(0) <- wl;
  b.(1) <- ul;
  b.(2) <- rl;
  Array.blit sc.sw.Scratch.ids 0 b 3 wl;
  Array.blit sc.su.Scratch.ids 0 b (3 + wl) ul;
  Array.blit sc.sr.Scratch.ids 0 b (3 + wl + ul) rl;
  b

let rec blob_eq_region ids b off i len =
  i >= len
  || Array.unsafe_get ids i = Array.unsafe_get b (off + i)
     && blob_eq_region ids b off (i + 1) len

let scratch_matches_blob sc b =
  let wl = Array.unsafe_get b 0
  and ul = Array.unsafe_get b 1
  and rl = Array.unsafe_get b 2 in
  wl = sc.sw.Scratch.len
  && ul = sc.su.Scratch.len
  && rl = sc.sr.Scratch.len
  && blob_eq_region sc.sw.Scratch.ids b 3 0 wl
  && blob_eq_region sc.su.Scratch.ids b (3 + wl) 0 ul
  && blob_eq_region sc.sr.Scratch.ids b (3 + wl + ul) 0 rl

(* A memoised freeze: repeated tuples (the common case — that is why the
   meta table merges at all) resolve against a local lock-free cache and
   only first sights pay the interner's mutex + array materialisation.
   Entries carry their match blob so repeat probes stay sequential. *)
type freezer = { sc : scratch3; memo : (Tuple.t * int array) Cellmap.t }

let freezer () = { sc = scratch3 (); memo = Cellmap.create 256 }

let freeze fr =
  let sc = fr.sc in
  let h = scratch_hash sc in
  let i = Cellmap.slot fr.memo h in
  let known = fr.memo.Cellmap.vals.(i) in
  let rec find = function
    | [] ->
      let t = freeze_scratch sc in
      Cellmap.set_at fr.memo i h ((t, blob_of_scratch sc) :: known);
      t
    | (t, b) :: rest -> if scratch_matches_blob sc b then t else find rest
  in
  find known

(* {2 Meta-pattern enumeration}

   Per-tuple accumulator. Witness sets are collected in (reversed)
   arrival order and folded only at finalisation: {!Provenance.Wset.union}
   truncates to the top-k entries and is therefore not associative, so to
   stay bit-identical with the sequential reference the engine must apply
   the unions in exactly the reference's left-to-right segment order —
   including when roots were enumerated on different domains. *)
type macc = {
  mt : Tuple.t;
  mb : int array;
      (** Match blob: [[|wlen; ulen; rlen; w ids…; u ids…; r ids…|]].
          Verifying a probe against this flat copy is one sequential
          scan; chasing [mt]'s three role arrays costs a cache miss
          each, and the verify runs once per enumerated segment. *)
  mutable a_cost : Dputil.Time.t;
  mutable a_count : int;
  mutable a_wrev : Provenance.Wset.t list;
}

let wset_of_rev = function
  | [] -> Provenance.Wset.empty
  | wrev -> (
    match List.rev wrev with
    | w :: rest -> List.fold_left Provenance.Wset.union w rest
    | [] -> assert false)

(* Segment enumeration state: the scratch plus one table fusing the
   tuple memo with the per-tuple accumulators, keyed by the O(1) scratch
   hash. Each segment costs one table probe; the tuple is only frozen
   (arrays materialised, globally interned) on first sight. *)
type estate = {
  esc : scratch3;
  cells : macc Cellmap.t;
  mutable nsegs : int;
}

let estate ?(cells = 512) () =
  { esc = scratch3 (); cells = Cellmap.create cells; nsegs = 0 }

(* Walk the bucket updating the matching accumulator in place; [true]
   iff no entry matched (allocation-free on the hit path). *)
let rec update_or_missing sc ms ~prov (last : Awg.node) =
  match ms with
  | [] -> true
  | m :: rest ->
    if scratch_matches_blob sc m.mb then begin
      m.a_cost <- m.a_cost + last.Awg.cost;
      m.a_count <- m.a_count + last.Awg.count;
      if prov then m.a_wrev <- last.Awg.witnesses :: m.a_wrev;
      false
    end
    else update_or_missing sc rest ~prov last

let record st ~prov (last : Awg.node) =
  st.nsegs <- st.nsegs + 1;
  let h = scratch_hash st.esc in
  let i = Cellmap.slot st.cells h in
  let known = st.cells.Cellmap.vals.(i) in
  if update_or_missing st.esc known ~prov last then
    Cellmap.set_at st.cells i h
      ({
         mt = freeze_scratch st.esc;
         mb = blob_of_scratch st.esc;
         a_cost = last.Awg.cost;
         a_count = last.Awg.count;
         a_wrev = (if prov then [ last.Awg.witnesses ] else []);
       }
      :: known)

(* Enumerate every segment of length 1..k starting inside the subtrees
   of [roots], in order. The outer explicit stack visits start nodes in
   preorder and the inner walk extends each start downward — the exact
   segment order of [Awg.iter_segments]. *)
let enumerate_subtrees st ~k ~prov roots =
  let rec extend depth n =
    push_node st.esc n;
    record st ~prov n;
    if depth < k then begin
      let kids = Awg.sorted_children n in
      for i = 0 to Array.length kids - 1 do
        extend (depth + 1) (Array.unsafe_get kids i)
      done
    end;
    pop_node st.esc n
  in
  let stack = ref roots in
  let running = ref true in
  while !running do
    match !stack with
    | [] -> running := false
    | n :: rest ->
      stack := rest;
      extend 1 n;
      let kids = Awg.sorted_children n in
      for i = Array.length kids - 1 downto 0 do
        stack := kids.(i) :: !stack
      done
  done

let maccs_of st =
  Cellmap.fold (fun ms acc -> List.rev_append ms acc) st.cells []

let meta_of_macc (m : macc) =
  {
    tuple = m.mt;
    cost = m.a_cost;
    count = m.a_count;
    m_witnesses = wset_of_rev m.a_wrev;
  }

let meta_table ?pool awg ~k =
  if k < 1 then invalid_arg "Mining.meta_table: k must be >= 1";
  let prov = Provenance.enabled () in
  let roots = Awg.roots awg in
  match pool with
  | None ->
    (* One shared state across all roots: accumulators fill in global
       segment order directly. *)
    let st = estate ~cells:2048 () in
    enumerate_subtrees st ~k ~prov roots;
    Dpobs.Metrics.add c_segments st.nsegs;
    let table : meta Tuple_table.t = Tuple_table.create (Tuple.interned_count ()) in
    Cellmap.iter
      (fun ms ->
        List.iter (fun m -> Tuple_table.add_new table m.mt (meta_of_macc m)) ms)
      st.cells;
    Dpobs.Metrics.add c_tuples (Tuple_table.length table);
    table
  | Some pool ->
    (* Fan out per root, then merge in root order. Tuple ids partition
       the merge: across distinct ids it is independent, and within one
       id the cost/count sums are commutative while the reversed witness
       lists concatenate newest-in-front — reproducing the global
       segment order, hence bit-identical truncating unions. *)
    let parts =
      Dppar.Pool.parallel_map pool
        (fun r ->
          let st = estate () in
          enumerate_subtrees st ~k ~prov [ r ];
          (maccs_of st, st.nsegs))
        roots
    in
    Dpobs.Metrics.add c_segments
      (List.fold_left (fun acc (_, n) -> acc + n) 0 parts);
    let merged : (int, macc) Hashtbl.t = Hashtbl.create 256 in
    List.iter
      (fun (ms, _) ->
        List.iter
          (fun (m : macc) ->
            let id = Tuple.id m.mt in
            match Hashtbl.find_opt merged id with
            | Some acc ->
              acc.a_cost <- acc.a_cost + m.a_cost;
              acc.a_count <- acc.a_count + m.a_count;
              acc.a_wrev <- m.a_wrev @ acc.a_wrev
            | None -> Hashtbl.replace merged id m)
          ms)
      parts;
    Dpobs.Metrics.add c_tuples (Hashtbl.length merged);
    let table : meta Tuple_table.t = Tuple_table.create (Tuple.interned_count ()) in
    Hashtbl.iter (fun _ m -> Tuple_table.add_new table m.mt (meta_of_macc m)) merged;
    table

let enumerate_metas ?pool awg ~k =
  Tuple_table.fold (fun m acc -> m :: acc) (meta_table ?pool awg ~k) []
  |> List.sort (fun (a : meta) (b : meta) -> Tuple.compare a.tuple b.tuple)

let discover_contrasts ~fast_table ~slow_table ~ratio_threshold =
  Tuple_table.fold
    (fun (slow_meta : meta) acc ->
      match Tuple_table.find_opt fast_table slow_meta.tuple with
      | None ->
        {
          cm_meta = slow_meta;
          reason = Slow_only;
          cm_fast_witnesses = Provenance.Wset.empty;
        }
        :: acc
      | Some fast_meta ->
        let ratio = Dputil.Stats.ratio (avg_of slow_meta) (avg_of fast_meta) in
        if ratio > ratio_threshold then
          {
            cm_meta = slow_meta;
            reason = Cost_ratio ratio;
            cm_fast_witnesses = fast_meta.m_witnesses;
          }
          :: acc
        else acc)
    slow_table []
  |> List.sort (fun a b -> Tuple.compare a.cm_meta.tuple b.cm_meta.tuple)

(* {2 Pattern selection via an inverted index}

   The naive selector tests every contrast meta against every full path:
   O(paths · metas) subset checks. The engine instead indexes each meta
   under exactly one of its signatures — the one rarest across the path
   tuples, so buckets stay small — and generates per-path candidates from
   the buckets of the signatures the path actually contains. Candidate
   lists are sorted back into contrast-meta list order before the subset
   verification, so the surviving [matching] list (and with it the
   order-sensitive witness unions) is identical to the naive filter's. *)

let role_key role s = (Signature.to_int s * 4) + role

let tuple_keys (t : Tuple.t) f =
  Array.iter (fun s -> f (role_key 0 s)) t.Tuple.waits;
  Array.iter (fun s -> f (role_key 1 s)) t.Tuple.unwaits;
  Array.iter (fun s -> f (role_key 2 s)) t.Tuple.runnings

(* One full slow path, leaf-materialised during the DFS. *)
type path_info = { p_tuple : Tuple.t; p_leaf : Awg.node; p_root : Awg.node }

let full_path_infos slow =
  let fr = freezer () in
  let out = ref [] in
  let rec go root n =
    push_node fr.sc n;
    let kids = Awg.sorted_children n in
    if Array.length kids = 0 then
      out := { p_tuple = freeze fr; p_leaf = n; p_root = root } :: !out
    else Array.iter (go root) kids;
    pop_node fr.sc n
  in
  List.iter (fun r -> go r r) (Awg.roots slow);
  List.rev !out

let select_patterns ~slow ~contrast_metas =
  match contrast_metas with
  | [] -> []
  | _ ->
    let prov = Provenance.enabled () in
    let paths = full_path_infos slow in
    (* Signature ids are dense interner indices, so [role_key] values fit
       a direct array of 4 * interned_count slots — document frequencies
       and index rows are plain loads, no hashing anywhere on the per-path
       hot loop. *)
    let nkeys = 4 * Signature.interned_count () in
    let df = Array.make nkeys 0 in
    List.iter
      (fun p ->
        tuple_keys p.p_tuple (fun key ->
            Array.unsafe_set df key (1 + Array.unsafe_get df key)))
      paths;
    let metas = Array.of_list contrast_metas in
    let nwords = (Array.length metas + 62) / 63 in
    (* Index every meta under its rarest key (ties: smallest key), as a
       bitset over meta indices: per-path candidate generation is then a
       few word ORs. Each meta's full key list is also materialised once
       ([meta_keys]): tuples are sorted {e distinct} sets per role, so
       [Tuple.subset] is exactly key containment, and candidate
       verification reduces to stamp lookups against the path's keys.
       Metas with an empty tuple match every path and bypass the index.
       [no_row] is the shared absent-row sentinel (physical equality). *)
    let no_row = [||] in
    let index = Array.make nkeys no_row in
    let always = Array.make nwords 0 in
    let add_bit bits i =
      bits.(i / 63) <- bits.(i / 63) lor (1 lsl (i mod 63))
    in
    let meta_keys =
      Array.map
        (fun cm ->
          let ks = ref [] in
          tuple_keys cm.cm_meta.tuple (fun key -> ks := key :: !ks);
          Array.of_list !ks)
        metas
    in
    Array.iteri
      (fun i cm ->
        if Tuple.is_empty cm.cm_meta.tuple then add_bit always i
        else begin
          let best = ref (-1) and best_df = ref max_int in
          Array.iter
            (fun key ->
              let d = df.(key) in
              if d < !best_df || (d = !best_df && key < !best) then begin
                best := key;
                best_df := d
              end)
            meta_keys.(i);
          let bits =
            if index.(!best) == no_row then begin
              let b = Array.make nwords 0 in
              index.(!best) <- b;
              b
            end
            else index.(!best)
          in
          add_bit bits i
        end)
      metas;
    (* Lowest set bit's index: six de-interleaving steps, no table. *)
    let ntz b =
      let n = ref 0 and b = ref b in
      if !b land 0xFFFFFFFF = 0 then begin n := 32; b := !b lsr 32 end;
      if !b land 0xFFFF = 0 then begin n := !n + 16; b := !b lsr 16 end;
      if !b land 0xFF = 0 then begin n := !n + 8; b := !b lsr 8 end;
      if !b land 0xF = 0 then begin n := !n + 4; b := !b lsr 4 end;
      if !b land 0x3 = 0 then begin n := !n + 2; b := !b lsr 2 end;
      if !b land 0x1 = 0 then incr n;
      !n
    in
    let candidates_sc = ref 0 and hits_sc = ref 0 in
    let cand = Array.make nwords 0 in
    (* Path-key stamps: [seen.(key) = stamp] iff the current path's tuple
       contains [key]; bumping [stamp] clears the array in O(1). *)
    let seen = Array.make nkeys 0 in
    let stamp = ref 0 in
    let table : pattern Tuple_table.t = Tuple_table.create (Tuple.interned_count ()) in
    List.iter
      (fun { p_tuple = tuple; p_leaf = leaf; p_root = root } ->
        incr stamp;
        let now = !stamp in
        Array.blit always 0 cand 0 nwords;
        tuple_keys tuple (fun key ->
            Array.unsafe_set seen key now;
            let bits = Array.unsafe_get index key in
            if bits != no_row then
              for w = 0 to nwords - 1 do
                cand.(w) <- cand.(w) lor Array.unsafe_get bits w
              done);
        let matching = ref [] in
        for w = 0 to nwords - 1 do
          let bits = ref (Array.unsafe_get cand w) in
          while !bits <> 0 do
            let low = !bits land - !bits in
            bits := !bits lxor low;
            incr candidates_sc;
            let i = (w * 63) + ntz low in
            let ks = Array.unsafe_get meta_keys i in
            let nk = Array.length ks in
            let rec contained j =
              j >= nk
              || Array.unsafe_get seen (Array.unsafe_get ks j) = now
                 && contained (j + 1)
            in
            if contained 0 then
              matching := Array.unsafe_get metas i :: !matching
          done
        done;
        (* Candidates were visited in ascending meta order, so the consed
           list reverses back into it. *)
        let matching = List.rev !matching in
        if matching <> [] then begin
          hits_sc := !hits_sc + 1;
          let cost = leaf.Awg.cost
          and count = leaf.Awg.count
          (* The largest single observed execution of the behaviour this
             pattern describes, measured at the top of its propagation
             path: this is what the automated high-impact rule compares
             against T_slow (a leaf's device stall never exceeds a
             scenario threshold; the stacked wait it propagates into
             does). *)
          and max_single = root.Awg.max_cost in
          let witnesses =
            if prov then leaf.Awg.witnesses else Provenance.Wset.empty
          in
          let fast_witnesses =
            if prov then
              List.fold_left
                (fun acc cm -> Provenance.Wset.union acc cm.cm_fast_witnesses)
                Provenance.Wset.empty matching
            else Provenance.Wset.empty
          in
          match Tuple_table.find_opt table tuple with
          | Some p ->
            Tuple_table.replace table tuple
              {
                p with
                cost = p.cost + cost;
                count = p.count + count;
                max_single = max p.max_single max_single;
                witnesses =
                  (if prov then Provenance.Wset.union p.witnesses witnesses
                   else p.witnesses);
                fast_witnesses =
                  (if prov then
                     Provenance.Wset.union p.fast_witnesses fast_witnesses
                   else p.fast_witnesses);
              }
          | None ->
            Tuple_table.replace table tuple
              { tuple; cost; count; max_single; witnesses; fast_witnesses }
        end)
      paths;
    Dpobs.Metrics.add c_index_candidates !candidates_sc;
    Dpobs.Metrics.add c_index_hits !hits_sc;
    Tuple_table.fold (fun p acc -> p :: acc) table []
    |> List.sort (fun a b ->
           match compare (avg_cost b) (avg_cost a) with
           | 0 -> Tuple.compare a.tuple b.tuple
           | c -> c)

let mine ?pool ?(k = default_k) ~fast ~slow ~(spec : Dptrace.Scenario.spec) ()
    =
  (* Tuple enumeration dominates mining cost; give each class its own
     span so the trace shows where k bites. *)
  let fast_table =
    Dpobs.Span.with_span ~args:[ ("class", "fast") ] "mining.enumerate_tuples"
      (fun () -> meta_table ?pool fast ~k)
  in
  let slow_table =
    Dpobs.Span.with_span ~args:[ ("class", "slow") ] "mining.enumerate_tuples"
      (fun () -> meta_table ?pool slow ~k)
  in
  let ratio_threshold =
    Dputil.Stats.ratio (float_of_int spec.tslow) (float_of_int spec.tfast)
  in
  let contrast_metas =
    Dpobs.Span.with_span "mining.contrast_discovery" (fun () ->
        discover_contrasts ~fast_table ~slow_table ~ratio_threshold)
  in
  let patterns =
    Dpobs.Span.with_span "mining.pattern_selection" (fun () ->
        select_patterns ~slow ~contrast_metas)
  in
  {
    contrast_metas;
    patterns;
    fast_meta_count = Tuple_table.length fast_table;
    slow_meta_count = Tuple_table.length slow_table;
  }

(* {2 Reference miner}

   The pre-optimisation algorithms, kept verbatim (modulo the shared
   single-pass [last_node]): tuple-per-segment enumeration over the
   original re-sorting traversal, the exhaustive metas × paths subset
   scan, and — so the bench compares against what actually shipped —
   the original table keying, which hashed and compared tuples {e by
   content} on every probe (allocating projected int arrays for
   [Hashtbl.hash], as the pre-interning [Tuple.hash]/[equal] did). The
   equivalence property in the test suite and the bench's
   [identical_results] check both pin the engine to this oracle. *)
module Reference = struct
  (* The pre-optimisation traversal, preserved exactly: children are
     re-fetched from the Hashtbl and re-sorted at {e every} visit (once
     per path prefix reaching the node), and each segment is
     materialised as a node list. The frozen-children arrays and the
     push/pop scratch are precisely what the engine adds, so the oracle
     must not ride on them. The sort key (polymorphic compare on
     [status]) matches {!Awg.sorted_children}'s, keeping enumeration
     order — and with it every order-sensitive witness union —
     identical between the two miners. *)
  let sorted_nodes_naive (children : (Awg.status, Awg.node) Hashtbl.t) =
    Hashtbl.fold (fun _ n acc -> n :: acc) children []
    |> List.sort (fun (a : Awg.node) b -> compare a.Awg.status b.Awg.status)

  let iter_segments_naive awg ~k ~f =
    if k < 1 then invalid_arg "Awg.iter_segments: k must be >= 1";
    let rec extend prefix_rev len n =
      let prefix_rev = n :: prefix_rev in
      f (List.rev prefix_rev);
      if len < k then
        List.iter
          (extend prefix_rev (len + 1))
          (sorted_nodes_naive n.Awg.children)
    in
    let rec every_node n =
      extend [] 1 n;
      List.iter every_node (sorted_nodes_naive n.Awg.children)
    in
    List.iter every_node (Awg.roots awg)

  let full_paths_naive awg =
    let out = ref [] in
    let rec go prefix_rev n =
      let prefix_rev = n :: prefix_rev in
      let kids = sorted_nodes_naive n.Awg.children in
      if kids = [] then out := List.rev prefix_rev :: !out
      else List.iter (go prefix_rev) kids
    in
    List.iter (go []) (Awg.roots awg);
    List.rev !out

  module Old_key = struct
    type t = Tuple.t

    let ints (a : Signature.t array) = Array.map Signature.to_int a

    let equal (a : Tuple.t) (b : Tuple.t) =
      ints a.Tuple.waits = ints b.Tuple.waits
      && ints a.Tuple.unwaits = ints b.Tuple.unwaits
      && ints a.Tuple.runnings = ints b.Tuple.runnings

    let hash (t : Tuple.t) =
      Hashtbl.hash
        (ints t.Tuple.waits, ints t.Tuple.unwaits, ints t.Tuple.runnings)
  end

  module T = Hashtbl.Make (Old_key)

  type 'a table = 'a T.t

  let table_length = T.length

  let meta_table awg ~k =
    let prov = Provenance.enabled () in
    let table : meta T.t = T.create 256 in
    iter_segments_naive awg ~k ~f:(fun segment ->
        let tuple = Tuple.of_segment segment in
        let last = last_node segment in
        let cost = last.Awg.cost and count = last.Awg.count in
        match T.find_opt table tuple with
        | Some m ->
          T.replace table tuple
            {
              m with
              cost = m.cost + cost;
              count = m.count + count;
              m_witnesses =
                (if prov then
                   Provenance.Wset.union m.m_witnesses last.Awg.witnesses
                 else m.m_witnesses);
            }
        | None ->
          T.replace table tuple
            {
              tuple;
              cost;
              count;
              m_witnesses =
                (if prov then last.Awg.witnesses else Provenance.Wset.empty);
            });
    table

  let enumerate_metas awg ~k =
    T.fold (fun _ m acc -> m :: acc) (meta_table awg ~k) []
    |> List.sort (fun (a : meta) (b : meta) -> Tuple.compare a.tuple b.tuple)

  let discover_contrasts ~fast_table ~slow_table ~ratio_threshold =
    T.fold
      (fun tuple (slow_meta : meta) acc ->
        match T.find_opt fast_table tuple with
        | None ->
          {
            cm_meta = slow_meta;
            reason = Slow_only;
            cm_fast_witnesses = Provenance.Wset.empty;
          }
          :: acc
        | Some fast_meta ->
          let ratio =
            Dputil.Stats.ratio (avg_of slow_meta) (avg_of fast_meta)
          in
          if ratio > ratio_threshold then
            {
              cm_meta = slow_meta;
              reason = Cost_ratio ratio;
              cm_fast_witnesses = fast_meta.m_witnesses;
            }
            :: acc
          else acc)
      slow_table []
    |> List.sort (fun a b -> Tuple.compare a.cm_meta.tuple b.cm_meta.tuple)

  let select_patterns ~slow ~contrast_metas =
    let prov = Provenance.enabled () in
    let table : pattern T.t = T.create 128 in
    List.iter
      (fun path ->
        let tuple = Tuple.of_segment path in
        let matching =
          List.filter
            (fun cm -> Tuple.subset cm.cm_meta.tuple tuple)
            contrast_metas
        in
        if matching <> [] then begin
          let leaf = last_node path in
          let root = List.hd path in
          let cost = leaf.Awg.cost
          and count = leaf.Awg.count
          and max_single = root.Awg.max_cost in
          let witnesses =
            if prov then leaf.Awg.witnesses else Provenance.Wset.empty
          in
          let fast_witnesses =
            if prov then
              List.fold_left
                (fun acc cm -> Provenance.Wset.union acc cm.cm_fast_witnesses)
                Provenance.Wset.empty matching
            else Provenance.Wset.empty
          in
          match T.find_opt table tuple with
          | Some p ->
            T.replace table tuple
              {
                p with
                cost = p.cost + cost;
                count = p.count + count;
                max_single = max p.max_single max_single;
                witnesses =
                  (if prov then Provenance.Wset.union p.witnesses witnesses
                   else p.witnesses);
                fast_witnesses =
                  (if prov then
                     Provenance.Wset.union p.fast_witnesses fast_witnesses
                   else p.fast_witnesses);
              }
          | None ->
            T.replace table tuple
              { tuple; cost; count; max_single; witnesses; fast_witnesses }
        end)
      (full_paths_naive slow);
    T.fold (fun _ p acc -> p :: acc) table []
    |> List.sort (fun a b ->
           match compare (avg_cost b) (avg_cost a) with
           | 0 -> Tuple.compare a.tuple b.tuple
           | c -> c)

  let mine ?(k = default_k) ~fast ~slow ~(spec : Dptrace.Scenario.spec) () =
    let fast_table = meta_table fast ~k in
    let slow_table = meta_table slow ~k in
    let ratio_threshold =
      Dputil.Stats.ratio (float_of_int spec.tslow) (float_of_int spec.tfast)
    in
    let contrast_metas =
      discover_contrasts ~fast_table ~slow_table ~ratio_threshold
    in
    let patterns = select_patterns ~slow ~contrast_metas in
    {
      contrast_metas;
      patterns;
      fast_meta_count = T.length fast_table;
      slow_meta_count = T.length slow_table;
    }
end

let pp_pattern fmt p =
  Format.fprintf fmt "@[<v>%a@,C=%a N=%d avg=%.1fms max=%a@]" Tuple.pp p.tuple
    Dputil.Time.pp p.cost p.count
    (avg_cost p /. 1000.0)
    Dputil.Time.pp p.max_single
