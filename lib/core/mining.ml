module Tuple_table = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

type meta = {
  tuple : Tuple.t;
  cost : Dputil.Time.t;
  count : int;
  m_witnesses : Provenance.Wset.t;
}

type contrast_reason = Slow_only | Cost_ratio of float

type contrast_meta = {
  cm_meta : meta;
  reason : contrast_reason;
  cm_fast_witnesses : Provenance.Wset.t;
}

type pattern = {
  tuple : Tuple.t;
  cost : Dputil.Time.t;
  count : int;
  max_single : Dputil.Time.t;
  witnesses : Provenance.Wset.t;
  fast_witnesses : Provenance.Wset.t;
}

let make_pattern ~tuple ~cost ~count ~max_single =
  {
    tuple;
    cost;
    count;
    max_single;
    witnesses = Provenance.Wset.empty;
    fast_witnesses = Provenance.Wset.empty;
  }

type result = {
  contrast_metas : contrast_meta list;
  patterns : pattern list;
  fast_meta_count : int;
  slow_meta_count : int;
}

let default_k = 5

let meta_table awg ~k =
  let prov = Provenance.enabled () in
  let table : meta Tuple_table.t = Tuple_table.create 256 in
  Awg.iter_segments awg ~k ~f:(fun segment ->
      let tuple = Tuple.of_segment segment in
      let last = List.nth segment (List.length segment - 1) in
      let cost = last.Awg.cost and count = last.Awg.count in
      match Tuple_table.find_opt table tuple with
      | Some m ->
        Tuple_table.replace table tuple
          {
            m with
            cost = m.cost + cost;
            count = m.count + count;
            m_witnesses =
              (if prov then
                 Provenance.Wset.union m.m_witnesses last.Awg.witnesses
               else m.m_witnesses);
          }
      | None ->
        Tuple_table.replace table tuple
          {
            tuple;
            cost;
            count;
            m_witnesses =
              (if prov then last.Awg.witnesses else Provenance.Wset.empty);
          });
  table

let enumerate_metas awg ~k =
  Tuple_table.fold (fun _ m acc -> m :: acc) (meta_table awg ~k) []
  |> List.sort (fun (a : meta) (b : meta) -> Tuple.compare a.tuple b.tuple)

let avg_of (m : meta) =
  Dputil.Stats.ratio (float_of_int m.cost) (float_of_int m.count)

let discover_contrasts ~fast_table ~slow_table ~ratio_threshold =
  Tuple_table.fold
    (fun tuple (slow_meta : meta) acc ->
      match Tuple_table.find_opt fast_table tuple with
      | None ->
        {
          cm_meta = slow_meta;
          reason = Slow_only;
          cm_fast_witnesses = Provenance.Wset.empty;
        }
        :: acc
      | Some fast_meta ->
        let ratio = Dputil.Stats.ratio (avg_of slow_meta) (avg_of fast_meta) in
        if ratio > ratio_threshold then
          {
            cm_meta = slow_meta;
            reason = Cost_ratio ratio;
            cm_fast_witnesses = fast_meta.m_witnesses;
          }
          :: acc
        else acc)
    slow_table []
  |> List.sort (fun a b -> Tuple.compare a.cm_meta.tuple b.cm_meta.tuple)

let avg_cost p = Dputil.Stats.ratio (float_of_int p.cost) (float_of_int p.count)

let select_patterns ~slow ~contrast_metas =
  let prov = Provenance.enabled () in
  let table : pattern Tuple_table.t = Tuple_table.create 128 in
  List.iter
    (fun path ->
      let tuple = Tuple.of_segment path in
      let matching =
        List.filter (fun cm -> Tuple.subset cm.cm_meta.tuple tuple) contrast_metas
      in
      if matching <> [] then begin
        let leaf = List.nth path (List.length path - 1) in
        let root = List.hd path in
        let cost = leaf.Awg.cost
        and count = leaf.Awg.count
        (* The largest single observed execution of the behaviour this
           pattern describes, measured at the top of its propagation path:
           this is what the automated high-impact rule compares against
           T_slow (a leaf's device stall never exceeds a scenario
           threshold; the stacked wait it propagates into does). *)
        and max_single = root.Awg.max_cost in
        let witnesses =
          if prov then leaf.Awg.witnesses else Provenance.Wset.empty
        in
        let fast_witnesses =
          if prov then
            List.fold_left
              (fun acc cm -> Provenance.Wset.union acc cm.cm_fast_witnesses)
              Provenance.Wset.empty matching
          else Provenance.Wset.empty
        in
        match Tuple_table.find_opt table tuple with
        | Some p ->
          Tuple_table.replace table tuple
            {
              p with
              cost = p.cost + cost;
              count = p.count + count;
              max_single = max p.max_single max_single;
              witnesses =
                (if prov then Provenance.Wset.union p.witnesses witnesses
                 else p.witnesses);
              fast_witnesses =
                (if prov then
                   Provenance.Wset.union p.fast_witnesses fast_witnesses
                 else p.fast_witnesses);
            }
        | None ->
          Tuple_table.replace table tuple
            { tuple; cost; count; max_single; witnesses; fast_witnesses }
      end)
    (Awg.full_paths slow);
  Tuple_table.fold (fun _ p acc -> p :: acc) table []
  |> List.sort (fun a b ->
         match compare (avg_cost b) (avg_cost a) with
         | 0 -> Tuple.compare a.tuple b.tuple
         | c -> c)

let mine ?(k = default_k) ~fast ~slow ~(spec : Dptrace.Scenario.spec) () =
  (* Tuple enumeration dominates mining cost; give each class its own
     span so the trace shows where k bites. *)
  let fast_table =
    Dpobs.Span.with_span ~args:[ ("class", "fast") ] "mining.enumerate_tuples"
      (fun () -> meta_table fast ~k)
  in
  let slow_table =
    Dpobs.Span.with_span ~args:[ ("class", "slow") ] "mining.enumerate_tuples"
      (fun () -> meta_table slow ~k)
  in
  let ratio_threshold =
    Dputil.Stats.ratio (float_of_int spec.tslow) (float_of_int spec.tfast)
  in
  let contrast_metas =
    Dpobs.Span.with_span "mining.contrast_discovery" (fun () ->
        discover_contrasts ~fast_table ~slow_table ~ratio_threshold)
  in
  let patterns =
    Dpobs.Span.with_span "mining.pattern_selection" (fun () ->
        select_patterns ~slow ~contrast_metas)
  in
  {
    contrast_metas;
    patterns;
    fast_meta_count = Tuple_table.length fast_table;
    slow_meta_count = Tuple_table.length slow_table;
  }

let pp_pattern fmt p =
  Format.fprintf fmt "@[<v>%a@,C=%a N=%d avg=%.1fms max=%a@]" Tuple.pp p.tuple
    Dputil.Time.pp p.cost p.count
    (avg_cost p /. 1000.0)
    Dputil.Time.pp p.max_single
