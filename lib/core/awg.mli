(** Aggregated Wait Graphs (Definitions 2–3, Algorithm 1).

    An AWG abstracts and aggregates the runtime behaviour of many Wait
    Graphs of the same scenario class. It is a forest whose inner nodes are
    {e waiting} nodes carrying a wait/unwait signature pair, and whose
    leaves are {e running} or {e hardware-service} nodes; every node
    aggregates the total cost [v.C] and occurrence count [v.N] of the
    source events it absorbed.

    Construction per source Wait Graph (Algorithm 1):
    + eliminate component-irrelevant nodes, promoting their children (the
      paper spells this out for roots; we apply it uniformly so that the
      aggregated behaviours — and hence mined signature sets — mention the
      chosen components only, as in the paper's examples);
    + merge each wait event with its pairing unwait into a waiting node
      labelled with both topmost component signatures;
    + merge the resulting tree into the AWG on common signature prefixes
      from the roots;
    + optionally reduce non-optimisable portions: a root waiting node whose
      only child is a hardware-service leaf is pruned — hardware latency
      not propagated anywhere is not actionable for driver developers. *)

type status =
  | Waiting of { wait_sig : Dptrace.Signature.t; unwait_sig : Dptrace.Signature.t }
  | Running of Dptrace.Signature.t
  | Hw of Dptrace.Signature.t

type node = private {
  status : status;
  mutable cost : Dputil.Time.t;  (** [v.C] — summed duration. *)
  mutable count : int;  (** [v.N] — number of source events absorbed. *)
  mutable max_cost : Dputil.Time.t;
      (** Largest single source-event cost; feeds the automated
          high-impact rule of Section 5.2.1. *)
  mutable witnesses : Provenance.Wset.t;
      (** Contributing (stream, scenario instance) support, capped to the
          costliest {!Provenance.default_k} entries. Empty unless
          {!Provenance.enabled} was true during {!build}. Accumulated
          exactly (uncapped) while the forest is built and truncated once
          at finalisation, so the cap never makes aggregation
          order-sensitive. *)
  mutable wacc : Provenance.Wacc.t option;
      (** The exact in-build accumulator behind [witnesses]; [None] when
          provenance is off or once the forest is finalised. *)
  children : (status, node) Hashtbl.t;
  mutable frozen_kids : node array option;
      (** Children in sorted-status order, memoised by {!build} once the
          forest stops mutating (see {!sorted_children}). *)
}

type reduction_stats = {
  pruned_roots : int;
  pruned_cost : Dputil.Time.t;
      (** Cost held by pruned direct-hardware root structures. *)
  total_root_cost : Dputil.Time.t;
      (** Cost of all roots before reduction; the paper's "non-optimisable
          portion" is [pruned_cost / total_root_cost]. *)
}

type t

val build :
  ?pool:Dppar.Pool.t ->
  ?reduce:bool ->
  Component.t ->
  Dpwaitgraph.Wait_graph.t list ->
  t
(** Aggregate the given Wait Graphs. [reduce] (default [true]) applies the
    non-optimisable-portion pruning. [pool] parallelises the per-graph
    conversion step; the merge itself is sequential in list order and all
    traversals iterate children in sorted-status order, so the result does
    not depend on scheduling — [build ?pool] is bit-identical to the
    sequential build. *)

val roots : t -> node list
(** Deterministically ordered (by status). *)

val sorted_children : node -> node array
(** A node's children in sorted-status order — the same order every
    traversal here uses. The array is frozen at {!build} time and shared;
    callers must not mutate it. *)

val reduction : t -> reduction_stats

val node_count : t -> int

val total_cost : t -> Dputil.Time.t
(** Σ [v.C] over all nodes. *)

val total_leaf_cost : t -> Dputil.Time.t
(** Σ [v.C] over leaves — the mass that full-path patterns can cover. *)

val iter_segments : t -> k:int -> f:(node list -> unit) -> unit
(** Enumerate every downward path segment of length 1..[k] starting at
    every node (Section 4.2.3's bounded segment enumeration). Segments are
    passed start-to-end. *)

val full_paths : t -> node list list
(** All root-to-leaf paths (a childless root is a one-node path). *)

val non_optimizable_fraction : t -> float
(** [pruned_cost /. total_root_cost]; 0 when nothing was aggregated. *)

val render : t -> string
(** Indented Figure-2-style rendering. *)

val to_dot : t -> string
(** Graphviz rendering of the aggregated forest (node labels carry the
    signatures and C/N aggregates; node area hints at cost). *)

val status_pp : Format.formatter -> status -> unit

(** {1 Per-stream partial forests}

    The unit of incremental re-analysis: one stream's contribution to a
    scenario class's AWG, buildable in isolation, serialisable into the
    snapshot cache, and mergeable such that
    [Partial.merge_all (per-stream partials in corpus order)] is
    bit-identical — costs, counts, max, reduction stats and provenance
    witnesses — to {!build} over the same graphs in one pass. *)

module Partial : sig
  type partial
  (** An unreduced, unfrozen forest. Reduction must wait for the merge:
      whether a root is prunable depends on the children the {e merged}
      forest gives it. *)

  val build : Component.t -> Dpwaitgraph.Wait_graph.t list -> partial
  (** Convert and aggregate one stream's graphs (same conversion and
      merge as {!Awg.build}, minus reduce/freeze). Records exact witness
      accumulators when {!Provenance.enabled}. *)

  val merge_all : ?reduce:bool -> partial list -> t
  (** Merge in list order (the result is order-independent — every
      accumulation commutes), then reduce (default [true]), canonicalise
      witnesses and freeze: the final AWG. Sources are only read, never
      adopted or mutated, so partials stay valid for serialisation. *)

  val is_empty : partial -> bool

  val write : Buffer.t -> partial -> unit
  (** Deterministic wire form (children in sorted-status order, signature
      names, LEB128 varints) — the snapshot cache's payload. *)

  val read : Dptrace.Codec_binary.Wire.cursor -> partial
  (** Inverse of {!write}.
      @raise Dptrace.Codec_binary.Corrupt on malformed input. *)
end
