(** From pattern back to trace: witness lookup.

    Section 2.3: a discovered pattern "guides the analyst to realize the
    concrete performance incident by investigating a specific trace
    stream" — the Figure 1 snapshot was reconstructed this way. This
    module performs that step mechanically: given a contrast pattern, it
    finds the scenario instances whose Wait Graphs actually exhibit it,
    ranked by how much the matching behaviour cost them. *)

type witness = {
  stream : Dptrace.Stream.t;
  instance : Dptrace.Scenario.instance;
  matched_cost : Dputil.Time.t;
      (** Σ cost of the instance's wait-graph events whose signatures
          participate in the pattern match. *)
  chain : Dptrace.Event.t list;
      (** One concrete root-to-leaf event chain realising the pattern
          (top-level wait first). *)
}

val witnesses :
  ?limit:int ->
  Component.t ->
  Dptrace.Corpus.t ->
  scenario:string ->
  pattern:Mining.pattern ->
  unit ->
  witness list
(** Scan the scenario's instances for Wait Graphs containing a
    root-to-leaf chain whose Signature Set Tuple includes the pattern's
    tuple. Returns up to [limit] (default 5) witnesses, costliest first.
    An empty list means the pattern came from other instances than the
    ones scanned (or from a different corpus). *)

val render : witness -> string
(** Figure-1-style narrative: the instance, its duration, and the matched
    propagation chain hop by hop with thread names and costs. *)

(** {1 Drill-down helpers (driveperf explain)} *)

val resolve_ref :
  Dptrace.Corpus.t ->
  Provenance.instance_ref ->
  (Dptrace.Stream.t * Dptrace.Scenario.instance) option
(** Resolve a provenance reference back to its stream and scenario
    instance in the loaded corpus ([None] if the corpus differs from the
    one the provenance was recorded on). *)

val render_chain_events : witness -> string
(** The witness's matched chain as raw trace events, one per line, with
    absolute [\[ts, te\]] windows, kind, thread and cost. *)

val render_event_window :
  ?context:int -> Dptrace.Stream.t -> event_id:int -> string
(** The raw stream window around one event id: [context] (default 3)
    events either side, the subject line marked with [>]. Empty string
    for an out-of-range id. *)
