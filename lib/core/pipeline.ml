module Wait_graph = Dpwaitgraph.Wait_graph

type scenario_result = {
  classification : Classify.t;
  slow_impact : Impact.result;
  slow_impact_prov : Provenance.impact;
  fast_awg : Awg.t;
  slow_awg : Awg.t;
  mining : Mining.result;
  coverages : Evaluation.coverages;
}

(* Stage spans: one span per pipeline stage per scenario, recorded on
   whichever domain runs the stage, so a pooled run_all shows its
   scenario fan-out per domain in the Chrome trace. The scenarios_done
   counter drives the --progress line. *)
let span = Dpobs.Span.with_span
let scenarios_done = lazy (Dpobs.Metrics.counter "pipeline.scenarios_done")

let build_graphs ?pool _corpus entries =
  span "pipeline.build_graphs" @@ fun () ->
  (* Group the instances by stream — each group resolves the stream's
     memoised index exactly once (Dptrace.Stream.shared_index), whether
     the groups run on one domain or many — then restore the caller's
     entry order, so the parallel build returns the very same list the
     sequential one does. *)
  match entries with
  | [] -> []
  | entries ->
    let groups_tbl :
        (int, (int * Dptrace.Scenario.instance) list ref) Hashtbl.t =
      Hashtbl.create 16
    in
    let order = ref [] in
    List.iteri
      (fun pos ((st : Dptrace.Stream.t), inst) ->
        match Hashtbl.find_opt groups_tbl st.Dptrace.Stream.id with
        | Some items -> items := (pos, inst) :: !items
        | None ->
          let items = ref [ (pos, inst) ] in
          Hashtbl.replace groups_tbl st.Dptrace.Stream.id items;
          order := (st, items) :: !order)
      entries;
    let groups =
      List.rev_map (fun (st, items) -> (st, List.rev !items)) !order
      |> List.rev
    in
    let build_group ((st : Dptrace.Stream.t), items) =
      let index = Dptrace.Stream.shared_index st in
      List.map (fun (pos, inst) -> (pos, Wait_graph.build ~index st inst)) items
    in
    let built =
      match pool with
      | Some pool -> Dppar.Pool.parallel_map ~chunk:1 pool build_group groups
      | None -> List.map build_group groups
    in
    let out = Array.make (List.length entries) None in
    List.iter (List.iter (fun (pos, g) -> out.(pos) <- Some g)) built;
    Array.to_list out
    |> List.map (function Some g -> g | None -> assert false)

let run_scenario ?pool ?(k = Mining.default_k) ?(reduce = true) components
    corpus name =
  span ~args:[ ("scenario", name) ] "pipeline.run_scenario" @@ fun () ->
  let classification =
    span "pipeline.classify" (fun () -> Classify.classify corpus name)
  in
  let fast_graphs = build_graphs ?pool corpus classification.Classify.fast in
  let slow_graphs = build_graphs ?pool corpus classification.Classify.slow in
  let slow_impact, slow_impact_prov =
    span "pipeline.impact" (fun () ->
        Impact.analyze_graphs_prov components slow_graphs)
  in
  let fast_awg =
    span "pipeline.awg_build" (fun () ->
        Awg.build ?pool ~reduce components fast_graphs)
  in
  let slow_awg =
    span "pipeline.awg_build" (fun () ->
        Awg.build ?pool ~reduce components slow_graphs)
  in
  let mining =
    span "pipeline.mining" (fun () ->
        Mining.mine ?pool ~k ~fast:fast_awg ~slow:slow_awg
          ~spec:classification.Classify.spec ())
  in
  (* Coverage denominator: everything the slow-class aggregation absorbed
     at its end nodes, plus the non-optimisable mass the reduction pruned
     (counted as unexplainable driver cost). Bounded and consistent with
     the patterns' end-node costs. *)
  let driver_cost =
    Awg.total_leaf_cost slow_awg + (Awg.reduction slow_awg).Awg.pruned_cost
  in
  let coverages =
    span "pipeline.evaluation" (fun () ->
        Evaluation.time_coverages mining.Mining.patterns
          ~tslow:classification.Classify.spec.Dptrace.Scenario.tslow
          ~driver_cost)
  in
  {
    classification;
    slow_impact;
    slow_impact_prov;
    fast_awg;
    slow_awg;
    mining;
    coverages;
  }

let run_impact ?pool components corpus = Impact.analyze ?pool components corpus

let run_impact_prov ?pool components corpus =
  Impact.analyze_prov ?pool components corpus

let impact_per_scenario ?pool components corpus =
  (* Scenario-level fan-out; graph building inside each scenario stays
     sequential (one unit of work per worker, no nested parallelism). The
     final order is fixed by the sort below, never by completion order. *)
  let impact_of name =
    let graphs = build_graphs corpus (Dptrace.Corpus.instances_of corpus name) in
    let r = (name, Impact.analyze_graphs components graphs) in
    if Dpobs.metrics_on () then
      Dpobs.Metrics.incr (Lazy.force scenarios_done);
    r
  in
  let names = Dptrace.Corpus.scenario_names corpus in
  (match pool with
  | Some pool -> Dppar.Pool.parallel_map ~chunk:1 pool impact_of names
  | None -> List.map impact_of names)
  |> List.sort (fun (na, (a : Impact.result)) (nb, (b : Impact.result)) ->
         match compare b.Impact.d_wait a.Impact.d_wait with
         | 0 -> compare na nb
         | c -> c)

let run_all ?pool ?k ?reduce ?scenarios components corpus =
  let names =
    match scenarios with
    | Some names -> names
    | None -> Dptrace.Corpus.scenario_names corpus
  in
  (* One scenario per work item; run_scenario itself runs sequentially in
     the worker. Results are merged by the scenario-name order of [names],
     not completion order. *)
  let one name =
    let r =
      match run_scenario ?k ?reduce components corpus name with
      | r -> Some (name, r)
      | exception Not_found -> None
    in
    if Dpobs.metrics_on () then
      Dpobs.Metrics.incr (Lazy.force scenarios_done);
    r
  in
  (match pool with
  | Some pool -> Dppar.Pool.parallel_map ~chunk:1 pool one names
  | None -> List.map one names)
  |> List.filter_map Fun.id

(* --- snapshot-backed variants ---

   Each mirrors its from-scratch counterpart exactly: the snapshot holds
   the same per-stream partials the plain paths' reductions produce, and
   they are merged here in the same order (corpus stream order) with the
   same merge operators, so every cached result — impact integers,
   provenance reservoirs, AWG forests, mined patterns — is bit-identical
   to the uncached run whatever mix of cache hits and misses produced
   the entries. *)

let fold_entries snapshot (corpus : Dptrace.Corpus.t) ~init ~merge ~of_entry =
  List.fold_left
    (fun acc st -> merge acc (of_entry (Snapshot.entry snapshot st)))
    init corpus.Dptrace.Corpus.streams

let run_impact_snap snapshot corpus =
  span "pipeline.impact_snap" @@ fun () ->
  fold_entries snapshot corpus ~init:Impact.empty ~merge:Impact.merge
    ~of_entry:Snapshot.entry_impact

let run_impact_prov_snap snapshot corpus =
  span "pipeline.impact_snap" @@ fun () ->
  fold_entries snapshot corpus
    ~init:(Impact.empty, Provenance.empty_impact)
    ~merge:(fun (r1, p1) (r2, p2) ->
      (Impact.merge r1 r2, Provenance.merge_impact p1 p2))
    ~of_entry:Snapshot.entry_impact_prov

let modules_snap snapshot corpus =
  fold_entries snapshot corpus ~init:[] ~merge:Impact.merge_modules
    ~of_entry:Snapshot.entry_modules

let impact_per_scenario_snap snapshot corpus =
  let impact_of name =
    let r =
      fold_entries snapshot corpus ~init:Impact.empty ~merge:Impact.merge
        ~of_entry:(fun e ->
          Option.value ~default:Impact.empty
            (Snapshot.entry_scenario_impact e name))
    in
    if Dpobs.metrics_on () then
      Dpobs.Metrics.incr (Lazy.force scenarios_done);
    (name, r)
  in
  List.map impact_of (Dptrace.Corpus.scenario_names corpus)
  |> List.sort (fun (na, (a : Impact.result)) (nb, (b : Impact.result)) ->
         match compare b.Impact.d_wait a.Impact.d_wait with
         | 0 -> compare na nb
         | c -> c)

let run_scenario_snap ?pool ?(k = Mining.default_k) ?(reduce = true) snapshot
    corpus name =
  span ~args:[ ("scenario", name) ] "pipeline.run_scenario_snap" @@ fun () ->
  (* Classification is cheap (one pass over the instances) and part of
     the result, so it is recomputed rather than cached. *)
  let classification =
    span "pipeline.classify" (fun () -> Classify.classify corpus name)
  in
  let parts =
    List.filter_map
      (fun st ->
        Snapshot.entry_scenario_class (Snapshot.entry snapshot st) name)
      corpus.Dptrace.Corpus.streams
  in
  let slow_impact, slow_impact_prov =
    List.fold_left
      (fun (r, p) (ri, pi, _, _) ->
        (Impact.merge r ri, Provenance.merge_impact p pi))
      (Impact.empty, Provenance.empty_impact)
      parts
  in
  let fast_awg =
    span "pipeline.awg_merge" (fun () ->
        Awg.Partial.merge_all ~reduce
          (List.map (fun (_, _, f, _) -> f) parts))
  in
  let slow_awg =
    span "pipeline.awg_merge" (fun () ->
        Awg.Partial.merge_all ~reduce
          (List.map (fun (_, _, _, s) -> s) parts))
  in
  (* The miner dominates a warm re-analysis, and its inputs are a pure
     function of the snapshot fingerprint + contributing streams, so its
     result is cached at scenario granularity (digest-checked; identical
     either way). *)
  let mining =
    span "pipeline.mining" (fun () ->
        match Snapshot.find_mining snapshot corpus name ~reduce ~k with
        | Some m -> m
        | None ->
          let m =
            Mining.mine ?pool ~k ~fast:fast_awg ~slow:slow_awg
              ~spec:classification.Classify.spec ()
          in
          Snapshot.store_mining snapshot corpus name ~reduce ~k m;
          m)
  in
  let driver_cost =
    Awg.total_leaf_cost slow_awg + (Awg.reduction slow_awg).Awg.pruned_cost
  in
  let coverages =
    span "pipeline.evaluation" (fun () ->
        Evaluation.time_coverages mining.Mining.patterns
          ~tslow:classification.Classify.spec.Dptrace.Scenario.tslow
          ~driver_cost)
  in
  {
    classification;
    slow_impact;
    slow_impact_prov;
    fast_awg;
    slow_awg;
    mining;
    coverages;
  }

let run_all_snap ?pool ?k ?reduce ?scenarios snapshot corpus =
  let names =
    match scenarios with
    | Some names -> names
    | None -> Dptrace.Corpus.scenario_names corpus
  in
  (* Mirror run_all: one scenario per work item, mining sequential inside
     the worker, results in [names] order. *)
  let one name =
    let r =
      match run_scenario_snap ?k ?reduce snapshot corpus name with
      | r -> Some (name, r)
      | exception Not_found -> None
    in
    if Dpobs.metrics_on () then
      Dpobs.Metrics.incr (Lazy.force scenarios_done);
    r
  in
  (match pool with
  | Some pool -> Dppar.Pool.parallel_map ~chunk:1 pool one names
  | None -> List.map one names)
  |> List.filter_map Fun.id

let driver_cost_fraction r =
  (* Distinct driver time over slow-class scenario time: the paper's
     "Driver Cost" column is a plain share of execution time, so the
     multiplicity-weighted D_wait would overstate it. *)
  Dputil.Stats.ratio
    (float_of_int (r.slow_impact.Impact.d_waitdist + r.slow_impact.Impact.d_run))
    (float_of_int r.slow_impact.Impact.d_scn)

(* --- fault screening: graceful degradation under injected faults --- *)

type coverage = {
  cov_total : int;
  cov_analyzed : int;
  cov_quarantined : (int * string) list;
}

let full_coverage (corpus : Dptrace.Corpus.t) =
  let n = Dptrace.Corpus.stream_count corpus in
  { cov_total = n; cov_analyzed = n; cov_quarantined = [] }

let screen (corpus : Dptrace.Corpus.t) =
  if not (Dpfault.armed ()) then (corpus, full_coverage corpus)
  else begin
    (* One [corpus.read] probe per stream, in corpus order (so the
       plan's per-call draws are reproducible): a stream whose retries
       exhaust is quarantined with its reason instead of aborting the
       run. The kept streams preserve corpus order, so a screening that
       quarantines nothing leaves every downstream result — text and
       JSON — byte-identical to a fault-free run. *)
    let kept, quarantined =
      List.partition_map
        (fun (st : Dptrace.Stream.t) ->
          match
            Dpfault.Retry.run Dpfault.Corpus_read (fun () ->
                Dpfault.guard Dpfault.Corpus_read)
          with
          | () -> Left st
          | exception Dpfault.Injected { kind; _ } ->
            Right
              ( st.Dptrace.Stream.id,
                Printf.sprintf
                  "injected %s at corpus.read exhausted %d attempt(s)"
                  (Dpfault.kind_name kind)
                  (Dpfault.Retry.budget Dpfault.Corpus_read) ))
        corpus.Dptrace.Corpus.streams
    in
    List.iter
      (fun (sid, reason) ->
        Dpobs.Log.warn "stream %d quarantined: %s" sid reason)
      quarantined;
    ( Dptrace.Corpus.create ~streams:kept ~specs:corpus.Dptrace.Corpus.specs,
      {
        cov_total = Dptrace.Corpus.stream_count corpus;
        cov_analyzed = List.length kept;
        cov_quarantined = quarantined;
      } )
  end
