module Wait_graph = Dpwaitgraph.Wait_graph

type scenario_result = {
  classification : Classify.t;
  slow_impact : Impact.result;
  fast_awg : Awg.t;
  slow_awg : Awg.t;
  mining : Mining.result;
  coverages : Evaluation.coverages;
}

let build_graphs _corpus entries =
  (* One index per stream, shared by all of that stream's instances. *)
  let indexes : (int, Dptrace.Stream.index) Hashtbl.t = Hashtbl.create 16 in
  let index_of (st : Dptrace.Stream.t) =
    match Hashtbl.find_opt indexes st.Dptrace.Stream.id with
    | Some idx -> idx
    | None ->
      let idx = Dptrace.Stream.index st in
      Hashtbl.replace indexes st.Dptrace.Stream.id idx;
      idx
  in
  List.map
    (fun (st, inst) -> Wait_graph.build ~index:(index_of st) st inst)
    entries

let run_scenario ?(k = Mining.default_k) ?(reduce = true) components corpus name =
  let classification = Classify.classify corpus name in
  let fast_graphs = build_graphs corpus classification.Classify.fast in
  let slow_graphs = build_graphs corpus classification.Classify.slow in
  let slow_impact = Impact.analyze_graphs components slow_graphs in
  let fast_awg = Awg.build ~reduce components fast_graphs in
  let slow_awg = Awg.build ~reduce components slow_graphs in
  let mining =
    Mining.mine ~k ~fast:fast_awg ~slow:slow_awg
      ~spec:classification.Classify.spec ()
  in
  (* Coverage denominator: everything the slow-class aggregation absorbed
     at its end nodes, plus the non-optimisable mass the reduction pruned
     (counted as unexplainable driver cost). Bounded and consistent with
     the patterns' end-node costs. *)
  let driver_cost =
    Awg.total_leaf_cost slow_awg + (Awg.reduction slow_awg).Awg.pruned_cost
  in
  let coverages =
    Evaluation.time_coverages mining.Mining.patterns
      ~tslow:classification.Classify.spec.Dptrace.Scenario.tslow ~driver_cost
  in
  { classification; slow_impact; fast_awg; slow_awg; mining; coverages }

let run_impact components corpus = Impact.analyze components corpus

let impact_per_scenario components corpus =
  List.map
    (fun name ->
      let graphs = build_graphs corpus (Dptrace.Corpus.instances_of corpus name) in
      (name, Impact.analyze_graphs components graphs))
    (Dptrace.Corpus.scenario_names corpus)
  |> List.sort (fun (na, (a : Impact.result)) (nb, (b : Impact.result)) ->
         match compare b.Impact.d_wait a.Impact.d_wait with
         | 0 -> compare na nb
         | c -> c)

let driver_cost_fraction r =
  (* Distinct driver time over slow-class scenario time: the paper's
     "Driver Cost" column is a plain share of execution time, so the
     multiplicity-weighted D_wait would overstate it. *)
  Dputil.Stats.ratio
    (float_of_int (r.slow_impact.Impact.d_waitdist + r.slow_impact.Impact.d_run))
    (float_of_int r.slow_impact.Impact.d_scn)
