(* Result provenance. See provenance.mli for the contract. The switch is
   one atomic bool; every collection site in impact/awg/mining loads it
   once and branches, so disabled runs do no provenance work at all. *)

let flag = Atomic.make false
let enabled () = Atomic.get flag
let enable () = Atomic.set flag true
let disable () = Atomic.set flag false

let default_k = 8

type instance_ref = {
  stream_id : int;
  scenario : string;
  tid : int;
  t0 : Dputil.Time.t;
  t1 : Dputil.Time.t;
}

let ref_of (st : Dptrace.Stream.t) (i : Dptrace.Scenario.instance) =
  {
    stream_id = st.Dptrace.Stream.id;
    scenario = i.Dptrace.Scenario.scenario;
    tid = i.Dptrace.Scenario.tid;
    t0 = i.Dptrace.Scenario.t0;
    t1 = i.Dptrace.Scenario.t1;
  }

let compare_ref a b =
  match compare a.stream_id b.stream_id with
  | 0 -> (
    match compare a.t0 b.t0 with
    | 0 -> (
      match compare a.tid b.tid with
      | 0 -> compare a.scenario b.scenario
      | c -> c)
    | c -> c)
  | c -> c

let pp_ref fmt r =
  Format.fprintf fmt "%s stream %d tid=%d [%a, %a]" r.scenario r.stream_id
    r.tid Dputil.Time.pp r.t0 Dputil.Time.pp r.t1

module Topk = struct
  (* Sorted list, best first, never longer than [cap]. Caps are small
     (default_k), so linear inserts beat any heap at this size — and the
     representation is canonical, which makes merged reservoirs
     association-independent. *)
  type 'a t = { cap : int; compare : 'a -> 'a -> int; items : 'a list }

  let create ~cap ~compare =
    if cap < 1 then invalid_arg "Provenance.Topk.create: cap must be >= 1";
    { cap; compare; items = [] }

  let truncate cap items =
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: rest -> x :: take (n - 1) rest
    in
    take cap items

  let add t x =
    let rec insert = function
      | [] -> [ x ]
      | y :: rest -> if t.compare x y <= 0 then x :: y :: rest else y :: insert rest
    in
    { t with items = truncate t.cap (insert t.items) }

  let add_list t xs = List.fold_left add t xs

  let merge a b =
    { a with items = truncate a.cap (List.merge a.compare a.items b.items) }

  let to_list t = t.items
end

module Wset = struct
  (* Capped cost-descending association list: tiny (<= cap entries), so
     plain lists keep it allocation-light and deterministic. *)
  type entry = { e_ref : instance_ref; e_cost : Dputil.Time.t; e_count : int }
  type t = entry list

  let empty = []

  let order a b =
    match compare b.e_cost a.e_cost with
    | 0 -> compare_ref a.e_ref b.e_ref
    | c -> c

  let rec truncate n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: truncate (n - 1) rest

  let renorm cap entries = truncate cap (List.sort order entries)

  let add ?(cap = default_k) t r ~cost =
    let found = ref false in
    let merged =
      List.map
        (fun e ->
          if (not !found) && compare_ref e.e_ref r = 0 then begin
            found := true;
            { e with e_cost = e.e_cost + cost; e_count = e.e_count + 1 }
          end
          else e)
        t
    in
    let merged =
      if !found then merged
      else { e_ref = r; e_cost = cost; e_count = 1 } :: merged
    in
    renorm cap merged

  let union ?(cap = default_k) a b =
    let tbl = Hashtbl.create 16 in
    let feed e =
      let key = (e.e_ref.stream_id, e.e_ref.t0, e.e_ref.tid, e.e_ref.scenario) in
      match Hashtbl.find_opt tbl key with
      | Some prev ->
        Hashtbl.replace tbl key
          { prev with e_cost = prev.e_cost + e.e_cost; e_count = prev.e_count + e.e_count }
      | None -> Hashtbl.replace tbl key e
    in
    List.iter feed a;
    List.iter feed b;
    renorm cap (Hashtbl.fold (fun _ e acc -> e :: acc) tbl [])

  let entries t = List.map (fun e -> (e.e_ref, e.e_cost, e.e_count)) t

  (* Exact inverse of [entries]: trusts the caller's order and cap, so a
     serialised set round-trips to the identical representation. *)
  let of_entries l =
    List.map (fun (e_ref, e_cost, e_count) -> { e_ref; e_cost; e_count }) l
  let total_cost t = List.fold_left (fun acc e -> acc + e.e_cost) 0 t
  let is_empty t = t = []
  let cardinal = List.length
end

module Wacc = struct
  (* Exact (uncapped) witness accumulation. A capped [Wset.add] sequence
     is path-dependent: once a ref is evicted, re-adding it restarts its
     sums, so per-stream partials unioned later could disagree with the
     sequential fold. Accumulating exactly and truncating once at the end
     makes the whole computation commutative and associative — the
     property the snapshot cache's merge correctness rests on. Node
     counts bound the table size by the node's distinct supporting
     instances, and extraction renormalises to a canonical capped
     [Wset.t]. *)
  type t = (int * Dputil.Time.t * int * string, Wset.entry) Hashtbl.t

  let create () : t = Hashtbl.create 8

  let key (r : instance_ref) = (r.stream_id, r.t0, r.tid, r.scenario)

  let add_entry (t : t) (r, cost, count) =
    let k = key r in
    match Hashtbl.find_opt t k with
    | Some e ->
      Hashtbl.replace t k
        {
          e with
          Wset.e_cost = e.Wset.e_cost + cost;
          Wset.e_count = e.Wset.e_count + count;
        }
    | None -> Hashtbl.replace t k { Wset.e_ref = r; e_cost = cost; e_count = count }

  let add t r ~cost = add_entry t (r, cost, 1)

  let merge_into ~into (src : t) =
    Hashtbl.iter
      (fun _ (e : Wset.entry) ->
        add_entry into (e.Wset.e_ref, e.Wset.e_cost, e.Wset.e_count))
      src

  let entries (t : t) =
    Hashtbl.fold (fun _ e acc -> e :: acc) t []
    |> List.sort Wset.order
    |> List.map (fun (e : Wset.entry) -> (e.Wset.e_ref, e.Wset.e_cost, e.Wset.e_count))

  let to_wset ?(cap = default_k) (t : t) =
    Wset.renorm cap (Hashtbl.fold (fun _ e acc -> e :: acc) t [])

  let is_empty (t : t) = Hashtbl.length t = 0
end

type wait_record = {
  wr_ref : instance_ref;
  wr_event : int;
  wr_signature : Dptrace.Signature.t;
  wr_ts : Dputil.Time.t;
  wr_te : Dputil.Time.t;
  wr_cost : Dputil.Time.t;
  wr_multiplicity : int;
}

let compare_wait_record a b =
  match compare b.wr_cost a.wr_cost with
  | 0 -> (
    match compare a.wr_ref.stream_id b.wr_ref.stream_id with
    | 0 -> compare a.wr_event b.wr_event
    | c -> c)
  | c -> c

let pp_wait_record fmt w =
  Format.fprintf fmt
    "%s  C=%a x%d  [%a, %a]  event #%d of %a"
    (Dptrace.Signature.name w.wr_signature)
    Dputil.Time.pp w.wr_cost w.wr_multiplicity Dputil.Time.pp w.wr_ts
    Dputil.Time.pp w.wr_te w.wr_event pp_ref w.wr_ref

type impact = {
  top_waits : wait_record Topk.t;
  top_runs : wait_record Topk.t;
  by_module : (string * wait_record Topk.t) list;
}

let empty_topk ?(cap = default_k) () =
  Topk.create ~cap ~compare:compare_wait_record

let empty_impact =
  { top_waits = empty_topk (); top_runs = empty_topk (); by_module = [] }

let merge_by_module a b =
  (* Both sides are name-sorted; merge like a sorted-assoc union. *)
  let rec go a b =
    match (a, b) with
    | [], rest | rest, [] -> rest
    | (na, ta) :: resta, (nb, tb) :: restb ->
      let c = compare na nb in
      if c = 0 then (na, Topk.merge ta tb) :: go resta restb
      else if c < 0 then (na, ta) :: go resta b
      else (nb, tb) :: go a restb
  in
  go a b

let merge_impact a b =
  {
    top_waits = Topk.merge a.top_waits b.top_waits;
    top_runs = Topk.merge a.top_runs b.top_runs;
    by_module = merge_by_module a.by_module b.by_module;
  }

module Collector = struct
  (* Full (stream, event) -> record tables while the pass runs — the
     same cardinality as the analysis' own distinct-wait table — reduced
     to top-K reservoirs once at [impact]. *)
  type t = {
    cap : int;
    waits : (int * int, wait_record) Hashtbl.t;
    runs : (int * int, wait_record) Hashtbl.t;
    modules : (int * int, string) Hashtbl.t;  (* wait key -> module name *)
  }

  let create ?(cap = default_k) () =
    {
      cap;
      waits = Hashtbl.create 256;
      runs = Hashtbl.create 256;
      modules = Hashtbl.create 256;
    }

  let record tbl ~stream_id ~instance ~(event : Dptrace.Event.t) ~signature =
    let key = (stream_id, event.Dptrace.Event.id) in
    match Hashtbl.find_opt tbl key with
    | Some r ->
      Hashtbl.replace tbl key { r with wr_multiplicity = r.wr_multiplicity + 1 }
    | None ->
      Hashtbl.replace tbl key
        {
          wr_ref = instance;
          wr_event = event.Dptrace.Event.id;
          wr_signature = signature;
          wr_ts = event.Dptrace.Event.ts;
          wr_te = Dptrace.Event.end_ts event;
          wr_cost = event.Dptrace.Event.cost;
          wr_multiplicity = 1;
        }

  let record_wait t ~module_name ~stream_id ~instance ~event ~signature =
    let key = (stream_id, event.Dptrace.Event.id) in
    if not (Hashtbl.mem t.modules key) then
      Hashtbl.replace t.modules key module_name;
    record t.waits ~stream_id ~instance ~event ~signature

  let record_run t ~stream_id ~instance ~event ~signature =
    record t.runs ~stream_id ~instance ~event ~signature

  let impact t =
    let top_of tbl =
      Hashtbl.fold (fun _ r acc -> Topk.add acc r) tbl
        (empty_topk ~cap:t.cap ())
    in
    let mods : (string, wait_record Topk.t) Hashtbl.t = Hashtbl.create 16 in
    Hashtbl.iter
      (fun key r ->
        match Hashtbl.find_opt t.modules key with
        | None -> ()
        | Some name ->
          let cur =
            match Hashtbl.find_opt mods name with
            | Some k -> k
            | None -> empty_topk ~cap:t.cap ()
          in
          Hashtbl.replace mods name (Topk.add cur r))
      t.waits;
    {
      top_waits = top_of t.waits;
      top_runs = top_of t.runs;
      by_module =
        Hashtbl.fold (fun name k acc -> (name, k) :: acc) mods []
        |> List.sort (fun (a, _) (b, _) -> compare a b);
    }
end
