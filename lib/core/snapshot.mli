(** Incremental snapshot cache for delta re-analysis.

    A snapshot is a versioned, checksummed on-disk cache of {e per-stream}
    analysis results, keyed by content: a stream's key is its
    {!Dptrace.Codec_v2.stream_key} (the CRC of its codec-v2 frame), and a
    cache file is named by a {!fingerprint} of the analysis configuration.
    Re-running an analysis over a corpus that mostly overlaps a previous
    run — the common case: a tracing session appended a few streams —
    recomputes only the new or changed streams and merges the rest from
    cache.

    The merge is {e bit-identical} to a from-scratch run. Each cached
    entry holds exactly the per-stream partials the pipeline's existing
    parallel reductions already merge in stream order: {!Impact.result}
    partials (merged with {!Impact.merge}), provenance
    ({!Provenance.merge_impact}), per-module rows
    ({!Impact.merge_modules}) and unreduced per-class AWG partial forests
    ({!Awg.Partial.merge_all}). Mining, selection and coverage run on the
    merged aggregates as usual, so reports — including [--json] output and
    provenance witnesses — do not depend on which entries came from disk.

    On top of the per-stream entries the snapshot caches each scenario's
    {!Mining.result} (see {!find_mining}): re-mining is the dominant cost
    of a warm re-analysis and its inputs are a deterministic function of
    the fingerprint plus the ordered set of contributing streams, so a
    digest match lets the pipeline skip the miner without affecting
    output. Appending a stream only invalidates the scenarios that stream
    contains.

    Robustness: a snapshot is a cache, never a source of truth. Entries
    are individually CRC-32 framed; an unreadable file, a stale
    fingerprint, a checksum failure or an undecodable entry all degrade to
    cache misses, never to errors or wrong results.

    Observability: {!create}/{!save}/{!ensure} bump the
    [snapshot.hit]/[snapshot.miss]/[snapshot.stale]/[snapshot.bytes]
    metrics, and {!find_mining} the
    [snapshot.mining_hit]/[snapshot.mining_miss] pair, when
    {!Dpobs.metrics_on}. *)

val code_version : string
(** Participates in {!fingerprint}; bumped whenever analysis semantics or
    the entry wire form change, so old caches invalidate wholesale. *)

val fingerprint :
  components:Component.t ->
  specs:Dptrace.Scenario.spec list ->
  k:int ->
  unit ->
  string
(** Fingerprint of everything a cached entry's contents depend on: the
    code version, the component patterns, the scenario specs (name and
    thresholds), the mining [k] and the {!Provenance.enabled} switch.
    Cache files are named [<fingerprint>.dpsnap]; a run with a different
    configuration reads a different file, so entries can never be reused
    across configurations. *)

(** {1 Per-stream entries} *)

type entry
(** One stream's complete analysis contribution. *)

val analyze_stream :
  Component.t -> specs:Dptrace.Scenario.spec list -> Dptrace.Stream.t -> entry
(** The unit of caching: build the stream's wait graphs once (via its
    memoised shared index) and compute its contribution to every pipeline
    output — whole-corpus impact and provenance, per-module rows, each
    scenario's all-instance impact, and per spec'd scenario the
    fast/slow-class impact partials and unreduced {!Awg.Partial}
    forests. *)

val entry_impact : entry -> Impact.result
val entry_impact_prov : entry -> Impact.result * Provenance.impact

val entry_modules : entry -> Impact.module_row list

val entry_scenario_impact : entry -> string -> Impact.result option
(** Impact over the stream's instances of the named scenario; [None] when
    the stream has none. *)

val entry_scenario_class :
  entry ->
  string ->
  (Impact.result * Provenance.impact * Awg.Partial.partial
  * Awg.Partial.partial)
  option
(** [(slow impact, slow provenance, fast AWG partial, slow AWG partial)]
    for the named scenario; [None] when the stream has no instances of it
    (or it had no spec when the entry was computed). *)

(** {1 Cache instances} *)

type t

val create : ?dir:string -> fingerprint:string -> unit -> t
(** Open a snapshot. With [dir], loads [dir/<fingerprint>.dpsnap] if
    present — corrupt entries are dropped (counted in {!stats}), a
    mismatched fingerprint or unreadable file yields an empty cache.
    Without [dir] the snapshot is purely in-memory (useful in tests). *)

val ensure : ?pool:Dppar.Pool.t -> t -> Component.t -> Dptrace.Corpus.t -> unit
(** Make an entry available for every stream of the corpus: look each
    stream up by content key, and {!analyze_stream} the misses — in
    parallel across [pool] when given, one stream per task. Merging cached
    and fresh entries is exact, so downstream results never depend on the
    hit/miss split. *)

val entry : t -> Dptrace.Stream.t -> entry
(** Lookup after {!ensure}.
    @raise Invalid_argument for a stream never ensured. *)

val save : t -> unit
(** Write every entry back to [dir/<fingerprint>.dpsnap] (creating [dir]
    if needed) via a temp file and atomic rename. Entries are written in
    sorted key order: the file is a pure function of its contents. No-op
    for in-memory snapshots. *)

(** {1 Scenario mining cache} *)

val find_mining :
  t -> Dptrace.Corpus.t -> string -> reduce:bool -> k:int ->
  Mining.result option
(** The cached mining result for the named scenario, provided its digest
    — over the ordered content keys of the corpus streams contributing
    class parts, plus [reduce] and [k] — matches the current corpus.
    [None] (a mining miss) otherwise. Call only after {!ensure} on the
    same corpus. Safe from pool workers. *)

val store_mining :
  t -> Dptrace.Corpus.t -> string -> reduce:bool -> k:int ->
  Mining.result -> unit
(** Record a freshly mined result under the current digest, replacing any
    stale record for that scenario. Safe from pool workers. *)

type stats = {
  s_hits : int;  (** {!ensure} lookups served from cache. *)
  s_misses : int;  (** Streams (re)analysed. *)
  s_stale : int;  (** Loaded entries no current stream references. *)
  s_loaded : int;  (** Records read intact from disk. *)
  s_dropped : int;  (** On-disk records discarded as corrupt. *)
  s_mining_hits : int;  (** Scenarios whose mining result was reused. *)
  s_mining_misses : int;  (** Scenarios re-mined. *)
}

val stats : t -> stats

(** {1 Cache-directory tooling}

    Backs the [driveperf cache] subcommand. *)

type file_info = {
  fi_path : string;
  fi_fingerprint : string;
  fi_bytes : int;
  fi_entries : int;  (** Entries that decode and pass their checksum. *)
  fi_corrupt : int;
  fi_mtime : float;
}

val list_files : string -> string list
(** The [.dpsnap] files in a directory, name-sorted; [] if it does not
    exist. *)

val inspect : string -> file_info
(** Fully verify one cache file (never raises; damage shows up in
    [fi_corrupt] / a placeholder fingerprint). *)

val gc : keep:int -> string -> int * int
(** Delete all but the [keep] most recently modified cache files;
    [(files removed, bytes reclaimed)]. *)
