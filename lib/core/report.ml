module Table = Dputil.Table

let pct f = Printf.sprintf "%.1f%%" (100.0 *. f)

let impact_summary (r : Impact.result) =
  let t =
    Table.create ~title:"Impact analysis (components: device drivers)"
      [ ("Metric", Table.Left); ("Value", Table.Right) ]
  in
  Table.add_row t [ "Scenario instances"; string_of_int r.Impact.instances ];
  Table.add_row t [ "D_scn (total scenario time)"; Dputil.Time.to_string r.Impact.d_scn ];
  Table.add_row t [ "D_wait"; Dputil.Time.to_string r.Impact.d_wait ];
  Table.add_row t [ "D_run"; Dputil.Time.to_string r.Impact.d_run ];
  Table.add_row t [ "D_waitdist"; Dputil.Time.to_string r.Impact.d_waitdist ];
  Table.add_separator t;
  Table.add_row t [ "IA_wait = D_wait / D_scn"; pct (Impact.ia_wait r) ];
  Table.add_row t [ "IA_run = D_run / D_scn"; pct (Impact.ia_run r) ];
  Table.add_row t [ "IA_opt = (D_wait - D_waitdist) / D_scn"; pct (Impact.ia_opt r) ];
  Table.add_row t
    [
      "D_wait / D_waitdist";
      Printf.sprintf "%.2f" (Impact.propagation_ratio r);
    ];
  t

let module_breakdown ?(top = 12) rows =
  let t =
    Table.create ~title:"Per-module driver impact"
      [
        ("Module", Table.Left);
        ("D_wait", Table.Right);
        ("D_waitdist", Table.Right);
        ("ratio", Table.Right);
        ("D_run", Table.Right);
        ("#waits", Table.Right);
        ("max wait", Table.Right);
      ]
  in
  List.iteri
    (fun i (r : Impact.module_row) ->
      if i < top then
        Table.add_row t
          [
            r.Impact.module_name;
            Dputil.Time.to_string r.Impact.m_wait;
            Dputil.Time.to_string r.Impact.m_waitdist;
            Printf.sprintf "%.2f" (Impact.module_propagation_ratio r);
            Dputil.Time.to_string r.Impact.m_run;
            string_of_int r.Impact.m_counted_waits;
            Dputil.Time.to_string r.Impact.m_max_wait;
          ])
    rows;
  t

let scenario_impacts entries =
  let t =
    Table.create ~title:"Per-scenario driver impact"
      [
        ("Scenario", Table.Left);
        ("#Inst", Table.Right);
        ("D_scn", Table.Right);
        ("IA_wait", Table.Right);
        ("IA_run", Table.Right);
        ("IA_opt", Table.Right);
        ("ratio", Table.Right);
      ]
  in
  List.iter
    (fun (name, (r : Impact.result)) ->
      Table.add_row t
        [
          name;
          string_of_int r.Impact.instances;
          Dputil.Time.to_string r.Impact.d_scn;
          pct (Impact.ia_wait r);
          pct (Impact.ia_run r);
          pct (Impact.ia_opt r);
          Printf.sprintf "%.2f" (Impact.propagation_ratio r);
        ])
    entries;
  t

let scenario_classes entries =
  let t =
    Table.create ~title:"Table 1: selected scenarios and contrast classes"
      [
        ("Scenario", Table.Left);
        ("#Instances", Table.Right);
        ("in {I}fast", Table.Right);
        ("in {I}slow", Table.Right);
      ]
  in
  let tot = ref 0 and totf = ref 0 and tots = ref 0 in
  List.iter
    (fun (name, c) ->
      let f, m, s = Classify.counts c in
      tot := !tot + f + m + s;
      totf := !totf + f;
      tots := !tots + s;
      Table.add_row t
        [ name; string_of_int (f + m + s); string_of_int f; string_of_int s ])
    entries;
  Table.add_separator t;
  Table.add_row t
    [ "Total"; string_of_int !tot; string_of_int !totf; string_of_int !tots ];
  t

let coverages entries =
  let t =
    Table.create ~title:"Table 2: impactful-time and total-time coverages"
      [
        ("Scenario", Table.Left);
        ("Driver Cost", Table.Right);
        ("ITC", Table.Right);
        ("TTC", Table.Right);
      ]
  in
  let n = List.length entries in
  let sum_dc = ref 0.0 and sum_itc = ref 0.0 and sum_ttc = ref 0.0 in
  List.iter
    (fun (name, (r : Pipeline.scenario_result)) ->
      let dc = Pipeline.driver_cost_fraction r in
      let itc = r.Pipeline.coverages.Evaluation.itc in
      let ttc = r.Pipeline.coverages.Evaluation.ttc in
      sum_dc := !sum_dc +. dc;
      sum_itc := !sum_itc +. itc;
      sum_ttc := !sum_ttc +. ttc;
      Table.add_row t [ name; pct dc; pct itc; pct ttc ])
    entries;
  if n > 0 then begin
    let avg v = v /. float_of_int n in
    Table.add_separator t;
    Table.add_row t
      [ "Average"; pct (avg !sum_dc); pct (avg !sum_itc); pct (avg !sum_ttc) ]
  end;
  t

(* The fault-screening coverage block: printed only when something was
   actually quarantined, so fault-free output stays byte-identical. *)
let stream_coverage (cov : Pipeline.coverage) =
  let t =
    Table.create
      ~title:
        (Printf.sprintf "Coverage: %d/%d stream(s) analyzed, %d quarantined"
           cov.Pipeline.cov_analyzed cov.Pipeline.cov_total
           (List.length cov.Pipeline.cov_quarantined))
      [ ("Stream", Table.Right); ("Reason", Table.Left) ]
  in
  List.iter
    (fun (sid, reason) -> Table.add_row t [ string_of_int sid; reason ])
    cov.Pipeline.cov_quarantined;
  t

let ranking entries =
  let t =
    Table.create ~title:"Table 3: execution-time coverage by ranking"
      [
        ("Scenario", Table.Left);
        ("#Patterns", Table.Right);
        ("top 10%", Table.Right);
        ("top 20%", Table.Right);
        ("top 30%", Table.Right);
      ]
  in
  let n = List.length entries in
  let sums = Array.make 4 0.0 in
  List.iter
    (fun (name, (r : Pipeline.scenario_result)) ->
      let patterns = r.Pipeline.mining.Mining.patterns in
      let cov f = Evaluation.ranking_coverage patterns ~top_fraction:f in
      let c10 = cov 0.10 and c20 = cov 0.20 and c30 = cov 0.30 in
      sums.(0) <- sums.(0) +. float_of_int (List.length patterns);
      sums.(1) <- sums.(1) +. c10;
      sums.(2) <- sums.(2) +. c20;
      sums.(3) <- sums.(3) +. c30;
      Table.add_row t
        [
          name;
          string_of_int (List.length patterns);
          pct c10;
          pct c20;
          pct c30;
        ])
    entries;
  if n > 0 then begin
    let avg i = sums.(i) /. float_of_int n in
    Table.add_separator t;
    Table.add_row t
      [
        "Average";
        string_of_int (int_of_float (avg 0));
        pct (avg 1);
        pct (avg 2);
        pct (avg 3);
      ]
  end;
  t

let driver_types entries ~type_names ~type_of =
  let t =
    Table.create ~title:"Table 4: driver types in top-10 patterns"
      (("Scenario", Table.Left)
      :: List.map (fun n -> (n, Table.Right)) type_names)
  in
  List.iter
    (fun (name, (r : Pipeline.scenario_result)) ->
      let counts =
        Evaluation.driver_type_counts r.Pipeline.mining.Mining.patterns
          ~top_n:10 ~type_of
      in
      let cell ty =
        match List.assoc_opt ty counts with
        | Some n -> string_of_int n
        | None -> "-"
      in
      Table.add_row t (name :: List.map cell type_names))
    entries;
  t

let top_patterns patterns ~n =
  let buf = Buffer.create 1024 in
  List.iteri
    (fun i (p : Mining.pattern) ->
      if i < n then
        Buffer.add_string buf
          (Format.asprintf "#%d  %a@." (i + 1) Mining.pp_pattern p))
    patterns;
  Buffer.contents buf

let top_propagation_paths awg ~n =
  let paths = Awg.full_paths awg in
  let leaf_cost path = (List.nth path (List.length path - 1)).Awg.cost in
  let ranked =
    List.sort (fun a b -> compare (leaf_cost b) (leaf_cost a)) paths
  in
  let buf = Buffer.create 1024 in
  List.iteri
    (fun i path ->
      if i < n then begin
        Buffer.add_string buf (Printf.sprintf "path #%d:\n" (i + 1));
        List.iteri
          (fun depth (node : Awg.node) ->
            Buffer.add_string buf
              (Format.asprintf "%s%a  C=%a N=%d\n"
                 (String.make (2 * (depth + 1)) ' ')
                 Awg.status_pp node.Awg.status Dputil.Time.pp node.Awg.cost
                 node.Awg.count))
          path
      end)
    ranked;
  Buffer.contents buf

let awg_summary awg =
  let red = Awg.reduction awg in
  Format.asprintf
    "AWG: %d nodes, total cost %a, leaf cost %a; reduction pruned %d \
     direct-hardware roots holding %a of %a root cost (%.1f%% non-optimisable)"
    (Awg.node_count awg) Dputil.Time.pp (Awg.total_cost awg) Dputil.Time.pp
    (Awg.total_leaf_cost awg) red.Awg.pruned_roots Dputil.Time.pp
    red.Awg.pruned_cost Dputil.Time.pp red.Awg.total_root_cost
    (100.0 *. Awg.non_optimizable_fraction awg)

(* --- machine-readable twins ------------------------------------------- *)

module Json = struct
  module J = Dputil.Jsonw

  let of_ref (r : Provenance.instance_ref) =
    J.Obj
      [
        ("stream", J.int r.Provenance.stream_id);
        ("scenario", J.str r.Provenance.scenario);
        ("tid", J.int r.Provenance.tid);
        ("t0", J.time r.Provenance.t0);
        ("t1", J.time r.Provenance.t1);
      ]

  let of_wait_record (w : Provenance.wait_record) =
    J.Obj
      [
        ("signature", J.str (Dptrace.Signature.name w.Provenance.wr_signature));
        ("event", J.int w.Provenance.wr_event);
        ("ts", J.time w.Provenance.wr_ts);
        ("te", J.time w.Provenance.wr_te);
        ("cost", J.time w.Provenance.wr_cost);
        ("multiplicity", J.int w.Provenance.wr_multiplicity);
        ("instance", of_ref w.Provenance.wr_ref);
      ]

  let of_topk k = J.Arr (List.map of_wait_record (Provenance.Topk.to_list k))

  let of_wset ws =
    J.Arr
      (List.map
         (fun (r, cost, count) ->
           J.Obj
             [
               ("stream", J.int r.Provenance.stream_id);
               ("scenario", J.str r.Provenance.scenario);
               ("tid", J.int r.Provenance.tid);
               ("t0", J.time r.Provenance.t0);
               ("t1", J.time r.Provenance.t1);
               ("cost", J.time cost);
               ("occurrences", J.int count);
             ])
         (Provenance.Wset.entries ws))

  let of_impact ?prov (r : Impact.result) =
    let base =
      [
        ("instances", J.int r.Impact.instances);
        ("d_scn", J.time r.Impact.d_scn);
        ("d_wait", J.time r.Impact.d_wait);
        ("d_run", J.time r.Impact.d_run);
        ("d_waitdist", J.time r.Impact.d_waitdist);
        ("counted_waits", J.int r.Impact.counted_waits);
        ("counted_runs", J.int r.Impact.counted_runs);
        ("ia_wait", J.float (Impact.ia_wait r));
        ("ia_run", J.float (Impact.ia_run r));
        ("ia_opt", J.float (Impact.ia_opt r));
        ("propagation_ratio", J.float (Impact.propagation_ratio r));
      ]
    in
    match prov with
    | None -> J.Obj base
    | Some (p : Provenance.impact) ->
      J.Obj
        (base
        @ [
            ( "provenance",
              J.Obj
                [
                  ("top_waits", of_topk p.Provenance.top_waits);
                  ("top_runs", of_topk p.Provenance.top_runs);
                ] );
          ])

  let of_module_rows ?(prov = Provenance.empty_impact) rows =
    J.Arr
      (List.map
         (fun (r : Impact.module_row) ->
           let top =
             match
               List.assoc_opt r.Impact.module_name prov.Provenance.by_module
             with
             | Some k -> of_topk k
             | None -> J.Arr []
           in
           J.Obj
             [
               ("module", J.str r.Impact.module_name);
               ("wait", J.time r.Impact.m_wait);
               ("waitdist", J.time r.Impact.m_waitdist);
               ("run", J.time r.Impact.m_run);
               ("counted_waits", J.int r.Impact.m_counted_waits);
               ("max_wait", J.time r.Impact.m_max_wait);
               ( "propagation_ratio",
                 J.float (Impact.module_propagation_ratio r) );
               ("provenance", top);
             ])
         rows)

  let of_tuple (t : Tuple.t) =
    let names part =
      J.Arr
        (List.map
           (fun s -> J.str (Dptrace.Signature.name s))
           (Array.to_list part))
    in
    J.Obj
      [
        ("waits", names t.Tuple.waits);
        ("unwaits", names t.Tuple.unwaits);
        ("runnings", names t.Tuple.runnings);
      ]

  let of_pattern ~rank (p : Mining.pattern) =
    J.Obj
      [
        ("rank", J.int rank);
        ("tuple", of_tuple p.Mining.tuple);
        ("cost", J.time p.Mining.cost);
        ("count", J.int p.Mining.count);
        ("avg_cost_us", J.float (Mining.avg_cost p));
        ("max_single", J.time p.Mining.max_single);
        ("witnesses", of_wset p.Mining.witnesses);
        ("fast_witnesses", of_wset p.Mining.fast_witnesses);
      ]

  let of_scenario name (r : Pipeline.scenario_result) =
    let f, m, s = Classify.counts r.Pipeline.classification in
    let red = Awg.reduction r.Pipeline.slow_awg in
    let patterns = r.Pipeline.mining.Mining.patterns in
    J.Obj
      [
        ("name", J.str name);
        ( "classes",
          J.Obj [ ("fast", J.int f); ("middle", J.int m); ("slow", J.int s) ] );
        ( "impact",
          of_impact ~prov:r.Pipeline.slow_impact_prov r.Pipeline.slow_impact );
        ( "coverages",
          J.Obj
            [
              ("driver_cost", J.float (Pipeline.driver_cost_fraction r));
              ("itc", J.float r.Pipeline.coverages.Evaluation.itc);
              ("ttc", J.float r.Pipeline.coverages.Evaluation.ttc);
            ] );
        ( "ranking_coverage",
          J.Obj
            (List.map
               (fun f ->
                 ( Printf.sprintf "top%d" (int_of_float (100.0 *. f)),
                   J.float
                     (Evaluation.ranking_coverage patterns ~top_fraction:f) ))
               [ 0.10; 0.20; 0.30 ]) );
        ( "awg",
          J.Obj
            [
              ("nodes", J.int (Awg.node_count r.Pipeline.slow_awg));
              ("total_cost", J.time (Awg.total_cost r.Pipeline.slow_awg));
              ("leaf_cost", J.time (Awg.total_leaf_cost r.Pipeline.slow_awg));
              ("pruned_roots", J.int red.Awg.pruned_roots);
              ("pruned_cost", J.time red.Awg.pruned_cost);
              ( "non_optimizable",
                J.float (Awg.non_optimizable_fraction r.Pipeline.slow_awg) );
            ] );
        ("patterns", J.Arr (List.mapi (fun i p -> of_pattern ~rank:(i + 1) p) patterns));
      ]

  let of_coverage (cov : Pipeline.coverage) =
    J.Obj
      [
        ("streams_total", J.int cov.Pipeline.cov_total);
        ("streams_analyzed", J.int cov.Pipeline.cov_analyzed);
        ( "streams_quarantined",
          J.Arr
            (List.map
               (fun (sid, reason) ->
                 J.Obj [ ("stream", J.int sid); ("reason", J.str reason) ])
               cov.Pipeline.cov_quarantined) );
      ]

  let document ?coverage ~impact ~impact_prov ~modules ~scenarios () =
    (* The coverage block appears only when a stream was quarantined:
       a fault-free (or fully retried) run emits the pre-fault-layer
       document byte for byte. *)
    let coverage =
      match coverage with
      | Some cov when cov.Pipeline.cov_quarantined <> [] ->
        [ ("coverage", of_coverage cov) ]
      | _ -> []
    in
    J.Obj
      ([
         ("tool", J.str "driveperf");
         ("format", J.int 1);
         ("provenance_enabled", J.Bool (Provenance.enabled ()));
       ]
      @ coverage
      @ [
          ("impact", of_impact ~prov:impact_prov impact);
          ("modules", of_module_rows ~prov:impact_prov modules);
          ("scenarios", J.Arr (List.map (fun (n, r) -> of_scenario n r) scenarios));
        ])
end
