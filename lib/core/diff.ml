type change =
  | Appeared
  | Disappeared
  | Regressed of float
  | Improved of float
  | Stable

type entry = {
  tuple : Tuple.t;
  before : Mining.pattern option;
  after : Mining.pattern option;
  change : change;
}

module Tuple_table = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

let severity = function
  | Regressed f -> (0, -.f)
  | Appeared -> (1, 0.0)
  | Disappeared -> (2, 0.0)
  | Improved f -> (3, -.f)
  | Stable -> (4, 0.0)

let compare_patterns ?(threshold = 1.5) ~before ~after () =
  let old_table : Mining.pattern Tuple_table.t = Tuple_table.create 64 in
  List.iter
    (fun (p : Mining.pattern) -> Tuple_table.replace old_table p.Mining.tuple p)
    before;
  let seen : unit Tuple_table.t = Tuple_table.create 64 in
  let entries = ref [] in
  List.iter
    (fun (p : Mining.pattern) ->
      Tuple_table.replace seen p.Mining.tuple ();
      let entry =
        match Tuple_table.find_opt old_table p.Mining.tuple with
        | None ->
          { tuple = p.Mining.tuple; before = None; after = Some p; change = Appeared }
        | Some old ->
          let ratio =
            Dputil.Stats.ratio (Mining.avg_cost p) (Mining.avg_cost old)
          in
          let change =
            if ratio > threshold then Regressed ratio
            else if ratio > 0.0 && 1.0 /. ratio > threshold then
              Improved (1.0 /. ratio)
            else Stable
          in
          { tuple = p.Mining.tuple; before = Some old; after = Some p; change }
      in
      entries := entry :: !entries)
    after;
  List.iter
    (fun (p : Mining.pattern) ->
      if not (Tuple_table.mem seen p.Mining.tuple) then
        entries :=
          {
            tuple = p.Mining.tuple;
            before = Some p;
            after = None;
            change = Disappeared;
          }
          :: !entries)
    before;
  List.sort
    (fun a b ->
      match compare (severity a.change) (severity b.change) with
      | 0 -> Tuple.compare a.tuple b.tuple
      | c -> c)
    !entries

let regressions entries =
  List.filter
    (fun e -> match e.change with Regressed _ | Appeared -> true | _ -> false)
    entries

let fixed entries =
  List.filter
    (fun e -> match e.change with Disappeared | Improved _ -> true | _ -> false)
    entries

let summary entries =
  let count p = List.length (List.filter p entries) in
  Printf.sprintf "+%d appeared, %d regressed, %d fixed, %d improved, %d stable"
    (count (fun e -> e.change = Appeared))
    (count (fun e -> match e.change with Regressed _ -> true | _ -> false))
    (count (fun e -> e.change = Disappeared))
    (count (fun e -> match e.change with Improved _ -> true | _ -> false))
    (count (fun e -> e.change = Stable))

let pp_entry fmt e =
  let describe =
    match e.change with
    | Appeared -> "APPEARED"
    | Disappeared -> "FIXED (gone)"
    | Regressed f -> Printf.sprintf "REGRESSED %.1fx" f
    | Improved f -> Printf.sprintf "improved %.1fx" f
    | Stable -> "stable"
  in
  Format.fprintf fmt "%-16s %s" describe (Tuple.to_string e.tuple)
