type change =
  | Appeared
  | Disappeared
  | Regressed of float
  | Improved of float
  | Stable

type entry = {
  tuple : Tuple.t;
  before : Mining.pattern option;
  after : Mining.pattern option;
  change : change;
}

module Tuple_table = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

let severity = function
  | Regressed f -> (0, -.f)
  | Appeared -> (1, 0.0)
  | Disappeared -> (2, 0.0)
  | Improved f -> (3, -.f)
  | Stable -> (4, 0.0)

let compare_patterns ?(threshold = 1.5) ?(min_support = 1) ~before ~after () =
  let supported (p : Mining.pattern) = p.Mining.count >= min_support in
  let old_table : Mining.pattern Tuple_table.t = Tuple_table.create 64 in
  List.iter
    (fun (p : Mining.pattern) -> Tuple_table.replace old_table p.Mining.tuple p)
    before;
  let seen : unit Tuple_table.t = Tuple_table.create 64 in
  let entries = ref [] in
  List.iter
    (fun (p : Mining.pattern) ->
      Tuple_table.replace seen p.Mining.tuple ();
      let entry =
        match Tuple_table.find_opt old_table p.Mining.tuple with
        | None ->
          (* The claim "this behaviour appeared" rests on the new run's
             support; below the floor it stays Stable (present, but no
             alarm). *)
          let change = if supported p then Appeared else Stable in
          { tuple = p.Mining.tuple; before = None; after = Some p; change }
        | Some old ->
          let ratio =
            Dputil.Stats.ratio (Mining.avg_cost p) (Mining.avg_cost old)
          in
          let change =
            if ratio > threshold then
              if supported p then Regressed ratio else Stable
            else if ratio > 0.0 && 1.0 /. ratio > threshold then
              if supported p then Improved (1.0 /. ratio) else Stable
            else Stable
          in
          { tuple = p.Mining.tuple; before = Some old; after = Some p; change }
      in
      entries := entry :: !entries)
    after;
  List.iter
    (fun (p : Mining.pattern) ->
      if not (Tuple_table.mem seen p.Mining.tuple) then
        entries :=
          {
            tuple = p.Mining.tuple;
            before = Some p;
            after = None;
            change = (if supported p then Disappeared else Stable);
          }
          :: !entries)
    before;
  List.sort
    (fun a b ->
      match compare (severity a.change) (severity b.change) with
      | 0 -> Tuple.compare a.tuple b.tuple
      | c -> c)
    !entries

let regressions entries =
  List.filter
    (fun e -> match e.change with Regressed _ | Appeared -> true | _ -> false)
    entries

let fixed entries =
  List.filter
    (fun e -> match e.change with Disappeared | Improved _ -> true | _ -> false)
    entries

let summary entries =
  let count p = List.length (List.filter p entries) in
  Printf.sprintf "+%d appeared, %d regressed, %d fixed, %d improved, %d stable"
    (count (fun e -> e.change = Appeared))
    (count (fun e -> match e.change with Regressed _ -> true | _ -> false))
    (count (fun e -> e.change = Disappeared))
    (count (fun e -> match e.change with Improved _ -> true | _ -> false))
    (count (fun e -> e.change = Stable))

let pp_entry fmt e =
  let describe =
    match e.change with
    | Appeared -> "APPEARED"
    | Disappeared -> "FIXED (gone)"
    | Regressed f -> Printf.sprintf "REGRESSED %.1fx" f
    | Improved f -> Printf.sprintf "improved %.1fx" f
    | Stable -> "stable"
  in
  Format.fprintf fmt "%-16s %s" describe (Tuple.to_string e.tuple)

(* --- machine-readable twin (shared with the monitor's alert log) --- *)

module J = Dputil.Jsonw

let change_kind = function
  | Appeared -> "appeared"
  | Disappeared -> "disappeared"
  | Regressed _ -> "regressed"
  | Improved _ -> "improved"
  | Stable -> "stable"

let json_tuple (t : Tuple.t) =
  let names part =
    J.Arr
      (List.map
         (fun s -> J.str (Dptrace.Signature.name s))
         (Array.to_list part))
  in
  J.Obj
    [
      ("waits", names t.Tuple.waits);
      ("unwaits", names t.Tuple.unwaits);
      ("runnings", names t.Tuple.runnings);
    ]

let json_side = function
  | None -> J.Null
  | Some (p : Mining.pattern) ->
    J.Obj
      [
        ("cost", J.time p.Mining.cost);
        ("count", J.int p.Mining.count);
        ("avg_cost_us", J.float (Mining.avg_cost p));
        ("max_single", J.time p.Mining.max_single);
      ]

let json_entry e =
  let factor =
    match e.change with
    | Regressed f | Improved f -> J.float f
    | Appeared | Disappeared | Stable -> J.Null
  in
  J.Obj
    [
      ("tuple", json_tuple e.tuple);
      ("change", J.str (change_kind e.change));
      ("factor", factor);
      ("before", json_side e.before);
      ("after", json_side e.after);
    ]

let json_summary entries =
  let count p = List.length (List.filter p entries) in
  J.Obj
    [
      ("appeared", J.int (count (fun e -> e.change = Appeared)));
      ( "regressed",
        J.int
          (count (fun e -> match e.change with Regressed _ -> true | _ -> false))
      );
      ("disappeared", J.int (count (fun e -> e.change = Disappeared)));
      ( "improved",
        J.int
          (count (fun e -> match e.change with Improved _ -> true | _ -> false))
      );
      ("stable", J.int (count (fun e -> e.change = Stable)));
    ]

let json_document ~scenario ~threshold ~min_support entries =
  J.Obj
    [
      ("tool", J.str "driveperf");
      ("kind", J.str "diff");
      ("scenario", J.str scenario);
      ("threshold", J.float threshold);
      ("min_support", J.int min_support);
      ("summary", json_summary entries);
      ("entries", J.Arr (List.map json_entry entries));
    ]
