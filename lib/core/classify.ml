module Scenario = Dptrace.Scenario

type t = {
  spec : Scenario.spec;
  fast : (Dptrace.Stream.t * Scenario.instance) list;
  middle : (Dptrace.Stream.t * Scenario.instance) list;
  slow : (Dptrace.Stream.t * Scenario.instance) list;
}

let classify corpus name =
  let spec =
    match Dptrace.Corpus.find_spec corpus name with
    | Some s -> s
    | None -> raise Not_found
  in
  let all = Dptrace.Corpus.instances_of corpus name in
  let fast, middle, slow =
    List.fold_left
      (fun (fast, middle, slow) ((_, i) as entry) ->
        match Scenario.classify spec i with
        | Scenario.Fast -> (entry :: fast, middle, slow)
        | Scenario.Middle -> (fast, entry :: middle, slow)
        | Scenario.Slow -> (fast, middle, entry :: slow))
      ([], [], []) all
  in
  { spec; fast = List.rev fast; middle = List.rev middle; slow = List.rev slow }

let counts t = (List.length t.fast, List.length t.middle, List.length t.slow)

let total t =
  let f, m, s = counts t in
  f + m + s
