(** Statistical robustness of the impact metrics.

    The paper reports point estimates over one (very large) corpus. Our
    corpora are smaller, so the bench reports bootstrap confidence
    intervals: trace streams are resampled with replacement and the impact
    metrics recomputed per replicate. Resampling at stream granularity is
    sound because the distinct-wait deduplication never crosses streams —
    a per-stream {!Impact.result} can be computed once and replicates are
    cheap merges. *)

type ci = {
  point : float;  (** Metric on the full corpus. *)
  mean : float;  (** Bootstrap mean. *)
  lo : float;  (** 2.5th percentile. *)
  hi : float;  (** 97.5th percentile. *)
}

type t = {
  ia_wait : ci;
  ia_run : ci;
  ia_opt : ci;
  propagation_ratio : ci;
  replicates : int;
}

val bootstrap :
  ?pool:Dppar.Pool.t ->
  ?replicates:int ->
  ?seed:int ->
  Component.t ->
  Dptrace.Corpus.t ->
  t
(** [replicates] defaults to 200; [seed] (default 1) makes the resampling
    deterministic. [pool] parallelises the per-stream measurement (the
    replicate merges are cheap and stay sequential, so results are
    identical with and without it). IA metrics are expressed as fractions in [\[0,1\]].
    With an empty corpus every interval degenerates to 0. *)

val pp : Format.formatter -> t -> unit

val contains : ci -> float -> bool
(** Whether a value lies within [\[lo, hi\]]. *)
