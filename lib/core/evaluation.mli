(** Evaluation metrics for the causality analysis (Section 5.2).

    - {b High-impact rule} (RQ1): a contrast pattern is high-impact when at
      least one of its recorded executions exceeds [T_slow] — such a
      pattern provably can constitute the perceived degradation by itself.
    - {b ITC / TTC} (Table 2): execution-time coverage of the high-impact
      patterns (resp. all patterns) over the total device-driver time in
      the slow class.
    - {b Ranking coverage} (Table 3): execution-time coverage of the top
      n % patterns under the [P.C/P.N] ranking, over all discovered
      patterns — how much inspection effort the ranking saves.
    - {b Driver-type categorisation} (Table 4): which driver types appear
      in the top-10 patterns of each scenario. *)

val high_impact : Mining.pattern -> tslow:Dputil.Time.t -> bool

type coverages = {
  driver_cost : Dputil.Time.t;
      (** Total device-driver time in the slow class (the denominator). *)
  impactful_cost : Dputil.Time.t;  (** Σ [P.C] of high-impact patterns. *)
  total_pattern_cost : Dputil.Time.t;  (** Σ [P.C] of all patterns. *)
  itc : float;
  ttc : float;
}

val time_coverages :
  Mining.pattern list -> tslow:Dputil.Time.t -> driver_cost:Dputil.Time.t -> coverages

val ranking_coverage : Mining.pattern list -> top_fraction:float -> float
(** [ranking_coverage ps ~top_fraction] — the patterns must already be
    ranked (as {!Mining.mine} returns them); takes the first
    ⌈fraction·n⌉ and returns their share of Σ [P.C]. *)

val top_patterns : Mining.pattern list -> n:int -> Mining.pattern list

val driver_type_counts :
  Mining.pattern list ->
  top_n:int ->
  type_of:(Dptrace.Signature.t -> string option) ->
  (string * int) list
(** For Table 4: among the top [n] patterns, how many patterns mention at
    least one signature of each driver type. Sorted by descending count,
    then name. *)
