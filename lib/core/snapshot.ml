(* Incremental snapshot cache. See snapshot.mli for the contract and
   DESIGN.md §11 for the format and the bit-identity argument. *)

module Stream = Dptrace.Stream
module Scenario = Dptrace.Scenario
module Corpus = Dptrace.Corpus
module Codec_v2 = Dptrace.Codec_v2
module Wire = Dptrace.Codec_binary.Wire
module Wait_graph = Dpwaitgraph.Wait_graph

let corrupt fmt =
  Format.kasprintf (fun m -> raise (Dptrace.Codec_binary.Corrupt m)) fmt

(* Bump whenever the analysis semantics or the entry wire form change:
   the version participates in the config fingerprint, so old caches
   degrade to misses instead of deserialising garbage. *)
let code_version = "dpsnap-1"

let magic = "DPSN\x01"

(* Entries above this are rejected as framing damage (same rationale as
   Codec_v2.max_frame_len). *)
let max_entry_len = 1 lsl 30

let hit_c = lazy (Dpobs.Metrics.counter "snapshot.hit")
let miss_c = lazy (Dpobs.Metrics.counter "snapshot.miss")
let stale_c = lazy (Dpobs.Metrics.counter "snapshot.stale")
let bytes_c = lazy (Dpobs.Metrics.counter "snapshot.bytes")
let mining_hit_c = lazy (Dpobs.Metrics.counter "snapshot.mining_hit")
let mining_miss_c = lazy (Dpobs.Metrics.counter "snapshot.mining_miss")

(* --- config fingerprint --- *)

let fingerprint ~components ~specs ~k () =
  let buf = Buffer.create 256 in
  Buffer.add_string buf code_version;
  Buffer.add_char buf '\n';
  List.iter
    (fun p -> Printf.bprintf buf "component:%s\n" p)
    (Component.patterns components);
  List.iter
    (fun (s : Scenario.spec) ->
      Printf.bprintf buf "spec:%s:%d:%d\n" s.Scenario.name s.Scenario.tfast
        s.Scenario.tslow)
    specs;
  Printf.bprintf buf "k:%d\n" k;
  Printf.bprintf buf "prov:%b\n" (Provenance.enabled ());
  let s = Buffer.contents buf in
  (* Two independent CRC passes give 64 fingerprint bits — plenty for the
     handful of distinct configurations a cache directory ever sees. *)
  Printf.sprintf "%08x%08x"
    (Dputil.Crc32.string s land 0xffffffff)
    (Dputil.Crc32.string (s ^ "#dpsnap") land 0xffffffff)

(* --- per-stream entries --- *)

type class_part = {
  cl_slow_impact : Impact.result;
  cl_slow_prov : Provenance.impact;
  cl_fast : Awg.Partial.partial;
  cl_slow : Awg.Partial.partial;
}

type scen_entry = {
  sc_all : Impact.result;  (* over every instance of the scenario here *)
  sc_class : class_part option;  (* present iff the scenario has a spec *)
}

type entry = {
  e_stream_id : int;
  e_impact : Impact.result;
  e_prov : Provenance.impact;
  e_modules : Impact.module_row list;
  e_scenarios : (string * scen_entry) list;  (* first-appearance order *)
}

let entry_impact e = e.e_impact
let entry_impact_prov e = (e.e_impact, e.e_prov)
let entry_modules e = e.e_modules

let entry_scenario_impact e name =
  Option.map (fun s -> s.sc_all) (List.assoc_opt name e.e_scenarios)

let entry_scenario_class e name =
  match List.assoc_opt name e.e_scenarios with
  | Some { sc_class = Some c; _ } ->
    Some (c.cl_slow_impact, c.cl_slow_prov, c.cl_fast, c.cl_slow)
  | Some { sc_class = None; _ } | None -> None

(* --- the per-stream analysis (the unit of caching) ---

   Everything downstream merging needs from one stream, computed from
   the stream's wait graphs built once: its contribution to the
   whole-corpus impact (+ provenance), to the per-module breakdown, to
   each scenario's all-instance impact, and — for scenarios with a spec —
   the per-class impact partials and unreduced AWG partial forests. *)

let analyze_stream components ~specs (st : Stream.t) =
  let index = Stream.shared_index st in
  let instances = st.Stream.instances in
  let graphs = List.map (Wait_graph.build ~index st) instances in
  let e_impact, e_prov = Impact.analyze_graphs_prov components graphs in
  let e_modules = Impact.by_module components graphs in
  (* Group (instance, graph) pairs by scenario name, preserving both the
     within-stream instance order and the names' first-appearance order
     (the entry's wire form must be a pure function of the stream). *)
  let by_name : (string, (Scenario.instance * Wait_graph.t) list ref) Hashtbl.t
      =
    Hashtbl.create 8
  in
  let order = ref [] in
  List.iter2
    (fun (i : Scenario.instance) g ->
      match Hashtbl.find_opt by_name i.Scenario.scenario with
      | Some items -> items := (i, g) :: !items
      | None ->
        let items = ref [ (i, g) ] in
        Hashtbl.replace by_name i.Scenario.scenario items;
        order := (i.Scenario.scenario, items) :: !order)
    instances graphs;
  let spec_of name =
    List.find_opt (fun (s : Scenario.spec) -> s.Scenario.name = name) specs
  in
  let e_scenarios =
    List.rev_map
      (fun (name, items) ->
        let items = List.rev !items in
        let gs = List.map snd items in
        let sc_all = Impact.analyze_graphs components gs in
        let sc_class =
          match spec_of name with
          | None -> None
          | Some spec ->
            let class_of (i, _) = Scenario.classify spec i in
            let fast_gs =
              List.filter_map
                (fun it ->
                  if class_of it = Scenario.Fast then Some (snd it) else None)
                items
            in
            let slow_gs =
              List.filter_map
                (fun it ->
                  if class_of it = Scenario.Slow then Some (snd it) else None)
                items
            in
            let cl_slow_impact, cl_slow_prov =
              Impact.analyze_graphs_prov components slow_gs
            in
            Some
              {
                cl_slow_impact;
                cl_slow_prov;
                cl_fast = Awg.Partial.build components fast_gs;
                cl_slow = Awg.Partial.build components slow_gs;
              }
        in
        (name, { sc_all; sc_class }))
      !order
  in
  {
    e_stream_id = st.Stream.id;
    e_impact;
    e_prov;
    e_modules;
    e_scenarios;
  }

(* --- entry wire form --- *)

let write_impact buf (r : Impact.result) =
  Wire.wv buf r.Impact.d_scn;
  Wire.wv buf r.Impact.d_wait;
  Wire.wv buf r.Impact.d_run;
  Wire.wv buf r.Impact.d_waitdist;
  Wire.wv buf r.Impact.instances;
  Wire.wv buf r.Impact.counted_waits;
  Wire.wv buf r.Impact.counted_runs

let read_impact cur : Impact.result =
  let d_scn = Wire.rv cur in
  let d_wait = Wire.rv cur in
  let d_run = Wire.rv cur in
  let d_waitdist = Wire.rv cur in
  let instances = Wire.rv cur in
  let counted_waits = Wire.rv cur in
  let counted_runs = Wire.rv cur in
  { Impact.d_scn; d_wait; d_run; d_waitdist; instances; counted_waits; counted_runs }

let write_ref buf (r : Provenance.instance_ref) =
  Wire.wv buf r.Provenance.stream_id;
  Wire.wstr buf r.Provenance.scenario;
  Wire.wv buf r.Provenance.tid;
  Wire.wv buf r.Provenance.t0;
  Wire.wv buf r.Provenance.t1

let read_ref cur : Provenance.instance_ref =
  let stream_id = Wire.rv cur in
  let scenario = Wire.rstr cur in
  let tid = Wire.rv cur in
  let t0 = Wire.rv cur in
  let t1 = Wire.rv cur in
  { Provenance.stream_id; scenario; tid; t0; t1 }

let write_wait_record buf (w : Provenance.wait_record) =
  write_ref buf w.Provenance.wr_ref;
  Wire.wv buf w.Provenance.wr_event;
  Wire.wstr buf (Dptrace.Signature.name w.Provenance.wr_signature);
  Wire.wv buf w.Provenance.wr_ts;
  Wire.wv buf w.Provenance.wr_te;
  Wire.wv buf w.Provenance.wr_cost;
  Wire.wv buf w.Provenance.wr_multiplicity

let read_wait_record cur : Provenance.wait_record =
  let wr_ref = read_ref cur in
  let wr_event = Wire.rv cur in
  let wr_signature = Dptrace.Signature.of_string (Wire.rstr cur) in
  let wr_ts = Wire.rv cur in
  let wr_te = Wire.rv cur in
  let wr_cost = Wire.rv cur in
  let wr_multiplicity = Wire.rv cur in
  { Provenance.wr_ref; wr_event; wr_signature; wr_ts; wr_te; wr_cost;
    wr_multiplicity }

let write_topk buf t =
  let items = Provenance.Topk.to_list t in
  Wire.wv buf (List.length items);
  List.iter (write_wait_record buf) items

(* Reservoirs are reconstructed at the pipeline's cap; the serialised
   list is already canonical (best-first, <= cap), so re-adding in order
   reproduces the exact representation. *)
let read_topk cur =
  let n = Wire.rv cur in
  let items = List.init n (fun _ -> read_wait_record cur) in
  Provenance.Topk.add_list
    (Provenance.Topk.create ~cap:Provenance.default_k
       ~compare:Provenance.compare_wait_record)
    items

let write_prov buf (p : Provenance.impact) =
  write_topk buf p.Provenance.top_waits;
  write_topk buf p.Provenance.top_runs;
  Wire.wv buf (List.length p.Provenance.by_module);
  List.iter
    (fun (name, t) ->
      Wire.wstr buf name;
      write_topk buf t)
    p.Provenance.by_module

let read_prov cur : Provenance.impact =
  let top_waits = read_topk cur in
  let top_runs = read_topk cur in
  let n = Wire.rv cur in
  let by_module =
    List.init n (fun _ ->
        let name = Wire.rstr cur in
        let t = read_topk cur in
        (name, t))
  in
  { Provenance.top_waits; top_runs; by_module }

let write_module_row buf (r : Impact.module_row) =
  Wire.wstr buf r.Impact.module_name;
  Wire.wv buf r.Impact.m_wait;
  Wire.wv buf r.Impact.m_waitdist;
  Wire.wv buf r.Impact.m_run;
  Wire.wv buf r.Impact.m_counted_waits;
  Wire.wv buf r.Impact.m_max_wait

let read_module_row cur : Impact.module_row =
  let module_name = Wire.rstr cur in
  let m_wait = Wire.rv cur in
  let m_waitdist = Wire.rv cur in
  let m_run = Wire.rv cur in
  let m_counted_waits = Wire.rv cur in
  let m_max_wait = Wire.rv cur in
  { Impact.module_name; m_wait; m_waitdist; m_run; m_counted_waits; m_max_wait }

(* --- scenario mining records ---

   Mining re-runs cost the same whether the per-stream partials came from
   the cache or not, so a warm re-analysis would be bounded below by the
   miner. The snapshot therefore also caches each scenario's
   {!Mining.result}, keyed by a digest of everything the merged AWGs are a
   deterministic function of beyond the file fingerprint: the ordered
   contributing stream keys, [k] and the [reduce] switch. Appending a
   stream only perturbs the digests of the scenarios that stream actually
   contains — every other scenario's mining result is reused verbatim. *)

let write_f64 buf f =
  let bits = Int64.bits_of_float f in
  for i = 0 to 7 do
    Wire.w8 buf
      (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * i)) 0xFFL))
  done

let read_f64 cur =
  let bits = ref 0L in
  for i = 0 to 7 do
    bits :=
      Int64.logor !bits (Int64.shift_left (Int64.of_int (Wire.r8 cur)) (8 * i))
  done;
  Int64.float_of_bits !bits

let write_signature_set buf (a : Dptrace.Signature.t array) =
  Wire.wv buf (Array.length a);
  Array.iter (fun s -> Wire.wstr buf (Dptrace.Signature.name s)) a

let read_signature_list cur =
  let n = Wire.rv cur in
  List.init n (fun _ -> Dptrace.Signature.of_string (Wire.rstr cur))

let write_tuple buf (t : Tuple.t) =
  write_signature_set buf t.Tuple.waits;
  write_signature_set buf t.Tuple.unwaits;
  write_signature_set buf t.Tuple.runnings

(* [Tuple.make] re-interns under the current process's signature order,
   so the reconstructed tuple is physically the canonical one — mining
   results built from it compare and render identically. *)
let read_tuple cur =
  let waits = read_signature_list cur in
  let unwaits = read_signature_list cur in
  let runnings = read_signature_list cur in
  Tuple.make ~waits ~unwaits ~runnings

let write_wset buf w =
  let entries = Provenance.Wset.entries w in
  Wire.wv buf (List.length entries);
  List.iter
    (fun (r, cost, count) ->
      write_ref buf r;
      Wire.wv buf cost;
      Wire.wv buf count)
    entries

let read_wset cur =
  let n = Wire.rv cur in
  Provenance.Wset.of_entries
    (List.init n (fun _ ->
         let r = read_ref cur in
         let cost = Wire.rv cur in
         let count = Wire.rv cur in
         (r, cost, count)))

let write_meta buf (m : Mining.meta) =
  write_tuple buf m.Mining.tuple;
  Wire.wv buf m.Mining.cost;
  Wire.wv buf m.Mining.count;
  write_wset buf m.Mining.m_witnesses

let read_meta cur : Mining.meta =
  let tuple = read_tuple cur in
  let cost = Wire.rv cur in
  let count = Wire.rv cur in
  let m_witnesses = read_wset cur in
  { Mining.tuple; cost; count; m_witnesses }

let write_contrast buf (c : Mining.contrast_meta) =
  write_meta buf c.Mining.cm_meta;
  (match c.Mining.reason with
  | Mining.Slow_only -> Wire.w8 buf 0
  | Mining.Cost_ratio r ->
    Wire.w8 buf 1;
    write_f64 buf r);
  write_wset buf c.Mining.cm_fast_witnesses

let read_contrast cur : Mining.contrast_meta =
  let cm_meta = read_meta cur in
  let reason =
    match Wire.r8 cur with
    | 0 -> Mining.Slow_only
    | 1 -> Mining.Cost_ratio (read_f64 cur)
    | k -> corrupt "snapshot scenario record: bad contrast tag %d" k
  in
  let cm_fast_witnesses = read_wset cur in
  { Mining.cm_meta; reason; cm_fast_witnesses }

let write_pattern buf (p : Mining.pattern) =
  write_tuple buf p.Mining.tuple;
  Wire.wv buf p.Mining.cost;
  Wire.wv buf p.Mining.count;
  Wire.wv buf p.Mining.max_single;
  write_wset buf p.Mining.witnesses;
  write_wset buf p.Mining.fast_witnesses

let read_pattern cur : Mining.pattern =
  let tuple = read_tuple cur in
  let cost = Wire.rv cur in
  let count = Wire.rv cur in
  let max_single = Wire.rv cur in
  let witnesses = read_wset cur in
  let fast_witnesses = read_wset cur in
  { Mining.tuple; cost; count; max_single; witnesses; fast_witnesses }

let write_scen_record buf ~digest (m : Mining.result) =
  Wire.wstr buf digest;
  Wire.wv buf (List.length m.Mining.contrast_metas);
  List.iter (write_contrast buf) m.Mining.contrast_metas;
  Wire.wv buf (List.length m.Mining.patterns);
  List.iter (write_pattern buf) m.Mining.patterns;
  Wire.wv buf m.Mining.fast_meta_count;
  Wire.wv buf m.Mining.slow_meta_count

let read_scen_record cur =
  let digest = Wire.rstr cur in
  let ncm = Wire.rv cur in
  let contrast_metas = List.init ncm (fun _ -> read_contrast cur) in
  let np = Wire.rv cur in
  let patterns = List.init np (fun _ -> read_pattern cur) in
  let fast_meta_count = Wire.rv cur in
  let slow_meta_count = Wire.rv cur in
  if not (Wire.at_end cur) then
    corrupt "snapshot scenario record: trailing bytes";
  (digest, { Mining.contrast_metas; patterns; fast_meta_count; slow_meta_count })

(* Scenario records share the entry framing under a reserved key prefix;
   stream keys are hex-and-dash, so the prefix cannot collide. *)
let scen_prefix = "scn!"

let is_scen_key key =
  String.length key >= String.length scen_prefix
  && String.sub key 0 (String.length scen_prefix) = scen_prefix

let write_entry buf e =
  Wire.wv buf e.e_stream_id;
  write_impact buf e.e_impact;
  write_prov buf e.e_prov;
  Wire.wv buf (List.length e.e_modules);
  List.iter (write_module_row buf) e.e_modules;
  Wire.wv buf (List.length e.e_scenarios);
  List.iter
    (fun (name, s) ->
      Wire.wstr buf name;
      write_impact buf s.sc_all;
      match s.sc_class with
      | None -> Wire.w8 buf 0
      | Some c ->
        Wire.w8 buf 1;
        write_impact buf c.cl_slow_impact;
        write_prov buf c.cl_slow_prov;
        Awg.Partial.write buf c.cl_fast;
        Awg.Partial.write buf c.cl_slow)
    e.e_scenarios

let read_entry cur =
  let e_stream_id = Wire.rv cur in
  let e_impact = read_impact cur in
  let e_prov = read_prov cur in
  let nmods = Wire.rv cur in
  let e_modules = List.init nmods (fun _ -> read_module_row cur) in
  let nscens = Wire.rv cur in
  let e_scenarios =
    List.init nscens (fun _ ->
        let name = Wire.rstr cur in
        let sc_all = read_impact cur in
        let sc_class =
          match Wire.r8 cur with
          | 0 -> None
          | 1 ->
            let cl_slow_impact = read_impact cur in
            let cl_slow_prov = read_prov cur in
            let cl_fast = Awg.Partial.read cur in
            let cl_slow = Awg.Partial.read cur in
            Some { cl_slow_impact; cl_slow_prov; cl_fast; cl_slow }
          | k -> corrupt "snapshot entry: bad class tag %d" k
        in
        (name, { sc_all; sc_class }))
  in
  if not (Wire.at_end cur) then corrupt "snapshot entry: trailing bytes";
  { e_stream_id; e_impact; e_prov; e_modules; e_scenarios }

(* --- cache files --- *)

type t = {
  dir : string option;
  fp : string;
  entries : (string, entry) Hashtbl.t;  (* key -> entry *)
  used : (string, unit) Hashtbl.t;  (* keys referenced by this corpus *)
  scenarios : (string, string * Mining.result) Hashtbl.t;
      (* scenario name -> (digest, mining); guarded by [lock] because
         run_all_snap consults it from pool workers *)
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable loaded : int;  (* entries read intact from disk *)
  mutable dropped : int;  (* on-disk entries discarded as corrupt *)
  mutable mining_hits : int;
  mutable mining_misses : int;
}

type stats = {
  s_hits : int;
  s_misses : int;
  s_stale : int;
  s_loaded : int;
  s_dropped : int;
  s_mining_hits : int;
  s_mining_misses : int;
}

let stale t =
  Hashtbl.fold
    (fun key _ acc -> if Hashtbl.mem t.used key then acc else acc + 1)
    t.entries 0

let stats t =
  {
    s_hits = t.hits;
    s_misses = t.misses;
    s_stale = stale t;
    s_loaded = t.loaded;
    s_dropped = t.dropped;
    s_mining_hits = t.mining_hits;
    s_mining_misses = t.mining_misses;
  }

let file_of ~dir ~fp = Filename.concat dir (fp ^ ".dpsnap")

let le32 buf v =
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff))

let le32_at (s : string) i =
  Char.code s.[i]
  lor (Char.code s.[i + 1] lsl 8)
  lor (Char.code s.[i + 2] lsl 16)
  lor (Char.code s.[i + 3] lsl 24)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Parse one cache file into [feed key entry] (per-stream entries) and
   [feed_scen name digest mining] (scenario mining records). Per-entry
   containment: a checksum-failing or undecodable record is skipped
   (counted corrupt) and the walk continues at the next record; damaged
   framing (implausible length) abandons the remainder of the file.
   Never raises. *)
let parse_file data ~expect_fp ~feed ~feed_scen =
  let ok = ref 0 and bad = ref 0 in
  (try
     let cur = Wire.cursor data in
     Wire.need cur (String.length magic);
     if String.sub data 0 (String.length magic) <> magic then
       corrupt "bad snapshot magic";
     cur.Wire.pos <- String.length magic;
     let fp = Wire.rstr cur in
     (match expect_fp with
     | Some expect when expect <> fp -> corrupt "fingerprint mismatch"
     | _ -> ());
     let len = String.length data in
     while cur.Wire.pos < len do
       let key = Wire.rstr cur in
       Wire.need cur 8;
       let elen = le32_at data cur.Wire.pos in
       let stored = le32_at data (cur.Wire.pos + 4) in
       cur.Wire.pos <- cur.Wire.pos + 8;
       if elen < 0 || elen > max_entry_len then
         corrupt "implausible entry length %d" elen;
       Wire.need cur elen;
       let payload = String.sub data cur.Wire.pos elen in
       cur.Wire.pos <- cur.Wire.pos + elen;
       if Dputil.Crc32.string payload <> stored then incr bad
       else if is_scen_key key then begin
         let name =
           String.sub key (String.length scen_prefix)
             (String.length key - String.length scen_prefix)
         in
         match read_scen_record (Wire.cursor payload) with
         | digest, mining ->
           feed_scen name digest mining;
           incr ok
         | exception Dptrace.Codec_binary.Corrupt _ -> incr bad
       end
       else
         match read_entry (Wire.cursor payload) with
         | e ->
           feed key e;
           incr ok
         | exception Dptrace.Codec_binary.Corrupt _ -> incr bad
     done
   with _ -> incr bad);
  (!ok, !bad)

let create ?dir ~fingerprint:fp () =
  let t =
    {
      dir;
      fp;
      entries = Hashtbl.create 64;
      used = Hashtbl.create 64;
      scenarios = Hashtbl.create 16;
      lock = Mutex.create ();
      hits = 0;
      misses = 0;
      loaded = 0;
      dropped = 0;
      mining_hits = 0;
      mining_misses = 0;
    }
  in
  (match dir with
  | None -> ()
  | Some dir ->
    let path = file_of ~dir ~fp in
    if Sys.file_exists path then begin
      match read_file path with
      | data ->
        let ok, bad =
          parse_file data ~expect_fp:(Some fp)
            ~feed:(fun key e -> Hashtbl.replace t.entries key e)
            ~feed_scen:(fun name digest mining ->
              Hashtbl.replace t.scenarios name (digest, mining))
        in
        t.loaded <- ok;
        t.dropped <- bad;
        if Dpobs.metrics_on () then
          Dpobs.Metrics.add (Lazy.force bytes_c) (String.length data)
      | exception Sys_error _ -> ()
    end);
  t

let save t =
  match t.dir with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let buf = Buffer.create 65536 in
    Buffer.add_string buf magic;
    Wire.wstr buf t.fp;
    let record key payload =
      Wire.wstr buf key;
      le32 buf (String.length payload);
      le32 buf (Dputil.Crc32.string payload);
      Buffer.add_string buf payload
    in
    (* Sorted keys: the file is a pure function of its contents. *)
    let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.entries [] in
    List.iter
      (fun key ->
        let e = Hashtbl.find t.entries key in
        let ebuf = Buffer.create 4096 in
        write_entry ebuf e;
        record key (Buffer.contents ebuf))
      (List.sort compare keys);
    let scen_names = Hashtbl.fold (fun n _ acc -> n :: acc) t.scenarios [] in
    List.iter
      (fun name ->
        let digest, mining = Hashtbl.find t.scenarios name in
        let ebuf = Buffer.create 4096 in
        write_scen_record ebuf ~digest mining;
        record (scen_prefix ^ name) (Buffer.contents ebuf))
      (List.sort compare scen_names);
    let path = file_of ~dir ~fp:t.fp in
    let tmp = path ^ ".tmp" in
    (* [snapshot.write] fault site. A [Torn_write] really persists only
       a prefix of the tmp file before failing, other kinds fail before
       writing; every retry rewrites the tmp from offset 0. Only a fully
       written tmp reaches the rename, so whatever the plan does the
       published cache file is never replaced by torn data — the
       tmp+rename atomicity this site exists to prove. *)
    let write_tmp () =
      (match Dpfault.check Dpfault.Snapshot_write with
      | None -> ()
      | Some Dpfault.Torn_write ->
        let data = Buffer.contents buf in
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_substring oc data 0 (String.length data / 2));
        raise
          (Dpfault.Injected
             { site = Dpfault.Snapshot_write; kind = Dpfault.Torn_write })
      | Some kind -> Dpfault.act Dpfault.Snapshot_write kind);
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> Buffer.output_buffer oc buf)
    in
    (match Dpfault.Retry.run Dpfault.Snapshot_write write_tmp with
    | () ->
      Sys.rename tmp path;
      if Dpobs.metrics_on () then
        Dpobs.Metrics.add (Lazy.force bytes_c) (Buffer.length buf)
    | exception Dpfault.Injected _ ->
      (* Budget spent: abandon this save. The previous cache file (if
         any) stays authoritative; the leftover tmp is overwritten by
         the next successful save and never parsed as a snapshot. *)
      Dpobs.Log.warn
        "snapshot: save of %s abandoned after injected write faults" path)

let key_of = Codec_v2.stream_key

let ensure ?pool t components (corpus : Corpus.t) =
  Dpobs.Span.with_span "snapshot.ensure" @@ fun () ->
  let specs = corpus.Corpus.specs in
  let misses = ref [] and hits = ref 0 in
  List.iter
    (fun st ->
      let key = key_of st in
      Hashtbl.replace t.used key ();
      if Hashtbl.mem t.entries key then incr hits
      else misses := (key, st) :: !misses)
    corpus.Corpus.streams;
  let misses = List.rev !misses in
  t.hits <- t.hits + !hits;
  t.misses <- t.misses + List.length misses;
  let fresh =
    match pool with
    | Some pool when Dppar.Pool.size pool > 1 ->
      Dppar.Pool.parallel_map ~chunk:1 pool
        (fun (key, st) -> (key, analyze_stream components ~specs st))
        misses
    | _ ->
      List.map (fun (key, st) -> (key, analyze_stream components ~specs st)) misses
  in
  List.iter (fun (key, e) -> Hashtbl.replace t.entries key e) fresh;
  if Dpobs.metrics_on () then begin
    Dpobs.Metrics.add (Lazy.force hit_c) !hits;
    Dpobs.Metrics.add (Lazy.force miss_c) (List.length misses);
    Dpobs.Metrics.add (Lazy.force stale_c) (stale t)
  end

let entry t st =
  match Hashtbl.find_opt t.entries (key_of st) with
  | Some e -> e
  | None ->
    invalid_arg
      (Printf.sprintf "Snapshot.entry: stream %d not ensured" st.Stream.id)

(* --- scenario mining cache ---

   The merged class AWGs a scenario is mined from are a deterministic
   function of the file fingerprint (components, specs, k, provenance,
   code version) plus: which streams contribute class parts, in what
   order, and the [reduce] switch. The digest captures exactly that
   remainder, so a matching digest guarantees [Mining.mine] would
   reproduce the stored result bit for bit. Streams are identified by
   the same codec-v2 content keys as the per-stream entries.

   Requires [ensure] to have run for this corpus (keys are memoised and
   [entries] is read-only by then, so concurrent readers are safe). *)
let scenario_digest t (corpus : Corpus.t) name ~reduce ~k =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "scenario:%s\nreduce:%b\nk:%d\n" name reduce k;
  List.iter
    (fun st ->
      let key = key_of st in
      match Hashtbl.find_opt t.entries key with
      | Some e when entry_scenario_class e name <> None ->
        Buffer.add_string buf key;
        Buffer.add_char buf '\n'
      | _ -> ())
    corpus.Corpus.streams;
  let s = Buffer.contents buf in
  Printf.sprintf "%08x%08x"
    (Dputil.Crc32.string s land 0xffffffff)
    (Dputil.Crc32.string (s ^ "#dpscn") land 0xffffffff)

let find_mining t corpus name ~reduce ~k =
  let digest = scenario_digest t corpus name ~reduce ~k in
  Mutex.protect t.lock @@ fun () ->
  match Hashtbl.find_opt t.scenarios name with
  | Some (d, mining) when d = digest ->
    t.mining_hits <- t.mining_hits + 1;
    if Dpobs.metrics_on () then Dpobs.Metrics.incr (Lazy.force mining_hit_c);
    Some mining
  | Some _ | None ->
    t.mining_misses <- t.mining_misses + 1;
    if Dpobs.metrics_on () then Dpobs.Metrics.incr (Lazy.force mining_miss_c);
    None

let store_mining t corpus name ~reduce ~k mining =
  let digest = scenario_digest t corpus name ~reduce ~k in
  Mutex.protect t.lock @@ fun () ->
  Hashtbl.replace t.scenarios name (digest, mining)

(* --- cache-directory tooling (driveperf cache) --- *)

type file_info = {
  fi_path : string;
  fi_fingerprint : string;
  fi_bytes : int;
  fi_entries : int;
  fi_corrupt : int;
  fi_mtime : float;
}

let list_files dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".dpsnap")
    |> List.sort compare
    |> List.map (Filename.concat dir)

let inspect path =
  let data = try read_file path with Sys_error _ -> "" in
  let fp =
    try
      let cur = Wire.cursor data in
      Wire.need cur (String.length magic);
      if String.sub data 0 (String.length magic) <> magic then "(bad magic)"
      else begin
        cur.Wire.pos <- String.length magic;
        Wire.rstr cur
      end
    with _ -> "(unreadable)"
  in
  let ok, bad =
    parse_file data ~expect_fp:None
      ~feed:(fun _ _ -> ())
      ~feed_scen:(fun _ _ _ -> ())
  in
  let mtime = try (Unix.stat path).Unix.st_mtime with _ -> 0.0 in
  {
    fi_path = path;
    fi_fingerprint = fp;
    fi_bytes = String.length data;
    fi_entries = ok;
    fi_corrupt = bad;
    fi_mtime = mtime;
  }

let gc ~keep dir =
  let files = list_files dir in
  let by_age =
    List.sort
      (fun a b -> compare b.fi_mtime a.fi_mtime)
      (List.map inspect files)
  in
  let rec drop n = function
    | [] -> []
    | _ :: _ as rest when n = 0 -> rest
    | _ :: rest -> drop (n - 1) rest
  in
  let victims = drop (max keep 0) by_age in
  List.iter (fun fi -> try Sys.remove fi.fi_path with Sys_error _ -> ()) victims;
  ( List.length victims,
    List.fold_left (fun acc fi -> acc + fi.fi_bytes) 0 victims )
