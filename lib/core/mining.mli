(** Contrast pattern mining (Section 4.2.3).

    Three steps over the fast-class and slow-class Aggregated Wait Graphs:

    + {b meta-pattern enumeration}: Signature Set Tuples of all path
      segments of length 1..k, with [P.C]/[P.N] aggregated over segments
      sharing a tuple — bounding the length keeps mining tractable and
      loses no patterns, since longer behaviours decompose into their
      bounded sub-segments;
    + {b contrast discovery}: a meta-pattern is a contrast when it appears
      only in the slow class, or appears in both with a per-occurrence
      cost ratio above [T_slow / T_fast];
    + {b pattern selection}: every full slow-class path whose tuple
      contains some contrast meta-pattern becomes a contrast pattern;
      identical tuples merge their [P.C] and [P.N]. Patterns are ranked by
      average execution cost [P.C/P.N], highest impact first. *)

type meta = {
  tuple : Tuple.t;
  cost : Dputil.Time.t;
  count : int;
  m_witnesses : Provenance.Wset.t;
      (** Instances supporting the segments merged into this meta (empty
          unless {!Provenance.enabled}). *)
}

type contrast_reason =
  | Slow_only
  | Cost_ratio of float  (** Per-occurrence slow/fast cost ratio. *)

type contrast_meta = {
  cm_meta : meta;
  reason : contrast_reason;
  cm_fast_witnesses : Provenance.Wset.t;
      (** Fast-class instances the same tuple matched — the other side of
          a [Cost_ratio] contrast; empty for [Slow_only]. *)
}

type pattern = {
  tuple : Tuple.t;
  cost : Dputil.Time.t;  (** [P.C] — Σ end-node cost of merged paths. *)
  count : int;  (** [P.N]. *)
  max_single : Dputil.Time.t;
      (** Largest single observed execution of the behaviour, measured at
          the {e root} of the merged paths (the top-level wait the pattern
          explains); drives the automated high-impact classification of
          Section 5.2.1, which asks whether some execution exceeded
          [T_slow]. *)
  witnesses : Provenance.Wset.t;
      (** Slow-class instances supporting the merged paths' leaves, with
          per-instance contributed cost. *)
  fast_witnesses : Provenance.Wset.t;
      (** Fast-class instances matched by the contrast metas this pattern
          contains. *)
}

val make_pattern :
  tuple:Tuple.t ->
  cost:Dputil.Time.t ->
  count:int ->
  max_single:Dputil.Time.t ->
  pattern
(** A pattern with empty witness sets — for tests and synthetic tables. *)

type result = {
  contrast_metas : contrast_meta list;
  patterns : pattern list;  (** Ranked by [avg_cost], descending. *)
  fast_meta_count : int;
  slow_meta_count : int;
}

val default_k : int
(** 5, the paper's segment-length bound for all experiments. *)

val enumerate_metas : Awg.t -> k:int -> meta list
(** Step 1 alone (exposed for tests and ablations). *)

val mine :
  ?k:int -> fast:Awg.t -> slow:Awg.t -> spec:Dptrace.Scenario.spec -> unit -> result
(** Run all three steps. The contrast ratio threshold is
    [spec.tslow / spec.tfast]. *)

val avg_cost : pattern -> float
(** [P.C/P.N] in microseconds — the ranking key. *)

val pp_pattern : Format.formatter -> pattern -> unit
