(** Contrast pattern mining (Section 4.2.3).

    Three steps over the fast-class and slow-class Aggregated Wait Graphs:

    + {b meta-pattern enumeration}: Signature Set Tuples of all path
      segments of length 1..k, with [P.C]/[P.N] aggregated over segments
      sharing a tuple — bounding the length keeps mining tractable and
      loses no patterns, since longer behaviours decompose into their
      bounded sub-segments;
    + {b contrast discovery}: a meta-pattern is a contrast when it appears
      only in the slow class, or appears in both with a per-occurrence
      cost ratio above [T_slow / T_fast];
    + {b pattern selection}: every full slow-class path whose tuple
      contains some contrast meta-pattern becomes a contrast pattern;
      identical tuples merge their [P.C] and [P.N]. Patterns are ranked by
      average execution cost [P.C/P.N], highest impact first.

    Two implementations live here. The {e engine} (the top-level
    functions) enumerates segments incrementally — per-role sorted
    multiset scratches updated in O(log n) as the walk extends or
    retracts a segment, hash-consed tuples frozen once per distinct
    (hash, content) per root, tables keyed by dense tuple ids — can fan
    enumeration over the AWG roots on a {!Dppar.Pool}, and replaces the
    exhaustive metas × paths subset scan of step 3 with an inverted
    signature index (each contrast meta indexed under its rarest
    signature; candidates generated from the signatures a path actually
    contains, then subset-verified in original meta order). {!Reference}
    retains the naive algorithms as the correctness oracle: both produce
    bit-identical {!result}s — including provenance witness sets, whose
    truncating unions are order-sensitive and therefore applied in
    reference segment order even under parallel enumeration. *)

type meta = {
  tuple : Tuple.t;
  cost : Dputil.Time.t;
  count : int;
  m_witnesses : Provenance.Wset.t;
      (** Instances supporting the segments merged into this meta (empty
          unless {!Provenance.enabled}). *)
}

type contrast_reason =
  | Slow_only
  | Cost_ratio of float  (** Per-occurrence slow/fast cost ratio. *)

type contrast_meta = {
  cm_meta : meta;
  reason : contrast_reason;
  cm_fast_witnesses : Provenance.Wset.t;
      (** Fast-class instances the same tuple matched — the other side of
          a [Cost_ratio] contrast; empty for [Slow_only]. *)
}

type pattern = {
  tuple : Tuple.t;
  cost : Dputil.Time.t;  (** [P.C] — Σ end-node cost of merged paths. *)
  count : int;  (** [P.N]. *)
  max_single : Dputil.Time.t;
      (** Largest single observed execution of the behaviour, measured at
          the {e root} of the merged paths (the top-level wait the pattern
          explains); drives the automated high-impact classification of
          Section 5.2.1, which asks whether some execution exceeded
          [T_slow]. *)
  witnesses : Provenance.Wset.t;
      (** Slow-class instances supporting the merged paths' leaves, with
          per-instance contributed cost. *)
  fast_witnesses : Provenance.Wset.t;
      (** Fast-class instances matched by the contrast metas this pattern
          contains. *)
}

val make_pattern :
  tuple:Tuple.t ->
  cost:Dputil.Time.t ->
  count:int ->
  max_single:Dputil.Time.t ->
  pattern
(** A pattern with empty witness sets — for tests and synthetic tables. *)

type result = {
  contrast_metas : contrast_meta list;
  patterns : pattern list;  (** Ranked by [avg_cost], descending. *)
  fast_meta_count : int;
  slow_meta_count : int;
}

val default_k : int
(** 5, the paper's segment-length bound for all experiments. *)

module Tuple_table : sig
  type 'a t

  val length : 'a t -> int
end

val meta_table : ?pool:Dppar.Pool.t -> Awg.t -> k:int -> meta Tuple_table.t
(** Step 1's raw table — the body of the [mining.enumerate_tuples] span,
    exposed so the bench can time the stage without the diagnostic sort
    of {!enumerate_metas}. *)

val enumerate_metas : ?pool:Dppar.Pool.t -> Awg.t -> k:int -> meta list
(** Step 1 alone, sorted by tuple (exposed for tests, ablations and
    benches). [pool] fans the per-root enumeration over domains; the
    merged table is bit-identical to the sequential one. *)

val select_patterns :
  slow:Awg.t -> contrast_metas:contrast_meta list -> pattern list
(** Step 3 alone (exposed for benches): inverted-index candidate
    generation + subset verification over the slow class's full paths. *)

val mine :
  ?pool:Dppar.Pool.t ->
  ?k:int ->
  fast:Awg.t ->
  slow:Awg.t ->
  spec:Dptrace.Scenario.spec ->
  unit ->
  result
(** Run all three steps. The contrast ratio threshold is
    [spec.tslow / spec.tfast]. [pool] parallelises step 1 per AWG root;
    the result is bit-identical with or without it. *)

module Reference : sig
  (** The pre-optimisation miner, kept as the correctness oracle: naive
      tuple-per-segment enumeration, the exhaustive subset scan, and the
      original content-keyed (per-probe hashing) tables. Same [result],
      measured against by the mining bench and the equivalence property
      tests. *)

  type 'a table

  val table_length : 'a table -> int

  val meta_table : Awg.t -> k:int -> meta table

  val enumerate_metas : Awg.t -> k:int -> meta list

  val select_patterns :
    slow:Awg.t -> contrast_metas:contrast_meta list -> pattern list

  val mine :
    ?k:int ->
    fast:Awg.t ->
    slow:Awg.t ->
    spec:Dptrace.Scenario.spec ->
    unit ->
    result
end

val avg_cost : pattern -> float
(** [P.C/P.N] in microseconds — the ranking key. *)

val pp_pattern : Format.formatter -> pattern -> unit
