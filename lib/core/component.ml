module Signature = Dptrace.Signature
module Event = Dptrace.Event
module Callstack = Dptrace.Callstack

type t = {
  sources : string list;
  compiled : Dputil.Wildcard.t list;
  keep_hw : bool;
}

let of_patterns sources =
  { sources; compiled = List.map Dputil.Wildcard.compile sources; keep_hw = false }

let drivers =
  {
    sources = [ "*.sys" ];
    compiled = [ Dputil.Wildcard.compile "*.sys" ];
    keep_hw = true;
  }

let patterns t = t.sources

let matches_signature t s = Signature.matches t.compiled s

let stack_relevant t stack = Callstack.contains_matching t.compiled stack

let none_sig = lazy (Signature.of_string "<none>")

let event_signature t (e : Event.t) =
  match e.kind with
  | Event.Hw_service ->
    if t.keep_hw then Callstack.top e.stack
    else Callstack.topmost_matching t.compiled e.stack
  | Event.Running | Event.Wait | Event.Unwait ->
    Callstack.topmost_matching t.compiled e.stack

let event_relevant t e = event_signature t e <> None

let event_signature_or_top t (e : Event.t) =
  match event_signature t e with
  | Some s -> s
  | None -> (
    match Callstack.top e.stack with
    | Some s -> s
    | None -> Lazy.force none_sig)
