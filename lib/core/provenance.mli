(** Result provenance: the lineage from aggregate numbers back to the
    concrete trace events that produced them.

    The pipeline's outputs — an [IA_opt] figure, a ranked contrast
    pattern — are only actionable because an analyst can drill from them
    back down to raw wait events and scenario instances (the paper's
    Section 5 case studies all end in such a drill-down). This module
    records that lineage as the analyses run:

    - {!Impact.analyze} keeps, per component module and globally, the
      top-K costliest distinct wait and running events behind
      [D_wait]/[D_waitdist]/[D_run], each tagged with its stream,
      scenario instance, signature, time span and propagation
      multiplicity (how many instances counted the same event);
    - {!Awg} nodes carry a capped set of contributing (stream, instance)
      witnesses through merge and reduction, so every aggregated edge
      knows its support;
    - {!Mining} attaches to metas and contrast patterns the fast/slow
      instances they matched, with per-occurrence costs.

    Everything is bounded: top-K reservoirs per node ({!default_k}
    entries), so provenance memory is proportional to the number of
    aggregate objects, never to the corpus.

    Recording is off by default and gated on one atomic load per site;
    disabled runs compute bit-identical results and allocate no
    provenance. *)

(** {1 The switch} *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val default_k : int
(** 8 — the reservoir cap used by every collection site unless the
    caller overrides it. *)

(** {1 Instance references} *)

type instance_ref = {
  stream_id : int;
  scenario : string;
  tid : int;  (** Initiating thread of the instance. *)
  t0 : Dputil.Time.t;
  t1 : Dputil.Time.t;
}
(** Identifies one scenario instance: [(stream, scenario, tid, window)]
    is unique within a corpus (instances of one stream never share a
    start). *)

val ref_of : Dptrace.Stream.t -> Dptrace.Scenario.instance -> instance_ref
val compare_ref : instance_ref -> instance_ref -> int
val pp_ref : Format.formatter -> instance_ref -> unit

(** {1 Bounded best-first reservoirs} *)

module Topk : sig
  type 'a t
  (** An immutable reservoir keeping the [cap] best elements under a
      fixed total order (best first). Deterministic: insertion order
      never matters, so per-stream reservoirs merged in any association
      yield the same contents. *)

  val create : cap:int -> compare:('a -> 'a -> int) -> 'a t
  (** [compare] orders best-first (negative = better) and must be total
      — break cost ties on stable identity, not insertion order. *)

  val add : 'a t -> 'a -> 'a t
  val add_list : 'a t -> 'a list -> 'a t
  val merge : 'a t -> 'a t -> 'a t
  (** Both sides must share [cap] and [compare] (true for reservoirs
      built by one analysis). *)

  val to_list : 'a t -> 'a list
  (** Best first, at most [cap] elements. *)
end

(** {1 Witness sets (AWG node support)} *)

module Wset : sig
  type t
  (** A capped aggregation of contributing instances: per
      {!instance_ref}, the total cost it contributed and the number of
      source events absorbed. Kept cost-descending and truncated to a
      cap, reservoir-style: the costliest supporters survive. *)

  val empty : t

  val add : ?cap:int -> t -> instance_ref -> cost:Dputil.Time.t -> t
  (** Merge one occurrence ([count + 1], [cost + cost]) for [ref];
      [cap] defaults to {!default_k}. *)

  val union : ?cap:int -> t -> t -> t
  (** Per-ref sums, then re-capped. *)

  val entries : t -> (instance_ref * Dputil.Time.t * int) list
  (** [(ref, contributed cost, occurrences)], cost-descending. *)

  val of_entries : (instance_ref * Dputil.Time.t * int) list -> t
  (** Exact inverse of {!entries}: rebuilds the identical representation
      from a previously serialised entry list. The caller must preserve
      [entries] order and respect the cap — intended for
      {!Snapshot}-style round-tripping, not general construction. *)

  val total_cost : t -> Dputil.Time.t
  val is_empty : t -> bool
  val cardinal : t -> int
end

module Wacc : sig
  type t
  (** A mutable {e exact} witness accumulator: per {!instance_ref}, total
      contributed cost and occurrence count, with no cap. Unlike a
      sequence of capped {!Wset.add}s — path-dependent once eviction
      starts — exact accumulation is commutative and associative, so
      per-stream accumulators merged in any order agree with the
      sequential fold. {!Awg.build} accumulates through here and
      truncates to a canonical capped {!Wset.t} only when the node
      freezes; the snapshot cache serialises the exact entries so cached
      merges stay bit-identical to from-scratch runs. *)

  val create : unit -> t
  val add : t -> instance_ref -> cost:Dputil.Time.t -> unit
  (** One occurrence: [cost + cost], [count + 1]. *)

  val add_entry : t -> instance_ref * Dputil.Time.t * int -> unit
  (** Merge a pre-aggregated [(ref, cost, count)] entry. *)

  val merge_into : into:t -> t -> unit

  val entries : t -> (instance_ref * Dputil.Time.t * int) list
  (** All entries, cost-descending (ties on ref) — canonical, for
      serialisation. *)

  val to_wset : ?cap:int -> t -> Wset.t
  (** Renormalise to the capped canonical form; [cap] defaults to
      {!default_k}. *)

  val is_empty : t -> bool
end

(** {1 Impact provenance} *)

type wait_record = {
  wr_ref : instance_ref;
      (** The first instance (in analysis order) that counted the event. *)
  wr_event : int;  (** Event id within the stream. *)
  wr_signature : Dptrace.Signature.t;
      (** Topmost component signature on the event's stack. *)
  wr_ts : Dputil.Time.t;
  wr_te : Dputil.Time.t;  (** Event window [wr_ts, wr_te]. *)
  wr_cost : Dputil.Time.t;
  wr_multiplicity : int;
      (** Instances that counted this same distinct event — the event's
          contribution to the [D_wait]/[D_waitdist] gap. *)
}

val compare_wait_record : wait_record -> wait_record -> int
(** Cost-descending, ties on (stream, event id): a total best-first
    order for {!Topk}. *)

val pp_wait_record : Format.formatter -> wait_record -> unit

type impact = {
  top_waits : wait_record Topk.t;
      (** Costliest distinct component wait events (the mass behind
          [D_wait]/[D_waitdist]). *)
  top_runs : wait_record Topk.t;
      (** Costliest distinct component running events (behind [D_run]);
          [wr_multiplicity] is the number of graphs that reached it. *)
  by_module : (string * wait_record Topk.t) list;
      (** Per-module top-K wait events, name-sorted. *)
}

val empty_impact : impact
val merge_impact : impact -> impact -> impact
(** Exact for disjoint streams (records are keyed by (stream, event));
    used by the parallel per-stream reduction. *)

(** {1 Collector}

    Mutable accumulation used inside one sequential analysis pass
    (one stream, or one graph list); extract once at the end. *)

module Collector : sig
  type t

  val create : ?cap:int -> unit -> t

  val record_wait :
    t ->
    module_name:string ->
    stream_id:int ->
    instance:instance_ref ->
    event:Dptrace.Event.t ->
    signature:Dptrace.Signature.t ->
    unit
  (** Count one top-level component wait occurrence. The same (stream,
      event) from several instances accumulates multiplicity. *)

  val record_run :
    t ->
    stream_id:int ->
    instance:instance_ref ->
    event:Dptrace.Event.t ->
    signature:Dptrace.Signature.t ->
    unit

  val impact : t -> impact
end
