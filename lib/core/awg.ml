module Event = Dptrace.Event
module Signature = Dptrace.Signature
module Wait_graph = Dpwaitgraph.Wait_graph

type status =
  | Waiting of { wait_sig : Signature.t; unwait_sig : Signature.t }
  | Running of Signature.t
  | Hw of Signature.t

type node = {
  status : status;
  mutable cost : Dputil.Time.t;
  mutable count : int;
  mutable max_cost : Dputil.Time.t;
  mutable witnesses : Provenance.Wset.t;
  mutable wacc : Provenance.Wacc.t option;
      (* Exact witness accumulation while the node is still mutating;
         collapsed into the canonical capped [witnesses] when the forest
         is finalised. Exactness (no mid-build truncation) is what makes
         witness aggregation commutative, so per-stream partial forests
         merged later ([Partial]) reproduce the sequential build bit for
         bit. [None] when provenance is off or after finalisation. *)
  children : (status, node) Hashtbl.t;
  mutable frozen_kids : node array option;
      (* Children in sorted-status order, memoised once the node stops
         mutating. Every path prefix reaching a node used to re-sort the
         same children; freezing makes each traversal step an array
         iteration. [build] freezes the whole forest before returning, so
         concurrent readers (mining fanned out over roots) only ever see
         the published array. *)
}

type reduction_stats = {
  pruned_roots : int;
  pruned_cost : Dputil.Time.t;
  total_root_cost : Dputil.Time.t;
}

type t = {
  forest : (status, node) Hashtbl.t;
  mutable stats : reduction_stats;
}

(* Intermediate per-graph tree after irrelevant-node elimination and
   wait/unwait merging; merged into the AWG trie on signature prefixes. *)
type cnode = { cstatus : status; ccost : Dputil.Time.t; ckids : cnode list }

let convert components (g : Wait_graph.t) =
  let visited : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let rec conv (n : Wait_graph.node) : cnode list =
    let e = n.Wait_graph.event in
    if Hashtbl.mem visited e.Event.id then []
    else begin
      Hashtbl.replace visited e.Event.id ();
      match e.Event.kind with
      | Event.Unwait -> [] (* never a graph child; pairing held in [waker] *)
      | Event.Running ->
        (match Component.event_signature components e with
        | Some s -> [ { cstatus = Running s; ccost = e.Event.cost; ckids = [] } ]
        | None -> [])
      | Event.Hw_service ->
        (match Component.event_signature components e with
        | Some s -> [ { cstatus = Hw s; ccost = e.Event.cost; ckids = [] } ]
        | None -> [])
      | Event.Wait ->
        let kids () = List.concat_map conv n.Wait_graph.children in
        (match Component.event_signature components e with
        | None -> kids () (* irrelevant: promote children *)
        | Some wait_sig ->
          let unwait_sig =
            match n.Wait_graph.waker with
            | Some u -> Component.event_signature_or_top components u
            | None -> Signature.of_string "<lost-unwait>"
          in
          [
            {
              cstatus = Waiting { wait_sig; unwait_sig };
              ccost = e.Event.cost;
              ckids = kids ();
            };
          ])
    end
  in
  List.concat_map conv g.Wait_graph.roots

let fresh_node status =
  {
    status;
    cost = 0;
    count = 0;
    max_cost = 0;
    witnesses = Provenance.Wset.empty;
    wacc = None;
    children = Hashtbl.create 4;
    frozen_kids = None;
  }

let node_wacc n =
  match n.wacc with
  | Some a -> a
  | None ->
    let a = Provenance.Wacc.create () in
    n.wacc <- Some a;
    a

let rec merge_into ?src ?parent table (c : cnode) =
  let n =
    match Hashtbl.find_opt table c.cstatus with
    | Some n -> n
    | None ->
      let n = fresh_node c.cstatus in
      Hashtbl.replace table c.cstatus n;
      (* A new child invalidates the parent's frozen view (only relevant
         if anything froze mid-build; [build] freezes at the end). *)
      (match parent with Some p -> p.frozen_kids <- None | None -> ());
      n
  in
  n.cost <- n.cost + c.ccost;
  n.count <- n.count + 1;
  if c.ccost > n.max_cost then n.max_cost <- c.ccost;
  (match src with
  | Some r -> Provenance.Wacc.add (node_wacc n) r ~cost:c.ccost
  | None -> ());
  List.iter (merge_into ?src ~parent:n n.children) c.ckids

let is_hw_leaf n =
  match n.status with Hw _ -> Hashtbl.length n.children = 0 | _ -> false

(* Hashtbl bindings in sorted-status order. Statuses are the (distinct)
   keys, so the sort is a total order and every fold/merge that walks a
   level through here is independent of hash-table insertion order —
   which is what keeps traversals identical however the source graphs
   were partitioned for parallel construction. *)
let sorted_bindings table =
  Hashtbl.fold (fun status n acc -> (status, n) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Prune root waiting nodes whose only child is a hardware-service leaf:
   raw hardware latency with no propagation is not actionable. *)
let reduce_forest forest =
  let pruned_roots = ref 0 and pruned_cost = ref 0 and total = ref 0 in
  let victims = ref [] in
  List.iter
    (fun (status, n) ->
      total := !total + n.cost;
      match n.status with
      | Waiting _ when Hashtbl.length n.children = 1 ->
        let only = Hashtbl.fold (fun _ c _ -> Some c) n.children None in
        (match only with
        | Some c when is_hw_leaf c ->
          incr pruned_roots;
          pruned_cost := !pruned_cost + n.cost;
          victims := status :: !victims
        | Some _ | None -> ())
      | Waiting _ | Running _ | Hw _ -> ())
    (sorted_bindings forest);
  List.iter (Hashtbl.remove forest) !victims;
  {
    pruned_roots = !pruned_roots;
    pruned_cost = !pruned_cost;
    total_root_cost = !total;
  }

let sorted_nodes table =
  Hashtbl.fold (fun _ n acc -> n :: acc) table []
  |> List.sort (fun a b -> compare a.status b.status)

let sorted_children n =
  match n.frozen_kids with
  | Some kids -> kids
  | None ->
    let kids = Array.of_list (sorted_nodes n.children) in
    n.frozen_kids <- Some kids;
    kids

(* Final steps shared by [build] and [Partial.merge_all]: reduce, collapse
   the exact witness accumulators into their canonical capped sets, and
   freeze the sorted-children arrays. After this the forest is read-only. *)
let finish ~reduce forest =
  let stats =
    if reduce then reduce_forest forest
    else
      let total = Hashtbl.fold (fun _ n acc -> acc + n.cost) forest 0 in
      { pruned_roots = 0; pruned_cost = 0; total_root_cost = total }
  in
  let rec final n =
    (match n.wacc with
    | Some a ->
      n.witnesses <- Provenance.Wacc.to_wset a;
      n.wacc <- None
    | None -> ());
    Array.iter final (sorted_children n)
  in
  List.iter final (sorted_nodes forest);
  { forest; stats }

let build ?pool ?(reduce = true) components graphs =
  (* Per-graph conversion is pure and dominates the build; fan it out.
     The merge stays sequential in the given graph order, so the forest —
     keyed by status, with commutative cost/count/max accumulation — is
     identical whether the conversions ran on one domain or eight. *)
  let converted =
    match pool with
    | Some pool -> Dppar.Pool.parallel_map pool (convert components) graphs
    | None -> List.map (convert components) graphs
  in
  let forest : (status, node) Hashtbl.t = Hashtbl.create 64 in
  (* When provenance is on, the merge also folds each source graph's
     scenario instance into the witness set of every node it touches.
     The witness add is commutative over instances (per-ref sums with a
     deterministic re-sort), so this doesn't disturb the bit-identity of
     the sequential merge. *)
  if Provenance.enabled () then
    List.iter2
      (fun (g : Wait_graph.t) cnodes ->
        let src = Provenance.ref_of g.Wait_graph.stream g.Wait_graph.instance in
        List.iter (merge_into ~src forest) cnodes)
      graphs converted
  else List.iter (List.iter (merge_into forest)) converted;
  (* [finish] reduces, canonicalises witnesses and freezes the
     sorted-children arrays while still single-domain: after this point
     the forest is read-only and the frozen views can be shared by
     parallel mining without publication races. *)
  finish ~reduce forest

let roots t = sorted_nodes t.forest

let reduction t = t.stats

let rec fold_node f acc n =
  let acc = f acc n in
  Array.fold_left (fold_node f) acc (sorted_children n)

let fold t ~init ~f = List.fold_left (fold_node f) init (roots t)

let node_count t = fold t ~init:0 ~f:(fun acc _ -> acc + 1)

let total_cost t = fold t ~init:0 ~f:(fun acc n -> acc + n.cost)

let total_leaf_cost t =
  fold t ~init:0 ~f:(fun acc n ->
      if Hashtbl.length n.children = 0 then acc + n.cost else acc)

let iter_segments t ~k ~f =
  if k < 1 then invalid_arg "Awg.iter_segments: k must be >= 1";
  (* From every node, walk all downward paths of length <= k; report each
     prefix. [prefix] is kept reversed for O(1) extension. The frozen
     children arrays make each extension step an array scan instead of a
     per-visit sort. *)
  let rec extend prefix_rev len n =
    let prefix_rev = n :: prefix_rev in
    f (List.rev prefix_rev);
    if len < k then
      Array.iter (extend prefix_rev (len + 1)) (sorted_children n)
  in
  let rec every_node n =
    extend [] 1 n;
    Array.iter every_node (sorted_children n)
  in
  List.iter every_node (roots t)

let full_paths t =
  let out = ref [] in
  let rec go prefix_rev n =
    let prefix_rev = n :: prefix_rev in
    let kids = sorted_children n in
    if Array.length kids = 0 then out := List.rev prefix_rev :: !out
    else Array.iter (go prefix_rev) kids
  in
  List.iter (go []) (roots t);
  List.rev !out

let non_optimizable_fraction t =
  Dputil.Stats.ratio
    (float_of_int t.stats.pruned_cost)
    (float_of_int t.stats.total_root_cost)

let status_pp fmt = function
  | Waiting { wait_sig; unwait_sig } ->
    Format.fprintf fmt "wait %s -> unwait %s" (Signature.name wait_sig)
      (Signature.name unwait_sig)
  | Running s -> Format.fprintf fmt "run %s" (Signature.name s)
  | Hw s -> Format.fprintf fmt "hw %s" (Signature.name s)

let to_dot t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph awg {\n  rankdir=TB;\n  node [fontsize=10];\n";
  let edges = Buffer.create 1024 in
  let next_id = ref 0 in
  let escape s =
    String.concat ""
      (List.map
         (fun c ->
           match c with '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
         (List.init (String.length s) (String.get s)))
  in
  let rec emit n =
    let id = Printf.sprintf "n%d" !next_id in
    incr next_id;
    let label, shape, color =
      match n.status with
      | Waiting { wait_sig; unwait_sig } ->
        ( Printf.sprintf "wait %s\\nunwait %s"
            (escape (Signature.name wait_sig))
            (escape (Signature.name unwait_sig)),
          "box",
          "lightblue" )
      | Running s -> (Printf.sprintf "run %s" (escape (Signature.name s)), "ellipse", "palegreen")
      | Hw s -> (Printf.sprintf "hw %s" (escape (Signature.name s)), "hexagon", "lightsalmon")
    in
    Buffer.add_string buf
      (Printf.sprintf
         "  %s [label=\"%s\\nC=%s N=%d\", shape=%s, style=filled, fillcolor=%s];\n"
         id label
         (Dputil.Time.to_string n.cost)
         n.count shape color);
    Array.iter
      (fun c ->
        let cid = emit c in
        Buffer.add_string edges (Printf.sprintf "  %s -> %s;\n" id cid))
      (sorted_children n);
    id
  in
  List.iter (fun n -> ignore (emit n)) (roots t);
  Buffer.add_buffer buf edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let render t =
  let buf = Buffer.create 1024 in
  let rec go indent n =
    Buffer.add_string buf
      (Format.asprintf "%s%a  C=%a N=%d max=%a\n" indent status_pp n.status
         Dputil.Time.pp n.cost n.count Dputil.Time.pp n.max_cost);
    Array.iter (go (indent ^ "  ")) (sorted_children n)
  in
  List.iter (go "") (roots t);
  Buffer.contents buf

module Partial = struct
  module Wire = Dptrace.Codec_binary.Wire

  let corrupt fmt =
    Format.kasprintf (fun m -> raise (Dptrace.Codec_binary.Corrupt m)) fmt

  (* An unreduced, unfrozen forest: the contribution of one stream's
     graphs to a scenario class's AWG. Reduction cannot run per stream —
     whether a root is prunable depends on the children the *merged*
     forest gives it — so partials stay raw and [merge_all] reduces once
     at the end, which provably matches reducing a monolithic build (the
     pruning rule only inspects the final forest). *)
  type partial = (status, node) Hashtbl.t

  let build components graphs =
    let forest : partial = Hashtbl.create 16 in
    if Provenance.enabled () then
      List.iter
        (fun (g : Wait_graph.t) ->
          let src =
            Provenance.ref_of g.Wait_graph.stream g.Wait_graph.instance
          in
          List.iter (merge_into ~src forest) (convert components g))
        graphs
    else
      List.iter
        (fun g -> List.iter (merge_into forest) (convert components g))
        graphs;
    forest

  let is_empty (p : partial) = Hashtbl.length p = 0

  (* Merging never adopts a source node: partials must stay intact (the
     snapshot cache serialises them after merging), so targets are always
     fresh and sources only read. All accumulation is commutative —
     integer sums, max, exact witness-accumulator union — which is why
     per-stream partials merged here in corpus order equal the
     single-pass [build] over the same graphs. *)
  let rec absorb ~into:(n : node) (src : node) =
    n.cost <- n.cost + src.cost;
    n.count <- n.count + src.count;
    if src.max_cost > n.max_cost then n.max_cost <- src.max_cost;
    (match src.wacc with
    | Some a -> Provenance.Wacc.merge_into ~into:(node_wacc n) a
    | None -> ());
    Hashtbl.iter
      (fun status c ->
        let tgt =
          match Hashtbl.find_opt n.children status with
          | Some t -> t
          | None ->
            let t = fresh_node status in
            Hashtbl.replace n.children status t;
            t
        in
        absorb ~into:tgt c)
      src.children

  let merge_all ?(reduce = true) partials =
    let forest : (status, node) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun p ->
        Hashtbl.iter
          (fun status root ->
            let tgt =
              match Hashtbl.find_opt forest status with
              | Some t -> t
              | None ->
                let t = fresh_node status in
                Hashtbl.replace forest status t;
                t
            in
            absorb ~into:tgt root)
          p)
      partials;
    finish ~reduce forest

  (* --- wire form (inside snapshot-cache frames) ---

     Statuses carry signature *names* (interning is process-local), all
     numbers are LEB128 varints, children are written in sorted-status
     order so the byte form of a partial is a pure function of its
     content. Witness entries are the exact accumulator's, so a reloaded
     partial merges bit-identically to a fresh one. *)

  let write_status buf = function
    | Waiting { wait_sig; unwait_sig } ->
      Wire.w8 buf 0;
      Wire.wstr buf (Signature.name wait_sig);
      Wire.wstr buf (Signature.name unwait_sig)
    | Running s ->
      Wire.w8 buf 1;
      Wire.wstr buf (Signature.name s)
    | Hw s ->
      Wire.w8 buf 2;
      Wire.wstr buf (Signature.name s)

  let read_status cur =
    match Wire.r8 cur with
    | 0 ->
      let wait_sig = Signature.of_string (Wire.rstr cur) in
      let unwait_sig = Signature.of_string (Wire.rstr cur) in
      Waiting { wait_sig; unwait_sig }
    | 1 -> Running (Signature.of_string (Wire.rstr cur))
    | 2 -> Hw (Signature.of_string (Wire.rstr cur))
    | k -> corrupt "Awg.Partial: unknown status tag %d" k

  let write_ref buf (r : Provenance.instance_ref) =
    Wire.wv buf r.Provenance.stream_id;
    Wire.wstr buf r.Provenance.scenario;
    Wire.wv buf r.Provenance.tid;
    Wire.wv buf r.Provenance.t0;
    Wire.wv buf r.Provenance.t1

  let read_ref cur : Provenance.instance_ref =
    let stream_id = Wire.rv cur in
    let scenario = Wire.rstr cur in
    let tid = Wire.rv cur in
    let t0 = Wire.rv cur in
    let t1 = Wire.rv cur in
    { Provenance.stream_id; scenario; tid; t0; t1 }

  let rec write_node buf n =
    write_status buf n.status;
    Wire.wv buf n.cost;
    Wire.wv buf n.count;
    Wire.wv buf n.max_cost;
    let wentries =
      match n.wacc with Some a -> Provenance.Wacc.entries a | None -> []
    in
    Wire.wv buf (List.length wentries);
    List.iter
      (fun (r, cost, count) ->
        write_ref buf r;
        Wire.wv buf cost;
        Wire.wv buf count)
      wentries;
    let kids = sorted_bindings n.children in
    Wire.wv buf (List.length kids);
    List.iter (fun (_, c) -> write_node buf c) kids

  let rec read_node cur =
    let status = read_status cur in
    let n = fresh_node status in
    n.cost <- Wire.rv cur;
    n.count <- Wire.rv cur;
    n.max_cost <- Wire.rv cur;
    let nw = Wire.rv cur in
    if nw > 0 then begin
      let acc = node_wacc n in
      for _ = 1 to nw do
        let r = read_ref cur in
        let cost = Wire.rv cur in
        let count = Wire.rv cur in
        Provenance.Wacc.add_entry acc (r, cost, count)
      done
    end;
    let nkids = Wire.rv cur in
    for _ = 1 to nkids do
      let c = read_node cur in
      if Hashtbl.mem n.children c.status then
        corrupt "Awg.Partial: duplicate child status";
      Hashtbl.replace n.children c.status c
    done;
    n

  let write buf (p : partial) =
    let roots = sorted_bindings p in
    Wire.wv buf (List.length roots);
    List.iter (fun (_, n) -> write_node buf n) roots

  let read cur : partial =
    let forest : partial = Hashtbl.create 16 in
    let nroots = Wire.rv cur in
    for _ = 1 to nroots do
      let n = read_node cur in
      if Hashtbl.mem forest n.status then
        corrupt "Awg.Partial: duplicate root status";
      Hashtbl.replace forest n.status n
    done;
    forest
end
