(** Wait Graphs (Definition 1, after StackMine).

    The Wait Graph of a scenario instance models who the instance spent its
    time waiting on. Roots are the events of the initiating thread inside
    the instance window. Every wait event is paired with the unwait event
    that ended it; its children are the events the waking thread triggered
    during the wait interval — including that thread's own waits, expanded
    recursively, which is how multi-hop cost-propagation chains (lock →
    lock → hardware) become visible as paths.

    Graphs over the same stream share event identities: the same wait event
    reached from two instances is the same [Dptrace.Event.t] (same id),
    which is what the distinct-wait deduplication of the impact analysis
    counts on. Within one graph, nodes are memoised per event, so the
    structure is a DAG; traversals visit each node once. *)

type node = {
  event : Dptrace.Event.t;
  waker : Dptrace.Event.t option;
      (** For wait nodes: the pairing unwait. [None] for non-wait nodes and
          for waits whose pairing was lost (truncated trace). *)
  children : node list;
      (** For wait nodes: the waking thread's events during the wait
          interval, time-ordered. Unwait events are never children; the
          pairing unwait is carried in [waker]. *)
}

type t = {
  stream : Dptrace.Stream.t;
  instance : Dptrace.Scenario.instance;
  roots : node list;
}

val build : ?index:Dptrace.Stream.index -> Dptrace.Stream.t -> Dptrace.Scenario.instance -> t
(** Construct the Wait Graph of one instance. Pass [index] to share the
    stream index across the many instances of one stream. Expansion is
    bounded (depth 128) and cycle-guarded, so it is total on any input. *)

val iter_nodes : t -> (node -> unit) -> unit
(** Visit every distinct node exactly once (preorder from the roots). *)

val fold_nodes : t -> init:'a -> f:('a -> node -> 'a) -> 'a

val node_count : t -> int

val wait_time : t -> Dputil.Time.t
(** Σ cost of distinct wait nodes in the graph. *)

val running_time : t -> Dputil.Time.t
(** Σ cost of distinct running nodes in the graph. *)

val depth : t -> int
(** Longest root-to-leaf path length (0 for an empty graph). *)

val pp : Format.formatter -> t -> unit
(** Indented ASCII rendering (thread names, costs, top frames); used by the
    examples to render Figure-1-style snapshots. *)

val to_dot : t -> string
(** Graphviz rendering: one node per distinct event (labelled with thread,
    kind, top frame and cost), wait→child edges, dashed unwait edges.
    Render with [dot -Tsvg]. *)
