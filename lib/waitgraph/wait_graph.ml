module Event = Dptrace.Event
module Stream = Dptrace.Stream

type node = {
  event : Event.t;
  waker : Event.t option;
  children : node list;
}

type t = {
  stream : Stream.t;
  instance : Dptrace.Scenario.instance;
  roots : node list;
}

let max_depth = 128

let build ?index stream (instance : Dptrace.Scenario.instance) =
  let idx = match index with Some i -> i | None -> Stream.index stream in
  let memo : (int, node) Hashtbl.t = Hashtbl.create 64 in
  let building : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let rec node_of depth (e : Event.t) =
    match Hashtbl.find_opt memo e.id with
    | Some n -> n
    | None ->
      if Hashtbl.mem building e.id || depth > max_depth then
        (* Back edge or runaway chain: cut here with a childless view. *)
        { event = e; waker = None; children = [] }
      else begin
        Hashtbl.replace building e.id ();
        let n =
          if Event.is_wait e then expand_wait depth e
          else { event = e; waker = None; children = [] }
        in
        Hashtbl.remove building e.id;
        Hashtbl.replace memo e.id n;
        n
      end
  and expand_wait depth (w : Event.t) =
    match Stream.find_waker idx w with
    | None -> { event = w; waker = None; children = [] }
    | Some u ->
      let window =
        Stream.thread_events_overlapping idx ~tid:u.Event.tid ~from_ts:w.ts
          ~to_ts:u.Event.ts
      in
      let children =
        window
        |> List.filter (fun (e : Event.t) ->
               (not (Event.is_unwait e)) && e.ts < u.Event.ts)
        |> List.map (node_of (depth + 1))
      in
      { event = w; waker = Some u; children }
  in
  let roots =
    Stream.thread_events_overlapping idx ~tid:instance.tid ~from_ts:instance.t0
      ~to_ts:instance.t1
    |> List.filter (fun (e : Event.t) -> not (Event.is_unwait e))
    |> List.map (node_of 0)
  in
  { stream; instance; roots }

let iter_nodes t f =
  let seen : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let rec go n =
    if not (Hashtbl.mem seen n.event.Event.id) then begin
      Hashtbl.replace seen n.event.Event.id ();
      f n;
      List.iter go n.children
    end
  in
  List.iter go t.roots

let fold_nodes t ~init ~f =
  let acc = ref init in
  iter_nodes t (fun n -> acc := f !acc n);
  !acc

let node_count t = fold_nodes t ~init:0 ~f:(fun acc _ -> acc + 1)

let wait_time t =
  fold_nodes t ~init:0 ~f:(fun acc n ->
      if Event.is_wait n.event then acc + n.event.Event.cost else acc)

let running_time t =
  fold_nodes t ~init:0 ~f:(fun acc n ->
      if Event.is_running n.event then acc + n.event.Event.cost else acc)

let depth t =
  let memo : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let rec go n =
    match Hashtbl.find_opt memo n.event.Event.id with
    | Some d -> d
    | None ->
      (* Seed with 1 so revisits along a cycle-cut path terminate. *)
      Hashtbl.replace memo n.event.Event.id 1;
      let d =
        1 + List.fold_left (fun acc c -> max acc (go c)) 0 n.children
      in
      Hashtbl.replace memo n.event.Event.id d;
      d
  in
  List.fold_left (fun acc n -> max acc (go n)) 0 t.roots

let dot_escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '"' -> "\\\""
         | '\\' -> "\\\\"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let to_dot t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "digraph wait_graph {\n  rankdir=TB;\n  node [fontsize=10];\n";
  let node_id (e : Event.t) = Printf.sprintf "e%d" e.Event.id in
  let edges = Buffer.create 1024 in
  iter_nodes t (fun n ->
      let e = n.event in
      let top =
        match Dptrace.Callstack.top e.Event.stack with
        | Some s -> Dptrace.Signature.name s
        | None -> "<empty>"
      in
      let unwaiter =
        match n.waker with
        | Some u when Event.is_wait e ->
          Printf.sprintf "\\nunwait by %s"
            (dot_escape (Stream.thread_name t.stream u.Event.tid))
        | _ -> ""
      in
      let shape, color =
        match e.Event.kind with
        | Event.Wait -> ("box", "lightblue")
        | Event.Running -> ("ellipse", "palegreen")
        | Event.Hw_service -> ("hexagon", "lightsalmon")
        | Event.Unwait -> ("diamond", "white")
      in
      Buffer.add_string buf
        (Printf.sprintf
           "  %s [label=\"%s\\n%s %s\\n%s%s\", shape=%s, style=filled, \
            fillcolor=%s];\n"
           (node_id e)
           (dot_escape (Stream.thread_name t.stream e.Event.tid))
           (Event.kind_to_string e.Event.kind)
           (Dputil.Time.to_string e.Event.cost)
           (dot_escape top) unwaiter shape color);
      List.iter
        (fun c ->
          Buffer.add_string edges
            (Printf.sprintf "  %s -> %s;\n" (node_id e) (node_id c.event)))
        n.children);
  Buffer.add_buffer buf edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp fmt t =
  let rec render indent n =
    let e = n.event in
    let top =
      match Dptrace.Callstack.top e.Event.stack with
      | Some s -> Dptrace.Signature.name s
      | None -> "<empty>"
    in
    Format.fprintf fmt "%s%s %s cost=%a [%s]@," indent
      (Event.kind_to_string e.Event.kind)
      (Stream.thread_name t.stream e.Event.tid)
      Dputil.Time.pp e.Event.cost top;
    (match n.waker with
    | Some u ->
      Format.fprintf fmt "%s  (unwaited by %s via %s)@," indent
        (Stream.thread_name t.stream u.Event.tid)
        (match Dptrace.Callstack.top u.Event.stack with
        | Some s -> Dptrace.Signature.name s
        | None -> "<empty>")
    | None -> ());
    List.iter (render (indent ^ "  ")) n.children
  in
  Format.fprintf fmt "@[<v>wait graph of %a@," Dptrace.Scenario.pp_instance
    t.instance;
  List.iter (render "") t.roots;
  Format.fprintf fmt "@]"
