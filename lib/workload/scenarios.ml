module P = Dpsim.Program
module M = Motifs
module Time = Dputil.Time
module Prng = Dputil.Prng
module Signature = Dptrace.Signature

type profile = Light | Heavy

type template = {
  spec : Dptrace.Scenario.spec;
  entry : Signature.t;
  thread_name : string;
  heavy_prob : float;
  concurrency : int * int;
  program : Motifs.ctx -> profile -> P.step list;
}

let spec name tfast_ms tslow_ms =
  Dptrace.Scenario.spec ~name ~tfast:(Time.ms tfast_ms) ~tslow:(Time.ms tslow_ms)

let maybe (ctx : M.ctx) p steps = if Prng.chance ctx.prng p then steps () else []

let pick (ctx : M.ctx) weighted = (Prng.choose_weighted ctx.prng weighted) ()

let think ctx lo hi = [ P.compute (M.ms_in ctx lo hi) ]

(* Calibration notes. The paper's corpus-wide regime is: distinct driver
   waits ≈ 10 % of scenario time, counted ≈ 3.5× each through cost
   propagation (IA_wait ≈ 36 %, IA_opt ≈ 26 %), driver CPU ≈ 1.6 %.
   Programs therefore spend most of their duration in application compute;
   driver operations are short, and the long driver stalls that do occur
   sit behind application-level queues where several queued instances
   observe (and are charged with) the same wait. *)

(* --- The 8 named scenarios (Table 1) --- *)

let app_access_control =
  {
    spec = spec "AppAccessControl" 200 400;
    entry = Signature.of_string "App!AccessCheck";
    thread_name = "App.AccessCheck";
    heavy_prob = 0.65;
    concurrency = (5, 10);
    program =
      (fun ctx profile ->
        match profile with
        | Light ->
          P.seq
            [
              M.policy_check ctx;
              maybe ctx 0.35 (fun () ->
                  M.av_serialized ctx ~dur:(M.service_ms ctx ~median:18.0));
              think ctx 20.0 80.0;
            ]
        | Heavy ->
          P.seq
            [
              think ctx 25.0 60.0;
              M.av_serialized ctx ~dur:(M.service_ms ctx ~median:40.0);
              think ctx 30.0 70.0;
              M.av_serialized ctx ~dur:(M.service_ms ctx ~median:30.0);
              maybe ctx 0.15 (fun () -> M.cache_lookup ctx);
              think ctx 40.0 110.0;
            ]);
  }

let app_non_responsive =
  {
    spec = spec "AppNonResponsive" 1000 2000;
    entry = Signature.of_string "App!MessagePump";
    thread_name = "App.Main";
    heavy_prob = 0.78;
    concurrency = (3, 5);
    program =
      (fun ctx profile ->
        match profile with
        | Light ->
          P.seq
            [
              think ctx 200.0 500.0;
              M.cache_lookup ctx;
              maybe ctx 0.25 (fun () ->
                  M.av_serialized ctx ~dur:(M.service_ms ctx ~median:70.0));
              think ctx 150.0 350.0;
            ]
        | Heavy ->
          let main =
            pick ctx
              [
                ( 0.15,
                  fun () -> M.hard_fault_page_read ctx ~dur:(M.ms_in ctx 700.0 2600.0) );
                (0.35, fun () -> M.av_serialized ctx ~dur:(M.ms_in ctx 300.0 1000.0));
                ( 0.20,
                  fun () ->
                    M.app_serialized ctx
                      (M.file_table_chain ctx
                         ~inner:
                           (M.mdu_read ctx ~dur:(M.ms_in ctx 250.0 800.0) ~encrypted:true))
                );
                (0.10, fun () -> M.guarded_disk_read ctx ~dur:(M.ms_in ctx 120.0 350.0));
                (0.05, fun () -> M.av_serialized ctx ~dur:(M.ms_in ctx 250.0 700.0));
                (0.10, fun () -> M.net_fetch_shared ctx ~dur:(M.ms_in ctx 300.0 1000.0));
                (0.05, fun () -> M.acpi_transition ctx);
              ]
          in
          P.seq
            [
              think ctx 60.0 150.0;
              main;
              maybe ctx 0.4 (fun () ->
                  M.av_serialized ctx ~dur:(M.service_ms ctx ~median:250.0));
              think ctx 350.0 800.0;
            ]);
  }

let browser_frame_create =
  {
    spec = spec "BrowserFrameCreate" 250 450;
    entry = Signature.of_string "Browser!FrameCreate";
    thread_name = "Browser.Frame";
    heavy_prob = 0.68;
    concurrency = (5, 10);
    program =
      (fun ctx profile ->
        match profile with
        | Light ->
          P.seq [ think ctx 40.0 110.0; M.cached_file_open ctx; think ctx 50.0 120.0 ]
        | Heavy ->
          P.seq
            [
              think ctx 15.0 40.0;
              M.app_serialized ctx
                (P.seq
                   [
                     maybe ctx 0.4 (fun () ->
                         M.av_serialized ctx ~dur:(M.ms_in ctx 30.0 120.0));
                     M.file_table_chain ctx
                       ~inner:
                         (M.mdu_read ctx
                            ~dur:(M.service_ms ctx ~median:95.0)
                            ~encrypted:(Prng.chance ctx.M.prng 0.4));
                   ]);
              maybe ctx 0.25 (fun () -> M.guarded_disk_read ctx ~dur:(M.ms_in ctx 30.0 110.0));
              maybe ctx 0.25 (fun () -> M.net_fetch_shared ctx ~dur:(M.ms_in ctx 40.0 130.0));
              think ctx 90.0 220.0;
            ]);
  }

let browser_tab_close =
  {
    spec = spec "BrowserTabClose" 150 300;
    entry = Signature.of_string "Browser!TabClose";
    thread_name = "Browser.TabClose";
    heavy_prob = 0.74;
    concurrency = (5, 10);
    program =
      (fun ctx profile ->
        match profile with
        | Light -> P.seq [ think ctx 25.0 70.0; M.cache_lookup ctx; think ctx 25.0 70.0 ]
        | Heavy ->
          P.seq
            [
              think ctx 25.0 60.0;
              M.app_serialized ctx
                (P.seq
                   [
                     M.backup_copy_on_write ctx ~dur:(M.service_ms ctx ~median:95.0);
                     maybe ctx 0.6 (fun () ->
                         M.file_table_chain ctx
                           ~inner:
                             (M.mdu_write ctx
                                ~dur:(M.service_ms ctx ~median:45.0)
                                ~encrypted:true));
                   ]);
              maybe ctx 0.35 (fun () -> M.av_serialized ctx ~dur:(M.ms_in ctx 25.0 100.0));
              think ctx 30.0 80.0;
            ]);
  }

let browser_tab_create =
  {
    spec = spec "BrowserTabCreate" 300 500;
    entry = Signature.of_string "Browser!TabCreate";
    thread_name = "Browser.UI";
    heavy_prob = 0.72;
    concurrency = (7, 13);
    program =
      (fun ctx profile ->
        match profile with
        | Light ->
          P.seq
            [
              think ctx 50.0 110.0;
              M.cached_file_open ctx;
              maybe ctx 0.4 (fun () -> M.net_fetch_shared ctx ~dur:(M.ms_in ctx 10.0 40.0));
              think ctx 60.0 140.0;
            ]
        | Heavy ->
          P.seq
            [
              think ctx 15.0 40.0;
              M.app_serialized ctx
                (P.seq
                   [
                     maybe ctx 0.5 (fun () ->
                         M.av_serialized ctx ~dur:(M.ms_in ctx 25.0 90.0));
                     M.file_table_chain ctx
                       ~inner:
                         (M.mdu_read ctx
                            ~dur:(M.service_ms ctx ~median:95.0)
                            ~encrypted:(Prng.chance ctx.M.prng 0.6));
                   ]);
              think ctx 15.0 45.0;
              M.app_serialized ctx
                (P.seq
                   [
                     M.file_table_chain ctx
                       ~inner:
                         (M.mdu_read ctx
                            ~dur:(M.service_ms ctx ~median:75.0)
                            ~encrypted:(Prng.chance ctx.M.prng 0.5));
                     maybe ctx 0.5 (fun () ->
                         M.net_fetch_shared ctx ~dur:(M.ms_in ctx 30.0 120.0));
                   ]);
              maybe ctx 0.2 (fun () -> M.gpu_render ctx ~dur:(M.ms_in ctx 15.0 60.0));
              maybe ctx 0.15 (fun () -> M.mouse_input ctx);
              think ctx 120.0 240.0;
            ]);
  }

let browser_tab_switch =
  {
    spec = spec "BrowserTabSwitch" 100 250;
    entry = Signature.of_string "Browser!TabSwitch";
    thread_name = "Browser.UI";
    heavy_prob = 0.55;
    concurrency = (5, 10);
    program =
      (fun ctx profile ->
        match profile with
        | Light ->
          P.seq
            [
              think ctx 8.0 22.0;
              M.cache_lookup ctx;
              maybe ctx 0.5 (fun () -> M.direct_gpu_wait ctx ~dur:(M.ms_in ctx 3.0 14.0));
              think ctx 8.0 24.0;
            ]
        | Heavy ->
          P.seq
            [
              think ctx 20.0 50.0;
              (* Large direct-hardware share: the paper reports 66.6 % of
                 TabSwitch driver cost as non-optimisable. *)
              M.direct_gpu_wait ctx ~dur:(M.ms_in ctx 55.0 180.0);
              maybe ctx 0.7 (fun () -> M.direct_disk_read ctx ~dur:(M.ms_in ctx 35.0 130.0));
              maybe ctx 0.55 (fun () -> M.gpu_render ctx ~dur:(M.ms_in ctx 20.0 70.0));
              maybe ctx 0.5 (fun () ->
                  M.app_serialized ctx
                    (M.file_table_chain ctx
                       ~inner:
                         (M.mdu_read ctx ~dur:(M.service_ms ctx ~median:35.0)
                            ~encrypted:(Prng.chance ctx.M.prng 0.3))));
              maybe ctx 0.3 (fun () -> M.net_fetch_shared ctx ~dur:(M.ms_in ctx 20.0 80.0));
              think ctx 25.0 60.0;
            ]);
  }

let menu_display =
  {
    spec = spec "MenuDisplay" 150 350;
    entry = Signature.of_string "App!MenuDisplay";
    thread_name = "App.Menu";
    heavy_prob = 0.72;
    concurrency = (4, 8);
    program =
      (fun ctx profile ->
        match profile with
        | Light ->
          P.seq
            [
              think ctx 20.0 60.0;
              M.cache_lookup ctx;
              maybe ctx 0.4 (fun () -> M.net_fetch_shared ctx ~dur:(M.ms_in ctx 12.0 45.0));
              think ctx 20.0 70.0;
            ]
        | Heavy ->
          P.seq
            [
              think ctx 20.0 50.0;
              M.dns_resolve ctx;
              M.net_fetch_shared ctx ~dur:(M.service_ms ctx ~median:140.0);
              maybe ctx 0.6 (fun () -> M.net_fetch_shared ctx ~dur:(M.ms_in ctx 30.0 110.0));
              maybe ctx 0.35 (fun () -> M.net_fetch_shared ctx ~dur:(M.ms_in ctx 25.0 90.0));
              maybe ctx 0.3 (fun () -> M.guarded_disk_read ctx ~dur:(M.ms_in ctx 20.0 80.0));
              maybe ctx 0.15 (fun () ->
                  M.app_serialized ctx
                    (M.file_table_chain ctx
                       ~inner:
                         (M.mdu_read ctx ~dur:(M.service_ms ctx ~median:25.0) ~encrypted:false)));
              think ctx 25.0 70.0;
            ]);
  }

let web_page_navigation =
  {
    spec = spec "WebPageNavigation" 500 1000;
    entry = Signature.of_string "Browser!Navigate";
    thread_name = "Browser.Nav";
    heavy_prob = 0.34;
    concurrency = (7, 13);
    program =
      (fun ctx profile ->
        match profile with
        | Light ->
          P.seq
            [
              think ctx 15.0 40.0;
              M.net_fetch_shared ctx ~dur:(M.ms_in ctx 10.0 45.0);
              maybe ctx 0.12 (fun () ->
                  M.app_serialized ctx
                    (M.file_table_chain ctx
                       ~inner:(M.mdu_read ctx ~dur:(M.service_ms ctx ~median:18.0) ~encrypted:false)));
              think ctx 50.0 120.0;
              M.cache_lookup ctx;
            ]
        | Heavy ->
          P.seq
            [
              think ctx 20.0 50.0;
              M.dns_resolve ctx;
              M.app_serialized ctx
                (P.seq
                   [
                     M.net_fetch_shared ctx ~dur:(M.service_ms ctx ~median:220.0);
                     maybe ctx 0.5 (fun () ->
                         M.file_table_chain ctx
                           ~inner:
                             (M.mdu_read ctx ~dur:(M.service_ms ctx ~median:100.0)
                                ~encrypted:(Prng.chance ctx.M.prng 0.4)));
                   ]);
              think ctx 30.0 80.0;
              M.app_serialized ctx
                (M.net_fetch_shared ctx ~dur:(M.service_ms ctx ~median:160.0));
              maybe ctx 0.4 (fun () -> M.av_serialized ctx ~dur:(M.ms_in ctx 40.0 170.0));
              maybe ctx 0.25 (fun () -> M.guarded_disk_read ctx ~dur:(M.ms_in ctx 25.0 90.0));
              think ctx 220.0 480.0;
            ]);
  }

let named =
  [
    app_access_control;
    app_non_responsive;
    browser_frame_create;
    browser_tab_close;
    browser_tab_create;
    browser_tab_switch;
    menu_display;
    web_page_navigation;
  ]

(* --- Background scenarios --- *)

let av_scheduled_scan =
  {
    spec = spec "AvScheduledScan" 500 1500;
    entry = Signature.of_string "AntiVirus!ScheduledScan";
    thread_name = "AV.Worker";
    heavy_prob = 0.8;
    concurrency = (1, 2);
    program =
      (fun ctx profile ->
        let files =
          match profile with Light -> 1 | Heavy -> Prng.int_in ctx.M.prng 2 3
        in
        let scan _ =
          P.seq
            [
              M.av_serialized ctx ~dur:(M.service_ms ctx ~median:110.0);
              think ctx 60.0 150.0;
            ]
        in
        P.seq (think ctx 40.0 100.0 :: List.init files scan));
  }

let cfg_refresh =
  {
    spec = spec "CfgRefresh" 200 600;
    entry = Signature.of_string "ConfigMgr!Refresh";
    thread_name = "CM.Worker";
    heavy_prob = 0.7;
    concurrency = (1, 2);
    program =
      (fun ctx profile ->
        match profile with
        | Light -> P.seq [ think ctx 40.0 110.0; M.cache_lookup ctx ]
        | Heavy ->
          P.seq
            [
              think ctx 30.0 80.0;
              M.mdu_read ctx
                ~dur:(M.service_ms ctx ~median:110.0)
                ~encrypted:(Prng.chance ctx.M.prng 0.4);
              maybe ctx 0.5 (fun () -> M.av_serialized ctx ~dur:(M.service_ms ctx ~median:60.0));
              think ctx 40.0 100.0;
            ]);
  }

let motion_guard =
  {
    spec = spec "SystemMotionGuard" 100 400;
    entry = Signature.of_string "System!MotionSensor";
    thread_name = "Sys.MotionGuard";
    heavy_prob = 0.85;
    concurrency = (1, 1);
    program =
      (fun ctx profile ->
        match profile with
        | Light -> M.disk_protection_halt ctx ~dur:(M.ms_in ctx 20.0 80.0)
        | Heavy -> M.disk_protection_halt ctx ~dur:(M.ms_in ctx 100.0 350.0));
  }

let file_open =
  {
    spec = spec "FileOpen" 100 250;
    entry = Signature.of_string "App!FileOpen";
    thread_name = "App.FileOpen";
    heavy_prob = 0.45;
    concurrency = (5, 8);
    program =
      (fun ctx profile ->
        match profile with
        | Light -> P.seq [ M.cached_file_open ctx; think ctx 25.0 70.0 ]
        | Heavy ->
          P.seq
            [
              think ctx 15.0 40.0;
              M.app_serialized ctx
                (M.file_table_chain ctx
                   ~inner:
                     (M.mdu_read ctx ~dur:(M.service_ms ctx ~median:40.0) ~encrypted:false));
              maybe ctx 0.5 (fun () -> M.av_serialized ctx ~dur:(M.ms_in ctx 20.0 90.0));
              think ctx 20.0 50.0;
            ]);
  }

let file_save =
  {
    spec = spec "FileSave" 150 400;
    entry = Signature.of_string "App!FileSave";
    thread_name = "App.FileSave";
    heavy_prob = 0.5;
    concurrency = (4, 7);
    program =
      (fun ctx profile ->
        match profile with
        | Light -> P.seq [ think ctx 30.0 80.0; M.cache_lookup ctx; think ctx 20.0 60.0 ]
        | Heavy ->
          P.seq
            [
              think ctx 25.0 60.0;
              M.app_serialized ctx
                (M.mdu_write ctx
                   ~dur:(M.service_ms ctx ~median:60.0)
                   ~encrypted:(Prng.chance ctx.M.prng 0.6));
              maybe ctx 0.3 (fun () ->
                  M.backup_copy_on_write ctx ~dur:(M.service_ms ctx ~median:40.0));
              think ctx 30.0 80.0;
            ]);
  }

let app_launch =
  {
    spec = spec "AppLaunch" 400 900;
    entry = Signature.of_string "Shell!LaunchApp";
    thread_name = "Shell.Launch";
    heavy_prob = 0.5;
    concurrency = (2, 4);
    program =
      (fun ctx profile ->
        match profile with
        | Light ->
          P.seq
            [
              think ctx 120.0 260.0;
              M.app_serialized ctx (M.disk_read ctx ~dur:(M.service_ms ctx ~median:40.0));
              think ctx 100.0 220.0;
            ]
        | Heavy ->
          P.seq
            [
              think ctx 100.0 220.0;
              M.app_serialized ctx (M.disk_read ctx ~dur:(M.service_ms ctx ~median:90.0));
              M.av_serialized ctx ~dur:(M.ms_in ctx 60.0 220.0);
              maybe ctx 0.4 (fun () -> M.net_fetch_shared ctx ~dur:(M.ms_in ctx 40.0 160.0));
              think ctx 150.0 320.0;
            ]);
  }

let document_load =
  {
    spec = spec "DocumentLoad" 300 700;
    entry = Signature.of_string "App!DocumentLoad";
    thread_name = "App.DocLoad";
    heavy_prob = 0.5;
    concurrency = (4, 7);
    program =
      (fun ctx profile ->
        match profile with
        | Light ->
          P.seq
            [
              think ctx 80.0 180.0;
              M.app_serialized ctx (M.disk_read ctx ~dur:(M.service_ms ctx ~median:35.0));
              think ctx 70.0 160.0;
            ]
        | Heavy ->
          P.seq
            [
              think ctx 70.0 160.0;
              M.app_serialized ctx
                (M.file_table_chain ctx
                   ~inner:
                     (M.mdu_read ctx ~dur:(M.service_ms ctx ~median:100.0) ~encrypted:true));
              maybe ctx 0.3 (fun () -> M.direct_disk_read ctx ~dur:(M.ms_in ctx 25.0 90.0));
              think ctx 90.0 200.0;
            ]);
  }

let search_query =
  {
    spec = spec "SearchQuery" 200 500;
    entry = Signature.of_string "App!SearchQuery";
    thread_name = "App.Search";
    heavy_prob = 0.45;
    concurrency = (3, 5);
    program =
      (fun ctx profile ->
        match profile with
        | Light -> P.seq [ think ctx 50.0 120.0; M.cache_lookup ctx; think ctx 30.0 80.0 ]
        | Heavy ->
          P.seq
            [
              think ctx 40.0 100.0;
              M.net_fetch_shared ctx ~dur:(M.ms_in ctx 90.0 320.0);
              maybe ctx 0.4 (fun () -> M.cache_lookup ctx);
              think ctx 50.0 120.0;
            ]);
  }

let video_playback =
  {
    spec = spec "VideoPlayback" 2000 4000;
    entry = Signature.of_string "Player!RenderLoop";
    thread_name = "Player.Render";
    heavy_prob = 0.25;
    concurrency = (1, 2);
    program =
      (fun ctx profile ->
        match profile with
        | Light ->
          P.seq
            [
              think ctx 500.0 1100.0;
              maybe ctx 0.5 (fun () -> M.direct_gpu_wait ctx ~dur:(M.ms_in ctx 5.0 20.0));
              think ctx 500.0 1000.0;
            ]
        | Heavy ->
          P.seq
            [
              think ctx 700.0 1400.0;
              M.app_serialized ctx (M.disk_read ctx ~dur:(M.service_ms ctx ~median:60.0));
              maybe ctx 0.5 (fun () -> M.direct_gpu_wait ctx ~dur:(M.ms_in ctx 10.0 40.0));
              think ctx 900.0 1800.0;
            ]);
  }

let text_editing =
  {
    spec = spec "TextEditing" 1000 2500;
    entry = Signature.of_string "Editor!KeystrokeBatch";
    thread_name = "Editor.Main";
    heavy_prob = 0.3;
    concurrency = (1, 3);
    program =
      (fun ctx profile ->
        match profile with
        | Light ->
          P.seq
            [
              think ctx 300.0 700.0;
              M.cache_lookup ctx;
              think ctx 250.0 600.0;
            ]
        | Heavy ->
          P.seq
            [
              think ctx 350.0 700.0;
              M.app_serialized ctx
                (M.mdu_write ctx
                   ~dur:(M.service_ms ctx ~median:40.0)
                   ~encrypted:(Prng.chance ctx.M.prng 0.3));
              think ctx 400.0 900.0;
            ]);
  }

let background =
  [
    av_scheduled_scan;
    cfg_refresh;
    motion_guard;
    file_open;
    file_save;
    app_launch;
    document_load;
    search_query;
    video_playback;
    text_editing;
  ]

let all = named @ background

let find name =
  List.find_opt (fun t -> t.spec.Dptrace.Scenario.name = name) all

let all_specs = List.map (fun t -> t.spec) all
