module Signature = Dptrace.Signature

type driver_type =
  | File_system
  | Fs_filter
  | Network
  | Storage_encryption
  | Disk_protection
  | Graphics
  | Storage_backup
  | Io_cache
  | Mouse
  | Acpi

let all_types =
  [
    File_system;
    Fs_filter;
    Network;
    Storage_encryption;
    Disk_protection;
    Graphics;
    Storage_backup;
    Io_cache;
    Mouse;
    Acpi;
  ]

let type_name = function
  | File_system -> "FileSystem/Storage"
  | Fs_filter -> "FileSystem Filter"
  | Network -> "Network"
  | Storage_encryption -> "Storage Encryption"
  | Disk_protection -> "Disk Protection"
  | Graphics -> "Graphics"
  | Storage_backup -> "Storage Backup"
  | Io_cache -> "IO Cache"
  | Mouse -> "Mouse"
  | Acpi -> "ACPI"

let modules =
  [
    ("fs.sys", File_system);
    ("stor.sys", File_system);
    ("fv.sys", Fs_filter);
    ("av.sys", Fs_filter);
    ("net.sys", Network);
    ("tcpip.sys", Network);
    ("se.sys", Storage_encryption);
    ("dp.sys", Disk_protection);
    ("graphics.sys", Graphics);
    ("bk.sys", Storage_backup);
    ("ioc.sys", Io_cache);
    ("mou.sys", Mouse);
    ("acpi.sys", Acpi);
  ]

let type_of_module m = List.assoc_opt (String.lowercase_ascii m) modules

let type_of_signature s = type_of_module (Signature.module_part s)

let type_name_of_signature s = Option.map type_name (type_of_signature s)

let sig_ = Signature.of_string

let stor_read_block = sig_ "stor.sys!ReadBlock"
let stor_write_block = sig_ "stor.sys!WriteBlock"

let fs_read = sig_ "fs.sys!Read"
let fs_write = sig_ "fs.sys!Write"
let fs_acquire_mdu = sig_ "fs.sys!AcquireMDU"
let fs_query_metadata = sig_ "fs.sys!QueryMetadata"

let fv_query_file_table = sig_ "fv.sys!QueryFileTable"
let fv_intercept_create = sig_ "fv.sys!InterceptCreate"
let fv_virtualize_path = sig_ "fv.sys!VirtualizePath"

let av_scan_file = sig_ "av.sys!ScanFile"
let av_intercept_open = sig_ "av.sys!InterceptOpen"
let av_check_policy = sig_ "av.sys!CheckPolicy"

let net_send_request = sig_ "net.sys!SendRequest"
let net_receive_data = sig_ "net.sys!ReceiveData"
let net_resolve_name = sig_ "net.sys!ResolveName"
let tcpip_transmit = sig_ "tcpip.sys!Transmit"

let se_read_decrypt = sig_ "se.sys!ReadDecrypt"
let se_write_encrypt = sig_ "se.sys!WriteEncrypt"
let se_decrypt = sig_ "se.sys!Decrypt"
let se_worker = sig_ "se.sys!Worker"

let dp_check_motion = sig_ "dp.sys!CheckMotion"
let dp_halt_io = sig_ "dp.sys!HaltIo"

let gfx_acquire_gpu = sig_ "graphics.sys!AcquireGpu"
let gfx_render = sig_ "graphics.sys!Render"
let gfx_init_struct = sig_ "graphics.sys!InitStruct"
let gfx_worker_routine = sig_ "graphics.sys!WorkerRoutine"

let bk_snapshot_region = sig_ "bk.sys!SnapshotRegion"
let bk_copy_on_write = sig_ "bk.sys!CopyOnWrite"

let ioc_cache_lookup = sig_ "ioc.sys!CacheLookup"
let ioc_cache_fill = sig_ "ioc.sys!CacheFill"

let mou_process_input = sig_ "mou.sys!ProcessInput"

let acpi_power_transition = sig_ "acpi.sys!PowerTransition"

let disk_service = Signature.hw_service "DiskService"
let net_service = Signature.hw_service "NetService"
let gpu_service = Signature.hw_service "GpuService"

let fs_read_ahead = sig_ "fs.sys!ReadAhead"
let fs_flush_buffers = sig_ "fs.sys!FlushBuffers"
let fv_check_redirect = sig_ "fv.sys!CheckRedirect"
let av_scan_archive = sig_ "av.sys!ScanArchive"
let av_update_db = sig_ "av.sys!UpdateDb"
let net_submit_io = sig_ "net.sys!SubmitIo"
let tcpip_receive = sig_ "tcpip.sys!Receive"
let se_stream_cipher = sig_ "se.sys!StreamCipher"
let stor_queue_request = sig_ "stor.sys!QueueRequest"
