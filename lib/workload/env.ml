module Engine = Dpsim.Engine

type t = {
  engine : Engine.t;
  file_table : Dpsim.Program.lock;
  mdu : Dpsim.Program.lock;
  av_db : Dpsim.Program.lock;
  gpu_res : Dpsim.Program.lock;
  cache : Dpsim.Program.lock;
  dp_gate : Dpsim.Program.lock;
  backup : Dpsim.Program.lock;
  disk : Dpsim.Program.device;
  net : Dpsim.Program.device;
  gpu : Dpsim.Program.device;
  input : Dpsim.Program.device;
  sys_worker : Dpsim.Program.service;
  av_queue : Dpsim.Program.lock;
  app_main : Dpsim.Program.lock;
  net_io : Dpsim.Program.lock;
}

let create engine =
  {
    engine;
    file_table = Engine.new_lock engine ~name:"FileTable";
    mdu = Engine.new_lock engine ~name:"MDU";
    av_db = Engine.new_lock engine ~name:"AvDatabase";
    gpu_res = Engine.new_lock engine ~name:"GpuResource";
    cache = Engine.new_lock engine ~name:"IoCacheDir";
    dp_gate = Engine.new_lock engine ~name:"DiskProtectGate";
    backup = Engine.new_lock engine ~name:"BackupSnapshot";
    disk = Engine.new_device engine ~name:"Disk0" ~signature:Taxonomy.disk_service;
    net = Engine.new_device engine ~name:"Net0" ~signature:Taxonomy.net_service;
    gpu = Engine.new_device engine ~name:"Gpu0" ~signature:Taxonomy.gpu_service;
    input =
      Engine.new_device engine ~name:"Input0"
        ~signature:(Dptrace.Signature.hw_service "InputService");
    sys_worker =
      Engine.new_service engine ~name:"SysWorker"
        ~worker_stack:[ Dpsim.Program.kernel_worker ];
    av_queue = Engine.new_lock engine ~name:"AvServiceQueue";
    app_main = Engine.new_lock engine ~name:"AppMainLoop";
    net_io = Engine.new_lock engine ~name:"NetIoQueue";
  }

let make ~stream_id = create (Engine.create ~stream_id ())

let app_lock t ~name = Engine.new_lock t.engine ~name
