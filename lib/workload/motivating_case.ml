module P = Dpsim.Program
module T = Taxonomy
module Time = Dputil.Time
module Signature = Dptrace.Signature
module Engine = Dpsim.Engine

type t = {
  stream : Dptrace.Stream.t;
  browser_instance : Dptrace.Scenario.instance;
  ui_tid : int;
  specs : Dptrace.Scenario.spec list;
}

let kernel_open_file = Signature.of_string "kernel!OpenFile"
let kernel_create_file = Signature.of_string "kernel!CreateFile"

let browser_spec =
  Dptrace.Scenario.spec ~name:"BrowserTabCreate" ~tfast:(Time.ms 300)
    ~tslow:(Time.ms 500)

let av_spec =
  Dptrace.Scenario.spec ~name:"AvScheduledScan" ~tfast:(Time.ms 500)
    ~tslow:(Time.ms 1500)

let cfg_spec =
  Dptrace.Scenario.spec ~name:"CfgRefresh" ~tfast:(Time.ms 200)
    ~tslow:(Time.ms 600)

let specs = [ browser_spec; av_spec; cfg_spec ]

(* fs.sys read served by a system worker running se.sys over the disk:
   the deepest links of Figure 1 — (1) propagates disk time and decryption
   CPU back through the system-service call. *)
let encrypted_read env ~disk_ms ~decrypt_ms =
  [
    P.call T.fs_read
      [
        P.request env.Env.sys_worker
          [
            P.call T.se_read_decrypt
              [
                P.hw env.Env.disk (Time.ms disk_ms);
                P.compute ~frame:T.se_decrypt (Time.ms decrypt_ms);
              ];
          ];
      ];
  ]

let mdu_encrypted_read env ~disk_ms ~decrypt_ms =
  [
    P.call T.fs_acquire_mdu
      [
        P.locked env.Env.mdu
          (P.compute (Time.ms 2) :: encrypted_read env ~disk_ms ~decrypt_ms);
      ];
  ]

(* [scale] stretches every duration; [base] shifts every start time. *)
let spawn_case engine env ~base ~scale ~mark =
  let ms x = Time.ms (int_of_float (scale *. float_of_int x)) in
  let at x = base + Time.ms x in
  let scaled_read ~disk_ms ~decrypt_ms =
    mdu_encrypted_read env
      ~disk_ms:(int_of_float (scale *. float_of_int disk_ms))
      ~decrypt_ms:(int_of_float (scale *. float_of_int decrypt_ms))
  in
  (* T_C,W0 — Configuration Manager worker: first to take the MDU lock;
     its read keeps the system worker T_S,W0 busy for hundreds of ms. *)
  let _cm =
    Engine.spawn engine
      ?scenario:(if mark then Some cfg_spec.Dptrace.Scenario.name else None)
      ~start_at:(at 0) ~name:"CM.Worker"
      ~base_stack:[ Signature.of_string "ConfigMgr!Worker" ]
      [
        P.call kernel_open_file
          (P.compute (ms 2) :: scaled_read ~disk_ms:450 ~decrypt_ms:60);
      ]
  in
  (* T_A,W0 — AntiVirus worker: second in the MDU queue. *)
  let _av =
    Engine.spawn engine
      ?scenario:(if mark then Some av_spec.Dptrace.Scenario.name else None)
      ~start_at:(at 5) ~name:"AV.Worker"
      ~base_stack:[ Signature.of_string "AntiVirus!Worker" ]
      [
        P.call kernel_open_file
          (P.compute (ms 2) :: scaled_read ~disk_ms:170 ~decrypt_ms:30);
      ]
  in
  (* T_B,W1 — browser worker 1: first to take the File Table lock, then
     joins the MDU contention (dependency (4): fv.sys → fs.sys). *)
  let _w1 =
    Engine.spawn engine ~start_at:(at 10) ~name:"Browser.W1"
      ~base_stack:[ Signature.of_string "Browser!Worker" ]
      [
        P.call kernel_create_file
          [
            P.call T.fv_query_file_table
              [
                P.locked env.Env.file_table
                  (P.compute (ms 3) :: scaled_read ~disk_ms:120 ~decrypt_ms:25);
              ];
          ];
      ]
  in
  (* T_B,W0 — browser worker 0: second in the File Table queue. *)
  let _w0 =
    Engine.spawn engine ~start_at:(at 15) ~name:"Browser.W0"
      ~base_stack:[ Signature.of_string "Browser!Worker" ]
      [
        P.call kernel_create_file
          [
            P.call T.fv_query_file_table
              [ P.locked env.Env.file_table [ P.compute (ms 4) ] ];
          ];
      ]
  in
  (* T_B,UI — the initiating thread of BrowserTabCreate; last in the File
     Table queue, end of the propagation path (links (5) and (6)). *)
  Engine.spawn engine
    ?scenario:(if mark then Some browser_spec.Dptrace.Scenario.name else None)
    ~start_at:(at 20) ~name:"Browser.UI"
    ~base_stack:[ Signature.of_string "Browser!TabCreate" ]
    [
      P.compute (ms 10);
      P.call kernel_open_file
        [
          P.call T.fv_query_file_table
            [ P.locked env.Env.file_table [ P.compute (ms 3) ] ];
        ];
      P.compute (ms 30);
    ]

let build_stream ~stream_id ~scale ~contended =
  let engine = Engine.create ~stream_id () in
  let env = Env.create engine in
  let ui_tid =
    if contended then spawn_case engine env ~base:0 ~scale ~mark:true
    else begin
      (* Fast-class replica: the same six threads, spread out in time so no
         contention arises; the UI instance completes in tens of ms. *)
      let sep = Time.sec 2 in
      let _cm_av_w =
        spawn_case engine env ~base:(3 * sep) ~scale ~mark:false
      in
      ignore _cm_av_w;
      (* Re-spawn just the UI thread early with a free File Table. *)
      Engine.spawn engine ~scenario:browser_spec.Dptrace.Scenario.name
        ~start_at:0 ~name:"Browser.UI.fast"
        ~base_stack:[ Signature.of_string "Browser!TabCreate" ]
        [
          P.compute (Time.ms 10);
          P.call kernel_open_file
            [
              P.call T.fv_query_file_table
                [ P.locked env.Env.file_table [ P.compute (Time.ms 3) ] ];
            ];
          P.compute (Time.ms 30);
        ]
    end
  in
  let stream = Engine.run engine in
  (stream, ui_tid)

let build () =
  let stream, ui_tid = build_stream ~stream_id:0 ~scale:1.0 ~contended:true in
  let browser_instance =
    List.find
      (fun (i : Dptrace.Scenario.instance) ->
        i.scenario = browser_spec.Dptrace.Scenario.name)
      stream.Dptrace.Stream.instances
  in
  { stream; browser_instance; ui_tid; specs }

let corpus ?(copies = 24) () =
  let streams = ref [] in
  for id = 0 to copies - 1 do
    (* Deterministic jitter: durations vary ±15 % with the stream id. *)
    let scale = 0.85 +. (0.05 *. float_of_int (id mod 7)) in
    let slow, _ = build_stream ~stream_id:(2 * id) ~scale ~contended:true in
    let fast, _ =
      build_stream ~stream_id:(2 * id + 1) ~scale ~contended:false
    in
    streams := fast :: slow :: !streams
  done;
  Dptrace.Corpus.create ~streams:(List.rev !streams) ~specs

let expected_pattern_signatures =
  [
    "fv.sys!QueryFileTable";
    "fs.sys!AcquireMDU";
    "se.sys!ReadDecrypt";
    "DiskService";
  ]

let describe t =
  let buf = Buffer.create 2048 in
  let stream = t.stream in
  Buffer.add_string buf
    (Format.asprintf
       "Motivating case (Figure 1): BrowserTabCreate took %a (T_slow = %a)\n"
       Time.pp
       (Dptrace.Scenario.duration t.browser_instance)
       Time.pp browser_spec.Dptrace.Scenario.tslow);
  Buffer.add_string buf
    "Threads and their topmost recorded operations:\n";
  List.iter
    (fun (tid, name) ->
      let idx = Dptrace.Stream.index stream in
      let events = Dptrace.Stream.events_of_thread idx tid in
      if Array.length events > 0 then begin
        Buffer.add_string buf (Printf.sprintf "  %-14s" name);
        let waits =
          Array.to_list events |> List.filter Dptrace.Event.is_wait
        in
        (match waits with
        | [] -> Buffer.add_string buf "runs without blocking"
        | w :: _ ->
          Buffer.add_string buf
            (Format.asprintf "blocked %a in %s" Time.pp w.Dptrace.Event.cost
               (match Dptrace.Callstack.top w.Dptrace.Event.stack with
               | Some s -> Signature.name s
               | None -> "<unknown>")));
        Buffer.add_char buf '\n'
      end)
    stream.Dptrace.Stream.threads;
  let wg = Dpwaitgraph.Wait_graph.build stream t.browser_instance in
  Buffer.add_string buf
    (Format.asprintf
       "Propagation: the UI thread's wait graph has %d nodes, depth %d,\n\
        accumulating %a of transitive waiting below a single tab-create \
        click.\n"
       (Dpwaitgraph.Wait_graph.node_count wg)
       (Dpwaitgraph.Wait_graph.depth wg)
       Time.pp
       (Dpwaitgraph.Wait_graph.wait_time wg));
  Buffer.contents buf
