(** A simulated machine: the engine plus the shared kernel objects that
    device drivers synchronise on. One environment backs one trace
    stream. *)

type t = {
  engine : Dpsim.Engine.t;
  (* Kernel locks owned by drivers. *)
  file_table : Dpsim.Program.lock;  (** fv.sys File Table entries. *)
  mdu : Dpsim.Program.lock;  (** fs.sys Meta Data Units. *)
  av_db : Dpsim.Program.lock;  (** av.sys inspection database. *)
  gpu_res : Dpsim.Program.lock;  (** graphics.sys GPU resources. *)
  cache : Dpsim.Program.lock;  (** ioc.sys cache directory. *)
  dp_gate : Dpsim.Program.lock;  (** dp.sys I/O gate (motion protection). *)
  backup : Dpsim.Program.lock;  (** bk.sys snapshot region. *)
  (* Hardware devices (FIFO queueing). *)
  disk : Dpsim.Program.device;
  net : Dpsim.Program.device;
  gpu : Dpsim.Program.device;
  input : Dpsim.Program.device;  (** HID report stream (mouse). *)
  (* System services. *)
  sys_worker : Dpsim.Program.service;  (** Kernel worker pool. *)
  av_queue : Dpsim.Program.lock;
      (** The singleton security-software inspection queue — an
          application-level lock (waits on it carry no driver frames), the
          architecture Section 5.2.4 points at: all interception requests
          funnel through one process, so one stuck inspection propagates
          its driver waits to every queued scenario instance. *)
  app_main : Dpsim.Program.lock;
      (** The primary application's main-loop serialisation (message queue
          / single-threaded apartment). Like [av_queue], waits on it carry
          app frames only; heavy operations funnelled through it make one
          thread's driver waits count against every queued instance —
          the dominant sharing mechanism behind the paper's
          [D_wait/D_waitdist ≈ 3.5]. *)
  net_io : Dpsim.Program.lock;
      (** The shared network-I/O completion queue: concurrent fetches
          serialise through the protocol stack, so one in-flight request's
          device wait is observed by every pending request. *)
}

val create : Dpsim.Engine.t -> t
(** Register the machine objects on a fresh engine. *)

val make : stream_id:int -> t
(** [create] on a fresh default engine. *)

val app_lock : t -> name:string -> Dpsim.Program.lock
(** A fresh application-level serialisation point (e.g. the single
    inspection queue of a security-software process). Waits on it carry no
    driver frames — the pattern through which one stuck thread's driver
    wait becomes visible to many scenario instances. *)
