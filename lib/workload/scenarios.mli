(** Scenario templates: the 8 named scenarios of Table 1 plus the
    background scenarios that fill out the corpus.

    A template couples a scenario spec (name, [T_fast], [T_slow]) with a
    program generator. Instances come in two work profiles: [Light] (the
    expected path) and [Heavy] (a draw from the scenario's problem-motif
    mix). Whether a heavy instance actually lands in the slow class is
    {e emergent}: it depends on the contention it meets in its episode,
    exactly as in real traces. *)

type profile = Light | Heavy

type template = {
  spec : Dptrace.Scenario.spec;
  entry : Dptrace.Signature.t;  (** Initiating-thread base frame. *)
  thread_name : string;
  heavy_prob : float;  (** Per-instance probability of the heavy profile. *)
  concurrency : int * int;  (** Concurrent instances per episode (min, max). *)
  program : Motifs.ctx -> profile -> Dpsim.Program.step list;
}

val app_access_control : template
val app_non_responsive : template
val browser_frame_create : template
val browser_tab_close : template
val browser_tab_create : template
val browser_tab_switch : template
val menu_display : template
val web_page_navigation : template

val named : template list
(** The 8 above, in Table 1 order. *)

val av_scheduled_scan : template
val cfg_refresh : template
val motion_guard : template
(** dp.sys halting I/O by design — the §5.2.5 false-positive source. *)

val video_playback : template
val text_editing : template
(** Long, driver-light scenarios standing in for the corpus's 1,364-scenario
    tail: they dominate wall-clock time while touching drivers rarely,
    which is what keeps the corpus-wide impact percentages at the paper's
    levels. *)

val background : template list
(** All non-named templates (includes those above). *)

val all : template list

val find : string -> template option
(** Template by scenario name. *)

val all_specs : Dptrace.Scenario.spec list
