module Engine = Dpsim.Engine
module Prng = Dputil.Prng
module Time = Dputil.Time

type config = {
  seed : int;
  scale : float;
  quantize_running : bool;
  cross_traffic : bool;
  cores : int option;
      (* None = unbounded CPU (the paper-regime default); Some n engages
         the engine's run-queue model for CPU-pressure studies. *)
}

let default_config =
  {
    seed = 42;
    scale = 1.0;
    quantize_running = true;
    cross_traffic = true;
    cores = None;
  }

let test_config = { default_config with scale = 0.1 }

let scaled scale = { default_config with scale }

(* Table 1 instance counts divided by 10, plus background volume. *)
let target_counts =
  [
    ("AppAccessControl", 155);
    ("AppNonResponsive", 63);
    ("BrowserFrameCreate", 130);
    ("BrowserTabClose", 99);
    ("BrowserTabCreate", 249);
    ("BrowserTabSwitch", 218);
    ("MenuDisplay", 74);
    ("WebPageNavigation", 772);
    ("AvScheduledScan", 30);
    ("CfgRefresh", 20);
    ("SystemMotionGuard", 10);
    ("FileOpen", 110);
    ("FileSave", 85);
    ("AppLaunch", 55);
    ("DocumentLoad", 65);
    ("SearchQuery", 55);
    ("VideoPlayback", 1050);
    ("TextEditing", 1300);
  ]

(* Probability that an episode of the given scenario sees a dp.sys motion
   halt; matched to where Table 4 shows Disk Protection patterns. *)
let motion_guard_prob name =
  match name with
  | "AppNonResponsive" | "MenuDisplay" -> 0.35
  | "BrowserFrameCreate" -> 0.3
  | "WebPageNavigation" -> 0.25
  | _ -> 0.08

let spawn_instance env prng (tpl : Scenarios.template) ~index ~max_start =
  let iprng = Prng.split prng in
  let ctx = { Motifs.env; prng = iprng } in
  let profile =
    if Prng.chance iprng tpl.Scenarios.heavy_prob then Scenarios.Heavy
    else Scenarios.Light
  in
  let start_at = Prng.int iprng (max 1 max_start) in
  let steps = tpl.Scenarios.program ctx profile in
  ignore
    (Engine.spawn env.Env.engine
       ~scenario:tpl.Scenarios.spec.Dptrace.Scenario.name ~start_at
       ~name:(Printf.sprintf "%s.%d" tpl.Scenarios.thread_name index)
       ~base_stack:[ tpl.Scenarios.entry ]
       steps)

(* Unmarked background work contending the same queues: its driver stalls
   are observed (and counted) by every queued scenario instance but are
   never self-counted — the purest form of cost propagation, and the main
   contributor to D_wait / D_waitdist > 1. *)
let spawn_noise env prng ~index =
  let iprng = Prng.split prng in
  let ctx = { Motifs.env; prng = iprng } in
  let open Dpsim.Program in
  let one _ =
    Dputil.Prng.choose_weighted iprng
      [
        (0.45, fun () -> Motifs.av_serialized ctx ~dur:(Motifs.service_ms ctx ~median:35.0));
        ( 0.3,
          fun () ->
            Motifs.app_serialized ctx
              (Motifs.file_table_chain ctx
                 ~inner:
                   (Motifs.mdu_read ctx
                      ~dur:(Motifs.service_ms ctx ~median:30.0)
                      ~encrypted:(Dputil.Prng.chance iprng 0.4))) );
        (0.25, fun () -> Motifs.net_fetch_shared ctx ~dur:(Motifs.ms_in ctx 20.0 90.0));
      ]
      ()
    @ [ idle (Motifs.ms_in ctx 10.0 60.0) ]
  in
  let rounds = Dputil.Prng.int_in iprng 1 3 in
  ignore
    (Engine.spawn env.Env.engine
       ~start_at:(Dputil.Prng.int iprng (Dputil.Time.ms 60))
       ~name:(Printf.sprintf "Svc.Background.%d" index)
       ~base_stack:[ Dptrace.Signature.of_string "Svc!BackgroundWork" ]
       (List.concat_map one (List.init rounds Fun.id)))

let build_episode ?cores ~stream_id ~prng ~quantize ~cross
    (tpl : Scenarios.template) =
  let engine = Engine.create ?cores ~stream_id ~quantize_running:quantize () in
  let env = Env.create engine in
  let lo, hi = tpl.Scenarios.concurrency in
  let n = Prng.int_in prng lo hi in
  let max_start = Time.ms 50 in
  for i = 0 to n - 1 do
    spawn_instance env prng tpl ~index:i ~max_start
  done;
  if cross then begin
    let name = tpl.Scenarios.spec.Dptrace.Scenario.name in
    if Prng.chance prng 0.5 then
      spawn_instance env prng Scenarios.av_scheduled_scan ~index:100
        ~max_start:(Time.ms 100);
    if Prng.chance prng 0.35 then
      spawn_instance env prng Scenarios.cfg_refresh ~index:200
        ~max_start:(Time.ms 100);
    if Prng.chance prng (motion_guard_prob name) then
      spawn_instance env prng Scenarios.motion_guard ~index:300
        ~max_start:(Time.ms 60)
  end;
  let noise = Prng.int_in prng 4 7 in
  for i = 0 to noise - 1 do
    spawn_noise env prng ~index:i
  done;
  Engine.run engine

let count_of_scenario (st : Dptrace.Stream.t) name =
  List.length
    (List.filter
       (fun (i : Dptrace.Scenario.instance) -> i.scenario = name)
       st.Dptrace.Stream.instances)

let generate config =
  let prng = Prng.of_int config.seed in
  let stream_id = ref 0 in
  let streams = ref [] in
  let run_episodes (tpl : Scenarios.template) target cross =
    let name = tpl.Scenarios.spec.Dptrace.Scenario.name in
    let produced = ref 0 in
    while !produced < target do
      let st =
        build_episode ?cores:config.cores ~stream_id:!stream_id
          ~prng:(Prng.split prng) ~quantize:config.quantize_running ~cross tpl
      in
      incr stream_id;
      streams := st :: !streams;
      produced := !produced + count_of_scenario st name
    done
  in
  List.iter
    (fun (tpl : Scenarios.template) ->
      let name = tpl.Scenarios.spec.Dptrace.Scenario.name in
      match List.assoc_opt name target_counts with
      | None -> ()
      | Some count ->
        let target =
          max 1 (int_of_float (Float.round (config.scale *. float_of_int count)))
        in
        let is_named =
          List.exists
            (fun (t : Scenarios.template) ->
              t.Scenarios.spec.Dptrace.Scenario.name = name)
            Scenarios.named
        in
        run_episodes tpl target (config.cross_traffic && is_named))
    Scenarios.all;
  Dptrace.Corpus.create ~streams:(List.rev !streams) ~specs:Scenarios.all_specs
