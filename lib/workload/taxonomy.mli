(** The simulated driver ecosystem: a catalogue of device drivers spanning
    the ten driver types of Table 4, with realistic routine signatures.

    Driver and routine names follow the paper's anonymised convention
    ([fv.sys!QueryFileTable], [fs.sys!AcquireMDU], [se.sys!ReadDecrypt],
    [graphics.sys], …); the rest of the catalogue extends the same style. *)

type driver_type =
  | File_system  (** "FileSystem, General Storage" *)
  | Fs_filter  (** "FileSystem Filter" (security software, virtualization) *)
  | Network
  | Storage_encryption
  | Disk_protection
  | Graphics
  | Storage_backup
  | Io_cache
  | Mouse
  | Acpi

val all_types : driver_type list
(** In Table 4 column order. *)

val type_name : driver_type -> string
(** Table 4 column heading. *)

val type_of_module : string -> driver_type option
(** Classify a module name (e.g. ["fv.sys"]). *)

val type_of_signature : Dptrace.Signature.t -> driver_type option
(** Classify a signature by its module part; [None] for non-driver
    signatures (kernel, applications, hardware dummies). *)

val type_name_of_signature : Dptrace.Signature.t -> string option
(** Composition of the two above — the classifier shape that
    {!Dpcore.Evaluation.driver_type_counts} takes. *)

(** {1 Routine signatures}

    Interned once at module initialisation; grouped by driver. *)

(* stor.sys — general storage *)
val stor_read_block : Dptrace.Signature.t
val stor_write_block : Dptrace.Signature.t

(* fs.sys — file system *)
val fs_read : Dptrace.Signature.t
val fs_write : Dptrace.Signature.t
val fs_acquire_mdu : Dptrace.Signature.t
val fs_query_metadata : Dptrace.Signature.t

(* fv.sys — file-virtualization filter *)
val fv_query_file_table : Dptrace.Signature.t
val fv_intercept_create : Dptrace.Signature.t
val fv_virtualize_path : Dptrace.Signature.t

(* av.sys — antivirus filter *)
val av_scan_file : Dptrace.Signature.t
val av_intercept_open : Dptrace.Signature.t
val av_check_policy : Dptrace.Signature.t

(* net.sys / tcpip.sys — network *)
val net_send_request : Dptrace.Signature.t
val net_receive_data : Dptrace.Signature.t
val net_resolve_name : Dptrace.Signature.t
val tcpip_transmit : Dptrace.Signature.t

(* se.sys — storage encryption *)
val se_read_decrypt : Dptrace.Signature.t
val se_write_encrypt : Dptrace.Signature.t
val se_decrypt : Dptrace.Signature.t
val se_worker : Dptrace.Signature.t

(* dp.sys — disk protection *)
val dp_check_motion : Dptrace.Signature.t
val dp_halt_io : Dptrace.Signature.t

(* graphics.sys *)
val gfx_acquire_gpu : Dptrace.Signature.t
val gfx_render : Dptrace.Signature.t
val gfx_init_struct : Dptrace.Signature.t
val gfx_worker_routine : Dptrace.Signature.t

(* bk.sys — storage backup *)
val bk_snapshot_region : Dptrace.Signature.t
val bk_copy_on_write : Dptrace.Signature.t

(* ioc.sys — IO cache *)
val ioc_cache_lookup : Dptrace.Signature.t
val ioc_cache_fill : Dptrace.Signature.t

(* mou.sys — mouse *)
val mou_process_input : Dptrace.Signature.t

(* acpi.sys *)
val acpi_power_transition : Dptrace.Signature.t

(* Hardware-service dummy signatures (Definition 3). *)
val disk_service : Dptrace.Signature.t
val net_service : Dptrace.Signature.t
val gpu_service : Dptrace.Signature.t

(** {1 Routine variants}

    Secondary entry points of the same drivers; workload motifs draw from
    these so aggregated behaviours spread over a realistic signature
    space, as in real traces where many distinct routines appear. *)

val fs_read_ahead : Dptrace.Signature.t
val fs_flush_buffers : Dptrace.Signature.t
val fv_check_redirect : Dptrace.Signature.t
val av_scan_archive : Dptrace.Signature.t
val av_update_db : Dptrace.Signature.t
val net_submit_io : Dptrace.Signature.t
val tcpip_receive : Dptrace.Signature.t
val se_stream_cipher : Dptrace.Signature.t
val stor_queue_request : Dptrace.Signature.t
