(** Problem motifs: reusable behaviour fragments for scenario programs.

    Each motif returns a {!Dpsim.Program.step} list for the calling thread,
    parameterised by the machine environment and a PRNG for realistic
    duration spread. Heavy motifs reproduce the paper's problem classes:
    the fv→fs→se lock-and-dependency chain of Figure 1, singleton security
    inspection (Section 5.2.4 observation 1), remote-content fetches behind
    menus (observation 2), the graphics hard fault (observation 3), and the
    disk-protection by-design blocking (Section 5.2.5's false positive). *)

type ctx = { env : Env.t; prng : Dputil.Prng.t }

(** {1 Duration helpers} *)

val ms_in : ctx -> float -> float -> Dputil.Time.t
(** Uniform draw between two float milliseconds. *)

val service_ms : ctx -> median:float -> Dputil.Time.t
(** Log-normal service time (heavy right tail), median in milliseconds. *)

(** {1 Fast-path motifs (no propagation)} *)

val cached_file_open : ctx -> Dpsim.Program.step list
(** fv.sys table query under its lock, cache hit, ~1–3 ms CPU. *)

val cache_lookup : ctx -> Dpsim.Program.step list
(** ioc.sys lookup under the cache lock; occasionally fills from disk. *)

val mouse_input : ctx -> Dpsim.Program.step list
val policy_check : ctx -> Dpsim.Program.step list

(** {1 I/O motifs} *)

val disk_read : ctx -> dur:Dputil.Time.t -> Dpsim.Program.step list
(** fs.sys read served by a kernel worker hitting the disk. *)

val encrypted_disk_read : ctx -> dur:Dputil.Time.t -> Dpsim.Program.step list
(** Same, via se.sys: disk service then decryption CPU (Figure 1's deepest
    links (1)). *)

val mdu_read : ctx -> dur:Dputil.Time.t -> encrypted:bool -> Dpsim.Program.step list
(** fs.sys!AcquireMDU under the MDU lock around a (possibly encrypted)
    read — the lower contention region of Figure 1. *)

val encrypted_disk_write : ctx -> dur:Dputil.Time.t -> Dpsim.Program.step list
(** se.sys encryption CPU then disk write. *)

val mdu_write : ctx -> dur:Dputil.Time.t -> encrypted:bool -> Dpsim.Program.step list

val net_fetch : ctx -> dur:Dputil.Time.t -> Dpsim.Program.step list
(** net.sys request straight on the network device (prunable as
    non-optimisable when at root). *)

val net_fetch_served : ctx -> dur:Dputil.Time.t -> Dpsim.Program.step list
(** Network fetch via a kernel worker — propagated cost that survives the
    AWG reduction. *)

val net_fetch_shared : ctx -> dur:Dputil.Time.t -> Dpsim.Program.step list
(** {!net_fetch_served} behind the shared network-I/O queue
    ({!Env.t.net_io}) — cost-sharing across pending fetches. *)

val dns_resolve : ctx -> Dpsim.Program.step list

(** {1 Heavy propagation motifs} *)

val file_table_chain : ctx -> inner:Dpsim.Program.step list -> Dpsim.Program.step list
(** fv.sys!QueryFileTable under the File Table lock around [inner] — the
    upper contention region of Figure 1; with [inner = mdu_read …] this is
    the full motivating chain. *)

val av_inspection : ctx -> dur:Dputil.Time.t -> Dpsim.Program.step list
(** av.sys scan under the singleton inspection database lock, reading
    file content through the MDU path. *)

val gpu_render : ctx -> dur:Dputil.Time.t -> Dpsim.Program.step list
(** graphics.sys rendering under the GPU resource lock. *)

val hard_fault_page_read : ctx -> dur:Dputil.Time.t -> Dpsim.Program.step list
(** A hard page fault inside graphics.sys!InitStruct: a kernel worker
    performs the page read through se.sys (the 4.7 s case of §5.2.4). *)

val disk_protection_halt : ctx -> dur:Dputil.Time.t -> Dpsim.Program.step list
(** dp.sys holds its I/O gate for [dur] (by-design blocking while the
    machine is in motion) — the known false-positive source. *)

val guarded_disk_read : ctx -> dur:Dputil.Time.t -> Dpsim.Program.step list
(** A disk read that must pass the dp.sys gate. *)

val backup_copy_on_write : ctx -> dur:Dputil.Time.t -> Dpsim.Program.step list
(** bk.sys snapshotting under the backup lock with disk writes. *)

val av_serialized : ctx -> dur:Dputil.Time.t -> Dpsim.Program.step list
(** An {!av_inspection} funnelled through the application-level singleton
    inspection queue ({!Env.t.av_queue}) — the cost-sharing motif: the
    holder's driver waits are observed by every queued instance. *)

val app_serialized : ctx -> Dpsim.Program.step list -> Dpsim.Program.step list
(** Funnel steps through the application main loop ({!Env.t.app_main}) —
    the generic cost-sharing wrapper. *)

val direct_disk_read : ctx -> dur:Dputil.Time.t -> Dpsim.Program.step list
(** Blocking straight on the disk — non-optimisable at AWG roots. *)

val direct_gpu_wait : ctx -> dur:Dputil.Time.t -> Dpsim.Program.step list

val acpi_transition : ctx -> Dpsim.Program.step list

val kernel_hard_fault : Dptrace.Signature.t
(** ["kernel!HardFault"] — wait frame of a faulting thread. *)
