(** Deterministic reconstruction of the paper's motivating example
    (Section 2.2, Figure 1).

    Six threads across four processes, two lock-contention regions and two
    hierarchical dependencies:

    - browser UI thread [T_B,UI] and workers [T_B,W0]/[T_B,W1] contend the
      fv.sys {e File Table} lock;
    - [T_B,W1], the AntiVirus worker [T_A,W0] and the Configuration
      Manager worker [T_C,W0] contend the fs.sys {e MDU} lock;
    - the MDU holder reads from disk through se.sys on the system worker
      [T_S,W0], which spends hundreds of milliseconds in disk service and
      decryption CPU.

    The delay initiated on [T_S,W0] propagates along links (1)–(6) of
    Figure 1 into the UI thread; the BrowserTabCreate instance takes over
    800 ms, exceeding its 500 ms [T_slow]. *)

type t = {
  stream : Dptrace.Stream.t;
  browser_instance : Dptrace.Scenario.instance;  (** The >800 ms victim. *)
  ui_tid : int;
  specs : Dptrace.Scenario.spec list;  (** BrowserTabCreate + background. *)
}

val build : unit -> t
(** Deterministic: no PRNG involved. *)

val corpus : ?copies:int -> unit -> Dptrace.Corpus.t
(** A corpus of [copies] (default 24) jittered replicas of the case plus
    matching fast-class streams (same scenario, no contention), enough for
    the causality analysis to aggregate and mine — used by Figure 2 and
    the examples. The jitter is deterministic in the stream id. *)

val expected_pattern_signatures : string list
(** The signature names the paper's mined pattern exhibits —
    [fv.sys!QueryFileTable], [fs.sys!AcquireMDU], [se.sys!ReadDecrypt],
    [DiskService] — used by tests and the bench to assert that mining
    rediscovers the injected problem. *)

val describe : t -> string
(** A human-readable account of the six threads and the propagation
    links, rendered from the actual trace (the examples print this). *)
