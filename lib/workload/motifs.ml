module P = Dpsim.Program
module T = Taxonomy
module Time = Dputil.Time
module Prng = Dputil.Prng

type ctx = { env : Env.t; prng : Dputil.Prng.t }

let kernel_hard_fault = Dptrace.Signature.of_string "kernel!HardFault"

let ms_in ctx lo hi = Time.of_ms_float (lo +. Prng.float ctx.prng (hi -. lo))

(* Mostly the canonical routine, sometimes a sibling entry point of the
   same driver: spreads aggregated behaviour over a realistic signature
   space (real traces show many routines per driver). *)
let vary ctx canonical variants =
  if Prng.chance ctx.prng 0.7 then canonical else Prng.choose ctx.prng variants

let service_ms ctx ~median =
  Time.of_ms_float (Prng.lognormal ctx.prng ~median ~sigma:0.8)

(* --- Fast paths --- *)

let cached_file_open ctx =
  [
    P.call T.fv_query_file_table
      [ P.locked ctx.env.Env.file_table [ P.compute (ms_in ctx 0.5 3.0) ] ];
  ]

let cache_lookup ctx =
  let fill =
    if Prng.chance ctx.prng 0.2 then begin
      Dpobs.Log.debug "motif: ioc cache miss, filling from disk";
      [
        P.call T.ioc_cache_fill
          [ P.call T.fs_read [ P.hw ctx.env.Env.disk (service_ms ctx ~median:4.0) ] ];
      ]
    end
    else []
  in
  [
    P.call T.ioc_cache_lookup
      [ P.locked ctx.env.Env.cache (P.compute (ms_in ctx 0.2 1.5) :: fill) ];
  ]

let mouse_input ctx =
  (* Input processing blocks on the HID report stream via a worker — a
     small but real propagation chain (Table 4 lists Mouse once). *)
  [
    P.call T.mou_process_input
      [
        P.request ctx.env.Env.sys_worker
          [
            P.call (Dptrace.Signature.of_string "mou.sys!ReadReports")
              [ P.hw ctx.env.Env.input (ms_in ctx 2.0 9.0) ];
          ];
        P.compute (ms_in ctx 0.1 1.2);
      ];
  ]

let policy_check ctx = [ P.call T.av_check_policy [ P.compute (ms_in ctx 0.5 2.0) ] ]

(* --- I/O --- *)

let disk_read ctx ~dur =
  [
    P.call (vary ctx T.fs_read [| T.fs_read_ahead; T.fs_query_metadata |])
      [
        P.request ctx.env.Env.sys_worker
          [
            P.call (vary ctx T.stor_read_block [| T.stor_queue_request |])
              [ P.hw ctx.env.Env.disk dur ];
          ];
      ];
  ]

let encrypted_disk_read ctx ~dur =
  let decrypt_cpu = max (Time.ms 1) (dur / 8) in
  [
    P.call (vary ctx T.fs_read [| T.fs_read_ahead |])
      [
        P.request ctx.env.Env.sys_worker
          [
            P.call (vary ctx T.se_read_decrypt [| T.se_worker |])
              [
                P.hw ctx.env.Env.disk dur;
                P.compute
                  ~frame:(vary ctx T.se_decrypt [| T.se_stream_cipher |])
                  decrypt_cpu;
              ];
          ];
      ];
  ]

let mdu_read ctx ~dur ~encrypted =
  let read = if encrypted then encrypted_disk_read ctx ~dur else disk_read ctx ~dur in
  [
    P.call T.fs_acquire_mdu
      [ P.locked ctx.env.Env.mdu (P.compute (ms_in ctx 0.3 1.5) :: read) ];
  ]

let encrypted_disk_write ctx ~dur =
  let encrypt_cpu = max (Time.ms 1) (dur / 8) in
  [
    P.call T.fs_write
      [
        P.request ctx.env.Env.sys_worker
          [
            P.call T.se_write_encrypt
              [
                P.compute ~frame:T.se_decrypt encrypt_cpu;
                P.hw ctx.env.Env.disk dur;
              ];
          ];
      ];
  ]

let mdu_write ctx ~dur ~encrypted =
  let write =
    if encrypted then encrypted_disk_write ctx ~dur
    else
      [
        P.call T.fs_write
          [
            P.request ctx.env.Env.sys_worker
              [ P.call T.stor_write_block [ P.hw ctx.env.Env.disk dur ] ];
          ];
      ]
  in
  [
    P.call T.fs_acquire_mdu
      [ P.locked ctx.env.Env.mdu (P.compute (ms_in ctx 0.3 1.5) :: write) ];
  ]

let net_fetch ctx ~dur =
  [
    P.call T.net_send_request
      [ P.call T.tcpip_transmit [ P.hw ctx.env.Env.net dur ] ];
  ]

let net_fetch_served ctx ~dur =
  (* The fetch runs on a kernel worker; the requester's network wait sees
     the worker's device wait and protocol CPU — propagated network cost
     that survives the AWG non-optimisable reduction, unlike the direct
     [net_fetch]. *)
  [
    P.call (vary ctx T.net_send_request [| T.net_submit_io |])
      [
        P.request ctx.env.Env.sys_worker
          [
            P.call (vary ctx T.tcpip_transmit [| T.tcpip_receive |])
              [
                P.hw ctx.env.Env.net dur;
                P.compute ~frame:T.net_receive_data (ms_in ctx 0.5 3.0);
              ];
          ];
      ];
  ]

let net_fetch_shared ctx ~dur =
  (* Serialise through the shared network-I/O queue: the queue wait carries
     app frames, so pending fetches observe (and are charged with) the
     in-flight request's driver waits. *)
  [
    P.locked
      ~acquire_frames:[ Dptrace.Signature.of_string "App!AwaitResponse" ]
      ctx.env.Env.net_io
      (net_fetch_served ctx ~dur);
  ]

let dns_resolve ctx =
  [
    P.call T.net_resolve_name
      [ P.hw ctx.env.Env.net (service_ms ctx ~median:4.0) ];
  ]

(* --- Heavy propagation --- *)

let file_table_chain ctx ~inner =
  [
    P.call (vary ctx T.fv_query_file_table [| T.fv_virtualize_path; T.fv_check_redirect |])
      [
        P.locked ctx.env.Env.file_table (P.compute (ms_in ctx 0.5 2.0) :: inner);
      ];
  ]

let av_inspection ctx ~dur =
  [
    P.call (vary ctx T.av_scan_file [| T.av_scan_archive; T.av_update_db |])
      [
        P.locked ctx.env.Env.av_db
          (P.compute (ms_in ctx 1.0 4.0)
          :: mdu_read ctx ~dur ~encrypted:(Prng.chance ctx.prng 0.5));
      ];
  ]

let gpu_render ctx ~dur =
  [
    P.call T.gfx_acquire_gpu
      [
        P.locked ctx.env.Env.gpu_res
          [ P.compute ~frame:T.gfx_render (ms_in ctx 1.0 4.0); P.hw ctx.env.Env.gpu dur ];
      ];
  ]

let hard_fault_page_read ctx ~dur =
  (* The paper's observation-3 motif; emission is rare enough that a
     debug line per fault is affordable and lets a generated corpus be
     audited without reading the trace back. *)
  Dpobs.Log.debug "motif: graphics hard fault page-in, disk service %a"
    Dputil.Time.pp dur;
  let decrypt_cpu = max (Time.ms 2) (dur / 10) in
  [
    P.call T.gfx_init_struct
      [
        P.request ~wait_frames:[ kernel_hard_fault ] ctx.env.Env.sys_worker
          [
            P.call T.se_read_decrypt
              [
                P.hw ctx.env.Env.disk dur;
                P.compute ~frame:T.se_decrypt decrypt_cpu;
              ];
          ];
      ];
  ]

let disk_protection_halt ctx ~dur =
  [
    P.call T.dp_check_motion
      [ P.locked ctx.env.Env.dp_gate [ P.compute (Time.ms 1); P.idle dur ] ];
  ]

let guarded_disk_read ctx ~dur =
  [
    P.call T.dp_halt_io
      [ P.locked ctx.env.Env.dp_gate (disk_read ctx ~dur) ];
  ]

let backup_copy_on_write ctx ~dur =
  [
    P.call T.bk_copy_on_write
      [
        P.locked ctx.env.Env.backup
          [
            P.compute ~frame:T.bk_snapshot_region (ms_in ctx 1.0 3.0);
            P.call T.fs_write [ P.hw ctx.env.Env.disk dur ];
          ];
      ];
  ]

let av_serialized ctx ~dur =
  (* The whole inspection behind the application-level singleton queue:
     waits on [av_queue] carry only app frames (the av.sys frames start
     inside the lock body), so the impact analysis descends into the
     current holder's driver waits — the same stuck inspection is counted
     from every queued instance. A fraction of requests race straight to
     the inspection database instead (driver-level contention on av_db
     whose stacked waits can exceed T_slow — the Figure 1 regime). *)
  if Prng.chance ctx.prng 0.3 then
    [ P.call T.av_intercept_open (av_inspection ctx ~dur) ]
  else
    [
      P.locked
        ~acquire_frames:[ Dptrace.Signature.of_string "AvSvc!QueueRequest" ]
        ctx.env.Env.av_queue
        [ P.call T.av_intercept_open (av_inspection ctx ~dur) ];
    ]

let app_serialized ctx steps =
  (* Funnel [steps] through the application's main loop: the queue wait
     carries app frames only, so impact analysis descends into the current
     holder's driver waits and counts them for every queued instance. *)
  [
    P.locked
      ~acquire_frames:[ Dptrace.Signature.of_string "App!PostToMainLoop" ]
      ctx.env.Env.app_main steps;
  ]

let direct_disk_read ctx ~dur =
  (* Initiating thread blocks straight on the device: a root waiting node
     over a single hardware leaf, pruned by the AWG reduction
     (non-optimisable portion). *)
  [ P.call T.fs_read [ P.hw ctx.env.Env.disk dur ] ]

let direct_gpu_wait ctx ~dur =
  [ P.call T.gfx_render [ P.hw ctx.env.Env.gpu dur ] ]

let acpi_transition ctx =
  (* A power transition flushes firmware tables through the kernel worker
     and storage — slow and driver-visible (Table 4 lists ACPI once). *)
  [
    P.call T.acpi_power_transition
      [
        P.compute (ms_in ctx 0.5 2.0);
        P.request ctx.env.Env.sys_worker
          [
            P.call (Dptrace.Signature.of_string "acpi.sys!FlushTables")
              [ P.hw ctx.env.Env.disk (ms_in ctx 40.0 160.0) ];
          ];
        P.idle (ms_in ctx 5.0 30.0);
      ];
  ]
