(** Corpus generation: packs scenario episodes into trace streams.

    An {e episode} is one trace stream: a machine environment plus a batch
    of concurrent scenario instances (staggered starts), optionally with
    cross-traffic — background AntiVirus / ConfigManager / motion-guard
    instances contending the same kernel objects, which is what creates
    cross-application cost propagation (the Figure 1 situation).

    Everything is a pure function of [config.seed]. [scale] linearly
    scales instance counts: 1.0 targets one tenth of the paper's Table 1
    volumes (≈2,600 instances), small enough to analyse in seconds yet
    large enough for stable mining; tests run at 0.05–0.2. *)

type config = {
  seed : int;
  scale : float;
  quantize_running : bool;
  cross_traffic : bool;
  cores : int option;
      (** [None] (default) models unbounded CPU capacity — the regime the
          paper's numbers live in, where contention flows through locks
          and devices. [Some n] engages the engine's [n]-core run-queue
          model for CPU-pressure studies. *)
}

val default_config : config
(** [seed = 42], [scale = 1.0], quantised running events, cross-traffic
    on. *)

val test_config : config
(** Same but [scale = 0.1]. *)

val scaled : float -> config
(** [default_config] at another scale. *)

val build_episode :
  ?cores:int ->
  stream_id:int ->
  prng:Dputil.Prng.t ->
  quantize:bool ->
  cross:bool ->
  Scenarios.template ->
  Dptrace.Stream.t
(** Build and run a single episode (exposed for tests and examples). *)

val generate : config -> Dptrace.Corpus.t

val target_counts : (string * int) list
(** Scenario → instance target at [scale = 1.0] (Table 1 volumes / 10 for
    the named scenarios). *)
