open Dptrace

let c_slices = lazy (Dpobs.Metrics.counter "viz.slices_emitted")
let c_flows = lazy (Dpobs.Metrics.counter "viz.flows_emitted")

type exemplar = {
  x_stream : Stream.t;
  x_instance : Scenario.instance;
  x_label : string;
  x_marks : Event.t list;
}

let label ~cls ~rank (st : Stream.t) (i : Scenario.instance) =
  Printf.sprintf "%s#%d %s %dus (stream %d)" cls rank i.Scenario.scenario
    (Scenario.duration i) st.Stream.id

(* Deterministic exemplar order: duration is the quantity being
   contrasted, so break its ties on the stable (stream id, t0) identity
   of the instance. *)
let by_duration ~slowest (a_st, a_i) (b_st, b_i) =
  let da = Scenario.duration a_i and db = Scenario.duration b_i in
  let c = if slowest then compare db da else compare da db in
  if c <> 0 then c
  else
    compare
      (a_st.Stream.id, a_i.Scenario.t0, a_i.Scenario.tid)
      (b_st.Stream.id, b_i.Scenario.t0, b_i.Scenario.tid)

let take n l =
  let rec go n = function
    | x :: tl when n > 0 -> x :: go (n - 1) tl
    | _ -> []
  in
  go n l

let of_class ~cls ~slowest n pairs =
  List.sort (by_duration ~slowest) pairs
  |> take n
  |> List.mapi (fun k (st, i) ->
         {
           x_stream = st;
           x_instance = i;
           x_label = label ~cls ~rank:(k + 1) st i;
           x_marks = [];
         })

let exemplars_of_classes ?(slow = 3) ?(fast = 3) (c : Dpcore.Classify.t) =
  of_class ~cls:"slow" ~slowest:true slow c.Dpcore.Classify.slow
  @ of_class ~cls:"fast" ~slowest:false fast c.Dpcore.Classify.fast

let exemplars_of_witnesses (ws : Dpcore.Explorer.witness list) =
  List.mapi
    (fun k (w : Dpcore.Explorer.witness) ->
      {
        x_stream = w.Dpcore.Explorer.stream;
        x_instance = w.Dpcore.Explorer.instance;
        x_label =
          Printf.sprintf "%s (matched %dus)"
            (label ~cls:"witness" ~rank:(k + 1) w.Dpcore.Explorer.stream
               w.Dpcore.Explorer.instance)
            w.Dpcore.Explorer.matched_cost;
        x_marks = w.Dpcore.Explorer.chain;
      })
    ws

(* Sentinel tids inside each exemplar's process: real thread tracks keep
   their trace tids; the instance-boundary slice and the waiter counter
   live on tracks of their own. *)
let instance_tid = 999_999
let counter_tid = 999_998

let sig_name components e =
  Signature.name (Dpcore.Component.event_signature_or_top components e)

let export ?(components = Dpcore.Component.drivers) exemplars =
  let w = Dpobs.Trace_writer.create () in
  let slices = ref 0 and flows = ref 0 in
  (* Flow ids must be unique across the whole artifact; wait-event ids
     are only unique per stream, so number the pairs globally in
     emission order instead. *)
  let next_flow = ref 0 in
  List.iteri
    (fun xi x ->
      let pid = xi + 1 in
      let st = x.x_stream and inst = x.x_instance in
      let lo, hi = Timeline.instance_window inst in
      let idx = Stream.shared_index st in
      let events =
        Array.to_list st.Stream.events
        |> List.filter (fun (e : Event.t) ->
               e.Event.ts <= hi && Event.end_ts e >= lo)
      in
      let us ts = float_of_int (ts - lo) in
      Dpobs.Trace_writer.process_name w ~pid x.x_label;
      Dpobs.Trace_writer.thread_name w ~pid ~tid:instance_tid "instance";
      Dpobs.Trace_writer.thread_name w ~pid ~tid:counter_tid "waiters";
      let seen = Hashtbl.create 16 in
      List.iter
        (fun (e : Event.t) ->
          if not (Hashtbl.mem seen e.Event.tid) then begin
            Hashtbl.replace seen e.Event.tid ();
            Dpobs.Trace_writer.thread_name w ~pid ~tid:e.Event.tid
              (Stream.thread_name st e.Event.tid)
          end)
        events;
      (* Instance boundary marker. *)
      Dpobs.Trace_writer.event w ~cat:"instance"
        ~dur_us:(float_of_int (Scenario.duration inst))
        ~ph:'X' ~pid ~tid:instance_tid
        ~ts_us:(us inst.Scenario.t0)
        x.x_label;
      incr slices;
      (* One slice per event; wait slices additionally carry a flow
         arrow from the unwait that ended them. *)
      List.iter
        (fun (e : Event.t) ->
          let name = sig_name components e in
          (match e.Event.kind with
          | Event.Running ->
            incr slices;
            Dpobs.Trace_writer.event w ~cat:"running"
              ~dur_us:(float_of_int e.Event.cost) ~ph:'X' ~pid
              ~tid:e.Event.tid ~ts_us:(us e.Event.ts) name
          | Event.Wait ->
            incr slices;
            Dpobs.Trace_writer.event w ~cat:"wait"
              ~dur_us:(float_of_int e.Event.cost) ~ph:'X' ~pid
              ~tid:e.Event.tid ~ts_us:(us e.Event.ts) name
          | Event.Hw_service ->
            incr slices;
            Dpobs.Trace_writer.event w ~cat:"hw"
              ~dur_us:(float_of_int e.Event.cost) ~ph:'X' ~pid
              ~tid:e.Event.tid ~ts_us:(us e.Event.ts) name
          | Event.Unwait ->
            Dpobs.Trace_writer.event w ~cat:"unwait"
              ~args:[ ("wtid", Dputil.Jsonw.Int e.Event.wtid) ]
              ~ph:'i' ~pid ~tid:e.Event.tid ~ts_us:(us e.Event.ts) name);
          if Event.is_wait e then
            match Stream.find_waker idx e with
            | None -> ()
            | Some u ->
              let id = !next_flow in
              incr next_flow;
              incr flows;
              Dpobs.Trace_writer.event w ~cat:"wake" ~id ~ph:'s' ~pid
                ~tid:u.Event.tid ~ts_us:(us u.Event.ts) "wake";
              Dpobs.Trace_writer.event w ~cat:"wake" ~id ~bind_enclosing:true
                ~ph:'f' ~pid ~tid:e.Event.tid
                ~ts_us:(us (Event.end_ts e))
                "wake")
        events;
      (* Concurrent-waiters counter: +1/-1 change points of every wait
         slice, clamped to the window, accumulated left to right. *)
      let changes =
        List.concat_map
          (fun (e : Event.t) ->
            if Event.is_wait e then
              [ (max e.Event.ts lo, 1); (min (Event.end_ts e) hi, -1) ]
            else [])
          events
        |> List.sort compare
      in
      let level = ref 0 in
      List.iter
        (fun (ts, d) ->
          level := !level + d;
          Dpobs.Trace_writer.event w ~cat:"waiters"
            ~args:[ ("waiters", Dputil.Jsonw.Int !level) ]
            ~ph:'C' ~pid ~tid:counter_tid ~ts_us:(us ts) "concurrent waiters")
        changes;
      (* Pattern-match markers: the witness chain's concrete events. *)
      List.iter
        (fun (e : Event.t) ->
          Dpobs.Trace_writer.event w ~cat:"match"
            ~args:[ ("signature", Dputil.Jsonw.Str (sig_name components e)) ]
            ~ph:'i' ~pid ~tid:e.Event.tid ~ts_us:(us e.Event.ts) "match")
        x.x_marks)
    exemplars;
  Dpobs.Metrics.add (Lazy.force c_slices) !slices;
  Dpobs.Metrics.add (Lazy.force c_flows) !flows;
  Dpobs.Trace_writer.contents w
