(** Corpus → Chrome trace-event JSON (Perfetto / chrome://tracing).

    Where {!Dptrace.Timeline} draws the Figure 1 snapshot as ASCII, this
    module renders the same instance windows as a standard trace-event
    artifact: one process per exemplar instance, one track per thread,
    running/wait/hardware slices named from component signatures, flow
    arrows from each unwait to the wait it ended (the Wait-Graph edges),
    a concurrent-waiters counter track, instance-boundary slices and
    pattern-match markers. Built on {!Dpobs.Trace_writer}, so equal
    inputs export byte-equal artifacts. *)

type exemplar = {
  x_stream : Dptrace.Stream.t;
  x_instance : Dptrace.Scenario.instance;
  x_label : string;  (** Process name in the artifact. *)
  x_marks : Dptrace.Event.t list;
      (** Events to flag with [ph:"i"] markers (e.g. a witness chain). *)
}

val exemplars_of_classes :
  ?slow:int -> ?fast:int -> Dpcore.Classify.t -> exemplar list
(** The [slow] slowest and [fast] fastest instances (default 3 each) of
    a classified scenario, slowest first then fastest first — the
    contrast pair an analyst opens side by side. Deterministic: duration
    ties break on (stream id, t0, tid). *)

val exemplars_of_witnesses : Dpcore.Explorer.witness list -> exemplar list
(** Provenance-resolved witnesses (from [driveperf explain]'s pattern
    drill-down), each carrying its matched chain as markers. *)

val export : ?components:Dpcore.Component.t -> exemplar list -> string
(** The complete JSON document. [components] (default
    {!Dpcore.Component.drivers}) names slices by the paper's per-event
    signature, falling back to the topmost frame. Flow ids are numbered
    globally in emission order, so every [ph:"s"] id pairs with exactly
    one [ph:"f"]. Bumps the [viz.slices_emitted] / [viz.flows_emitted]
    counters. *)
