open Dptrace

type t = { files : string list; diff : Flame.folded }

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir)
  then begin
    mkdir_p (Filename.dirname dir);
    Sys.mkdir dir 0o755
  end

let write_file path text =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc text)

let graphs_of pairs =
  List.map
    (fun ((st : Stream.t), inst) ->
      Dpwaitgraph.Wait_graph.build ~index:(Stream.shared_index st) st inst)
    pairs

let write ?(components = Dpcore.Component.drivers) ?slow ?fast ~dir
    (c : Dpcore.Classify.t) =
  mkdir_p dir;
  let files = ref [] in
  let emit name text =
    let path = Filename.concat dir name in
    write_file path text;
    files := path :: !files
  in
  emit "trace.json"
    (Trace_export.export ~components
       (Trace_export.exemplars_of_classes ?slow ?fast c));
  let slow_pairs = c.Dpcore.Classify.slow
  and fast_pairs = c.Dpcore.Classify.fast in
  let run_slow = Flame.folded_running slow_pairs
  and run_fast = Flame.folded_running fast_pairs in
  emit "flame_running_slow.folded" (Flame.to_folded run_slow);
  emit "flame_running_fast.folded" (Flame.to_folded run_fast);
  emit "flame_running_slow.speedscope.json"
    (Dputil.Jsonw.to_string
       (Flame.to_speedscope
          ~name:(c.Dpcore.Classify.spec.Scenario.name ^ " slow: running time")
          run_slow));
  let awg_slow = Dpcore.Awg.build components (graphs_of slow_pairs)
  and awg_fast = Dpcore.Awg.build components (graphs_of fast_pairs) in
  let f_slow = Flame.folded_awg awg_slow
  and f_fast = Flame.folded_awg awg_fast in
  emit "flame_awg_slow.folded" (Flame.to_folded f_slow);
  emit "flame_awg_fast.folded" (Flame.to_folded f_fast);
  let diff =
    Flame.diff
      ~slow:(Flame.normalize f_slow ~instances:(List.length slow_pairs))
      ~fast:(Flame.normalize f_fast ~instances:(List.length fast_pairs))
  in
  emit "flame_diff.folded" (Flame.to_folded diff);
  emit "flame_diff.speedscope.json"
    (Dputil.Jsonw.to_string
       (Flame.to_speedscope
          ~name:
            (c.Dpcore.Classify.spec.Scenario.name
            ^ " slow-fast: AWG cost per instance")
          diff));
  { files = List.rev !files; diff }
