(** View bundles: everything needed to {e look at} one scenario's
    contrast, written as openable files next to each other.

    Written by [driveperf flame] and, per alert, by the monitor
    ([--view-dir]): a Perfetto trace of the slow/fast exemplars plus
    folded-stack and speedscope flame views per contrast class and the
    slow-vs-fast differential. *)

type t = {
  files : string list;  (** Written paths, in creation order. *)
  diff : Flame.folded;
      (** The slow-minus-fast per-instance AWG differential, ranked —
          what [flame_diff.*] contains, for callers that print it. *)
}

val write :
  ?components:Dpcore.Component.t ->
  ?slow:int ->
  ?fast:int ->
  dir:string ->
  Dpcore.Classify.t ->
  t
(** Write the bundle for one classified scenario into [dir] (created,
    with parents, if missing): [trace.json] (exemplar Perfetto export,
    [slow]/[fast] exemplars each, default 3),
    [flame_running_{slow,fast}.folded], [flame_running_slow.speedscope.json],
    [flame_awg_{slow,fast}.folded], [flame_diff.folded] and
    [flame_diff.speedscope.json]. Deterministic byte-for-byte for equal
    inputs. *)
