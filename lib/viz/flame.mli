(** Flame views of analyzed corpora.

    Two profiles, each emitted as Brendan-Gregg folded stacks (pipe into
    [flamegraph.pl], or drag into speedscope's "import") and as
    speedscope JSON:

    - {e running time by callstack}: distinct running nodes of each
      instance's Wait Graph, stacks root-first, weights in µs;
    - {e AWG cost by signature path}: every aggregated-wait-graph node's
      self cost under its root-to-node path of
      [wait:SIG<-SIG] / [run:SIG] / [hw:SIG] frames.

    The slow-vs-fast {!diff} subtracts the fast class's (per-instance
    normalized) profile from the slow one — the surviving positive
    deltas name the signatures the extra IA_wait accumulated under,
    which is how the [--cores] run-queue regression becomes one
    dominant [wait:kernel!CpuQueue<-...] tower. *)

type folded = (string list * int) list
(** Root-first frame paths with µs weights; canonical form is path-sorted
    with strictly positive weights, one entry per path. *)

val folded_running :
  (Dptrace.Stream.t * Dptrace.Scenario.instance) list -> folded
(** Running time by callstack over the given instances' Wait Graphs
    (distinct nodes only, like the impact analysis). *)

val folded_awg : Dpcore.Awg.t -> folded
(** AWG self cost by signature path: each node contributes
    [max 0 (cost - Σ children cost)] under its path. *)

val normalize : folded -> instances:int -> folded
(** Per-instance average (rounded); entries rounding to 0 drop out.
    Identity when [instances <= 1]. *)

val diff : slow:folded -> fast:folded -> folded
(** Path-wise [slow - fast], positive deltas only, largest first (ties
    path-sorted). Inputs should be normalized per instance first. *)

val to_folded : folded -> string
(** One [frame;frame;frame weight] line per entry, in list order. *)

val to_speedscope : name:string -> folded -> Dputil.Jsonw.t
(** A speedscope "sampled" profile: each folded entry is one sample with
    its weight; [endValue] = Σ weights. Serialise with
    {!Dputil.Jsonw.to_string} (byte-deterministic). *)
