open Dptrace

type folded = (string list * int) list

(* The folded format separates frames with ';' and the weight with a
   space, so neither may appear inside a frame name. *)
let sanitize s =
  String.map (function ' ' | ';' -> '_' | c -> c) s

let frame_of_sig s = sanitize (Signature.name s)

(* Accumulate (path, weight) pairs into a canonical folded list: weights
   summed per path, entries sorted by path, zero-weight entries dropped. *)
module Acc = struct
  type t = (string, string list * int ref) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let add (t : t) path weight =
    if weight > 0 then begin
      let key = String.concat ";" path in
      match Hashtbl.find_opt t key with
      | Some (_, r) -> r := !r + weight
      | None -> Hashtbl.replace t key (path, ref weight)
    end

  let to_folded (t : t) : folded =
    Hashtbl.fold (fun key (path, r) acc -> (key, (path, !r)) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map snd
end

let folded_running pairs =
  let acc = Acc.create () in
  List.iter
    (fun ((st : Stream.t), inst) ->
      let g = Dpwaitgraph.Wait_graph.build ~index:(Stream.shared_index st) st inst in
      Dpwaitgraph.Wait_graph.iter_nodes g (fun n ->
          let e = n.Dpwaitgraph.Wait_graph.event in
          if Event.is_running e then
            let path =
              Callstack.frames e.Event.stack
              |> Array.to_list |> List.rev_map frame_of_sig
            in
            let path = if path = [] then [ "<none>" ] else path in
            Acc.add acc path e.Event.cost))
    pairs;
  Acc.to_folded acc

let frame_of_status = function
  | Dpcore.Awg.Waiting { wait_sig; unwait_sig } ->
    Printf.sprintf "wait:%s<-%s" (frame_of_sig wait_sig)
      (frame_of_sig unwait_sig)
  | Dpcore.Awg.Running s -> "run:" ^ frame_of_sig s
  | Dpcore.Awg.Hw s -> "hw:" ^ frame_of_sig s

let folded_awg (awg : Dpcore.Awg.t) =
  let acc = Acc.create () in
  let rec walk rev_path (n : Dpcore.Awg.node) =
    let rev_path = frame_of_status n.Dpcore.Awg.status :: rev_path in
    let kids = Dpcore.Awg.sorted_children n in
    let kids_cost =
      Array.fold_left (fun s k -> s + k.Dpcore.Awg.cost) 0 kids
    in
    (* Self time: the node's aggregated cost not accounted to any child
       (children happen inside their parent wait's interval). *)
    Acc.add acc (List.rev rev_path) (max 0 (n.Dpcore.Awg.cost - kids_cost));
    Array.iter (walk rev_path) kids
  in
  List.iter (walk []) (Dpcore.Awg.roots awg);
  Acc.to_folded acc

let normalize (f : folded) ~instances =
  if instances <= 1 then f
  else
    List.filter_map
      (fun (path, w) ->
        let w = (w + (instances / 2)) / instances in
        if w > 0 then Some (path, w) else None)
      f

let diff ~(slow : folded) ~(fast : folded) : folded =
  let acc = Hashtbl.create 64 in
  let bump sign (path, w) =
    let key = String.concat ";" path in
    match Hashtbl.find_opt acc key with
    | Some (_, r) -> r := !r + (sign * w)
    | None -> Hashtbl.replace acc key (path, ref (sign * w))
  in
  List.iter (bump 1) slow;
  List.iter (bump (-1)) fast;
  Hashtbl.fold (fun key (path, r) l -> (key, (path, !r)) :: l) acc []
  |> List.filter (fun (_, (_, d)) -> d > 0)
  |> List.sort (fun (ka, (_, da)) (kb, (_, db)) ->
         let c = compare db da in
         if c <> 0 then c else compare ka kb)
  |> List.map snd

let to_folded (f : folded) =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (path, w) ->
      Buffer.add_string buf (String.concat ";" path);
      Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int w);
      Buffer.add_char buf '\n')
    f;
  Buffer.contents buf

let to_speedscope ~name (f : folded) =
  let module J = Dputil.Jsonw in
  let frames = Hashtbl.create 64 in
  let frame_order = ref [] in
  let frame_idx fr =
    match Hashtbl.find_opt frames fr with
    | Some i -> i
    | None ->
      let i = Hashtbl.length frames in
      Hashtbl.replace frames fr i;
      frame_order := fr :: !frame_order;
      i
  in
  let samples =
    List.map (fun (path, _) -> J.Arr (List.map (fun fr -> J.Int (frame_idx fr)) path)) f
  in
  let weights = List.map (fun (_, w) -> J.Int w) f in
  let total = List.fold_left (fun s (_, w) -> s + w) 0 f in
  J.Obj
    [
      ("$schema", J.Str "https://www.speedscope.app/file-format-schema.json");
      ( "shared",
        J.Obj
          [
            ( "frames",
              J.Arr
                (List.rev_map
                   (fun fr -> J.Obj [ ("name", J.Str fr) ])
                   !frame_order) );
          ] );
      ( "profiles",
        J.Arr
          [
            J.Obj
              [
                ("type", J.Str "sampled");
                ("name", J.Str name);
                ("unit", J.Str "microseconds");
                ("startValue", J.Int 0);
                ("endValue", J.Int total);
                ("samples", J.Arr samples);
                ("weights", J.Arr weights);
              ];
          ] );
      ("exporter", J.Str "driveperf");
    ]
