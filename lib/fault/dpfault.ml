type site =
  | Corpus_open
  | Corpus_read
  | Snapshot_write
  | Monitor_stat
  | Monitor_tail
  | Httpd_accept
  | Pool_task

let all_sites =
  [
    Corpus_open; Corpus_read; Snapshot_write; Monitor_stat; Monitor_tail;
    Httpd_accept; Pool_task;
  ]

let site_index = function
  | Corpus_open -> 0
  | Corpus_read -> 1
  | Snapshot_write -> 2
  | Monitor_stat -> 3
  | Monitor_tail -> 4
  | Httpd_accept -> 5
  | Pool_task -> 6

let n_sites = List.length all_sites

let site_name = function
  | Corpus_open -> "corpus.open"
  | Corpus_read -> "corpus.read"
  | Snapshot_write -> "snapshot.write"
  | Monitor_stat -> "monitor.stat"
  | Monitor_tail -> "monitor.tail"
  | Httpd_accept -> "httpd.accept"
  | Pool_task -> "pool.task"

let site_of_name name =
  List.find_opt (fun s -> site_name s = name) all_sites

type kind =
  | Eintr
  | Eagain
  | Fail
  | Short_read
  | Torn_write
  | Stat_race
  | Latency of int

let kind_name = function
  | Eintr -> "eintr"
  | Eagain -> "eagain"
  | Fail -> "fail"
  | Short_read -> "short"
  | Torn_write -> "torn"
  | Stat_race -> "race"
  | Latency ms -> Printf.sprintf "latency%d" ms

exception Injected of { site : site; kind : kind }

let () =
  Printexc.register_printer (function
    | Injected { site; kind } ->
      Some
        (Printf.sprintf "Dpfault.Injected(%s, %s)" (site_name site)
           (kind_name kind))
    | _ -> None)

type rule = { r_kind : kind; r_prob : float; r_attempts : int option }
type plan = { p_seed : int; p_rules : (site * rule) list; p_spec : string }

(* --- parsing --- *)

let presets =
  [
    ( "io-flaky",
      "corpus.open=eagain@0.2,corpus.read=eintr@0.25,monitor.stat=race@0.2,\
       monitor.tail=eintr@0.2,httpd.accept=eintr@0.3" );
    ("torn-writes", "snapshot.write=torn@0.5");
    ( "slow-disk",
      "corpus.open=latency2@0.5,corpus.read=latency1@0.3,\
       pool.task=latency1@0.2" );
  ]

let kind_of_string s =
  match s with
  | "eintr" -> Some Eintr
  | "eagain" -> Some Eagain
  | "fail" -> Some Fail
  | "short" -> Some Short_read
  | "torn" -> Some Torn_write
  | "race" -> Some Stat_race
  | _ ->
    if String.length s > 7 && String.sub s 0 7 = "latency" then
      match int_of_string_opt (String.sub s 7 (String.length s - 7)) with
      | Some ms when ms >= 0 -> Some (Latency ms)
      | _ -> None
    else None

let parse_clause clause =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match String.index_opt clause '=' with
  | None -> fail "fault clause %S: want site=kind@prob[!attempts]" clause
  | Some eq -> (
    let sname = String.sub clause 0 eq in
    let rest = String.sub clause (eq + 1) (String.length clause - eq - 1) in
    match site_of_name sname with
    | None ->
      fail "unknown fault site %S (known: %s)" sname
        (String.concat ", " (List.map site_name all_sites))
    | Some site -> (
      let rest, attempts =
        match String.index_opt rest '!' with
        | None -> (rest, Ok None)
        | Some bang -> (
          let n = String.sub rest (bang + 1) (String.length rest - bang - 1) in
          ( String.sub rest 0 bang,
            match int_of_string_opt n with
            | Some a when a >= 1 -> Ok (Some a)
            | _ -> fail "fault clause %S: bad attempts %S" clause n ))
      in
      let kname, prob =
        match String.index_opt rest '@' with
        | None -> (rest, Ok 1.0)
        | Some at -> (
          let p = String.sub rest (at + 1) (String.length rest - at - 1) in
          ( String.sub rest 0 at,
            match float_of_string_opt p with
            | Some p when p >= 0.0 && p <= 1.0 -> Ok p
            | _ -> fail "fault clause %S: bad probability %S" clause p ))
      in
      match (kind_of_string kname, prob, attempts) with
      | None, _, _ ->
        fail
          "fault clause %S: unknown kind %S (want eintr, eagain, fail, \
           short, torn, race or latencyN)"
          clause kname
      | _, (Error _ as e), _ | _, _, (Error _ as e) -> e
      | Some kind, Ok prob, Ok attempts ->
        Ok (site, { r_kind = kind; r_prob = prob; r_attempts = attempts })))

let parse text =
  match String.index_opt text ':' with
  | None ->
    Error
      (Printf.sprintf
         "fault plan %S: want SEED:SPEC (SPEC a preset — %s — or \
          site=kind@prob[!attempts] clauses)"
         text
         (String.concat ", " (List.map fst presets)))
  | Some colon -> (
    let seed_s = String.sub text 0 colon in
    let spec = String.sub text (colon + 1) (String.length text - colon - 1) in
    match int_of_string_opt (String.trim seed_s) with
    | None -> Error (Printf.sprintf "fault plan %S: bad seed %S" text seed_s)
    | Some seed -> (
      let spec =
        match List.assoc_opt (String.trim spec) presets with
        | Some expansion -> expansion
        | None -> spec
      in
      let clauses =
        String.split_on_char ',' spec
        |> List.map String.trim
        |> List.filter (fun c -> c <> "")
      in
      if clauses = [] then
        Error (Printf.sprintf "fault plan %S: empty spec" text)
      else
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | c :: rest -> (
            match parse_clause c with
            | Error _ as e -> e
            | Ok ((site, _) as r) ->
              if List.mem_assoc site acc then
                Error
                  (Printf.sprintf "fault plan %S: duplicate site %s" text
                     (site_name site))
              else go (r :: acc) rest)
        in
        match go [] clauses with
        | Error _ as e -> e
        | Ok rules ->
          Ok
            {
              p_seed = seed;
              p_rules = rules;
              p_spec = Printf.sprintf "%d:%s" seed spec;
            }))

(* --- the switch --- *)

let armed_flag = Atomic.make false
let plan_cell : plan option Atomic.t = Atomic.make None
let counters = Array.init n_sites (fun _ -> Atomic.make 0)

let install plan =
  Array.iter (fun c -> Atomic.set c 0) counters;
  Atomic.set plan_cell (Some plan);
  Atomic.set armed_flag true

let clear () =
  Atomic.set armed_flag false;
  Atomic.set plan_cell None

let armed () = Atomic.get armed_flag
let current () = Atomic.get plan_cell
let call_count site = Atomic.get counters.(site_index site)

(* --- telemetry (lazy: no registry churn when never armed) --- *)

let injected_c = lazy (Dpobs.Metrics.counter "fault.injected")
let attempts_c = lazy (Dpobs.Metrics.counter "retry.attempts")
let gave_up_c = lazy (Dpobs.Metrics.counter "retry.gave_up")

(* --- the decision function --- *)

(* The draw for call [i] at [site] is a pure function of
   (seed, site, i): a SplitMix64 generator seeded from their mix. The
   golden-ratio multiplier spreads consecutive indices across the seed
   space; [Prng.create] mixes further on every output. *)
let draw plan site i =
  match List.assoc_opt site plan.p_rules with
  | None -> None
  | Some r ->
    let mixed =
      Int64.logxor
        (Int64.mul (Int64.of_int plan.p_seed) 0x9E3779B97F4A7C15L)
        (Int64.of_int (((site_index site + 1) * 0x100000) lxor i))
    in
    let g = Dputil.Prng.create mixed in
    if Dputil.Prng.chance g r.r_prob then Some r.r_kind else None

let check site =
  if not (Atomic.get armed_flag) then None
  else
    match Atomic.get plan_cell with
    | None -> None
    | Some plan -> (
      let i = Atomic.fetch_and_add counters.(site_index site) 1 in
      match draw plan site i with
      | None -> None
      | Some kind ->
        Dpobs.Metrics.incr (Lazy.force injected_c);
        Some kind)

let act site kind =
  match kind with
  | Latency ms -> if ms > 0 then Unix.sleepf (float_of_int ms /. 1000.0)
  | _ -> raise (Injected { site; kind })

let guard site =
  match check site with None -> () | Some kind -> act site kind

(* --- retry --- *)

module Retry = struct
  let default_attempts = 8
  let base_backoff_s = 0.0002
  let max_backoff_s = 0.005

  let budget site =
    match Atomic.get plan_cell with
    | None -> default_attempts
    | Some plan -> (
      match List.assoc_opt site plan.p_rules with
      | Some { r_attempts = Some a; _ } -> a
      | _ -> default_attempts)

  let transient = function
    | Injected _ -> true
    | Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      true
    | _ -> false

  (* Exponential backoff with deterministic jitter: attempt [n] sleeps
     [base * 2^n * j] with [j] in [0.5, 1), the jitter drawn from a
     generator seeded by (plan seed, site, attempt) so a replayed plan
     also replays its sleep schedule. *)
  let backoff site attempt =
    let seed =
      match Atomic.get plan_cell with Some p -> p.p_seed | None -> 0
    in
    let g =
      Dputil.Prng.create
        (Int64.logxor
           (Int64.mul (Int64.of_int seed) 0x2545F4914F6CDD1DL)
           (Int64.of_int (((site_index site + 1) * 0x4000) lxor attempt)))
    in
    let jitter = 0.5 +. Dputil.Prng.float g 0.5 in
    Float.min max_backoff_s
      (base_backoff_s *. float_of_int (1 lsl min attempt 10) *. jitter)

  let run site f =
    let budget = budget site in
    let rec go attempt =
      match f () with
      | v -> v
      | exception e when transient e ->
        if attempt + 1 >= budget then begin
          Dpobs.Metrics.incr (Lazy.force gave_up_c);
          Dpobs.Log.debug "fault: %s gave up after %d attempt(s): %s"
            (site_name site) budget (Printexc.to_string e);
          raise e
        end
        else begin
          Dpobs.Metrics.incr (Lazy.force attempts_c);
          Unix.sleepf (backoff site attempt);
          go (attempt + 1)
        end
    in
    go 0

  let run_default site ~default f =
    match run site f with v -> v | exception e when transient e -> default ()
end

(* --- describe --- *)

let describe plan =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "plan %s (seed %d)\n" plan.p_spec plan.p_seed);
  Buffer.add_string buf
    (Printf.sprintf "%-16s %-10s %6s %9s\n" "site" "kind" "prob" "attempts");
  List.iter
    (fun site ->
      match List.assoc_opt site plan.p_rules with
      | None -> ()
      | Some r ->
        Buffer.add_string buf
          (Printf.sprintf "%-16s %-10s %6.3f %9d\n" (site_name site)
             (kind_name r.r_kind) r.r_prob
             (match r.r_attempts with
             | Some a -> a
             | None -> Retry.default_attempts)))
    all_sites;
  Buffer.contents buf
