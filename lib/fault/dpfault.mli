(** Deterministic fault injection for every I/O boundary.

    The paper's pipeline ran over ~19,500 real-world traces, an
    environment where truncated files, torn writes and stalled ingestion
    are the norm; this module is the harness that proves driveperf
    degrades gracefully under them. Three pieces:

    - a {!plan}: a seeded schedule over named {!site}s, each emitting a
      fault {!kind} (EINTR/EAGAIN, outright failure, short reads, torn
      writes, stat races, injected latency) with a given probability.
      The decision for the [i]-th call at a site is a pure function of
      [(seed, site, i)], so a plan replays bit-identically;
    - a global switch: {!install}/{!clear} arm and disarm the plan.
      A disarmed {!guard} costs one atomic load and one branch
      (mirroring the [Dpobs]/[Provenance] switch pattern), so permanent
      guards on hot paths are free;
    - {!Retry}: bounded exponential backoff with deterministic jitter
      from {!Dputil.Prng} and per-site budgets, the policy the injected
      faults exercise. Counters [fault.injected], [retry.attempts] and
      [retry.gave_up] land in the {!Dpobs.Metrics} registry.

    Thread-safety: per-site call counters are atomic, so guards may fire
    from any domain. Under a pool the {e assignment} of faults to calls
    follows arrival order, but because every fault is either retried or
    contained, analysis results stay bit-identical to a fault-free run
    whenever no stream is quarantined. *)

(** {1 Sites and kinds} *)

(** The guarded I/O boundaries. *)
type site =
  | Corpus_open  (** opening/sniffing a corpus file ([Corpus_dir.load]) *)
  | Corpus_read  (** per-stream corpus reads (pipeline screening) *)
  | Snapshot_write  (** the snapshot cache's tmp-file write *)
  | Monitor_stat  (** the monitor's [Unix.stat] of a tailed file *)
  | Monitor_tail  (** the monitor's re-read of a changed corpus file *)
  | Httpd_accept  (** accepting a /metrics connection *)
  | Pool_task  (** a domain-pool task about to run *)

val all_sites : site list
val site_name : site -> string
(** ["corpus.open"], ["corpus.read"], ["snapshot.write"],
    ["monitor.stat"], ["monitor.tail"], ["httpd.accept"],
    ["pool.task"]. *)

val site_of_name : string -> site option

(** What an injection does at the call it hits. *)
type kind =
  | Eintr  (** the syscall was interrupted; retry is expected to work *)
  | Eagain  (** resource temporarily unavailable *)
  | Fail  (** hard failure; retrying does not help within this call *)
  | Short_read  (** a read returned fewer bytes than asked *)
  | Torn_write  (** a write persisted only a prefix before failing *)
  | Stat_race  (** the file changed (or vanished) under the stat *)
  | Latency of int  (** stall the call for this many milliseconds *)

val kind_name : kind -> string

exception Injected of { site : site; kind : kind }
(** Raised by {!guard} (and {!act}) for every kind except [Latency].
    {!Retry.run} treats it like a transient OS error. *)

(** {1 Plans} *)

type rule = {
  r_kind : kind;
  r_prob : float;  (** chance, in [\[0,1\]], that a call is hit *)
  r_attempts : int option;
      (** per-site retry-budget override; [None] = {!Retry.default_attempts} *)
}

type plan = {
  p_seed : int;
  p_rules : (site * rule) list;  (** at most one rule per site *)
  p_spec : string;  (** the normalised [SEED:SPEC] text *)
}

val parse : string -> (plan, string) result
(** [parse "SEED:SPEC"]. [SPEC] is a preset name ({!presets}) or a
    comma-separated list of clauses [site=kind\@prob] with an optional
    [!attempts] budget suffix, e.g.
    ["7:corpus.read=eintr@0.25,snapshot.write=torn@0.5!3"]. Kinds:
    [eintr], [eagain], [fail], [short], [torn], [race], [latencyN]
    (N milliseconds). *)

val presets : (string * string) list
(** Named specs for CI's fault matrix: [io-flaky] (transient EINTR/EAGAIN
    and stat races on the ingestion path — default budgets absorb all of
    it), [torn-writes] (every snapshot save tears), [slow-disk]
    (injected latency on reads and pool tasks). *)

val describe : plan -> string
(** A site table: one line per rule with kind, probability and retry
    budget — what [driveperf faults describe] prints. *)

(** {1 The switch} *)

val install : plan -> unit
(** Arm [plan] globally and reset every per-site call counter (so a
    reinstalled plan replays from call 0). *)

val clear : unit -> unit
(** Disarm. Guards return to their one-atomic-load fast path. *)

val armed : unit -> bool

val current : unit -> plan option

(** {1 Injection} *)

val draw : plan -> site -> int -> kind option
(** [draw plan site i] is the fault (if any) the plan assigns to the
    [i]-th call at [site] — the pure replayable decision function, also
    what [driveperf faults replay] prints. *)

val check : site -> kind option
(** Armed-path draw for the next call at [site]: advances the site's
    call counter and returns the drawn kind, bumping [fault.injected].
    Returns [None] (for free) when disarmed. Does not raise or sleep —
    callers that need custom handling (e.g. the snapshot's literal torn
    write) branch on the result and finish with {!act}. *)

val act : site -> kind -> unit
(** Apply a drawn kind: [Latency] sleeps, everything else raises
    {!Injected}. *)

val guard : site -> unit
(** [check] then [act] — the one-liner most sites use. *)

val call_count : site -> int
(** Calls seen at [site] since the last {!install}. *)

(** {1 Retry policies} *)

module Retry : sig
  val default_attempts : int
  (** 8: at the presets' probabilities the chance of a budget exhausting
      is below 1e-4 per call, so default budgets absorb [io-flaky]
      without quarantining anything. *)

  val budget : site -> int
  (** The armed plan's [!attempts] override for [site], or
      {!default_attempts}. *)

  val run : site -> (unit -> 'a) -> 'a
  (** Run [f], retrying on {!Injected} and on [EINTR]/[EAGAIN]-class
      [Unix.Unix_error]s with bounded exponential backoff (deterministic
      jitter seeded from the plan and [site]). After the budget is spent
      the last error re-raises; [retry.attempts] and [retry.gave_up]
      count what happened. Other exceptions pass through untouched. *)

  val run_default : site -> default:(unit -> 'a) -> (unit -> 'a) -> 'a
  (** {!run}, but a spent budget falls back to [default] instead of
      raising — the fail-open flavour for sites where degrading beats
      aborting (a stat that reports "unchanged", an accept that reports
      "no connection", a pool task that proceeds unguarded). *)
end
