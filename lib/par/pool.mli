(** A reusable domain pool for data-parallel analysis.

    The pool owns [domains - 1] worker domains draining one shared task
    queue; the calling domain is the remaining unit of parallelism — it
    helps drain the queue while waiting for its own call to complete, so a
    pool of size [n] applies [n]-way parallelism with [n - 1] spawned
    domains, and a pool of size 1 degenerates to plain [List.map] with no
    domain traffic at all.

    Determinism: {!parallel_map} returns results in input order, and
    {!parallel_map_reduce} combines per-chunk partial results left to
    right in chunk order, so for an associative [reduce] the outcome is
    exactly [List.fold_left (fun acc x -> reduce acc (map x)) init xs] —
    bit-identical to the sequential evaluation, whatever the scheduling.

    Exceptions raised by [f] are caught in the workers and re-raised in
    the caller; when several work items fail, the exception of the
    earliest failing chunk (in input order) is the one re-raised. The pool
    itself stays usable after a failed call.

    Telemetry: while [Dpobs.metrics_on ()], the pool maintains the
    [pool.tasks] counter (work items executed), one
    [pool.domain<id>.busy_us] counter per participating domain (time
    spent inside work items — the utilisation numerator) and the
    [pool.queue_depth.max] gauge (peak backlog at enqueue time). With
    metrics off the only cost is one atomic load per task. *)

type t

val create : ?domains:int -> unit -> t
(** [create ?domains ()] spawns a pool of total size [max 1 domains]
    ([domains - 1] worker domains). [domains] defaults to
    {!default_domains}. *)

val size : t -> int
(** Total parallelism of the pool (worker domains + the caller), >= 1. *)

val shutdown : t -> unit
(** Stop and join the worker domains. Idempotent. Only call while no
    [parallel_map] is in flight on the pool. A pool that is never shut
    down does not block process exit; shutting down merely releases the
    domains early. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and shuts it down afterwards,
    also on exception. *)

val parallel_map : ?chunk:int -> t -> ('a -> 'b) -> 'a list -> 'b list
(** [parallel_map pool f xs] is [List.map f xs], computed in parallel over
    chunks of consecutive elements and returned in input order. [chunk]
    (>= 1) overrides the chunk length, which defaults to splitting the
    list into about [4 * size pool] chunks.
    @raise Invalid_argument if [chunk < 1]. *)

val parallel_map_reduce :
  ?chunk:int ->
  t ->
  map:('a -> 'b) ->
  reduce:('b -> 'b -> 'b) ->
  init:'b ->
  'a list ->
  'b
(** [parallel_map_reduce pool ~map ~reduce ~init xs] is
    [List.fold_left (fun acc x -> reduce acc (map x)) init xs] for an
    {e associative} [reduce]: chunks are mapped and reduced in parallel,
    and the per-chunk partials are folded into [init] left to right in
    chunk order, so the association — hence the result, for associative
    [reduce] — matches the sequential fold exactly. *)

val default_domains : unit -> int
(** The pool size used when [?domains] is omitted: the
    [DRIVEPERF_DOMAINS] environment variable when set to a positive
    integer, otherwise [Domain.recommended_domain_count ()]. *)
