(* One shared FIFO of tasks, one mutex, one condition variable. The
   condition is broadcast on every state change a sleeper could be waiting
   for (task enqueued, task completed, shutdown requested); sleepers
   re-check their predicate, so spurious and cross-purpose wakeups are
   harmless. Workers never hold the mutex while running a task. *)

type t = {
  mutex : Mutex.t;
  cond : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t array;
  size : int;
}

(* Telemetry (all behind [Dpobs.metrics_on], one branch when off):
   lifetime task count, per-domain busy time, peak queue depth. The busy
   counter is resolved once per domain through DLS so the per-task cost
   is one hashtable-free lookup. *)

let tasks_counter = lazy (Dpobs.Metrics.counter "pool.tasks")
let queue_depth_gauge = lazy (Dpobs.Metrics.gauge "pool.queue_depth.max")

let busy_key : Dpobs.Metrics.counter option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let busy_counter () =
  match Domain.DLS.get busy_key with
  | Some c -> c
  | None ->
    let c =
      Dpobs.Metrics.counter
        (Printf.sprintf "pool.domain%d.busy_us" (Domain.self () :> int))
    in
    Domain.DLS.set busy_key (Some c);
    c

let default_domains () =
  match Sys.getenv_opt "DRIVEPERF_DOMAINS" with
  | Some s when (match int_of_string_opt (String.trim s) with
                | Some n -> n >= 1
                | None -> false) ->
    int_of_string (String.trim s)
  | Some _ | None -> Domain.recommended_domain_count ()

let rec worker t =
  Mutex.lock t.mutex;
  let rec next () =
    if t.stopping then begin
      Mutex.unlock t.mutex;
      None
    end
    else
      match Queue.take_opt t.queue with
      | Some task ->
        Mutex.unlock t.mutex;
        Some task
      | None ->
        Condition.wait t.cond t.mutex;
        next ()
  in
  match next () with
  | None -> ()
  | Some task ->
    task ();
    worker t

let create ?domains () =
  let size =
    max 1 (match domains with Some n -> n | None -> default_domains ())
  in
  let t =
    {
      mutex = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      workers = [||];
      size;
    }
  in
  t.workers <- Array.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let size t = t.size

let shutdown t =
  Mutex.lock t.mutex;
  if t.stopping then Mutex.unlock t.mutex
  else begin
    t.stopping <- true;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Split [lst] into consecutive chunks of [chunk] elements (the last chunk
   may be shorter). *)
let chunks_of ~chunk lst =
  let rec go acc cur n = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if n = chunk then go (List.rev cur :: acc) [ x ] 1 rest
      else go acc (x :: cur) (n + 1) rest
  in
  go [] [] 0 lst

let resolve_chunk t chunk n =
  match chunk with
  | Some c when c >= 1 -> c
  | Some c -> invalid_arg (Printf.sprintf "Dppar.Pool: chunk %d < 1" c)
  | None ->
    (* ~4 chunks per unit of parallelism smooths imbalanced item costs. *)
    let target = t.size * 4 in
    max 1 ((n + target - 1) / target)

(* Run every thunk of [jobs], each at most once, on whichever domain gets
   to it first; the caller helps drain the queue, then sleeps until its
   last in-flight thunk completes. Results come back in index order; the
   earliest-index exception is re-raised. *)
let run_jobs : 'b. t -> (unit -> 'b) array -> 'b array =
  fun t jobs ->
  let n = Array.length jobs in
  let results = Array.make n None in
  let errors = Array.make n None in
  let remaining = ref n in
  let task i () =
    let t0 = if Dpobs.metrics_on () then Dpobs.now_ns () else 0L in
    (* Fault probe before the job: injected latency stalls this task,
       transient failures retry the probe, and an exhausted budget
       proceeds unguarded — the pool degrades, it never aborts. The
       thunk itself runs exactly once either way. *)
    Dpfault.Retry.run_default Dpfault.Pool_task ~default:ignore (fun () ->
        Dpfault.guard Dpfault.Pool_task);
    (* Distinct domains write distinct slots, and every slot is written
       before the final [remaining] decrement is observed under the
       mutex, so the caller reads fully published values. *)
    (match jobs.(i) () with
    | r -> results.(i) <- Some r
    | exception e -> errors.(i) <- Some e);
    if Dpobs.metrics_on () then begin
      let us = Int64.to_int (Int64.div (Int64.sub (Dpobs.now_ns ()) t0) 1000L) in
      Dpobs.Metrics.add (busy_counter ()) us;
      Dpobs.Metrics.incr (Lazy.force tasks_counter)
    end;
    Mutex.lock t.mutex;
    decr remaining;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex
  in
  Mutex.lock t.mutex;
  for i = 0 to n - 1 do
    Queue.add (task i) t.queue
  done;
  if Dpobs.metrics_on () then
    Dpobs.Metrics.set_max (Lazy.force queue_depth_gauge) (Queue.length t.queue);
  Condition.broadcast t.cond;
  let rec drain () =
    match Queue.take_opt t.queue with
    | Some task ->
      Mutex.unlock t.mutex;
      task ();
      Mutex.lock t.mutex;
      drain ()
    | None ->
      if !remaining > 0 then begin
        Condition.wait t.cond t.mutex;
        drain ()
      end
  in
  drain ();
  Mutex.unlock t.mutex;
  Array.iter (function Some e -> raise e | None -> ()) errors;
  Array.map (function Some r -> r | None -> assert false) results

let parallel_map ?chunk t f lst =
  let n = List.length lst in
  let chunk = resolve_chunk t chunk n in
  if t.size <= 1 || n <= chunk then List.map f lst
  else
    let chunks = Array.of_list (chunks_of ~chunk lst) in
    let jobs = Array.map (fun items () -> List.map f items) chunks in
    run_jobs t jobs |> Array.to_list |> List.concat

let parallel_map_reduce ?chunk t ~map ~reduce ~init lst =
  match lst with
  | [] -> init
  | lst ->
    let n = List.length lst in
    let chunk = resolve_chunk t chunk n in
    let partial = function
      | [] -> assert false (* chunks_of never yields an empty chunk *)
      | x :: rest -> List.fold_left (fun acc y -> reduce acc (map y)) (map x) rest
    in
    (* [~chunk:1]: the items are already chunks. *)
    let partials = parallel_map ~chunk:1 t partial (chunks_of ~chunk lst) in
    List.fold_left reduce init partials
