(* Self-telemetry: spans, metrics registry, export, logging, progress.
   See dpobs.mli for the contract. Design invariants:

   - Disabled sites cost one atomic load + branch and allocate nothing.
   - Span recording is per-domain: each domain appends to its own buffer
     (registered globally on first use), so recording takes no lock and
     the pool's workers never contend on telemetry.
   - Merging (export, durations) is only done at quiescence. *)

let now_ns = Monotonic_clock.now

let spans_flag = Atomic.make false
let metrics_flag = Atomic.make false
let spans_on () = Atomic.get spans_flag
let metrics_on () = Atomic.get metrics_flag

let enable ?(spans = true) ?(metrics = true) () =
  if spans then Atomic.set spans_flag true;
  if metrics then Atomic.set metrics_flag true

let disable () =
  Atomic.set spans_flag false;
  Atomic.set metrics_flag false

(* --- logging --- *)

module Log = struct
  type level = Dputil.Logf.level = Error | Warn | Info | Debug

  let set_level = Dputil.Logf.set_level
  let level = Dputil.Logf.level

  let level_of_string s =
    match String.lowercase_ascii (String.trim s) with
    | "error" -> Ok Error
    | "warn" | "warning" -> Ok Warn
    | "info" -> Ok Info
    | "debug" -> Ok Debug
    | other -> Error (Printf.sprintf "unknown log level %S" other)

  let init_from_env () =
    match Sys.getenv_opt "DRIVEPERF_LOG" with
    | None -> ()
    | Some s -> (
      match level_of_string s with
      | Ok l -> set_level l
      | Error msg -> Dputil.Logf.warn "DRIVEPERF_LOG: %s" msg)

  let error fmt = Dputil.Logf.logf Dputil.Logf.Error fmt
  let warn fmt = Dputil.Logf.logf Dputil.Logf.Warn fmt
  let info fmt = Dputil.Logf.logf Dputil.Logf.Info fmt
  let debug fmt = Dputil.Logf.logf Dputil.Logf.Debug fmt
end

(* --- metrics --- *)

module Metrics = struct
  type counter = {
    c_name : string;
    cell : int Atomic.t;
    mutable watcher : (int -> unit) option;
  }

  type gauge = { g_name : string; g_cell : int Atomic.t }

  let sample_cap = 65536

  type histogram = {
    h_name : string;
    h_mutex : Mutex.t;
    mutable kept : float array;
    mutable kept_len : int;
    mutable h_count : int;
    mutable h_sum : float;
    mutable h_min : float;
    mutable h_max : float;
  }

  type metric = C of counter | G of gauge | H of histogram

  let table : (string, metric) Hashtbl.t = Hashtbl.create 64
  let table_mutex = Mutex.create ()

  (* Idempotent get-or-create; the registry survives enable/disable. *)
  let intern name mk unpack =
    Mutex.lock table_mutex;
    let m =
      match Hashtbl.find_opt table name with
      | Some m -> m
      | None ->
        let m = mk () in
        Hashtbl.replace table name m;
        m
    in
    Mutex.unlock table_mutex;
    match unpack m with
    | Some v -> v
    | None ->
      invalid_arg
        (Printf.sprintf "Dpobs.Metrics: %S already registered as another kind"
           name)

  let counter name =
    intern name
      (fun () -> C { c_name = name; cell = Atomic.make 0; watcher = None })
      (function C c -> Some c | _ -> None)

  let gauge name =
    intern name
      (fun () -> G { g_name = name; g_cell = Atomic.make 0 })
      (function G g -> Some g | _ -> None)

  let histogram name =
    intern name
      (fun () ->
        H
          {
            h_name = name;
            h_mutex = Mutex.create ();
            kept = [||];
            kept_len = 0;
            h_count = 0;
            h_sum = 0.0;
            h_min = infinity;
            h_max = neg_infinity;
          })
      (function H h -> Some h | _ -> None)

  let add c n =
    if Atomic.get metrics_flag then begin
      let v = Atomic.fetch_and_add c.cell n + n in
      match c.watcher with Some f -> f v | None -> ()
    end

  let incr c = add c 1

  let set g v = if Atomic.get metrics_flag then Atomic.set g.g_cell v

  let rec set_max g v =
    if Atomic.get metrics_flag then begin
      let cur = Atomic.get g.g_cell in
      if v > cur && not (Atomic.compare_and_set g.g_cell cur v) then set_max g v
    end

  let observe h x =
    if Atomic.get metrics_flag then begin
      Mutex.lock h.h_mutex;
      h.h_count <- h.h_count + 1;
      h.h_sum <- h.h_sum +. x;
      if x < h.h_min then h.h_min <- x;
      if x > h.h_max then h.h_max <- x;
      if h.kept_len < sample_cap then begin
        if h.kept_len = Array.length h.kept then begin
          let fresh = Array.make (max 64 (2 * h.kept_len)) 0.0 in
          Array.blit h.kept 0 fresh 0 h.kept_len;
          h.kept <- fresh
        end;
        h.kept.(h.kept_len) <- x;
        h.kept_len <- h.kept_len + 1
      end;
      Mutex.unlock h.h_mutex
    end

  let counter_value c = Atomic.get c.cell
  let gauge_value g = Atomic.get g.g_cell

  type hstats = {
    count : int;
    sum : float;
    min : float;
    max : float;
    samples : float array;
  }

  type value = Counter of int | Gauge of int | Histogram of hstats

  let snapshot_h h =
    Mutex.lock h.h_mutex;
    let s =
      {
        count = h.h_count;
        sum = h.h_sum;
        min = (if h.h_count = 0 then 0.0 else h.h_min);
        max = (if h.h_count = 0 then 0.0 else h.h_max);
        samples = Array.sub h.kept 0 h.kept_len;
      }
    in
    Mutex.unlock h.h_mutex;
    s

  let dump ?(prefix = "") () =
    let starts_with s = String.length s >= String.length prefix
      && String.sub s 0 (String.length prefix) = prefix
    in
    Mutex.lock table_mutex;
    let entries = Hashtbl.fold (fun k m acc -> (k, m) :: acc) table [] in
    Mutex.unlock table_mutex;
    entries
    |> List.filter (fun (k, _) -> starts_with k)
    |> List.map (fun (k, m) ->
           ( k,
             match m with
             | C c -> Counter (counter_value c)
             | G g -> Gauge (gauge_value g)
             | H h -> Histogram (snapshot_h h) ))
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  let render ?prefix () =
    let buf = Buffer.create 1024 in
    List.iter
      (fun (name, v) ->
        match v with
        | Counter n | Gauge n ->
          Buffer.add_string buf (Printf.sprintf "%s = %d\n" name n)
        | Histogram h ->
          Buffer.add_string buf
            (Printf.sprintf "%s: count=%d sum=%.3f min=%.3f mean=%.3f max=%.3f\n"
               name h.count h.sum h.min
               (Dputil.Stats.ratio h.sum (float_of_int h.count))
               h.max);
          (* Percentile estimates over the kept reservoir — the same
             p50/p90/p99 the JSON export reports. *)
          if Array.length h.samples > 0 then begin
            let p q = Dputil.Stats.percentile h.samples q in
            Buffer.add_string buf
              (Printf.sprintf "  p50=%.3f p90=%.3f p99=%.3f\n" (p 50.0)
                 (p 90.0) (p 99.0))
          end;
          if Array.length h.samples > 1 then
            String.split_on_char '\n'
              (Dputil.Histogram.render ~width:40
                 (Dputil.Histogram.create ~buckets:8 h.samples))
            |> List.iter (fun line ->
                   if line <> "" then
                     Buffer.add_string buf ("  " ^ line ^ "\n")))
      (dump ?prefix ());
    Buffer.contents buf

  let watch c f = c.watcher <- Some f
  let unwatch c = c.watcher <- None

  (* Help strings, keyed by the metric name *before* any label block, so
     one description covers every labelled series of a family. *)
  let help_table : (string, string) Hashtbl.t = Hashtbl.create 16
  let help_mutex = Mutex.create ()

  let describe name text =
    Mutex.lock help_mutex;
    Hashtbl.replace help_table name text;
    Mutex.unlock help_mutex

  let help name =
    Mutex.lock help_mutex;
    let h = Hashtbl.find_opt help_table name in
    Mutex.unlock help_mutex;
    h

  (* OpenMetrics-style label escaping: backslash, double quote, newline.
     The label block is baked into the registry name, so two label sets
     are two independent series of the same family. *)
  let escape_label_value v =
    let buf = Buffer.create (String.length v + 2) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string buf "\\\\"
        | '"' -> Buffer.add_string buf "\\\""
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      v;
    Buffer.contents buf

  let labelled name labels =
    match labels with
    | [] -> name
    | labels ->
      let buf = Buffer.create 64 in
      Buffer.add_string buf name;
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf k;
          Buffer.add_string buf "=\"";
          Buffer.add_string buf (escape_label_value v);
          Buffer.add_char buf '"')
        labels;
      Buffer.add_char buf '}';
      Buffer.contents buf

  let reset () =
    Mutex.lock table_mutex;
    let entries = Hashtbl.fold (fun _ m acc -> m :: acc) table [] in
    Mutex.unlock table_mutex;
    List.iter
      (function
        | C c -> Atomic.set c.cell 0
        | G g -> Atomic.set g.g_cell 0
        | H h ->
          Mutex.lock h.h_mutex;
          h.kept <- [||];
          h.kept_len <- 0;
          h.h_count <- 0;
          h.h_sum <- 0.0;
          h.h_min <- infinity;
          h.h_max <- neg_infinity;
          Mutex.unlock h.h_mutex)
      entries
end

(* --- spans --- *)

module Span = struct
  type phase = B | E

  type event = {
    name : string;
    phase : phase;
    tid : int;
    ts_ns : int64;
    args : (string * string) list;
  }

  let dummy = { name = ""; phase = E; tid = 0; ts_ns = 0L; args = [] }

  type buf = { tid : int; mutable evs : event array; mutable len : int }

  (* Buffers of every domain that ever recorded, registration order.
     Buffers outlive their domain (pool workers are joined long before
     export); merging reads them only at quiescence. *)
  let registry : buf list ref = ref []
  let registry_mutex = Mutex.create ()

  let key : buf option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

  let buffer () =
    match Domain.DLS.get key with
    | Some b -> b
    | None ->
      let b =
        { tid = (Domain.self () :> int); evs = Array.make 1024 dummy; len = 0 }
      in
      Mutex.lock registry_mutex;
      registry := b :: !registry;
      Mutex.unlock registry_mutex;
      Domain.DLS.set key (Some b);
      b

  let push b ev =
    if b.len = Array.length b.evs then begin
      let fresh = Array.make (2 * b.len) dummy in
      Array.blit b.evs 0 fresh 0 b.len;
      b.evs <- fresh
    end;
    b.evs.(b.len) <- ev;
    b.len <- b.len + 1

  let with_span ?args name f =
    if not (Atomic.get spans_flag) then f ()
    else begin
      let b = buffer () in
      push b
        {
          name;
          phase = B;
          tid = b.tid;
          ts_ns = now_ns ();
          args = (match args with None -> [] | Some a -> a);
        };
      Fun.protect
        ~finally:(fun () ->
          (* [f] returns on the domain it started on; [buffer] re-fetches
             the DLS in case [f] itself recorded and grew the buffer. *)
          let b = buffer () in
          push b { name; phase = E; tid = b.tid; ts_ns = now_ns (); args = [] })
        f
    end

  let buffers () =
    Mutex.lock registry_mutex;
    let bufs = !registry in
    Mutex.unlock registry_mutex;
    bufs

  let buffer_count () = List.length (buffers ())

  let events () =
    (* Tag each event with (buffer index, position) so that ties on the
       timestamp preserve every domain's own recording order. *)
    let tagged = ref [] in
    List.iteri
      (fun bi b ->
        for i = b.len - 1 downto 0 do
          tagged := (b.evs.(i).ts_ns, bi, i, b.evs.(i)) :: !tagged
        done)
      (buffers ());
    List.sort
      (fun (ta, ba, ia, _) (tb, bb, ib, _) ->
        match Int64.compare ta tb with
        | 0 -> ( match compare ba bb with 0 -> compare ia ib | c -> c)
        | c -> c)
      !tagged
    |> List.map (fun (_, _, _, e) -> e)

  let clear () = List.iter (fun b -> b.len <- 0) (buffers ())

  let durations () =
    let totals : (string, int ref * int64 ref) Hashtbl.t = Hashtbl.create 32 in
    let stacks : (int, (string * int64) list ref) Hashtbl.t = Hashtbl.create 8 in
    let stack_of tid =
      match Hashtbl.find_opt stacks tid with
      | Some s -> s
      | None ->
        let s = ref [] in
        Hashtbl.replace stacks tid s;
        s
    in
    List.iter
      (fun (ev : event) ->
        let stack = stack_of ev.tid in
        match ev.phase with
        | B -> stack := (ev.name, ev.ts_ns) :: !stack
        | E -> (
          match !stack with
          | (name, t0) :: rest when name = ev.name ->
            stack := rest;
            let count, total =
              match Hashtbl.find_opt totals name with
              | Some cell -> cell
              | None ->
                let cell = (ref 0, ref 0L) in
                Hashtbl.replace totals name cell;
                cell
            in
            Stdlib.incr count;
            total := Int64.add !total (Int64.sub ev.ts_ns t0)
          | _ -> (* unmatched close: drop *) ()))
      (events ());
    Hashtbl.fold (fun name (c, t) acc -> (name, !c, !t) :: acc) totals []
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
end

(* --- shared Chrome trace-event writer --- *)

module Trace_writer = struct
  (* One incremental writer behind every Chrome-trace artifact the tool
     emits — the engine's own spans (self-telemetry, below) and the
     corpus exports of dpviz. Field order is fixed per record kind and
     the timestamp rendering is a pure function of the input, so equal
     event sequences always serialise to equal bytes. *)

  type t = { buf : Buffer.t; mutable written : int }

  let create ?(initial_size = 65536) () =
    let buf = Buffer.create initial_size in
    Buffer.add_string buf "{\"traceEvents\":[";
    { buf; written = 0 }

  let add_json_string buf s =
    Buffer.add_char buf '"';
    String.iter
      (fun ch ->
        match ch with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'

  let add_args buf args =
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        add_json_string buf k;
        Buffer.add_char buf ':';
        Buffer.add_string buf (Dputil.Jsonw.to_string ~minify:true v))
      args;
    Buffer.add_char buf '}'

  let sep t =
    if t.written > 0 then Buffer.add_char t.buf ',';
    t.written <- t.written + 1

  (* Metadata records keep their historical exact shape (integral ts). *)
  let meta t ~pid ~tid ~kind name =
    sep t;
    Buffer.add_string t.buf
      (Printf.sprintf "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\
                       \"ts\":0,\"args\":{\"name\":"
         kind pid tid);
    add_json_string t.buf name;
    Buffer.add_string t.buf "}}"

  let process_name t ~pid name = meta t ~pid ~tid:0 ~kind:"process_name" name
  let thread_name t ~pid ~tid name = meta t ~pid ~tid ~kind:"thread_name" name

  let event t ?cat ?(args = []) ?id ?(bind_enclosing = false) ?dur_us ~ph
      ~pid ~tid ~ts_us name =
    sep t;
    let buf = t.buf in
    Buffer.add_string buf "{\"name\":";
    add_json_string buf name;
    (match cat with
    | Some c ->
      Buffer.add_string buf ",\"cat\":";
      add_json_string buf c
    | None -> ());
    Buffer.add_string buf
      (Printf.sprintf ",\"ph\":\"%c\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f" ph
         pid tid ts_us);
    (match dur_us with
    | Some d -> Buffer.add_string buf (Printf.sprintf ",\"dur\":%.3f" d)
    | None -> ());
    (match id with
    | Some i -> Buffer.add_string buf (Printf.sprintf ",\"id\":%d" i)
    | None -> ());
    if bind_enclosing then Buffer.add_string buf ",\"bp\":\"e\"";
    (match args with
    | [] -> ()
    | args ->
      Buffer.add_string buf ",\"args\":";
      add_args buf args);
    Buffer.add_char buf '}'

  let events_written t = t.written
  let contents t = Buffer.contents t.buf ^ "],\"displayTimeUnit\":\"ms\"}"
end

(* --- export --- *)

module Export = struct
  let add_json_string = Trace_writer.add_json_string

  let chrome_trace () =
    let events = Span.events () in
    let t0 = match events with [] -> 0L | e :: _ -> e.Span.ts_ns in
    let w = Trace_writer.create () in
    Trace_writer.process_name w ~pid:1 "driveperf";
    let tids = Hashtbl.create 8 in
    List.iter
      (fun (e : Span.event) ->
        if not (Hashtbl.mem tids e.Span.tid) then begin
          Hashtbl.replace tids e.Span.tid ();
          Trace_writer.thread_name w ~pid:1 ~tid:e.Span.tid
            (Printf.sprintf "domain %d" e.Span.tid)
        end)
      events;
    List.iter
      (fun (e : Span.event) ->
        Trace_writer.event w ~cat:"driveperf"
          ~args:
            (List.map (fun (k, v) -> (k, Dputil.Jsonw.Str v)) e.Span.args)
          ~ph:(match e.Span.phase with Span.B -> 'B' | Span.E -> 'E')
          ~pid:1 ~tid:e.Span.tid
          ~ts_us:(Int64.to_float (Int64.sub e.Span.ts_ns t0) /. 1000.0)
          e.Span.name)
      events;
    Trace_writer.contents w

  let write_file path text =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc text)

  let write_chrome_trace path = write_file path (chrome_trace ())

  let metrics_json () =
    let entries = Metrics.dump () in
    let buf = Buffer.create 4096 in
    let section kind pick =
      let first = ref true in
      Buffer.add_char buf '{';
      List.iter
        (fun (name, v) ->
          match pick v with
          | None -> ()
          | Some text ->
            if not !first then Buffer.add_char buf ',';
            first := false;
            add_json_string buf name;
            Buffer.add_char buf ':';
            Buffer.add_string buf text)
        entries;
      Buffer.add_char buf '}';
      ignore kind
    in
    Buffer.add_string buf "{\"counters\":";
    section "counters" (function
      | Metrics.Counter n -> Some (string_of_int n)
      | _ -> None);
    Buffer.add_string buf ",\"gauges\":";
    section "gauges" (function
      | Metrics.Gauge n -> Some (string_of_int n)
      | _ -> None);
    Buffer.add_string buf ",\"histograms\":";
    section "histograms" (function
      | Metrics.Histogram h ->
        Some
          (Printf.sprintf
             "{\"count\":%d,\"sum\":%.6f,\"min\":%.6f,\"max\":%.6f,\
              \"mean\":%.6f,\"p50\":%.6f,\"p90\":%.6f,\"p99\":%.6f}"
             h.Metrics.count h.Metrics.sum h.Metrics.min h.Metrics.max
             (Dputil.Stats.ratio h.Metrics.sum (float_of_int h.Metrics.count))
             (Dputil.Stats.percentile h.Metrics.samples 50.0)
             (Dputil.Stats.percentile h.Metrics.samples 90.0)
             (Dputil.Stats.percentile h.Metrics.samples 99.0))
      | _ -> None);
    Buffer.add_char buf '}';
    Buffer.contents buf

  let write_metrics path = write_file path (metrics_json ())

  (* --- OpenMetrics text exposition --- *)

  (* Shortest-roundtrip float, as in Dputil.Jsonw: a 12-significant-digit
     rendering when it reparses exactly, the 17-digit one otherwise. *)
  let om_float x =
    if Float.is_integer x && Float.abs x < 1e15 then
      Printf.sprintf "%.1f" x
    else
      let s = Printf.sprintf "%.12g" x in
      if float_of_string s = x then s else Printf.sprintf "%.17g" x

  (* A registry name [monitor.alerts{rule="x"}] splits into the family
     [monitor.alerts] (sanitised to the OpenMetrics charset) and the
     label block, kept verbatim — Metrics.labelled already escaped it. *)
  let split_labels name =
    match String.index_opt name '{' with
    | None -> (name, "")
    | Some i ->
      let family = String.sub name 0 i in
      let rest = String.sub name i (String.length name - i) in
      (family, rest)

  let sanitize_family name =
    let buf = Buffer.create (String.length name) in
    String.iteri
      (fun i c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | ':' | '_' -> Buffer.add_char buf c
        | '0' .. '9' ->
          if i = 0 then Buffer.add_char buf '_';
          Buffer.add_char buf c
        | _ -> Buffer.add_char buf '_')
      name;
    Buffer.contents buf

  let escape_help text =
    let buf = Buffer.create (String.length text) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      text;
    Buffer.contents buf

  let kind_of = function
    | Metrics.Counter _ -> "counter"
    | Metrics.Gauge _ -> "gauge"
    | Metrics.Histogram _ -> "summary"

  let openmetrics () =
    let entries = Metrics.dump () in
    let buf = Buffer.create 8192 in
    (* Entries arrive name-sorted; every series of a family shares the
       raw prefix so one pass with a current-family watermark groups the
       exposition correctly (TYPE/HELP once, then the samples). *)
    let current = ref ("", "") in
    List.iter
      (fun (name, v) ->
        let raw_family, labels = split_labels name in
        let family = sanitize_family raw_family in
        let kind = kind_of v in
        if !current <> (family, kind) then begin
          current := (family, kind);
          Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" family kind);
          match Metrics.help raw_family with
          | Some text ->
            Buffer.add_string buf
              (Printf.sprintf "# HELP %s %s\n" family (escape_help text))
          | None -> ()
        end;
        let with_extra extra =
          (* Merge an extra label into an existing (or absent) block. *)
          match (labels, extra) with
          | "", "" -> ""
          | "", e -> "{" ^ e ^ "}"
          | l, "" -> l
          | l, e ->
            "{" ^ String.sub l 1 (String.length l - 2) ^ "," ^ e ^ "}"
        in
        match v with
        | Metrics.Counter n ->
          Buffer.add_string buf
            (Printf.sprintf "%s_total%s %d\n" family (with_extra "") n)
        | Metrics.Gauge n ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" family (with_extra "") n)
        | Metrics.Histogram h ->
          let q p =
            if Array.length h.Metrics.samples = 0 then 0.0
            else Dputil.Stats.percentile h.Metrics.samples p
          in
          List.iter
            (fun (quant, value) ->
              Buffer.add_string buf
                (Printf.sprintf "%s%s %s\n" family
                   (with_extra (Printf.sprintf "quantile=\"%s\"" quant))
                   (om_float value)))
            [ ("0.5", q 50.0); ("0.9", q 90.0); ("0.99", q 99.0) ];
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" family (with_extra "")
               h.Metrics.count);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" family (with_extra "")
               (om_float h.Metrics.sum)))
      entries;
    Buffer.add_string buf "# EOF\n";
    Buffer.contents buf

  let write_openmetrics path = write_file path (openmetrics ())
end

(* --- progress --- *)

module Progress = struct
  type t = {
    label : string;
    total : int;
    counter : Metrics.counter;
    start_ns : int64;
    render_mutex : Mutex.t;  (* one domain draws at a time *)
    mutable last_render_ns : int64;
    mutable last_width : int;
  }

  let is_tty () = Unix.isatty Unix.stderr

  let draw t v ~final =
    let now = now_ns () in
    let due =
      final || Int64.sub now t.last_render_ns >= 100_000_000L (* 10 Hz *)
    in
    if due then begin
      t.last_render_ns <- now;
      let elapsed = Int64.to_float (Int64.sub now t.start_ns) /. 1e9 in
      let rate = if elapsed > 0.0 then float_of_int v /. elapsed else 0.0 in
      let eta =
        if rate > 0.0 && v < t.total then
          Printf.sprintf "ETA %.1fs" (float_of_int (t.total - v) /. rate)
        else "ETA -"
      in
      let line =
        Printf.sprintf "%s: %d/%d (%.1f/s, %s)" t.label v t.total rate eta
      in
      let pad = max 0 (t.last_width - String.length line) in
      t.last_width <- String.length line;
      Printf.eprintf "\r%s%s%!" line (String.make pad ' ')
    end

  let on_update t v =
    (* Watchers fire from whichever domain bumps the counter; never block
       a worker on the terminal. *)
    if Mutex.try_lock t.render_mutex then begin
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.render_mutex)
        (fun () -> draw t v ~final:false)
    end

  let start ~label ~total counter =
    if not (is_tty ()) then None
    else begin
      enable ~spans:false ~metrics:true ();
      let t =
        {
          label;
          total;
          counter;
          start_ns = now_ns ();
          render_mutex = Mutex.create ();
          last_render_ns = 0L;
          last_width = 0;
        }
      in
      Metrics.watch counter (on_update t);
      Some t
    end

  let finish t =
    Metrics.unwatch t.counter;
    Mutex.lock t.render_mutex;
    draw t (Metrics.counter_value t.counter) ~final:true;
    Printf.eprintf "\r%s\r%!" (String.make t.last_width ' ');
    Mutex.unlock t.render_mutex

  (* Free-form status line for long-running modes (the monitor
     dashboard): same tty gating, same 10 Hz rate limit, but the caller
     pushes whole lines instead of watching a counter. *)
  type line = {
    l_mutex : Mutex.t;
    mutable l_last_render_ns : int64;
    mutable l_last_width : int;
  }

  let line_start () =
    if not (is_tty ()) then None
    else
      Some { l_mutex = Mutex.create (); l_last_render_ns = 0L; l_last_width = 0 }

  let line_draw l text ~final =
    let now = now_ns () in
    if final || Int64.sub now l.l_last_render_ns >= 100_000_000L then begin
      l.l_last_render_ns <- now;
      let pad = max 0 (l.l_last_width - String.length text) in
      l.l_last_width <- String.length text;
      Printf.eprintf "\r%s%s%!" text (String.make pad ' ')
    end

  let line_update l text =
    if Mutex.try_lock l.l_mutex then
      Fun.protect
        ~finally:(fun () -> Mutex.unlock l.l_mutex)
        (fun () -> line_draw l text ~final:false)

  let line_set l text =
    Mutex.lock l.l_mutex;
    line_draw l text ~final:true;
    Mutex.unlock l.l_mutex

  let line_finish l =
    Mutex.lock l.l_mutex;
    Printf.eprintf "\r%s\r%!" (String.make l.l_last_width ' ');
    l.l_last_width <- 0;
    Mutex.unlock l.l_mutex
end
