(** Self-telemetry for the analysis engine.

    The paper's thesis is that performance is comprehended from execution
    traces; this module turns the same lens on driveperf itself. Four
    pieces:

    - {!Span}: nestable timed spans over the monotonic clock, recorded
      into one buffer per domain so instrumentation is safe (and
      contention-free) under [Dppar.Pool]; buffers are merged only at
      export time.
    - {!Metrics}: a process-wide registry of named counters, gauges and
      histograms with atomic updates.
    - {!Export}: Chrome trace-event JSON (loadable in Perfetto /
      about:tracing; pid = process, tid = domain) and a flat metrics dump.
    - {!Log}: the user-facing leveled logger over {!Dputil.Logf}.

    Everything is off by default. A disabled instrumentation site costs
    one atomic load and one branch — {!Span.with_span} is a tail call to
    its thunk, allocates nothing, and creates no buffers — so permanent
    instrumentation of hot paths is free until someone passes
    [--trace-out] or [--metrics-out].

    Recording is multi-domain safe. Merging ({!Span.events}, {!Export})
    assumes quiescence: call it after the parallel work whose spans you
    want has completed, e.g. at command exit. *)

val now_ns : unit -> int64
(** Monotonic clock, nanoseconds from an arbitrary origin. *)

val enable : ?spans:bool -> ?metrics:bool -> unit -> unit
(** Switch recording on. [spans] and [metrics] both default to [true];
    passing [~spans:false] (resp. [~metrics:false]) leaves that switch
    untouched rather than clearing it. *)

val disable : unit -> unit
(** Switch both spans and metrics off. Already-recorded data is kept. *)

val spans_on : unit -> bool
val metrics_on : unit -> bool

(** {1 Leveled logging} *)

module Log : sig
  type level = Dputil.Logf.level = Error | Warn | Info | Debug

  val set_level : level -> unit
  (** Default {!Warn}: errors and warnings print, info/debug are silent. *)

  val level : unit -> level

  val level_of_string : string -> (level, string) result
  (** Accepts "error", "warn"/"warning", "info", "debug" (any case). *)

  val init_from_env : unit -> unit
  (** Apply the [DRIVEPERF_LOG] environment variable, if set to a valid
      level name; an invalid value logs a warning and changes nothing. *)

  val error : ('a, Format.formatter, unit, unit) format4 -> 'a
  val warn : ('a, Format.formatter, unit, unit) format4 -> 'a
  val info : ('a, Format.formatter, unit, unit) format4 -> 'a
  val debug : ('a, Format.formatter, unit, unit) format4 -> 'a
end

(** {1 Metrics registry} *)

module Metrics : sig
  type counter
  type gauge
  type histogram

  val counter : string -> counter
  (** Get or create the counter [name]. Registration is idempotent: the
      same name always yields the same cell.
      @raise Invalid_argument if [name] is registered as another kind. *)

  val gauge : string -> gauge
  val histogram : string -> histogram

  val add : counter -> int -> unit
  (** Atomic; a no-op while {!metrics_on} is false. *)

  val incr : counter -> unit

  val set : gauge -> int -> unit
  val set_max : gauge -> int -> unit
  (** Raise the gauge to [v] if above its current value (atomic). *)

  val observe : histogram -> float -> unit
  (** Histograms track count/sum/min/max exactly and retain the first
      65536 samples for percentile and bucket rendering. *)

  val counter_value : counter -> int
  val gauge_value : gauge -> int

  type hstats = {
    count : int;
    sum : float;
    min : float;  (** 0 when empty. *)
    max : float;
    samples : float array;  (** The retained prefix, possibly truncated. *)
  }

  type value = Counter of int | Gauge of int | Histogram of hstats

  val dump : ?prefix:string -> unit -> (string * value) list
  (** Name-sorted snapshot, optionally restricted to names starting with
      [prefix]. *)

  val render : ?prefix:string -> unit -> string
  (** Flat text: one [name = value] line per counter/gauge; per
      histogram, a summary line, a [p50/p90/p99] percentile line
      (estimated over the kept sample reservoir, matching the JSON
      export) and an ASCII {!Dputil.Histogram}. *)

  val watch : counter -> (int -> unit) -> unit
  (** Call [f new_value] on every update of the counter (from whichever
      domain performs it). One watcher per counter; the last wins. *)

  val unwatch : counter -> unit

  val describe : string -> string -> unit
  (** Attach a help string to a metric family, keyed by the name before
      any label block; surfaced as [# HELP] in {!Export.openmetrics}. *)

  val help : string -> string option

  val labelled : string -> (string * string) list -> string
  (** [labelled "monitor.alerts" ["rule", r]] builds the registry name
      [monitor.alerts{rule="r"}] with OpenMetrics label-value escaping
      (backslash, double quote, newline). Each label set is its own
      series; {!Export.openmetrics} reunites them under one family. *)

  val reset : unit -> unit
  (** Zero every registered metric (cells survive, values clear). *)
end

(** {1 Timed spans} *)

module Span : sig
  type phase = B | E

  type event = {
    name : string;
    phase : phase;
    tid : int;  (** The recording domain's id. *)
    ts_ns : int64;
    args : (string * string) list;
  }

  val with_span :
    ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
  (** Run the thunk inside a span. Exception-safe: the closing event is
      recorded even when the thunk raises. When {!spans_on} is false this
      is exactly [f ()]. *)

  val events : unit -> event list
  (** Merge every domain's buffer, ordered by timestamp (ties keep each
      domain's recording order). Call only while no domain is recording. *)

  val durations : unit -> (string * int * int64) list
  (** Per-name aggregation of matched B/E pairs: [(name, count,
      total_ns)], total over {e inclusive} span time, name-sorted.
      Unmatched events are ignored. *)

  val buffer_count : unit -> int
  (** Number of per-domain buffers ever created — 0 until some span is
      recorded with spans enabled; the disabled-mode regression gate. *)

  val clear : unit -> unit
  (** Drop recorded events (buffers are kept for reuse). Quiescence
      required, as for {!events}. *)
end

(** {1 Chrome trace-event writer} *)

module Trace_writer : sig
  (** Incremental, deterministic writer for the Chrome trace-event JSON
      format (the profile Perfetto and chrome://tracing load). One
      writer backs every trace artifact the tool emits — the engine's
      own spans ({!Export.chrome_trace}) and the corpus exports of
      [dpviz] — so escaping, µs timestamp rendering and metadata-record
      shape stay in one place. Field order is fixed per record kind and
      serialisation is a pure function of the calls made, so equal
      event sequences produce byte-equal artifacts. *)

  type t

  val create : ?initial_size:int -> unit -> t
  (** A fresh writer with the [{"traceEvents":[] envelope opened. *)

  val process_name : t -> pid:int -> string -> unit
  (** Emit a [ph:"M"] [process_name] metadata record. *)

  val thread_name : t -> pid:int -> tid:int -> string -> unit
  (** Emit a [ph:"M"] [thread_name] metadata record. *)

  val event :
    t ->
    ?cat:string ->
    ?args:(string * Dputil.Jsonw.t) list ->
    ?id:int ->
    ?bind_enclosing:bool ->
    ?dur_us:float ->
    ph:char ->
    pid:int ->
    tid:int ->
    ts_us:float ->
    string ->
    unit
  (** Emit one trace event of phase [ph] ('B'/'E' spans, 'X' complete
      slices with [dur_us], 'i' instants, 's'/'f' flows with [id],
      'C' counters with [args] as series). [ts_us] renders with fixed
      3-decimal precision. [bind_enclosing] adds [bp:"e"] (bind a flow
      end to the enclosing slice). *)

  val events_written : t -> int
  (** Number of records emitted so far (metadata included). *)

  val contents : t -> string
  (** The complete JSON document. Non-destructive: the writer may keep
      appending and [contents] may be taken again. *)
end

(** {1 Export} *)

module Export : sig
  val chrome_trace : unit -> string
  (** The recorded spans as Chrome trace-event JSON: an object with a
      [traceEvents] array of [ph:"B"/"E"] events carrying
      [name]/[pid]/[tid]/[ts] (µs, rebased to the earliest event), plus
      [ph:"M"] process/thread-name metadata. Load in Perfetto or
      chrome://tracing. *)

  val write_chrome_trace : string -> unit

  val metrics_json : unit -> string
  (** [{"counters":{..},"gauges":{..},"histograms":{name:{count,sum,min,
      max,mean,p50,p90,p99}}}]. *)

  val write_metrics : string -> unit

  val openmetrics : unit -> string
  (** The whole registry as an OpenMetrics text exposition, terminated by
      [# EOF]. Counters become [family_total], gauges bare samples,
      histograms summaries ([quantile="0.5"/"0.9"/"0.99"] over the kept
      reservoir plus [_count]/[_sum]). Family names are sanitised to
      [[a-zA-Z0-9_:]]; label blocks built with {!Metrics.labelled} pass
      through verbatim, and series of one family are grouped under a
      single [# TYPE] (and [# HELP], when {!Metrics.describe}d) header.
      Deterministic for a given registry state: families and series
      emit in sorted name order. *)

  val write_openmetrics : string -> unit
end

(** {1 Progress reporting} *)

module Progress : sig
  type t

  val is_tty : unit -> bool
  (** Whether stderr is a terminal — progress auto-disables otherwise. *)

  val start : label:string -> total:int -> Metrics.counter -> t option
  (** Watch [counter] and redraw a [label: done/total (rate/s, ETA ..)]
      line on stderr, rate-limited to ~10 Hz. Enables {!metrics_on} so
      the counter actually counts. [None] when stderr is not a tty. *)

  val finish : t -> unit
  (** Stop watching and erase the line. *)

  (** {2 Free-form status line}

      For long-running modes that redraw a one-line dashboard rather
      than counting toward a known total. Same tty gating and ~10 Hz
      rate limit as {!start}. *)

  type line

  val line_start : unit -> line option
  (** [None] when stderr is not a tty. *)

  val line_update : line -> string -> unit
  (** Redraw with [text] if the rate limit allows; never blocks. *)

  val line_set : line -> string -> unit
  (** Redraw unconditionally (e.g. the final state of a tick). *)

  val line_finish : line -> unit
  (** Erase the line. *)
end
