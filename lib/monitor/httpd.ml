type t = { sock : Unix.file_descr; mutable bound_port : int; mutable open_ : bool }

let parse_spec spec =
  match String.rindex_opt spec ':' with
  | None -> (
    match int_of_string_opt (String.trim spec) with
    | Some port -> (Unix.inet_addr_loopback, port)
    | None -> failwith (Printf.sprintf "monitor: bad --listen %S" spec))
  | Some i -> (
    let host = String.sub spec 0 i in
    let port = String.sub spec (i + 1) (String.length spec - i - 1) in
    match int_of_string_opt port with
    | None -> failwith (Printf.sprintf "monitor: bad --listen port in %S" spec)
    | Some port -> (
      match Unix.inet_addr_of_string host with
      | addr -> (addr, port)
      | exception Failure _ -> (
        match Unix.gethostbyname host with
        | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
          failwith (Printf.sprintf "monitor: cannot resolve %S" host)
        | { Unix.h_addr_list; _ } -> (h_addr_list.(0), port))))

let start spec =
  let addr, port = parse_spec spec in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (addr, port));
     Unix.listen sock 8
   with Unix.Unix_error (e, _, _) ->
     Unix.close sock;
     failwith
       (Printf.sprintf "monitor: cannot listen on %s: %s" spec
          (Unix.error_message e)));
  let bound_port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  { sock; bound_port; open_ = true }

let port t = t.bound_port

(* Read until the blank line ending the request head, bounded. *)
let read_head fd =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 512 in
  let rec go () =
    if Buffer.length buf > 8192 then None
    else
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> if Buffer.length buf > 0 then Some (Buffer.contents buf) else None
      | n ->
        Buffer.add_subbytes buf chunk 0 n;
        let s = Buffer.contents buf in
        let rec has_end i =
          if i + 3 >= String.length s then false
          else if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r'
                  && s.[i + 3] = '\n' then true
          else has_end (i + 1)
        in
        if has_end 0 then Some s else go ()
      | exception Unix.Unix_error _ -> None
  in
  go ()

let respond fd ~status ~content_type body =
  let head =
    Printf.sprintf
      "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
       Connection: close\r\n\r\n"
      status content_type (String.length body)
  in
  let payload = head ^ body in
  let n = String.length payload in
  let rec write off =
    if off < n then
      match Unix.write_substring fd payload off (n - off) with
      | written -> write (off + written)
      | exception Unix.Unix_error _ -> ()
  in
  write 0

let openmetrics_content_type =
  "application/openmetrics-text; version=1.0.0; charset=utf-8"

let serve_client fd ~body =
  match read_head fd with
  | None -> respond fd ~status:"400 Bad Request" ~content_type:"text/plain" ""
  | Some head -> (
    let line =
      match String.index_opt head '\r' with
      | Some i -> String.sub head 0 i
      | None -> head
    in
    match String.split_on_char ' ' line with
    | [ "GET"; path; _ ] when path = "/" || path = "/metrics" ->
      respond fd ~status:"200 OK" ~content_type:openmetrics_content_type
        (body ())
    | [ _; _; _ ] ->
      respond fd ~status:"404 Not Found" ~content_type:"text/plain"
        "driveperf monitor serves /metrics\n"
    | _ -> respond fd ~status:"400 Bad Request" ~content_type:"text/plain" "")

let poll t ~timeout_s ~body =
  if not t.open_ then false
  else
    match Unix.select [ t.sock ] [] [] timeout_s with
    | [], _, _ -> false
    | _ :: _, _, _ -> (
      (* [httpd.accept] fault site: injected EINTR (and the real thing)
         retries the accept; an exhausted budget degrades to "no
         connection this poll" — the monitor's tick loop is never
         disturbed by a flaky scrape. *)
      match
        Dpfault.Retry.run_default Dpfault.Httpd_accept
          ~default:(fun () -> None)
          (fun () ->
            Dpfault.guard Dpfault.Httpd_accept;
            Some (Unix.accept t.sock))
      with
      | None -> false
      | Some (fd, _) ->
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () -> serve_client fd ~body);
        true
      | exception Unix.Unix_error _ -> false)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> false

let stop t =
  if t.open_ then begin
    t.open_ <- false;
    try Unix.close t.sock with Unix.Unix_error _ -> ()
  end
