(** Continuous corpus monitoring: the always-on counterpart of the
    one-shot analysis.

    The paper's workflow is batch — analyse one fleet snapshot, read the
    tables — but its closing observation (mined patterns are "clues for
    similar cases" to re-check on the next snapshot) is a loop. This
    module runs that loop: watch a directory into which tracing sessions
    drop corpus files, ingest each delta incrementally through the
    {!Dpcore.Snapshot} cache, maintain a rolling baseline over the last
    [window] files, and on every tick compare the fresh window against
    the baseline — {!Dpcore.Diff.compare_patterns} over each scenario's
    top-K mined patterns plus a bootstrap-CI drift test on the impact
    metrics ({!Dpcore.Robustness}) — feeding a declarative
    {!Rules.rule} engine. Alerts go to a JSONL log (deterministic field
    order, shared schema with [driveperf diff --json]) and
    {!Dpobs.Log}; the whole state is exported as an OpenMetrics text
    exposition ({!Dpobs.Export.openmetrics}) after every tick.

    Two drive modes:

    - {!watch}: real time. Scans the directory on an interval, serves
      [/metrics] over a minimal inline {!Httpd} between ticks, redraws
      a one-line tty dashboard.
    - {!replay}: deterministic. A manifest file scripts the arrival
      sequence under a virtual clock, so the full
      watch→ingest→diff→alert→export loop runs byte-reproducibly — the
      same manifest always produces the same alert log and the same
      OpenMetrics dump. Replay never uses a domain pool (pool telemetry
      is wall-clock and would leak into the exposition).

    Health metrics (all in the exposition): [monitor.ticks],
    [monitor.files_ingested], [monitor.streams_ingested],
    [monitor.parse_failures], [monitor.alerts{rule=..}],
    [monitor.ingest_lag_ms], [monitor.tick_duration] (ms histogram;
    virtual — zero — under replay), and [monitor.window_*] gauges. *)

type config = {
  components : Dpcore.Component.t;
  rules : Rules.rule list;
  window : int;  (** Rolling window, in most recent corpus files. *)
  k : int;  (** Mining segment-length bound. *)
  top_patterns : int;
      (** Pattern-rule focus: only the new window's top-N ranked mined
          patterns per scenario may raise claims (0 = unbounded).
          Membership is still checked against {e everything} the
          baseline window mined, so rank churn across the top-N
          boundary never counts as [Appeared]. *)
  replicates : int;  (** Bootstrap replicates for the drift CI. *)
  seed : int;  (** Bootstrap seed. *)
  mode : Dptrace.Codec_v2.mode;  (** Corpus decode mode. *)
  cache_dir : string option;
      (** Snapshot cache directory; [None] keeps the cache in memory
          (still incremental across ticks within the process). *)
  alert_log : string option;  (** JSONL alert sink. *)
  metrics_out : string option;
      (** OpenMetrics exposition, rewritten after every tick. *)
  view_dir : string option;
      (** When set, every tick that raises scenario-tagged alerts also
          writes a {!Dpviz.Bundle} view bundle per alerted scenario
          under [view_dir/tick-N-SCENARIO/], and those alerts carry the
          directory in their [view] field. *)
}

val default_config : config
(** {!Dpcore.Component.drivers}, {!Rules.defaults}, window 8,
    [k = Mining.default_k], top 10 patterns per scenario, 200
    replicates, seed 1, [`Strict], no cache/log/exposition paths. *)

type t

val create : ?pool:Dppar.Pool.t -> ?fresh_log:bool -> config -> t
(** Enables {!Dpobs} metrics. [fresh_log] truncates an existing alert
    log instead of appending (replay does this). The clock starts real;
    {!set_clock} switches it virtual. *)

val close : t -> unit
(** Flush and close the alert log. *)

(** {1 Clock} *)

val set_clock : t -> int -> unit
(** Pin the monitor clock to a virtual time (ms). Alert timestamps,
    ingest-lag and tick-duration measurements all read this clock. *)

val advance_clock : t -> int -> unit
(** Advance the virtual clock; pins it to [now + d] if still real. *)

val now_ms : t -> int

(** {1 Feeding} *)

val ingest : t -> ?mtime_ms:int -> string -> (unit, string) result
(** Load (or reload) one corpus file into the window. [mtime_ms]
    defaults to the file's mtime (replay passes the virtual clock). A
    load failure is remembered for the next tick's [parse_failure]
    rule and counted in [monitor.parse_failures]. *)

val scan : t -> string -> int
(** {!ingest} every new or changed corpus file directly under the
    directory (by name order); returns how many files were (re)loaded.
    The watch loop calls this every interval. *)

val tick : t -> Rules.alert list
(** Run one ingest tick over everything fed since the last one:
    rebuild the window corpus, {!Dpcore.Snapshot.ensure} it (only new
    streams analyse), re-run impact and mining through the snapshot,
    evaluate the rules against the rolling baseline, emit alerts and
    rewrite the exposition. A tick with no pending changes skips the
    analysis entirely and raises no relative alerts. The first
    analysed tick establishes the baseline and raises no relative
    alerts either. *)

val ticks : t -> int
val alerts_total : t -> int

val snapshot_stats : t -> Dpcore.Snapshot.stats option
(** Cache accounting of the snapshot backing the window ([None] before
    the first analysed tick). *)

(** {1 Replay} *)

(** Manifest grammar, one directive per line ([#] starts a comment):
    {v
    clock MS      set the virtual clock (absolute milliseconds)
    clock +MS     advance it
    add PATH      a corpus file arrived (relative to the manifest)
    tick          run one ingest tick
    v} *)

type replay_summary = {
  r_ticks : int;
  r_files : int;  (** [add] directives executed. *)
  r_alerts : int;
  r_parse_failures : int;
}

val replay : config -> manifest:string -> replay_summary
(** Run the manifest under a virtual clock starting at 0, with
    {!Dpobs.Metrics.reset} first and a truncated alert log, so equal
    manifests produce byte-identical alert logs and expositions. (With
    an on-disk [cache_dir] the {e alert log} is still byte-identical —
    cached merges are exact — but the exposition's [snapshot.hit/miss]
    counters reflect the cache's starting state; leave [cache_dir]
    unset, or start it equal, when comparing expositions.)
    @raise Failure on an unreadable manifest or a malformed directive
    (with its line number). *)

(** {1 Watch} *)

val watch :
  ?pool:Dppar.Pool.t ->
  ?listen:string ->
  ?interval_s:float ->
  ?max_ticks:int ->
  ?dashboard:bool ->
  config ->
  dir:string ->
  unit
(** Scan [dir] every [interval_s] (default 2.0) and tick; between
    ticks, serve [/metrics] on [listen] (["PORT"] or ["HOST:PORT"])
    when given. [max_ticks] bounds the loop (for smokes); default is
    to run until killed. [dashboard] (default true) redraws a one-line
    tty status via {!Dpobs.Progress} machinery. *)
