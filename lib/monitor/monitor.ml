module Component = Dpcore.Component
module Snapshot = Dpcore.Snapshot
module Pipeline = Dpcore.Pipeline
module Impact = Dpcore.Impact
module Robustness = Dpcore.Robustness
module Diff = Dpcore.Diff
module Mining = Dpcore.Mining
module Corpus = Dptrace.Corpus
module Corpus_dir = Dptrace.Corpus_dir
module Scenario = Dptrace.Scenario
module J = Dputil.Jsonw
module M = Dpobs.Metrics

type config = {
  components : Dpcore.Component.t;
  rules : Rules.rule list;
  window : int;
  k : int;
  top_patterns : int;
  replicates : int;
  seed : int;
  mode : Dptrace.Codec_v2.mode;
  cache_dir : string option;
  alert_log : string option;
  metrics_out : string option;
  view_dir : string option;
}

let default_config =
  {
    components = Component.drivers;
    rules = Rules.defaults;
    window = 8;
    k = Mining.default_k;
    top_patterns = 10;
    replicates = 200;
    seed = 1;
    mode = `Strict;
    cache_dir = None;
    alert_log = None;
    metrics_out = None;
    view_dir = None;
  }

type lfile = {
  mutable f_corpus : Corpus.t;
  mutable f_seq : int;
  mutable f_mtime_ms : int;
  mutable f_size : int;
}

type baseline = {
  b_corpus : Corpus.t;
  b_patterns : (string * Mining.pattern list) list;
  mutable b_ci : Robustness.t option;  (* computed once, on demand *)
}

type t = {
  config : config;
  pool : Dppar.Pool.t option;
  files : (string, lfile) Hashtbl.t;
  failed : (string, int * int) Hashtbl.t;  (* path -> (mtime_ms, size) *)
  mutable seq : int;
  mutable vclock : int option;  (* Some ms = virtual *)
  mutable pending_changed : bool;
  mutable pending_failures : (string * string) list;  (* newest first *)
  mutable last_arrival_ms : int option;
  mutable baseline : baseline option;
  mutable snap : (string * Snapshot.t) option;  (* fingerprint * cache *)
  mutable tick_count : int;
  mutable alert_count : int;
  alert_oc : out_channel option;
  mutable line : Dpobs.Progress.line option;
  m_ticks : M.counter;
  m_files : M.counter;
  m_streams : M.counter;
  m_parse_failures : M.counter;
  m_lag : M.gauge;
  m_tick_duration : M.histogram;
  m_window_files : M.gauge;
  m_window_streams : M.gauge;
  m_window_instances : M.gauge;
}

let describe_all () =
  M.describe "monitor.ticks" "Ingest ticks run";
  M.describe "monitor.files_ingested" "Corpus files loaded or reloaded";
  M.describe "monitor.streams_ingested" "Trace streams ingested across loads";
  M.describe "monitor.parse_failures" "Corpus files that failed to load";
  M.describe "monitor.alerts" "Alerts raised, by rule";
  M.describe "monitor.ingest_lag_ms"
    "Milliseconds since the newest corpus file arrived";
  M.describe "monitor.tick_duration"
    "Per-tick duration in milliseconds (virtual, i.e. 0, under replay)";
  M.describe "monitor.window_files" "Corpus files in the rolling window";
  M.describe "monitor.window_streams" "Streams in the window corpus";
  M.describe "monitor.window_instances"
    "Scenario instances in the window corpus";
  M.describe "monitor.scenario_ia_wait_ppm"
    "Window IA_wait per scenario, parts per million"

let create ?pool ?(fresh_log = false) config =
  Dpobs.enable ~spans:false ~metrics:true ();
  describe_all ();
  let alert_oc =
    Option.map
      (fun path ->
        let flags =
          if fresh_log then [ Open_wronly; Open_creat; Open_trunc ]
          else [ Open_wronly; Open_creat; Open_append ]
        in
        open_out_gen flags 0o644 path)
      config.alert_log
  in
  {
    config;
    pool;
    files = Hashtbl.create 32;
    failed = Hashtbl.create 8;
    seq = 0;
    vclock = None;
    pending_changed = false;
    pending_failures = [];
    last_arrival_ms = None;
    baseline = None;
    snap = None;
    tick_count = 0;
    alert_count = 0;
    alert_oc;
    line = None;
    m_ticks = M.counter "monitor.ticks";
    m_files = M.counter "monitor.files_ingested";
    m_streams = M.counter "monitor.streams_ingested";
    m_parse_failures = M.counter "monitor.parse_failures";
    m_lag = M.gauge "monitor.ingest_lag_ms";
    m_tick_duration = M.histogram "monitor.tick_duration";
    m_window_files = M.gauge "monitor.window_files";
    m_window_streams = M.gauge "monitor.window_streams";
    m_window_instances = M.gauge "monitor.window_instances";
  }

let close t =
  match t.alert_oc with
  | Some oc -> close_out oc
  | None -> ()

(* --- clock --- *)

let real_now_ms () = int_of_float (Unix.gettimeofday () *. 1000.0)

let now_ms t =
  match t.vclock with Some ms -> ms | None -> real_now_ms ()

let set_clock t ms = t.vclock <- Some ms
let advance_clock t d = t.vclock <- Some (now_ms t + d)

(* --- feeding --- *)

(* [monitor.stat] fault site: injected stat races (and real transient
   errors) retry with backoff; a spent budget reports the same (0, 0)
   the genuine-error path always did — the file just looks unchanged
   until a later tick sees it cleanly. *)
let stat_info path =
  match
    Dpfault.Retry.run Dpfault.Monitor_stat (fun () ->
        Dpfault.guard Dpfault.Monitor_stat;
        Unix.stat path)
  with
  | { Unix.st_mtime; st_size; _ } ->
    (int_of_float (st_mtime *. 1000.0), st_size)
  | exception (Unix.Unix_error _ | Dpfault.Injected _) -> (0, 0)

let ingest t ?mtime_ms path =
  (* [monitor.tail] fault site: the re-read of a changed file. Exhausted
     retries funnel into the parse-failure path, so the file is counted,
     alerted on once, and retried when it changes again. *)
  match
    match
      Dpfault.Retry.run Dpfault.Monitor_tail (fun () ->
          Dpfault.guard Dpfault.Monitor_tail;
          Corpus_dir.load ?pool:t.pool ~mode:t.config.mode path)
    with
    | result -> result
    | exception Dpfault.Injected { site; kind } ->
      Error
        (Printf.sprintf
           "%s: injected %s fault at %s exhausted the retry budget" path
           (Dpfault.kind_name kind) (Dpfault.site_name site))
  with
  | Error msg ->
    Hashtbl.replace t.failed path (stat_info path);
    M.incr t.m_parse_failures;
    t.pending_failures <- (path, msg) :: t.pending_failures;
    Dpobs.Log.warn "monitor: %s" msg;
    Error msg
  | Ok { Corpus_dir.l_corpus; l_bytes; l_report; _ } ->
    (match l_report with
    | Some { Dptrace.Codec_v2.dropped = _ :: _ as dropped; _ } ->
      Dpobs.Log.warn "monitor: %s: recovered with %d dropped frame(s)" path
        (List.length dropped)
    | _ -> ());
    Hashtbl.remove t.failed path;
    let mtime =
      match mtime_ms with Some m -> m | None -> fst (stat_info path)
    in
    t.seq <- t.seq + 1;
    (match Hashtbl.find_opt t.files path with
    | Some f ->
      f.f_corpus <- l_corpus;
      f.f_seq <- t.seq;
      f.f_mtime_ms <- mtime;
      f.f_size <- l_bytes
    | None ->
      Hashtbl.replace t.files path
        { f_corpus = l_corpus; f_seq = t.seq; f_mtime_ms = mtime;
          f_size = l_bytes });
    t.last_arrival_ms <-
      Some
        (match t.last_arrival_ms with
        | None -> mtime
        | Some a -> max a mtime);
    t.pending_changed <- true;
    M.incr t.m_files;
    M.add t.m_streams (Corpus.stream_count l_corpus);
    Ok ()

let scan t dir =
  List.fold_left
    (fun n e ->
      let path = e.Corpus_dir.e_path in
      let changed_vs (mt, sz) =
        mt <> e.Corpus_dir.e_mtime_ms || sz <> e.Corpus_dir.e_size
      in
      let fresh =
        match Hashtbl.find_opt t.files path with
        | Some f -> changed_vs (f.f_mtime_ms, f.f_size)
        | None -> (
          match Hashtbl.find_opt t.failed path with
          | Some seen -> changed_vs seen  (* retry only on change *)
          | None -> true)
      in
      if fresh then (
        ignore (ingest t ~mtime_ms:e.Corpus_dir.e_mtime_ms path : (_, _) result);
        n + 1)
      else n)
    0 (Corpus_dir.scan dir)

(* --- window assembly --- *)

let window_files t =
  let files = Hashtbl.fold (fun _ f acc -> f :: acc) t.files [] in
  let files = List.sort (fun a b -> compare a.f_seq b.f_seq) files in
  let drop = List.length files - t.config.window in
  if drop <= 0 then files else List.filteri (fun i _ -> i >= drop) files

let window_corpus t =
  let files = window_files t in
  let streams =
    List.concat_map (fun f -> f.f_corpus.Corpus.streams) files
  in
  let specs =
    List.fold_left
      (fun acc f ->
        List.fold_left
          (fun acc (s : Scenario.spec) ->
            if
              List.exists
                (fun (s' : Scenario.spec) -> s'.Scenario.name = s.Scenario.name)
                acc
            then acc
            else acc @ [ s ])
          acc f.f_corpus.Corpus.specs)
      [] files
  in
  (List.length files, Corpus.create ~streams ~specs)

let snapshot_for t (corpus : Corpus.t) =
  let fp =
    Snapshot.fingerprint ~components:t.config.components
      ~specs:corpus.Corpus.specs ~k:t.config.k ()
  in
  match t.snap with
  | Some (fp', snap) when fp' = fp -> snap
  | _ ->
    let snap = Snapshot.create ?dir:t.config.cache_dir ~fingerprint:fp () in
    t.snap <- Some (fp, snap);
    snap

let snapshot_stats t = Option.map (fun (_, s) -> Snapshot.stats s) t.snap

(* --- rule evaluation --- *)

let baseline_ci t b =
  match b.b_ci with
  | Some ci -> ci
  | None ->
    let ci =
      Robustness.bootstrap ?pool:t.pool ~replicates:t.config.replicates
        ~seed:t.config.seed t.config.components b.b_corpus
    in
    b.b_ci <- Some ci;
    ci

let fnum = Printf.sprintf "%.6g"

let drift_alert t b rule metric impact =
  let rb = baseline_ci t b in
  let value, ci, mname =
    match metric with
    | `Wait -> (Impact.ia_wait impact, rb.Robustness.ia_wait, "ia_wait")
    | `Run -> (Impact.ia_run impact, rb.Robustness.ia_run, "ia_run")
    | `Opt -> (Impact.ia_opt impact, rb.Robustness.ia_opt, "ia_opt")
  in
  Dpobs.Log.debug "monitor: drift check %s: value=%g baseline CI=[%g, %g]"
    mname value ci.Robustness.lo ci.Robustness.hi;
  if Robustness.contains ci value then None
  else
    Some
      ( rule,
        None,
        Printf.sprintf "%s %s left the baseline CI [%s, %s]" mname
          (fnum value) (fnum ci.Robustness.lo) (fnum ci.Robustness.hi),
        J.Obj
          [
            ("metric", J.str mname);
            ("value", J.float value);
            ("lo", J.float ci.Robustness.lo);
            ("hi", J.float ci.Robustness.hi);
            ("point", J.float ci.Robustness.point);
            ("mean", J.float ci.Robustness.mean);
            ("replicates", J.int rb.Robustness.replicates);
          ] )

let cap_patterns top xs =
  if top <= 0 then xs else List.filteri (fun i _ -> i < top) xs

let pattern_alerts b rule ~top ~threshold ~min_support ~pick patterns =
  (* Only scenarios the baseline already knew: a scenario's very first
     sighting is all [Appeared] by construction, which is noise. The
     baseline side stays uncapped — claims are gated to the new window's
     top-K, but membership is checked against everything the previous
     window mined, so a pattern shuffling across the top-K boundary
     doesn't masquerade as [Appeared]. *)
  List.concat_map
    (fun (scn, after) ->
      match List.assoc_opt scn b.b_patterns with
      | None -> []
      | Some before ->
        let after = cap_patterns top after in
        Diff.compare_patterns ~threshold ~min_support ~before ~after ()
        |> List.filter_map (fun (e : Diff.entry) ->
               match pick e with
               | None -> None
               | Some message ->
                 Some (rule, Some scn, message, Diff.json_entry e)))
    patterns

let support (p : Mining.pattern option) =
  match p with None -> 0 | Some p -> p.Mining.count

let evaluate_relative t b impact patterns =
  List.concat_map
    (fun rule ->
      match rule with
      | Rules.Ia_drift { metric } -> (
        match drift_alert t b (Rules.name rule) metric impact with
        | Some a -> [ a ]
        | None -> [])
      | Rules.Pattern_appeared { min_support } ->
        pattern_alerts b (Rules.name rule) ~top:t.config.top_patterns
          ~threshold:1.5 ~min_support
          ~pick:(fun e ->
            match e.Diff.change with
            | Diff.Appeared ->
              Some
                (Printf.sprintf "pattern appeared with support %d"
                   (support e.Diff.after))
            | _ -> None)
          patterns
      | Rules.Pattern_regressed { min_support; threshold } ->
        pattern_alerts b (Rules.name rule) ~top:t.config.top_patterns
          ~threshold ~min_support
          ~pick:(fun e ->
            match e.Diff.change with
            | Diff.Regressed f ->
              Some
                (Printf.sprintf "pattern avg cost grew %sx (support %d)"
                   (fnum f) (support e.Diff.after))
            | _ -> None)
          patterns
      | Rules.Ingest_lag _ | Rules.Parse_failure -> [])
    t.config.rules

(* --- the tick --- *)

let status_line t =
  Printf.sprintf "monitor: tick %d | window %d file(s), %d stream(s) | %d alert(s)"
    t.tick_count
    (M.gauge_value t.m_window_files)
    (M.gauge_value t.m_window_streams)
    t.alert_count

let emit t alerts =
  List.iter
    (fun (a : Rules.alert) ->
      t.alert_count <- t.alert_count + 1;
      M.incr (M.counter (M.labelled "monitor.alerts" [ ("rule", a.Rules.a_rule) ]));
      Dpobs.Log.warn "monitor: [%s]%s %s" a.Rules.a_rule
        (match a.Rules.a_scenario with
        | Some s -> Printf.sprintf " %s:" s
        | None -> "")
        a.Rules.a_message;
      match t.alert_oc with
      | Some oc ->
        output_string oc
          (J.to_string ~minify:true (Rules.alert_json a) ^ "\n")
      | None -> ())
    alerts;
  match t.alert_oc with Some oc -> flush oc | None -> ()

let tick t =
  let t0 = now_ms t in
  t.tick_count <- t.tick_count + 1;
  M.incr t.m_ticks;
  let failures = List.rev t.pending_failures in
  t.pending_failures <- [];
  let changed = t.pending_changed in
  t.pending_changed <- false;
  (* Absolute rules first: they hold whether or not anything arrived. *)
  let absolute =
    List.concat_map
      (fun rule ->
        match rule with
        | Rules.Parse_failure ->
          List.map
            (fun (path, err) ->
              ( Rules.name rule,
                None,
                Printf.sprintf "failed to load %s" path,
                J.Obj [ ("path", J.str path); ("error", J.str err) ] ))
            failures
        | Rules.Ingest_lag { max_ms } -> (
          match t.last_arrival_ms with
          | Some arrived when now_ms t - arrived > max_ms ->
            let lag = now_ms t - arrived in
            [
              ( Rules.name rule,
                None,
                Printf.sprintf "no corpus file for %d ms (limit %d)" lag
                  max_ms,
                J.Obj [ ("lag_ms", J.int lag); ("max_ms", J.int max_ms) ] );
            ]
          | _ -> [])
        | _ -> [])
      t.config.rules
  in
  (match t.last_arrival_ms with
  | Some arrived -> M.set t.m_lag (max 0 (now_ms t - arrived))
  | None -> ());
  let relative, views =
    if not changed then ([], [])
    else begin
      let n_files, corpus = window_corpus t in
      let snap = snapshot_for t corpus in
      Snapshot.ensure ?pool:t.pool snap t.config.components corpus;
      let impact = Pipeline.run_impact_snap snap corpus in
      let results =
        Pipeline.run_all_snap ?pool:t.pool ~k:t.config.k snap corpus
      in
      Snapshot.save snap;
      (* Full ranked lists: the baseline keeps everything mined so
         top-K boundary churn can't fake [Appeared]; the cap applies to
         the claiming side inside [pattern_alerts]. *)
      let patterns =
        List.map
          (fun (name, (r : Pipeline.scenario_result)) ->
            (name, r.Pipeline.mining.Mining.patterns))
          results
      in
      M.set t.m_window_files n_files;
      M.set t.m_window_streams (Corpus.stream_count corpus);
      M.set t.m_window_instances (Corpus.instance_count corpus);
      List.iter
        (fun (scn, r) ->
          M.set
            (M.gauge
               (M.labelled "monitor.scenario_ia_wait_ppm"
                  [ ("scenario", scn) ]))
            (int_of_float ((Impact.ia_wait r *. 1e6) +. 0.5)))
        (Pipeline.impact_per_scenario_snap snap corpus);
      let out =
        match t.baseline with
        | None -> []  (* first analysed tick: establish, don't compare *)
        | Some b -> evaluate_relative t b impact patterns
      in
      t.baseline <-
        Some { b_corpus = corpus; b_patterns = patterns; b_ci = None };
      (* Every alerted scenario gets an openable view bundle next to the
         JSONL log: Perfetto trace of the slow/fast exemplars plus the
         differential flame views of the offending window. *)
      let views =
        match t.config.view_dir with
        | None -> []
        | Some vdir ->
          List.filter_map (fun (_, s, _, _) -> s) out
          |> List.sort_uniq compare
          |> List.filter_map (fun scn ->
                 match Dpcore.Classify.classify corpus scn with
                 | exception Not_found -> None
                 | c ->
                   let dir =
                     Filename.concat vdir
                       (Printf.sprintf "tick-%d-%s" t.tick_count
                          (String.map
                             (function '/' | '\\' -> '_' | ch -> ch)
                             scn))
                   in
                   let b =
                     Dpviz.Bundle.write ~components:t.config.components
                       ~dir c
                   in
                   Dpobs.Log.info "monitor: view bundle %s (%d files)" dir
                     (List.length b.Dpviz.Bundle.files);
                   Some (scn, dir))
      in
      (out, views)
    end
  in
  let alerts =
    List.map
      (fun (rule, scenario, message, data) ->
        {
          Rules.a_tick = t.tick_count;
          a_time_ms = now_ms t;
          a_rule = rule;
          a_scenario = scenario;
          a_message = message;
          a_data = data;
          a_view =
            Option.bind scenario (fun s -> List.assoc_opt s views);
        })
      (absolute @ relative)
  in
  emit t alerts;
  M.observe t.m_tick_duration (float_of_int (now_ms t - t0));
  (match t.config.metrics_out with
  | Some path -> Dpobs.Export.write_openmetrics path
  | None -> ());
  (match t.line with
  | Some l -> Dpobs.Progress.line_set l (status_line t)
  | None -> ());
  alerts

let ticks t = t.tick_count
let alerts_total t = t.alert_count

(* --- replay --- *)

type replay_summary = {
  r_ticks : int;
  r_files : int;
  r_alerts : int;
  r_parse_failures : int;
}

type directive = Set of int | Advance of int | Add of string | Tick

let parse_manifest path =
  let ic =
    try open_in path
    with Sys_error m -> failwith (Printf.sprintf "monitor: %s" m)
  in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let bad line_no line =
    failwith
      (Printf.sprintf "%s:%d: bad manifest directive %S" path line_no line)
  in
  let rec go line_no acc =
    match input_line ic with
    | exception End_of_file -> List.rev acc
    | raw ->
      let line = String.trim raw in
      if line = "" || line.[0] = '#' then go (line_no + 1) acc
      else
        let words =
          String.split_on_char ' ' line |> List.filter (fun w -> w <> "")
        in
        let dir =
          match words with
          | [ "tick" ] -> Tick
          | [ "add"; p ] -> Add p
          | [ "clock"; spec ] when String.length spec > 0 -> (
            if spec.[0] = '+' then
              match
                int_of_string_opt (String.sub spec 1 (String.length spec - 1))
              with
              | Some d -> Advance d
              | None -> bad line_no line
            else
              match int_of_string_opt spec with
              | Some ms -> Set ms
              | None -> bad line_no line)
          | _ -> bad line_no line
        in
        go (line_no + 1) (dir :: acc)
  in
  go 1 []

let replay config ~manifest =
  let directives = parse_manifest manifest in
  (* A clean registry makes the exposition a pure function of the
     manifest (plus any pre-warmed on-disk snapshot cache). No pool:
     pool busy-time telemetry is wall-clock. *)
  M.reset ();
  let t = create ~fresh_log:true config in
  set_clock t 0;
  let base = Filename.dirname manifest in
  let files = ref 0 and parse_failures = ref 0 in
  List.iter
    (fun d ->
      match d with
      | Set ms -> set_clock t ms
      | Advance d -> advance_clock t d
      | Add p ->
        let p = if Filename.is_relative p then Filename.concat base p else p in
        incr files;
        (match ingest t ~mtime_ms:(now_ms t) p with
        | Ok () -> ()
        | Error _ -> incr parse_failures)
      | Tick -> ignore (tick t : Rules.alert list))
    directives;
  close t;
  {
    r_ticks = t.tick_count;
    r_files = !files;
    r_alerts = t.alert_count;
    r_parse_failures = !parse_failures;
  }

(* --- watch --- *)

let watch ?pool ?listen ?(interval_s = 2.0) ?max_ticks ?(dashboard = true)
    config ~dir =
  let t = create ?pool config in
  let httpd = Option.map Httpd.start listen in
  (match httpd with
  | Some h ->
    Dpobs.Log.info "monitor: serving /metrics on port %d" (Httpd.port h)
  | None -> ());
  if dashboard then t.line <- Dpobs.Progress.line_start ();
  let stop = ref false in
  while not !stop do
    ignore (scan t dir : int);
    ignore (tick t : Rules.alert list);
    (match max_ticks with
    | Some m when t.tick_count >= m -> stop := true
    | _ -> ());
    if not !stop then begin
      let deadline = Unix.gettimeofday () +. interval_s in
      let rec idle () =
        let remain = deadline -. Unix.gettimeofday () in
        if remain > 0.0 then
          match httpd with
          | Some h ->
            ignore
              (Httpd.poll h ~timeout_s:(Float.min remain 0.25)
                 ~body:Dpobs.Export.openmetrics
                : bool);
            idle ()
          | None -> Unix.sleepf remain
      in
      idle ()
    end
  done;
  (match httpd with Some h -> Httpd.stop h | None -> ());
  (match t.line with Some l -> Dpobs.Progress.line_finish l | None -> ());
  close t
