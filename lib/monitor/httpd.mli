(** Minimal single-threaded HTTP responder for the metrics endpoint.

    One listening socket, one connection at a time, served inline from
    the monitor's own loop between ticks — no threads, no domain, no
    request queueing. That is deliberately tiny: the only client is a
    metrics scraper hitting [/metrics] every few seconds, and serving
    from the loop means the exposition is always a consistent snapshot
    (never read mid-tick). *)

type t

val start : string -> t
(** [start spec] binds and listens. [spec] is ["PORT"] (loopback) or
    ["HOST:PORT"]; port 0 picks an ephemeral port (see {!port}).
    @raise Failure when the address cannot be bound or parsed. *)

val port : t -> int
(** The bound port — useful after binding port 0. *)

val poll : t -> timeout_s:float -> body:(unit -> string) -> bool
(** Wait up to [timeout_s] for one connection and serve it: [GET /] and
    [GET /metrics] answer 200 with [body ()] as an OpenMetrics
    exposition, any other path 404, anything unparsable 400. Returns
    whether a connection was handled. Never raises on client
    misbehaviour (bad request, early close): the connection is dropped
    and [poll] returns [true]. *)

val stop : t -> unit
(** Close the listening socket. Idempotent. *)
