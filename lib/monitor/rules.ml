type metric = [ `Wait | `Run | `Opt ]

type rule =
  | Ia_drift of { metric : metric }
  | Pattern_appeared of { min_support : int }
  | Pattern_regressed of { min_support : int; threshold : float }
  | Ingest_lag of { max_ms : int }
  | Parse_failure

let name = function
  | Ia_drift { metric = `Wait } -> "ia_drift_wait"
  | Ia_drift { metric = `Run } -> "ia_drift_run"
  | Ia_drift { metric = `Opt } -> "ia_drift_opt"
  | Pattern_appeared _ -> "pattern_appeared"
  | Pattern_regressed _ -> "pattern_regressed"
  | Ingest_lag _ -> "ingest_lag"
  | Parse_failure -> "parse_failure"

let default_min_support = 3

let defaults =
  [
    Ia_drift { metric = `Wait };
    Pattern_appeared { min_support = default_min_support };
    Pattern_regressed { min_support = default_min_support; threshold = 1.5 };
    Ingest_lag { max_ms = 60_000 };
    Parse_failure;
  ]

type alert = {
  a_tick : int;
  a_time_ms : int;
  a_rule : string;
  a_scenario : string option;
  a_message : string;
  a_data : Dputil.Jsonw.t;
  a_view : string option;
}

module J = Dputil.Jsonw

let alert_json a =
  J.Obj
    ([
       ("tick", J.int a.a_tick);
       ("time_ms", J.int a.a_time_ms);
       ("rule", J.str a.a_rule);
       ( "scenario",
         match a.a_scenario with None -> J.Null | Some s -> J.str s );
       ("message", J.str a.a_message);
       ("data", a.a_data);
     ]
    (* Appended only when present, so logs written without --view-dir
       keep their historical bytes. *)
    @ match a.a_view with None -> [] | Some v -> [ ("view", J.str v) ])
