(** Declarative alert rules and the alerts they raise.

    A rule is a predicate the monitor evaluates once per ingest tick.
    {e Relative} rules ({!Ia_drift}, {!Pattern_appeared},
    {!Pattern_regressed}) compare the freshly analysed window against
    the rolling baseline and are silent on the first tick (nothing to
    compare against yet); {e absolute} rules ({!Ingest_lag},
    {!Parse_failure}) hold from the first tick. *)

type metric = [ `Wait | `Run | `Opt ]

type rule =
  | Ia_drift of { metric : metric }
      (** The window's impact metric left the bootstrap confidence
          interval of the baseline window. *)
  | Pattern_appeared of { min_support : int }
      (** {!Dpcore.Diff} reports an [Appeared] pattern covering at least
          [min_support] instances in a scenario already present in the
          baseline. *)
  | Pattern_regressed of { min_support : int; threshold : float }
      (** A matched pattern's average cost grew beyond [threshold]
          (with the same support floor). *)
  | Ingest_lag of { max_ms : int }
      (** No corpus file has arrived for more than [max_ms]. *)
  | Parse_failure  (** A corpus file failed to load. *)

val name : rule -> string
(** Stable identifier, used as the alert's [rule] field and the
    [monitor.alerts{rule=..}] label: ["ia_drift_wait"],
    ["ia_drift_run"], ["ia_drift_opt"], ["pattern_appeared"],
    ["pattern_regressed"], ["ingest_lag"], ["parse_failure"]. *)

val default_min_support : int
(** 3 — single- and two-instance patterns never page anyone. *)

val defaults : rule list
(** One of each: IA_wait drift, appeared/regressed patterns at
    {!default_min_support} (regression threshold 1.5), ingest lag at
    60 s, parse failures. *)

(** {1 Alerts} *)

type alert = {
  a_tick : int;  (** 1-based ingest tick that raised it. *)
  a_time_ms : int;  (** Monitor clock (virtual under replay). *)
  a_rule : string;  (** {!name} of the raising rule. *)
  a_scenario : string option;  (** For pattern rules. *)
  a_message : string;  (** One human-readable line. *)
  a_data : Dputil.Jsonw.t;
      (** Machine-readable evidence; pattern alerts embed the
          {!Dpcore.Diff.json_entry} of the offending entry, so the alert
          log and [driveperf diff --json] share one schema. *)
  a_view : string option;
      (** Directory of the view bundle ({!Dpviz.Bundle}) exported for
          this alert's scenario, when the monitor runs with
          [--view-dir]. *)
}

val alert_json : alert -> Dputil.Jsonw.t
(** [{"tick":..,"time_ms":..,"rule":..,"scenario":..,"message":..,
    "data":..}] — field order fixed, for byte-stable JSONL logs. A
    trailing ["view"] field appears only when [a_view] is set, so logs
    written without [--view-dir] keep their historical bytes. *)
