(* Tests for the continuous corpus monitor: replay determinism (equal
   manifests produce byte-identical alert logs and OpenMetrics
   expositions), significance-gated alerting (an injected CPU-starved
   delta drifts outside the baseline CI; a no-op tick is silent),
   absolute rules (parse failures, ingest lag), snapshot-cache reuse
   across ticks, and the exposition format itself. *)

module Corpus_gen = Dpworkload.Corpus_gen
module Codec_v2 = Dptrace.Codec_v2
module Monitor = Dpmon.Monitor
module Rules = Dpmon.Rules

let check = Alcotest.check

(* --- sandboxed fixtures --- *)

let dir_ctr = ref 0

let fresh_dir () =
  incr dir_ctr;
  let dir = Printf.sprintf "monitor_%d" !dir_ctr in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir)
  else Sys.mkdir dir 0o755;
  dir

let gen_save ?(scale = 0.12) ?(cross = true) ?cores ~seed path =
  let corpus =
    Corpus_gen.generate
      { Corpus_gen.default_config with seed; scale; cross_traffic = cross; cores }
  in
  Codec_v2.save path corpus

(* Two calm files establish the baseline, a CPU-starved file is the
   injected regression. Shared by several tests; built once per file. *)
let fixture =
  lazy
    (let dir = fresh_dir () in
     let p name = Filename.concat dir name in
     gen_save ~seed:1 ~cross:false (p "calm1.dpf");
     gen_save ~seed:2 ~cross:false (p "calm2.dpf");
     gen_save ~seed:9 ~cores:1 (p "slow.dpf");
     dir)

let write_file path lines =
  let oc = open_out path in
  List.iter (fun l -> output_string oc (l ^ "\n")) lines;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* The regression manifest: calm baseline tick, injected-delta tick,
   no-op tick. *)
let regression_manifest dir =
  let mpath = Filename.concat dir "replay.manifest" in
  write_file mpath
    [
      "# injected-regression replay";
      "clock 1000";
      "add calm1.dpf";
      "add calm2.dpf";
      "tick";
      "clock +5000";
      "add slow.dpf";
      "tick";
      "clock +1000";
      "tick";
    ];
  mpath

let config ~dir ~tag =
  {
    Monitor.default_config with
    replicates = 40;
    alert_log = Some (Filename.concat dir (tag ^ ".jsonl"));
    metrics_out = Some (Filename.concat dir (tag ^ ".om"));
  }

let alerts_of_log path =
  read_file path |> String.split_on_char '\n'
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map (fun l ->
         match Tjson.parse l with
         | Tjson.Obj fields -> fields
         | _ -> Alcotest.fail "alert line should be a JSON object")

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let field fields name = List.assoc name fields
let num fields name =
  match field fields name with
  | Tjson.Num f -> f
  | _ -> Alcotest.failf "field %s should be a number" name
let str fields name =
  match field fields name with
  | Tjson.Str s -> s
  | _ -> Alcotest.failf "field %s should be a string" name

(* --- replay determinism --- *)

let test_replay_deterministic () =
  let fixture_dir = Lazy.force fixture in
  let manifest = regression_manifest fixture_dir in
  let dir = fresh_dir () in
  let run tag =
    let cfg = config ~dir ~tag in
    let s = Monitor.replay cfg ~manifest in
    ( s,
      read_file (Option.get cfg.Monitor.alert_log),
      read_file (Option.get cfg.Monitor.metrics_out) )
  in
  let s1, log1, om1 = run "one" in
  let s2, log2, om2 = run "two" in
  check Alcotest.string "alert logs byte-identical" log1 log2;
  check Alcotest.string "expositions byte-identical" om1 om2;
  check Alcotest.int "same tick count" s1.Monitor.r_ticks s2.Monitor.r_ticks;
  check Alcotest.int "same alert count" s1.Monitor.r_alerts s2.Monitor.r_alerts;
  check Alcotest.int "three ticks" 3 s1.Monitor.r_ticks;
  check Alcotest.int "three files" 3 s1.Monitor.r_files;
  check Alcotest.int "no parse failures" 0 s1.Monitor.r_parse_failures

(* --- alerting: injected regression fires, no-op is silent --- *)

let test_regression_alert () =
  let fixture_dir = Lazy.force fixture in
  let manifest = regression_manifest fixture_dir in
  let dir = fresh_dir () in
  let cfg = config ~dir ~tag:"alerts" in
  let s = Monitor.replay cfg ~manifest in
  check Alcotest.bool "alerts raised" true (s.Monitor.r_alerts > 0);
  let alerts = alerts_of_log (Option.get cfg.Monitor.alert_log) in
  (* Tick 1 establishes the baseline: no relative alerts. *)
  check Alcotest.int "baseline tick is silent" 0
    (List.length (List.filter (fun a -> num a "tick" = 1.0) alerts));
  (* Tick 2 carries the injected regression: exactly one CI drift on
     IA_wait, with the window's value outside the baseline interval. *)
  let drifts =
    List.filter (fun a -> str a "rule" = "ia_drift_wait") alerts
  in
  check Alcotest.int "exactly one ia_wait drift" 1 (List.length drifts);
  let d = List.hd drifts in
  check (Alcotest.float 1e-9) "on the delta tick" 2.0 (num d "tick");
  (match field d "data" with
  | Tjson.Obj data ->
    check Alcotest.string "drift metric" "ia_wait" (str data "metric");
    check Alcotest.bool "CI-separated" true
      (num data "value" > num data "hi" || num data "value" < num data "lo")
  | _ -> Alcotest.fail "drift data should be an object");
  (* Regressed-pattern claims carry a factor beyond the threshold. *)
  List.iter
    (fun a ->
      if str a "rule" = "pattern_regressed" then
        match field a "data" with
        | Tjson.Obj data ->
          check Alcotest.bool "factor beyond threshold" true
            (num data "factor" >= 1.5)
        | _ -> Alcotest.fail "pattern data should be an object")
    alerts;
  (* The no-op tick raises nothing. *)
  check Alcotest.int "no-op tick is silent" 0
    (List.length (List.filter (fun a -> num a "tick" = 3.0) alerts))

(* --- snapshot-cache reuse across ticks --- *)

let test_snapshot_reuse () =
  let fixture_dir = Lazy.force fixture in
  let dir = fresh_dir () in
  let t = Monitor.create (config ~dir ~tag:"reuse") in
  Fun.protect ~finally:(fun () -> Monitor.close t) @@ fun () ->
  Monitor.set_clock t 0;
  (match Monitor.ingest t ~mtime_ms:0 (Filename.concat fixture_dir "calm1.dpf") with
  | Ok () -> ()
  | Error e -> Alcotest.failf "ingest: %s" e);
  ignore (Monitor.tick t : Rules.alert list);
  (match Monitor.ingest t ~mtime_ms:0 (Filename.concat fixture_dir "calm2.dpf") with
  | Ok () -> ()
  | Error e -> Alcotest.failf "ingest: %s" e);
  ignore (Monitor.tick t : Rules.alert list);
  match Monitor.snapshot_stats t with
  | None -> Alcotest.fail "snapshot should exist after an analysed tick"
  | Some s ->
    check Alcotest.bool "warm tick reuses cached streams" true
      (s.Dpcore.Snapshot.s_hits > 0);
    check Alcotest.bool "new streams analysed" true
      (s.Dpcore.Snapshot.s_misses > 0)

(* --- absolute rules: parse failure and ingest lag --- *)

let test_parse_failure_and_lag () =
  let fixture_dir = Lazy.force fixture in
  let dir = fresh_dir () in
  let bad = Filename.concat dir "garbage.dpf" in
  write_file bad [ "this is not a corpus" ];
  let t = Monitor.create (config ~dir ~tag:"abs") in
  Fun.protect ~finally:(fun () -> Monitor.close t) @@ fun () ->
  Monitor.set_clock t 0;
  (match Monitor.ingest t ~mtime_ms:0 (Filename.concat fixture_dir "calm1.dpf") with
  | Ok () -> ()
  | Error e -> Alcotest.failf "ingest: %s" e);
  (match Monitor.ingest t ~mtime_ms:0 bad with
  | Ok () -> Alcotest.fail "garbage should not load"
  | Error _ -> ());
  let alerts = Monitor.tick t in
  check Alcotest.int "one parse-failure alert" 1
    (List.length
       (List.filter (fun a -> a.Rules.a_rule = "parse_failure") alerts));
  (* Advance past the lag limit with nothing arriving. *)
  Monitor.advance_clock t 120_000;
  let alerts = Monitor.tick t in
  check Alcotest.int "ingest-lag alert" 1
    (List.length (List.filter (fun a -> a.Rules.a_rule = "ingest_lag") alerts));
  check Alcotest.int "stale parse failure not re-raised" 0
    (List.length
       (List.filter (fun a -> a.Rules.a_rule = "parse_failure") alerts))

(* --- scan: new and changed files only --- *)

let test_scan_incremental () =
  let dir = fresh_dir () in
  gen_save ~seed:1 ~scale:0.05 ~cross:false (Filename.concat dir "a.dpf");
  gen_save ~seed:2 ~scale:0.05 ~cross:false (Filename.concat dir "b.dpf");
  let t = Monitor.create { Monitor.default_config with replicates = 10 } in
  Fun.protect ~finally:(fun () -> Monitor.close t) @@ fun () ->
  check Alcotest.int "first scan loads both" 2 (Monitor.scan t dir);
  check Alcotest.int "second scan loads nothing" 0 (Monitor.scan t dir);
  (* A rewrite (different size) is picked up. *)
  gen_save ~seed:3 ~scale:0.06 ~cross:false (Filename.concat dir "b.dpf");
  check Alcotest.int "changed file reloads" 1 (Monitor.scan t dir)

(* --- the OpenMetrics exposition --- *)

let test_openmetrics_exposition () =
  let fixture_dir = Lazy.force fixture in
  let manifest = regression_manifest fixture_dir in
  let dir = fresh_dir () in
  let cfg = config ~dir ~tag:"om" in
  ignore (Monitor.replay cfg ~manifest : Monitor.replay_summary);
  let om = read_file (Option.get cfg.Monitor.metrics_out) in
  let has s = contains om s in
  check Alcotest.bool "ends with EOF marker" true
    (String.length om > 6
    && String.sub om (String.length om - 6) 6 = "# EOF\n");
  check Alcotest.bool "ticks counter" true (has "monitor_ticks_total 3");
  check Alcotest.bool "files counter" true
    (has "monitor_files_ingested_total 3");
  check Alcotest.bool "streams counter" true
    (has "# TYPE monitor_streams_ingested counter");
  check Alcotest.bool "alerts by rule" true
    (has "monitor_alerts_total{rule=\"ia_drift_wait\"} 1");
  check Alcotest.bool "lag gauge typed" true
    (has "# TYPE monitor_ingest_lag_ms gauge");
  check Alcotest.bool "tick duration quantiles" true
    (has "monitor_tick_duration{quantile=\"0.99\"}");
  check Alcotest.bool "tick duration count" true
    (has "monitor_tick_duration_count 3");
  check Alcotest.bool "virtual durations are zero" true
    (has "monitor_tick_duration_sum 0.0");
  check Alcotest.bool "per-scenario gauge labelled" true
    (has "monitor_scenario_ia_wait_ppm{scenario=\"AppLaunch\"}");
  check Alcotest.bool "help text survives" true
    (has "# HELP monitor_ticks Ingest ticks run")

(* --- manifest errors --- *)

let test_manifest_errors () =
  let dir = fresh_dir () in
  let mpath = Filename.concat dir "bad.manifest" in
  write_file mpath [ "clock 0"; "frobnicate now" ];
  (match Monitor.replay (config ~dir ~tag:"bad") ~manifest:mpath with
  | exception Failure msg ->
    check Alcotest.bool "names the line" true (contains msg ":2:")
  | _ -> Alcotest.fail "malformed manifest should raise");
  match Monitor.replay (config ~dir ~tag:"absent") ~manifest:"no/such/file" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "unreadable manifest should raise"

(* --- churn: injected stat races, flaky tails, injected latency --- *)

let with_plan spec f =
  match Dpfault.parse spec with
  | Error msg -> Alcotest.failf "parse %S: %s" spec msg
  | Ok plan ->
    Dpfault.install plan;
    Fun.protect ~finally:Dpfault.clear f

(* Transient EINTRs on the tail re-read and races on the stat, all under
   the default retry budget: every injection is absorbed, so the whole
   replay — alert log and OpenMetrics exposition — stays byte-identical
   to a fault-free run. No alert is lost, none is duplicated. *)
let test_flaky_tail_replay_identical () =
  let fixture_dir = Lazy.force fixture in
  let manifest = regression_manifest fixture_dir in
  let dir = fresh_dir () in
  let run tag spec =
    let cfg = config ~dir ~tag in
    let go () =
      ignore (Monitor.replay cfg ~manifest : Monitor.replay_summary)
    in
    (match spec with None -> go () | Some s -> with_plan s go);
    ( read_file (Option.get cfg.Monitor.alert_log),
      read_file (Option.get cfg.Monitor.metrics_out) )
  in
  let log0, om0 = run "clean" None in
  let log1, om1 =
    run "flaky" (Some "7:monitor.tail=eintr@0.3,monitor.stat=race@0.3")
  in
  check Alcotest.string "alert log byte-identical under churn" log0 log1;
  check Alcotest.string "exposition byte-identical under churn" om0 om1

(* Injected latency (the slow-disk preset): the virtual clock ignores
   wall-time stalls, and a reinstalled plan replays the same schedule, so
   two slow-disk replays match each other and the fault-free log. *)
let test_slow_disk_replay_deterministic () =
  let fixture_dir = Lazy.force fixture in
  let manifest = regression_manifest fixture_dir in
  let dir = fresh_dir () in
  let run tag spec =
    let cfg = config ~dir ~tag in
    let go () =
      ignore (Monitor.replay cfg ~manifest : Monitor.replay_summary)
    in
    (match spec with None -> go () | Some s -> with_plan s go);
    read_file (Option.get cfg.Monitor.alert_log)
  in
  let clean = run "lat-clean" None in
  let slow1 = run "lat-one" (Some "3:slow-disk") in
  let slow2 = run "lat-two" (Some "3:slow-disk") in
  check Alcotest.string "slow-disk replays match each other" slow1 slow2;
  check Alcotest.string "latency never changes the alerts" clean slow1

(* Stat races during directory scans: the failed-file bookkeeping keeps
   its stats through retries, so a garbage file is alerted on exactly
   once and not re-ingested until it actually changes — then its rewrite
   is picked up like any rotation. *)
let test_scan_under_stat_races () =
  let dir = fresh_dir () in
  gen_save ~seed:1 ~scale:0.05 ~cross:false (Filename.concat dir "a.dpf");
  let garbage = Filename.concat dir "b.dpf" in
  write_file garbage [ "this is not a corpus" ];
  let t = Monitor.create { Monitor.default_config with replicates = 10 } in
  Fun.protect ~finally:(fun () -> Monitor.close t) @@ fun () ->
  Monitor.set_clock t 0;
  with_plan "9:monitor.stat=race@0.4" @@ fun () ->
  check Alcotest.int "first scan ingests both" 2 (Monitor.scan t dir);
  let parse_failures alerts =
    List.length
      (List.filter (fun a -> a.Rules.a_rule = "parse_failure") alerts)
  in
  check Alcotest.int "garbage alerted once" 1 (parse_failures (Monitor.tick t));
  check Alcotest.int "no duplicate ingestion" 0 (Monitor.scan t dir);
  check Alcotest.int "no duplicate alert" 0 (parse_failures (Monitor.tick t));
  (* Rotation: the bad file is rewritten with real data; the change is
     seen through the races and the alert is not re-raised. *)
  gen_save ~seed:3 ~scale:0.06 ~cross:false garbage;
  check Alcotest.int "rotated file reloads" 1 (Monitor.scan t dir);
  check Alcotest.int "recovery is silent" 0 (parse_failures (Monitor.tick t))

(* A tail whose retry budget exhausts degrades into the parse-failure
   path — counted, alerted once — and recovers on the next clean read. *)
let test_tail_exhaustion_recovers () =
  let fixture_dir = Lazy.force fixture in
  let dir = fresh_dir () in
  let t = Monitor.create (config ~dir ~tag:"exhaust") in
  Fun.protect ~finally:(fun () -> Monitor.close t) @@ fun () ->
  Monitor.set_clock t 0;
  let calm = Filename.concat fixture_dir "calm1.dpf" in
  with_plan "5:monitor.tail=fail@1.0!2" (fun () ->
      match Monitor.ingest t ~mtime_ms:0 calm with
      | Ok () -> Alcotest.fail "exhausted tail must not load"
      | Error msg ->
        check Alcotest.bool "error names the injection" true
          (contains msg "injected" && contains msg "monitor.tail"));
  let alerts = Monitor.tick t in
  check Alcotest.int "one parse-failure alert" 1
    (List.length
       (List.filter (fun a -> a.Rules.a_rule = "parse_failure") alerts));
  (* Plan disarmed: the retry-on-change path reloads the file cleanly. *)
  (match Monitor.ingest t ~mtime_ms:1 calm with
  | Ok () -> ()
  | Error e -> Alcotest.failf "clean re-read failed: %s" e);
  let alerts = Monitor.tick t in
  check Alcotest.int "no stale alert after recovery" 0
    (List.length
       (List.filter (fun a -> a.Rules.a_rule = "parse_failure") alerts))

let () =
  Alcotest.run "monitor"
    [
      ( "replay",
        [
          Alcotest.test_case "byte-identical reruns" `Slow
            test_replay_deterministic;
          Alcotest.test_case "manifest errors carry line numbers" `Quick
            test_manifest_errors;
        ] );
      ( "alerting",
        [
          Alcotest.test_case "injected regression drifts, no-op silent" `Slow
            test_regression_alert;
          Alcotest.test_case "parse failure and ingest lag" `Quick
            test_parse_failure_and_lag;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "warm ticks hit the snapshot" `Slow
            test_snapshot_reuse;
          Alcotest.test_case "scan picks up new and changed files" `Quick
            test_scan_incremental;
        ] );
      ( "exposition",
        [
          Alcotest.test_case "OpenMetrics families and samples" `Slow
            test_openmetrics_exposition;
        ] );
      ( "churn",
        [
          Alcotest.test_case "flaky tail replay byte-identical" `Slow
            test_flaky_tail_replay_identical;
          Alcotest.test_case "slow-disk replay deterministic" `Slow
            test_slow_disk_replay_deterministic;
          Alcotest.test_case "stat races: no duplicate or lost alerts"
            `Quick test_scan_under_stat_races;
          Alcotest.test_case "tail exhaustion degrades and recovers" `Quick
            test_tail_exhaustion_recovers;
        ] );
    ]
