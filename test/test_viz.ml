(* Tests for the visual observability layer (dpviz): flow-event pairing
   (every wait slice's s/f flow ids pair exactly once), artifact
   validity (every export parses via Tjson, folded lines are
   well-formed, speedscope invariants hold), byte-identical re-export
   determinism, the slow-vs-fast differential flame localizing the
   --cores run-queue regression, and the monitor's per-alert view
   bundles. *)

module Corpus_gen = Dpworkload.Corpus_gen
module Corpus = Dptrace.Corpus
module Scenario = Dptrace.Scenario
module Timeline = Dptrace.Timeline
module Classify = Dpcore.Classify
module Component = Dpcore.Component
module Awg = Dpcore.Awg
module Wait_graph = Dpwaitgraph.Wait_graph
module Trace_export = Dpviz.Trace_export
module Flame = Dpviz.Flame
module Bundle = Dpviz.Bundle

let check = Alcotest.check

let gen ?(scale = 0.12) ?(cross = true) ?cores seed =
  Corpus_gen.generate
    { Corpus_gen.default_config with seed; scale; cross_traffic = cross; cores }

(* A scenario of the corpus that actually has classified instances. *)
let some_classified corpus =
  List.filter_map
    (fun name ->
      match Classify.classify corpus name with
      | exception Not_found -> None
      | c -> if Classify.total c > 0 then Some c else None)
    (Corpus.scenario_names corpus)

let export_of corpus scenario =
  let c = Classify.classify corpus scenario in
  Trace_export.export (Trace_export.exemplars_of_classes c)

(* --- flow pairing and artifact validity --- *)

let trace_events json =
  match Tjson.parse json with
  | doc -> Tjson.get_arr "traceEvents" doc

let flow_ids ph events =
  List.filter_map
    (fun e ->
      if Tjson.get_str "ph" e = ph then Some (Tjson.get_num "id" e) else None)
    events

let assert_flows_pair json =
  let events = trace_events json in
  let s = List.sort compare (flow_ids "s" events)
  and f = List.sort compare (flow_ids "f" events) in
  check Alcotest.int "every flow start has exactly one finish"
    (List.length s) (List.length f);
  List.iter2 (fun a b -> check (Alcotest.float 0.0) "flow ids pair" a b) s f;
  let rec no_dup = function
    | a :: (b :: _ as tl) ->
      check Alcotest.bool "flow ids unique" false (a = b);
      no_dup tl
    | _ -> ()
  in
  no_dup s;
  List.length s

let test_export_valid_and_flows_pair () =
  let corpus = gen 3 in
  let classified = some_classified corpus in
  check Alcotest.bool "fixture has classified scenarios" true
    (classified <> []);
  let total_flows = ref 0 in
  List.iter
    (fun (c : Classify.t) ->
      let json = export_of corpus c.Classify.spec.Scenario.name in
      total_flows := !total_flows + assert_flows_pair json;
      (* Counter track values never go negative. *)
      List.iter
        (fun e ->
          if Tjson.get_str "ph" e = "C" then
            check Alcotest.bool "waiter count >= 0" true
              (Tjson.get_num "waiters" (Tjson.get "args" e) >= 0.0))
        (trace_events json))
    classified;
  check Alcotest.bool "some scenario exported flow arrows" true
    (!total_flows > 0)

let test_flow_pairing_qcheck =
  QCheck.Test.make ~name:"flow s/f ids pair exactly once on random corpora"
    ~count:6
    QCheck.(pair (int_range 1 1000) (int_range 0 2))
    (fun (seed, cores) ->
      let corpus =
        gen ~scale:0.06 ?cores:(if cores = 0 then None else Some cores) seed
      in
      List.for_all
        (fun (c : Classify.t) ->
          let json = export_of corpus c.Classify.spec.Scenario.name in
          ignore (assert_flows_pair json);
          true)
        (some_classified corpus))

let test_export_deterministic () =
  let corpus = gen 5 in
  match some_classified corpus with
  | [] -> Alcotest.fail "fixture has no classified scenario"
  | c :: _ ->
    let name = c.Classify.spec.Scenario.name in
    check Alcotest.string "re-export is byte-identical"
      (export_of corpus name) (export_of corpus name)

let test_exemplar_selection () =
  let corpus = gen 7 in
  match
    List.find_opt
      (fun (c : Classify.t) -> List.length c.Classify.slow >= 2)
      (some_classified corpus)
  with
  | None -> Alcotest.fail "fixture has no scenario with 2 slow instances"
  | Some c ->
    let xs = Trace_export.exemplars_of_classes ~slow:2 ~fast:1 c in
    let slow =
      List.filter
        (fun (x : Trace_export.exemplar) ->
          String.length x.Trace_export.x_label >= 4
          && String.sub x.Trace_export.x_label 0 4 = "slow")
        xs
    in
    check Alcotest.int "slow exemplar cap respected" 2 (List.length slow);
    (match slow with
    | a :: b :: _ ->
      check Alcotest.bool "slow exemplars ordered slowest-first" true
        (Scenario.duration a.Trace_export.x_instance
        >= Scenario.duration b.Trace_export.x_instance)
    | _ -> Alcotest.fail "expected two slow exemplars");
    List.iter
      (fun (x : Trace_export.exemplar) ->
        let lo, hi = Timeline.instance_window x.Trace_export.x_instance in
        check Alcotest.bool "window contains the instance" true
          (lo <= x.Trace_export.x_instance.Scenario.t0
          && hi >= x.Trace_export.x_instance.Scenario.t1))
      xs

(* --- flame views --- *)

let folded_line_ok line =
  match String.rindex_opt line ' ' with
  | None -> false
  | Some i ->
    let stack = String.sub line 0 i in
    let weight = String.sub line (i + 1) (String.length line - i - 1) in
    (match int_of_string_opt weight with
    | Some w when w > 0 ->
      stack <> ""
      && String.for_all (fun c -> c <> ' ') stack
      && List.for_all
           (fun fr -> fr <> "")
           (String.split_on_char ';' stack)
    | _ -> false)

let test_folded_format () =
  let corpus = gen 11 in
  match some_classified corpus with
  | [] -> Alcotest.fail "fixture has no classified scenario"
  | c :: _ ->
    let folded = Flame.folded_running (c.Classify.slow @ c.Classify.fast) in
    check Alcotest.bool "running profile is non-empty" true (folded <> []);
    let text = Flame.to_folded folded in
    String.split_on_char '\n' text
    |> List.filter (fun l -> l <> "")
    |> List.iter (fun l ->
           check Alcotest.bool ("well-formed folded line: " ^ l) true
             (folded_line_ok l))

let test_speedscope_invariants () =
  let corpus = gen 11 in
  match some_classified corpus with
  | [] -> Alcotest.fail "fixture has no classified scenario"
  | c :: _ ->
    let folded = Flame.folded_running c.Classify.slow in
    let doc =
      Tjson.parse (Dputil.Jsonw.to_string (Flame.to_speedscope ~name:"t" folded))
    in
    check Alcotest.string "schema"
      "https://www.speedscope.app/file-format-schema.json"
      (Tjson.get_str "$schema" doc);
    let frames = Tjson.get_arr "frames" (Tjson.get "shared" doc) in
    let profile =
      match Tjson.get_arr "profiles" doc with
      | [ p ] -> p
      | ps -> Alcotest.fail (Printf.sprintf "want 1 profile, got %d" (List.length ps))
    in
    check Alcotest.string "unit" "microseconds" (Tjson.get_str "unit" profile);
    let samples = Tjson.get_arr "samples" profile
    and weights = Tjson.get_arr "weights" profile in
    check Alcotest.int "samples and weights align" (List.length samples)
      (List.length weights);
    let nframes = List.length frames in
    List.iter
      (fun s ->
        match Tjson.arr s with
        | Some idxs ->
          List.iter
            (fun i ->
              match Tjson.num i with
              | Some f ->
                check Alcotest.bool "frame index in range" true
                  (f >= 0.0 && f < float_of_int nframes)
              | None -> Alcotest.fail "sample frame should be a number")
            idxs
        | None -> Alcotest.fail "sample should be an array")
      samples;
    let sum =
      List.fold_left
        (fun acc w -> acc + int_of_float (Option.get (Tjson.num w)))
        0 weights
    in
    check Alcotest.int "endValue = sum of weights" sum
      (int_of_float (Tjson.get_num "endValue" profile))

let test_diff_arithmetic () =
  let slow = [ ([ "a"; "b" ], 100); ([ "c" ], 40) ]
  and fast = [ ([ "a"; "b" ], 30); ([ "c" ], 90); ([ "d" ], 5) ] in
  (match Flame.diff ~slow ~fast with
  | [ ([ "a"; "b" ], 70) ] -> ()
  | d -> Alcotest.fail (Printf.sprintf "unexpected diff of %d entries" (List.length d)));
  check
    (Alcotest.list (Alcotest.pair (Alcotest.list Alcotest.string) Alcotest.int))
    "normalize averages per instance"
    [ ([ "a" ], 33) ]
    (Flame.normalize [ ([ "a" ], 100); ([ "b" ], 1) ] ~instances:3)

(* The acceptance check: on a --cores starved corpus, the slow-vs-fast
   differential AWG flame (over all components, so kernel frames
   survive into the AWG) ranks a run-queue wait signature first. *)
let test_differential_localizes_run_queue () =
  let corpus = gen ~scale:0.2 ~cores:1 9 in
  let everything = Component.of_patterns [ "*" ] in
  let c = Classify.classify corpus "AppAccessControl" in
  let _, _, slow_n = Classify.counts c in
  check Alcotest.bool "regression corpus has slow instances" true (slow_n > 0);
  let awg_of pairs =
    Awg.build everything
      (List.map
         (fun ((st : Dptrace.Stream.t), i) ->
           Wait_graph.build ~index:(Dptrace.Stream.shared_index st) st i)
         pairs)
  in
  let diff =
    Flame.diff
      ~slow:
        (Flame.normalize
           (Flame.folded_awg (awg_of c.Classify.slow))
           ~instances:(List.length c.Classify.slow))
      ~fast:
        (Flame.normalize
           (Flame.folded_awg (awg_of c.Classify.fast))
           ~instances:(List.length c.Classify.fast))
  in
  match diff with
  | [] -> Alcotest.fail "differential flame is empty"
  | (top_path, delta) :: _ ->
    check Alcotest.bool "top delta positive" true (delta > 0);
    let mentions_run_queue =
      List.exists
        (fun frame ->
          (* frame is e.g. "wait:kernel!CpuQueue<-App!AccessCheck" *)
          let needle = "kernel!CpuQueue" in
          let n = String.length needle and l = String.length frame in
          let rec scan i =
            i + n <= l && (String.sub frame i n = needle || scan (i + 1))
          in
          scan 0)
        top_path
    in
    check Alcotest.bool
      (Printf.sprintf "top differential path mentions the run queue: %s"
         (String.concat ";" top_path))
      true mentions_run_queue

(* --- bundles and the monitor hook --- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fresh_dir =
  let ctr = ref 0 in
  fun () ->
    incr ctr;
    let dir = Printf.sprintf "viz_%d" !ctr in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    dir

let test_bundle_deterministic () =
  let corpus = gen 13 in
  match some_classified corpus with
  | [] -> Alcotest.fail "fixture has no classified scenario"
  | c :: _ ->
    let base = fresh_dir () in
    let b1 = Bundle.write ~dir:(Filename.concat base "a") c in
    let b2 = Bundle.write ~dir:(Filename.concat base "b") c in
    check Alcotest.int "same file set" (List.length b1.Bundle.files)
      (List.length b2.Bundle.files);
    List.iter2
      (fun f1 f2 ->
        check Alcotest.string
          ("byte-identical re-export: " ^ Filename.basename f1)
          (read_file f1) (read_file f2))
      b1.Bundle.files b2.Bundle.files;
    (* Every JSON artifact of the bundle parses. *)
    List.iter
      (fun f ->
        if Filename.check_suffix f ".json" then
          match Tjson.parse (read_file f) with
          | _ -> ()
          | exception Tjson.Bad msg ->
            Alcotest.fail (Filename.basename f ^ ": " ^ msg))
      b1.Bundle.files

let test_viz_counters () =
  Dpobs.enable ~spans:false ~metrics:true ();
  Dpobs.Metrics.reset ();
  let corpus = gen 3 in
  (match some_classified corpus with
  | [] -> Alcotest.fail "fixture has no classified scenario"
  | c :: _ -> ignore (export_of corpus c.Classify.spec.Scenario.name));
  let v name = Dpobs.Metrics.counter_value (Dpobs.Metrics.counter name) in
  check Alcotest.bool "viz.slices_emitted counts" true
    (v "viz.slices_emitted" > 0);
  check Alcotest.bool "viz.flows_emitted counts" true
    (v "viz.flows_emitted" > 0)

let write_lines path lines =
  let oc = open_out path in
  List.iter (fun l -> output_string oc (l ^ "\n")) lines;
  close_out oc

let test_monitor_view_bundles () =
  let dir = fresh_dir () in
  let p name = Filename.concat dir name in
  Dptrace.Codec_v2.save (p "calm1.dpf") (gen ~cross:false 1);
  Dptrace.Codec_v2.save (p "calm2.dpf") (gen ~cross:false 2);
  Dptrace.Codec_v2.save (p "slow.dpf") (gen ~cores:1 9);
  let manifest = p "replay.manifest" in
  write_lines manifest
    [
      "clock 1000"; "add calm1.dpf"; "tick"; "clock +5000"; "add calm2.dpf";
      "tick"; "clock +5000"; "add slow.dpf"; "tick";
    ];
  let view_dir = p "views" in
  let config =
    {
      Dpmon.Monitor.default_config with
      replicates = 40;
      alert_log = Some (p "alerts.jsonl");
      view_dir = Some view_dir;
    }
  in
  let s = Dpmon.Monitor.replay config ~manifest in
  check Alcotest.bool "replay raised alerts" true (s.Dpmon.Monitor.r_alerts > 0);
  let alerts =
    read_file (p "alerts.jsonl")
    |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "")
    |> List.map Tjson.parse
  in
  let with_scenario =
    List.filter (fun a -> Tjson.str (Tjson.get "scenario" a) <> None) alerts
  in
  check Alcotest.bool "some alert names a scenario" true (with_scenario <> []);
  List.iter
    (fun a ->
      let view = Tjson.get_str "view" a in
      check Alcotest.bool "alert view is under --view-dir" true
        (String.length view > String.length view_dir
        && String.sub view 0 (String.length view_dir) = view_dir);
      check Alcotest.bool ("bundle directory exists: " ^ view) true
        (Sys.is_directory view);
      let trace = read_file (Filename.concat view "trace.json") in
      ignore (assert_flows_pair trace);
      check Alcotest.bool "bundle has the differential flame" true
        (Sys.file_exists (Filename.concat view "flame_diff.folded")))
    with_scenario;
  (* Scenario-less alerts must not claim a view. *)
  List.iter
    (fun a ->
      if Tjson.str (Tjson.get "scenario" a) = None then
        check Alcotest.bool "no view on scenario-less alerts" true
          (Tjson.member "view" a = None))
    alerts

let () =
  Alcotest.run "viz"
    [
      ( "export",
        [
          Alcotest.test_case "artifacts parse, flows pair" `Slow
            test_export_valid_and_flows_pair;
          QCheck_alcotest.to_alcotest test_flow_pairing_qcheck;
          Alcotest.test_case "byte-identical re-export" `Slow
            test_export_deterministic;
          Alcotest.test_case "exemplar selection and windows" `Quick
            test_exemplar_selection;
        ] );
      ( "flame",
        [
          Alcotest.test_case "folded lines well-formed" `Quick
            test_folded_format;
          Alcotest.test_case "speedscope invariants" `Quick
            test_speedscope_invariants;
          Alcotest.test_case "diff and normalize arithmetic" `Quick
            test_diff_arithmetic;
          Alcotest.test_case "differential localizes --cores run queue" `Slow
            test_differential_localizes_run_queue;
        ] );
      ( "bundle",
        [
          Alcotest.test_case "deterministic, JSON parses" `Slow
            test_bundle_deterministic;
          Alcotest.test_case "viz counters count" `Quick test_viz_counters;
          Alcotest.test_case "monitor exports per-alert views" `Slow
            test_monitor_view_bundles;
        ] );
    ]
