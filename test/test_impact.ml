(* Tests for the impact analysis (Section 3.2): top-level counting, the
   distinct-wait deduplication and the derived IA metrics. *)

module P = Dpsim.Program
module Engine = Dpsim.Engine
module Time = Dputil.Time
module Impact = Dpcore.Impact
module Component = Dpcore.Component

let check = Alcotest.check
let sig_ = Dptrace.Signature.of_string
let drivers = Component.drivers

(* One instance blocked 9 ms on a driver lock; instance lasts exactly the
   wait + 3 ms of app compute. *)
let simple_corpus () =
  let engine = Engine.create ~stream_id:0 () in
  let lock = Engine.new_lock engine ~name:"L" in
  let _holder =
    Engine.spawn engine ~start_at:0 ~name:"h" ~base_stack:[ sig_ "bg!w" ]
      [ P.locked lock [ P.compute ~frame:(sig_ "d.sys!Hold") (Time.ms 10) ] ]
  in
  let _victim =
    Engine.spawn engine ~scenario:"S" ~start_at:(Time.ms 1) ~name:"v"
      ~base_stack:[ sig_ "app!op" ]
      [
        P.compute (Time.ms 1);
        P.call (sig_ "d.sys!Get") [ P.locked lock [ P.compute (Time.ms 2) ] ];
      ]
  in
  let st = Engine.run engine in
  Dptrace.Corpus.create ~streams:[ st ]
    ~specs:[ Dptrace.Scenario.spec ~name:"S" ~tfast:(Time.ms 5) ~tslow:(Time.ms 8) ]

let test_simple_numbers () =
  let r = Impact.analyze drivers (simple_corpus ()) in
  (* Victim: start 1 ms, compute 1 ms, blocks at 2 ms until 10 ms (8 ms),
     computes 2 ms, ends at 12 ms → duration 11 ms. *)
  check Alcotest.int "instances" 1 r.Impact.instances;
  check Alcotest.int "d_scn" (Time.ms 11) r.Impact.d_scn;
  check Alcotest.int "d_wait" (Time.ms 8) r.Impact.d_wait;
  check Alcotest.int "one counted wait" 1 r.Impact.counted_waits;
  check Alcotest.int "no dup => dist = wait" r.Impact.d_wait r.Impact.d_waitdist;
  (* Driver CPU visible from the graph: holder's 10 ms (child of the
     wait) + victim's own 2 ms. *)
  check Alcotest.int "d_run" (Time.ms 12) r.Impact.d_run;
  check (Alcotest.float 1e-9) "ia_wait" (8.0 /. 11.0) (Impact.ia_wait r);
  check (Alcotest.float 1e-9) "ia_opt 0 without sharing" 0.0 (Impact.ia_opt r);
  check (Alcotest.float 1e-9) "ratio 1 without sharing" 1.0
    (Impact.propagation_ratio r)

let test_component_filter_excludes () =
  let none = Component.of_patterns [ "nomatch.dll" ] in
  let r = Impact.analyze none (simple_corpus ()) in
  check Alcotest.int "no waits counted" 0 r.Impact.d_wait;
  check Alcotest.int "no cpu counted" 0 r.Impact.d_run;
  check Alcotest.bool "d_scn still measured" true (r.Impact.d_scn > 0)

(* Two instances observe the same holder wait through an app-level queue:
   D_wait counts it twice, D_waitdist once. *)
let shared_corpus () =
  let engine = Engine.create ~stream_id:0 () in
  let queue = Engine.new_lock engine ~name:"Q" in
  let svc = Engine.new_service engine ~name:"W" ~worker_stack:[ P.kernel_worker ] in
  let _holder =
    Engine.spawn engine ~start_at:0 ~name:"h" ~base_stack:[ sig_ "bg!w" ]
      [
        P.locked
          ~acquire_frames:[ sig_ "App!Queue" ]
          queue
          [
            P.call (sig_ "d.sys!Deep")
              [ P.request svc [ P.compute ~frame:(sig_ "d.sys!Work") (Time.ms 40) ] ];
          ];
      ]
  in
  let spawn_victim i =
    ignore
      (Engine.spawn engine ~scenario:"S"
         ~start_at:(Time.ms (1 + i))
         ~name:(Printf.sprintf "v%d" i)
         ~base_stack:[ sig_ "app!op" ]
         [
           P.locked ~acquire_frames:[ sig_ "App!Queue" ] queue
             [ P.compute (Time.ms 1) ];
         ])
  in
  spawn_victim 0;
  spawn_victim 1;
  let st = Engine.run engine in
  Dptrace.Corpus.create ~streams:[ st ]
    ~specs:[ Dptrace.Scenario.spec ~name:"S" ~tfast:(Time.ms 5) ~tslow:(Time.ms 8) ]

let test_distinct_wait_dedup () =
  let r = Impact.analyze drivers (shared_corpus ()) in
  (* The holder's driver wait (the 40 ms request) is the only driver wait;
     each victim descends into it through its app-level queue wait. *)
  check Alcotest.int "counted twice" 2 r.Impact.counted_waits;
  check Alcotest.int "d_wait doubles" (Time.ms 80) r.Impact.d_wait;
  check Alcotest.int "d_waitdist once" (Time.ms 40) r.Impact.d_waitdist;
  check (Alcotest.float 1e-9) "ratio 2" 2.0 (Impact.propagation_ratio r);
  check Alcotest.bool "ia_opt positive" true (Impact.ia_opt r > 0.0)

let test_bfs_stops_at_topmost_driver_wait () =
  (* A driver-tagged victim wait must be counted itself; the holder's
     deeper driver wait below it must NOT be double counted. *)
  let engine = Engine.create ~stream_id:0 () in
  let lock = Engine.new_lock engine ~name:"L" in
  let svc = Engine.new_service engine ~name:"W" ~worker_stack:[ P.kernel_worker ] in
  let _holder =
    Engine.spawn engine ~start_at:0 ~name:"h" ~base_stack:[ sig_ "bg!w" ]
      [
        P.locked lock
          [
            P.call (sig_ "e.sys!Inner")
              [ P.request svc [ P.compute ~frame:(sig_ "e.sys!W") (Time.ms 20) ] ];
          ];
      ]
  in
  let _victim =
    Engine.spawn engine ~scenario:"S" ~start_at:(Time.ms 1) ~name:"v"
      ~base_stack:[ sig_ "app!op" ]
      [ P.call (sig_ "d.sys!Get") [ P.locked lock [ P.compute (Time.ms 1) ] ] ]
  in
  let st = Engine.run engine in
  let corpus =
    Dptrace.Corpus.create ~streams:[ st ]
      ~specs:[ Dptrace.Scenario.spec ~name:"S" ~tfast:(Time.ms 5) ~tslow:(Time.ms 8) ]
  in
  let r = Impact.analyze drivers corpus in
  check Alcotest.int "single top-level wait" 1 r.Impact.counted_waits;
  (* The victim blocks from 1 ms until the holder releases (~20 ms). *)
  check Alcotest.int "victim's own wait counted" (Time.ms 19) r.Impact.d_wait

let test_merge () =
  let a = Impact.analyze drivers (simple_corpus ()) in
  let b = Impact.analyze drivers (shared_corpus ()) in
  let m = Impact.merge a b in
  check Alcotest.int "d_scn adds" (a.Impact.d_scn + b.Impact.d_scn) m.Impact.d_scn;
  check Alcotest.int "d_wait adds" (a.Impact.d_wait + b.Impact.d_wait) m.Impact.d_wait;
  check Alcotest.int "instances add" 3 m.Impact.instances

let test_analyze_graphs_equals_analyze () =
  let corpus = shared_corpus () in
  let graphs =
    List.concat_map
      (fun (st : Dptrace.Stream.t) ->
        let index = Dptrace.Stream.index st in
        List.map
          (Dpwaitgraph.Wait_graph.build ~index st)
          st.Dptrace.Stream.instances)
      corpus.Dptrace.Corpus.streams
  in
  let a = Impact.analyze drivers corpus in
  let b = Impact.analyze_graphs drivers graphs in
  check Alcotest.int "same d_wait" a.Impact.d_wait b.Impact.d_wait;
  check Alcotest.int "same d_waitdist" a.Impact.d_waitdist b.Impact.d_waitdist;
  check Alcotest.int "same d_run" a.Impact.d_run b.Impact.d_run

let test_empty_corpus () =
  let corpus = Dptrace.Corpus.create ~streams:[] ~specs:[] in
  let r = Impact.analyze drivers corpus in
  check Alcotest.int "zero everything" 0
    (r.Impact.d_scn + r.Impact.d_wait + r.Impact.d_run + r.Impact.instances);
  check (Alcotest.float 1e-9) "ratios total" 0.0 (Impact.ia_wait r)


(* --- per-module breakdown --- *)

let test_by_module () =
  let corpus = shared_corpus () in
  let graphs =
    List.concat_map
      (fun (st : Dptrace.Stream.t) ->
        let index = Dptrace.Stream.index st in
        List.map (Dpwaitgraph.Wait_graph.build ~index st) st.Dptrace.Stream.instances)
      corpus.Dptrace.Corpus.streams
  in
  let rows = Impact.by_module drivers graphs in
  match rows with
  | [ row ] ->
    check Alcotest.string "module" "d.sys" row.Impact.module_name;
    check Alcotest.int "wait doubles" (Time.ms 80) row.Impact.m_wait;
    check Alcotest.int "distinct once" (Time.ms 40) row.Impact.m_waitdist;
    check (Alcotest.float 1e-9) "ratio" 2.0 (Impact.module_propagation_ratio row);
    check Alcotest.int "max single" (Time.ms 40) row.Impact.m_max_wait;
    check Alcotest.int "counted" 2 row.Impact.m_counted_waits
  | rows -> Alcotest.failf "expected one module row, got %d" (List.length rows)

let test_by_module_totals_match () =
  (* The per-module rows must partition the aggregate D_wait. *)
  let corpus =
    Dpworkload.Corpus_gen.generate (Dpworkload.Corpus_gen.scaled 0.03)
  in
  let graphs =
    List.concat_map
      (fun (st : Dptrace.Stream.t) ->
        let index = Dptrace.Stream.index st in
        List.map (Dpwaitgraph.Wait_graph.build ~index st) st.Dptrace.Stream.instances)
      corpus.Dptrace.Corpus.streams
  in
  let total = Impact.analyze_graphs drivers graphs in
  let rows = Impact.by_module drivers graphs in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  check Alcotest.int "wait partitions" total.Impact.d_wait
    (sum (fun r -> r.Impact.m_wait));
  check Alcotest.int "waitdist partitions" total.Impact.d_waitdist
    (sum (fun r -> r.Impact.m_waitdist));
  check Alcotest.int "run partitions" total.Impact.d_run
    (sum (fun r -> r.Impact.m_run));
  check Alcotest.int "counts partition" total.Impact.counted_waits
    (sum (fun r -> r.Impact.m_counted_waits))


let test_impact_per_scenario_partitions () =
  let corpus = Dpworkload.Corpus_gen.generate (Dpworkload.Corpus_gen.scaled 0.03) in
  let whole = Dpcore.Pipeline.run_impact drivers corpus in
  let per = Dpcore.Pipeline.impact_per_scenario drivers corpus in
  check Alcotest.int "every scenario present"
    (List.length (Dptrace.Corpus.scenario_names corpus))
    (List.length per);
  let sum f = List.fold_left (fun acc (_, r) -> acc + f r) 0 per in
  check Alcotest.int "d_scn partitions" whole.Impact.d_scn
    (sum (fun (r : Impact.result) -> r.Impact.d_scn));
  check Alcotest.int "d_wait partitions" whole.Impact.d_wait
    (sum (fun (r : Impact.result) -> r.Impact.d_wait));
  check Alcotest.int "d_run partitions" whole.Impact.d_run
    (sum (fun (r : Impact.result) -> r.Impact.d_run));
  check Alcotest.int "instances partition" whole.Impact.instances
    (sum (fun (r : Impact.result) -> r.Impact.instances));
  (* Cross-scenario sharing: per-scenario distinct sums can only exceed
     the whole-corpus distinct total. *)
  check Alcotest.bool "waitdist superadditive" true
    (sum (fun (r : Impact.result) -> r.Impact.d_waitdist)
    >= whole.Impact.d_waitdist);
  (* Sorted by wait mass. *)
  let rec sorted = function
    | (_, (a : Impact.result)) :: ((_, b) :: _ as rest) ->
      a.Impact.d_wait >= b.Impact.d_wait && sorted rest
    | _ -> true
  in
  check Alcotest.bool "sorted" true (sorted per)

let () =
  Alcotest.run "dpcore-impact"
    [
      ( "impact",
        [
          Alcotest.test_case "simple numbers" `Quick test_simple_numbers;
          Alcotest.test_case "component filter" `Quick test_component_filter_excludes;
          Alcotest.test_case "distinct-wait dedup" `Quick test_distinct_wait_dedup;
          Alcotest.test_case "BFS stops at topmost" `Quick
            test_bfs_stops_at_topmost_driver_wait;
          Alcotest.test_case "merge" `Quick test_merge;
          Alcotest.test_case "analyze_graphs agreement" `Quick
            test_analyze_graphs_equals_analyze;
          Alcotest.test_case "empty corpus" `Quick test_empty_corpus;
        ] );
      ( "per_scenario",
        [
          Alcotest.test_case "partitions" `Quick test_impact_per_scenario_partitions;
        ] );
      ( "by_module",
        [
          Alcotest.test_case "shared corpus" `Quick test_by_module;
          Alcotest.test_case "totals partition" `Quick test_by_module_totals_match;
        ] );
    ]
