(* Tests for Signature Set Tuples and contrast mining (Section 4.2.3). *)

module P = Dpsim.Program
module Engine = Dpsim.Engine
module Time = Dputil.Time
module Awg = Dpcore.Awg
module Tuple = Dpcore.Tuple
module Mining = Dpcore.Mining
module Evaluation = Dpcore.Evaluation
module WG = Dpwaitgraph.Wait_graph

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest
let sig_ = Dptrace.Signature.of_string
let drivers = Dpcore.Component.drivers

(* --- Tuple --- *)

let t ~w ~u ~r =
  Tuple.make
    ~waits:(List.map sig_ w)
    ~unwaits:(List.map sig_ u)
    ~runnings:(List.map sig_ r)

let test_tuple_normalization () =
  let a = t ~w:[ "b!2"; "a!1"; "a!1" ] ~u:[] ~r:[ "c!3" ] in
  let b = t ~w:[ "a!1"; "b!2" ] ~u:[] ~r:[ "c!3" ] in
  check Alcotest.bool "sorted, deduped, order-insensitive" true (Tuple.equal a b);
  check Alcotest.int "hash agrees" (Tuple.hash a) (Tuple.hash b);
  check Alcotest.int "compare agrees" 0 (Tuple.compare a b)

let test_tuple_subset () =
  let small = t ~w:[ "a!1" ] ~u:[ "x!9" ] ~r:[] in
  let big = t ~w:[ "a!1"; "b!2" ] ~u:[ "x!9" ] ~r:[ "c!3" ] in
  check Alcotest.bool "subset" true (Tuple.subset small big);
  check Alcotest.bool "not superset" false (Tuple.subset big small);
  check Alcotest.bool "reflexive" true (Tuple.subset big big);
  check Alcotest.bool "role-sensitive" false
    (Tuple.subset (t ~w:[ "x!9" ] ~u:[] ~r:[]) big)

let test_tuple_empty () =
  let e = t ~w:[] ~u:[] ~r:[] in
  check Alcotest.bool "is_empty" true (Tuple.is_empty e);
  check Alcotest.bool "empty subset of anything" true
    (Tuple.subset e (t ~w:[ "a!1" ] ~u:[] ~r:[]))

let test_tuple_all_signatures () =
  let x = t ~w:[ "a!1" ] ~u:[ "b!2" ] ~r:[ "a!1"; "c!3" ] in
  check Alcotest.int "distinct union" 3 (List.length (Tuple.all_signatures x))

let sig_gen =
  QCheck.Gen.(
    map
      (fun (m, f) -> Printf.sprintf "%c.sys!%c" m f)
      (pair (char_range 'a' 'e') (char_range 'A' 'E')))

let tuple_gen =
  QCheck.Gen.(
    map
      (fun (w, u, r) ->
        Tuple.make
          ~waits:(List.map sig_ w)
          ~unwaits:(List.map sig_ u)
          ~runnings:(List.map sig_ r))
      (triple
         (list_size (int_range 0 4) sig_gen)
         (list_size (int_range 0 4) sig_gen)
         (list_size (int_range 0 4) sig_gen)))

let arbitrary_tuple = QCheck.make tuple_gen

let prop_subset_reflexive =
  QCheck.Test.make ~name:"subset is reflexive" ~count:200 arbitrary_tuple
    (fun x -> Tuple.subset x x)

let prop_subset_antisym =
  QCheck.Test.make ~name:"mutual subset implies equal" ~count:200
    QCheck.(pair arbitrary_tuple arbitrary_tuple)
    (fun (a, b) ->
      (not (Tuple.subset a b && Tuple.subset b a)) || Tuple.equal a b)

let prop_equal_hash =
  QCheck.Test.make ~name:"equal tuples hash equally" ~count:200
    QCheck.(pair arbitrary_tuple arbitrary_tuple)
    (fun (a, b) -> (not (Tuple.equal a b)) || Tuple.hash a = Tuple.hash b)

(* --- mining over constructed episodes --- *)

let spec = Dptrace.Scenario.spec ~name:"S" ~tfast:(Time.ms 20) ~tslow:(Time.ms 60)

(* Slow episode: contention over d.sys!Route with a served disk read.
   Fast episode: the same victim path, uncontended. *)
let episode ~stream_id ~contended =
  let engine = Engine.create ~stream_id () in
  let lock = Engine.new_lock engine ~name:"L" in
  let disk = Engine.new_device engine ~name:"D" ~signature:(sig_ "DiskService") in
  let svc = Engine.new_service engine ~name:"W" ~worker_stack:[ P.kernel_worker ] in
  if contended then
    ignore
      (Engine.spawn engine ~start_at:0 ~name:"h" ~base_stack:[ sig_ "bg!w" ]
         [
           P.call (sig_ "d.sys!Route")
             [
               P.locked lock
                 [
                   P.request svc
                     [ P.call (sig_ "e.sys!Read") [ P.hw disk (Time.ms 80) ] ];
                 ];
             ];
         ]);
  ignore
    (Engine.spawn engine ~scenario:"S" ~start_at:(Time.ms 1) ~name:"v"
       ~base_stack:[ sig_ "app!op" ]
       [
         P.compute (Time.ms 2);
         P.call (sig_ "d.sys!Route") [ P.locked lock [ P.compute (Time.ms 2) ] ];
       ]);
  Engine.run engine

let graphs_of st =
  let index = Dptrace.Stream.index st in
  List.map (WG.build ~index st) st.Dptrace.Stream.instances

let mined () =
  let slow_graphs =
    List.concat_map (fun i -> graphs_of (episode ~stream_id:i ~contended:true))
      [ 0; 1; 2 ]
  in
  let fast_graphs =
    List.concat_map
      (fun i -> graphs_of (episode ~stream_id:(10 + i) ~contended:false))
      [ 0; 1; 2 ]
  in
  let slow = Awg.build drivers slow_graphs in
  let fast = Awg.build drivers fast_graphs in
  Mining.mine ~fast ~slow ~spec ()

let test_mining_finds_contrast () =
  let r = mined () in
  check Alcotest.bool "has contrasts" true (r.Mining.contrast_metas <> []);
  check Alcotest.bool "has patterns" true (r.Mining.patterns <> []);
  let top = List.hd r.Mining.patterns in
  let names =
    List.map Dptrace.Signature.name (Tuple.all_signatures top.Mining.tuple)
  in
  check Alcotest.bool "blames the chain" true
    (List.mem "d.sys!Route" names && List.mem "DiskService" names)

let test_mining_slow_only_reason () =
  let r = mined () in
  (* The contention chain never occurs in the fast class. *)
  check Alcotest.bool "some slow-only contrast" true
    (List.exists
       (fun cm -> cm.Mining.reason = Mining.Slow_only)
       r.Mining.contrast_metas)

let test_patterns_ranked () =
  let r = mined () in
  let rec decreasing = function
    | a :: (b :: _ as rest) ->
      Mining.avg_cost a >= Mining.avg_cost b && decreasing rest
    | _ -> true
  in
  check Alcotest.bool "ranked by avg cost" true (decreasing r.Mining.patterns)

let test_identical_patterns_merged () =
  let r = mined () in
  let tuples = List.map (fun p -> p.Mining.tuple) r.Mining.patterns in
  let distinct = List.sort_uniq Tuple.compare tuples in
  check Alcotest.int "no duplicate tuples" (List.length distinct)
    (List.length tuples)

let test_no_contrast_when_classes_equal () =
  let graphs =
    List.concat_map (fun i -> graphs_of (episode ~stream_id:i ~contended:true))
      [ 0; 1 ]
  in
  let awg_a = Awg.build drivers graphs in
  let awg_b = Awg.build drivers graphs in
  let r = Mining.mine ~fast:awg_a ~slow:awg_b ~spec () in
  check (Alcotest.list Alcotest.string) "no contrasts" []
    (List.map (fun _ -> "c") r.Mining.contrast_metas);
  check Alcotest.int "no patterns" 0 (List.length r.Mining.patterns)

let test_tuple_interned () =
  let a = t ~w:[ "a!1"; "b!2" ] ~u:[ "c!3" ] ~r:[ "d!4" ] in
  let b = t ~w:[ "b!2"; "a!1"; "b!2" ] ~u:[ "c!3" ] ~r:[ "d!4" ] in
  check Alcotest.bool "hash-consed: physically shared" true (a == b);
  check Alcotest.int "same id" (Tuple.id a) (Tuple.id b);
  let c = t ~w:[ "a!1" ] ~u:[ "c!3" ] ~r:[ "d!4" ] in
  check Alcotest.bool "distinct content, distinct id" true
    (Tuple.id a <> Tuple.id c)

let test_meta_enumeration_k_sensitivity () =
  let graphs = graphs_of (episode ~stream_id:0 ~contended:true) in
  let awg = Awg.build drivers graphs in
  let m1 = List.length (Mining.enumerate_metas awg ~k:1) in
  let m5 = List.length (Mining.enumerate_metas awg ~k:5) in
  check Alcotest.bool "more metas with larger k" true (m5 > m1)

(* --- engine vs reference equivalence on random scenarios ---

   The optimised miner (incremental enumeration, hash-consed tuples,
   inverted pattern index, optional per-root parallelism) must return a
   [result] structurally identical to the retained naive reference —
   same metas, contrast reasons, pattern ranking and provenance witness
   sets — for any AWG shape and any k. *)

type rand_scene = {
  rk : int;
  n_slow : int;
  n_fast : int;
  hold_ms : int;
  slow_extra : P.step list;
  fast_extra : P.step list;
}

let rec rand_prog_gen depth =
  QCheck.Gen.(
    if depth <= 0 then map (fun n -> P.compute (Time.ms (1 + n))) (int_bound 4)
    else
      frequency
        [
          (1, map (fun n -> P.compute (Time.ms (1 + n))) (int_bound 4));
          ( 2,
            map2
              (fun s kids -> P.call (sig_ s) kids)
              sig_gen
              (list_size (int_range 0 2) (rand_prog_gen (depth - 1))) );
        ])

let scene_gen =
  QCheck.Gen.(
    map
      (fun (rk, n_slow, n_fast, hold_ms, slow_extra, fast_extra) ->
        { rk; n_slow; n_fast; hold_ms; slow_extra; fast_extra })
      (tup6 (int_range 1 6) (int_range 1 3) (int_range 1 3) (int_range 20 90)
         (list_size (int_range 0 3) (rand_prog_gen 2))
         (list_size (int_range 0 3) (rand_prog_gen 2))))

let episode_r ~stream_id ~contended ~hold_ms ~extra =
  let engine = Engine.create ~stream_id () in
  let lock = Engine.new_lock engine ~name:"L" in
  let disk =
    Engine.new_device engine ~name:"D" ~signature:(sig_ "DiskService")
  in
  let svc =
    Engine.new_service engine ~name:"W" ~worker_stack:[ P.kernel_worker ]
  in
  if contended then
    ignore
      (Engine.spawn engine ~start_at:0 ~name:"h" ~base_stack:[ sig_ "bg!w" ]
         [
           P.call (sig_ "d.sys!Route")
             [
               P.locked lock
                 [
                   P.request svc
                     [
                       P.call (sig_ "e.sys!Read")
                         [ P.hw disk (Time.ms hold_ms) ];
                     ];
                 ];
             ];
         ]);
  ignore
    (Engine.spawn engine ~scenario:"S" ~start_at:(Time.ms 1) ~name:"v"
       ~base_stack:[ sig_ "app!op" ]
       (P.compute (Time.ms 2)
        :: P.call (sig_ "d.sys!Route") [ P.locked lock [ P.compute (Time.ms 2) ] ]
        :: extra));
  Engine.run engine

let awgs_of_scene sc =
  let slow_graphs =
    List.concat_map
      (fun i ->
        graphs_of
          (episode_r ~stream_id:i ~contended:true ~hold_ms:sc.hold_ms
             ~extra:sc.slow_extra))
      (List.init sc.n_slow (fun i -> i))
  in
  let fast_graphs =
    List.concat_map
      (fun i ->
        graphs_of
          (episode_r ~stream_id:(100 + i) ~contended:false ~hold_ms:sc.hold_ms
             ~extra:sc.fast_extra))
      (List.init sc.n_fast (fun i -> i))
  in
  (Awg.build drivers fast_graphs, Awg.build drivers slow_graphs)

let equivalence_prop ~name ~prov =
  QCheck.Test.make ~name ~count:25 (QCheck.make scene_gen) (fun sc ->
      (if prov then Dpcore.Provenance.enable ()
       else Dpcore.Provenance.disable ());
      Fun.protect ~finally:Dpcore.Provenance.disable @@ fun () ->
      let fast, slow = awgs_of_scene sc in
      let reference = Mining.Reference.mine ~k:sc.rk ~fast ~slow ~spec () in
      let engine = Mining.mine ~k:sc.rk ~fast ~slow ~spec () in
      let pooled =
        Dppar.Pool.with_pool ~domains:2 (fun pool ->
            Mining.mine ~pool ~k:sc.rk ~fast ~slow ~spec ())
      in
      engine = reference && pooled = reference)

let prop_engine_matches_reference =
  equivalence_prop ~name:"engine = reference (sequential and pooled)"
    ~prov:false

let prop_engine_matches_reference_prov =
  equivalence_prop ~name:"engine = reference with provenance witnesses"
    ~prov:true

(* --- Evaluation helpers --- *)

let pattern ~cost ~count ~max_single ~w =
  Mining.make_pattern ~tuple:(t ~w ~u:[] ~r:[]) ~cost ~count ~max_single

let test_high_impact_rule () =
  check Alcotest.bool "above tslow" true
    (Evaluation.high_impact
       (pattern ~cost:10 ~count:1 ~max_single:(Time.ms 100) ~w:[ "a!1" ])
       ~tslow:(Time.ms 60));
  check Alcotest.bool "below tslow" false
    (Evaluation.high_impact
       (pattern ~cost:10 ~count:1 ~max_single:(Time.ms 10) ~w:[ "a!1" ])
       ~tslow:(Time.ms 60))

let test_time_coverages () =
  let ps =
    [
      pattern ~cost:(Time.ms 30) ~count:1 ~max_single:(Time.ms 100) ~w:[ "a!1" ];
      pattern ~cost:(Time.ms 20) ~count:1 ~max_single:(Time.ms 10) ~w:[ "b!2" ];
    ]
  in
  let c =
    Evaluation.time_coverages ps ~tslow:(Time.ms 60) ~driver_cost:(Time.ms 100)
  in
  check (Alcotest.float 1e-9) "itc" 0.3 c.Evaluation.itc;
  check (Alcotest.float 1e-9) "ttc" 0.5 c.Evaluation.ttc;
  check Alcotest.bool "itc <= ttc" true (c.Evaluation.itc <= c.Evaluation.ttc)

let test_ranking_coverage () =
  let ps =
    List.map
      (fun (c, w) -> pattern ~cost:c ~count:1 ~max_single:0 ~w:[ w ])
      [ (60, "a!1"); (30, "b!2"); (10, "c!3") ]
  in
  check (Alcotest.float 1e-9) "top 30% = ceil(0.9) = 1 of 3" 0.6
    (Evaluation.ranking_coverage ps ~top_fraction:0.30);
  check (Alcotest.float 1e-9) "top 34% = ceil(1.02) = 2 of 3" 0.9
    (Evaluation.ranking_coverage ps ~top_fraction:0.34);
  check (Alcotest.float 1e-9) "top 100%" 1.0
    (Evaluation.ranking_coverage ps ~top_fraction:1.0);
  check (Alcotest.float 1e-9) "empty list" 0.0
    (Evaluation.ranking_coverage [] ~top_fraction:0.1)

let test_driver_type_counts () =
  let type_of s =
    match Dptrace.Signature.module_part s with
    | "a.sys" -> Some "TypeA"
    | "b.sys" -> Some "TypeB"
    | _ -> None
  in
  let ps =
    [
      pattern ~cost:5 ~count:1 ~max_single:0 ~w:[ "a.sys!1"; "b.sys!2" ];
      pattern ~cost:4 ~count:1 ~max_single:0 ~w:[ "a.sys!3" ];
    ]
  in
  let counts = Evaluation.driver_type_counts ps ~top_n:10 ~type_of in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "counts" [ ("TypeA", 2); ("TypeB", 1) ] counts

(* --- inspection effort (RQ2) --- *)

let test_inspect_curve () =
  let ps =
    List.map
      (fun (c, w) -> pattern ~cost:c ~count:1 ~max_single:0 ~w:[ w ])
      [ (Time.ms 60, "a!1"); (Time.ms 30, "b!2"); (Time.ms 10, "c!3") ]
  in
  let m = Dpcore.Inspect.model ~patterns_per_hour:60.0 ps in
  (* Full inspection covers everything. *)
  (match List.rev (Dpcore.Inspect.curve m) with
  | last :: _ ->
    check Alcotest.int "full depth" 3 last.Dpcore.Inspect.inspected;
    check (Alcotest.float 1e-9) "full coverage" 1.0 last.Dpcore.Inspect.coverage;
    check (Alcotest.float 1e-9) "effort" 0.05 last.Dpcore.Inspect.effort_hours
  | [] -> Alcotest.fail "empty curve");
  (* 60% coverage needs exactly the first pattern. *)
  (match Dpcore.Inspect.effort_to_reach m ~coverage:0.6 with
  | Some p -> check Alcotest.int "one pattern" 1 p.Dpcore.Inspect.inspected
  | None -> Alcotest.fail "reachable");
  (* Effort saved vs unranked: 1 pattern instead of 0.6*3 = 1.8. *)
  (match Dpcore.Inspect.effort_saved m ~coverage:0.6 with
  | Some saved -> check (Alcotest.float 1e-6) "saved" (1.0 -. (1.0 /. 1.8)) saved
  | None -> Alcotest.fail "reachable");
  check Alcotest.bool "unreachable coverage" true
    (Dpcore.Inspect.effort_to_reach m ~coverage:1.5 = None)

let test_inspect_empty () =
  let m = Dpcore.Inspect.model [] in
  check Alcotest.int "empty curve" 0 (List.length (Dpcore.Inspect.curve m))

let test_inspect_monotone_on_ranked () =
  let r = mined () in
  let m = Dpcore.Inspect.model r.Mining.patterns in
  let rec monotone = function
    | (a : Dpcore.Inspect.point) :: (b :: _ as rest) ->
      a.Dpcore.Inspect.coverage <= b.Dpcore.Inspect.coverage +. 1e-9 && monotone rest
    | _ -> true
  in
  check Alcotest.bool "coverage monotone in effort" true
    (monotone (Dpcore.Inspect.curve m))

let () =
  Alcotest.run "dpcore-mining"
    [
      ( "tuple",
        [
          Alcotest.test_case "normalization" `Quick test_tuple_normalization;
          Alcotest.test_case "subset" `Quick test_tuple_subset;
          Alcotest.test_case "empty" `Quick test_tuple_empty;
          Alcotest.test_case "all_signatures" `Quick test_tuple_all_signatures;
          qcheck prop_subset_reflexive;
          qcheck prop_subset_antisym;
          qcheck prop_equal_hash;
        ] );
      ( "mining",
        [
          Alcotest.test_case "finds contrast" `Quick test_mining_finds_contrast;
          Alcotest.test_case "slow-only reason" `Quick test_mining_slow_only_reason;
          Alcotest.test_case "ranking order" `Quick test_patterns_ranked;
          Alcotest.test_case "merged patterns" `Quick test_identical_patterns_merged;
          Alcotest.test_case "equal classes yield nothing" `Quick
            test_no_contrast_when_classes_equal;
          Alcotest.test_case "k sensitivity" `Quick test_meta_enumeration_k_sensitivity;
          Alcotest.test_case "tuples interned" `Quick test_tuple_interned;
          qcheck prop_engine_matches_reference;
          qcheck prop_engine_matches_reference_prov;
        ] );
      ( "inspect",
        [
          Alcotest.test_case "curve" `Quick test_inspect_curve;
          Alcotest.test_case "empty" `Quick test_inspect_empty;
          Alcotest.test_case "monotone" `Quick test_inspect_monotone_on_ranked;
        ] );
      ( "evaluation",
        [
          Alcotest.test_case "high-impact rule" `Quick test_high_impact_rule;
          Alcotest.test_case "time coverages" `Quick test_time_coverages;
          Alcotest.test_case "ranking coverage" `Quick test_ranking_coverage;
          Alcotest.test_case "driver types" `Quick test_driver_type_counts;
        ] );
    ]
