(* Tests for the deterministic fault-injection layer (lib/fault):
   plan parsing, bit-identical replay of (seed, spec) schedules, retry
   budgets, and the graceful-degradation invariants — a screened run
   with nothing quarantined is byte-identical to a fault-free run, and
   analyzed + quarantined always accounts for every stream. *)

module Corpus = Dptrace.Corpus
module Corpus_gen = Dpworkload.Corpus_gen
module Pipeline = Dpcore.Pipeline
module Impact = Dpcore.Impact
module Report = Dpcore.Report

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest
let components = Dpcore.Component.drivers

let gen ?(seed = 42) scale =
  Corpus_gen.generate { Corpus_gen.default_config with seed; scale }

(* Every test that arms a plan must disarm it, pass or fail: a leaked
   plan would poison every later test in the binary. *)
let with_plan spec f =
  match Dpfault.parse spec with
  | Error msg -> Alcotest.failf "parse %S: %s" spec msg
  | Ok plan ->
    Dpfault.install plan;
    Fun.protect ~finally:Dpfault.clear (fun () -> f plan)

let plan_of spec =
  match Dpfault.parse spec with
  | Ok p -> p
  | Error msg -> Alcotest.failf "parse %S: %s" spec msg

(* The full analyst surface as one string — what report --json emits. *)
let doc_of corpus =
  let impact, impact_prov = Pipeline.run_impact_prov components corpus in
  let graphs = Pipeline.build_graphs corpus (Corpus.all_instances corpus) in
  let modules = Impact.by_module components graphs in
  let named = Pipeline.run_all components corpus in
  Dputil.Jsonw.to_string
    (Report.Json.document ~impact ~impact_prov ~modules ~scenarios:named ())

let doc_with_coverage cov corpus =
  let impact, impact_prov = Pipeline.run_impact_prov components corpus in
  let graphs = Pipeline.build_graphs corpus (Corpus.all_instances corpus) in
  let modules = Impact.by_module components graphs in
  let named = Pipeline.run_all components corpus in
  Dputil.Jsonw.to_string
    (Report.Json.document ~coverage:cov ~impact ~impact_prov ~modules
       ~scenarios:named ())

(* --- parsing --- *)

let test_parse_presets () =
  List.iter
    (fun (name, spec) ->
      let p = plan_of ("7:" ^ name) in
      let q = plan_of ("7:" ^ spec) in
      check Alcotest.int "preset seed" 7 p.Dpfault.p_seed;
      check Alcotest.bool
        (name ^ " expands to its spec")
        true
        (p.Dpfault.p_rules = q.Dpfault.p_rules))
    Dpfault.presets

let test_parse_clauses () =
  let p = plan_of "3:corpus.read=eintr@0.25,snapshot.write=torn@0.5!3" in
  check Alcotest.int "seed" 3 p.Dpfault.p_seed;
  check Alcotest.int "two rules" 2 (List.length p.Dpfault.p_rules);
  let r = List.assoc Dpfault.Snapshot_write p.Dpfault.p_rules in
  check Alcotest.bool "torn kind" true (r.Dpfault.r_kind = Dpfault.Torn_write);
  check (Alcotest.float 1e-9) "prob" 0.5 r.Dpfault.r_prob;
  check Alcotest.(option int) "attempts override" (Some 3)
    r.Dpfault.r_attempts;
  (* @prob defaults to 1.0; latencyN carries its milliseconds. *)
  let p = plan_of "1:pool.task=latency2" in
  let r = List.assoc Dpfault.Pool_task p.Dpfault.p_rules in
  check Alcotest.bool "latency kind" true
    (r.Dpfault.r_kind = Dpfault.Latency 2);
  check (Alcotest.float 1e-9) "default prob" 1.0 r.Dpfault.r_prob

let test_parse_rejects () =
  let bad spec =
    match Dpfault.parse spec with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "parse %S should fail" spec
  in
  bad "";
  bad "nocolon";
  bad "x:io-flaky";
  bad "7:";
  bad "7:nosuch.site=eintr@0.5";
  bad "7:corpus.read=nosuchkind@0.5";
  bad "7:corpus.read=eintr@1.5";
  bad "7:corpus.read=eintr@-0.1";
  bad "7:corpus.read=eintr@0.5!0";
  bad "7:corpus.read=eintr@0.5,corpus.read=fail@0.1"

let test_spec_roundtrip () =
  (* The normalised spec reparses to the same plan. *)
  List.iter
    (fun spec ->
      let p = plan_of spec in
      let q = plan_of p.Dpfault.p_spec in
      check Alcotest.bool (spec ^ " roundtrips") true (p = q))
    [ "7:io-flaky"; "0:torn-writes"; "123:slow-disk";
      "5:corpus.open=short@0.125,monitor.stat=race@1.0!2" ]

(* --- deterministic replay --- *)

let prop_draw_replays =
  QCheck.Test.make ~name:"draw: pure function of (seed, site, i)" ~count:50
    QCheck.(pair small_nat (QCheck.float_bound_exclusive 1.0))
    (fun (seed, prob) ->
      let spec =
        Printf.sprintf "%d:corpus.read=eintr@%f,monitor.stat=race@%f" seed
          prob (1.0 -. prob)
      in
      let plan = plan_of spec in
      let seq site =
        List.init 200 (fun i -> Dpfault.draw plan site i)
      in
      seq Dpfault.Corpus_read = seq Dpfault.Corpus_read
      && seq Dpfault.Monitor_stat = seq Dpfault.Monitor_stat
      (* and reparsing the same spec draws the same schedule *)
      && seq Dpfault.Corpus_read
         = List.init 200 (fun i ->
               Dpfault.draw (plan_of spec) Dpfault.Corpus_read i))

let test_check_replays_after_reinstall () =
  let plan = plan_of "11:corpus.read=eintr@0.3" in
  let run () =
    Dpfault.install plan;
    Fun.protect ~finally:Dpfault.clear (fun () ->
        List.init 100 (fun _ -> Dpfault.check Dpfault.Corpus_read))
  in
  let a = run () and b = run () in
  check Alcotest.bool "reinstall replays from call 0" true (a = b);
  check Alcotest.bool "some draws hit" true
    (List.exists (fun k -> k <> None) a);
  check Alcotest.bool "some draws miss" true (List.exists (( = ) None) a)

let test_disarmed_is_free () =
  Dpfault.clear ();
  check Alcotest.bool "disarmed" false (Dpfault.armed ());
  check Alcotest.bool "check returns None" true
    (Dpfault.check Dpfault.Corpus_read = None);
  (* guard must not raise and not count. *)
  Dpfault.guard Dpfault.Snapshot_write;
  check Alcotest.int "no calls counted" 0
    (Dpfault.call_count Dpfault.Snapshot_write)

(* --- retry --- *)

let test_retry_absorbs_transients () =
  (* Injected EINTRs below the budget: the call succeeds and the caller
     never sees a fault. *)
  with_plan "5:corpus.open=eintr@0.5" @@ fun _ ->
  for _ = 1 to 50 do
    let r =
      Dpfault.Retry.run Dpfault.Corpus_open (fun () ->
          Dpfault.guard Dpfault.Corpus_open;
          41 + 1)
    in
    check Alcotest.int "retried to success" 42 r
  done

let test_retry_budget_exhausts () =
  with_plan "5:corpus.open=fail@1.0!3" @@ fun _ ->
  check Alcotest.int "budget override visible" 3
    (Dpfault.Retry.budget Dpfault.Corpus_open);
  (match
     Dpfault.Retry.run Dpfault.Corpus_open (fun () ->
         Dpfault.guard Dpfault.Corpus_open;
         ())
   with
  | () -> Alcotest.fail "prob-1.0 fail must exhaust the budget"
  | exception Dpfault.Injected { site = Dpfault.Corpus_open; _ } -> ()
  | exception e -> raise e);
  check Alcotest.int "exactly budget calls consumed" 3
    (Dpfault.call_count Dpfault.Corpus_open)

let test_retry_default_falls_back () =
  with_plan "5:monitor.stat=race@1.0!2" @@ fun _ ->
  let r =
    Dpfault.Retry.run_default Dpfault.Monitor_stat
      ~default:(fun () -> ~-1)
      (fun () ->
        Dpfault.guard Dpfault.Monitor_stat;
        0)
  in
  check Alcotest.int "fail-open default" ~-1 r

let test_retry_passes_other_exceptions () =
  with_plan "5:corpus.open=eintr@0.0" @@ fun _ ->
  match
    Dpfault.Retry.run Dpfault.Corpus_open (fun () -> failwith "real bug")
  with
  | _ -> Alcotest.fail "non-transient exception must pass through"
  | exception Failure msg -> check Alcotest.string "untouched" "real bug" msg

let test_counters_bump () =
  Dpobs.enable ~spans:false ~metrics:true ();
  Fun.protect ~finally:Dpobs.disable @@ fun () ->
  (* Counters are interned by name: this reads the very cells the fault
     layer bumps. *)
  let value name = Dpobs.Metrics.counter_value (Dpobs.Metrics.counter name) in
  let injected0 = value "fault.injected" in
  let gave0 = value "retry.gave_up" in
  with_plan "5:corpus.open=fail@1.0!2" (fun _ ->
      match
        Dpfault.Retry.run Dpfault.Corpus_open (fun () ->
            Dpfault.guard Dpfault.Corpus_open)
      with
      | () -> Alcotest.fail "must exhaust"
      | exception Dpfault.Injected _ -> ());
  check Alcotest.int "fault.injected counted" (injected0 + 2)
    (value "fault.injected");
  check Alcotest.int "retry.gave_up counted" (gave0 + 1)
    (value "retry.gave_up")

(* --- screening / graceful degradation --- *)

let test_screen_disarmed_is_identity () =
  Dpfault.clear ();
  let corpus = gen 0.02 in
  let screened, cov = Pipeline.screen corpus in
  check Alcotest.bool "same corpus value" true (screened == corpus);
  check Alcotest.int "total" (Corpus.stream_count corpus)
    cov.Pipeline.cov_total;
  check Alcotest.int "all analyzed" cov.Pipeline.cov_total
    cov.Pipeline.cov_analyzed;
  check Alcotest.bool "nothing quarantined" true
    (cov.Pipeline.cov_quarantined = [])

let test_screen_quarantines_on_exhaustion () =
  let corpus = gen 0.02 in
  let n = Corpus.stream_count corpus in
  with_plan "9:corpus.read=fail@1.0!2" @@ fun _ ->
  let screened, cov = Pipeline.screen corpus in
  check Alcotest.int "everything quarantined" n
    (List.length cov.Pipeline.cov_quarantined);
  check Alcotest.int "nothing analyzed" 0 cov.Pipeline.cov_analyzed;
  check Alcotest.int "screened corpus empty" 0
    (Corpus.stream_count screened);
  (* Reasons name the site and the spent budget. *)
  List.iter
    (fun (_, reason) ->
      check Alcotest.string "reason" reason
        "injected fail at corpus.read exhausted 2 attempt(s)")
    cov.Pipeline.cov_quarantined

let test_corpus_open_exhaustion_is_an_error () =
  let corpus = gen 0.02 in
  let path = "fault_corpus.dpt" in
  Dptrace.Codec.save path corpus;
  with_plan "9:corpus.open=fail@1.0!2" @@ fun _ ->
  match Dptrace.Corpus_dir.load path with
  | Error msg ->
    check Alcotest.bool "error names the injection" true
      (let has needle =
         let n = String.length needle and m = String.length msg in
         let rec go i =
           i + n <= m && (String.sub msg i n = needle || go (i + 1))
         in
         go 0
       in
       has "injected" && has "corpus.open")
  | Ok _ -> Alcotest.fail "prob-1.0 corpus.open must exhaust into Error"

let prop_coverage_accounts_every_stream =
  QCheck.Test.make
    ~name:"screen: analyzed + quarantined = total (any plan)" ~count:20
    QCheck.(
      triple (int_range 0 1000)
        (QCheck.float_bound_exclusive 1.0)
        (int_range 1 4))
    (fun (seed, prob, attempts) ->
      let corpus = gen 0.02 in
      let spec =
        Printf.sprintf "%d:corpus.read=fail@%f!%d" seed prob attempts
      in
      with_plan spec @@ fun _ ->
      let screened, cov = Pipeline.screen corpus in
      cov.Pipeline.cov_total = Corpus.stream_count corpus
      && cov.Pipeline.cov_analyzed = Corpus.stream_count screened
      && cov.Pipeline.cov_analyzed
         + List.length cov.Pipeline.cov_quarantined
         = cov.Pipeline.cov_total)

let prop_zero_quarantine_byte_identical =
  (* Transient faults under the default budget never quarantine, and the
     run's whole output — text tables and the JSON document — is
     byte-identical to a fault-free run. *)
  QCheck.Test.make ~name:"zero quarantines => byte-identical output"
    ~count:4
    QCheck.(int_range 0 1000)
    (fun seed ->
      let corpus = gen ~seed:(1 + (seed mod 7)) 0.02 in
      let plain_doc = doc_of corpus in
      let plain_text =
        Dputil.Table.render (Report.impact_summary
           (Pipeline.run_impact components corpus))
      in
      let spec = Printf.sprintf "%d:io-flaky" seed in
      with_plan spec @@ fun _ ->
      let screened, cov = Pipeline.screen corpus in
      cov.Pipeline.cov_quarantined = []
      && doc_with_coverage cov screened = plain_doc
      && Dputil.Table.render (Report.impact_summary
            (Pipeline.run_impact components screened))
         = plain_text)

let prop_screen_replays =
  QCheck.Test.make ~name:"screen: same plan => same quarantine set"
    ~count:10
    QCheck.(pair (int_range 0 1000) (QCheck.float_bound_exclusive 1.0))
    (fun (seed, prob) ->
      let corpus = gen 0.02 in
      let spec = Printf.sprintf "%d:corpus.read=fail@%f!1" seed prob in
      let run () =
        with_plan spec @@ fun _ ->
        let _, cov = Pipeline.screen corpus in
        cov
      in
      run () = run ())

let test_coverage_table_lists_quarantined () =
  let corpus = gen 0.02 in
  with_plan "9:corpus.read=fail@1.0!1" @@ fun _ ->
  let _, cov = Pipeline.screen corpus in
  let table = Dputil.Table.render (Report.stream_coverage cov) in
  check Alcotest.bool "row per stream" true
    (List.length (String.split_on_char '\n' (String.trim table))
    > List.length cov.Pipeline.cov_quarantined)

let () =
  Alcotest.run "fault"
    [
      ( "parse",
        [
          Alcotest.test_case "presets expand" `Quick test_parse_presets;
          Alcotest.test_case "clauses, budgets, latency" `Quick
            test_parse_clauses;
          Alcotest.test_case "malformed specs rejected" `Quick
            test_parse_rejects;
          Alcotest.test_case "normalised spec roundtrips" `Quick
            test_spec_roundtrip;
        ] );
      ( "replay",
        [
          qcheck prop_draw_replays;
          Alcotest.test_case "check replays after reinstall" `Quick
            test_check_replays_after_reinstall;
          Alcotest.test_case "disarmed guard is free" `Quick
            test_disarmed_is_free;
        ] );
      ( "retry",
        [
          Alcotest.test_case "transients absorbed" `Quick
            test_retry_absorbs_transients;
          Alcotest.test_case "budget exhausts deterministically" `Quick
            test_retry_budget_exhausts;
          Alcotest.test_case "fail-open default" `Quick
            test_retry_default_falls_back;
          Alcotest.test_case "other exceptions pass through" `Quick
            test_retry_passes_other_exceptions;
          Alcotest.test_case "telemetry counters bump" `Quick
            test_counters_bump;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "disarmed screen is the identity" `Quick
            test_screen_disarmed_is_identity;
          Alcotest.test_case "exhausted budget quarantines" `Quick
            test_screen_quarantines_on_exhaustion;
          Alcotest.test_case "corpus.open exhaustion surfaces as Error"
            `Quick test_corpus_open_exhaustion_is_an_error;
          qcheck prop_coverage_accounts_every_stream;
          qcheck prop_zero_quarantine_byte_identical;
          qcheck prop_screen_replays;
          Alcotest.test_case "coverage table lists the quarantined" `Quick
            test_coverage_table_lists_quarantined;
        ] );
    ]
