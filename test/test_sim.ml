(* Tests for the discrete-event kernel simulator: lock semantics, device
   queueing, service calls, sampling quantisation, determinism, deadlock
   detection — plus a property that randomly generated programs always
   produce structurally valid streams. *)

module P = Dpsim.Program
module Engine = Dpsim.Engine
module Event = Dptrace.Event
module Stream = Dptrace.Stream
module Time = Dputil.Time

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest
let sig_ = Dptrace.Signature.of_string

let run_threads ?(sample_period = Time.ms 1) ?(quantize = true) threads =
  let engine = Engine.create ~sample_period ~quantize_running:quantize ~stream_id:0 () in
  let env_objects = `Engine engine in
  ignore env_objects;
  List.iter
    (fun (name, start_at, base, steps, scenario) ->
      ignore (Engine.spawn engine ?scenario ~start_at ~name ~base_stack:base steps))
    threads;
  Engine.run engine

let events_of_kind st kind =
  Array.to_list st.Stream.events |> List.filter (fun (e : Event.t) -> e.kind = kind)

(* --- running events / quantisation --- *)

let test_compute_emits_running () =
  let st =
    run_threads
      [ ("t", 0, [ sig_ "app!main" ], [ P.compute (Time.ms 5) ], None) ]
  in
  match events_of_kind st Event.Running with
  | [ e ] ->
    check Alcotest.int "cost" (Time.ms 5) e.Event.cost;
    check Alcotest.int "ts" 0 e.Event.ts;
    check (Alcotest.option Alcotest.string) "stack top" (Some "app!main")
      (Option.map Dptrace.Signature.name (Dptrace.Callstack.top e.Event.stack))
  | es -> Alcotest.failf "expected 1 running event, got %d" (List.length es)

let test_quantize_floor () =
  let st =
    run_threads
      [ ("t", 0, [ sig_ "app!m" ], [ P.compute (Time.us 2_700) ], None) ]
  in
  match events_of_kind st Event.Running with
  | [ e ] -> check Alcotest.int "floored to 2ms" (Time.ms 2) e.Event.cost
  | es -> Alcotest.failf "expected 1 running event, got %d" (List.length es)

let test_quantize_drops_subsample () =
  let st =
    run_threads
      [ ("t", 0, [ sig_ "app!m" ], [ P.compute (Time.us 400) ], None) ]
  in
  check Alcotest.int "no running event" 0
    (List.length (events_of_kind st Event.Running))

let test_exact_running_when_unquantized () =
  let st =
    run_threads ~quantize:false
      [ ("t", 0, [ sig_ "app!m" ], [ P.compute (Time.us 431) ], None) ]
  in
  match events_of_kind st Event.Running with
  | [ e ] -> check Alcotest.int "exact" 431 e.Event.cost
  | es -> Alcotest.failf "expected 1 running event, got %d" (List.length es)

let test_compute_frame_pushed () =
  let st =
    run_threads
      [
        ( "t",
          0,
          [ sig_ "app!m" ],
          [ P.compute ~frame:(sig_ "x.sys!Work") (Time.ms 2) ],
          None );
      ]
  in
  let e = List.hd (events_of_kind st Event.Running) in
  check (Alcotest.option Alcotest.string) "frame on top" (Some "x.sys!Work")
    (Option.map Dptrace.Signature.name (Dptrace.Callstack.top e.Event.stack))

let test_call_nesting () =
  let st =
    run_threads
      [
        ( "t",
          0,
          [ sig_ "app!m" ],
          [ P.call (sig_ "a!f") [ P.call (sig_ "b!g") [ P.compute (Time.ms 1) ] ] ],
          None );
      ]
  in
  let e = List.hd (events_of_kind st Event.Running) in
  let frames =
    Dptrace.Callstack.frames e.Event.stack |> Array.to_list
    |> List.map Dptrace.Signature.name
  in
  check (Alcotest.list Alcotest.string) "stack" [ "b!g"; "a!f"; "app!m" ] frames

(* --- locks --- *)

let lock_pair ?(hold_ms = 10) () =
  let engine = Engine.create ~stream_id:0 () in
  let lock = Engine.new_lock engine ~name:"L" in
  let holder =
    Engine.spawn engine ~start_at:0 ~name:"holder" ~base_stack:[ sig_ "app!h" ]
      [ P.locked lock [ P.compute (Time.ms hold_ms) ] ]
  in
  let waiter =
    Engine.spawn engine ~start_at:(Time.ms 1) ~name:"waiter"
      ~base_stack:[ sig_ "app!w" ]
      [ P.locked lock [ P.compute (Time.ms 2) ] ]
  in
  (Engine.run engine, holder, waiter)

let test_lock_uncontended_no_wait () =
  let engine = Engine.create ~stream_id:0 () in
  let lock = Engine.new_lock engine ~name:"L" in
  let _t =
    Engine.spawn engine ~start_at:0 ~name:"t" ~base_stack:[ sig_ "app!m" ]
      [ P.locked lock [ P.compute (Time.ms 1) ] ]
  in
  let st = Engine.run engine in
  check Alcotest.int "no waits" 0 (List.length (events_of_kind st Event.Wait))

let test_lock_contention_wait () =
  let st, holder, waiter = lock_pair () in
  (match events_of_kind st Event.Wait with
  | [ w ] ->
    check Alcotest.int "waiter tid" waiter w.Event.tid;
    check Alcotest.int "wait starts at 1ms" (Time.ms 1) w.Event.ts;
    check Alcotest.int "wait lasts until release" (Time.ms 9) w.Event.cost;
    check (Alcotest.option Alcotest.string) "acquire frame" (Some "kernel!AcquireLock")
      (Option.map Dptrace.Signature.name (Dptrace.Callstack.top w.Event.stack))
  | es -> Alcotest.failf "expected 1 wait, got %d" (List.length es));
  match events_of_kind st Event.Unwait with
  | [ u ] ->
    check Alcotest.int "unwait from holder" holder u.Event.tid;
    check Alcotest.int "unwait targets waiter" waiter u.Event.wtid;
    check Alcotest.int "at release" (Time.ms 10) u.Event.ts
  | es -> Alcotest.failf "expected 1 unwait, got %d" (List.length es)

let test_lock_fifo_order () =
  let engine = Engine.create ~stream_id:0 () in
  let lock = Engine.new_lock engine ~name:"L" in
  let spawn_waiter i =
    Engine.spawn engine
      ~start_at:(Time.ms (1 + i))
      ~name:(Printf.sprintf "w%d" i)
      ~base_stack:[ sig_ "app!w" ]
      [ P.locked lock [ P.compute (Time.ms 5) ] ]
  in
  let _holder =
    Engine.spawn engine ~start_at:0 ~name:"h" ~base_stack:[ sig_ "app!h" ]
      [ P.locked lock [ P.compute (Time.ms 10) ] ]
  in
  let w0 = spawn_waiter 0 and w1 = spawn_waiter 1 and w2 = spawn_waiter 2 in
  let st = Engine.run engine in
  let unwait_targets =
    events_of_kind st Event.Unwait |> List.map (fun (e : Event.t) -> e.wtid)
  in
  check (Alcotest.list Alcotest.int) "FIFO hand-off" [ w0; w1; w2 ] unwait_targets

let test_lock_reentrant_rejected () =
  let engine = Engine.create ~stream_id:0 () in
  let lock = Engine.new_lock engine ~name:"L" in
  let _t =
    Engine.spawn engine ~start_at:0 ~name:"t" ~base_stack:[ sig_ "app!m" ]
      [ P.locked lock [ P.locked lock [ P.compute (Time.ms 1) ] ] ]
  in
  Alcotest.check_raises "re-entry" (Invalid_argument "Engine: re-entrant acquisition of L")
    (fun () -> ignore (Engine.run engine))

let test_foreign_lock_rejected () =
  let other = Engine.create ~stream_id:1 () in
  let foreign = Engine.new_lock other ~name:"F" in
  let engine = Engine.create ~stream_id:0 () in
  let _t =
    Engine.spawn engine ~start_at:0 ~name:"t" ~base_stack:[ sig_ "app!m" ]
      [ P.locked foreign [ P.compute (Time.ms 1) ] ]
  in
  Alcotest.check_raises "foreign" (Invalid_argument "Engine: foreign lock F")
    (fun () -> ignore (Engine.run engine))

(* --- devices --- *)

let test_hw_request () =
  let engine = Engine.create ~stream_id:0 () in
  let disk = Engine.new_device engine ~name:"D" ~signature:(sig_ "DiskService") in
  let t =
    Engine.spawn engine ~start_at:0 ~name:"t" ~base_stack:[ sig_ "fs.sys!Read" ]
      [ P.hw disk (Time.ms 20) ]
  in
  let st = Engine.run engine in
  (match events_of_kind st Event.Hw_service with
  | [ h ] ->
    check Alcotest.int "service cost" (Time.ms 20) h.Event.cost;
    check Alcotest.int "service start" 0 h.Event.ts
  | es -> Alcotest.failf "expected 1 hw event, got %d" (List.length es));
  match events_of_kind st Event.Wait with
  | [ w ] ->
    check Alcotest.int "requester blocked" t w.Event.tid;
    check Alcotest.int "full service time" (Time.ms 20) w.Event.cost
  | es -> Alcotest.failf "expected 1 wait, got %d" (List.length es)

let test_hw_fifo_queueing () =
  let engine = Engine.create ~stream_id:0 () in
  let disk = Engine.new_device engine ~name:"D" ~signature:(sig_ "DiskService") in
  let _a =
    Engine.spawn engine ~start_at:0 ~name:"a" ~base_stack:[ sig_ "fs.sys!Read" ]
      [ P.hw disk (Time.ms 10) ]
  in
  let b =
    Engine.spawn engine ~start_at:(Time.ms 2) ~name:"b"
      ~base_stack:[ sig_ "fs.sys!Read" ]
      [ P.hw disk (Time.ms 10) ]
  in
  let st = Engine.run engine in
  let b_wait =
    events_of_kind st Event.Wait |> List.find (fun (e : Event.t) -> e.tid = b)
  in
  (* b queues behind a: waits from 2 ms until 20 ms (queue) + 10 ms. *)
  check Alcotest.int "queueing delay included" (Time.ms 18) b_wait.Event.cost;
  let hw_spans =
    events_of_kind st Event.Hw_service
    |> List.map (fun (e : Event.t) -> (e.ts, Event.end_ts e))
  in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "sequential device service"
    [ (0, Time.ms 10); (Time.ms 10, Time.ms 20) ]
    hw_spans

(* --- services --- *)

let test_request_reply () =
  let engine = Engine.create ~stream_id:0 () in
  let svc =
    Engine.new_service engine ~name:"W" ~worker_stack:[ P.kernel_worker ]
  in
  let t =
    Engine.spawn engine ~start_at:0 ~name:"t" ~base_stack:[ sig_ "app!m" ]
      [ P.request svc [ P.compute (Time.ms 7) ] ]
  in
  let st = Engine.run engine in
  (match events_of_kind st Event.Wait with
  | [ w ] ->
    check Alcotest.int "requester waits" t w.Event.tid;
    check Alcotest.int "until worker done" (Time.ms 7) w.Event.cost
  | es -> Alcotest.failf "expected 1 wait, got %d" (List.length es));
  (match events_of_kind st Event.Unwait with
  | [ u ] ->
    check Alcotest.int "reply targets requester" t u.Event.wtid;
    check (Alcotest.option Alcotest.string) "worker stack" (Some "kernel!Worker")
      (Option.map Dptrace.Signature.name (Dptrace.Callstack.top u.Event.stack))
  | es -> Alcotest.failf "expected 1 unwait, got %d" (List.length es));
  (* Worker thread registered with a derived name. *)
  check Alcotest.bool "worker named" true
    (List.exists (fun (_, n) -> n = "W#0") st.Stream.threads)

(* --- idle --- *)

let test_idle_no_events () =
  let st =
    run_threads
      [
        ( "t",
          0,
          [ sig_ "app!m" ],
          [ P.idle (Time.ms 50); P.compute (Time.ms 1) ],
          Some "S" );
      ]
  in
  check Alcotest.int "only the compute event" 1 (Array.length st.Stream.events);
  let i = List.hd st.Stream.instances in
  check Alcotest.int "duration includes idle" (Time.ms 51) (Dptrace.Scenario.duration i)

(* --- instances --- *)

let test_instance_window () =
  let st =
    run_threads
      [
        ("t", Time.ms 5, [ sig_ "app!m" ], [ P.compute (Time.ms 10) ], Some "S");
      ]
  in
  match st.Stream.instances with
  | [ i ] ->
    check Alcotest.string "scenario" "S" i.Dptrace.Scenario.scenario;
    check Alcotest.int "t0 = start_at" (Time.ms 5) i.Dptrace.Scenario.t0;
    check Alcotest.int "t1 = completion" (Time.ms 15) i.Dptrace.Scenario.t1
  | l -> Alcotest.failf "expected 1 instance, got %d" (List.length l)

(* --- deadlock --- *)

let test_deadlock_detected () =
  let engine = Engine.create ~stream_id:0 () in
  let a = Engine.new_lock engine ~name:"A" in
  let b = Engine.new_lock engine ~name:"B" in
  let _t1 =
    Engine.spawn engine ~start_at:0 ~name:"t1" ~base_stack:[ sig_ "app!1" ]
      [
        P.locked a [ P.compute (Time.ms 5); P.locked b [ P.compute (Time.ms 1) ] ];
      ]
  in
  let _t2 =
    Engine.spawn engine ~start_at:0 ~name:"t2" ~base_stack:[ sig_ "app!2" ]
      [
        P.locked b [ P.compute (Time.ms 5); P.locked a [ P.compute (Time.ms 1) ] ];
      ]
  in
  match Engine.run engine with
  | exception Engine.Deadlock _ -> ()
  | _ -> Alcotest.fail "expected Deadlock"

let test_run_twice_rejected () =
  let engine = Engine.create ~stream_id:0 () in
  ignore (Engine.run engine);
  Alcotest.check_raises "already ran" (Invalid_argument "Engine.run: already ran")
    (fun () -> ignore (Engine.run engine))

(* --- determinism --- *)

let scenario_stream () =
  let engine = Engine.create ~stream_id:7 () in
  let env = Dpworkload.Env.create engine in
  let prng = Dputil.Prng.of_int 123 in
  let ctx = { Dpworkload.Motifs.env; prng } in
  let steps =
    (Dpworkload.Scenarios.browser_tab_create).Dpworkload.Scenarios.program ctx
      Dpworkload.Scenarios.Heavy
  in
  ignore
    (Engine.spawn engine ~scenario:"BrowserTabCreate" ~start_at:0 ~name:"ui"
       ~base_stack:[ sig_ "Browser!TabCreate" ]
       steps);
  Engine.run engine

let test_determinism () =
  let a = scenario_stream () and b = scenario_stream () in
  let render st =
    Dptrace.Codec.corpus_to_string
      (Dptrace.Corpus.create ~streams:[ st ] ~specs:[])
  in
  check Alcotest.string "identical streams" (render a) (render b)

(* --- Program helpers --- *)

let test_total_compute () =
  let engine = Engine.create ~stream_id:0 () in
  let lock = Engine.new_lock engine ~name:"L" in
  let steps =
    [
      P.compute (Time.ms 3);
      P.call (sig_ "a!f") [ P.compute (Time.ms 2) ];
      P.locked lock [ P.compute (Time.ms 1) ];
      P.idle (Time.ms 100);
    ]
  in
  check Alcotest.int "sums nested computes" (Time.ms 6) (P.total_compute steps);
  check Alcotest.bool "mentions lock" true (P.mentions_lock lock steps);
  let other = Engine.new_lock engine ~name:"M" in
  check Alcotest.bool "other lock absent" false (P.mentions_lock other steps)

(* --- property: random programs yield valid streams --- *)

let gen_program =
  (* Steps over a fixed lock order (acquire in index order only) so the
     generated programs are deadlock-free by construction. Recursive cases
     are eta-expanded: QCheck generators are built eagerly, so writing the
     recursion point-free would loop at construction time. *)
  let open QCheck.Gen in
  (* [min_lock] is the smallest lock index still takeable (strictly above
     any held lock); [locks_ok] is false inside Request bodies — workers
     must never take locks, or two requesters holding different locks
     could deadlock through their workers. *)
  let rec gen_steps depth ~min_lock ~locks_ok st =
    let leaf =
      [
        (4, map (fun d -> `Compute d) (int_range 100 5_000));
        (2, map (fun d -> `Hw d) (int_range 100 5_000));
      ]
    in
    let nested =
      if depth >= 3 then []
      else
        (if locks_ok && min_lock <= 2 then
           [
             ( 2,
               fun st ->
                 let l = int_range min_lock 2 st in
                 `Locked (l, gen_steps (depth + 1) ~min_lock:(l + 1) ~locks_ok st)
             );
           ]
         else [])
        @ [ (2, fun st -> `Call (gen_steps (depth + 1) ~min_lock ~locks_ok st)) ]
        @
        if depth >= 2 then []
        else
          [
            ( 1,
              fun st ->
                `Request (gen_steps (depth + 1) ~min_lock:0 ~locks_ok:false st)
            );
          ]
    in
    list_size (int_range 0 4) (frequency (leaf @ nested)) st
  in
  gen_steps 0 ~min_lock:0 ~locks_ok:true

let arbitrary_workload =
  QCheck.make
    QCheck.Gen.(list_size (int_range 1 4) (pair gen_program (int_range 0 20_000)))

let prop_random_programs_validate =
  QCheck.Test.make ~name:"random programs produce valid streams" ~count:60
    arbitrary_workload (fun threads ->
      let engine = Engine.create ~stream_id:0 () in
      let locks =
        Array.init 3 (fun i -> Engine.new_lock engine ~name:(Printf.sprintf "L%d" i))
      in
      let disk = Engine.new_device engine ~name:"D" ~signature:(sig_ "DiskService") in
      let svc = Engine.new_service engine ~name:"W" ~worker_stack:[ P.kernel_worker ] in
      let rec build steps =
        List.map
          (function
            | `Compute d -> P.compute d
            | `Hw d -> P.hw disk d
            | `Locked (l, body) -> P.locked locks.(l) (P.compute 10 :: build body)
            | `Call body -> P.call (sig_ "x.sys!F") (P.compute 10 :: build body)
            | `Request body -> P.request svc (P.compute 10 :: build body))
          steps
      in
      List.iteri
        (fun i (steps, start_at) ->
          ignore
            (Engine.spawn engine ~scenario:"S" ~start_at
               ~name:(Printf.sprintf "t%d" i)
               ~base_stack:[ sig_ "app!main" ]
               (build steps)))
        threads;
      let st = Engine.run engine in
      Dptrace.Validate.is_valid st
      && List.length st.Stream.instances = List.length threads)

(* Conservation: for a single root thread with no contention and
   unbounded CPU, the instance duration equals the sum of every timed
   operation in the program tree (request bodies run while the requester
   waits, so they count fully). *)
let rec program_demand steps =
  List.fold_left
    (fun acc step ->
      acc
      +
      match step with
      | `Compute d | `Hw d -> d
      | `Locked (_, body) | `Call body | `Request body -> program_demand body)
    0 steps

let prop_single_thread_conservation =
  QCheck.Test.make ~name:"single-thread duration = total demand" ~count:80
    (QCheck.make gen_program) (fun steps ->
      let engine = Engine.create ~stream_id:0 () in
      let locks =
        Array.init 3 (fun i -> Engine.new_lock engine ~name:(Printf.sprintf "L%d" i))
      in
      let disk = Engine.new_device engine ~name:"D" ~signature:(sig_ "DiskService") in
      let svc = Engine.new_service engine ~name:"W" ~worker_stack:[ P.kernel_worker ] in
      let rec build steps =
        List.map
          (function
            | `Compute d -> P.compute d
            | `Hw d -> P.hw disk d
            | `Locked (l, body) -> P.locked locks.(l) (build body)
            | `Call body -> P.call (sig_ "x.sys!F") (build body)
            | `Request body -> P.request svc (build body))
          steps
      in
      ignore
        (Engine.spawn engine ~scenario:"S" ~start_at:0 ~name:"t"
           ~base_stack:[ sig_ "app!main" ]
           (build steps));
      let st = Engine.run engine in
      let i = List.hd st.Stream.instances in
      Dptrace.Scenario.duration i = program_demand steps)

(* --- core-limited scheduling --- *)

let test_cores_unbounded_default () =
  (* Two 10 ms computes starting together both finish at 10 ms. *)
  let st =
    run_threads
      [
        ("a", 0, [ sig_ "app!a" ], [ P.compute (Time.ms 10) ], Some "S");
        ("b", 0, [ sig_ "app!b" ], [ P.compute (Time.ms 10) ], Some "S");
      ]
  in
  List.iter
    (fun (i : Dptrace.Scenario.instance) ->
      check Alcotest.int "parallel" (Time.ms 10) (Dptrace.Scenario.duration i))
    st.Stream.instances

let test_single_core_serializes () =
  let engine = Engine.create ~cores:1 ~stream_id:0 () in
  let a =
    Engine.spawn engine ~scenario:"S" ~start_at:0 ~name:"a"
      ~base_stack:[ sig_ "app!a" ]
      [ P.compute (Time.ms 10) ]
  in
  let b =
    Engine.spawn engine ~scenario:"S" ~start_at:0 ~name:"b"
      ~base_stack:[ sig_ "app!b" ]
      [ P.compute (Time.ms 10) ]
  in
  let st = Engine.run engine in
  check Alcotest.bool "valid" true (Dptrace.Validate.is_valid st);
  let dur tid =
    let i =
      List.find
        (fun (i : Dptrace.Scenario.instance) -> i.tid = tid)
        st.Stream.instances
    in
    Dptrace.Scenario.duration i
  in
  check Alcotest.int "first thread unslowed" (Time.ms 10) (dur a);
  check Alcotest.int "second thread queued" (Time.ms 20) (dur b);
  (* The queueing delay is a CpuQueue wait, unwaited by the releaser. *)
  let w = events_of_kind st Event.Wait |> List.hd in
  check Alcotest.int "queued thread" b w.Event.tid;
  check Alcotest.int "queue delay" (Time.ms 10) w.Event.cost;
  check (Alcotest.option Alcotest.string) "CpuQueue frame"
    (Some "kernel!CpuQueue")
    (Option.map Dptrace.Signature.name (Dptrace.Callstack.top w.Event.stack));
  let u = events_of_kind st Event.Unwait |> List.hd in
  check Alcotest.int "unwaited by releaser" a u.Event.tid

let test_two_cores_admit_two () =
  let engine = Engine.create ~cores:2 ~stream_id:0 () in
  List.iter
    (fun name ->
      ignore
        (Engine.spawn engine ~scenario:"S" ~start_at:0 ~name
           ~base_stack:[ sig_ ("app!" ^ name) ]
           [ P.compute (Time.ms 10) ]))
    [ "a"; "b"; "c" ];
  let st = Engine.run engine in
  let durations =
    List.map Dptrace.Scenario.duration st.Stream.instances |> List.sort compare
  in
  check (Alcotest.list Alcotest.int) "two parallel, one queued"
    [ Time.ms 10; Time.ms 10; Time.ms 20 ]
    durations

let test_cores_do_not_block_io () =
  (* A blocked-on-disk thread must not occupy the core. *)
  let engine = Engine.create ~cores:1 ~stream_id:0 () in
  let disk = Engine.new_device engine ~name:"D" ~signature:(sig_ "DiskService") in
  let _io =
    Engine.spawn engine ~scenario:"S" ~start_at:0 ~name:"io"
      ~base_stack:[ sig_ "app!io" ]
      [ P.hw disk (Time.ms 50) ]
  in
  let cpu =
    Engine.spawn engine ~scenario:"S" ~start_at:0 ~name:"cpu"
      ~base_stack:[ sig_ "app!cpu" ]
      [ P.compute (Time.ms 5) ]
  in
  let st = Engine.run engine in
  let i =
    List.find (fun (i : Dptrace.Scenario.instance) -> i.tid = cpu) st.Stream.instances
  in
  check Alcotest.int "compute unimpeded by the I/O wait" (Time.ms 5)
    (Dptrace.Scenario.duration i)

let test_cores_validation () =
  Alcotest.check_raises "cores >= 1"
    (Invalid_argument "Engine.create: cores must be >= 1") (fun () ->
      ignore (Engine.create ~cores:0 ~stream_id:0 ()))

let () =
  Alcotest.run "dpsim"
    [
      ( "running",
        [
          Alcotest.test_case "compute emits running" `Quick test_compute_emits_running;
          Alcotest.test_case "quantize floors" `Quick test_quantize_floor;
          Alcotest.test_case "sub-sample dropped" `Quick test_quantize_drops_subsample;
          Alcotest.test_case "exact when unquantized" `Quick
            test_exact_running_when_unquantized;
          Alcotest.test_case "compute frame" `Quick test_compute_frame_pushed;
          Alcotest.test_case "call nesting" `Quick test_call_nesting;
        ] );
      ( "locks",
        [
          Alcotest.test_case "uncontended" `Quick test_lock_uncontended_no_wait;
          Alcotest.test_case "contention" `Quick test_lock_contention_wait;
          Alcotest.test_case "FIFO order" `Quick test_lock_fifo_order;
          Alcotest.test_case "re-entrant rejected" `Quick test_lock_reentrant_rejected;
          Alcotest.test_case "foreign rejected" `Quick test_foreign_lock_rejected;
        ] );
      ( "devices",
        [
          Alcotest.test_case "hw request" `Quick test_hw_request;
          Alcotest.test_case "FIFO queueing" `Quick test_hw_fifo_queueing;
        ] );
      ("services", [ Alcotest.test_case "request/reply" `Quick test_request_reply ]);
      ( "scheduling",
        [
          Alcotest.test_case "idle" `Quick test_idle_no_events;
          Alcotest.test_case "instance window" `Quick test_instance_window;
          Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected;
          Alcotest.test_case "run twice rejected" `Quick test_run_twice_rejected;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "program",
        [
          Alcotest.test_case "total_compute/mentions_lock" `Quick test_total_compute;
          qcheck prop_random_programs_validate;
          qcheck prop_single_thread_conservation;
        ] );
      ( "cores",
        [
          Alcotest.test_case "unbounded default" `Quick test_cores_unbounded_default;
          Alcotest.test_case "single core serializes" `Quick test_single_core_serializes;
          Alcotest.test_case "two cores admit two" `Quick test_two_cores_admit_two;
          Alcotest.test_case "I/O frees the core" `Quick test_cores_do_not_block_io;
          Alcotest.test_case "validation" `Quick test_cores_validation;
        ] );
    ]
