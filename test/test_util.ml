(* Unit and property tests for the dputil substrate. *)

module Prng = Dputil.Prng
module Time = Dputil.Time
module Wildcard = Dputil.Wildcard
module Stats = Dputil.Stats
module Interner = Dputil.Interner
module Table = Dputil.Table

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* --- Prng --- *)

let test_prng_deterministic () =
  let a = Prng.of_int 7 and b = Prng.of_int 7 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same sequence" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.of_int 7 and b = Prng.of_int 8 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.next_int64 a = Prng.next_int64 b then incr same
  done;
  check Alcotest.bool "sequences differ" true (!same < 4)

let test_prng_split_independent () =
  let g = Prng.of_int 99 in
  let a = Prng.split g in
  let b = Prng.split g in
  let collisions = ref 0 in
  for _ = 1 to 64 do
    if Prng.next_int64 a = Prng.next_int64 b then incr collisions
  done;
  check Alcotest.int "no collisions" 0 !collisions

let test_prng_chance_extremes () =
  let g = Prng.of_int 1 in
  for _ = 1 to 50 do
    check Alcotest.bool "p=0 never" false (Prng.chance g 0.0);
    check Alcotest.bool "p=1 always" true (Prng.chance g 1.0)
  done

let test_prng_exponential_mean () =
  let g = Prng.of_int 5 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let x = Prng.exponential g ~mean:10.0 in
    check Alcotest.bool "positive" true (x >= 0.0);
    sum := !sum +. x
  done;
  let mean = !sum /. float_of_int n in
  check Alcotest.bool "mean within 5%" true (abs_float (mean -. 10.0) < 0.5)

let test_prng_lognormal_median () =
  let g = Prng.of_int 6 in
  let n = 20_001 in
  let xs = Array.init n (fun _ -> Prng.lognormal g ~median:50.0 ~sigma:0.8) in
  let med = Stats.median xs in
  check Alcotest.bool "median near 50" true (abs_float (med -. 50.0) < 3.0)

let test_prng_pareto_scale () =
  let g = Prng.of_int 8 in
  for _ = 1 to 1_000 do
    let x = Prng.pareto g ~scale:3.0 ~alpha:1.5 in
    check Alcotest.bool ">= scale" true (x >= 3.0)
  done

let test_prng_choose_weighted () =
  let g = Prng.of_int 4 in
  for _ = 1 to 200 do
    let x = Prng.choose_weighted g [ (0.0, `Never); (1.0, `Always) ] in
    check Alcotest.bool "zero-weight branch never taken" true (x = `Always)
  done

let prop_int_bounds =
  QCheck.Test.make ~name:"Prng.int in [0, bound)" ~count:500
    QCheck.(pair small_int (int_range 1 10_000))
    (fun (seed, bound) ->
      let g = Prng.of_int seed in
      let x = Prng.int g bound in
      x >= 0 && x < bound)

let prop_int_in_bounds =
  QCheck.Test.make ~name:"Prng.int_in inclusive bounds" ~count:500
    QCheck.(triple small_int (int_range (-1000) 1000) (int_range 0 1000))
    (fun (seed, lo, extent) ->
      let hi = lo + extent in
      let g = Prng.of_int seed in
      let x = Prng.int_in g lo hi in
      x >= lo && x <= hi)

let prop_shuffle_permutation =
  QCheck.Test.make ~name:"Prng.shuffle preserves multiset" ~count:200
    QCheck.(pair small_int (small_list int))
    (fun (seed, xs) ->
      let arr = Array.of_list xs in
      Prng.shuffle (Prng.of_int seed) arr;
      List.sort compare (Array.to_list arr) = List.sort compare xs)

let prop_float_bounds =
  QCheck.Test.make ~name:"Prng.float in [0, bound)" ~count:500
    QCheck.(pair small_int (float_range 0.001 1000.0))
    (fun (seed, bound) ->
      let x = Prng.float (Prng.of_int seed) bound in
      x >= 0.0 && x < bound)

(* --- Time --- *)

let test_time_conversions () =
  check Alcotest.int "ms" 1_000 (Time.ms 1);
  check Alcotest.int "sec" 1_000_000 (Time.sec 1);
  check Alcotest.int "us" 42 (Time.us 42);
  check Alcotest.int "of_ms_float rounds" 1_500 (Time.of_ms_float 1.5);
  check Alcotest.int "of_ms_float rounds nearest" 1_000 (Time.of_ms_float 0.9999);
  check (Alcotest.float 1e-9) "to_ms_float" 1.5 (Time.to_ms_float 1_500);
  check (Alcotest.float 1e-9) "to_sec_float" 0.25 (Time.to_sec_float 250_000)

let test_time_round_to () =
  check Alcotest.int "exact multiple" 2_000 (Time.round_to 2_000 ~granularity:1_000);
  check Alcotest.int "rounds up" 3_000 (Time.round_to 2_001 ~granularity:1_000);
  check Alcotest.int "zero becomes one period" 1_000 (Time.round_to 0 ~granularity:1_000);
  check Alcotest.int "negative becomes one period" 500 (Time.round_to (-3) ~granularity:500)

let test_time_pp () =
  check Alcotest.string "us" "900us" (Time.to_string 900);
  check Alcotest.string "ms" "1.5ms" (Time.to_string 1_500);
  check Alcotest.string "s" "2.50s" (Time.to_string 2_500_000)

let prop_round_to_multiple =
  QCheck.Test.make ~name:"round_to yields a positive multiple" ~count:500
    QCheck.(pair (int_range (-100) 100_000) (int_range 1 5_000))
    (fun (d, g) ->
      let r = Time.round_to d ~granularity:g in
      r mod g = 0 && r >= g && (d <= 0 || r >= d))

(* --- Wildcard --- *)

let m pat s = Wildcard.matches (Wildcard.compile pat) s

let test_wildcard_basics () =
  check Alcotest.bool "literal" true (m "fv.sys" "fv.sys");
  check Alcotest.bool "literal mismatch" false (m "fv.sys" "fs.sys");
  check Alcotest.bool "star suffix" true (m "*.sys" "graphics.sys");
  check Alcotest.bool "star suffix mismatch" false (m "*.sys" "kernel");
  check Alcotest.bool "case-insensitive" true (m "*.SYS" "Fv.sys");
  check Alcotest.bool "question mark" true (m "f?.sys" "fv.sys");
  check Alcotest.bool "question needs a char" false (m "f?.sys" "f.sys");
  check Alcotest.bool "empty pattern, empty string" true (m "" "");
  check Alcotest.bool "empty pattern, non-empty" false (m "" "x");
  check Alcotest.bool "star alone" true (m "*" "");
  check Alcotest.bool "prefix star star" true (m "**x" "abcx")

let test_wildcard_backtracking () =
  check Alcotest.bool "a*a on aa" true (m "a*a" "aa");
  check Alcotest.bool "a*a on aba" true (m "a*a" "aba");
  check Alcotest.bool "a*a on ab" false (m "a*a" "ab");
  check Alcotest.bool "*a*b interleaved" true (m "*a*b" "xaxbxb");
  check Alcotest.bool "pattern longer than string" false (m "abc?" "abc");
  (* Regression: used to index out of bounds when backtracking past the
     end of the subject string. *)
  check Alcotest.bool "backtrack at end of string" false (m "*ab" "axa");
  check Alcotest.bool "trailing star consumes rest" true (m "ab*" "abcdef")

let test_wildcard_matches_any () =
  let pats = [ Wildcard.compile "*.sys"; Wildcard.compile "kernel" ] in
  check Alcotest.bool "first" true (Wildcard.matches_any pats "fv.sys");
  check Alcotest.bool "second" true (Wildcard.matches_any pats "KERNEL");
  check Alcotest.bool "neither" false (Wildcard.matches_any pats "app.exe")

let prop_star_matches_all =
  QCheck.Test.make ~name:"pattern * matches everything" ~count:300
    QCheck.printable_string
    (fun s -> m "*" s)

let prop_literal_self_match =
  QCheck.Test.make ~name:"literal pattern matches itself" ~count:300
    QCheck.(string_gen_of_size (Gen.int_range 0 30) (Gen.char_range 'a' 'z'))
    (fun s -> m s s)

let prop_star_wrap =
  QCheck.Test.make ~name:"*s* matches any superstring" ~count:300
    QCheck.(
      triple
        (string_gen_of_size (Gen.int_range 0 8) (Gen.char_range 'a' 'z'))
        (string_gen_of_size (Gen.int_range 0 8) (Gen.char_range 'a' 'z'))
        (string_gen_of_size (Gen.int_range 0 8) (Gen.char_range 'a' 'z')))
    (fun (pre, mid, post) -> m ("*" ^ mid ^ "*") (pre ^ mid ^ post))

(* --- Stats --- *)

let test_stats_basics () =
  check (Alcotest.float 1e-9) "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |]);
  check (Alcotest.float 1e-9) "mean empty" 0.0 (Stats.mean [||]);
  check (Alcotest.float 1e-9) "sum" 6.0 (Stats.sum [| 1.0; 2.0; 3.0 |]);
  check (Alcotest.float 1e-6) "stddev" (sqrt (2.0 /. 3.0))
    (Stats.stddev [| 1.0; 2.0; 3.0 |]);
  check (Alcotest.float 1e-9) "stddev single" 0.0 (Stats.stddev [| 5.0 |])

let test_stats_percentile () =
  let xs = [| 10.0; 20.0; 30.0; 40.0 |] in
  check (Alcotest.float 1e-9) "p0 = min" 10.0 (Stats.percentile xs 0.0);
  check (Alcotest.float 1e-9) "p100 = max" 40.0 (Stats.percentile xs 100.0);
  check (Alcotest.float 1e-9) "p50 interpolates" 25.0 (Stats.percentile xs 50.0);
  check (Alcotest.float 1e-9) "unsorted input" 25.0
    (Stats.percentile [| 40.0; 10.0; 30.0; 20.0 |] 50.0);
  check (Alcotest.float 1e-9) "empty" 0.0 (Stats.percentile [||] 50.0)

let test_stats_ratio () =
  check (Alcotest.float 1e-9) "normal" 0.5 (Stats.ratio 1.0 2.0);
  check (Alcotest.float 1e-9) "div by zero is 0" 0.0 (Stats.ratio 1.0 0.0);
  check (Alcotest.float 1e-9) "pct" 50.0 (Stats.pct 1.0 2.0)

let test_stats_summary () =
  let s = Stats.summarize [| 1.0; 2.0; 3.0; 4.0 |] in
  check Alcotest.int "count" 4 s.Stats.count;
  check (Alcotest.float 1e-9) "min" 1.0 s.Stats.min;
  check (Alcotest.float 1e-9) "max" 4.0 s.Stats.max;
  check (Alcotest.float 1e-9) "p50" 2.5 s.Stats.p50

(* Regression: percentile used polymorphic compare and min/max used
   Float.min/Float.max, so one NaN sample poisoned (or scrambled) whole
   summaries. NaN samples must be ignored everywhere except [sum]. *)
let nan = Float.nan

let test_stats_nan_policy () =
  let xs = [| nan; 10.0; 20.0; nan; 30.0; 40.0 |] in
  check (Alcotest.float 1e-9) "mean skips NaN" 25.0 (Stats.mean xs);
  check (Alcotest.float 1e-9) "minimum skips NaN" 10.0 (Stats.minimum xs);
  check (Alcotest.float 1e-9) "maximum skips NaN" 40.0 (Stats.maximum xs);
  check (Alcotest.float 1e-9) "NaN-first minimum" 10.0
    (Stats.minimum [| nan; 10.0 |]);
  check (Alcotest.float 1e-9) "NaN-first maximum" 10.0
    (Stats.maximum [| nan; 10.0 |]);
  check (Alcotest.float 1e-9) "percentile skips NaN" 25.0
    (Stats.percentile xs 50.0);
  check (Alcotest.float 1e-9) "median of poisoned input" 25.0
    (Stats.median xs);
  check (Alcotest.float 1e-6) "stddev skips NaN"
    (Stats.stddev [| 10.0; 20.0; 30.0; 40.0 |])
    (Stats.stddev xs);
  let s = Stats.summarize xs in
  check Alcotest.int "summary counts non-NaN" 4 s.Stats.count;
  check (Alcotest.float 1e-9) "summary min" 10.0 s.Stats.min;
  check (Alcotest.float 1e-9) "summary max" 40.0 s.Stats.max;
  (* All-NaN behaves like empty. *)
  let all = [| nan; nan |] in
  check (Alcotest.float 1e-9) "all-NaN mean" 0.0 (Stats.mean all);
  check (Alcotest.float 1e-9) "all-NaN percentile" 0.0
    (Stats.percentile all 90.0);
  check Alcotest.int "all-NaN count" 0 (Stats.summarize all).Stats.count;
  (* sum is the documented exception: it surfaces the poisoning. *)
  check Alcotest.bool "sum keeps NaN" true (Float.is_nan (Stats.sum xs))

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile is monotone in p" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 1 30) (float_range 0.0 100.0))
              (pair (float_range 0.0 100.0) (float_range 0.0 100.0)))
    (fun (xs, (p1, p2)) ->
      let xs = Array.of_list xs in
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stats.percentile xs lo <= Stats.percentile xs hi +. 1e-9)

(* --- Interner --- *)

let test_interner_roundtrip () =
  let t = Interner.create () in
  let a = Interner.intern t "alpha" in
  let b = Interner.intern t "beta" in
  check Alcotest.int "stable id" a (Interner.intern t "alpha");
  check Alcotest.bool "distinct ids" true (a <> b);
  check Alcotest.string "name a" "alpha" (Interner.name t a);
  check Alcotest.string "name b" "beta" (Interner.name t b);
  check Alcotest.int "size" 2 (Interner.size t);
  check (Alcotest.option Alcotest.int) "find_opt hit" (Some a)
    (Interner.find_opt t "alpha");
  check (Alcotest.option Alcotest.int) "find_opt miss" None
    (Interner.find_opt t "gamma")

let test_interner_growth () =
  let t = Interner.create ~capacity:2 () in
  let ids = List.init 100 (fun i -> Interner.intern t (string_of_int i)) in
  check Alcotest.int "size" 100 (Interner.size t);
  List.iteri
    (fun i id -> check Alcotest.string "name" (string_of_int i) (Interner.name t id))
    ids

let test_interner_bad_id () =
  let t = Interner.create () in
  Alcotest.check_raises "negative id" (Invalid_argument "Interner.name: unknown id -1")
    (fun () -> ignore (Interner.name t (-1)))

let test_interner_iter_order () =
  let t = Interner.create () in
  List.iter (fun s -> ignore (Interner.intern t s)) [ "x"; "y"; "z" ];
  let seen = ref [] in
  Interner.iter t (fun id s -> seen := (id, s) :: !seen);
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.string))
    "insertion order"
    [ (0, "x"); (1, "y"); (2, "z") ]
    (List.rev !seen)

(* --- Histogram --- *)

module Histogram = Dputil.Histogram

let test_histogram_binning () =
  let h = Histogram.create ~buckets:4 [| 0.0; 1.0; 2.0; 3.0; 4.0 |] in
  check Alcotest.int "buckets" 4 (Histogram.bucket_count h);
  check (Alcotest.array Alcotest.int) "counts" [| 1; 1; 1; 2 |] (Histogram.counts h);
  let lo, _ = (Histogram.bounds h).(0) in
  check (Alcotest.float 1e-9) "first lo" 0.0 lo;
  let _, hi = (Histogram.bounds h).(3) in
  check (Alcotest.float 1e-9) "last hi" 4.0 hi

let test_histogram_degenerate () =
  check Alcotest.int "empty" 0 (Histogram.bucket_count (Histogram.create [||]));
  check Alcotest.string "empty renders" "(no samples)\n"
    (Histogram.render (Histogram.create [||]));
  let constant = Histogram.create [| 5.0; 5.0; 5.0 |] in
  check (Alcotest.array Alcotest.int) "constant = one bin" [| 3 |]
    (Histogram.counts constant)

(* Regression: NaN samples produced NaN bounds (and lost samples), and an
   infinite sample range made the bucket width infinite — bounds came out
   as [0 * infinity = nan]. Both now degrade to documented fallbacks. *)
let test_histogram_nan_and_infinite () =
  let h = Histogram.create ~buckets:4 [| nan; 1.0; 2.0; nan; 3.0; 4.0 |] in
  check Alcotest.int "NaN samples dropped" 4
    (Array.fold_left ( + ) 0 (Histogram.counts h));
  Array.iter
    (fun (lo, hi) ->
      check Alcotest.bool "finite bounds" true
        (Float.is_finite lo && Float.is_finite hi))
    (Histogram.bounds h);
  check Alcotest.int "all-NaN = empty" 0
    (Histogram.bucket_count (Histogram.create [| nan; nan |]));
  (* Range spanning both infinities: single bucket, exact bounds. *)
  let inf = Histogram.create ~buckets:8 [| Float.neg_infinity; 0.0; Float.infinity |] in
  check (Alcotest.array Alcotest.int) "infinite range = one bucket" [| 3 |]
    (Histogram.counts inf);
  let lo, hi = (Histogram.bounds inf).(0) in
  check Alcotest.bool "bounds are the sample range" true
    (lo = Float.neg_infinity && hi = Float.infinity);
  ignore (Histogram.render inf)

let test_histogram_render () =
  let h = Histogram.create ~buckets:2 [| 0.0; 0.1; 0.2; 10.0 |] in
  let text = Histogram.render ~width:10 h in
  check Alcotest.bool "bars present" true (String.contains text '#');
  let marked =
    Histogram.render_with_markers ~markers:[ ("T_fast", 9.0) ] h
  in
  check Alcotest.bool "marker printed" true
    (let rec has i =
       i + 6 <= String.length marked
       && (String.sub marked i 6 = "T_fast" || has (i + 1))
     in
     has 0)

let prop_histogram_conserves_samples =
  QCheck.Test.make ~name:"histogram conserves sample count" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 200) (float_range (-1000.0) 1000.0))
    (fun xs ->
      let arr = Array.of_list xs in
      let h = Histogram.create ~buckets:13 arr in
      Array.fold_left ( + ) 0 (Histogram.counts h) = Array.length arr)

(* --- Table --- *)

let string_contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_table_render () =
  let t = Table.create [ ("Name", Table.Left); ("N", Table.Right) ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_separator t;
  Table.add_row t [ "b"; "22" ];
  let s = Table.render t in
  check Alcotest.bool "contains header" true
    (String.length s > 0
    && string_contains s "Name"
    && string_contains s "alpha"
    && string_contains s "22")

let test_table_mismatch () =
  let t = Table.create [ ("A", Table.Left) ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: cell count mismatch")
    (fun () -> Table.add_row t [ "x"; "y" ])

let () =
  Alcotest.run "dputil"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick test_prng_split_independent;
          Alcotest.test_case "chance extremes" `Quick test_prng_chance_extremes;
          Alcotest.test_case "exponential mean" `Slow test_prng_exponential_mean;
          Alcotest.test_case "lognormal median" `Slow test_prng_lognormal_median;
          Alcotest.test_case "pareto scale" `Quick test_prng_pareto_scale;
          Alcotest.test_case "choose_weighted" `Quick test_prng_choose_weighted;
          qcheck prop_int_bounds;
          qcheck prop_int_in_bounds;
          qcheck prop_shuffle_permutation;
          qcheck prop_float_bounds;
        ] );
      ( "time",
        [
          Alcotest.test_case "conversions" `Quick test_time_conversions;
          Alcotest.test_case "round_to" `Quick test_time_round_to;
          Alcotest.test_case "pp" `Quick test_time_pp;
          qcheck prop_round_to_multiple;
        ] );
      ( "wildcard",
        [
          Alcotest.test_case "basics" `Quick test_wildcard_basics;
          Alcotest.test_case "backtracking" `Quick test_wildcard_backtracking;
          Alcotest.test_case "matches_any" `Quick test_wildcard_matches_any;
          qcheck prop_star_matches_all;
          qcheck prop_literal_self_match;
          qcheck prop_star_wrap;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basics" `Quick test_stats_basics;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "ratio" `Quick test_stats_ratio;
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "NaN policy" `Quick test_stats_nan_policy;
          qcheck prop_percentile_monotone;
        ] );
      ( "interner",
        [
          Alcotest.test_case "roundtrip" `Quick test_interner_roundtrip;
          Alcotest.test_case "growth" `Quick test_interner_growth;
          Alcotest.test_case "bad id" `Quick test_interner_bad_id;
          Alcotest.test_case "iter order" `Quick test_interner_iter_order;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "binning" `Quick test_histogram_binning;
          Alcotest.test_case "degenerate" `Quick test_histogram_degenerate;
          Alcotest.test_case "NaN and infinite range" `Quick
            test_histogram_nan_and_infinite;
          Alcotest.test_case "render" `Quick test_histogram_render;
          qcheck prop_histogram_conserves_samples;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "mismatch" `Quick test_table_mismatch;
        ] );
    ]
