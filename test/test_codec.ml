(* Codec tests: text-codec escaping, binary varint hardening, and the
   framed v2 format (round trips, streaming, corruption, recovery). *)

module Event = Dptrace.Event
module Stream = Dptrace.Stream
module Corpus = Dptrace.Corpus
module Callstack = Dptrace.Callstack
module Codec = Dptrace.Codec
module Bin = Dptrace.Codec_binary
module V2 = Dptrace.Codec_v2

let check = Alcotest.check
let text_of c = Codec.corpus_to_string c

let gen_corpus ?(scale = 0.02) ?(seed = 42) () =
  Dpworkload.Corpus_gen.generate
    { (Dpworkload.Corpus_gen.scaled scale) with seed }

(* Structural equality that works for corpora the text codec refuses to
   print (hostile names). Signatures compare by name, not id, so it also
   holds across processes. *)
let stack_names (e : Event.t) =
  Callstack.frames e.Event.stack
  |> Array.to_list
  |> List.map Dptrace.Signature.name

let event_equal (a : Event.t) (b : Event.t) =
  a.Event.kind = b.Event.kind
  && a.Event.ts = b.Event.ts
  && a.Event.cost = b.Event.cost
  && a.Event.tid = b.Event.tid
  && a.Event.wtid = b.Event.wtid
  && stack_names a = stack_names b

let stream_equal (a : Stream.t) (b : Stream.t) =
  a.Stream.id = b.Stream.id
  && a.Stream.threads = b.Stream.threads
  && a.Stream.instances = b.Stream.instances
  && Array.length a.Stream.events = Array.length b.Stream.events
  && Array.for_all2 event_equal a.Stream.events b.Stream.events

let corpus_equal (a : Corpus.t) (b : Corpus.t) =
  a.Corpus.specs = b.Corpus.specs
  && List.length a.Corpus.streams = List.length b.Corpus.streams
  && List.for_all2 stream_equal a.Corpus.streams b.Corpus.streams

(* --- text codec escaping --- *)

let event ?(kind = Event.Running) ?(ts = 0) ?(cost = 1) ?(tid = 1)
    ?(wtid = -1) stack =
  {
    Event.id = 0;
    kind;
    stack = Callstack.of_strings stack;
    ts;
    cost;
    tid;
    wtid;
  }

let corpus_with ?(specs = []) events =
  Corpus.create
    ~streams:[ Stream.create ~id:0 ~events ~instances:[] ~threads:[] ]
    ~specs

let expect_invalid what f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" what

let test_text_rejects_hostile_spec_names () =
  (* A spec name with whitespace would round-trip to a different corpus
     (or fail to parse); the writer must refuse. *)
  List.iter
    (fun name ->
      let c =
        corpus_with ~specs:[ Dptrace.Scenario.spec ~name ~tfast:1 ~tslow:2 ]
          [ event [ "app!main" ] ]
      in
      expect_invalid ("spec name " ^ String.escaped name) (fun () ->
          text_of c))
    [ "two words"; "tab\tname"; "multi\nline"; "semi;colon"; "" ]

let test_text_rejects_hostile_frame_signatures () =
  (* A ';' inside a frame signature would silently split into two frames
     on reload; whitespace would corrupt the line structure. *)
  List.iter
    (fun frame ->
      let c = corpus_with [ event [ frame; "app!main" ] ] in
      expect_invalid ("frame " ^ String.escaped frame) (fun () -> text_of c))
    [ "mod!two words"; "mod!semi;colon"; "mod!multi\nline"; "" ]

let test_text_hostile_names_never_corrupt_silently () =
  (* Whatever the writer does accept must come back identical. *)
  let c =
    corpus_with
      ~specs:[ Dptrace.Scenario.spec ~name:"Open" ~tfast:1 ~tslow:2 ]
      [ event [ "od\x01d.sys!weird\x7fbytes"; "app!main" ] ]
  in
  check Alcotest.bool "round trip" true
    (corpus_equal c (Codec.corpus_of_string (text_of c)))

let test_text_binary_mode_roundtrip () =
  let c = gen_corpus ~scale:0.01 () in
  let path = Filename.temp_file "driveperf" ".dpt" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Codec.save path c;
  (* The file must be byte-identical to the in-memory encoding: binary
     mode, no newline translation. *)
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let on_disk = really_input_string ic n in
  close_in ic;
  check Alcotest.bool "no channel translation" true (on_disk = text_of c);
  check Alcotest.string "load round trip" (text_of c)
    (text_of (Codec.load path))

(* --- binary codec: varint hardening --- *)

let test_varint_roundtrip_extremes () =
  List.iter
    (fun v ->
      let buf = Buffer.create 16 in
      Bin.Wire.wv buf v;
      let cur = Bin.Wire.cursor (Buffer.contents buf) in
      check Alcotest.int (Printf.sprintf "roundtrip %d" v) v (Bin.Wire.rv cur);
      check Alcotest.bool "consumed" true (Bin.Wire.at_end cur))
    [ 0; 1; 0x7f; 0x80; 0x3fff; 0x4000; max_int - 1; max_int ]

let expect_wire_corrupt what data =
  match Bin.Wire.rv (Bin.Wire.cursor data) with
  | exception Bin.Corrupt _ -> ()
  | v -> Alcotest.failf "%s: expected Corrupt, decoded %d" what v

let test_varint_overflow_rejected () =
  (* Nine 0xff bytes: bit 62 set and a continuation past it. On a 63-bit
     int this wrapped negative before the overflow check existed. *)
  expect_wire_corrupt "continuation past bit 62" (String.make 9 '\xff');
  (* Eight continuations then a final byte with bit 6 set: lands exactly
     in the sign bit. *)
  expect_wire_corrupt "sign bit" (String.make 8 '\xff' ^ "\x7f");
  expect_wire_corrupt "sign bit minimal" (String.make 8 '\x80' ^ "\x40");
  (* One less than the limit is fine: 8 bytes of 0x7f payload. *)
  let cur = Bin.Wire.cursor (String.make 8 '\xff' ^ "\x3f") in
  check Alcotest.int "max encodable" max_int (Bin.Wire.rv cur)

let test_binary_rejects_smuggled_negative_ts () =
  (* A complete corpus blob whose single event carries an overflowing
     varint timestamp. Before the overflow check the decoder accepted it
     and produced a negative [ts] no writer can emit. *)
  let blob =
    "DPTB\x01" (* magic, version *)
    ^ "\x00" (* 0 signatures *)
    ^ "\x00" (* 0 specs *)
    ^ "\x01" (* 1 stream *)
    ^ "\x00" (* stream id *)
    ^ "\x00" (* 0 threads *)
    ^ "\x01" (* 1 event *)
    ^ "\x00" (* kind Running *)
    ^ "\x05" (* tid *)
    ^ "\x00" (* wtid+1 *)
    ^ String.make 8 '\xff'
    ^ "\x7f" (* ts: overflows into the sign bit *)
    ^ "\x01" (* cost *)
    ^ "\x00" (* 0 stack frames *)
    ^ "\x00" (* 0 instances *)
  in
  match Bin.decode blob with
  | exception Bin.Corrupt _ -> ()
  | c ->
    let st = List.hd c.Corpus.streams in
    Alcotest.failf "accepted negative ts %d" st.Stream.events.(0).Event.ts

let test_binary_rejects_backwards_instance () =
  (* Validation parity with the text reader: t1 < t0 must be refused. *)
  let blob =
    "DPTB\x01" ^ "\x00" ^ "\x00" ^ "\x01" (* 1 stream *)
    ^ "\x00" (* id *) ^ "\x00" (* threads *) ^ "\x00" (* events *)
    ^ "\x01" (* 1 instance *)
    ^ "\x01S" (* scenario "S" *)
    ^ "\x00" (* tid *)
    ^ "\x05" (* t0 = 5 *)
    ^ "\x01" (* t1 = 1 *)
  in
  match Bin.decode blob with
  | exception Bin.Corrupt _ -> ()
  | _ -> Alcotest.fail "accepted instance with t1 < t0"

let test_binary_hostile_names_roundtrip () =
  (* Length-prefixed strings carry anything; the binary codec must not
     inherit the text format's name restrictions. *)
  let c =
    Corpus.create
      ~streams:
        [
          Stream.create ~id:3
            ~events:
              [ event [ "od d.sys!two words"; "app!semi;colon\nline" ] ]
            ~instances:
              [ { Dptrace.Scenario.scenario = "Open Doc"; tid = 1; t0 = 0; t1 = 5 } ]
            ~threads:[ (1, "UI thread; main") ];
        ]
      ~specs:[ Dptrace.Scenario.spec ~name:"Open Doc" ~tfast:1 ~tslow:2 ]
  in
  check Alcotest.bool "binary" true (corpus_equal c (Bin.decode (Bin.encode c)));
  check Alcotest.bool "framed v2" true
    (corpus_equal c (fst (V2.decode (V2.encode c))))

let prop_codec_roundtrip_any_seed =
  QCheck.Test.make ~name:"binary and v2 round-trip generated corpora"
    ~count:10 QCheck.small_int (fun seed ->
      let c = gen_corpus ~scale:0.01 ~seed () in
      let t = text_of c in
      text_of (Bin.decode (Bin.encode c)) = t
      && text_of (fst (V2.decode (V2.encode c))) = t)

(* --- framed v2 --- *)

let test_v2_roundtrip () =
  let c = gen_corpus () in
  let encoded = V2.encode c in
  let decoded, report = V2.decode encoded in
  check Alcotest.string "text-identical" (text_of c) (text_of decoded);
  check Alcotest.int "no drops" 0 (List.length report.V2.dropped);
  check Alcotest.int "streams" (List.length c.Corpus.streams) report.V2.streams

let test_v2_magic () =
  let encoded = V2.encode (gen_corpus ~scale:0.01 ()) in
  check Alcotest.string "magic" V2.magic (String.sub encoded 0 5)

let test_v2_streaming_writer_reader () =
  let c = gen_corpus () in
  let path = Filename.temp_file "driveperf" ".dpf" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out_bin path in
  let w = V2.writer oc ~specs:c.Corpus.specs in
  List.iter (fun st -> V2.add_stream w st) c.Corpus.streams;
  V2.close w;
  V2.close w (* idempotent *);
  close_out oc;
  (* The streaming writer and the whole-corpus encoder agree byte for
     byte. *)
  let ic = open_in_bin path in
  let on_disk = really_input_string ic (in_channel_length ic) in
  close_in ic;
  check Alcotest.bool "writer = encode" true (on_disk = V2.encode c);
  (* And the streaming reader reproduces the corpus one stream at a
     time. *)
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  let rev_streams, specs, report =
    V2.fold_streams ic ~init:[] ~f:(fun acc st -> st :: acc)
  in
  let rebuilt = Corpus.create ~streams:(List.rev rev_streams) ~specs in
  check Alcotest.string "fold_streams rebuilds" (text_of c) (text_of rebuilt);
  check Alcotest.int "frame count"
    (2 + List.length c.Corpus.streams)
    report.V2.frames

let expect_v2_corrupt what data =
  match V2.decode data with
  | exception Bin.Corrupt _ -> ()
  | _ -> Alcotest.failf "%s: expected Corrupt" what

(* Walk the real frame structure (marker, kind, u32 length, u32 crc,
   payload) and return the [(offset, payload_start, payload_len)] of each
   frame. Used to aim corruption precisely. *)
let frame_spans encoded =
  let le32 s pos =
    Char.code s.[pos]
    lor (Char.code s.[pos + 1] lsl 8)
    lor (Char.code s.[pos + 2] lsl 16)
    lor (Char.code s.[pos + 3] lsl 24)
  in
  let rec go pos acc =
    if pos >= String.length encoded then List.rev acc
    else
      let len = le32 encoded (pos + 5) in
      let payload = pos + 13 in
      go (payload + len) ((pos, payload, len) :: acc)
  in
  go (String.length V2.magic) []

let test_v2_truncation_at_every_boundary () =
  let c = gen_corpus ~scale:0.01 () in
  let encoded = V2.encode c in
  let spans = frame_spans encoded in
  check Alcotest.int "frame structure accounted"
    (2 + List.length c.Corpus.streams)
    (List.length spans);
  (* Truncating at any frame boundary leaves a structurally clean prefix;
     only the trailer count can tell it is incomplete. Mid-frame cuts must
     fail too. *)
  List.iter
    (fun (off, payload, len) ->
      expect_v2_corrupt
        (Printf.sprintf "cut at frame boundary %d" off)
        (String.sub encoded 0 off);
      expect_v2_corrupt
        (Printf.sprintf "cut mid-frame %d" off)
        (String.sub encoded 0 (payload + (len / 2))))
    spans;
  expect_v2_corrupt "empty" "";
  expect_v2_corrupt "magic only" (String.sub encoded 0 5);
  expect_v2_corrupt "trailing garbage" (encoded ^ "junk")

let test_v2_single_bad_frame_recovery () =
  let c = gen_corpus () in
  let encoded = V2.encode c in
  let spans = frame_spans encoded in
  (* Corrupt the payload of the second stream frame (frame ordinal 2:
     header is 0, first stream is 1). *)
  let ordinal = 2 in
  let off, payload, len = List.nth spans ordinal in
  let b = Bytes.of_string encoded in
  Bytes.set b (payload + (len / 2))
    (Char.chr (Char.code (Bytes.get b (payload + (len / 2))) lxor 0x01));
  let corrupted = Bytes.to_string b in
  expect_v2_corrupt "strict refuses" corrupted;
  let recovered, report = V2.decode ~mode:`Recover corrupted in
  (* The diagnostic names the damaged frame and its offset. *)
  (match report.V2.dropped with
  | d :: _ ->
    check Alcotest.int "diagnostic frame" ordinal d.V2.frame;
    check Alcotest.int "diagnostic offset" off d.V2.offset;
    check Alcotest.bool "diagnostic reason" true (d.V2.reason <> "")
  | [] -> Alcotest.fail "no diagnostics");
  (* Exactly the one stream is gone; every survivor is identical to its
     original. *)
  let lost_id = (List.nth c.Corpus.streams (ordinal - 1)).Stream.id in
  check Alcotest.int "one stream lost"
    (List.length c.Corpus.streams - 1)
    (List.length recovered.Corpus.streams);
  check Alcotest.bool "lost the corrupted one" true
    (not
       (List.exists
          (fun (st : Stream.t) -> st.Stream.id = lost_id)
          recovered.Corpus.streams));
  List.iter
    (fun (st : Stream.t) ->
      let original =
        List.find
          (fun (o : Stream.t) -> o.Stream.id = st.Stream.id)
          c.Corpus.streams
      in
      check Alcotest.bool
        (Printf.sprintf "stream %d intact" st.Stream.id)
        true (stream_equal original st))
    recovered.Corpus.streams;
  check Alcotest.bool "specs survive" true
    (recovered.Corpus.specs = c.Corpus.specs)

let prop_v2_bit_flip =
  (* Any single corrupted byte: strict either refuses or the flip was
     immaterial; recovery never raises and never delivers an invalid
     stream. *)
  let base = V2.encode (gen_corpus ~scale:0.01 ()) in
  QCheck.Test.make ~name:"v2 single-byte corruption is contained" ~count:120
    QCheck.(pair small_int (int_range 1 255))
    (fun (pos_seed, flip) ->
      let b = Bytes.of_string base in
      let pos = pos_seed mod Bytes.length b in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor flip));
      let data = Bytes.to_string b in
      let strict_ok =
        match V2.decode data with
        | decoded, _ -> text_of (fst (V2.decode base)) = text_of decoded
        | exception Bin.Corrupt _ -> true
      in
      let recover_ok =
        let c, report = V2.decode ~mode:`Recover data in
        List.for_all
          (fun st -> Dptrace.Validate.check st = [])
          c.Corpus.streams
        && report.V2.streams = List.length c.Corpus.streams
      in
      strict_ok && recover_ok)

let test_v2_pooled_load_identical () =
  let c = gen_corpus () in
  Dppar.Pool.with_pool ~domains:2 @@ fun pool ->
  check Alcotest.bool "pooled encode identical" true
    (V2.encode ~pool c = V2.encode c);
  let seq, _ = V2.decode (V2.encode c) in
  let par, _ = V2.decode ~pool (V2.encode c) in
  check Alcotest.string "pooled decode identical" (text_of seq) (text_of par);
  (* Recovery parity: pooled and sequential agree on survivors and
     diagnostics. *)
  let b = Bytes.of_string (V2.encode c) in
  Bytes.set b (Bytes.length b / 2)
    (Char.chr (Char.code (Bytes.get b (Bytes.length b / 2)) lxor 0xff));
  let data = Bytes.to_string b in
  let cs, rs = V2.decode ~mode:`Recover data in
  let cp, rp = V2.decode ~mode:`Recover ~pool data in
  check Alcotest.string "pooled recovery streams" (text_of cs) (text_of cp);
  check Alcotest.bool "pooled recovery diagnostics" true
    (rs.V2.dropped = rp.V2.dropped && rs.V2.frames = rp.V2.frames)

let test_v2_save_load () =
  let c = gen_corpus ~scale:0.01 () in
  let path = Filename.temp_file "driveperf" ".dpf" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  V2.save path c;
  let loaded, report = V2.load path in
  check Alcotest.string "load round trip" (text_of c) (text_of loaded);
  check Alcotest.int "clean" 0 (List.length report.V2.dropped)

let () =
  Alcotest.run "codec"
    [
      ( "text escaping",
        [
          Alcotest.test_case "hostile spec names rejected" `Quick
            test_text_rejects_hostile_spec_names;
          Alcotest.test_case "hostile frame signatures rejected" `Quick
            test_text_rejects_hostile_frame_signatures;
          Alcotest.test_case "accepted names round-trip" `Quick
            test_text_hostile_names_never_corrupt_silently;
          Alcotest.test_case "binary-mode save/load" `Quick
            test_text_binary_mode_roundtrip;
        ] );
      ( "binary hardening",
        [
          Alcotest.test_case "varint extremes round-trip" `Quick
            test_varint_roundtrip_extremes;
          Alcotest.test_case "varint overflow rejected" `Quick
            test_varint_overflow_rejected;
          Alcotest.test_case "smuggled negative ts rejected" `Quick
            test_binary_rejects_smuggled_negative_ts;
          Alcotest.test_case "backwards instance rejected" `Quick
            test_binary_rejects_backwards_instance;
          Alcotest.test_case "hostile names round-trip" `Quick
            test_binary_hostile_names_roundtrip;
          QCheck_alcotest.to_alcotest prop_codec_roundtrip_any_seed;
        ] );
      ( "framed v2",
        [
          Alcotest.test_case "round trip" `Quick test_v2_roundtrip;
          Alcotest.test_case "magic" `Quick test_v2_magic;
          Alcotest.test_case "streaming writer/reader" `Quick
            test_v2_streaming_writer_reader;
          Alcotest.test_case "truncation at every boundary" `Quick
            test_v2_truncation_at_every_boundary;
          Alcotest.test_case "single bad frame recovery" `Quick
            test_v2_single_bad_frame_recovery;
          QCheck_alcotest.to_alcotest prop_v2_bit_flip;
          Alcotest.test_case "pooled load identical" `Quick
            test_v2_pooled_load_identical;
          Alcotest.test_case "save/load" `Quick test_v2_save_load;
        ] );
    ]
