(* Tests for the Section 6 baselines: call-graph CPU profiling and
   single-lock contention analysis. *)

module P = Dpsim.Program
module Engine = Dpsim.Engine
module Time = Dputil.Time
module Callgraph = Dpbaseline.Callgraph
module Lock_profiler = Dpbaseline.Lock_profiler

let check = Alcotest.check
let sig_ = Dptrace.Signature.of_string

let cpu_corpus () =
  let engine = Engine.create ~stream_id:0 () in
  let _t =
    Engine.spawn engine ~scenario:"S" ~start_at:0 ~name:"t"
      ~base_stack:[ sig_ "app!main" ]
      [
        P.compute (Time.ms 10);
        P.call (sig_ "d.sys!F") [ P.compute (Time.ms 4) ];
      ]
  in
  let st = Engine.run engine in
  Dptrace.Corpus.create ~streams:[ st ]
    ~specs:[ Dptrace.Scenario.spec ~name:"S" ~tfast:1 ~tslow:2 ]

let test_callgraph_totals () =
  let p = Callgraph.profile (cpu_corpus ()) in
  check Alcotest.int "total cpu" (Time.ms 14) (Callgraph.total_cpu p);
  let row name =
    List.find
      (fun (r : Callgraph.row) -> Dptrace.Signature.name r.signature = name)
      (Callgraph.rows p)
  in
  let app = row "app!main" and drv = row "d.sys!F" in
  (* app!main is on-stack for both events; topmost only for the first. *)
  check Alcotest.int "app inclusive" (Time.ms 14) app.Callgraph.inclusive;
  check Alcotest.int "app exclusive" (Time.ms 10) app.Callgraph.exclusive;
  check Alcotest.int "driver inclusive" (Time.ms 4) drv.Callgraph.inclusive;
  check Alcotest.int "driver exclusive" (Time.ms 4) drv.Callgraph.exclusive

let test_callgraph_rows_sorted () =
  let p = Callgraph.profile (cpu_corpus ()) in
  let rec decreasing = function
    | (a : Callgraph.row) :: (b :: _ as rest) ->
      a.Callgraph.inclusive >= b.Callgraph.inclusive && decreasing rest
    | _ -> true
  in
  check Alcotest.bool "sorted" true (decreasing (Callgraph.rows p));
  check Alcotest.int "top n" 1 (List.length (Callgraph.top p ~n:1))

let test_callgraph_driver_fraction () =
  let p = Callgraph.profile (cpu_corpus ()) in
  let f =
    Callgraph.fraction_matching p (fun s ->
        Dpcore.Component.matches_signature Dpcore.Component.drivers s)
  in
  check (Alcotest.float 1e-9) "4 of 14 ms" (4.0 /. 14.0) f

let test_callgraph_blind_to_waits () =
  (* The motivating case: 880 ms of UI delay, but the profiler only sees
     the decryption CPU. *)
  let case = Dpworkload.Motivating_case.build () in
  let corpus =
    Dptrace.Corpus.create
      ~streams:[ case.Dpworkload.Motivating_case.stream ]
      ~specs:case.Dpworkload.Motivating_case.specs
  in
  let p = Callgraph.profile corpus in
  let delay =
    Dptrace.Scenario.duration case.Dpworkload.Motivating_case.browser_instance
  in
  check Alcotest.bool "CPU is a small share of the perceived delay" true
    (Callgraph.total_cpu p < delay / 3)

let test_lock_profiler_sites () =
  let case = Dpworkload.Motivating_case.build () in
  let corpus =
    Dptrace.Corpus.create
      ~streams:[ case.Dpworkload.Motivating_case.stream ]
      ~specs:case.Dpworkload.Motivating_case.specs
  in
  let lp = Lock_profiler.analyze corpus in
  let site_names =
    List.map
      (fun (s : Lock_profiler.site) -> Dptrace.Signature.name s.signature)
      (Lock_profiler.sites lp)
  in
  (* Both contention regions appear — as unrelated entries. *)
  check Alcotest.bool "File Table region" true
    (List.mem "fv.sys!QueryFileTable" site_names);
  check Alcotest.bool "MDU region" true (List.mem "fs.sys!AcquireMDU" site_names);
  (* Holder-side attribution is per site. *)
  let fv_site =
    List.find
      (fun (s : Lock_profiler.site) ->
        Dptrace.Signature.name s.signature = "fv.sys!QueryFileTable")
      (Lock_profiler.sites lp)
  in
  check Alcotest.bool "holders recorded" true (fv_site.Lock_profiler.holders <> []);
  check Alcotest.bool "waiter count" true (fv_site.Lock_profiler.waiters >= 2);
  check Alcotest.bool "total wait positive" true (Lock_profiler.total_wait lp > 0)

let test_lock_profiler_attribution () =
  let case = Dpworkload.Motivating_case.build () in
  let corpus =
    Dptrace.Corpus.create
      ~streams:[ case.Dpworkload.Motivating_case.stream ]
      ~specs:case.Dpworkload.Motivating_case.specs
  in
  let lp = Lock_profiler.analyze corpus in
  check Alcotest.int "absent site attributes zero" 0
    (Lock_profiler.attribution lp (sig_ "graphics.sys!Render"));
  check Alcotest.bool "present site attributes" true
    (Lock_profiler.attribution lp (sig_ "fv.sys!QueryFileTable") > 0)

let test_blocking_site_skips_wrappers () =
  (* Waits whose top frames are kernel/app wrappers attribute to the
     first real frame below. *)
  let engine = Engine.create ~stream_id:0 () in
  let lock = Engine.new_lock engine ~name:"L" in
  let _h =
    Engine.spawn engine ~start_at:0 ~name:"h" ~base_stack:[ sig_ "bg!w" ]
      [ P.locked lock [ P.compute (Time.ms 5) ] ]
  in
  let _v =
    Engine.spawn engine ~scenario:"S" ~start_at:(Time.ms 1) ~name:"v"
      ~base_stack:[ sig_ "d.sys!Op"; sig_ "app!main" ]
      [ P.locked lock [ P.compute (Time.ms 1) ] ]
  in
  let st = Engine.run engine in
  let corpus =
    Dptrace.Corpus.create ~streams:[ st ]
      ~specs:[ Dptrace.Scenario.spec ~name:"S" ~tfast:1 ~tslow:2 ]
  in
  let lp = Lock_profiler.analyze corpus in
  check Alcotest.bool "site is the driver frame, not kernel!AcquireLock" true
    (Lock_profiler.attribution lp (sig_ "d.sys!Op") > 0)

(* --- StackMine-style costly-pattern mining --- *)

let test_stackmine_basics () =
  let case = Dpworkload.Motivating_case.build () in
  let corpus =
    Dptrace.Corpus.create
      ~streams:[ case.Dpworkload.Motivating_case.stream ]
      ~specs:case.Dpworkload.Motivating_case.specs
  in
  let patterns = Dpbaseline.Stackmine.mine corpus in
  check Alcotest.bool "patterns mined" true (patterns <> []);
  (* Ranked by cost. *)
  let rec decreasing = function
    | (a : Dpbaseline.Stackmine.pattern) :: (b :: _ as rest) ->
      a.Dpbaseline.Stackmine.cost >= b.Dpbaseline.Stackmine.cost && decreasing rest
    | _ -> true
  in
  check Alcotest.bool "ranked" true (decreasing patterns);
  (* The contended File Table query must rank among the costly stacks. *)
  let mentions_fv (p : Dpbaseline.Stackmine.pattern) =
    List.exists
      (fun s -> Dptrace.Signature.name s = "fv.sys!QueryFileTable")
      p.Dpbaseline.Stackmine.frames
  in
  check Alcotest.bool "fv.sys in top patterns" true
    (List.exists mentions_fv (Dpbaseline.Stackmine.top patterns ~n:5));
  (* ...but its limitation holds: no pattern joins the victim-side fv.sys
     frames with the se.sys root cause — they live on different threads. *)
  let joins_fv_and_se (p : Dpbaseline.Stackmine.pattern) =
    let names = List.map Dptrace.Signature.name p.Dpbaseline.Stackmine.frames in
    List.mem "fv.sys!QueryFileTable" names
    && List.exists
         (fun n -> String.length n >= 6 && String.sub n 0 6 = "se.sys")
         names
  in
  check Alcotest.bool "cannot join fv.sys with se.sys" false
    (List.exists joins_fv_and_se patterns)

let test_stackmine_min_cost_filter () =
  let case = Dpworkload.Motivating_case.build () in
  let corpus =
    Dptrace.Corpus.create
      ~streams:[ case.Dpworkload.Motivating_case.stream ]
      ~specs:case.Dpworkload.Motivating_case.specs
  in
  let all = Dpbaseline.Stackmine.mine ~min_cost:0 corpus in
  let filtered = Dpbaseline.Stackmine.mine ~min_cost:(Time.sec 10) corpus in
  check Alcotest.bool "filter reduces" true (List.length filtered < List.length all);
  List.iter
    (fun (p : Dpbaseline.Stackmine.pattern) ->
      check Alcotest.bool "above threshold" true
        (p.Dpbaseline.Stackmine.cost >= Time.sec 10))
    filtered

let test_stackmine_closedness () =
  (* Two wait events with the same two-frame stack: the one-frame prefix
     has identical support and must be dropped in favour of the longer
     pattern. *)
  let engine = Engine.create ~stream_id:0 () in
  let lock = Engine.new_lock engine ~name:"L" in
  let _h =
    Engine.spawn engine ~start_at:0 ~name:"h" ~base_stack:[ sig_ "bg!w" ]
      [ P.locked lock [ P.compute (Time.ms 30) ] ]
  in
  let _v =
    Engine.spawn engine ~scenario:"S" ~start_at:(Time.ms 1) ~name:"v"
      ~base_stack:[ sig_ "x.sys!Op"; sig_ "app!main" ]
      [ P.locked lock [ P.compute (Time.ms 1) ] ]
  in
  let st = Engine.run engine in
  let corpus =
    Dptrace.Corpus.create ~streams:[ st ]
      ~specs:[ Dptrace.Scenario.spec ~name:"S" ~tfast:1 ~tslow:2 ]
  in
  let patterns = Dpbaseline.Stackmine.mine ~min_cost:0 corpus in
  let has frames =
    List.exists
      (fun (p : Dpbaseline.Stackmine.pattern) ->
        List.map Dptrace.Signature.name p.Dpbaseline.Stackmine.frames = frames)
      patterns
  in
  check Alcotest.bool "full stack kept" true
    (has [ "kernel!AcquireLock"; "x.sys!Op"; "app!main" ]);
  check Alcotest.bool "redundant prefix dropped" false
    (has [ "kernel!AcquireLock" ])

let () =
  Alcotest.run "dpbaseline"
    [
      ( "callgraph",
        [
          Alcotest.test_case "totals" `Quick test_callgraph_totals;
          Alcotest.test_case "sorted rows" `Quick test_callgraph_rows_sorted;
          Alcotest.test_case "driver fraction" `Quick test_callgraph_driver_fraction;
          Alcotest.test_case "blind to waits" `Quick test_callgraph_blind_to_waits;
        ] );
      ( "lock profiler",
        [
          Alcotest.test_case "sites" `Quick test_lock_profiler_sites;
          Alcotest.test_case "attribution" `Quick test_lock_profiler_attribution;
          Alcotest.test_case "wrapper skipping" `Quick test_blocking_site_skips_wrappers;
        ] );
      ( "stackmine",
        [
          Alcotest.test_case "basics" `Quick test_stackmine_basics;
          Alcotest.test_case "min-cost filter" `Quick test_stackmine_min_cost_filter;
          Alcotest.test_case "closedness" `Quick test_stackmine_closedness;
        ] );
    ]
