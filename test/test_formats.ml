(* Tests for the interchange substrates: the ETW importer, the binary
   codec and the anonymiser. *)

module Event = Dptrace.Event
module Stream = Dptrace.Stream
module Corpus = Dptrace.Corpus
module Etw = Dptrace.Etw
module Bin = Dptrace.Codec_binary
module Time = Dputil.Time

let check = Alcotest.check

(* --- ETW importer --- *)

let test_etw_sample_coalescing () =
  let dump =
    "# a profile burst\n\
     SampledProfile, 1000, 5, \"app!f;app!main\"\n\
     SampledProfile, 2000, 5, \"app!f;app!main\"\n\
     SampledProfile, 3000, 5, \"app!f;app!main\"\n\
     SampledProfile, 4000, 5, \"app!g;app!main\"\n"
  in
  let st = Etw.stream_of_string dump in
  let runs =
    Array.to_list st.Stream.events |> List.filter Event.is_running
  in
  check Alcotest.int "two coalesced runs" 2 (List.length runs);
  let first = List.hd runs in
  check Alcotest.int "three samples = 3ms" (Time.ms 3) first.Event.cost;
  check Alcotest.int "starts at first sample" 1000 first.Event.ts

let test_etw_gap_breaks_coalescing () =
  let dump =
    "SampledProfile, 1000, 5, \"app!f\"\n\
     SampledProfile, 9000, 5, \"app!f\"\n"
  in
  let st = Etw.stream_of_string dump in
  check Alcotest.int "gap splits runs" 2
    (List.length (Array.to_list st.Stream.events |> List.filter Event.is_running))

let test_etw_wait_reconstruction () =
  let dump =
    "CSwitch, 1000, 9, 5, Waiting, \"kernel!AcquireLock;d.sys!Op;app!main\"\n\
     ReadyThread, 4000, 7, 5, \"d.sys!Release;other!w\"\n"
  in
  let st = Etw.stream_of_string dump in
  let wait = Array.to_list st.Stream.events |> List.find Event.is_wait in
  check Alcotest.int "wait tid" 5 wait.Event.tid;
  check Alcotest.int "wait start" 1000 wait.Event.ts;
  check Alcotest.int "wait cost" 3000 wait.Event.cost;
  let unwait = Array.to_list st.Stream.events |> List.find Event.is_unwait in
  check Alcotest.int "unwait by" 7 unwait.Event.tid;
  check Alcotest.int "unwait targets" 5 unwait.Event.wtid;
  (* Pairing must be recoverable through the stream index. *)
  let idx = Stream.index st in
  check Alcotest.bool "pairable" true (Stream.find_waker idx wait <> None)

let test_etw_open_wait_dropped () =
  let dump = "CSwitch, 1000, 9, 5, Waiting, \"app!main\"\n" in
  let st = Etw.stream_of_string dump in
  check Alcotest.int "no events" 0 (Array.length st.Stream.events)

let test_etw_diskio_and_threads () =
  let dump =
    "Thread, 5, BrowserUI\nDiskIo, 2000, 1500, \"DiskService\"\n"
  in
  let st = Etw.stream_of_string dump in
  let hw = Array.to_list st.Stream.events |> List.find Event.is_hw_service in
  check Alcotest.int "start" 2000 hw.Event.ts;
  check Alcotest.int "duration" 1500 hw.Event.cost;
  check Alcotest.string "named thread kept" "BrowserUI" (Stream.thread_name st 5);
  check Alcotest.bool "device pseudo-thread registered" true
    (List.exists (fun (_, n) -> n = "DiskService") st.Stream.threads)

let test_etw_marks () =
  let dump =
    "Mark, 1000, TabCreate, 5, Start\n\
     SampledProfile, 2000, 5, \"app!f\"\n\
     Mark, 9000, TabCreate, 5, Stop\n"
  in
  let st = Etw.stream_of_string dump in
  match st.Stream.instances with
  | [ i ] ->
    check Alcotest.string "scenario" "TabCreate" i.Dptrace.Scenario.scenario;
    check Alcotest.int "t0" 1000 i.Dptrace.Scenario.t0;
    check Alcotest.int "t1" 9000 i.Dptrace.Scenario.t1
  | l -> Alcotest.failf "expected one instance, got %d" (List.length l)

let expect_etw_error dump =
  match Etw.stream_of_string dump with
  | exception Etw.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected Parse_error"

let test_etw_errors () =
  expect_etw_error "Bogus, 1, 2\n";
  expect_etw_error "SampledProfile, notanint, 5, \"a!b\"\n";
  expect_etw_error "Mark, 1000, S, 5, Stop\n";
  expect_etw_error "Mark, 1000, S, 5, Start\nMark, 2000, S, 5, Start\n";
  expect_etw_error "Mark, 1000, S, 5, Sideways\n";
  expect_etw_error "DiskIo, 10, -5, \"D\"\n";
  expect_etw_error "SampledProfile, 1, 5, \"unterminated\n"

let test_etw_error_line_number () =
  match Etw.stream_of_string "# fine\nThread, 1, a\nBogus, 1\n" with
  | exception Etw.Parse_error { line; _ } -> check Alcotest.int "line" 3 line
  | _ -> Alcotest.fail "expected Parse_error"

let test_etw_end_to_end_analysis () =
  (* A contention story told in ETW records: thread 5 (the instance)
     blocks on a driver lock; thread 9 holds it while the disk serves it;
     thread 9 readies 5 at release. The impact analysis must count 5's
     wait. *)
  let dump =
    "Thread, 5, App.UI\n\
     Thread, 9, Holder\n\
     Mark, 0, OpenDoc, 5, Start\n\
     SampledProfile, 500, 5, \"app!open\"\n\
     CSwitch, 1000, 9, 5, Waiting, \"kernel!AcquireLock;flt.sys!Lookup;app!open\"\n\
     CSwitch, 1500, 0, 9, Waiting, \"kernel!WaitForObject;fs.sys!Read;svc!w\"\n\
     DiskIo, 1500, 20000, \"DiskService\"\n\
     ReadyThread, 21500, 1000000, 9, \"DiskService\"\n\
     ReadyThread, 22000, 9, 5, \"flt.sys!Lookup;svc!w\"\n\
     SampledProfile, 23000, 5, \"app!open\"\n\
     Mark, 24000, OpenDoc, 5, Stop\n"
  in
  let st = Etw.stream_of_string dump in
  check (Alcotest.list Alcotest.string) "valid" []
    (List.map
       (fun v -> Format.asprintf "%a" Dptrace.Validate.pp_violation v)
       (Dptrace.Validate.check st));
  let corpus =
    Corpus.create ~streams:[ st ]
      ~specs:[ Dptrace.Scenario.spec ~name:"OpenDoc" ~tfast:10_000 ~tslow:20_000 ]
  in
  let r = Dpcore.Pipeline.run_impact Dpcore.Component.drivers corpus in
  check Alcotest.int "one instance" 1 r.Dpcore.Impact.instances;
  (* Thread 5 blocked 1000..22000 on a driver-tagged stack. *)
  check Alcotest.int "driver wait counted" 21_000 r.Dpcore.Impact.d_wait

let test_etw_roundtrip_motivating_case () =
  (* Export the Figure 1 stream as an xperf dump, import it back, and
     require identical impact metrics: wait intervals and sampled runs
     must survive the ETW representation exactly. *)
  let case = Dpworkload.Motivating_case.build () in
  let st = case.Dpworkload.Motivating_case.stream in
  let reimported = Etw.stream_of_string (Etw.to_dump st) in
  check Alcotest.bool "reimported validates" true
    (Dptrace.Validate.is_valid reimported);
  let impact stream =
    Dpcore.Pipeline.run_impact Dpcore.Component.drivers
      (Corpus.create ~streams:[ stream ]
         ~specs:case.Dpworkload.Motivating_case.specs)
  in
  let a = impact st and b = impact reimported in
  check Alcotest.int "d_scn preserved" a.Dpcore.Impact.d_scn b.Dpcore.Impact.d_scn;
  check Alcotest.int "d_wait preserved" a.Dpcore.Impact.d_wait b.Dpcore.Impact.d_wait;
  check Alcotest.int "d_waitdist preserved" a.Dpcore.Impact.d_waitdist
    b.Dpcore.Impact.d_waitdist;
  check Alcotest.int "d_run preserved" a.Dpcore.Impact.d_run b.Dpcore.Impact.d_run;
  check Alcotest.int "instances preserved"
    (List.length st.Stream.instances)
    (List.length reimported.Stream.instances)

let test_etw_roundtrip_generated () =
  (* The same property over a whole generated corpus. *)
  let corpus = Dpworkload.Corpus_gen.generate (Dpworkload.Corpus_gen.scaled 0.02) in
  let reimported_streams =
    List.map
      (fun (st : Stream.t) ->
        Etw.stream_of_string
          ~stream_id:st.Stream.id
          (Etw.to_dump st))
      corpus.Corpus.streams
  in
  let reimported =
    Corpus.create ~streams:reimported_streams ~specs:corpus.Corpus.specs
  in
  let a = Dpcore.Pipeline.run_impact Dpcore.Component.drivers corpus in
  let b = Dpcore.Pipeline.run_impact Dpcore.Component.drivers reimported in
  check Alcotest.int "d_wait preserved" a.Dpcore.Impact.d_wait b.Dpcore.Impact.d_wait;
  check Alcotest.int "d_waitdist preserved" a.Dpcore.Impact.d_waitdist
    b.Dpcore.Impact.d_waitdist;
  check Alcotest.int "d_run preserved" a.Dpcore.Impact.d_run b.Dpcore.Impact.d_run

let prop_etw_mutation_safety =
  QCheck.Test.make ~name:"mutated ETW dump never crashes" ~count:150
    QCheck.(pair small_int (int_range 32 126))
    (fun (pos_seed, byte) ->
      let case = Dpworkload.Motivating_case.build () in
      let base = Etw.to_dump case.Dpworkload.Motivating_case.stream in
      let b = Bytes.of_string base in
      Bytes.set b (pos_seed mod Bytes.length b) (Char.chr byte);
      match Etw.stream_of_string (Bytes.to_string b) with
      | _ -> true
      | exception Etw.Parse_error _ -> true)

(* --- binary codec --- *)

let text_of c = Dptrace.Codec.corpus_to_string c

let test_binary_roundtrip_small () =
  let case = Dpworkload.Motivating_case.build () in
  let corpus =
    Corpus.create
      ~streams:[ case.Dpworkload.Motivating_case.stream ]
      ~specs:case.Dpworkload.Motivating_case.specs
  in
  let decoded = Bin.decode (Bin.encode corpus) in
  check Alcotest.string "text-identical after roundtrip" (text_of corpus)
    (text_of decoded)

let test_binary_roundtrip_generated () =
  let corpus = Dpworkload.Corpus_gen.generate (Dpworkload.Corpus_gen.scaled 0.03) in
  let decoded = Bin.decode (Bin.encode corpus) in
  check Alcotest.string "text-identical after roundtrip" (text_of corpus)
    (text_of decoded)

let test_binary_smaller_than_text () =
  let corpus = Dpworkload.Corpus_gen.generate (Dpworkload.Corpus_gen.scaled 0.03) in
  let bin = String.length (Bin.encode corpus) in
  let text = String.length (text_of corpus) in
  check Alcotest.bool "at least 3x smaller" true (bin * 3 < text)

let expect_corrupt data =
  match Bin.decode data with
  | exception Bin.Corrupt _ -> ()
  | _ -> Alcotest.fail "expected Corrupt"

let test_binary_corruption () =
  let corpus = Dpworkload.Corpus_gen.generate (Dpworkload.Corpus_gen.scaled 0.01) in
  let good = Bin.encode corpus in
  expect_corrupt "";
  expect_corrupt "XXXX\x01";
  expect_corrupt "DPTB\x63";
  expect_corrupt (String.sub good 0 (String.length good / 2));
  expect_corrupt (good ^ "trailing");
  (* Preserve the header but clobber the middle. *)
  let clobbered = Bytes.of_string good in
  for i = String.length good / 2 to (String.length good / 2) + 64 do
    if i < Bytes.length clobbered then Bytes.set clobbered i '\xff'
  done;
  match Bin.decode (Bytes.to_string clobbered) with
  | exception Bin.Corrupt _ -> ()
  | exception Invalid_argument _ -> Alcotest.fail "leaked Invalid_argument"
  | __decoded -> () (* decoding to garbage values is acceptable; crashing is not *)

let prop_binary_mutation_safety =
  QCheck.Test.make ~name:"mutated binary corpus never crashes" ~count:150
    QCheck.(pair small_int (int_range 0 255))
    (fun (pos_seed, byte) ->
      let base =
        Bin.encode (Dpworkload.Corpus_gen.generate (Dpworkload.Corpus_gen.scaled 0.01))
      in
      let b = Bytes.of_string base in
      Bytes.set b (pos_seed mod Bytes.length b) (Char.chr byte);
      match Bin.decode (Bytes.to_string b) with
      | _ -> true
      | exception Bin.Corrupt _ -> true
      | exception Invalid_argument _ -> false)

(* --- anonymiser --- *)

let small_corpus () = Dpworkload.Corpus_gen.generate (Dpworkload.Corpus_gen.scaled 0.02)

let test_anonymize_preserves_analysis () =
  let corpus = small_corpus () in
  let anon, _ = Dptrace.Anonymize.corpus corpus in
  let a = Dpcore.Pipeline.run_impact Dpcore.Component.drivers corpus in
  let b = Dpcore.Pipeline.run_impact Dpcore.Component.drivers anon in
  check Alcotest.int "d_scn" a.Dpcore.Impact.d_scn b.Dpcore.Impact.d_scn;
  check Alcotest.int "d_wait" a.Dpcore.Impact.d_wait b.Dpcore.Impact.d_wait;
  check Alcotest.int "d_waitdist" a.Dpcore.Impact.d_waitdist b.Dpcore.Impact.d_waitdist;
  check Alcotest.int "d_run" a.Dpcore.Impact.d_run b.Dpcore.Impact.d_run

let all_signatures corpus =
  List.concat_map
    (fun (st : Stream.t) ->
      Array.to_list st.Stream.events
      |> List.concat_map (fun (e : Event.t) ->
             Array.to_list (Dptrace.Callstack.frames e.Event.stack)))
    corpus.Corpus.streams
  |> List.sort_uniq Dptrace.Signature.compare

let test_anonymize_scrubs_names () =
  let corpus = small_corpus () in
  let anon, mapping = Dptrace.Anonymize.corpus corpus in
  let names = List.map Dptrace.Signature.name (all_signatures anon) in
  (* No original driver names survive... *)
  List.iter
    (fun forbidden ->
      check Alcotest.bool (forbidden ^ " scrubbed") false
        (List.exists
           (fun n ->
             String.length n >= String.length forbidden
             && String.sub n 0 (String.length forbidden) = forbidden)
           names))
    [ "fv.sys"; "fs.sys"; "se.sys"; "av.sys"; "Browser"; "AntiVirus" ];
  (* ...but the .sys structure does, so component filters still work. *)
  check Alcotest.bool "drvN.sys present" true
    (List.exists
       (fun n ->
         Dputil.Wildcard.matches (Dputil.Wildcard.compile "drv*.sys")
           (Dptrace.Signature.module_part (Dptrace.Signature.of_string n)))
       names);
  (* Kernel frames and hardware dummies are infrastructure: untouched. *)
  check Alcotest.bool "kernel kept" true
    (List.exists (fun n -> n = "kernel!AcquireLock" || n = "kernel!WaitForObject") names);
  check Alcotest.bool "DiskService kept" true (List.mem "DiskService" names);
  check Alcotest.bool "mapping non-empty" true (mapping <> [])

let test_anonymize_deterministic_and_consistent () =
  let corpus = small_corpus () in
  let a, _ = Dptrace.Anonymize.corpus corpus in
  let b, _ = Dptrace.Anonymize.corpus corpus in
  check Alcotest.string "deterministic" (text_of a) (text_of b)

let test_anonymize_scenarios () =
  let corpus = small_corpus () in
  let anon, _ = Dptrace.Anonymize.corpus corpus in
  check Alcotest.bool "scenario names scrubbed" false
    (List.mem "BrowserTabCreate" (Corpus.scenario_names anon));
  let kept, _ = Dptrace.Anonymize.corpus ~keep_scenarios:true corpus in
  check Alcotest.bool "scenario names kept on demand" true
    (List.mem "BrowserTabCreate" (Corpus.scenario_names kept));
  (* Specs follow the instances so classification still works. *)
  List.iter
    (fun name ->
      check Alcotest.bool (name ^ " has spec") true
        (Corpus.find_spec anon name <> None))
    (Corpus.scenario_names anon)

let () =
  Alcotest.run "formats"
    [
      ( "etw import",
        [
          Alcotest.test_case "sample coalescing" `Quick test_etw_sample_coalescing;
          Alcotest.test_case "gap breaks coalescing" `Quick test_etw_gap_breaks_coalescing;
          Alcotest.test_case "wait reconstruction" `Quick test_etw_wait_reconstruction;
          Alcotest.test_case "open wait dropped" `Quick test_etw_open_wait_dropped;
          Alcotest.test_case "disk io / threads" `Quick test_etw_diskio_and_threads;
          Alcotest.test_case "marks" `Quick test_etw_marks;
          Alcotest.test_case "parse errors" `Quick test_etw_errors;
          Alcotest.test_case "error lines" `Quick test_etw_error_line_number;
          Alcotest.test_case "end-to-end analysis" `Quick test_etw_end_to_end_analysis;
          Alcotest.test_case "export/import roundtrip (case)" `Quick
            test_etw_roundtrip_motivating_case;
          Alcotest.test_case "export/import roundtrip (corpus)" `Quick
            test_etw_roundtrip_generated;
          QCheck_alcotest.to_alcotest prop_etw_mutation_safety;
        ] );
      ( "binary codec",
        [
          Alcotest.test_case "roundtrip (case)" `Quick test_binary_roundtrip_small;
          Alcotest.test_case "roundtrip (generated)" `Quick
            test_binary_roundtrip_generated;
          Alcotest.test_case "smaller than text" `Quick test_binary_smaller_than_text;
          Alcotest.test_case "corruption handling" `Quick test_binary_corruption;
          QCheck_alcotest.to_alcotest prop_binary_mutation_safety;
        ] );
      ( "anonymize",
        [
          Alcotest.test_case "analysis preserved" `Quick test_anonymize_preserves_analysis;
          Alcotest.test_case "names scrubbed" `Quick test_anonymize_scrubs_names;
          Alcotest.test_case "deterministic" `Quick
            test_anonymize_deterministic_and_consistent;
          Alcotest.test_case "scenario handling" `Quick test_anonymize_scenarios;
        ] );
    ]
