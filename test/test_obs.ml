(* Tests for the self-telemetry layer (lib/obs): disabled-mode really is
   free, counters stay exact under the domain pool, spans stay
   well-formed under the domain pool, and the Chrome trace export is
   valid JSON with the shape Perfetto expects. *)

module Obs = Dpobs
module Pool = Dppar.Pool

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

(* The in-test JSON parser lives in Tjson (shared with test_report). *)

module Json = Tjson

(* --- disabled mode --- *)

let test_disabled_records_nothing () =
  Obs.disable ();
  let buffers_before = Obs.Span.buffer_count () in
  let events_before = List.length (Obs.Span.events ()) in
  let c = Obs.Metrics.counter "test.disabled" in
  let v_before = Obs.Metrics.counter_value c in
  for _ = 1 to 1000 do
    Obs.Span.with_span "test.off" (fun () -> ());
    Obs.Metrics.incr c
  done;
  check Alcotest.int "no new buffers" buffers_before (Obs.Span.buffer_count ());
  check Alcotest.int "no new events" events_before
    (List.length (Obs.Span.events ()));
  check Alcotest.int "counter untouched" v_before (Obs.Metrics.counter_value c)

let test_disabled_allocates_nothing () =
  Obs.disable ();
  let f = Sys.opaque_identity (fun () -> ()) in
  (* Warm up so any one-time allocation is out of the way. *)
  for _ = 1 to 100 do
    Obs.Span.with_span "test.alloc" f
  done;
  let iters = 100_000 in
  let before = Gc.minor_words () in
  for _ = 1 to iters do
    Obs.Span.with_span "test.alloc" f
  done;
  let words = Gc.minor_words () -. before in
  (* Zero words per call; allow slack for the Gc.minor_words calls
     themselves, but far below one word per span. *)
  if words > float_of_int (iters / 10) then
    Alcotest.failf "disabled span allocated %.0f minor words over %d calls"
      words iters

let test_disabled_value_passthrough () =
  Obs.disable ();
  check Alcotest.int "result" 42 (Obs.Span.with_span "x" (fun () -> 42));
  Alcotest.check_raises "exception" Exit (fun () ->
      Obs.Span.with_span "x" (fun () -> raise Exit))

(* --- metrics --- *)

let test_counter_atomicity_under_pool () =
  Obs.enable ~spans:false ();
  let c = Obs.Metrics.counter "test.atomic" in
  let v0 = Obs.Metrics.counter_value c in
  let tasks0 = Obs.Metrics.counter_value (Obs.Metrics.counter "pool.tasks") in
  Pool.with_pool ~domains:4 (fun pool ->
      ignore
        (Pool.parallel_map ~chunk:1 pool
           (fun _ ->
             for _ = 1 to 1000 do
               Obs.Metrics.incr c
             done)
           (List.init 100 Fun.id)));
  check Alcotest.int "100 tasks x 1000 increments" (v0 + 100_000)
    (Obs.Metrics.counter_value c);
  let tasks = Obs.Metrics.counter_value (Obs.Metrics.counter "pool.tasks") in
  if tasks <= tasks0 then
    Alcotest.failf "pool.tasks did not advance (%d -> %d)" tasks0 tasks;
  Obs.disable ()

let test_metric_kinds_and_values () =
  Obs.enable ~spans:false ();
  let c = Obs.Metrics.counter "test.kinds.c" in
  Obs.Metrics.add c 7;
  Obs.Metrics.incr c;
  check Alcotest.int "counter" 8 (Obs.Metrics.counter_value c);
  let g = Obs.Metrics.gauge "test.kinds.g" in
  Obs.Metrics.set g 5;
  Obs.Metrics.set_max g 3;
  check Alcotest.int "set_max keeps larger" 5 (Obs.Metrics.gauge_value g);
  Obs.Metrics.set_max g 9;
  check Alcotest.int "set_max raises" 9 (Obs.Metrics.gauge_value g);
  let h = Obs.Metrics.histogram "test.kinds.h" in
  List.iter (Obs.Metrics.observe h) [ 1.0; 2.0; 3.0 ];
  (match Obs.Metrics.dump ~prefix:"test.kinds.h" () with
  | [ (_, Obs.Metrics.Histogram hs) ] ->
    check Alcotest.int "h count" 3 hs.Obs.Metrics.count;
    check (Alcotest.float 1e-9) "h sum" 6.0 hs.Obs.Metrics.sum
  | other -> Alcotest.failf "unexpected dump shape (%d entries)" (List.length other));
  (* Same name, different kind: refused. *)
  (try
     ignore (Obs.Metrics.gauge "test.kinds.c");
     Alcotest.fail "kind mismatch accepted"
   with Invalid_argument _ -> ());
  let rendered = Obs.Metrics.render ~prefix:"test.kinds." () in
  check Alcotest.bool "render has counter line" true
    (contains rendered "test.kinds.c = 8");
  Obs.disable ()

let test_watcher () =
  Obs.enable ~spans:false ();
  let c = Obs.Metrics.counter "test.watch" in
  let seen = ref [] in
  Obs.Metrics.watch c (fun v -> seen := v :: !seen);
  Obs.Metrics.incr c;
  Obs.Metrics.add c 2;
  Obs.Metrics.unwatch c;
  Obs.Metrics.incr c;
  check Alcotest.(list int) "watcher saw each update" [ 3; 1 ] !seen;
  Obs.disable ()

(* --- spans --- *)

let test_span_nesting_and_durations () =
  Obs.enable ~metrics:false ();
  Obs.Span.clear ();
  Obs.Span.with_span "outer" (fun () ->
      Obs.Span.with_span "inner" (fun () -> ());
      Obs.Span.with_span "inner" (fun () -> ()));
  (try Obs.Span.with_span "raiser" (fun () -> raise Exit) with Exit -> ());
  Obs.disable ();
  let durations = Obs.Span.durations () in
  let count name =
    match List.find_opt (fun (n, _, _) -> n = name) durations with
    | Some (_, n, _) -> n
    | None -> 0
  in
  check Alcotest.int "outer once" 1 (count "outer");
  check Alcotest.int "inner twice" 2 (count "inner");
  check Alcotest.int "raising span still closed" 1 (count "raiser");
  let _, _, outer_ns = List.find (fun (n, _, _) -> n = "outer") durations in
  let _, _, inner_ns = List.find (fun (n, _, _) -> n = "inner") durations in
  if Int64.compare outer_ns inner_ns < 0 then
    Alcotest.fail "outer span shorter than the inner spans it contains"

let qcheck_spans_well_formed_under_pool =
  QCheck.Test.make ~count:30 ~name:"span B/E balanced per domain under pool"
    QCheck.(list_of_size (Gen.int_range 1 20) (int_range 1 5))
    (fun depths ->
      Obs.enable ~metrics:false ();
      Obs.Span.clear ();
      let rec nest d =
        if d > 0 then
          Obs.Span.with_span (Printf.sprintf "q%d" d) (fun () -> nest (d - 1))
      in
      Pool.with_pool ~domains:4 (fun pool ->
          ignore (Pool.parallel_map ~chunk:1 pool nest depths));
      Obs.disable ();
      let events = Obs.Span.events () in
      (* Replay each domain's events against a stack: every E must match
         the innermost open B, and nothing may stay open. *)
      let stacks = Hashtbl.create 8 in
      let ok = ref true in
      List.iter
        (fun (ev : Obs.Span.event) ->
          let stack =
            match Hashtbl.find_opt stacks ev.Obs.Span.tid with
            | Some s -> s
            | None ->
              let s = ref [] in
              Hashtbl.add stacks ev.Obs.Span.tid s;
              s
          in
          match ev.Obs.Span.phase with
          | Obs.Span.B -> stack := ev.Obs.Span.name :: !stack
          | Obs.Span.E -> (
            match !stack with
            | top :: rest when top = ev.Obs.Span.name -> stack := rest
            | _ -> ok := false))
        events;
      Hashtbl.iter (fun _ stack -> if !stack <> [] then ok := false) stacks;
      let total_depth = List.fold_left ( + ) 0 depths in
      !ok && List.length events = 2 * total_depth)

(* --- exports --- *)

let test_chrome_trace_valid () =
  Obs.enable ~metrics:false ();
  Obs.Span.clear ();
  Obs.Span.with_span "alpha" (fun () ->
      Obs.Span.with_span ~args:[ ("k", "quote\"back\\slash\n") ] "beta"
        (fun () -> ()));
  Obs.disable ();
  let json = Json.parse (Obs.Export.chrome_trace ()) in
  let events =
    match Json.member "traceEvents" json with
    | Some (Json.Arr evs) -> evs
    | _ -> Alcotest.fail "no traceEvents array"
  in
  let phase e = Option.bind (Json.member "ph" e) Json.str in
  let bs = List.filter (fun e -> phase e = Some "B") events in
  let es = List.filter (fun e -> phase e = Some "E") events in
  check Alcotest.int "balanced B/E" (List.length bs) (List.length es);
  check Alcotest.int "two spans" 2 (List.length bs);
  List.iter
    (fun e ->
      if Json.member "name" e = None then Alcotest.fail "event without name";
      (match Option.bind (Json.member "pid" e) Json.num with
      | Some 1.0 -> ()
      | _ -> Alcotest.fail "pid must be 1");
      if Option.bind (Json.member "tid" e) Json.num = None then
        Alcotest.fail "event without tid";
      match Option.bind (Json.member "ts" e) Json.num with
      | Some ts when ts >= 0.0 -> ()
      | _ -> Alcotest.fail "ts missing or negative")
    (bs @ es);
  let thread_meta =
    List.exists
      (fun e ->
        phase e = Some "M"
        && Option.bind (Json.member "name" e) Json.str = Some "thread_name")
      events
  in
  check Alcotest.bool "thread_name metadata present" true thread_meta

let test_metrics_json_valid () =
  Obs.enable ~spans:false ();
  Obs.Metrics.add (Obs.Metrics.counter "test.export.c") 11;
  List.iter
    (Obs.Metrics.observe (Obs.Metrics.histogram "test.export.h"))
    [ 1.0; 2.0; 3.0; 4.0 ];
  Obs.disable ();
  let json = Json.parse (Obs.Export.metrics_json ()) in
  (match
     Option.bind (Json.member "counters" json) (Json.member "test.export.c")
   with
  | Some (Json.Num 11.0) -> ()
  | _ -> Alcotest.fail "counter missing from metrics json");
  match
    Option.bind (Json.member "histograms" json) (Json.member "test.export.h")
  with
  | Some h ->
    check
      (Alcotest.option (Alcotest.float 1e-9))
      "histogram count" (Some 4.0)
      (Option.bind (Json.member "count" h) Json.num)
  | None -> Alcotest.fail "histogram missing from metrics json"

(* --- logging --- *)

let test_log_levels_and_sink () =
  let lines = ref [] in
  Dputil.Logf.set_sink (fun level msg ->
      lines := (Dputil.Logf.level_name level, msg) :: !lines);
  Obs.Log.set_level Obs.Log.Info;
  Obs.Log.error "e %d" 1;
  Obs.Log.warn "w";
  Obs.Log.info "i";
  Obs.Log.debug "d(never, costs %s)" (String.make 3 'x');
  Obs.Log.set_level Obs.Log.Warn;
  Obs.Log.info "i2";
  check
    Alcotest.(list (pair string string))
    "info threshold passes error/warn/info only"
    [ ("error", "e 1"); ("warn", "w"); ("info", "i") ]
    (List.rev !lines);
  check Alcotest.bool "level_of_string warning" true
    (Obs.Log.level_of_string "WARNING" = Ok Obs.Log.Warn);
  check Alcotest.bool "level_of_string junk" true
    (match Obs.Log.level_of_string "blah" with Error _ -> true | Ok _ -> false);
  (* Silence the sink for any later logging in this binary. *)
  Dputil.Logf.set_sink (fun _ _ -> ())

let () =
  Alcotest.run "obs"
    [
      ( "disabled",
        [
          Alcotest.test_case "records nothing" `Quick
            test_disabled_records_nothing;
          Alcotest.test_case "allocates nothing" `Quick
            test_disabled_allocates_nothing;
          Alcotest.test_case "value passthrough" `Quick
            test_disabled_value_passthrough;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter atomicity under pool" `Quick
            test_counter_atomicity_under_pool;
          Alcotest.test_case "kinds and values" `Quick
            test_metric_kinds_and_values;
          Alcotest.test_case "watcher" `Quick test_watcher;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and durations" `Quick
            test_span_nesting_and_durations;
          qcheck qcheck_spans_well_formed_under_pool;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace valid" `Quick test_chrome_trace_valid;
          Alcotest.test_case "metrics json valid" `Quick test_metrics_json_valid;
        ] );
      ( "log",
        [ Alcotest.test_case "levels and sink" `Quick test_log_levels_and_sink ] );
    ]
